file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_analysis.dir/test_circuit_analysis.cpp.o"
  "CMakeFiles/test_circuit_analysis.dir/test_circuit_analysis.cpp.o.d"
  "test_circuit_analysis"
  "test_circuit_analysis.pdb"
  "test_circuit_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
