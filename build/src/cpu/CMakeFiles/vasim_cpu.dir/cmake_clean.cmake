file(REMOVE_RECURSE
  "CMakeFiles/vasim_cpu.dir/branch_pred.cpp.o"
  "CMakeFiles/vasim_cpu.dir/branch_pred.cpp.o.d"
  "CMakeFiles/vasim_cpu.dir/cache.cpp.o"
  "CMakeFiles/vasim_cpu.dir/cache.cpp.o.d"
  "CMakeFiles/vasim_cpu.dir/fu_pool.cpp.o"
  "CMakeFiles/vasim_cpu.dir/fu_pool.cpp.o.d"
  "CMakeFiles/vasim_cpu.dir/inorder.cpp.o"
  "CMakeFiles/vasim_cpu.dir/inorder.cpp.o.d"
  "CMakeFiles/vasim_cpu.dir/observer.cpp.o"
  "CMakeFiles/vasim_cpu.dir/observer.cpp.o.d"
  "CMakeFiles/vasim_cpu.dir/pipeline.cpp.o"
  "CMakeFiles/vasim_cpu.dir/pipeline.cpp.o.d"
  "libvasim_cpu.a"
  "libvasim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
