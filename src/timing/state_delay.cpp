#include "src/timing/state_delay.hpp"

#include <algorithm>

namespace vasim::timing {

StateDelayModel::StateDelayModel(const StateDelayConfig& cfg, const ProcessVariation& pv,
                                 double vdd)
    : cfg_(cfg) {
  // Per-class mean: one Pcg32 draw per class, scaled by mu_spread, then
  // perturbed by the class's process-variation gate draw so two dies with
  // identical seeds but different process configs disagree (the "seeded from
  // ProcessVariation" contract).
  Pcg32 rng(hash_combine(cfg.seed, 0xada97c10ULL), 0x57a7ed31ULL);
  for (int c = 0; c < kNumFaultClasses; ++c) {
    const double base = rng.next_gaussian() * cfg.mu_spread;
    const double pv_draw = pv.delay_factor(cfg.seed, 0x51a7e000ULL + static_cast<u64>(c));
    mu_[c] = 1.0 + base + (pv_draw - 1.0) * 0.25;
  }
  sigma_ = cfg.sigma_base +
           cfg.sigma_vdd_slope * std::max(0.0, cfg.vdd_nominal - vdd);
}

double StateDelayModel::factor(Pc pc, u64 state_sig, FaultClass cls) const {
  const int c = static_cast<int>(cls);
  const u64 h = hash_combine(hash_combine(cfg_.seed, state_sig),
                             pc ^ (static_cast<u64>(c) << 56));
  // Toggle-activity proxy in [0,1): the fraction of the sensitized cone this
  // operand state toggles.  High activity lengthens the effective path.
  const double toggle = hash_to_unit(h);
  const double gauss = hash_to_gaussian(hash_mix(h ^ 0x70991eULL));
  const double f = mu_[c] + cfg_.toggle_weight * (toggle - 0.5) + sigma_ * gauss;
  return std::clamp(f, 1.0 - cfg_.clamp, 1.0 + cfg_.clamp);
}

}  // namespace vasim::timing
