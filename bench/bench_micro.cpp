// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: TEP lookup/train, gate simulation, statistical STA, cache
// access, stats counters, trace generation, and whole-pipeline throughput.
//
// The custom main also re-times the StatSet-vs-Registry counter pair with a
// plain chrono loop and records the measured speedup in BENCH_micro.json
// (suppressed by VASIM_JSON=0), so the no-string-lookups-on-the-hot-path
// property is part of the diffable perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/circuit/sta.hpp"
#include "src/common/env.hpp"
#include "src/common/stats.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/cache.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

void BM_TepPredict(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  for (Pc pc = 0; pc < 1024; ++pc) tep.train(0x1000 + pc * 4, 0, true, timing::OooStage::kIssueSelect);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tep.predict(0x1000 + (i % 4096) * 4, i, i));
    ++i;
  }
}
BENCHMARK(BM_TepPredict);

void BM_TepTrain(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  u64 i = 0;
  for (auto _ : state) {
    tep.train(0x1000 + (i % 4096) * 4, i, (i & 3) == 0, timing::OooStage::kExecute);
    ++i;
  }
  benchmark::DoNotOptimize(tep.predictions());
}
BENCHMARK(BM_TepTrain);

void BM_GateSimAlu(benchmark::State& state) {
  const circuit::Component alu = circuit::build_simple_alu(32);
  circuit::GateSim sim(&alu.netlist);
  std::vector<u8> in(static_cast<std::size_t>(circuit::input_width(alu)), 0);
  u64 i = 0;
  for (auto _ : state) {
    in[i % in.size()] ^= 1;
    ++i;
    benchmark::DoNotOptimize(sim.evaluate(in));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<u64>(alu.netlist.num_signals()));
}
BENCHMARK(BM_GateSimAlu);

void BM_StatisticalSta(benchmark::State& state) {
  const circuit::Component agen = circuit::build_agen(32, 16);
  const timing::ProcessVariation pv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_statistical(agen.netlist, pv, 8));
  }
}
BENCHMARK(BM_StatisticalSta);

void BM_CacheAccess(benchmark::State& state) {
  cpu::Cache cache(cpu::CacheConfig{32 * 1024, 4, 64, 1});
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_u64() & 0xFFFFF));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_StatSetInc(benchmark::State& state) {
  // The historical hot path: one std::map string lookup per event.
  StatSet stats;
  stats.inc("ev.broadcast", 0);
  for (auto _ : state) {
    stats.inc("ev.broadcast");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(stats.count("ev.broadcast"));
}
BENCHMARK(BM_StatSetInc);

void BM_RegistryCounterInc(benchmark::State& state) {
  // The interned replacement: the name is resolved once, the loop is a
  // pointer bump.
  obs::Registry reg;
  obs::Counter c = reg.counter("ev.broadcast");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_RegistryCounterInc);

void BM_TraceGeneration(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("gcc");
  workload::TraceGenerator gen(prof);
  isa::DynInst d;
  for (auto _ : state) {
    gen.next(d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_PipelineThroughput(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineThroughput)->Unit(benchmark::kMillisecond);

void BM_PipelineWithFaultsAbs(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    core::TimingErrorPredictor tep({}, &fm.environment());
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_abs(), &gen, &fm, &tep);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineWithFaultsAbs)->Unit(benchmark::kMillisecond);

// ---- stats-overhead record -------------------------------------------------

/// Best-of-`reps` ns/op for `body(iters)` with a steady_clock around it.
template <typename Body>
double best_ns_per_op(const Body& body, u64 iters, int reps) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body(iters);
    const auto t1 = Clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                      static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

/// Writes BENCH_micro.json with the StatSet-vs-Registry increment cost
/// (unless VASIM_JSON=0).  Measured outside google-benchmark so the file's
/// schema stays under our control.
void emit_stats_overhead_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  constexpr u64 kIters = 2'000'000;
  constexpr int kReps = 5;

  StatSet stats;
  stats.inc("ev.broadcast", 0);
  const double map_ns = best_ns_per_op(
      [&stats](u64 n) {
        for (u64 i = 0; i < n; ++i) {
          stats.inc("ev.broadcast");
          benchmark::ClobberMemory();
        }
      },
      kIters, kReps);
  benchmark::DoNotOptimize(stats.count("ev.broadcast"));

  obs::Registry reg;
  obs::Counter c = reg.counter("ev.broadcast");
  const double handle_ns = best_ns_per_op(
      [&c](u64 n) {
        for (u64 i = 0; i < n; ++i) {
          c.inc();
          benchmark::ClobberMemory();
        }
      },
      kIters, kReps);
  benchmark::DoNotOptimize(c.value());

  const double speedup = handle_ns > 0.0 ? map_ns / handle_ns : 0.0;
  std::ofstream out("BENCH_micro.json");
  if (!out) return;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"micro\",\n"
                "  \"schema_version\": 1,\n"
                "  \"statset_inc_ns\": %.3f,\n"
                "  \"registry_inc_ns\": %.3f,\n"
                "  \"registry_speedup\": %.2f\n"
                "}\n",
                map_ns, handle_ns, speedup);
  out << buf;
  std::printf("[BENCH_micro.json: StatSet::inc %.1f ns, registry handle %.1f ns, %.1fx]\n",
              map_ns, handle_ns, speedup);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_stats_overhead_json();
  return 0;
}
