#include "src/cpu/fu_pool.hpp"

namespace vasim::cpu {

FuKind fu_kind_for(isa::OpClass op) {
  switch (op) {
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv:
      return FuKind::kComplexAlu;
    case isa::OpClass::kLoad:
      return FuKind::kLoadPort;
    case isa::OpClass::kStore:
      return FuKind::kStorePort;
    case isa::OpClass::kBranch:
      return FuKind::kBranch;
    default:
      return FuKind::kSimpleAlu;
  }
}

FuPool::FuPool(const CoreConfig& cfg, obs::Registry* reg) {
  const auto add_kind = [this](FuKind kind, int count) {
    kind_begin_[static_cast<std::size_t>(kind)] = static_cast<u32>(units_.size());
    for (int i = 0; i < count; ++i) units_.push_back({kind, true, 0});
    kind_end_[static_cast<std::size_t>(kind)] = static_cast<u32>(units_.size());
  };
  add_kind(FuKind::kSimpleAlu, cfg.simple_alus);
  add_kind(FuKind::kComplexAlu, cfg.complex_alus);
  add_kind(FuKind::kBranch, cfg.branch_units);
  add_kind(FuKind::kLoadPort, cfg.load_ports);
  add_kind(FuKind::kStorePort, cfg.store_ports);
  if (reg != nullptr) {
    counting_ = true;
    c_alu_ = reg->counter("ev.fu.alu");
    c_mul_ = reg->counter("ev.fu.mul");
    c_div_ = reg->counter("ev.fu.div");
    c_branch_ = reg->counter("ev.fu.branch");
    c_mem_ = reg->counter("ev.fu.mem");
  }
}

void FuPool::count_allocation(FuKind kind, isa::OpClass op) {
  switch (kind) {
    case FuKind::kSimpleAlu: c_alu_.inc(); break;
    case FuKind::kComplexAlu:
      (op == isa::OpClass::kIntDiv ? c_div_ : c_mul_).inc();
      break;
    case FuKind::kBranch: c_branch_.inc(); break;
    case FuKind::kLoadPort:
    case FuKind::kStorePort: c_mem_.inc(); break;
  }
}

bool FuPool::occupies_fully(isa::OpClass op, const Unit& u) {
  // Divide is the unpipelined multi-cycle case of Section 3.3.3.
  return op == isa::OpClass::kIntDiv || !u.pipelined;
}

int FuPool::allocate(isa::OpClass op, Cycle cycle, Cycle latency, bool occupy_extra) {
  const auto want = static_cast<std::size_t>(fu_kind_for(op));
  for (u32 i = kind_begin_[want]; i < kind_end_[want]; ++i) {
    Unit& u = units_[i];
    if (u.next_free > cycle) continue;
    Cycle busy_until = occupies_fully(op, u) ? cycle + latency : cycle + 1;
    if (occupy_extra) busy_until += 1;
    u.next_free = busy_until;
    if (counting_) count_allocation(u.kind, op);
    return static_cast<int>(i);
  }
  return -1;
}

bool FuPool::can_accept(isa::OpClass op, Cycle cycle) const {
  const auto want = static_cast<std::size_t>(fu_kind_for(op));
  for (u32 i = kind_begin_[want]; i < kind_end_[want]; ++i) {
    if (units_[i].next_free <= cycle) return true;
  }
  return false;
}

void FuPool::shift_time(Cycle delta) {
  for (Unit& u : units_) u.next_free += delta;
}

}  // namespace vasim::cpu
