// Predictor comparison: the paper's TEP (Section 2.1.1) against its two
// ancestors -- Xin & Joseph's Most-Recent-Entry predictor [13] and Roy &
// Chakraborty's Timing Violation Predictor [12] -- measuring coverage
// (handled / actual faults), false positives, replays and the resulting ABS
// performance overhead at the high fault rate.
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 100'000);
  const core::SweepRunner sweeper(rc);
  bench::print_run_header("Predictor study: TEP vs MRE [13] vs TVP [12] (ABS @ 0.97 V)", rc,
                          sweeper.workers());

  const struct {
    const char* name;
    core::PredictorKind kind;
  } kinds[] = {{"TEP", core::PredictorKind::kTep},
               {"MRE", core::PredictorKind::kMre},
               {"TVP", core::PredictorKind::kTvp}};

  // One grid: per predictor kind (a per-job config override), per profile,
  // the fault-free baseline and the ABS run -- 72 jobs for the default 12
  // SPEC2006 workloads.
  const auto profiles = workload::spec2006_profiles();
  std::vector<core::SweepJob> jobs;
  jobs.reserve(std::size(kinds) * profiles.size() * 2);
  for (const auto& kind : kinds) {
    core::RunnerConfig c = rc;
    c.predictor = kind.kind;
    for (const auto& prof : profiles) {
      jobs.push_back({prof, std::nullopt, 0.97, c});
      jobs.push_back({prof, cpu::scheme_abs(), 0.97, c});
    }
  }
  const core::SweepReport report = sweeper.run(jobs);

  TextTable t({"predictor", "coverage", "false-pos/kinstr", "replays/kinstr", "ABS perf-ovh%"});
  std::size_t at = 0;
  for (const auto& kind : kinds) {
    double cov = 0, fp = 0, rp = 0, ovh = 0;
    int n = 0;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const core::RunResult& ff = report.jobs[at++].result;
      const core::RunResult& r = report.jobs[at++].result;
      cov += r.predictor_accuracy;
      fp += static_cast<double>(r.stats.count("fault.false_positive")) /
            static_cast<double>(r.committed) * 1000.0;
      rp += r.replays / static_cast<double>(r.committed) * 1000.0;
      ovh += core::overhead_vs(ff, r).perf_pct;
      ++n;
    }
    t.add_row({kind.name, TextTable::fmt(cov / n, 3), TextTable::fmt(fp / n, 2),
               TextTable::fmt(rp / n, 2), TextTable::fmt(ovh / n, 2)});
  }
  std::cout << t.render("Averages over the 12 SPEC2006 workloads") << "\n";
  std::cout << "Reading: all three designs reach high coverage on recurring faults.\n"
               "The TEP's extra machinery cuts false positives (vs the untagged TVP)\n"
               "but costs coverage in this model: sensor gating holds weak entries\n"
               "back, and branch-history indexing spreads one PC's fault state over\n"
               "several entries that each retrain from scratch.  When violations are\n"
               "as PC-deterministic as the commonality study says, the simpler\n"
               "last-outcome MRE is hard to beat -- history indexing pays off only\n"
               "when fault behaviour is context-dependent (see Ablation 2's table-size\n"
               "interaction).\n";
  bench::emit_json("predictors", report);
  return 0;
}
