// DVFS controller policy interface and the two closed-loop policies.
//
// Controllers are stepped once per epoch (a fixed number of committed
// instructions) with the epoch's architectural and sensor features, and
// answer with the clock period for the next epoch.  All controller state is
// plain arithmetic over those features -- no RNG -- so a run is reproducible
// from (seed, config) alone and bit-identical across the per-job, batch,
// shard and serve execution paths.  Every policy serializes its full state
// for snapshot/restore.
#ifndef VASIM_ADAPT_CONTROLLER_HPP
#define VASIM_ADAPT_CONTROLLER_HPP

#include <array>
#include <memory>
#include <vector>

#include "src/adapt/dvfs.hpp"
#include "src/snap/io.hpp"
#include "src/timing/stage.hpp"

namespace vasim::adapt {

/// Per-epoch deltas plus derived features handed to a controller step.
struct EpochStats {
  u64 epoch_index = 0;
  u64 committed = 0;   ///< instructions committed this epoch
  u64 cycles = 0;      ///< cycles elapsed this epoch
  u64 violations = 0;  ///< actual timing violations this epoch
  u64 replays = 0;     ///< replay recoveries this epoch
  std::array<u64, timing::kNumOooStages> stage_violations{};  ///< per-FU split
  double ipc = 0.0;
  double violation_pct = 0.0;  ///< violations / committed * 100
  double mem_fraction = 0.0;   ///< memory share of the epoch's CPI stack
  bool hot = false;            ///< thermal sensor: slow half of the wave
  bool droopy = false;         ///< voltage sensor: sagging supply
};

/// Policy interface.  `next_period` receives the period (permille) that was
/// in effect during the epoch just finished and returns the unclamped wish
/// for the next one; the ClockDomain clamps to [period_min, period_max].
class DvfsController {
 public:
  virtual ~DvfsController() = default;
  [[nodiscard]] virtual u32 next_period(const EpochStats& e, u32 current) = 0;
  virtual void save_state(snap::Writer& w) const = 0;
  virtual void restore_state(snap::Reader& r) = 0;
};

/// Sensor-gated threshold controller (the paper's TEP assumption): raise the
/// period proportionally to violation-rate overshoot, lower it one step after
/// `quiet_epochs` consecutive under-budget epochs -- but never lower while a
/// thermal or droop sensor reports adverse conditions.
class ReactiveController final : public DvfsController {
 public:
  explicit ReactiveController(const DvfsConfig& cfg) : cfg_(cfg) {}
  [[nodiscard]] u32 next_period(const EpochStats& e, u32 current) override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;

 private:
  DvfsConfig cfg_;
  u32 quiet_ = 0;
};

/// Online table + linear model: one bucket per `step_permille` of period
/// range, each holding EWMAs of the observed violation rate and CPI; a small
/// linear model over epoch features (IPC, per-FU violation rates, memory CPI
/// share) predicts CPI for never-visited buckets, with an optimistic prior
/// that drives deterministic downward exploration.  Each step picks the
/// bucket minimizing predicted wall time per instruction, period * CPI,
/// subject to the violation budget.
class PredictiveController final : public DvfsController {
 public:
  explicit PredictiveController(const DvfsConfig& cfg);
  [[nodiscard]] u32 next_period(const EpochStats& e, u32 current) override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;

  [[nodiscard]] std::size_t buckets() const { return viol_.size(); }

 private:
  [[nodiscard]] std::size_t bucket_of(u32 period) const;
  [[nodiscard]] u32 period_of(std::size_t b) const;
  [[nodiscard]] double predicted_viol(std::size_t b) const;

  DvfsConfig cfg_;
  std::vector<double> viol_;    ///< EWMA violation pct per bucket
  std::vector<double> cpi_;     ///< EWMA cycles-per-instruction per bucket
  std::vector<u64> visits_;
  std::array<double, 4> w_{};   ///< linear CPI model: 1, ipc, mem_frac, viol_pct
  u64 steps_ = 0;
};

/// Factory; kStatic yields nullptr (no controller is ever attached).
std::unique_ptr<DvfsController> make_controller(const DvfsConfig& cfg);

}  // namespace vasim::adapt

#endif  // VASIM_ADAPT_CONTROLLER_HPP
