// Data-oriented scheduler kernel: the storage layer of the out-of-order
// cycle loop.
//
// The paper's contribution lives in the issue stage (TEP-gated
// wakeup/select, delayed broadcast, slot freezing, the ABS/FFS/CDS
// policies), so the per-cycle hot loop is dominated by scheduler-structure
// walks.  This header provides the four data structures that replace the
// seed's array-of-structs deque walks with word-wide bit operations:
//
//  * Arena       -- one reusable allocation per pipeline; every per-run
//                   scratch array is carved from it, so the steady-state
//                   cycle loop performs zero heap allocations (asserted by
//                   tests/test_sched_kernel.cpp).
//  * Ring<T>     -- fixed-capacity power-of-two ring buffer (ROB window,
//                   frontend and refetch queues; no deque node churn).
//  * EventWheel  -- countdown wheel of intrusive event lists sized to the
//                   max execution latency + delayed-broadcast slack;
//                   schedule/pop are O(1) and the pooled nodes never touch
//                   the allocator.  Each bucket tracks its max SeqNum so a
//                   squash skips buckets with no squashed events.
//  * IssueWindow -- structure-of-arrays issue window: hot per-slot fields
//                   (source tags, pending-operand counts, quantized
//                   load/store addresses, mod-64 ABS timestamps) live in
//                   parallel arrays with 64-bit waiting/ready/
//                   predicted-faulty/critical/memop/store bitmasks, so
//                   wakeup is a masked scan of the not-ready waiters and
//                   ABS/FFS/CDS selection is masked std::countr_zero
//                   iteration instead of building and sorting a candidate
//                   pointer vector.
//
// Everything here is behaviour-preserving with respect to the seed
// implementation: tests/test_golden_equiv.cpp pins bitwise-identical
// results across the scheme x benchmark x supply grid.
#ifndef VASIM_CPU_SCHED_KERNEL_HPP
#define VASIM_CPU_SCHED_KERNEL_HPP

#include <bit>
#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "src/common/types.hpp"
#include "src/cpu/hooks.hpp"
#include "src/isa/dyninst.hpp"
#include "src/snap/io.hpp"
#include "src/timing/stage.hpp"

namespace vasim::cpu {

/// Smallest power of two >= v (v >= 1).
constexpr u32 next_pow2_u32(u32 v) {
  return v <= 1 ? 1u : u32{1} << (32 - std::countl_zero(v - 1));
}

// ---- arena -----------------------------------------------------------------

/// Bump allocator over one contiguous block.  The pipeline computes its
/// total scratch budget up front, reserves once, and carves every array out
/// of the block; there is no free().  Types must be trivially copyable --
/// slots are initialized by whole-struct assignment, never constructors.
class Arena {
 public:
  /// Size the block.  Discards all previous carvings.
  void reserve(std::size_t bytes) {
    block_.assign(bytes, std::byte{0});
    used_ = 0;
  }

  /// Bytes to budget for an alloc<T>(n) (payload + worst-case padding).
  template <typename T>
  [[nodiscard]] static constexpr std::size_t need(std::size_t n) {
    return n * sizeof(T) + alignof(T);
  }

  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    used_ = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    if (used_ + n * sizeof(T) > block_.size()) {
      throw std::logic_error("Arena: scratch budget under-computed");
    }
    T* p = reinterpret_cast<T*>(block_.data() + used_);
    used_ += n * sizeof(T);
    return p;
  }

  [[nodiscard]] std::size_t capacity() const { return block_.size(); }
  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  std::vector<std::byte> block_;
  std::size_t used_ = 0;
};

// ---- ring ------------------------------------------------------------------

/// Fixed-capacity power-of-two ring over arena storage.  push when full is
/// a hard error (capacities are provable bounds, see pipeline.cpp); going
/// past them means the bound reasoning broke, and a loud failure beats
/// silent corruption.
template <typename T>
class Ring {
 public:
  void init(T* storage, u32 cap_pow2) {
    s_ = storage;
    mask_ = cap_pow2 - 1;
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] u32 size() const { return size_; }
  [[nodiscard]] u32 capacity() const { return mask_ + 1; }

  [[nodiscard]] T& front() { return s_[head_]; }
  [[nodiscard]] const T& front() const { return s_[head_]; }
  [[nodiscard]] T& back() { return s_[(head_ + size_ - 1) & mask_]; }
  /// i-th element from the front.
  [[nodiscard]] T& at(u32 i) { return s_[(head_ + i) & mask_]; }
  [[nodiscard]] const T& at(u32 i) const { return s_[(head_ + i) & mask_]; }

  void push_back(const T& v) {
    check_space();
    s_[(head_ + size_) & mask_] = v;
    ++size_;
  }
  void push_front(const T& v) {
    check_space();
    head_ = (head_ - 1) & mask_;
    s_[head_] = v;
    ++size_;
  }
  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }

 private:
  void check_space() const {
    if (size_ > mask_) throw std::logic_error("Ring: capacity bound violated");
  }

  T* s_ = nullptr;
  u32 mask_ = 0;
  u32 head_ = 0;
  u32 size_ = 0;
};

// ---- event wheel -----------------------------------------------------------

enum class EventKind : u8 { kBroadcast, kComplete, kEpStall, kReplay };

struct Event {
  EventKind kind = EventKind::kComplete;
  SeqNum seq = 0;
};

/// Countdown wheel of pooled intrusive event lists, keyed by *stored* cycle
/// (due cycle minus the pipeline's global-stall shift).  The pipeline pops
/// exactly one stored cycle per scheduling step, in order, so `pop_due`
/// drains a single bucket; an event scheduled for an already-popped stored
/// cycle (Error Padding at stage offset 0) lands in the next pop, exactly
/// matching the seed's "pop every bucket <= now" map semantics.
class EventWheel {
 public:
  [[nodiscard]] static std::size_t bytes_needed(u32 buckets, u32 pool) {
    return Arena::need<Node>(pool) + Arena::need<i32>(buckets) + Arena::need<SeqNum>(buckets) +
           Arena::need<u64>(buckets / 64 + 1);
  }

  void init(Arena& a, u32 buckets_pow2, u32 pool_cap);

  /// Schedules (kind, seq) at `stored_cycle`.  Past-due cycles snap to the
  /// next pop (see class comment).
  void schedule(Cycle stored_cycle, EventKind kind, SeqNum seq) {
    if (stored_cycle < next_pop_) stored_cycle = next_pop_;
    if (stored_cycle - next_pop_ > mask_) {
      throw std::logic_error("EventWheel: horizon under-computed for this configuration");
    }
    if (free_ < 0) throw std::logic_error("EventWheel: node pool exhausted");
    const u32 b = static_cast<u32>(stored_cycle) & mask_;
    const i32 idx = free_;
    Node& n = pool_[idx];
    free_ = n.next;
    n.seq = seq;
    n.kind = kind;
    n.next = heads_[b];
    if (heads_[b] < 0 || seq > max_seq_[b]) max_seq_[b] = seq;
    heads_[b] = idx;
    occ_[b >> 6] |= u64{1} << (b & 63);
  }

  /// Drains the bucket due at `stored_now` (which must advance by exactly
  /// one per call -- the pipeline's scheduling-step invariant) into `out`;
  /// returns the count.  Order within a bucket is unspecified; the caller
  /// sorts by (kind, seq) exactly as the seed did.
  u32 pop_due(Cycle stored_now, Event* out) {
    next_pop_ = stored_now + 1;
    const u32 b = static_cast<u32>(stored_now) & mask_;
    u32 n = 0;
    i32 idx = heads_[b];
    while (idx >= 0) {
      Node& node = pool_[idx];
      out[n++] = Event{node.kind, node.seq};
      const i32 nx = node.next;
      node.next = free_;
      free_ = idx;
      idx = nx;
    }
    heads_[b] = -1;
    max_seq_[b] = 0;
    occ_[b >> 6] &= ~(u64{1} << (b & 63));
    return n;
  }

  /// Drops every pending event with seq > last_kept (their sequence numbers
  /// are about to be recycled by a squash).  Buckets whose max SeqNum is
  /// <= last_kept hold no squashed events and are skipped without scanning.
  void filter_squashed(SeqNum last_kept);

  /// Drops every pending event (full squash: nothing in flight survives, so
  /// no event is still meaningful).  The time base (`next_pop_`) persists.
  void clear_events();

  [[nodiscard]] u32 buckets() const { return mask_ + 1; }
  [[nodiscard]] u32 pool_capacity() const { return pool_cap_; }

  /// Serializes the time base plus every pending event with its *absolute*
  /// stored cycle (reconstructed from the bucket index relative to
  /// next_pop_).  Restore re-schedules each event, so free-list and
  /// intra-bucket list order may differ from the original -- unobservable,
  /// because pop_due's contract leaves intra-bucket order unspecified and
  /// the pipeline sorts popped events by (kind, seq).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct Node {
    SeqNum seq = 0;
    i32 next = -1;
    EventKind kind = EventKind::kComplete;
  };

  Node* pool_ = nullptr;
  i32* heads_ = nullptr;
  SeqNum* max_seq_ = nullptr;
  u64* occ_ = nullptr;
  i32 free_ = -1;
  u32 mask_ = 0;
  u32 pool_cap_ = 0;
  Cycle next_pop_ = 0;
};

// ---- issue window ----------------------------------------------------------

/// Per-instruction in-flight bookkeeping (the "cold" record; one ring slot
/// each).  The fields the per-cycle loops touch are mirrored into the
/// IssueWindow's parallel arrays and bitmasks.
struct InstState {
  isa::DynInst di;
  u64 age = 0;  ///< issue timestamp (ABS selection key)
  u64 tep_history = 0;
  // Rename.
  int phys_dst = kNoReg;
  int old_phys = kNoReg;
  int phys_src1 = kNoReg;
  int phys_src2 = kNoReg;
  // Status.
  bool in_iq = false;
  bool issued = false;
  bool completed = false;
  bool safe_mode = false;  ///< replayed instance: guaranteed fault-free
  // Fault metadata.
  bool pred_fault = false;
  timing::OooStage pred_stage = timing::OooStage::kIssueSelect;
  bool pred_critical = false;
  bool actual_fault = false;
  timing::OooStage actual_stage = timing::OooStage::kIssueSelect;
  bool fault_handled = false;
  bool replay_scheduled = false;
  bool retire_fault = false;   ///< in-order retire-stage violation
  bool retire_padded = false;  ///< retire already took its extra cycle
  bool wrong_path = false;     ///< synthesized mispredicted-path work
};

/// DynInst / InstState snapshot codecs, shared by IssueWindow::save_state
/// and the Pipeline's frontend/refetch ring serialization.
void put_dyninst(snap::Writer& w, const isa::DynInst& d);
isa::DynInst get_dyninst(snap::Reader& r);
void put_inst_state(snap::Writer& w, const InstState& is);
InstState get_inst_state(snap::Reader& r);

/// Structure-of-arrays ROB/issue window.  Slots are addressed by
/// seq & (capacity-1): the window holds a contiguous SeqNum range no longer
/// than the ROB, so the mapping is collision-free and a commit/squash never
/// moves survivors.  Ring order (head slot onwards) *is* dispatch order is
/// age order, which is what every selection policy ultimately sorts by.
class IssueWindow {
 public:
  /// Number of 64-slot mask words for a given capacity.
  [[nodiscard]] static constexpr u32 words_for(u32 cap_pow2) { return (cap_pow2 + 63) / 64; }

  [[nodiscard]] static std::size_t bytes_needed(u32 cap_pow2, u32 num_phys) {
    const u32 w = words_for(cap_pow2);
    return Arena::need<InstState>(cap_pow2) + Arena::need<i32>(2 * cap_pow2) +
           Arena::need<u64>(cap_pow2) + Arena::need<u8>(2 * cap_pow2) +
           7 * Arena::need<u64>(w) + 2 * Arena::need<u64>(num_phys * w);
  }

  void init(Arena& a, u32 cap_pow2, u32 num_phys) {
    cap_mask_ = cap_pow2 - 1;
    words_ = words_for(cap_pow2);
    num_phys_ = num_phys;
    cold_ = a.alloc<InstState>(cap_pow2);
    src1_ = a.alloc<i32>(cap_pow2);
    src2_ = a.alloc<i32>(cap_pow2);
    addrq_ = a.alloc<u64>(cap_pow2);
    pending_ = a.alloc<u8>(cap_pow2);
    abs6_ = a.alloc<u8>(cap_pow2);
    waiting_ = a.alloc<u64>(words_);
    ready_ = a.alloc<u64>(words_);
    issued_ = a.alloc<u64>(words_);
    predf_ = a.alloc<u64>(words_);
    crit_ = a.alloc<u64>(words_);
    memop_ = a.alloc<u64>(words_);
    store_ = a.alloc<u64>(words_);
    waiters1_ = a.alloc<u64>(num_phys * words_);
    waiters2_ = a.alloc<u64>(num_phys * words_);
    for (u32 w = 0; w < words_; ++w) {
      waiting_[w] = ready_[w] = issued_[w] = predf_[w] = crit_[w] = memop_[w] = store_[w] = 0;
    }
    for (u32 i = 0; i < num_phys * words_; ++i) waiters1_[i] = waiters2_[i] = 0;
    head_seq_ = 0;
    size_ = 0;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] u32 size() const { return size_; }
  [[nodiscard]] u32 capacity() const { return cap_mask_ + 1; }
  [[nodiscard]] u32 mask_words() const { return words_; }
  [[nodiscard]] SeqNum head_seq() const { return head_seq_; }
  [[nodiscard]] u32 slot_of(SeqNum seq) const { return static_cast<u32>(seq) & cap_mask_; }

  [[nodiscard]] InstState& slot_state(u32 slot) { return cold_[slot]; }
  [[nodiscard]] const InstState& slot_state(u32 slot) const { return cold_[slot]; }
  [[nodiscard]] InstState& head() { return cold_[slot_of(head_seq_)]; }
  [[nodiscard]] InstState& back() { return cold_[slot_of(head_seq_ + size_ - 1)]; }

  [[nodiscard]] InstState* find(SeqNum seq) {
    if (size_ == 0 || seq < head_seq_ || seq - head_seq_ >= size_) return nullptr;
    return &cold_[slot_of(seq)];
  }

  /// Batch entry point: touches the mask words and the head-of-window cold
  /// record so a lockstep driver can pull the next job's hot state into
  /// cache while the current job's cycle finishes (core::BatchRunner).
  void prefetch_hot() const {
    for (u32 w = 0; w < words_; ++w) {
      __builtin_prefetch(&waiting_[w], 0, 3);
      __builtin_prefetch(&ready_[w], 0, 3);
      __builtin_prefetch(&issued_[w], 0, 3);
    }
    if (size_ > 0) __builtin_prefetch(&cold_[slot_of(head_seq_)], 0, 2);
  }

  /// Appends the (fully initialized) record at the tail.  `src1_pending` /
  /// `src2_pending` flag the source operands that are not yet ready; the hot
  /// mirrors (including the per-register waiter masks) are derived here, in
  /// one place.
  void push_back(const InstState& is, bool src1_pending, bool src2_pending) {
    if (size_ > cap_mask_) throw std::logic_error("IssueWindow: over capacity");
    const SeqNum seq = is.di.seq;
    if (size_ == 0) head_seq_ = seq;
    const u32 slot = slot_of(seq);
    cold_[slot] = is;
    src1_[slot] = is.phys_src1;
    src2_[slot] = is.phys_src2;
    addrq_[slot] = is.di.mem_addr & ~7ULL;
    const int pending = (src1_pending ? 1 : 0) + (src2_pending ? 1 : 0);
    pending_[slot] = static_cast<u8>(pending);
    abs6_[slot] = static_cast<u8>(is.age & 63);
    const u64 bit = u64{1} << (slot & 63);
    const u32 w = slot >> 6;
    if (src1_pending) waiters1_[static_cast<u32>(is.phys_src1) * words_ + w] |= bit;
    if (src2_pending) waiters2_[static_cast<u32>(is.phys_src2) * words_ + w] |= bit;
    waiting_[w] |= bit;
    set_or_clear(ready_, w, bit, pending == 0);
    issued_[w] &= ~bit;
    set_or_clear(predf_, w, bit, is.pred_fault);
    set_or_clear(crit_, w, bit, is.pred_fault && is.pred_critical);
    set_or_clear(memop_, w, bit, isa::is_mem(is.di.op));
    set_or_clear(store_, w, bit, is.di.op == isa::OpClass::kStore);
    ++size_;
  }

  /// Retires the head (commit).
  void pop_front() {
    clear_slot_bits(slot_of(head_seq_));
    ++head_seq_;
    --size_;
  }

  /// Drops the tail (squash).
  void pop_back() {
    clear_slot_bits(slot_of(head_seq_ + size_ - 1));
    --size_;
  }

  /// The instruction left the queue: no longer a wakeup/select participant.
  void on_issued(SeqNum seq) {
    const u32 slot = slot_of(seq);
    waiting_[slot >> 6] &= ~(u64{1} << (slot & 63));
    issued_[slot >> 6] |= u64{1} << (slot & 63);
  }

  /// Tag broadcast: wakes every waiting instruction whose source matches
  /// `dst_phys` and returns the number of waiting dependents (the CDL count
  /// of Section 3.5.2).  The scan is confined to the register's waiter
  /// masks, populated at dispatch: a consumer that was ready at dispatch can
  /// never see this broadcast (the register broadcasts exactly once per
  /// allocation and cannot be reallocated while a consumer is in the
  /// window), so the masks cover every true waiter.  A mask bit can be
  /// stale -- its slot recycled by commit+dispatch or squash -- so each hit
  /// is validated against the live source tags before it counts.
  /// `newly_ready`/`n_ready` (optional) collect the slots whose pending
  /// count hit zero on this broadcast -- the delay-tracking kernel re-files
  /// them under the current cycle (estimate repair on resolve).
  int wake(int dst_phys, u32* newly_ready = nullptr, u32* n_ready = nullptr) {
    int deps = 0;
    u64* m1w = waiters1_ + static_cast<u32>(dst_phys) * words_;
    u64* m2w = waiters2_ + static_cast<u32>(dst_phys) * words_;
    for (u32 w = 0; w < words_; ++w) {
      u64 bits = (m1w[w] | m2w[w]) & waiting_[w] & ~ready_[w];
      m1w[w] = 0;
      m2w[w] = 0;
      while (bits != 0) {
        const u32 slot = w * 64 + static_cast<u32>(std::countr_zero(bits));
        const u64 bit = bits & (~bits + 1);
        bits &= bits - 1;
        const bool m1 = src1_[slot] == dst_phys;
        const bool m2 = src2_[slot] == dst_phys;
        if (!m1 && !m2) continue;  // stale bit from a recycled slot
        ++deps;
        pending_[slot] = static_cast<u8>(pending_[slot] - (m1 ? 1 : 0) - (m2 ? 1 : 0));
        if (pending_[slot] == 0) {
          ready_[w] |= bit;
          if (newly_ready != nullptr) newly_ready[(*n_ready)++] = slot;
        }
      }
    }
    return deps;
  }

  /// Fills `out[mask_words()]` with this cycle's select candidates
  /// (waiting, operands ready, and not a blocked memory op); returns true
  /// when any candidate exists.
  bool collect_candidates(bool mem_blocked, u64* out) const {
    u64 any = 0;
    for (u32 w = 0; w < words_; ++w) {
      u64 c = waiting_[w] & ready_[w];
      if (mem_blocked) c &= ~memop_[w];
      out[w] = c;
      any |= c;
    }
    return any != 0;
  }

  /// Visits candidate slots in seq (= age) order: the ring segment from the
  /// head slot wraps at capacity.  `filter`/`invert` restrict to a policy
  /// class (predicted-faulty first, critical first).  `f(slot)` returns
  /// false to stop; the function returns false when stopped early.
  template <typename F>
  bool for_each_in_order(const u64* cand, const u64* filter, bool invert, F&& f) const {
    const u32 head_slot = slot_of(head_seq_);
    const u32 cap = cap_mask_ + 1;
    const u32 end = head_slot + size_;
    if (!visit_range(cand, filter, invert, head_slot, end < cap ? end : cap, f)) return false;
    if (end > cap) {
      if (!visit_range(cand, filter, invert, 0, end - cap, f)) return false;
    }
    return true;
  }

  /// Store-to-load gate (idealized disambiguation): the youngest store older
  /// than `load_seq` whose quantized address matches decides -- issued
  /// means the load may issue and forwards, un-issued blocks the load, no
  /// match means the load may issue from the cache.  Scans stores only,
  /// youngest first, so the first hit decides.
  bool load_may_issue(SeqNum load_seq, u64 line_addr, bool* forwarded) const {
    *forwarded = false;
    if (load_seq <= head_seq_) return true;
    const u32 cap = cap_mask_ + 1;
    const u32 head_slot = slot_of(head_seq_);
    const u32 older = static_cast<u32>(load_seq - head_seq_);  // ring length to scan
    const u32 end = head_slot + older;
    // Descending scan: the wrapped segment [0, end-cap) is youngest.
    if (end > cap) {
      const int d = youngest_matching_store(0, end - cap, line_addr);
      if (d >= 0) {
        *forwarded = d > 0;
        return d > 0;
      }
    }
    const int d = youngest_matching_store(head_slot, end < cap ? end : cap, line_addr);
    if (d >= 0) {
      *forwarded = d > 0;
      return d > 0;
    }
    return true;
  }

  /// Policy filter masks for for_each_in_order (TEP predicted-faulty, and
  /// predicted-faulty-and-critical).
  [[nodiscard]] const u64* predf_mask() const { return predf_; }
  [[nodiscard]] const u64* crit_mask() const { return crit_; }

  /// Outstanding-operand count of a slot (the delay-tracking kernel's
  /// pop-time readiness verification).
  [[nodiscard]] u8 pending_of(u32 slot) const { return pending_[slot]; }

  /// The hardware ABS order key: 6-bit timestamp assigned at dispatch.
  /// Age order is recovered by comparing wrapped distances from the head's
  /// timestamp (tests/test_sched_kernel.cpp pins wraparound behaviour).
  [[nodiscard]] u8 abs_timestamp(u32 slot) const { return abs6_[slot]; }
  [[nodiscard]] static u8 abs_distance(u8 ts, u8 head_ts) {
    return static_cast<u8>((ts - head_ts) & 63);
  }

  /// Serializes occupancy, every live slot (cold record + hot mirrors), all
  /// status bitmask words, and the per-register waiter masks.  The waiter
  /// masks are copied verbatim (not re-derived): they legitimately carry
  /// stale bits from recycled slots, and bit-identical continuation requires
  /// preserving them exactly.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  static void set_or_clear(u64* mask, u32 w, u64 bit, bool on) {
    if (on) {
      mask[w] |= bit;
    } else {
      mask[w] &= ~bit;
    }
  }

  void clear_slot_bits(u32 slot) {
    const u64 nbit = ~(u64{1} << (slot & 63));
    const u32 w = slot >> 6;
    waiting_[w] &= nbit;
    ready_[w] &= nbit;
    issued_[w] &= nbit;
    predf_[w] &= nbit;
    crit_[w] &= nbit;
    memop_[w] &= nbit;
    store_[w] &= nbit;
  }

  template <typename F>
  bool visit_range(const u64* cand, const u64* filter, bool invert, u32 begin, u32 end,
                   F&& f) const {
    for (u32 w = begin >> 6; w <= (end - 1) >> 6 && begin < end; ++w) {
      u64 bits = cand[w];
      if (filter != nullptr) bits &= invert ? ~filter[w] : filter[w];
      // Trim to [begin, end).
      if ((w << 6) < begin) bits &= ~0ULL << (begin & 63);
      if (end < ((w + 1) << 6)) bits &= (u64{1} << (end & 63)) - 1;
      while (bits != 0) {
        const u32 slot = (w << 6) + static_cast<u32>(std::countr_zero(bits));
        bits &= bits - 1;
        if (!f(slot)) return false;
      }
    }
    return true;
  }

  /// Youngest matching store in ring slots [begin, end), descending scan.
  /// Returns -1 for no match, 0 un-issued, 1 issued.
  int youngest_matching_store(u32 begin, u32 end, u64 line_addr) const {
    if (begin >= end) return -1;
    for (u32 w = (end - 1) >> 6;; --w) {
      u64 bits = store_[w];
      if ((w << 6) < begin) bits &= ~0ULL << (begin & 63);
      if (end < ((w + 1) << 6)) bits &= (u64{1} << (end & 63)) - 1;
      while (bits != 0) {
        const u32 slot = (w << 6) + (63 - static_cast<u32>(std::countl_zero(bits)));
        bits &= ~(u64{1} << (slot & 63));
        if (addrq_[slot] == line_addr) {
          return (issued_[slot >> 6] >> (slot & 63)) & 1 ? 1 : 0;
        }
      }
      if (w == begin >> 6) break;
    }
    return -1;
  }

  // Cold records (whole-struct slots, assigned at dispatch).
  InstState* cold_ = nullptr;
  // Hot parallel arrays.
  i32* src1_ = nullptr;
  i32* src2_ = nullptr;
  u64* addrq_ = nullptr;  ///< mem_addr & ~7 (the LSQ match key)
  u8* pending_ = nullptr;
  u8* abs6_ = nullptr;
  // Hot bitmasks (one bit per slot).
  u64* waiting_ = nullptr;  ///< in the issue queue, not yet issued
  u64* ready_ = nullptr;    ///< all source operands ready
  u64* issued_ = nullptr;
  u64* predf_ = nullptr;    ///< TEP predicted faulty
  u64* crit_ = nullptr;     ///< predicted faulty AND predicted critical
  u64* memop_ = nullptr;
  u64* store_ = nullptr;
  // Per-physical-register waiter masks (one words_-long row per register,
  // one array per source port), so a broadcast touches only its consumers.
  u64* waiters1_ = nullptr;
  u64* waiters2_ = nullptr;

  SeqNum head_seq_ = 0;
  u32 size_ = 0;
  u32 cap_mask_ = 0;
  u32 words_ = 0;
  u32 num_phys_ = 0;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_SCHED_KERNEL_HPP
