// Structured tracing: a Chrome-trace-event / Perfetto-compatible JSON
// writer.
//
// Emits the JSON Object Format ({"traceEvents": [...], ...}) understood by
// chrome://tracing and https://ui.perfetto.dev.  Two granularities ride on
// it:
//   * sweep-level spans  -- one complete ("X") event per SweepJob, with the
//     pool worker id as tid (core::write_chrome_trace);
//   * instruction-level  -- per-stage spans from cpu::TraceObserver, with
//     the simulated cycle as the microsecond timestamp.
//
// The writer is thread-safe (one mutex around event emission) so sweep
// workers may log concurrently; events are streamed, never buffered, so
// multi-million-event instruction traces stay O(1) in memory.
#ifndef VASIM_OBS_TRACE_HPP
#define VASIM_OBS_TRACE_HPP

#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "src/common/types.hpp"

namespace vasim::obs {

/// JSON string literal (quotes + escapes) for trace arg values.
std::string json_quote(std::string_view s);

/// Chrome-trace-event JSON stream.  All ts/dur are microseconds, per the
/// trace-event spec; callers map simulated cycles or wall milliseconds onto
/// them.
class ChromeTraceWriter {
 public:
  /// One (key, value) trace arg; `value` must already be valid JSON (use
  /// json_quote for strings, std::to_string for numbers).
  using Arg = std::pair<std::string_view, std::string>;

  /// `out` must outlive the writer.  The header is written immediately.
  explicit ChromeTraceWriter(std::ostream* out);

  /// Closes the JSON document (idempotent; also run by the destructor).
  ~ChromeTraceWriter();
  void finish();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Complete event ("X"): a span [ts_us, ts_us + dur_us) on (pid, tid).
  void complete_event(std::string_view name, std::string_view category, u64 pid, u64 tid,
                      double ts_us, double dur_us, std::initializer_list<Arg> args = {});

  /// Counter event ("C"): one sample per series in `args` on the counter
  /// track `name`; multiple args render as a stacked chart in Perfetto.
  /// Arg values must be JSON numbers.
  void counter_event(std::string_view name, std::string_view category, u64 pid, u64 tid,
                     double ts_us, std::initializer_list<Arg> args);

  /// Instant event ("i", thread scope).
  void instant_event(std::string_view name, std::string_view category, u64 pid, u64 tid,
                     double ts_us, std::initializer_list<Arg> args = {});

  /// Metadata: names the process / thread rows in the viewer.
  void process_name(u64 pid, std::string_view name);
  void thread_name(u64 pid, u64 tid, std::string_view name);

  [[nodiscard]] u64 events_written() const { return events_; }

 private:
  void event_prefix(std::string& buf, std::string_view name, std::string_view category,
                    char phase, u64 pid, u64 tid, double ts_us);
  void append_args(std::string& buf, std::initializer_list<Arg> args);
  void emit(const std::string& buf);

  std::mutex mu_;
  std::ostream* out_;
  u64 events_ = 0;
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace vasim::obs

#endif  // VASIM_OBS_TRACE_HPP
