# Empty dependencies file for vasim_workload.
# This may be replaced when dependencies are built.
