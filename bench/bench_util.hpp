// Shared helpers for the table/figure reproduction benches.
//
// Run length is controlled by environment variables so CI can shrink and
// archival runs can grow the experiments:
//   VASIM_INSTR   measured committed instructions per run (default 150000)
//   VASIM_WARMUP  warmup instructions per run              (default 150000)
//   VASIM_JOBS    sweep worker threads (default hardware threads; 1 = the
//                 historical sequential behaviour)
//   VASIM_JSON    set to 0 to suppress BENCH_<name>.json result files
//
// All grid execution routes through core::SweepRunner: the benches enqueue
// (benchmark, scheme, VDD) jobs and read back submission-ordered, bitwise
// deterministic results, so tables are identical at any worker count.
#ifndef VASIM_BENCH_BENCH_UTIL_HPP
#define VASIM_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/env.hpp"
#include "src/common/table.hpp"
#include "src/core/runner.hpp"
#include "src/core/sweep.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::bench {

inline core::RunnerConfig runner_config_from_env() {
  core::RunnerConfig rc;
  rc.instructions = env_u64("VASIM_INSTR", 150'000);
  rc.warmup = env_u64("VASIM_WARMUP", 150'000);
  return rc;
}

/// All scheme results for one benchmark at one supply.
struct SupplyResults {
  core::RunResult fault_free;
  std::map<std::string, core::RunResult> schemes;  // razor/ep/abs/ffs/cds
};

/// Jobs for one profile: the fault-free baseline then every comparative
/// scheme, in presentation order.
inline void push_all_scheme_jobs(std::vector<core::SweepJob>& jobs,
                                 const workload::BenchmarkProfile& prof, double vdd) {
  jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
  for (const auto& scheme : core::comparative_schemes()) {
    jobs.push_back({prof, scheme, vdd, std::nullopt});
  }
}

/// Unpacks one profile's slice of a push_all_scheme_jobs grid.
inline SupplyResults unpack_all_schemes(const std::vector<core::SweepOutcome>& outcomes,
                                        std::size_t offset) {
  SupplyResults out;
  out.fault_free = outcomes.at(offset).result;
  const auto& schemes = core::comparative_schemes();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const core::RunResult& r = outcomes.at(offset + 1 + s).result;
    out.schemes.emplace(r.scheme, r);
  }
  return out;
}

/// Fault-free + all comparative schemes for one benchmark at one supply,
/// fanned out over the sweep pool.
inline SupplyResults run_all_schemes(const core::SweepRunner& sweeper,
                                     const workload::BenchmarkProfile& prof, double vdd) {
  std::vector<core::SweepJob> jobs;
  push_all_scheme_jobs(jobs, prof, vdd);
  return unpack_all_schemes(sweeper.run(jobs).jobs, 0);
}

/// The full (profiles x (fault-free + schemes)) grid at one supply in a
/// single sweep; per-profile results in input order.  When `report` is
/// non-null the raw sweep (wall times included) is copied out for JSON
/// emission.
inline std::vector<SupplyResults> run_grid(const core::SweepRunner& sweeper,
                                           const std::vector<workload::BenchmarkProfile>& profs,
                                           double vdd, core::SweepReport* report = nullptr) {
  std::vector<core::SweepJob> jobs;
  jobs.reserve(profs.size() * (1 + core::comparative_schemes().size()));
  for (const auto& prof : profs) push_all_scheme_jobs(jobs, prof, vdd);
  core::SweepReport rep = sweeper.run(jobs);
  const std::size_t per_prof = 1 + core::comparative_schemes().size();
  std::vector<SupplyResults> out;
  out.reserve(profs.size());
  for (std::size_t p = 0; p < profs.size(); ++p) {
    out.push_back(unpack_all_schemes(rep.jobs, p * per_prof));
  }
  if (report != nullptr) *report = std::move(rep);
  return out;
}

/// Overhead of one scheme relative to fault-free execution.
inline core::Overheads scheme_overhead(const SupplyResults& r, const std::string& scheme) {
  return core::overhead_vs(r.fault_free, r.schemes.at(scheme));
}

/// Ratio of a scheme's overhead to EP's overhead (the normalization of
/// Figures 4/5/8/9); clamped at zero when the scheme beats fault-free
/// execution outright (scheduling-slack artifact, see EXPERIMENTS.md).
inline double normalized_to_ep(double scheme_pct, double ep_pct) {
  if (ep_pct <= 0.0) return 0.0;
  return std::max(0.0, scheme_pct) / ep_pct;
}

inline void print_run_header(const std::string& what, const core::RunnerConfig& rc,
                             std::size_t workers = core::sweep_workers_from_env()) {
  std::cout << "=== " << what << " ===\n"
            << "(vasim reproduction; " << rc.instructions << " measured instructions after "
            << rc.warmup << " warmup per run; " << workers
            << " sweep worker(s); override with VASIM_INSTR / VASIM_WARMUP / VASIM_JOBS)\n\n";
}

/// Writes BENCH_<name>.json (unless VASIM_JSON=0) and notes the path.
inline void emit_json(const std::string& name, const core::SweepReport& report) {
  const std::string path = core::emit_sweep_json(name, report);
  if (!path.empty()) {
    std::cout << "[" << path << ": " << report.jobs.size() << " jobs, "
              << TextTable::fmt(report.wall_ms, 0) << " ms on " << report.workers
              << " worker(s)]\n";
  }
}

}  // namespace vasim::bench

#endif  // VASIM_BENCH_BENCH_UTIL_HPP
