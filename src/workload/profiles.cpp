#include "src/workload/profiles.hpp"

#include <stdexcept>

namespace vasim::workload {

std::vector<BenchmarkProfile> spec2006_profiles() {
  std::vector<BenchmarkProfile> v;
  auto add = [&](BenchmarkProfile p) { v.push_back(std::move(p)); };

  // Parameters are tuned so the fault-free IPC *ordering* tracks Table 1:
  // mcf 0.34 < libquantum/xalancbmk 0.51 < astar 0.69 < sphinx3/perlbench/
  // gcc ~1.3 < tonto 1.41 < bzip2 1.48 < gobmk 1.68 < sjeng 1.93 < povray 1.94.
  {
    BenchmarkProfile p;
    p.name = "astar";
    p.f_load = 0.28; p.f_store = 0.08; p.f_branch = 0.16;
    p.branch_random_frac = 0.1; p.serial_frac = 0.18; p.slack_frac = 0.25; p.dep_geo_p = 0.45;
    p.cold_frac = 0.0207; p.warm_frac = 0.08; p.cold_random_frac = 0.5; p.ws_cold_bytes = 32ULL << 20;
    p.fr_high_pct = 6.74; p.fr_low_pct = 2.01;
    p.fr_calib_low = 0.6839; p.fr_calib_high = 0.8815; p.paper_ipc = 0.69;
    p.num_blocks = 512;
    p.seed = 101;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "bzip2";
    p.f_load = 0.26; p.f_store = 0.12; p.f_branch = 0.15;
    p.branch_random_frac = 0.05; p.serial_frac = 0.1; p.slack_frac = 0.3; p.dep_geo_p = 0.2;
    p.cold_frac = 0.0017; p.warm_frac = 0.025; p.cold_random_frac = 0.2; p.ws_cold_bytes = 8ULL << 20;
    p.fr_high_pct = 8.92; p.fr_low_pct = 2.24;
    p.fr_calib_low = 1.3277; p.fr_calib_high = 0.9998; p.paper_ipc = 1.48;
    p.num_blocks = 512;
    p.seed = 102;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "gcc";
    p.f_load = 0.25; p.f_store = 0.11; p.f_branch = 0.18;
    p.branch_random_frac = 0.04; p.serial_frac = 0.14; p.slack_frac = 0.28; p.dep_geo_p = 0.28;
    p.cold_frac = 0.006; p.warm_frac = 0.12; p.cold_random_frac = 0.3; p.ws_cold_bytes = 8ULL << 20;
    p.num_blocks = 512;
    p.fr_high_pct = 8.43; p.fr_low_pct = 1.50;
    p.fr_calib_low = 0.9453; p.fr_calib_high = 0.7164; p.paper_ipc = 1.34;
    p.seed = 103;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "gobmk";
    p.f_load = 0.22; p.f_store = 0.10; p.f_branch = 0.20;
    p.branch_random_frac = 0.05; p.serial_frac = 0.08; p.slack_frac = 0.32; p.dep_geo_p = 0.2;
    p.cold_frac = 0.0019; p.warm_frac = 0.01; p.cold_random_frac = 0.3; p.ws_cold_bytes = 2ULL << 20;
    p.fr_high_pct = 8.64; p.fr_low_pct = 2.16;
    p.fr_calib_low = 0.9494; p.fr_calib_high = 0.796; p.paper_ipc = 1.68;
    p.num_blocks = 512;
    p.seed = 104;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "libquantum";
    // Streaming loads over a huge array with tight dependence chains and
    // high-fanout producers (the data-flow pattern CDS exploits, Sec 5.2).
    p.f_load = 0.26; p.f_store = 0.14; p.f_branch = 0.13;
    p.branch_random_frac = 0.01; p.branch_taken_bias = 0.85;
    p.serial_frac = 0.28; p.slack_frac = 0.1; p.dep_geo_p = 0.55; p.hub_frac = 0.18;
    p.cold_frac = 0.0433; p.warm_frac = 0.05; p.cold_random_frac = 0.0; p.ws_cold_bytes = 32ULL << 20;
    p.num_blocks = 256;
    p.fr_high_pct = 10.54; p.fr_low_pct = 2.10;
    p.fr_calib_low = 1.0662; p.fr_calib_high = 0.7355; p.paper_ipc = 0.51;
    p.seed = 105;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "mcf";
    // Pointer chasing: dependent random loads far beyond L2.
    p.f_load = 0.31; p.f_store = 0.09; p.f_branch = 0.17;
    p.branch_random_frac = 0.12; p.serial_frac = 0.38; p.slack_frac = 0.08; p.dep_geo_p = 0.55;
    p.cold_frac = 0.0451; p.warm_frac = 0.1; p.cold_random_frac = 0.65; p.ws_cold_bytes = 64ULL << 20;
    p.fr_high_pct = 6.45; p.fr_low_pct = 1.73;
    p.fr_calib_low = 1.0605; p.fr_calib_high = 0.9402; p.paper_ipc = 0.34;
    p.num_blocks = 512;
    p.seed = 106;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "perlbench";
    p.f_load = 0.25; p.f_store = 0.12; p.f_branch = 0.18;
    p.branch_random_frac = 0.04; p.serial_frac = 0.13; p.slack_frac = 0.28; p.dep_geo_p = 0.25;
    p.cold_frac = 0.003; p.warm_frac = 0.06; p.cold_random_frac = 0.3; p.ws_cold_bytes = 2ULL << 20;
    p.num_blocks = 384;
    p.fr_high_pct = 7.21; p.fr_low_pct = 1.80;
    p.fr_calib_low = 2.2459; p.fr_calib_high = 1.0598; p.paper_ipc = 1.31;
    p.seed = 107;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "povray";
    p.f_load = 0.23; p.f_store = 0.08; p.f_branch = 0.12; p.f_mul = 0.10;
    p.branch_random_frac = 0.004; p.serial_frac = 0.015; p.slack_frac = 0.4; p.dep_geo_p = 0.046;
    p.cold_frac = 0.002; p.warm_frac = 0.007; p.cold_random_frac = 0.2; p.ws_cold_bytes = 1ULL << 20;
    p.fr_high_pct = 6.31; p.fr_low_pct = 1.57;
    p.fr_calib_low = 0.8937; p.fr_calib_high = 0.8769; p.paper_ipc = 1.94;
    p.num_blocks = 512;
    p.seed = 108;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "sjeng";
    // High inherent ILP (Sec 5.1 calls sjeng out as most fault-susceptible).
    p.f_load = 0.20; p.f_store = 0.08; p.f_branch = 0.17;
    p.branch_random_frac = 0.02; p.serial_frac = 0.05; p.slack_frac = 0.38; p.dep_geo_p = 0.15;
    p.cold_frac = 0.0016; p.warm_frac = 0.008; p.cold_random_frac = 0.3; p.ws_cold_bytes = 2ULL << 20;
    p.fr_high_pct = 9.19; p.fr_low_pct = 2.29;
    p.fr_calib_low = 1.1023; p.fr_calib_high = 0.8063; p.paper_ipc = 1.93;
    p.num_blocks = 512;
    p.seed = 109;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "sphinx3";
    p.f_load = 0.29; p.f_store = 0.07; p.f_branch = 0.12; p.f_mul = 0.06;
    p.branch_random_frac = 0.03; p.serial_frac = 0.12; p.slack_frac = 0.25; p.dep_geo_p = 0.28;
    p.cold_frac = 0.0046; p.warm_frac = 0.1; p.cold_random_frac = 0.1; p.ws_cold_bytes = 8ULL << 20;
    p.fr_high_pct = 6.95; p.fr_low_pct = 1.73;
    p.fr_calib_low = 0.9447; p.fr_calib_high = 0.9271; p.paper_ipc = 1.30;
    p.num_blocks = 512;
    p.seed = 110;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "tonto";
    p.f_load = 0.24; p.f_store = 0.10; p.f_branch = 0.11; p.f_mul = 0.08;
    p.branch_random_frac = 0.03; p.serial_frac = 0.1; p.slack_frac = 0.3; p.dep_geo_p = 0.22;
    p.cold_frac = 0.0018; p.warm_frac = 0.04; p.cold_random_frac = 0.25; p.ws_cold_bytes = 2ULL << 20;
    p.fr_high_pct = 5.59; p.fr_low_pct = 1.39;
    p.fr_calib_low = 0.8952; p.fr_calib_high = 1.0174; p.paper_ipc = 1.41;
    p.num_blocks = 512;
    p.seed = 111;
    add(p);
  }
  {
    BenchmarkProfile p;
    p.name = "xalancbmk";
    p.f_load = 0.28; p.f_store = 0.10; p.f_branch = 0.19;
    p.branch_random_frac = 0.08; p.serial_frac = 0.3; p.slack_frac = 0.12; p.dep_geo_p = 0.45;
    p.cold_frac = 0.0323; p.warm_frac = 0.08; p.cold_random_frac = 0.6; p.ws_cold_bytes = 32ULL << 20;
    p.num_blocks = 768;
    p.fr_high_pct = 7.95; p.fr_low_pct = 1.99;
    p.fr_calib_low = 1.144; p.fr_calib_high = 0.8816; p.paper_ipc = 0.51;
    p.seed = 112;
    add(p);
  }
  return v;
}

BenchmarkProfile spec2006_profile(const std::string& name) {
  for (const auto& p : spec2006_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown SPEC2006 profile: " + name);
}

std::vector<Spec2000Profile> spec2000_profiles() {
  // Figure 7 benchmarks; vortex "operates on a smaller range of input
  // values" and shows the highest commonality (~96% in the issue queue).
  return {
      {"bzip", 0.90, 0.50, 0.50, 201},
      {"gap", 0.88, 0.45, 0.48, 202},
      {"gzip", 0.91, 0.55, 0.52, 203},
      {"mcf", 0.86, 0.35, 0.42, 204},
      {"parser", 0.88, 0.40, 0.46, 205},
      {"vortex", 0.96, 0.60, 0.72, 206},
  };
}

}  // namespace vasim::workload
