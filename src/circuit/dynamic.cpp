#include "src/circuit/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "src/circuit/gatesim.hpp"
#include "src/common/stats.hpp"

namespace vasim::circuit {
namespace {

double delay_of(GateKind kind, SigId id, const timing::ProcessVariation* pv, u64 die) {
  const double nominal = cell_info(kind).delay_ps;
  if (pv == nullptr) return nominal;
  return nominal * pv->delay_factor(die, static_cast<u64>(id));
}

}  // namespace

SensitizedDelay sensitized_delay(const Component& component, std::span<const u8> pre,
                                 std::span<const u8> cur, const timing::ProcessVariation* pv,
                                 u64 die) {
  GateSim sim(&component.netlist);
  sim.evaluate(pre);
  sim.evaluate(cur);
  const std::vector<u8>& toggled = sim.toggled();

  SensitizedDelay r;
  const auto& gates = component.netlist.gates();
  std::vector<double> arrival(gates.size(), 0.0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!toggled[i]) continue;
    const Gate& g = gates[i];
    if (!is_combinational(g.kind)) continue;  // toggled primary inputs arrive at t=0
    ++r.toggled_gates;
    double in_max = 0.0;
    const int fanin = cell_info(g.kind).fanin;
    for (int k = 0; k < fanin; ++k) {
      const auto src = static_cast<std::size_t>(g.in[k]);
      if (toggled[src]) in_max = std::max(in_max, arrival[src]);
    }
    arrival[i] = in_max + delay_of(g.kind, static_cast<SigId>(i), pv, die);
    if (arrival[i] > r.delay_ps) {
      r.delay_ps = arrival[i];
      r.endpoint = static_cast<SigId>(i);
    }
  }
  return r;
}

InstanceDelayStats instance_delay_stats(
    const Component& component,
    std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances,
    const timing::ProcessVariation* pv, u64 die) {
  InstanceDelayStats s;
  RunningStat acc;
  for (const auto& [pre, cur] : instances) {
    const SensitizedDelay d = sensitized_delay(component, pre, cur, pv, die);
    acc.add(d.delay_ps);
  }
  s.instances = static_cast<int>(instances.size());
  s.mu_ps = acc.mean();
  s.sigma_ps = acc.stddev();
  s.mu_plus_2sigma_ps = s.mu_ps + 2.0 * s.sigma_ps;
  s.max_ps = acc.max();
  return s;
}

TimedGateSim::TimedGateSim(const Component* component, const timing::ProcessVariation* pv,
                           u64 die)
    : component_(component) {
  const auto& gates = component_->netlist.gates();
  gate_delay_ps_.resize(gates.size(), 0.0);
  fanout_.resize(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (!is_combinational(g.kind)) continue;
    gate_delay_ps_[i] = delay_of(g.kind, static_cast<SigId>(i), pv, die);
    const int fanin = cell_info(g.kind).fanin;
    for (int k = 0; k < fanin; ++k) {
      fanout_[static_cast<std::size_t>(g.in[k])].push_back(static_cast<SigId>(i));
    }
  }
}

TimedGateSim::Result TimedGateSim::evaluate(std::span<const u8> pre, std::span<const u8> cur) {
  const Netlist& n = component_->netlist;
  if (static_cast<int>(pre.size()) != n.num_inputs() ||
      static_cast<int>(cur.size()) != n.num_inputs()) {
    throw std::invalid_argument("TimedGateSim: input width mismatch");
  }

  // Settle on `pre` with a zero-delay pass.
  GateSim settle(&n);
  settle.evaluate(pre);
  std::vector<u8> value = settle.values();

  const auto eval_gate = [&](std::size_t i) -> u8 {
    const Gate& g = n.gates()[i];
    const auto v = [&](int k) { return value[static_cast<std::size_t>(g.in[k])]; };
    switch (g.kind) {
      case GateKind::kConst0: return 0;
      case GateKind::kConst1: return 1;
      case GateKind::kBuf: return v(0);
      case GateKind::kInv: return v(0) ^ 1u;
      case GateKind::kAnd2: return v(0) & v(1);
      case GateKind::kOr2: return v(0) | v(1);
      case GateKind::kNand2: return (v(0) & v(1)) ^ 1u;
      case GateKind::kNor2: return (v(0) | v(1)) ^ 1u;
      case GateKind::kXor2: return v(0) ^ v(1);
      case GateKind::kXnor2: return (v(0) ^ v(1)) ^ 1u;
      case GateKind::kMux2: return v(2) != 0 ? value[static_cast<std::size_t>(g.in[1])]
                                             : value[static_cast<std::size_t>(g.in[0])];
      default: return value[i];
    }
  };

  // Event wheel keyed by time: each event re-evaluates one gate.
  std::multimap<double, SigId> wheel;
  std::vector<u32> change_count(value.size(), 0);
  Result r;

  // Input transition at t = 0.
  for (int i = 0; i < n.num_inputs(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (value[idx] == cur[idx]) continue;
    value[idx] = cur[idx];
    for (const SigId f : fanout_[idx]) wheel.emplace(gate_delay_ps_[static_cast<std::size_t>(f)], f);
  }

  u64 processed = 0;
  const u64 budget = static_cast<u64>(n.num_signals()) * 64;  // runaway guard
  while (!wheel.empty()) {
    if (++processed > budget) throw std::runtime_error("TimedGateSim: oscillation detected");
    const auto it = wheel.begin();
    const double t = it->first;
    const auto i = static_cast<std::size_t>(it->second);
    wheel.erase(it);
    const u8 next = eval_gate(i);
    if (next == value[i]) continue;
    value[i] = next;
    ++r.transitions;
    r.dynamic_energy_fj += cell_info(n.gates()[i].kind).energy_fj;
    if (++change_count[i] == 2) ++r.glitches;
    r.settle_ps = std::max(r.settle_ps, t);
    for (const SigId f : fanout_[i]) {
      wheel.emplace(t + gate_delay_ps_[static_cast<std::size_t>(f)], f);
    }
  }
  return r;
}

PowerReport measured_power(const Component& component,
                           std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances,
                           double frequency_ghz) {
  PowerReport r = roll_up(component, PowerConditions{frequency_ghz, 0.0, 0.0});
  if (instances.empty()) return r;
  TimedGateSim sim(&component);
  double total_fj = 0.0;
  for (const auto& [pre, cur] : instances) total_fj += sim.evaluate(pre, cur).dynamic_energy_fj;
  const double per_cycle_fj = total_fj / static_cast<double>(instances.size());
  // fJ per cycle * GHz = uW.
  r.dynamic_power_uw += per_cycle_fj * frequency_ghz;
  return r;
}

}  // namespace vasim::circuit
