// Fundamental type aliases shared across the vasim libraries.
#ifndef VASIM_COMMON_TYPES_HPP
#define VASIM_COMMON_TYPES_HPP

#include <cstdint>
#include <cstddef>

namespace vasim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated clock cycle count.
using Cycle = u64;
/// Byte address in the simulated memory space.
using Addr = u64;
/// Static instruction identifier (program counter).
using Pc = u64;
/// Dynamic instruction sequence number (monotonic per run).
using SeqNum = u64;

/// Sentinel for "no register".
inline constexpr int kNoReg = -1;

}  // namespace vasim

#endif  // VASIM_COMMON_TYPES_HPP
