#include "src/serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vasim::serve {
namespace {

class Parser {
 public:
  Parser(std::string_view s, std::size_t max_depth) : s_(s), max_depth_(max_depth) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (i_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const { throw JsonError(reason, i_); }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r' || s_[i_] == '\n')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  JsonValue value() {
    ws();
    if (depth_ > max_depth_) fail("nesting too deep");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [](JsonValue& v) { v.kind = JsonValue::Kind::kBool; v.boolean = true; });
      case 'f': return literal("false", [](JsonValue& v) { v.kind = JsonValue::Kind::kBool; v.boolean = false; });
      case 'n': return literal("null", [](JsonValue& v) { v.kind = JsonValue::Kind::kNull; });
      default: return number();
    }
  }

  template <typename Fill>
  JsonValue literal(std::string_view word, Fill fill) {
    if (s_.compare(i_, word.size(), word) != 0) fail("invalid literal");
    i_ += word.size();
    JsonValue v;
    fill(v);
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = string_raw();
    return v;
  }

  std::string string_raw() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are rejected
          // (the protocol is ASCII in practice -- reject rather than mangle).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) fail("invalid number");
    // Integer part: "0" or nonzero-led digits (strict JSON, no leading zeros).
    if (s_[i_] == '0') {
      ++i_;
    } else {
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) fail("invalid fraction");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) fail("invalid exponent");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::string text(s_.substr(start, i_ - start));
    v.number = std::strtod(text.c_str(), nullptr);
    if (!std::isfinite(v.number)) fail("number out of range");
    return v;
  }

  JsonValue array() {
    expect('[');
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      --depth_;
      return v;
    }
    while (true) {
      ws();
      std::string key = string_raw();
      for (const auto& [existing, unused] : v.object) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  std::string_view s_;
  std::size_t max_depth_;
  std::size_t i_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

u64 JsonValue::as_u64() const {
  if (kind != Kind::kNumber || number < 0.0 || number != std::floor(number) ||
      number > 9007199254740992.0) {
    throw JsonError("expected a non-negative integer", 0);
  }
  return static_cast<u64>(number);
}

JsonValue parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace vasim::serve
