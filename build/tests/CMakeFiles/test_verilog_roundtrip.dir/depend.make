# Empty dependencies file for test_verilog_roundtrip.
# This may be replaced when dependencies are built.
