// Readiness-ordered delay-tracking scheduler kernel (SchedKernel::kDelayQueue).
//
// The bitmask IssueWindow answers "who can issue this cycle?" with an
// O(window) masked scan every cycle.  The DelayQueue answers it by keeping a
// prediction of *when* each queued instruction becomes ready and filing the
// instruction under that cycle in a bucket wheel, so the select stage pops
// one bucket (O(ready)) instead of scanning (modeled on Diavastos & Carlson's
// real-time load-delay-tracking scheduler, arXiv 2109.03112, adapted to this
// simulator's event-driven timing):
//
//   estimate    At dispatch, an instruction's due cycle is the max of its
//               pending sources' estimated ready cycles.  A producer's
//               estimate is its own due cycle plus its class latency, with
//               loads assumed to *hit* the L1 (the load-delay-tracking
//               assumption).  Once a producer actually issues its exact
//               broadcast cycle is known and overwrites the estimate.
//   pop+verify  Select pops the bucket due this cycle and verifies each
//               entry against the window's operand state.  A verified entry
//               joins the ready FIFO (selection order = readiness order);
//               a miss-estimated entry is re-filed under the repaired
//               estimate, or parked until a broadcast resolves it.
//   repair      Early estimates (a load missed) are repaired at pop time
//               from the producer's now-exact completion; late estimates (a
//               producer issued sooner than assumed) are repaired by the tag
//               broadcast itself: a wake that makes an instruction ready
//               re-files it under the current cycle.  Net effect: an
//               instruction enters the ready FIFO on exactly the cycle the
//               baseline kernel would first see it as a candidate.
//
// The DelayQueue replaces only select-stage candidate *discovery*.  The
// IssueWindow remains the ROB/LSQ container, wakeup/CDL source and
// store-to-load gate; TEP gating, delayed tag broadcast (VTE) and the
// ABS/FFS/CDS policy classes apply to the ready FIFO the same way they apply
// to the masked scan -- FFS/CDS as a two-pass class filter, age (ABS) only
// as the arrival order within a readiness tier.
//
// All cycles are *stored* cycles (absolute minus the pipeline's global-stall
// shift), exactly like the EventWheel, so a global stall shifts every filed
// entry in O(1).
#ifndef VASIM_CPU_DELAY_SCHED_HPP
#define VASIM_CPU_DELAY_SCHED_HPP

#include "src/common/types.hpp"
#include "src/cpu/sched_kernel.hpp"

namespace vasim::cpu {

class DelayQueue {
 public:
  [[nodiscard]] static std::size_t bytes_needed(u32 cap_pow2, u32 buckets_pow2, u32 pool_cap,
                                                u32 num_phys) {
    return Arena::need<Node>(pool_cap) + Arena::need<i32>(buckets_pow2) +
           Arena::need<SeqNum>(buckets_pow2) + Arena::need<u8>(cap_pow2) +
           Arena::need<Cycle>(cap_pow2) + Arena::need<Cycle>(num_phys) +
           Arena::need<SeqNum>(cap_pow2) + Arena::need<u32>(cap_pow2);
  }

  void init(Arena& a, u32 cap_pow2, u32 buckets_pow2, u32 pool_cap, u32 num_phys);

  /// Expected-completion bookkeeping: `note_producer_estimate` records the
  /// dispatch-time guess for a destination tag (producer due + class latency,
  /// cache-hit assumed for loads); `note_producer_actual` overwrites it with
  /// the exact broadcast cycle once the producer issues.
  void note_producer_estimate(int phys_dst, Cycle stored_ready) {
    if (phys_dst != kNoReg) est_ready_[phys_dst] = stored_ready;
  }
  void note_producer_actual(int phys_dst, Cycle stored_ready) {
    if (phys_dst != kNoReg) est_ready_[phys_dst] = stored_ready;
  }
  [[nodiscard]] Cycle est_ready(int phys) const { return phys == kNoReg ? 0 : est_ready_[phys]; }

  /// Files a freshly dispatched instruction under its estimated ready cycle:
  /// max(now+1, est of each pending source), clamped to the wheel horizon.
  /// `pending1`/`pending2` are the not-yet-ready source tags (kNoReg when
  /// that operand is ready).  Returns the (snapped/clamped) due cycle, which
  /// is also the earliest select cycle -- never the dispatch cycle itself.
  Cycle enqueue(u32 slot, SeqNum seq, Cycle stored_now, int pending1, int pending2) {
    Cycle due = stored_now + 1;
    if (pending1 != kNoReg && est_ready_[pending1] > due) due = est_ready_[pending1];
    if (pending2 != kNoReg && est_ready_[pending2] > due) due = est_ready_[pending2];
    state_[slot] = kQueued;
    return file(slot, seq, due);
  }

  /// Tag-broadcast repair: `slot` just became ready (pending hit zero).  If
  /// its filed estimate lies in the future, re-file it under the current
  /// cycle so it is selectable exactly when the baseline kernel would see
  /// it; a parked entry re-enters the wheel the same way.
  void on_newly_ready(u32 slot, SeqNum seq, Cycle stored_now) {
    if (state_[slot] == kReady) return;  // already selectable (defensive)
    if (state_[slot] == kQueued && queued_seq_[slot] == seq && due_[slot] <= stored_now) return;
    state_[slot] = kQueued;
    file(slot, seq, stored_now);
  }

  /// Drains the bucket due at `stored_now` (must advance by exactly one per
  /// scheduling cycle, like EventWheel::pop_due).  Each live entry whose
  /// operands are ready moves to the ready FIFO; a not-yet-ready entry is
  /// re-filed under the repaired estimate of its still-pending sources (or
  /// parked when no future estimate exists -- the resolving broadcast
  /// re-files it).  `win` is the authoritative operand/liveness state.
  void pop_due(Cycle stored_now, IssueWindow& win);

  /// The ready FIFO (slot numbers, readiness order).  The select stage
  /// drains it with `take_ready`, issues what it can, and returns the
  /// survivors in order with `put_back_ready`.
  [[nodiscard]] u32 ready_size() const { return ready_.size(); }
  u32 take_ready(u32* out) {
    u32 n = 0;
    while (!ready_.empty()) {
      out[n++] = ready_.front();
      ready_.pop_front();
    }
    return n;
  }
  void put_back_ready(const u32* slots, u32 n) {
    for (u32 i = 0; i < n; ++i) ready_.push_back(slots[i]);
  }
  /// The entry left the scheduler (issued).
  void on_issued(u32 slot) { state_[slot] = kNone; }

  /// Squash: drops every filed/ready entry with seq > last_kept (their slots
  /// and seq numbers are about to be recycled).  Buckets whose max seq is
  /// <= last_kept are skipped without scanning, like EventWheel.
  void filter_squashed(SeqNum last_kept, const IssueWindow& win);
  /// Full squash: nothing in flight survives.  The time base persists.
  void clear_entries();

  [[nodiscard]] u32 buckets() const { return mask_ + 1; }

  /// Serialization mirrors EventWheel: the time base, per-register
  /// estimates, the ready FIFO, and every filed node with its absolute
  /// stored cycle.  Restore re-files each node, which preserves intra-bucket
  /// order because save walks buckets in list order and file() prepends.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  enum SlotState : u8 { kNone = 0, kQueued = 1, kReady = 2, kParked = 3 };

  struct Node {
    SeqNum seq = 0;
    Cycle due = 0;  ///< the due cycle this node was filed under (staleness key)
    i32 next = -1;
  };

  /// Files (slot, seq) under `due` (snapped to the next pop, clamped to the
  /// horizon) and stamps the slot's current-due key, staling any earlier
  /// node for the same slot.  Returns the effective due cycle.
  Cycle file(u32 slot, SeqNum seq, Cycle due) {
    if (due < next_pop_) due = next_pop_;
    if (due - next_pop_ > mask_) due = next_pop_ + mask_;  // repair at pop
    if (free_ < 0) throw std::logic_error("DelayQueue: node pool exhausted");
    const u32 b = static_cast<u32>(due) & mask_;
    const i32 idx = free_;
    Node& n = pool_[idx];
    free_ = n.next;
    n.seq = seq;
    n.due = due;
    n.next = heads_[b];
    if (heads_[b] < 0 || seq > max_seq_[b]) max_seq_[b] = seq;
    heads_[b] = idx;
    due_[slot] = due;
    queued_seq_[slot] = seq;
    return due;
  }

  void recycle(i32 idx) {
    pool_[idx].next = free_;
    free_ = idx;
  }

  Node* pool_ = nullptr;
  i32* heads_ = nullptr;
  SeqNum* max_seq_ = nullptr;
  u8* state_ = nullptr;        ///< per window slot
  Cycle* due_ = nullptr;       ///< per window slot: the live node's due key
  SeqNum* queued_seq_ = nullptr;  ///< per window slot: seq the key belongs to
  Cycle* est_ready_ = nullptr;    ///< per physical register, stored cycles
  Ring<u32> ready_;
  i32 free_ = -1;
  u32 mask_ = 0;
  u32 pool_cap_ = 0;
  u32 cap_ = 0;
  u32 num_phys_ = 0;
  Cycle next_pop_ = 0;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_DELAY_SCHED_HPP
