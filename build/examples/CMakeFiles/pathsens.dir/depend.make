# Empty dependencies file for pathsens.
# This may be replaced when dependencies are built.
