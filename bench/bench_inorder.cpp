// In-order vs out-of-order comparison: where does the violation-aware win
// come from?
//
// On the scalar in-order core there is no scheduling freedom: a predicted-
// faulty instruction's extra cycle stalls everything behind it, so the
// "violation-aware" scheme collapses onto Error Padding.  On the OoO core
// the same faults hide in the window's slack.  This bench quantifies that
// contrast -- the architectural argument behind the paper's focus on OoO
// pipelines (Section 2.2: "the likelihood of timing errors is significantly
// more in the OoO engine", and Section 3's whole design).
#include "bench/bench_util.hpp"
#include "src/cpu/inorder.hpp"
#include "src/core/tep.hpp"
#include "src/workload/trace_generator.hpp"

using namespace vasim;

namespace {

struct InOrderRun {
  double ipc = 0;
  double overhead_pct = 0;
};

InOrderRun run_inorder(const workload::BenchmarkProfile& prof, const cpu::SchemeConfig& scheme,
                       double vdd, u64 instr, u64 warmup) {
  timing::PathModelConfig pcfg;
  pcfg.seed = prof.seed;
  pcfg.p_faulty_high = prof.fr_high_pct / 100.0 * prof.fr_calib_high;
  pcfg.p_faulty_low = prof.fr_low_pct / 100.0 * prof.fr_calib_low;
  const timing::FaultModel fm(pcfg, vdd);
  core::TimingErrorPredictor tep({}, &fm.environment());

  const auto one = [&](const cpu::SchemeConfig& s, const timing::FaultModel* model) {
    workload::TraceGenerator gen(prof);
    cpu::InOrderConfig cfg;
    cpu::InOrderPipeline pipe(cfg, s, &gen, model, s.use_predictor ? &tep : nullptr);
    return pipe.run(instr, warmup);
  };
  const cpu::PipelineResult ff = one(cpu::scheme_fault_free(), nullptr);
  const cpu::PipelineResult r = one(scheme, &fm);
  InOrderRun out;
  out.ipc = r.ipc();
  out.overhead_pct = (ff.ipc() / r.ipc() - 1.0) * 100.0;
  return out;
}

}  // namespace

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 100'000);
  const core::SweepRunner sweeper(rc);
  bench::print_run_header("In-order vs OoO: who can hide a predicted fault's extra cycle?",
                          rc, sweeper.workers());

  // The OoO half of every row is a sweep job; the scalar in-order pipeline
  // has no ExperimentRunner wrapper and stays inline.
  const char* names[] = {"bzip2", "gobmk", "sjeng", "libquantum"};
  std::vector<core::SweepJob> jobs;
  for (const char* name : names) {
    const auto prof = workload::spec2006_profile(name);
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    jobs.push_back({prof, cpu::scheme_error_padding(), 0.97, std::nullopt});
    jobs.push_back({prof, cpu::scheme_abs(), 0.97, std::nullopt});
  }
  const core::SweepReport report = sweeper.run(jobs);

  TextTable t({"benchmark", "inorder EP-ovh%", "inorder ABS-ovh%", "OoO EP-ovh%",
               "OoO ABS-ovh%"});
  double io_ep = 0, io_abs = 0, ooo_ep = 0, ooo_abs = 0;
  int n = 0;
  std::size_t at = 0;
  for (const char* name : names) {
    const auto prof = workload::spec2006_profile(name);
    const InOrderRun iep =
        run_inorder(prof, cpu::scheme_error_padding(), 0.97, rc.instructions, rc.warmup);
    const InOrderRun iabs = run_inorder(prof, cpu::scheme_abs(), 0.97, rc.instructions, rc.warmup);
    const core::RunResult& ff = report.jobs[at++].result;
    const core::RunResult& oep = report.jobs[at++].result;
    const core::RunResult& oabs = report.jobs[at++].result;
    const double oep_pct = core::overhead_vs(ff, oep).perf_pct;
    const double oabs_pct = core::overhead_vs(ff, oabs).perf_pct;
    t.add_row({name, TextTable::fmt(iep.overhead_pct, 2), TextTable::fmt(iabs.overhead_pct, 2),
               TextTable::fmt(oep_pct, 2), TextTable::fmt(oabs_pct, 2)});
    io_ep += iep.overhead_pct;
    io_abs += iabs.overhead_pct;
    ooo_ep += oep_pct;
    ooo_abs += oabs_pct;
    ++n;
  }
  t.add_row({"AVERAGE", TextTable::fmt(io_ep / n, 2), TextTable::fmt(io_abs / n, 2),
             TextTable::fmt(ooo_ep / n, 2), TextTable::fmt(ooo_abs / n, 2)});
  std::cout << t.render("Overheads vs each core's own fault-free baseline @ 0.97 V") << "\n";
  std::cout << "Expected shape: on the in-order core ABS == EP (no slack to hide the\n"
               "padded cycle); on the OoO core ABS removes most of EP's overhead -- the\n"
               "violation-aware scheduling framework is an *out-of-order* technique.\n";
  bench::emit_json("inorder", report);
  return 0;
}
