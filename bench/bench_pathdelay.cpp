// Cross-layer extension of Figure 7 / Section S1: per-PC sensitized-path
// *delay* stability, measured at gate level.
//
// For each SPEC2000-like workload and each studied component, the dynamic
// instances of a static PC are replayed through the gate-level netlist; the
// per-instance sensitized-path delay gives a per-PC mu + 2 sigma (the fault
// criterion's quantity, Section 4.3) and a coefficient of variation.  Low
// CoV means one PC's instances keep hitting near-identical path delays --
// the delay-domain restatement of the commonality property that makes the
// TEP work.
#include <iostream>

#include "src/circuit/dynamic.hpp"
#include "src/common/env.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/workload/inputs.hpp"
#include "src/workload/profiles.hpp"

using namespace vasim;
using namespace vasim::circuit;

int main() {
  const int pcs = static_cast<int>(env_u64("VASIM_FIG7_PCS", 24));
  const int instances = static_cast<int>(env_u64("VASIM_FIG7_INSTANCES", 16));
  std::cout << "=== Per-PC sensitized-path delay stability (S1 extension) ===\n"
            << "(" << pcs << " static PCs x " << instances
            << " instances; CoV = sigma/mu of the per-instance sensitized delay;\n"
            << "spread = per-PC (mu+2sigma)/max-over-PCs, showing which PCs sit near\n"
            << "the critical budget)\n\n";

  struct Comp {
    const char* name;
    Component comp;
  };
  Comp comps[] = {
      {"AGen", build_agen(32, 16)},
      {"ALU", build_simple_alu(32)},
      {"LsqCam", build_lsq_cam(24, 12)},
  };

  for (Comp& c : comps) {
    TextTable t({"workload", "mean CoV", "max CoV", "PCs>90% budget", "mean mu+2s (ps)"});
    for (const auto& prof : workload::spec2000_profiles()) {
      const workload::ComponentInputGen gen(prof, input_width(c.comp));
      RunningStat cov_stat;
      std::vector<double> mu2s;
      double max_cov = 0;
      for (int p = 0; p < pcs; ++p) {
        const Pc pc = 0x1000 + static_cast<Pc>(p) * 4;
        const auto inst = gen.instances(pc, instances);
        const InstanceDelayStats s = instance_delay_stats(c.comp, inst);
        if (s.mu_ps <= 0) continue;
        const double cov = s.sigma_ps / s.mu_ps;
        cov_stat.add(cov);
        max_cov = std::max(max_cov, cov);
        mu2s.push_back(s.mu_plus_2sigma_ps);
      }
      double budget = 0;
      for (const double d : mu2s) budget = std::max(budget, d);
      int near_critical = 0;
      double mean_mu2s = 0;
      for (const double d : mu2s) {
        near_critical += d > 0.9 * budget;
        mean_mu2s += d;
      }
      mean_mu2s /= static_cast<double>(mu2s.size());
      t.add_row({prof.name, TextTable::fmt(cov_stat.mean(), 3), TextTable::fmt(max_cov, 3),
                 std::to_string(near_critical) + "/" + std::to_string(mu2s.size()),
                 TextTable::fmt(mean_mu2s, 0)});
    }
    std::cout << t.render(std::string(c.name)) << "\n";
  }
  std::cout << "Reading: per-PC delay CoV well below the across-PC spread means each\n"
               "static instruction re-sensitizes nearly the same-length path on every\n"
               "instance, so a PC that violates timing once keeps violating -- the\n"
               "delay-domain basis of PC-indexed timing-violation prediction.\n";
  return 0;
}
