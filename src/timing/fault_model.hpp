// Dynamic timing-fault oracle combining the per-PC path population, the
// alpha-power voltage scaling and the environmental modulation.
//
// Section 4.3: "Faults are assumed to occur when the 95% confidence interval
// of the stage delay exceeds the cycle time (mu + 2 sigma)."  The path
// factor already encodes mu+2sigma at the nominal supply; a dynamic instance
// at cycle c and supply V violates timing iff
//
//   path_factor(pc) * delay_scale(V) * modulation(c) > 1.0 .
//
// The first two terms are per-PC/per-supply constants (the predictable
// component); the modulation term flips instances near the boundary, which
// is what produces the occasional mispredicted fault handled by replay.
#ifndef VASIM_TIMING_FAULT_MODEL_HPP
#define VASIM_TIMING_FAULT_MODEL_HPP

#include "src/timing/path_model.hpp"
#include "src/timing/sensors.hpp"
#include "src/timing/stage.hpp"
#include "src/timing/state_delay.hpp"
#include "src/timing/voltage.hpp"

namespace vasim::timing {

/// Outcome of querying the oracle for one dynamic instruction instance.
struct FaultDecision {
  bool faulty = false;        ///< this instance actually violates timing
  bool core_faulty = false;   ///< the deterministic (recurring) component
  OooStage stage = OooStage::kIssueSelect;  ///< where the violation occurs
  double path_factor = 0.0;   ///< mu+2sigma delay / nominal cycle time
};

/// Outcome of an in-order-engine query (Section 2.2).
struct InOrderFaultDecision {
  bool faulty = false;
  InOrderStage stage = InOrderStage::kRename;
};

/// Per-run fault oracle.  One instance per (workload, supply) simulation.
class FaultModel {
 public:
  FaultModel(const PathModelConfig& path_cfg, double vdd,
             const VoltageModel& vm = VoltageModel(),
             const EnvironmentConfig& env_cfg = {});

  /// Decision for the dynamic instance of `pc` evaluated at `cycle`.
  [[nodiscard]] FaultDecision query(Pc pc, FaultClass cls, Cycle cycle) const;

  /// In-order engine faults are far rarer than OoO ones (Section 2.2 /
  /// [17]: fetch and decode see small thermal/voltage fluctuation);
  /// `inorder_scale` is their rate relative to the OoO population.
  [[nodiscard]] InOrderFaultDecision query_inorder(Pc pc, Cycle cycle,
                                                   double inorder_scale = 0.05) const;

  /// Adaptive-clock query: the violation condition generalizes to
  ///   path_factor * delay_scale * state_factor * modulation > period_scale
  /// where `period_scale` is the current clock period as a fraction of the
  /// nominal period (src/adapt/ DVFS controllers move it) and the optional
  /// state-dependent model (set_state_model) contributes the per-instance
  /// operand-toggle factor.  With period_scale == 1.0 and no state model the
  /// decision is bit-identical to query(); static runs never call this path.
  [[nodiscard]] FaultDecision query_adaptive(Pc pc, FaultClass cls, Cycle cycle,
                                             double period_scale, u64 state_sig) const;

  /// Adaptive-clock in-order query; unlike query_inorder this does not
  /// short-circuit on enabled(), because an overclocked period can violate
  /// even at the nominal supply.
  [[nodiscard]] InOrderFaultDecision query_inorder_adaptive(Pc pc, Cycle cycle,
                                                            double inorder_scale,
                                                            double period_scale) const;

  /// Attaches (or detaches, with nullptr) the state-dependent delay model
  /// used by the adaptive queries.  Not owned.
  void set_state_model(const StateDelayModel* m) { state_model_ = m; }

  /// True when the configured supply can produce faults at all.
  [[nodiscard]] bool enabled() const { return delay_scale_ > 1.0 / 0.97; }

  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] double delay_scale() const { return delay_scale_; }
  [[nodiscard]] const SensitizedPathModel& paths() const { return paths_; }
  [[nodiscard]] const Environment& environment() const { return env_; }
  [[nodiscard]] const VoltageModel& voltage_model() const { return vm_; }

 private:
  VoltageModel vm_;
  SensitizedPathModel paths_;
  Environment env_;
  double vdd_;
  double delay_scale_;
  const StateDelayModel* state_model_ = nullptr;
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_FAULT_MODEL_HPP
