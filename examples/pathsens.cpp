// Example: the cross-layer path-sensitization study in miniature (S1).
//
// Builds the 32-bit ALU at gate level, replays dynamic instances of a few
// static PCs against it, and shows (a) how sensitized-path commonality
// emerges from input locality and (b) how the statistical STA's mu+2sigma
// delay compares with the cycle time at each supply point -- the chain of
// reasoning behind the per-PC fault model.
#include <iostream>

#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/circuit/sta.hpp"
#include "src/common/table.hpp"
#include "src/timing/path_model.hpp"
#include "src/timing/process_variation.hpp"
#include "src/timing/voltage.hpp"
#include "src/workload/inputs.hpp"
#include "src/workload/profiles.hpp"

int main() {
  using namespace vasim;
  using namespace vasim::circuit;

  const Component alu = build_simple_alu(32);
  std::cout << "32-bit ALU: " << alu.netlist.num_logic_gates() << " gates, depth "
            << analyze_nominal(alu.netlist).logic_depth << "\n\n";

  // (a) Commonality vs input locality.
  TextTable t({"input locality", "commonality |phi|/|psi|"});
  for (const double locality : {0.50, 0.80, 0.90, 0.96}) {
    workload::Spec2000Profile prof{"demo", locality, 0.5, 0.3, 7};
    const workload::ComponentInputGen gen(prof, input_width(alu));
    double acc = 0;
    const int pcs = 20;
    for (int p = 0; p < pcs; ++p) {
      acc += measure_commonality(alu, gen.instances(0x1000 + static_cast<Pc>(p) * 4, 16)).ratio;
    }
    t.add_row({TextTable::fmt(locality, 2), TextTable::fmt(acc / pcs, 3)});
  }
  std::cout << t.render("Sensitized-path commonality rises with input locality (S1.3)")
            << "\n";

  // (b) Statistical timing against the supply points.
  const timing::ProcessVariation pv;
  const StatisticalStaResult sta = analyze_statistical(alu.netlist, pv, 128);
  const timing::VoltageModel vm;
  std::cout << "statistical STA over 128 dies: mu = " << TextTable::fmt(sta.mu_ps, 0)
            << " ps, sigma = " << TextTable::fmt(sta.sigma_ps, 1)
            << " ps, mu+2sigma = " << TextTable::fmt(sta.mu_plus_2sigma_ps, 0) << " ps\n\n";

  TextTable v({"VDD", "delay scale", "mu+2sigma (scaled)", "vs nominal-cycle budget"});
  const double budget = sta.mu_plus_2sigma_ps * 1.03;  // 3% guardband at 1.10 V
  for (const double vdd : {1.10, 1.04, 0.97}) {
    const double scaled = sta.mu_plus_2sigma_ps * vm.delay_scale(vdd);
    v.add_row({TextTable::fmt(vdd, 2), TextTable::fmt(vm.delay_scale(vdd), 4),
               TextTable::fmt(scaled, 0) + " ps",
               scaled > budget ? "VIOLATES (timing fault)" : "meets timing"});
  }
  std::cout << v.render("The paper's fault criterion: fault iff mu+2sigma exceeds the cycle time")
            << "\n"
            << "Lowering VDD from 1.10 V stretches every sensitized path; PCs whose\n"
            << "mu+2sigma is near the budget start violating -- recurrently, because\n"
            << "their dynamic instances sensitize nearly the same paths.\n";
  return 0;
}
