// Environment-variable helpers for scaling benchmark runs.
#ifndef VASIM_COMMON_ENV_HPP
#define VASIM_COMMON_ENV_HPP

#include <string>

#include "src/common/types.hpp"

namespace vasim {

/// Reads an unsigned integer from the environment; `fallback` when unset or
/// unparsable.
u64 env_u64(const std::string& name, u64 fallback);

/// Reads a string from the environment; `fallback` when unset.
std::string env_str(const std::string& name, const std::string& fallback);

}  // namespace vasim

#endif  // VASIM_COMMON_ENV_HPP
