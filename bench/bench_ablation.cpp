// Ablation studies on design choices the paper calls out:
//  1. Criticality Threshold sweep (Section 3.5.2: "a CT of 8 gives the best
//     outcome") on the CDS-friendly workload.
//  2. TEP geometry sweep (table size / history bits).
//  3. Recovery model comparison: squash-refetch vs RazorII-style micro
//     stall for unpredicted faults.
//  4. Sensor gating on/off (Section 2.1.1's thermal/voltage gating).
//
// Every run in every study is one SweepJob (machine/predictor variations
// ride in per-job RunnerConfig overrides), so the whole ablation grid fans
// out over the sweep pool at once and is unpacked in submission order.
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 100'000);
  const core::SweepRunner sweeper(rc);
  bench::print_run_header("Ablations: CT sweep, TEP geometry, recovery model, sensor gating",
                          rc, sweeper.workers());
  const auto libq = workload::spec2006_profile("libquantum");
  const auto bzip2 = workload::spec2006_profile("bzip2");
  const auto gcc = workload::spec2006_profile("gcc");

  const int cts[] = {2, 4, 8, 12, 16};
  const int tep_entries[] = {256, 1024, 4096};
  const int tep_hist[] = {0, 8};
  const cpu::RecoveryModel recoveries[] = {cpu::RecoveryModel::kSquashRefetch,
                                           cpu::RecoveryModel::kMicroStall};
  const int widths[] = {2, 4, 8};

  std::vector<core::SweepJob> jobs;

  // Study 1: CT sweep.  The fault-free baseline does not depend on CT, so
  // one baseline serves every row.
  jobs.push_back({libq, std::nullopt, 0.97, std::nullopt});
  for (const int ct : cts) {
    cpu::SchemeConfig cds = cpu::scheme_cds();
    cds.criticality_threshold = ct;
    jobs.push_back({libq, cds, 0.97, std::nullopt});
  }

  // Study 2: TEP geometry (baseline is predictor-independent).
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  for (const int entries : tep_entries) {
    for (const int hist : tep_hist) {
      core::RunnerConfig c = rc;
      c.tep.entries = entries;
      c.tep.history_bits = hist;
      jobs.push_back({bzip2, cpu::scheme_abs(), 0.97, c});
    }
  }

  // Study 3: recovery model.
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  for (const auto rec : recoveries) {
    cpu::SchemeConfig razor = cpu::scheme_razor();
    razor.recovery = rec;
    jobs.push_back({bzip2, razor, 0.97, std::nullopt});
  }

  // Study 5: machine width (baseline depends on the width config).
  for (const int width : widths) {
    core::RunnerConfig c = rc;
    c.core.issue_width = width;
    c.core.fetch_width = width;
    c.core.dispatch_width = width;
    c.core.commit_width = width;
    c.core.simple_alus = width / 2;
    jobs.push_back({bzip2, std::nullopt, 0.97, c});
    jobs.push_back({bzip2, cpu::scheme_error_padding(), 0.97, c});
    jobs.push_back({bzip2, cpu::scheme_abs(), 0.97, c});
  }

  // Study 6: next-line prefetch.
  for (const bool pf : {false, true}) {
    core::RunnerConfig c = rc;
    c.core.l2_next_line_prefetch = pf;
    jobs.push_back({libq, std::nullopt, 0.97, c});
    jobs.push_back({libq, cpu::scheme_abs(), 0.97, c});
  }

  // Study 7: wrong-path energy.
  for (const bool wp : {false, true}) {
    core::RunnerConfig c = rc;
    c.core.model_wrong_path = wp;
    jobs.push_back({gcc, std::nullopt, 0.97, c});
    jobs.push_back({gcc, cpu::scheme_razor(), 0.97, c});
  }

  // Study 4: sensor gating (baseline is predictor-independent).
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  for (const bool gating : {true, false}) {
    core::RunnerConfig c = rc;
    c.tep.sensor_gating = gating;
    jobs.push_back({bzip2, cpu::scheme_error_padding(), 0.97, c});
  }

  const core::SweepReport report = sweeper.run(jobs);
  std::size_t at = 0;
  const auto next = [&report, &at]() -> const core::RunResult& {
    return report.jobs.at(at++).result;
  };

  {
    TextTable t({"CT", "CDS perf-ovh% (libquantum @0.97V)", "TEP accuracy"});
    const core::RunResult& ff = next();
    for (const int ct : cts) {
      const core::RunResult& r = next();
      t.add_row({std::to_string(ct), TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                 TextTable::fmt(r.predictor_accuracy, 3)});
    }
    std::cout << t.render("Ablation 1: Criticality Threshold (paper: CT = 8 best)") << "\n";
  }

  {
    TextTable t({"entries", "hist-bits", "ABS perf-ovh% (bzip2 @0.97V)", "TEP accuracy"});
    const core::RunResult& ff = next();
    for (const int entries : tep_entries) {
      for (const int hist : tep_hist) {
        const core::RunResult& r = next();
        t.add_row({std::to_string(entries), std::to_string(hist),
                   TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                   TextTable::fmt(r.predictor_accuracy, 3)});
      }
    }
    std::cout << t.render("Ablation 2: TEP geometry (Section 2.1.1)") << "\n";
  }

  {
    TextTable t({"recovery", "Razor perf-ovh% (bzip2 @0.97V)", "replays"});
    const core::RunResult& ff = next();
    for (const auto rec : recoveries) {
      const core::RunResult& r = next();
      t.add_row({rec == cpu::RecoveryModel::kSquashRefetch ? "squash-refetch" : "micro-stall",
                 TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 2),
                 TextTable::fmt(r.replays, 0)});
    }
    std::cout << t.render("Ablation 3: replay recovery model (Section 2.1.2)") << "\n";
  }

  {
    // VTE benefit vs machine width: narrower machines have less slack to
    // hide the faulty instruction's extra cycle.
    TextTable t({"width", "EP perf-ovh%", "ABS perf-ovh%", "ABS/EP"});
    for (const int width : widths) {
      const core::RunResult& ff = next();
      const core::RunResult& ep = next();
      const core::RunResult& abs = next();
      const double oep = core::overhead_vs(ff, ep).perf_pct;
      const double oabs = core::overhead_vs(ff, abs).perf_pct;
      t.add_row({std::to_string(width), TextTable::fmt(oep, 2), TextTable::fmt(oabs, 2),
                 TextTable::fmt(bench::normalized_to_ep(oabs, oep), 3)});
    }
    std::cout << t.render("Ablation 5: machine width (bzip2 @0.97V)") << "\n";
  }

  {
    // Prefetching shrinks memory slack: does the VTE's hidden cycle emerge?
    TextTable t({"prefetch", "FF IPC", "ABS perf-ovh% (libquantum @0.97V)"});
    for (const bool pf : {false, true}) {
      const core::RunResult& ff = next();
      const core::RunResult& abs = next();
      t.add_row({pf ? "on" : "off", TextTable::fmt(ff.ipc, 3),
                 TextTable::fmt(core::overhead_vs(ff, abs).perf_pct, 3)});
    }
    std::cout << t.render("Ablation 6: next-line prefetch vs architectural slack") << "\n";
  }

  {
    // Energy cost of mispredicted-path execution (unmodeled in the
    // baseline): how much does wrong-path work inflate ED overheads?
    TextTable t({"wrong-path", "FF IPC (gcc)", "razor ED-ovh% @0.97V"});
    for (const bool wp : {false, true}) {
      const core::RunResult& ff = next();
      const core::RunResult& r = next();
      t.add_row({wp ? "on" : "off", TextTable::fmt(ff.ipc, 3),
                 TextTable::fmt(core::overhead_vs(ff, r).ed_pct, 2)});
    }
    std::cout << t.render("Ablation 7: wrong-path execution energy") << "\n";
  }

  {
    TextTable t({"sensor-gating", "EP perf-ovh% (bzip2 @0.97V)", "TEP accuracy", "false-pos"});
    const core::RunResult& ff = next();
    for (const bool gating : {true, false}) {
      const core::RunResult& r = next();
      t.add_row({gating ? "on" : "off", TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                 TextTable::fmt(r.predictor_accuracy, 3),
                 std::to_string(r.stats.count("fault.false_positive"))});
    }
    std::cout << t.render("Ablation 4: thermal/voltage sensor gating (Section 2.1.1)") << "\n";
  }
  bench::emit_json("ablation", report);
  return 0;
}
