#include "src/obs/profiler.hpp"

namespace vasim::obs {

void ProfilerHub::merge(const Profiler::Snapshot& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto tid = std::this_thread::get_id();
  auto it = worker_ids_.find(tid);
  if (it == worker_ids_.end()) {
    it = worker_ids_.emplace(tid, snaps_.size()).first;
    snaps_.emplace_back();
  }
  snaps_[it->second].merge(s);
}

std::vector<ProfilerHub::WorkerReport> ProfilerHub::per_worker() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerReport> out;
  out.reserve(snaps_.size());
  for (std::size_t i = 0; i < snaps_.size(); ++i) {
    out.push_back(WorkerReport{i, snaps_[i]});
  }
  return out;
}

Profiler::Snapshot ProfilerHub::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Profiler::Snapshot t;
  for (const auto& s : snaps_) t.merge(s);
  return t;
}

}  // namespace vasim::obs
