#include "src/core/runner.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "src/core/job_context.hpp"
#include "src/core/progress.hpp"
#include "src/core/snapshot.hpp"

namespace vasim::core {
namespace {

using detail::JobContext;

/// Optional mid-run snapshot request for drive_run.
struct CaptureSpec {
  u64 at = 0;
  bool stop_after = false;  ///< abandon the run once captured (warmup-only)
  bool done = false;
  RunSnapshot snapshot;
};

/// The run loop, phase-structured exactly like Pipeline::run (same commit
/// limits at the same boundaries), with snapshot checks between cycles.
/// Capture points quantize to the first cycle boundary at or past the
/// requested commit count, which is why continuation is bit-identical.
void drive_run(const RunnerConfig& cfg, JobContext& ctx,
               const workload::BenchmarkProfile& profile, double vdd, CaptureSpec* cap,
               StatSet& base, u64& base_committed, Cycle& base_cycles) {
  cpu::Pipeline& pipe = *ctx.pipe;
  bool base_captured = false;
  u64 next_periodic = cfg.snapshot_interval;
  std::optional<ProgressMeter> meter;
  if (cfg.progress) meter.emplace("run", cfg.warmup + cfg.instructions, "commits");
  u64 progress_tick = 0;

  // Returns false when the driver should stop (warmup-only capture done).
  const auto boundary = [&]() -> bool {
    // The meter rate-limits its own printing; the tick mask just keeps the
    // steady-clock read off most cycles.
    if (meter && (++progress_tick & 0x1FFF) == 0) meter->update(pipe.committed());
    if (cap != nullptr && !cap->done && pipe.committed() >= cap->at) {
      cap->snapshot = detail::make_snapshot(cfg, ctx, profile, vdd, base, base_committed,
                                            base_cycles, base_captured);
      cap->done = true;
      if (cap->stop_after) return false;
    }
    if (cfg.snapshot_interval > 0) {
      while (pipe.committed() >= next_periodic) {
        detail::make_snapshot(cfg, ctx, profile, vdd, base, base_committed, base_cycles,
                              base_captured)
            .write_file(cfg.snapshot_path + std::to_string(pipe.committed()) + ".vsnap");
        next_periodic += cfg.snapshot_interval;
      }
    }
    return true;
  };

  if (cfg.warmup > 0) {
    pipe.set_commit_limit(cfg.warmup);
    while (pipe.committed() < cfg.warmup) {
      if (!boundary()) return;
      if (!pipe.step()) break;
    }
    // A capture at exactly the warmup boundary lands here, *before* the
    // base is read: the resuming side re-derives the identical base from
    // the restored state, so the snapshot stays measurement-agnostic.
    if (!boundary()) return;
    base = pipe.snapshot_stats();
    base_committed = pipe.committed();
    base_cycles = pipe.now();
    base_captured = true;
    // Cut the timeline exactly at the measurement base so the measured
    // windows sum to the measured StatSet, counter for counter.
    if (ctx.timeline) ctx.timeline->mark_measurement(pipe.now(), pipe.committed());
  }

  const u64 target = cfg.warmup + cfg.instructions;
  pipe.set_commit_limit(target);
  while (pipe.committed() < target) {
    if (!boundary()) return;
    if (!pipe.step()) break;
  }
  // Capture points at or past the end resolve to the final state: the run
  // cannot commit past `target` (and may fall short if the source drained),
  // so a still-pending request fires here unconditionally.
  if (cap != nullptr && !cap->done) cap->at = pipe.committed();
  boundary();
  if (meter) meter->finish(pipe.committed());
}

RunResult run_job(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
                  const std::optional<cpu::SchemeConfig>& scheme, double vdd, CaptureSpec* cap) {
  JobContext ctx(cfg, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  drive_run(cfg, ctx, profile, vdd, cap, base, base_committed, base_cycles);
  cpu::PipelineResult pr = ctx.pipe->result_window(base, base_committed, base_cycles);
  return detail::assemble_result(cfg, ctx, profile, vdd, std::move(pr));
}

}  // namespace

Overheads overhead_vs(const RunResult& base, const RunResult& x) {
  Overheads o;
  if (base.ipc > 0.0 && x.ipc > 0.0) o.perf_pct = (base.ipc / x.ipc - 1.0) * 100.0;
  if (base.energy.edp > 0.0) o.ed_pct = (x.energy.edp / base.energy.edp - 1.0) * 100.0;
  return o;
}

RunResult ExperimentRunner::run(const workload::BenchmarkProfile& profile,
                                const cpu::SchemeConfig& scheme, double vdd) const {
  return run_job(cfg_, profile, scheme, vdd, nullptr);
}

RunResult ExperimentRunner::run_fault_free(const workload::BenchmarkProfile& profile,
                                           double vdd) const {
  return run_job(cfg_, profile, std::nullopt, vdd, nullptr);
}

RunSnapshot ExperimentRunner::capture(const workload::BenchmarkProfile& profile,
                                      const std::optional<cpu::SchemeConfig>& scheme, double vdd,
                                      u64 at_committed) const {
  JobContext ctx(cfg_, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  CaptureSpec cap;
  cap.at = at_committed;
  cap.stop_after = true;
  drive_run(cfg_, ctx, profile, vdd, &cap, base, base_committed, base_cycles);
  if (!cap.done) {
    throw std::runtime_error("capture point " + std::to_string(at_committed) +
                             " never reached (source drained)");
  }
  return std::move(cap.snapshot);
}

CaptureResult ExperimentRunner::run_and_capture(const workload::BenchmarkProfile& profile,
                                                const std::optional<cpu::SchemeConfig>& scheme,
                                                double vdd, u64 at_committed) const {
  JobContext ctx(cfg_, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  CaptureSpec cap;
  cap.at = at_committed;
  drive_run(cfg_, ctx, profile, vdd, &cap, base, base_committed, base_cycles);
  cpu::PipelineResult pr = ctx.pipe->result_window(base, base_committed, base_cycles);
  CaptureResult out{detail::assemble_result(cfg_, ctx, profile, vdd, std::move(pr)),
                    std::move(cap.snapshot)};
  return out;
}

RunResult ExperimentRunner::run_from(const RunSnapshot& snapshot,
                                     std::optional<double> vdd_override) const {
  const RunMeta& m = snapshot.meta();
  if (vdd_override && !m.fault_free && *vdd_override != m.vdd) {
    throw snap::SnapshotError(
        "vdd override is only valid for fault-free snapshots (supply changes execution)");
  }
  const std::optional<cpu::SchemeConfig> scheme_opt =
      m.fault_free ? std::optional<cpu::SchemeConfig>{} : std::optional(m.scheme);
  const u64 key = warmup_key(cfg_, m.profile, scheme_opt, m.vdd);
  if (key != m.warmup_key) {
    throw snap::SnapshotError(
        "warmup key mismatch: the resuming runner's warmup-relevant configuration differs "
        "from the capturing one");
  }

  JobContext ctx(cfg_, m.profile, scheme_opt, m.vdd);
  detail::restore_into(ctx, snapshot);

  cpu::Pipeline& pipe = *ctx.pipe;
  StatSet base = m.base;
  u64 base_committed = m.base_committed;
  Cycle base_cycles = m.base_cycles;
  if (!m.base_captured && cfg_.warmup > 0) {
    // Pre-boundary capture: finish warmup, then read the measurement base
    // exactly where the uninterrupted run would have.
    pipe.set_commit_limit(cfg_.warmup);
    while (pipe.committed() < cfg_.warmup && pipe.step()) {
    }
    base = pipe.snapshot_stats();
    base_committed = pipe.committed();
    base_cycles = pipe.now();
  }
  // Warm-started timelines begin at the fork point (restore_into already
  // rebaselined); the cut here separates any residual warmup windows so
  // measured sums still reconcile with the measured StatSet.
  if (ctx.timeline) ctx.timeline->mark_measurement(pipe.now(), pipe.committed());
  const u64 target = cfg_.warmup + cfg_.instructions;
  pipe.set_commit_limit(target);
  while (pipe.committed() < target && pipe.step()) {
  }
  cpu::PipelineResult pr = pipe.result_window(base, base_committed, base_cycles);
  return detail::assemble_result(cfg_, ctx, m.profile, vdd_override.value_or(m.vdd),
                                 std::move(pr));
}

const std::vector<cpu::SchemeConfig>& comparative_schemes() {
  static const std::vector<cpu::SchemeConfig> schemes = {
      cpu::scheme_razor(), cpu::scheme_error_padding(), cpu::scheme_abs(),
      cpu::scheme_ffs(), cpu::scheme_cds()};
  return schemes;
}

std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name) {
  if (name == "fault-free") return cpu::scheme_fault_free();
  for (const cpu::SchemeConfig& s : comparative_schemes()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace vasim::core
