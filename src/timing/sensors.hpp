// Thermal and voltage-droop sensors plus the environment modulation they
// observe.
//
// Section 2.1.1: "The prediction also considers favorable conditions for
// timing errors through the use of thermal and voltage sensors."  We model
// the physical environment as a slow thermal wave plus faster stochastic
// supply droop; sensors expose thresholded views of that environment so the
// TEP can gate its predictions on unfavorable conditions.
#ifndef VASIM_TIMING_SENSORS_HPP
#define VASIM_TIMING_SENSORS_HPP

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace vasim::timing {

/// Configuration of the physical environment modulation.
struct EnvironmentConfig {
  double thermal_amplitude = 0.005;   ///< +/-0.5% delay swing from temperature
  u64 thermal_period = 20000;         ///< cycles per thermal wave period
  double droop_amplitude = 0.004;     ///< sigma of supply-droop delay noise
  u64 droop_epoch = 16;               ///< cycles per droop re-draw
  double clamp = 0.015;               ///< total modulation clamped to +/-1.5%
  u64 seed = 0xd00dULL;
};

/// Deterministic delay-modulation source: multiplicative factor applied to
/// every sensitized path delay at a given cycle.
class Environment {
 public:
  explicit Environment(const EnvironmentConfig& cfg = {}) : cfg_(cfg) {}

  /// Multiplicative delay modulation at `cycle`; mean 1.0, clamped to
  /// [1-clamp, 1+clamp].
  [[nodiscard]] double modulation(Cycle cycle) const;

  /// The thermal component alone (for the thermal sensor).
  [[nodiscard]] double thermal_component(Cycle cycle) const;

  /// The droop component alone (for the voltage sensor).
  [[nodiscard]] double droop_component(Cycle cycle) const;

  [[nodiscard]] const EnvironmentConfig& config() const { return cfg_; }

 private:
  EnvironmentConfig cfg_;
};

/// A thresholded sensor over one environment component.  `hot()` reports
/// whether conditions currently favor timing violations.
class ThermalSensor {
 public:
  ThermalSensor(const Environment* env, double threshold = 0.0)
      : env_(env), threshold_(threshold) {}

  /// True when the thermal delay component exceeds the threshold (i.e. the
  /// die is in the slow half of the thermal wave).
  [[nodiscard]] bool hot(Cycle cycle) const { return env_->thermal_component(cycle) > threshold_; }

 private:
  const Environment* env_;
  double threshold_;
};

/// Supply-droop sensor; `droopy()` reports a sagging supply.
class VoltageSensor {
 public:
  VoltageSensor(const Environment* env, double threshold = 0.0)
      : env_(env), threshold_(threshold) {}

  [[nodiscard]] bool droopy(Cycle cycle) const {
    return env_->droop_component(cycle) > threshold_;
  }

 private:
  const Environment* env_;
  double threshold_;
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_SENSORS_HPP
