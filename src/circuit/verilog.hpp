// Structural Verilog export of a Component.
//
// Mirrors the paper's flow in reverse: our builders produce the netlists
// that Fabscalar + Synopsys DC produced for the authors; exporting them as
// synthesizable structural Verilog lets the same blocks be pushed through a
// real synthesis/STA flow for cross-validation.
#ifndef VASIM_CIRCUIT_VERILOG_HPP
#define VASIM_CIRCUIT_VERILOG_HPP

#include <string>

#include "src/circuit/builders.hpp"

namespace vasim::circuit {

/// Renders `component` as a synthesizable structural Verilog module using
/// primitive continuous assignments.  Inputs become `in[N-1:0]`, marked
/// outputs `out[M-1:0]`; internal nets are `n<i>`.
std::string to_verilog(const Component& component, const std::string& module_name);

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_VERILOG_HPP
