#include "src/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vasim {

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace vasim
