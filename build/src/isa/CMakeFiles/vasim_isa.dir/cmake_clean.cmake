file(REMOVE_RECURSE
  "CMakeFiles/vasim_isa.dir/assembler.cpp.o"
  "CMakeFiles/vasim_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/vasim_isa.dir/executor.cpp.o"
  "CMakeFiles/vasim_isa.dir/executor.cpp.o.d"
  "CMakeFiles/vasim_isa.dir/program.cpp.o"
  "CMakeFiles/vasim_isa.dir/program.cpp.o.d"
  "libvasim_isa.a"
  "libvasim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
