// Pipeline observation hooks and a Kanata trace writer.
//
// A PipelineObserver receives per-instruction lifecycle events; the
// KanataTraceWriter turns them into a Kanata-format pipeline visualization
// log (https://github.com/shioyadan/Konata), which is invaluable when
// debugging scheduling interactions like slot freezes and replays.
#ifndef VASIM_CPU_OBSERVER_HPP
#define VASIM_CPU_OBSERVER_HPP

#include <ostream>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/isa/dyninst.hpp"
#include "src/obs/trace.hpp"

namespace vasim::cpu {

/// Lifecycle callbacks.  All default to no-ops so observers override only
/// what they need.  `seq` is the dynamic sequence number (re-assigned after
/// a squash).
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  virtual void on_cycle(Cycle) {}
  virtual void on_fetch(SeqNum, const isa::DynInst&) {}
  virtual void on_dispatch(SeqNum) {}
  virtual void on_issue(SeqNum, bool predicted_faulty) { (void)predicted_faulty; }
  virtual void on_complete(SeqNum) {}
  virtual void on_commit(SeqNum) {}
  virtual void on_squash(SeqNum first_squashed, SeqNum last_squashed) {
    (void)first_squashed;
    (void)last_squashed;
  }
};

/// Fans lifecycle events out to any number of observers (e.g. a Kanata
/// writer and a Perfetto TraceObserver on the same run).  Pipeline holds one
/// of these; `Pipeline::set_observer` is a thin single-observer wrapper over
/// it.  Non-owning; observers must outlive the mux.
class ObserverMux final : public PipelineObserver {
 public:
  /// Attaches one observer; null is ignored.
  void add(PipelineObserver* obs);
  /// Detaches everything.
  void clear() { observers_.clear(); }
  [[nodiscard]] std::size_t size() const { return observers_.size(); }
  [[nodiscard]] bool empty() const { return observers_.empty(); }
  /// The single attached observer when size()==1 (lets callers bypass the
  /// extra virtual hop on the hot path); the mux itself otherwise.
  [[nodiscard]] PipelineObserver* as_observer();

  void on_cycle(Cycle now) override;
  void on_fetch(SeqNum seq, const isa::DynInst& di) override;
  void on_dispatch(SeqNum seq) override;
  void on_issue(SeqNum seq, bool predicted_faulty) override;
  void on_complete(SeqNum seq) override;
  void on_commit(SeqNum seq) override;
  void on_squash(SeqNum first_squashed, SeqNum last_squashed) override;

 private:
  std::vector<PipelineObserver*> observers_;
};

/// Writes a Kanata 0004 log.  Stages emitted: F (fetch/front end),
/// Ds (dispatch/queue), Is (issue/execute), Cm (completed, waiting for
/// retire).  Predicted-faulty instructions are annotated.
class KanataTraceWriter final : public PipelineObserver {
 public:
  /// `out` must outlive the writer.  `max_instructions` caps the log size.
  explicit KanataTraceWriter(std::ostream* out, u64 max_instructions = 10'000);

  void on_cycle(Cycle now) override;
  void on_fetch(SeqNum seq, const isa::DynInst& di) override;
  void on_dispatch(SeqNum seq) override;
  void on_issue(SeqNum seq, bool predicted_faulty) override;
  void on_complete(SeqNum seq) override;
  void on_commit(SeqNum seq) override;
  void on_squash(SeqNum first_squashed, SeqNum last_squashed) override;

  [[nodiscard]] u64 instructions_logged() const { return logged_; }

 private:
  [[nodiscard]] bool tracked(SeqNum seq) const;
  void sync_cycle();

  std::ostream* out_;
  u64 max_instructions_;
  u64 logged_ = 0;
  Cycle now_ = 0;
  Cycle emitted_cycle_ = 0;
  bool header_written_ = false;
  u64 retire_id_ = 0;
};

/// Streams per-instruction pipeline events as Chrome-trace-event spans
/// (open the file in https://ui.perfetto.dev or chrome://tracing).  Each
/// tracked instruction gets one viewer row (tid = seq) with spans for its
/// frontend (fetch->dispatch), queue (dispatch->issue), execute
/// (issue->complete) and retire-wait (complete->commit) phases; simulated
/// cycles map 1:1 onto trace microseconds.  Squashed instructions emit an
/// instant "squash" marker and their record resets, so a refetch that
/// re-assigns the SeqNum restarts the row cleanly.
class TraceObserver final : public PipelineObserver {
 public:
  /// `writer` must outlive the observer.  `max_instructions` caps how many
  /// sequence numbers get rows (the stream itself is unbounded).
  explicit TraceObserver(obs::ChromeTraceWriter* writer, u64 max_instructions = 10'000);

  void on_cycle(Cycle now) override { now_ = now; }
  void on_fetch(SeqNum seq, const isa::DynInst& di) override;
  void on_dispatch(SeqNum seq) override;
  void on_issue(SeqNum seq, bool predicted_faulty) override;
  void on_complete(SeqNum seq) override;
  void on_commit(SeqNum seq) override;
  void on_squash(SeqNum first_squashed, SeqNum last_squashed) override;

  [[nodiscard]] u64 instructions_traced() const { return traced_; }

 private:
  struct Rec {
    Cycle fetch = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Pc pc = 0;
    isa::OpClass op = isa::OpClass::kIntAlu;
    u8 phase = 0;  ///< 0 idle, 1 fetched, 2 dispatched, 3 issued, 4 completed
    bool pred_fault = false;
  };

  [[nodiscard]] bool tracked(SeqNum seq) const { return seq < max_instructions_; }
  Rec* rec(SeqNum seq);

  obs::ChromeTraceWriter* writer_;
  u64 max_instructions_;
  u64 traced_ = 0;
  Cycle now_ = 0;
  std::vector<Rec> recs_;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_OBSERVER_HPP
