// Cross-request LRU snapshot cache.
//
// The sweep engine shares warm-starts only *within* one --reuse-warmup sweep
// (src/core/sweep.cpp groups by warmup key, captures once, forks members).
// The serve daemon generalizes that across requests and across clients: the
// cache maps the exact same key -- warmup_key_bytes(), conservatively every
// knob that can influence machine state at the warmup boundary -- to a
// shared immutable RunSnapshot.  A cell whose key hits forks from the cached
// snapshot instead of re-simulating its warmup; a miss captures once and
// publishes for everyone after it.
//
// Correctness story: snapshots are immutable once inserted (shared_ptr to
// const), capture is deterministic, and restore-then-run is bitwise
// identical to straight-through (pinned since PR 5), so a hit, a miss, and
// no cache at all produce bitwise-identical per-job results.  The
// concurrency-oracle suite (tests/test_serve.cpp) re-proves this under
// eviction churn with the capacity forced to 1.
//
// Concurrency: one mutex around the map + LRU list; lookups copy a
// shared_ptr out under the lock.  Two threads missing the same key both
// capture (duplicate work, identical bytes) and the second insert is
// dropped -- blocking the second client on the first capture would serialize
// exactly the requests the daemon exists to overlap.
#ifndef VASIM_SERVE_SNAP_CACHE_HPP
#define VASIM_SERVE_SNAP_CACHE_HPP

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/core/snapshot.hpp"

namespace vasim::serve {

class SnapshotCache {
 public:
  /// `capacity` = max resident snapshots; 0 disables the cache entirely
  /// (every lookup misses, inserts are dropped, nothing is counted).
  explicit SnapshotCache(std::size_t capacity) : capacity_(capacity) {}

  /// Hit: bumps the entry to most-recently-used and returns it.
  /// Miss: returns nullptr.  Both are counted.
  [[nodiscard]] std::shared_ptr<const core::RunSnapshot> lookup(const std::string& key);

  /// Publishes a snapshot under `key`, evicting the least-recently-used
  /// entry when at capacity.  A concurrent duplicate (same key already
  /// present) is dropped: both captures produced identical bytes, and
  /// replacing would churn the LRU order for nothing.
  void insert(const std::string& key, std::shared_ptr<const core::RunSnapshot> snap);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    u64 duplicate_drops = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const core::RunSnapshot>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
  Stats counts_;
};

}  // namespace vasim::serve

#endif  // VASIM_SERVE_SNAP_CACHE_HPP
