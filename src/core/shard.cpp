#include "src/core/shard.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/snapshot.hpp"
#include "src/obs/timeline.hpp"
#include "src/snap/io.hpp"

namespace vasim::core {
namespace {

// ---- RunResult binary codec ------------------------------------------------
// The authoritative payload of a fragment entry: every field sweep_checksum
// reads (plus the diagnostic trail and the optional timeline), encoded with
// the snapshot primitives so double bit patterns and stat-counter maps
// survive the JSON round trip byte-for-byte.

void put_run_result(snap::Writer& w, const RunResult& r) {
  w.put_str(r.benchmark);
  w.put_str(r.scheme);
  w.put_f64(r.vdd);
  w.put_u64(r.committed);
  w.put_u64(r.cycles);
  w.put_f64(r.ipc);
  w.put_f64(r.fault_rate_pct);
  w.put_f64(r.replays);
  w.put_f64(r.predictor_accuracy);
  w.put_f64(r.energy.dynamic_nj);
  w.put_f64(r.energy.leakage_nj);
  w.put_f64(r.energy.edp);
  for (const u64 s : r.cpi.slots) w.put_u64(s);
  snap::put_statset(w, r.stats);
  w.put_u32(static_cast<u32>(r.commit_trail.size()));
  for (const Cycle c : r.commit_trail) w.put_u64(c);
  w.put_u64(r.checker_checks);
  // Fragment schema 2: optional per-job timeline (excluded from the merge
  // checksum, like everywhere else).
  w.put_bool(r.timeline != nullptr);
  if (r.timeline != nullptr) r.timeline->save(w);
  // Fragment schema 3: optional adaptive-clock summary.  The scalars mirror
  // checksummed dvfs.* stats; the trajectory is diagnostic.
  w.put_bool(r.dvfs.has_value());
  if (r.dvfs) {
    const DvfsSummary& d = *r.dvfs;
    w.put_str(d.policy);
    w.put_u64(d.epochs);
    w.put_u64(d.wall_units);
    w.put_u32(d.period_final);
    w.put_u32(d.period_lo);
    w.put_u32(d.period_hi);
    w.put_f64(d.avg_period_permille);
    w.put_f64(d.throughput);
    w.put_u32(static_cast<u32>(d.trajectory.size()));
    for (const adapt::TrajectoryPoint& p : d.trajectory) {
      w.put_u64(p.committed);
      w.put_u32(p.period_permille);
      w.put_u32(p.violations);
    }
  }
}

RunResult get_run_result(snap::Reader& r) {
  RunResult out;
  out.benchmark = r.get_str();
  out.scheme = r.get_str();
  out.vdd = r.get_f64();
  out.committed = r.get_u64();
  out.cycles = r.get_u64();
  out.ipc = r.get_f64();
  out.fault_rate_pct = r.get_f64();
  out.replays = r.get_f64();
  out.predictor_accuracy = r.get_f64();
  out.energy.dynamic_nj = r.get_f64();
  out.energy.leakage_nj = r.get_f64();
  out.energy.edp = r.get_f64();
  for (u64& s : out.cpi.slots) s = r.get_u64();
  out.stats = snap::get_statset(r);
  const u32 trail = r.get_u32();
  out.commit_trail.reserve(trail);
  for (u32 i = 0; i < trail; ++i) out.commit_trail.push_back(r.get_u64());
  out.checker_checks = r.get_u64();
  if (r.get_bool()) {
    out.timeline = std::make_shared<const obs::Timeline>(obs::Timeline::load(r));
  }
  if (r.get_bool()) {
    DvfsSummary d;
    d.policy = r.get_str();
    d.epochs = r.get_u64();
    d.wall_units = r.get_u64();
    d.period_final = r.get_u32();
    d.period_lo = r.get_u32();
    d.period_hi = r.get_u32();
    d.avg_period_permille = r.get_f64();
    d.throughput = r.get_f64();
    const u32 traj = r.get_u32();
    d.trajectory.reserve(traj);
    for (u32 i = 0; i < traj; ++i) {
      adapt::TrajectoryPoint p;
      p.committed = r.get_u64();
      p.period_permille = r.get_u32();
      p.violations = r.get_u32();
      d.trajectory.push_back(p);
    }
    out.dvfs = std::move(d);
  }
  return out;
}

std::string hex_encode(const std::vector<unsigned char>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<unsigned char> hex_decode(const std::string& hex) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) throw std::runtime_error("fragment blob has odd hex length");
  std::vector<unsigned char> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::runtime_error("fragment blob has non-hex characters");
    out.push_back(static_cast<unsigned char>((hi << 4) | lo));
  }
  return out;
}

// ---- JSON helpers (writer side mirrors sweep.cpp's conventions) ------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_f64(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---- targeted fragment scanner ---------------------------------------------
// Reads exactly what write_fragment_json emits.  Not a general JSON parser
// (the toolchain has none): keys are located in document order and values
// scanned in place, which is robust precisely because the layout is ours.

class Scanner {
 public:
  explicit Scanner(std::string text) : text_(std::move(text)) {}

  /// Positions the cursor after `"key": `; throws when the key is absent
  /// from the remaining text.
  void seek(const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t p = text_.find(needle, pos_);
    if (p == std::string::npos) {
      throw std::runtime_error("fragment: missing \"" + key + "\" field");
    }
    pos_ = p + needle.size();
    skip_ws();
  }

  /// True when `key` occurs in the remaining text (lookahead, no cursor move).
  [[nodiscard]] bool has_ahead(const std::string& key) const {
    return text_.find("\"" + key + "\":", pos_) != std::string::npos;
  }

  u64 scan_u64() {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text_.c_str() + pos_, &end, 10);
    if (end == text_.c_str() + pos_) throw std::runtime_error("fragment: expected an integer");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return static_cast<u64>(v);
  }

  double scan_f64() {
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) throw std::runtime_error("fragment: expected a number");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return v;
  }

  std::string scan_str() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      throw std::runtime_error("fragment: expected a string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("fragment: bad \\u escape");
            c = static_cast<char>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc; break;  // \" and \\ map to themselves
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) throw std::runtime_error("fragment: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

ShardSpec parse_shard(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  const auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    }
    return true;
  };
  if (slash == std::string::npos || !all_digits(spec.substr(0, slash)) ||
      !all_digits(spec.substr(slash + 1))) {
    throw std::invalid_argument("shard spec '" + spec + "' is not of the form i/N");
  }
  ShardSpec out;
  out.index = static_cast<std::size_t>(std::strtoull(spec.c_str(), nullptr, 10));
  out.count = static_cast<std::size_t>(std::strtoull(spec.c_str() + slash + 1, nullptr, 10));
  if (out.count == 0 || out.index == 0 || out.index > out.count) {
    throw std::invalid_argument("shard index " + spec + " is outside [1, N]");
  }
  return out;
}

std::vector<std::size_t> shard_indices(const std::vector<SweepJob>& jobs, const ShardSpec& spec,
                                       bool reuse_warmup, const RunnerConfig& base_cfg) {
  // Partition units: whole warmup groups (keyed exactly as SweepRunner
  // groups them) when warm-start sharing is on, single jobs otherwise.
  std::vector<std::vector<std::size_t>> units;
  if (reuse_warmup) {
    std::map<std::string, std::vector<std::size_t>> groups;
    std::vector<const std::vector<std::size_t>*> group_of(jobs.size(), nullptr);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RunnerConfig& cfg = jobs[i].config ? *jobs[i].config : base_cfg;
      if (cfg.warmup == 0) continue;
      groups[warmup_key_bytes(cfg, jobs[i].profile, jobs[i].scheme, jobs[i].vdd)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      for (const std::size_t i : members) group_of[i] = &members;
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (group_of[i] == nullptr) {
        units.push_back({i});
      } else if (group_of[i]->front() == i) {
        units.push_back(*group_of[i]);  // whole group, anchored at its first job
      }
    }
  } else {
    units.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) units.push_back({i});
  }

  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (u % spec.count == spec.index - 1) {
      out.insert(out.end(), units[u].begin(), units[u].end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SweepFragment make_fragment(const std::string& name, const ShardSpec& spec,
                            std::size_t total_jobs, const std::vector<std::size_t>& indices,
                            SweepReport&& report) {
  if (indices.size() != report.jobs.size()) {
    throw std::runtime_error("make_fragment: index list and report size disagree");
  }
  SweepFragment f;
  f.name = name;
  f.shard_index = spec.index;
  f.shard_count = spec.count;
  f.total_jobs = total_jobs;
  f.workers = report.workers;
  f.wall_ms = report.wall_ms;
  f.warmup_groups = report.warmup_groups;
  f.warmup_cycles_simulated = report.warmup_cycles_simulated;
  f.warmup_cycles_saved = report.warmup_cycles_saved;
  f.entries.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    f.entries[i].index = indices[i];
    f.entries[i].outcome = std::move(report.jobs[i]);
  }
  return f;
}

void write_fragment_json(std::ostream& os, const SweepFragment& f) {
  os << "{\n"
     << "  \"bench\": \"" << json_escape(f.name) << "\",\n"
     << "  \"kind\": \"sweep_fragment\",\n"
     << "  \"schema_version\": 3,\n"
     << "  \"shard_index\": " << f.shard_index << ",\n"
     << "  \"shard_count\": " << f.shard_count << ",\n"
     << "  \"total_jobs\": " << f.total_jobs << ",\n"
     << "  \"workers\": " << f.workers << ",\n"
     << "  \"wall_ms\": " << json_f64(f.wall_ms) << ",\n"
     << "  \"warmup_groups\": " << f.warmup_groups << ",\n"
     << "  \"warmup_cycles_simulated\": " << f.warmup_cycles_simulated << ",\n"
     << "  \"warmup_cycles_saved\": " << f.warmup_cycles_saved << ",\n"
     << "  \"jobs\": [";
  for (std::size_t i = 0; i < f.entries.size(); ++i) {
    const FragmentEntry& e = f.entries[i];
    const RunResult& r = e.outcome.result;
    snap::Writer w;
    put_run_result(w, r);
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"index\": " << e.index
       << ", \"benchmark\": \"" << json_escape(r.benchmark) << "\""
       << ", \"scheme\": \"" << json_escape(r.scheme) << "\""
       << ", \"vdd\": " << json_f64(r.vdd)
       << ", \"ipc\": " << json_f64(r.ipc)
       << ", \"wall_ms\": " << json_f64(e.outcome.wall_ms)
       << ", \"start_ms\": " << json_f64(e.outcome.start_ms)
       << ", \"worker\": " << e.outcome.worker
       << ", \"blob\": \"" << hex_encode(w.data()) << "\"}";
  }
  os << "\n  ]\n}\n";
}

SweepFragment read_fragment_json(std::istream& is, const std::string& path) {
  std::ostringstream buf;
  buf << is.rdbuf();
  Scanner sc(buf.str());

  SweepFragment f;
  sc.seek("bench");
  f.name = sc.scan_str();
  sc.seek("kind");
  if (sc.scan_str() != "sweep_fragment") {
    throw std::runtime_error("fragment: not a sweep fragment (wrong \"kind\")");
  }
  sc.seek("schema_version");
  constexpr u64 kFragmentSchema = 3;
  const u64 schema = sc.scan_u64();
  if (schema != kFragmentSchema) throw FragmentSchemaError(path, schema, kFragmentSchema);
  sc.seek("shard_index");
  f.shard_index = static_cast<std::size_t>(sc.scan_u64());
  sc.seek("shard_count");
  f.shard_count = static_cast<std::size_t>(sc.scan_u64());
  sc.seek("total_jobs");
  f.total_jobs = static_cast<std::size_t>(sc.scan_u64());
  sc.seek("workers");
  f.workers = static_cast<std::size_t>(sc.scan_u64());
  sc.seek("wall_ms");
  f.wall_ms = sc.scan_f64();
  sc.seek("warmup_groups");
  f.warmup_groups = static_cast<std::size_t>(sc.scan_u64());
  sc.seek("warmup_cycles_simulated");
  f.warmup_cycles_simulated = sc.scan_u64();
  sc.seek("warmup_cycles_saved");
  f.warmup_cycles_saved = sc.scan_u64();
  sc.seek("jobs");

  while (sc.has_ahead("index")) {
    FragmentEntry e;
    sc.seek("index");
    e.index = static_cast<std::size_t>(sc.scan_u64());
    sc.seek("wall_ms");
    e.outcome.wall_ms = sc.scan_f64();
    sc.seek("start_ms");
    e.outcome.start_ms = sc.scan_f64();
    sc.seek("worker");
    e.outcome.worker = static_cast<std::size_t>(sc.scan_u64());
    sc.seek("blob");
    const std::vector<unsigned char> bytes = hex_decode(sc.scan_str());
    snap::Reader r(bytes);
    e.outcome.result = get_run_result(r);
    r.expect_done("fragment blob");
    f.entries.push_back(std::move(e));
  }
  return f;
}

SweepReport merge_fragments(std::vector<SweepFragment> fragments) {
  if (fragments.empty()) throw std::runtime_error("merge: no fragments given");
  const SweepFragment& first = fragments.front();
  std::vector<bool> shard_seen(first.shard_count + 1, false);
  std::vector<bool> job_seen(first.total_jobs, false);

  SweepReport report;
  report.jobs.resize(first.total_jobs);
  for (SweepFragment& f : fragments) {
    if (f.name != first.name || f.shard_count != first.shard_count ||
        f.total_jobs != first.total_jobs) {
      throw std::runtime_error("merge: fragments disagree on sweep identity "
                               "(name/shard_count/total_jobs)");
    }
    if (f.shard_index == 0 || f.shard_index > f.shard_count ||
        shard_seen[f.shard_index]) {
      throw std::runtime_error("merge: duplicate or out-of-range shard index " +
                               std::to_string(f.shard_index));
    }
    shard_seen[f.shard_index] = true;
    report.workers = std::max(report.workers, f.workers);
    report.wall_ms += f.wall_ms;
    report.warmup_groups += f.warmup_groups;
    report.warmup_cycles_simulated += f.warmup_cycles_simulated;
    report.warmup_cycles_saved += f.warmup_cycles_saved;
    for (FragmentEntry& e : f.entries) {
      if (e.index >= first.total_jobs || job_seen[e.index]) {
        throw std::runtime_error("merge: job index " + std::to_string(e.index) +
                                 " duplicated or out of range");
      }
      job_seen[e.index] = true;
      report.jobs[e.index] = std::move(e.outcome);
    }
  }
  for (std::size_t i = 0; i < job_seen.size(); ++i) {
    if (!job_seen[i]) {
      throw std::runtime_error("merge: job " + std::to_string(i) +
                               " missing (incomplete fragment set)");
    }
  }
  return report;
}

}  // namespace vasim::core
