file(REMOVE_RECURSE
  "CMakeFiles/vasim_circuit.dir/builders.cpp.o"
  "CMakeFiles/vasim_circuit.dir/builders.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/cell_library.cpp.o"
  "CMakeFiles/vasim_circuit.dir/cell_library.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/dynamic.cpp.o"
  "CMakeFiles/vasim_circuit.dir/dynamic.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/gatesim.cpp.o"
  "CMakeFiles/vasim_circuit.dir/gatesim.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/netlist.cpp.o"
  "CMakeFiles/vasim_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/power.cpp.o"
  "CMakeFiles/vasim_circuit.dir/power.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/scheduler_blocks.cpp.o"
  "CMakeFiles/vasim_circuit.dir/scheduler_blocks.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/sta.cpp.o"
  "CMakeFiles/vasim_circuit.dir/sta.cpp.o.d"
  "CMakeFiles/vasim_circuit.dir/verilog.cpp.o"
  "CMakeFiles/vasim_circuit.dir/verilog.cpp.o.d"
  "libvasim_circuit.a"
  "libvasim_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
