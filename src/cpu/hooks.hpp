// Interfaces between the pipeline and the paper's mechanisms.
//
// The pipeline calls a FaultPredictor (implemented by the TEP in src/core)
// and is parameterized by a SchemeConfig selecting between the comparative
// schemes of Section 5: Razor (replay everything), Error Padding (global
// stall per predicted fault) and the violation-aware schemes ABS/FFS/CDS
// (VTE with a selection policy).
#ifndef VASIM_CPU_HOOKS_HPP
#define VASIM_CPU_HOOKS_HPP

#include <string>

#include "src/common/types.hpp"
#include "src/timing/stage.hpp"

namespace vasim::cpu {

/// Instruction-selection priority (Section 3.5).
enum class SelectPolicy {
  kAge,                ///< ABS: oldest (lowest timestamp) first
  kFaultyFirst,        ///< FFS: predicted-faulty first, age otherwise
  kCriticalityDriven,  ///< CDS: faulty-and-critical first, age otherwise
};

/// How unpredicted faults are recovered (Section 2.1.2).
enum class RecoveryModel {
  kSquashRefetch,  ///< flush the faulty instruction + younger, refetch
  kMicroStall,     ///< RazorII-style in-place replay: global stall of N cycles
};

/// One comparative scheme.
struct SchemeConfig {
  std::string name = "fault-free";
  bool use_predictor = false;  ///< TEP consulted (EP and VTE schemes)
  bool vte = false;            ///< violation-aware scheduling active
  bool error_padding = false;  ///< EP: global stall per predicted fault
  SelectPolicy policy = SelectPolicy::kAge;
  RecoveryModel recovery = RecoveryModel::kMicroStall;
  Cycle micro_stall_cycles = 4;   ///< penalty for RecoveryModel::kMicroStall
  int criticality_threshold = 8;  ///< CDL's CT (Section 3.5.2; paper: 8 is best)
  /// In-order-engine fault rate relative to the OoO population (Section
  /// 2.2).  0 disables in-order faults -- the paper's evaluation measures
  /// the OoO engine only; this knob exercises the completeness mechanisms:
  /// stall-recirculation for rename/dispatch/retire, replay for
  /// fetch/decode.
  double inorder_fault_scale = 0.0;
};

/// TEP lookup result attached to an instruction at decode.
struct FaultPrediction {
  bool predicted = false;
  timing::OooStage stage = timing::OooStage::kIssueSelect;
  bool critical = false;
};

/// Predictor interface the pipeline drives (implemented by core::TimingErrorPredictor).
class FaultPredictor {
 public:
  virtual ~FaultPredictor() = default;

  /// Lookup at decode: `history` is the branch-history register; `now` lets
  /// the implementation consult thermal/voltage sensors (Section 2.1.1).
  virtual FaultPrediction predict(Pc pc, u64 history, Cycle now) = 0;

  /// Training on an observed outcome: `faulty` means a real timing
  /// violation was detected (handled or replayed) in `stage`.
  virtual void train(Pc pc, u64 history, bool faulty, timing::OooStage stage) = 0;

  /// CDL feedback: `pc` produced >= CT dependents in the issue queue.
  virtual void mark_critical(Pc pc, u64 history, bool critical) = 0;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_HOOKS_HPP
