#include "src/serve/snap_cache.hpp"

namespace vasim::serve {

std::shared_ptr<const core::RunSnapshot> SnapshotCache::lookup(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counts_.misses;
    return nullptr;
  }
  ++counts_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void SnapshotCache::insert(const std::string& key,
                           std::shared_ptr<const core::RunSnapshot> snap) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++counts_.duplicate_drops;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++counts_.evictions;
  }
  lru_.emplace_front(key, std::move(snap));
  index_.emplace(key, lru_.begin());
  ++counts_.insertions;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counts_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace vasim::serve
