// Reproduces Table 3 (Supplement S1.2.2): characteristics of the four
// synthesized processor components -- gate count and logic depth -- plus the
// statistical timing summary (mu + 2 sigma) the fault model is seeded from.
#include <iostream>

#include "src/circuit/builders.hpp"
#include "src/circuit/power.hpp"
#include "src/circuit/sta.hpp"
#include "src/common/env.hpp"
#include "src/common/table.hpp"
#include "src/timing/process_variation.hpp"

using namespace vasim;
using namespace vasim::circuit;

int main() {
  const int dies = static_cast<int>(env_u64("VASIM_STA_DIES", 64));
  std::cout << "=== Table 3: Details of Synthesized Processor Components ===\n"
            << "(structural netlists; statistical STA over " << dies << " Monte-Carlo dies)\n\n";

  struct Row {
    const char* name;
    Component comp;
    int paper_gates;
    int paper_depth;
  };
  Row rows[] = {
      {"IssueQSelect", build_issue_select(32, 4), 189, 33},
      {"ALU", build_simple_alu(32), 4728, 46},
      {"AGEN", build_agen(32, 16), 491, 43},
      {"ForwardCheck", build_forward_check(4, 4, 7), 428, 15},
  };

  const timing::ProcessVariation pv;
  TextTable t({"module", "#gates", "(paper)", "depth", "(paper)", "nominal-ps", "mu-ps",
               "mu+2sigma-ps", "area-um2"});
  for (Row& r : rows) {
    const StaResult sta = analyze_nominal(r.comp.netlist);
    const StatisticalStaResult ssta = analyze_statistical(r.comp.netlist, pv, dies);
    const PowerReport power = roll_up(r.comp);
    t.add_row({r.name, std::to_string(r.comp.netlist.num_logic_gates()),
               "(" + std::to_string(r.paper_gates) + ")", std::to_string(sta.logic_depth),
               "(" + std::to_string(r.paper_depth) + ")", TextTable::fmt(sta.critical_delay_ps, 0),
               TextTable::fmt(ssta.mu_ps, 0), TextTable::fmt(ssta.mu_plus_2sigma_ps, 0),
               TextTable::fmt(power.area_um2, 0)});
  }
  std::cout << t.render() << "\n";
  std::cout << "Expected shape: ALU is the largest and among the deepest blocks;\n"
               "ForwardCheck has by far the smallest logic depth (15 in the paper).\n"
               "Absolute counts differ from Synopsys DC synthesis of Fabscalar RTL; the\n"
               "size ordering and depth contrast are the reproduced properties.\n";
  return 0;
}
