#include "src/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>

#include "src/common/env.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/batch.hpp"
#include "src/core/progress.hpp"
#include "src/core/snapshot.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/trace.hpp"

namespace vasim::core {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// ---- checksum --------------------------------------------------------------

constexpr u64 kFnvOffset = 1469598103934665603ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

void fnv_bytes(u64& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(u64& h, u64 v) { fnv_bytes(h, &v, sizeof v); }

void fnv_f64(u64& h, double v) {
  u64 bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_u64(h, bits);
}

void fnv_str(u64& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

void fnv_result(u64& h, const RunResult& r) {
  fnv_str(h, r.benchmark);
  fnv_str(h, r.scheme);
  fnv_f64(h, r.vdd);
  fnv_u64(h, r.committed);
  fnv_u64(h, r.cycles);
  fnv_f64(h, r.ipc);
  fnv_f64(h, r.fault_rate_pct);
  fnv_f64(h, r.replays);
  fnv_f64(h, r.predictor_accuracy);
  fnv_f64(h, r.energy.dynamic_nj);
  fnv_f64(h, r.energy.leakage_nj);
  fnv_f64(h, r.energy.edp);
  for (const auto& [name, count] : r.stats.counters()) {
    fnv_str(h, name);
    fnv_u64(h, count);
  }
  for (const auto& [name, value] : r.stats.scalars()) {
    fnv_str(h, name);
    fnv_f64(h, value);
  }
}

// ---- JSON ------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_f64(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::size_t sweep_workers_from_env() { return ThreadPool::default_worker_count(); }

SweepReport SweepRunner::run(const std::vector<SweepJob>& jobs) const {
  SweepReport report;
  report.workers = workers_;
  report.jobs.resize(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());

  const auto t0 = Clock::now();

  // Trace/progress bookkeeping.  Worker ids are assigned on first encounter
  // (pool threads have no public index); done/start/worker never feed the
  // checksum, so none of this perturbs determinism.
  std::mutex meta_mu;
  std::map<std::thread::id, std::size_t> worker_ids;
  std::atomic<std::size_t> done{0};

  const auto worker_of = [&](std::thread::id tid) {
    std::lock_guard<std::mutex> lock(meta_mu);
    return worker_ids.emplace(tid, worker_ids.size()).first->second;
  };
  // The shared ProgressMeter (src/core/progress.hpp) serves sweeps and
  // single runs alike; it rate-limits and locks internally.
  std::optional<ProgressMeter> meter;
  if (progress_) meter.emplace("sweep", jobs.size(), "jobs");
  const auto note_progress = [&] {
    const std::size_t d = ++done;
    if (!meter) return;
    if (d == jobs.size()) {
      meter->finish(d);
    } else {
      meter->update(d);
    }
  };

  // Warm-start grouping (set_reuse_warmup): jobs whose conservative warmup
  // keys match simulate the warmup once and fork the measurement from the
  // shared snapshot.  Singleton groups are dropped -- running straight
  // through is cheaper than capture + restore for a job with no siblings.
  struct Group {
    std::vector<std::size_t> members;
    std::optional<RunSnapshot> snap;
    std::exception_ptr error;
  };
  std::map<std::string, Group> groups;
  std::vector<Group*> shared(jobs.size(), nullptr);
  if (reuse_warmup_) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RunnerConfig& cfg = jobs[i].config ? *jobs[i].config : cfg_;
      if (cfg.warmup == 0) continue;
      groups[warmup_key_bytes(cfg, jobs[i].profile, jobs[i].scheme, jobs[i].vdd)]
          .members.push_back(i);
    }
    for (auto it = groups.begin(); it != groups.end();) {
      if (it->second.members.size() < 2) {
        it = groups.erase(it);
      } else {
        for (const std::size_t i : it->second.members) shared[i] = &it->second;
        ++it;
      }
    }
  }

  const auto capture_group = [&](Group& g) {
    // A fired token also skips warmup captures: every member will report
    // cancelled before it could touch the (absent) snapshot.
    if (cancel_ != nullptr && cancel_->cancelled()) return;
    const SweepJob& job = jobs[g.members.front()];
    const RunnerConfig& cfg = job.config ? *job.config : cfg_;
    try {
      const ExperimentRunner runner(cfg);
      g.snap.emplace(runner.capture(job.profile, job.scheme, job.vdd, cfg.warmup));
    } catch (...) {
      // Every member inherits the failure: a group whose warmup cannot be
      // captured must not half-run with some members silently falling back.
      g.error = std::current_exception();
    }
  };

  const auto run_one = [&](std::size_t index, SweepOutcome& out) {
    // Cooperative cancel boundary: jobs are never interrupted mid-run, so
    // the only check is here, before the simulation starts.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      out.cancelled = true;
      note_progress();
      return;
    }
    const SweepJob& job = jobs[index];
    const auto j0 = Clock::now();
    out.start_ms = ms_between(t0, j0);
    out.worker = worker_of(std::this_thread::get_id());
    const ExperimentRunner runner(job.config ? *job.config : cfg_);
    const Group* g = shared[index];
    if (g != nullptr) {
      if (g->error) std::rethrow_exception(g->error);
      // job.vdd only diverges from the snapshot's within fault-free groups,
      // where the supply does not influence execution (see warmup_key).
      out.result = runner.run_from(*g->snap, job.vdd);
    } else {
      out.result = job.scheme ? runner.run(job.profile, *job.scheme, job.vdd)
                              : runner.run_fault_free(job.profile, job.vdd);
    }
    out.wall_ms = ms_between(j0, Clock::now());
    note_progress();
  };

  // Batched lockstep mode (set_batch / VASIM_BATCH): jobs advance B at a
  // time through BatchRunner's fused cycle loop, one chunk per pool task.
  // Chunks are contiguous submission-order spans, so results land in the
  // same slots as the per-job modes; group-capture failures surface as the
  // member's error exactly like run_one would have rethrown them.
  const BatchRunner batch_runner(cfg_, batch_);
  const auto run_chunk = [&](std::size_t c0, std::size_t c1) {
    // Batch mode cancels between chunks: a chunk that has not started when
    // the token fires reports every member cancelled.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      for (std::size_t i = c0; i < c1; ++i) {
        report.jobs[i].cancelled = true;
        note_progress();
      }
      return;
    }
    const auto k0 = Clock::now();
    std::vector<BatchRunner::Cell> cells;
    std::vector<std::size_t> index_of;  // chunk-local -> global job index
    cells.reserve(c1 - c0);
    for (std::size_t i = c0; i < c1; ++i) {
      const Group* g = shared[i];
      if (g != nullptr && g->error) {
        errors[i] = g->error;
        note_progress();
        continue;
      }
      BatchRunner::Cell cell;
      cell.job = &jobs[i];
      if (g != nullptr) cell.warm = &*g->snap;
      cells.push_back(cell);
      index_of.push_back(i);
    }
    if (cells.empty()) return;
    std::vector<RunResult> results(cells.size());
    std::vector<std::exception_ptr> cell_errors(cells.size());
    const std::size_t worker = worker_of(std::this_thread::get_id());
    const double start_ms = ms_between(t0, k0);
    batch_runner.run_cells(cells.data(), cells.size(), results.data(), cell_errors.data(),
                           [&](std::size_t local) {
                             SweepOutcome& out = report.jobs[index_of[local]];
                             out.start_ms = start_ms;
                             out.wall_ms = ms_between(k0, Clock::now());
                             out.worker = worker;
                             note_progress();
                           });
    for (std::size_t local = 0; local < cells.size(); ++local) {
      if (cell_errors[local]) {
        errors[index_of[local]] = cell_errors[local];
      } else {
        report.jobs[index_of[local]].result = std::move(results[local]);
      }
    }
  };

  if (batch_ > 1) {
    if (workers_ <= 1) {
      for (auto& [key, g] : groups) capture_group(g);
      for (std::size_t c = 0; c < jobs.size(); c += batch_) {
        run_chunk(c, std::min(jobs.size(), c + batch_));
      }
    } else {
      ThreadPool pool(workers_);
      for (auto& [key, g] : groups) {
        Group* gp = &g;
        pool.submit([&capture_group, gp] { capture_group(*gp); });
      }
      pool.wait_idle();
      for (std::size_t c = 0; c < jobs.size(); c += batch_) {
        const std::size_t c1 = std::min(jobs.size(), c + batch_);
        pool.submit([&run_chunk, c, c1] { run_chunk(c, c1); });
      }
      pool.wait_idle();
    }
  } else if (workers_ <= 1) {
    // Sequential path: exactly the historical bench behaviour, no pool.
    for (auto& [key, g] : groups) capture_group(g);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        run_one(i, report.jobs[i]);
      } catch (...) {
        errors[i] = std::current_exception();
        note_progress();
      }
    }
  } else {
    ThreadPool pool(workers_);
    // Phase A: shared warmups (a barrier keeps the dependency trivial --
    // measurement jobs only ever read completed snapshots).
    for (auto& [key, g] : groups) {
      Group* gp = &g;
      pool.submit([&capture_group, gp] { capture_group(*gp); });
    }
    pool.wait_idle();
    // Phase B: every job, forked or direct.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([&, i] {
        try {
          run_one(i, report.jobs[i]);
        } catch (...) {
          errors[i] = std::current_exception();
          note_progress();
        }
      });
    }
    pool.wait_idle();
  }
  report.wall_ms = ms_between(t0, Clock::now());
  for (const SweepOutcome& j : report.jobs) {
    if (j.cancelled) ++report.cancelled_jobs;
  }

  for (const auto& [key, g] : groups) {
    if (!g.snap) continue;
    ++report.warmup_groups;
    report.warmup_cycles_simulated += g.snap->meta().captured_cycle;
    report.warmup_cycles_saved +=
        g.snap->meta().captured_cycle * static_cast<u64>(g.members.size() - 1);
  }

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return report;
}

std::vector<RunResult> SweepRunner::run_results(const std::vector<SweepJob>& jobs) const {
  SweepReport report = run(jobs);
  std::vector<RunResult> out;
  out.reserve(report.jobs.size());
  for (SweepOutcome& j : report.jobs) out.push_back(std::move(j.result));
  return out;
}

u64 sweep_checksum(const std::vector<RunResult>& results) {
  u64 h = kFnvOffset;
  fnv_u64(h, results.size());
  for (const RunResult& r : results) fnv_result(h, r);
  return h;
}

u64 sweep_checksum(const SweepReport& report) {
  u64 h = kFnvOffset;
  fnv_u64(h, report.jobs.size());
  for (const SweepOutcome& j : report.jobs) fnv_result(h, j.result);
  return h;
}

u64 result_checksum(const RunResult& result) {
  u64 h = kFnvOffset;
  fnv_result(h, result);
  return h;
}

void write_sweep_json(std::ostream& os, const std::string& name, const SweepReport& report) {
  // Schema 5: adds the per-job "dvfs" block (controller summary plus the
  // period trajectory) on adaptive-clock jobs.  Schema 4 added per-job
  // "percentiles" and "timeline".  None of these feed the checksum, but the
  // dvfs scalars mirror checksummed dvfs.* stats.
  os << "{\n"
     << "  \"bench\": \"" << json_escape(name) << "\",\n"
     << "  \"schema_version\": 5,\n"
     << "  \"workers\": " << report.workers << ",\n"
     << "  \"wall_ms\": " << json_f64(report.wall_ms) << ",\n"
     << "  \"warmup_groups\": " << report.warmup_groups << ",\n"
     << "  \"warmup_cycles_simulated\": " << report.warmup_cycles_simulated << ",\n"
     << "  \"warmup_cycles_saved\": " << report.warmup_cycles_saved << ",\n"
     << "  \"checksum\": \"" << std::hex << sweep_checksum(report) << std::dec << "\",\n"
     << "  \"jobs\": [";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const SweepOutcome& j = report.jobs[i];
    const RunResult& r = j.result;
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"benchmark\": \"" << json_escape(r.benchmark) << "\""
       << ", \"scheme\": \"" << json_escape(r.scheme) << "\""
       << ", \"vdd\": " << json_f64(r.vdd)
       << ", \"committed\": " << r.committed
       << ", \"cycles\": " << r.cycles
       << ", \"ipc\": " << json_f64(r.ipc)
       << ", \"fault_rate_pct\": " << json_f64(r.fault_rate_pct)
       << ", \"replays\": " << json_f64(r.replays)
       << ", \"predictor_accuracy\": " << json_f64(r.predictor_accuracy)
       << ", \"energy_nj\": " << json_f64(r.energy.total_nj())
       << ", \"edp\": " << json_f64(r.energy.edp)
       << ", \"cpi\": {";
    for (int c = 0; c < obs::kNumCpiCauses; ++c) {
      os << (c == 0 ? "" : ", ") << "\"" << obs::to_string(static_cast<obs::CpiCause>(c))
         << "\": " << r.cpi.slots[static_cast<std::size_t>(c)];
    }
    os << "}";
    // Histogram percentile exports group by prefix: "<h>.p50/.p95/.p99"
    // scalars become {"<h>": {"p50": ..., "p95": ..., "p99": ...}}.
    bool any_pct = false;
    for (const auto& [sname, value] : r.stats.scalars()) {
      constexpr std::string_view kSuffix = ".p50";
      if (sname.size() <= kSuffix.size() ||
          sname.compare(sname.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
        continue;
      }
      const std::string base_name = sname.substr(0, sname.size() - kSuffix.size());
      os << (any_pct ? ", " : ", \"percentiles\": {") << "\"" << json_escape(base_name)
         << "\": {\"p50\": " << json_f64(value)
         << ", \"p95\": " << json_f64(r.stats.scalar(base_name + ".p95"))
         << ", \"p99\": " << json_f64(r.stats.scalar(base_name + ".p99")) << "}";
      any_pct = true;
    }
    if (any_pct) os << "}";
    if (r.timeline) {
      os << ", \"timeline\": ";
      r.timeline->write_json(os, /*include_counters=*/false);
    }
    if (r.dvfs) {
      const DvfsSummary& d = *r.dvfs;
      os << ", \"dvfs\": {\"policy\": \"" << json_escape(d.policy) << "\""
         << ", \"epochs\": " << d.epochs
         << ", \"wall_units\": " << d.wall_units
         << ", \"period_final\": " << d.period_final
         << ", \"period_lo\": " << d.period_lo
         << ", \"period_hi\": " << d.period_hi
         << ", \"avg_period_permille\": " << json_f64(d.avg_period_permille)
         << ", \"throughput\": " << json_f64(d.throughput)
         << ", \"trajectory\": [";
      for (std::size_t t = 0; t < d.trajectory.size(); ++t) {
        const adapt::TrajectoryPoint& p = d.trajectory[t];
        os << (t == 0 ? "" : ", ") << "[" << p.committed << ", " << p.period_permille << ", "
           << p.violations << "]";
      }
      os << "]}";
    }
    os << ", \"wall_ms\": " << json_f64(j.wall_ms) << "}";
  }
  os << "\n  ]\n}\n";
}

std::string emit_sweep_json(const std::string& name, const SweepReport& report) {
  if (env_u64("VASIM_JSON", 1) == 0) return {};
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) return {};
  write_sweep_json(out, name, report);
  return out ? path : std::string{};
}

void write_chrome_trace(std::ostream& os, const SweepReport& report) {
  obs::ChromeTraceWriter trace(&os);
  constexpr u64 kPid = 0;
  trace.process_name(kPid, "vasim sweep");
  std::size_t max_worker = 0;
  for (const SweepOutcome& j : report.jobs) max_worker = std::max(max_worker, j.worker);
  for (std::size_t w = 0; w <= max_worker; ++w) {
    trace.thread_name(kPid, w, "worker " + std::to_string(w));
  }
  // Per-job timelines (when the sweep ran with a timeline interval) render
  // as counter tracks on a second process row, one thread per job, with the
  // window grid mapped onto the job's wall-clock span so the series align
  // under the job spans above.
  constexpr u64 kTimelinePid = 1;
  bool any_timeline = false;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const SweepOutcome& j = report.jobs[i];
    const RunResult& r = j.result;
    char vdd[32];
    std::snprintf(vdd, sizeof vdd, "%g", r.vdd);
    const std::string label = r.benchmark + "/" + r.scheme + "@" + vdd;
    trace.complete_event(label, "job", kPid, j.worker, j.start_ms * 1000.0,
                         j.wall_ms * 1000.0,
                         {{"ipc", std::to_string(r.ipc)},
                          {"committed", std::to_string(r.committed)},
                          {"cycles", std::to_string(r.cycles)}});
    if (r.timeline != nullptr && r.timeline->windows() > 0) {
      if (!any_timeline) {
        trace.process_name(kTimelinePid, "vasim timelines");
        any_timeline = true;
      }
      trace.thread_name(kTimelinePid, i, label);
      // Map the sampled cycle span (fork point .. last window) onto the
      // job's wall span; warm-started timelines begin at non-zero cycles.
      const auto last_cycle =
          static_cast<double>(r.timeline->cycle_end(r.timeline->windows() - 1));
      const auto base_cycle =
          static_cast<double>(r.timeline->cycle_end(0) - r.timeline->cycle_delta(0));
      const double span = last_cycle - base_cycle;
      const double us_per_cycle = span > 0.0 ? j.wall_ms * 1000.0 / span : 0.0;
      r.timeline->append_counter_tracks(trace, kTimelinePid, i, label + " ",
                                        j.start_ms * 1000.0 - base_cycle * us_per_cycle,
                                        us_per_cycle);
    }
  }
  trace.finish();
}

}  // namespace vasim::core
