// Line-delimited JSON protocol for the serve daemon.
//
// One request line in, one reply line out (the transport appends '\n').
// Requests are JSON objects with an "op" discriminator:
//
//   {"op":"submit","cells":[{"bench":"bzip2","scheme":"abs","vdd":0.97}],
//    "instr":3000,"warmup":1000,"timeline_interval":500,
//    "dvfs":"reactive","epoch":2000,"tag":"c1"}
//       -> {"ok":true,"job":7,"cells":1,"queued":2}
//   {"op":"poll","job":7,"since":0}
//       -> {"ok":true,"job":7,"state":"running","cells":1,"done":0,
//           "results":[...]}   (results from index `since` on)
//   {"op":"cancel","job":7}    -> {"ok":true,"job":7,"state":"cancelled"}
//   {"op":"stats"}             -> {"ok":true,"stats":{...},"cache":{...},...}
//   {"op":"shutdown"}          -> {"ok":true,"shutdown":true}
//
// Every failure is a *named* error reply, mirroring the snapshot
// container's rejection style -- a frame is never silently accepted or
// partially applied:
//
//   {"ok":false,"error":"parse_error|not_object|unknown_op|unknown_field|
//                        bad_field|bad_grid|queue_full|unknown_job|
//                        shutting_down|oversized_frame","message":"..."}
//
// "queue_full" replies additionally carry "retry_after_ms" (explicit
// backpressure: the client owns the retry).  Unknown *fields* are rejected,
// not skipped: a typo like "warmpu" must not silently run with the default.
// The full reference lives in docs/serve.md.
#ifndef VASIM_SERVE_PROTOCOL_HPP
#define VASIM_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <string>
#include <string_view>

#include "src/serve/server.hpp"

namespace vasim::serve {

/// Transport-level framing limits (enforced by the socket layer; exposed so
/// tests and docs agree on the number).
struct FrameLimits {
  std::size_t max_frame_bytes = 1 << 20;  ///< request line cap, newline excluded
};

/// Handles one request frame against `server` and returns the reply line
/// (no trailing newline).  Never throws: every failure becomes a named
/// error reply.  Sets `*shutdown_requested` when the frame was a granted
/// shutdown op -- the transport replies first, then stops the server.
[[nodiscard]] std::string handle_frame(Server& server, std::string_view line,
                                       bool* shutdown_requested);

/// Formats the named error reply (shared with the socket layer's
/// oversized-frame rejection).
[[nodiscard]] std::string error_reply(const std::string& name, const std::string& message);

}  // namespace vasim::serve

#endif  // VASIM_SERVE_PROTOCOL_HPP
