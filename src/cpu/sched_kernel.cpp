// Cold paths of the scheduler kernel (construction and squash filtering);
// the per-cycle hot paths stay inline in sched_kernel.hpp.
#include "src/cpu/sched_kernel.hpp"

namespace vasim::cpu {

void EventWheel::init(Arena& a, u32 buckets_pow2, u32 pool_cap) {
  mask_ = buckets_pow2 - 1;
  pool_cap_ = pool_cap;
  pool_ = a.alloc<Node>(pool_cap);
  heads_ = a.alloc<i32>(buckets_pow2);
  max_seq_ = a.alloc<SeqNum>(buckets_pow2);
  occ_ = a.alloc<u64>(buckets_pow2 / 64 + 1);
  for (u32 b = 0; b < buckets_pow2; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 w = 0; w <= mask_ / 64; ++w) occ_[w] = 0;
  for (u32 i = 0; i < pool_cap; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap - 1].next = -1;
  free_ = 0;
  next_pop_ = 0;
}

void EventWheel::clear_events() {
  for (u32 b = 0; b <= mask_; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 w = 0; w <= mask_ / 64; ++w) occ_[w] = 0;
  for (u32 i = 0; i < pool_cap_; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap_ - 1].next = -1;
  free_ = 0;
}

void EventWheel::filter_squashed(SeqNum last_kept) {
  for (u32 w = 0; w <= mask_ / 64; ++w) {
    u64 bits = occ_[w];
    while (bits != 0) {
      const u32 b = w * 64 + static_cast<u32>(std::countr_zero(bits));
      bits &= bits - 1;
      if (max_seq_[b] <= last_kept) continue;  // no squashed events here
      SeqNum maxs = 0;
      i32* link = &heads_[b];
      while (*link >= 0) {
        Node& node = pool_[*link];
        if (node.seq > last_kept) {
          const i32 dead = *link;
          *link = node.next;
          pool_[dead].next = free_;
          free_ = dead;
        } else {
          if (node.seq > maxs) maxs = node.seq;
          link = &node.next;
        }
      }
      max_seq_[b] = maxs;
      if (heads_[b] < 0) occ_[b >> 6] &= ~(u64{1} << (b & 63));
    }
  }
}

}  // namespace vasim::cpu
