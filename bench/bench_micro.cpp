// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: TEP lookup/train, gate simulation, statistical STA, cache
// access, stats counters, trace generation, and whole-pipeline throughput.
//
// The custom main also re-times the StatSet-vs-Registry counter pair with a
// plain chrono loop and records the measured speedup in BENCH_micro.json
// (suppressed by VASIM_JSON=0), so the no-string-lookups-on-the-hot-path
// property is part of the diffable perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include <vector>

#include "src/adapt/dvfs.hpp"
#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/circuit/sta.hpp"
#include "src/common/env.hpp"
#include "src/common/stats.hpp"
#include "src/core/sweep.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/cache.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/timeline.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

/// Replays a pregenerated trace buffer so the timed region is the scheduler
/// kernel (step() loop), not trace synthesis.
class ReplaySource final : public isa::InstructionSource {
 public:
  explicit ReplaySource(const std::vector<isa::DynInst>* buf) : buf_(buf) {}
  bool next(isa::DynInst& out) override {
    out = (*buf_)[i_];
    if (++i_ == buf_->size()) i_ = 0;
    return true;
  }
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  const std::vector<isa::DynInst>* buf_;
  std::size_t i_ = 0;
};

const std::vector<isa::DynInst>& kernel_trace_buffer() {
  static const std::vector<isa::DynInst> buf = [] {
    const auto prof = workload::spec2006_profile("sjeng");
    workload::TraceGenerator gen(prof);
    std::vector<isa::DynInst> b(400'000);
    for (isa::DynInst& d : b) gen.next(d);
    return b;
  }();
  return buf;
}

void BM_TepPredict(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  for (Pc pc = 0; pc < 1024; ++pc) tep.train(0x1000 + pc * 4, 0, true, timing::OooStage::kIssueSelect);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tep.predict(0x1000 + (i % 4096) * 4, i, i));
    ++i;
  }
}
BENCHMARK(BM_TepPredict);

void BM_TepTrain(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  u64 i = 0;
  for (auto _ : state) {
    tep.train(0x1000 + (i % 4096) * 4, i, (i & 3) == 0, timing::OooStage::kExecute);
    ++i;
  }
  benchmark::DoNotOptimize(tep.predictions());
}
BENCHMARK(BM_TepTrain);

void BM_GateSimAlu(benchmark::State& state) {
  const circuit::Component alu = circuit::build_simple_alu(32);
  circuit::GateSim sim(&alu.netlist);
  std::vector<u8> in(static_cast<std::size_t>(circuit::input_width(alu)), 0);
  u64 i = 0;
  for (auto _ : state) {
    in[i % in.size()] ^= 1;
    ++i;
    benchmark::DoNotOptimize(sim.evaluate(in));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<u64>(alu.netlist.num_signals()));
}
BENCHMARK(BM_GateSimAlu);

void BM_StatisticalSta(benchmark::State& state) {
  const circuit::Component agen = circuit::build_agen(32, 16);
  const timing::ProcessVariation pv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_statistical(agen.netlist, pv, 8));
  }
}
BENCHMARK(BM_StatisticalSta);

void BM_CacheAccess(benchmark::State& state) {
  cpu::Cache cache(cpu::CacheConfig{32 * 1024, 4, 64, 1});
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_u64() & 0xFFFFF));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_StatSetInc(benchmark::State& state) {
  // The historical hot path: one std::map string lookup per event.
  StatSet stats;
  stats.inc("ev.broadcast", 0);
  for (auto _ : state) {
    stats.inc("ev.broadcast");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(stats.count("ev.broadcast"));
}
BENCHMARK(BM_StatSetInc);

void BM_RegistryCounterInc(benchmark::State& state) {
  // The interned replacement: the name is resolved once, the loop is a
  // pointer bump.
  obs::Registry reg;
  obs::Counter c = reg.counter("ev.broadcast");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_RegistryCounterInc);

void BM_TraceGeneration(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("gcc");
  workload::TraceGenerator gen(prof);
  isa::DynInst d;
  for (auto _ : state) {
    gen.next(d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_PipelineThroughput(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineThroughput)->Unit(benchmark::kMillisecond);

void BM_PipelineWithFaultsAbs(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    core::TimingErrorPredictor tep({}, &fm.environment());
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_abs(), &gen, &fm, &tep);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineWithFaultsAbs)->Unit(benchmark::kMillisecond);

void BM_SchedKernelCycleLoop(benchmark::State& state) {
  // Steady-state scheduler kernel: construction, warmup, and trace synthesis
  // all happen outside the timed loop; each iteration is one pipeline step.
  ReplaySource src(&kernel_trace_buffer());
  cpu::CoreConfig cfg;
  cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &src, nullptr, nullptr);
  while (p.committed() < 30'000) p.step();
  const u64 before = p.committed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(p.committed() - before));
  state.SetLabel("items=committed instructions");
}
BENCHMARK(BM_SchedKernelCycleLoop);

// ---- tracked-results copy ----------------------------------------------------

/// Copies a just-written BENCH_*.json out of the build tree into the tracked
/// bench/results/ directory (VASIM_RESULTS_DIR, injected by CMake), so the
/// repo's perf trajectory updates at bench time without a manual cp.
/// Disabled with VASIM_RESULTS=0; quietly skipped if the directory is absent.
void copy_to_results(const char* fname) {
#ifdef VASIM_RESULTS_DIR
  if (env_u64("VASIM_RESULTS", 1) == 0) return;
  std::ifstream in(fname, std::ios::binary);
  if (!in) return;
  std::ofstream out(std::string(VASIM_RESULTS_DIR) + "/" + fname, std::ios::binary);
  if (!out) return;
  out << in.rdbuf();
#else
  (void)fname;
#endif
}

// ---- stats-overhead record -------------------------------------------------

/// Best-of-`reps` ns/op for `body(iters)` with a steady_clock around it.
template <typename Body>
double best_ns_per_op(const Body& body, u64 iters, int reps) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body(iters);
    const auto t1 = Clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                      static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

/// Writes BENCH_micro.json with the StatSet-vs-Registry increment cost
/// (unless VASIM_JSON=0).  Measured outside google-benchmark so the file's
/// schema stays under our control.
void emit_stats_overhead_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  constexpr u64 kIters = 2'000'000;
  constexpr int kReps = 5;

  StatSet stats;
  stats.inc("ev.broadcast", 0);
  const double map_ns = best_ns_per_op(
      [&stats](u64 n) {
        for (u64 i = 0; i < n; ++i) {
          stats.inc("ev.broadcast");
          benchmark::ClobberMemory();
        }
      },
      kIters, kReps);
  benchmark::DoNotOptimize(stats.count("ev.broadcast"));

  obs::Registry reg;
  obs::Counter c = reg.counter("ev.broadcast");
  const double handle_ns = best_ns_per_op(
      [&c](u64 n) {
        for (u64 i = 0; i < n; ++i) {
          c.inc();
          benchmark::ClobberMemory();
        }
      },
      kIters, kReps);
  benchmark::DoNotOptimize(c.value());

  const double speedup = handle_ns > 0.0 ? map_ns / handle_ns : 0.0;
  std::ofstream out("BENCH_micro.json");
  if (!out) return;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"micro\",\n"
                "  \"schema_version\": 1,\n"
                "  \"statset_inc_ns\": %.3f,\n"
                "  \"registry_inc_ns\": %.3f,\n"
                "  \"registry_speedup\": %.2f\n"
                "}\n",
                map_ns, handle_ns, speedup);
  out << buf;
  out.close();
  copy_to_results("BENCH_micro.json");
  std::printf("[BENCH_micro.json: StatSet::inc %.1f ns, registry handle %.1f ns, %.1fx]\n",
              map_ns, handle_ns, speedup);
}

// ---- scheduler-kernel record -----------------------------------------------

/// Steady-state simulated MIPS of the step() loop (warmup and construction
/// excluded), replaying the shared trace buffer.  `timeline_interval > 0`
/// attaches an interval sampler before warmup, so the timed region measures
/// the sampler's steady-state cost.
double kernel_steady_mips(bool with_faults, u64 measure_commits, u64 timeline_interval = 0) {
  const auto prof = workload::spec2006_profile("sjeng");
  ReplaySource src(&kernel_trace_buffer());
  cpu::CoreConfig cfg;
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  cpu::Pipeline p(cfg, with_faults ? cpu::scheme_abs() : cpu::scheme_fault_free(), &src,
                  with_faults ? &fm : nullptr, with_faults ? &tep : nullptr);
  constexpr u64 kWarm = 30'000;
  std::optional<obs::Timeline> tl;
  if (timeline_interval > 0) {
    obs::Timeline::Config tc;
    tc.interval = timeline_interval;
    tc.capacity_hint =
        static_cast<std::size_t>((kWarm + measure_commits) / timeline_interval) + 8;
    tl.emplace(tc, &p.registry());
    p.set_timeline(&*tl, timeline_interval);
  }
  while (p.committed() < kWarm) p.step();
  const auto t0 = std::chrono::steady_clock::now();
  while (p.committed() < kWarm + measure_commits) p.step();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(measure_commits) / std::chrono::duration<double>(t1 - t0).count();
}

/// Writes BENCH_kernel.json: steady-state cycle-loop MIPS for the SoA
/// scheduler kernel against the pre-rewrite numbers (measured with the same
/// replay methodology at the deque/std::map implementation this kernel
/// replaced).  VASIM_KERNEL_REPS=1 gives CI a quick smoke run.
void emit_kernel_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  // Pre-rewrite baselines: window_ deque + cycle-bucketed std::map events.
  constexpr double kBaselineFaultFree = 1'789'389.0;
  constexpr double kBaselineAbs = 1'140'238.0;
  const int reps = static_cast<int>(env_u64("VASIM_KERNEL_REPS", 3));
  const u64 measure = env_u64("VASIM_KERNEL_COMMITS", 300'000);

  double best_ff = 0.0;
  double best_abs = 0.0;
  for (int r = 0; r < reps; ++r) {
    best_ff = std::max(best_ff, kernel_steady_mips(false, measure));
    best_abs = std::max(best_abs, kernel_steady_mips(true, measure));
  }

  std::ofstream out("BENCH_kernel.json");
  if (!out) return;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"sched_kernel\",\n"
                "  \"schema_version\": 1,\n"
                "  \"kernel_mips_fault_free\": %.0f,\n"
                "  \"kernel_mips_abs\": %.0f,\n"
                "  \"baseline_mips_fault_free\": %.0f,\n"
                "  \"baseline_mips_abs\": %.0f,\n"
                "  \"speedup_fault_free\": %.2f,\n"
                "  \"speedup_abs\": %.2f\n"
                "}\n",
                best_ff, best_abs, kBaselineFaultFree, kBaselineAbs,
                best_ff / kBaselineFaultFree, best_abs / kBaselineAbs);
  out << buf;
  out.close();
  copy_to_results("BENCH_kernel.json");
  std::printf("[BENCH_kernel.json: cycle loop %.0f MIPS (%.2fx), abs %.0f MIPS (%.2fx)]\n",
              best_ff, best_ff / kBaselineFaultFree, best_abs, best_abs / kBaselineAbs);
}

// ---- scheduler-kernel scaling record -----------------------------------------

struct SchedPoint {
  double mips = 0.0;
  double ipc = 0.0;
};

/// One steady-state measurement of the given core configuration: simulated
/// MIPS of the step() loop and the achieved IPC over the same window.
SchedPoint sched_scaling_point(const cpu::CoreConfig& cfg, bool with_faults, u64 measure) {
  const auto prof = workload::spec2006_profile("sjeng");
  ReplaySource src(&kernel_trace_buffer());
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  cpu::Pipeline p(cfg, with_faults ? cpu::scheme_abs() : cpu::scheme_fault_free(), &src,
                  with_faults ? &fm : nullptr, with_faults ? &tep : nullptr);
  constexpr u64 kWarm = 30'000;
  while (p.committed() < kWarm) p.step();
  const u64 c0 = p.committed();
  const Cycle y0 = p.now();
  const auto t0 = std::chrono::steady_clock::now();
  while (p.committed() < kWarm + measure) p.step();
  const auto t1 = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(t1 - t0).count();
  SchedPoint r;
  r.mips = static_cast<double>(p.committed() - c0) / s;
  r.ipc = static_cast<double>(p.committed() - c0) / static_cast<double>(p.now() - y0);
  return r;
}

/// An honest machine around an IQ of `iq` entries: the ROB, register file
/// and memory queues grow with the window so the issue queue is the resource
/// actually being scaled (a 512-entry IQ behind a 128-entry ROB never fills).
cpu::CoreConfig scaled_core(int iq, cpu::SchedKernel kernel) {
  cpu::CoreConfig cfg;
  cfg.sched_kernel = kernel;
  cfg.iq_entries = iq;
  cfg.rob_entries = std::max(cfg.rob_entries, iq);
  cfg.phys_regs = cfg.rob_entries + 64;
  cfg.lq_entries = std::max(cfg.lq_entries, cfg.rob_entries / 4);
  cfg.sq_entries = cfg.lq_entries;
  return cfg;
}

/// Writes BENCH_sched_scaling.json: simulated MIPS and achieved IPC against
/// issue-queue size (32..512) for both scheduler kernels, fault-free and
/// under the ABS scheme at 0.97 V, plus the per-size delay/issue-window
/// speedup the docs derive the crossover point from.  VASIM_SCHED_REPS /
/// VASIM_SCHED_COMMITS shrink the study for CI smoke runs.
void emit_sched_scaling_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  const int reps = static_cast<int>(env_u64("VASIM_SCHED_REPS", 3));
  const u64 measure = env_u64("VASIM_SCHED_COMMITS", 300'000);
  constexpr int kSizes[] = {32, 64, 128, 256, 512};
  constexpr cpu::SchedKernel kKernels[] = {cpu::SchedKernel::kIssueWindow,
                                           cpu::SchedKernel::kDelayQueue};

  struct Row {
    const char* kernel;
    const char* scheme;
    int iq;
    int rob;
    SchedPoint pt;
  };
  std::vector<Row> rows;
  for (const cpu::SchedKernel kernel : kKernels) {
    for (const bool with_faults : {false, true}) {
      for (const int iq : kSizes) {
        const cpu::CoreConfig cfg = scaled_core(iq, kernel);
        SchedPoint best;
        for (int r = 0; r < reps; ++r) {
          const SchedPoint p = sched_scaling_point(cfg, with_faults, measure);
          if (p.mips > best.mips) best = p;
        }
        rows.push_back({cpu::to_string(kernel), with_faults ? "abs" : "fault-free", iq,
                        cfg.rob_entries, best});
        std::printf("[sched_scaling: %s/%s iq=%d  %.0f MIPS  ipc %.3f]\n",
                    rows.back().kernel, rows.back().scheme, iq, best.mips, best.ipc);
      }
    }
  }

  const auto find_row = [&](const char* kernel, const char* scheme, int iq) -> const Row* {
    for (const Row& r : rows) {
      if (std::strcmp(r.kernel, kernel) == 0 && std::strcmp(r.scheme, scheme) == 0 &&
          r.iq == iq) {
        return &r;
      }
    }
    return nullptr;
  };

  std::ofstream out("BENCH_sched_scaling.json");
  if (!out) return;
  char buf[256];
  out << "{\n"
      << "  \"bench\": \"sched_scaling\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"measure_commits\": " << measure << ",\n"
      << "  \"points\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"kernel\": \"%s\", \"scheme\": \"%s\", \"iq\": %d, \"rob\": %d, "
                  "\"mips\": %.0f, \"ipc\": %.4f}",
                  i == 0 ? "" : ",", r.kernel, r.scheme, r.iq, r.rob, r.pt.mips, r.pt.ipc);
    out << buf;
  }
  out << "\n  ],\n  \"speedup_delay_over_issue\": [";
  bool first = true;
  for (const char* scheme : {"fault-free", "abs"}) {
    for (const int iq : kSizes) {
      const Row* iw = find_row("issue-window", scheme, iq);
      const Row* dq = find_row("delay-queue", scheme, iq);
      if (iw == nullptr || dq == nullptr || iw->pt.mips <= 0.0) continue;
      std::snprintf(buf, sizeof buf,
                    "%s\n    {\"scheme\": \"%s\", \"iq\": %d, \"speedup\": %.3f}",
                    first ? "" : ",", scheme, iq, dq->pt.mips / iw->pt.mips);
      out << buf;
      first = false;
    }
  }
  out << "\n  ]\n}\n";
  out.close();
  copy_to_results("BENCH_sched_scaling.json");
}

// ---- timeline-sampling overhead record ---------------------------------------

/// Writes BENCH_timeline.json: steady-state kernel MIPS with and without an
/// attached interval sampler at the default 10k-commit grain.  The CI guard
/// asserts overhead_pct stays at or under 2%.  VASIM_TIMELINE_REPS /
/// VASIM_TIMELINE_COMMITS shrink the measurement for smoke runs.
void emit_timeline_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  const int reps = static_cast<int>(env_u64("VASIM_TIMELINE_REPS", 3));
  const u64 measure = env_u64("VASIM_TIMELINE_COMMITS", 300'000);
  constexpr u64 kInterval = 10'000;

  double best_off = 0.0;
  double best_on = 0.0;
  for (int r = 0; r < reps; ++r) {
    best_off = std::max(best_off, kernel_steady_mips(true, measure));
    best_on = std::max(best_on, kernel_steady_mips(true, measure, kInterval));
  }
  const double overhead_pct = best_on > 0.0 ? (best_off / best_on - 1.0) * 100.0 : 0.0;

  std::ofstream out("BENCH_timeline.json");
  if (!out) return;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"timeline\",\n"
                "  \"schema_version\": 1,\n"
                "  \"interval\": %llu,\n"
                "  \"measure_commits\": %llu,\n"
                "  \"mips_unsampled\": %.0f,\n"
                "  \"mips_sampled\": %.0f,\n"
                "  \"overhead_pct\": %.2f,\n"
                "  \"windows\": %llu\n"
                "}\n",
                static_cast<unsigned long long>(kInterval),
                static_cast<unsigned long long>(measure), best_off, best_on, overhead_pct,
                static_cast<unsigned long long>(measure / kInterval));
  out << buf;
  out.close();
  copy_to_results("BENCH_timeline.json");
  std::printf("[BENCH_timeline.json: %.0f MIPS unsampled, %.0f MIPS sampled every %lluk "
              "commits, overhead %.2f%%]\n",
              best_off, best_on, static_cast<unsigned long long>(kInterval / 1000),
              overhead_pct);
}

// ---- warm-start sweep record -------------------------------------------------

/// Writes BENCH_snapshot.json: the same supply-sweep grid run straight
/// through and with --reuse-warmup sharing, recording the simulated-warmup
/// reduction and the checksum identity.  The headline witness is the cycle
/// reduction, not wall time: on a box with few cores the shared-warmup
/// capture phase serializes, but the simulated work removed is
/// machine-independent.
void emit_snapshot_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  core::RunnerConfig rc;
  rc.instructions = env_u64("VASIM_SNAPBENCH_INSTR", 20'000);
  rc.warmup = env_u64("VASIM_SNAPBENCH_WARMUP", 40'000);

  // A supply sweep: the fault-free baseline repeats at every vdd and is the
  // shareable portion (its warmup key excludes the supply).
  std::vector<core::SweepJob> jobs;
  const double vdds[] = {0.94, 0.97, 1.00, 1.04, 1.10};
  for (const auto& name : {"bzip2", "gobmk", "sjeng"}) {
    const auto prof = workload::spec2006_profile(name);
    for (const double vdd : vdds) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      jobs.push_back({prof, core::scheme_by_name("abs"), vdd, std::nullopt});
    }
  }

  core::SweepRunner straight(rc);
  core::SweepRunner shared(rc);
  shared.set_reuse_warmup(true);
  const core::SweepReport a = straight.run(jobs);
  const core::SweepReport b = shared.run(jobs);
  const u64 ck_a = core::sweep_checksum(a);
  const u64 ck_b = core::sweep_checksum(b);
  if (ck_a != ck_b) {
    std::fprintf(stderr, "BENCH_snapshot: checksum mismatch with warmup reuse on\n");
    std::exit(1);
  }

  // Over the grouped jobs, the straight sweep simulates simulated + saved
  // warmup cycles; the shared sweep simulates only the former.
  const u64 grouped_total = b.warmup_cycles_simulated + b.warmup_cycles_saved;
  const double reduction =
      grouped_total > 0
          ? static_cast<double>(b.warmup_cycles_saved) / static_cast<double>(grouped_total)
          : 0.0;

  std::ofstream out("BENCH_snapshot.json");
  if (!out) return;
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"snapshot_warm_start\",\n"
                "  \"schema_version\": 1,\n"
                "  \"jobs\": %zu,\n"
                "  \"warmup_groups\": %zu,\n"
                "  \"warmup_cycles_simulated\": %llu,\n"
                "  \"warmup_cycles_saved\": %llu,\n"
                "  \"warmup_reduction\": %.3f,\n"
                "  \"checksum_identical\": true,\n"
                "  \"checksum\": \"%016llx\",\n"
                "  \"wall_ms_straight\": %.1f,\n"
                "  \"wall_ms_reuse\": %.1f\n"
                "}\n",
                jobs.size(), b.warmup_groups,
                static_cast<unsigned long long>(b.warmup_cycles_simulated),
                static_cast<unsigned long long>(b.warmup_cycles_saved), reduction,
                static_cast<unsigned long long>(ck_b), a.wall_ms, b.wall_ms);
  out << buf;
  out.close();
  copy_to_results("BENCH_snapshot.json");
  std::printf("[BENCH_snapshot.json: %zu jobs, %zu shared groups, %llu warmup cycles saved "
              "(%.0f%% of grouped warmup), checksums identical]\n",
              jobs.size(), b.warmup_groups,
              static_cast<unsigned long long>(b.warmup_cycles_saved), reduction * 100.0);
}

// ---- batched lockstep scaling record ----------------------------------------

/// Writes BENCH_batch.json: aggregate sweep MIPS against the lockstep batch
/// width (B in {1, 2, 4, 8, 16}; src/core/batch.hpp) with a hard checksum
/// identity check across widths, plus a MIPS-per-core curve over worker
/// counts so real multi-core CI hardware catches parallel-scaling
/// regressions the 1-CPU container cannot see.  VASIM_BATCHBENCH_INSTR /
/// _WARMUP shrink the grid for CI smoke runs.
void emit_batch_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  core::RunnerConfig rc;
  rc.instructions = env_u64("VASIM_BATCHBENCH_INSTR", 20'000);
  rc.warmup = env_u64("VASIM_BATCHBENCH_WARMUP", 4'000);

  // 16 jobs so the widest batch still forms one full rotation.
  std::vector<core::SweepJob> jobs;
  for (const auto& name : {"bzip2", "gobmk", "sjeng", "mcf"}) {
    const auto prof = workload::spec2006_profile(name);
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    for (const auto& scheme : {"razor", "ep", "abs"}) {
      jobs.push_back({prof, core::scheme_by_name(scheme), 0.97, std::nullopt});
    }
  }
  const auto aggregate_mips = [&](const core::SweepReport& r) {
    u64 committed = 0;
    for (const auto& j : r.jobs) committed += j.result.committed;
    return r.wall_ms > 0.0 ? static_cast<double>(committed) / (r.wall_ms * 1e3) : 0.0;
  };

  struct Point {
    std::size_t batch;
    double wall_ms;
    double mips;
  };
  std::vector<Point> curve;
  u64 checksum = 0;
  for (const std::size_t b : {1, 2, 4, 8, 16}) {
    core::SweepRunner sweeper(rc, /*workers=*/1);
    sweeper.set_batch(b);
    const core::SweepReport report = sweeper.run(jobs);
    const u64 ck = core::sweep_checksum(report);
    if (b == 1) {
      checksum = ck;
    } else if (ck != checksum) {
      std::fprintf(stderr, "BENCH_batch: checksum mismatch at batch=%zu\n", b);
      std::exit(1);
    }
    curve.push_back({b, report.wall_ms, aggregate_mips(report)});
  }
  double mips_b1 = curve.front().mips;
  double mips_b8 = mips_b1;
  for (const Point& p : curve) {
    if (p.batch == 8) mips_b8 = p.mips;
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  struct CorePoint {
    std::size_t workers;
    double mips;
  };
  std::vector<CorePoint> per_core;
  for (std::size_t w = 1; w <= cores; w *= 2) {
    core::SweepRunner sweeper(rc, w);
    sweeper.set_batch(1);
    const core::SweepReport report = sweeper.run(jobs);
    if (core::sweep_checksum(report) != checksum) {
      std::fprintf(stderr, "BENCH_batch: checksum mismatch at workers=%zu\n", w);
      std::exit(1);
    }
    per_core.push_back({w, aggregate_mips(report)});
  }

  std::ofstream out("BENCH_batch.json");
  if (!out) return;
  char buf[256];
  out << "{\n"
      << "  \"bench\": \"batch_lockstep\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"jobs\": " << jobs.size() << ",\n";
  std::snprintf(buf, sizeof buf, "  \"checksum\": \"%016llx\",\n",
                static_cast<unsigned long long>(checksum));
  out << buf << "  \"checksum_identical\": true,\n"
      << "  \"batch_curve\": [";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s\n    {\"batch\": %zu, \"wall_ms\": %.1f, \"mips\": %.3f}",
                  i == 0 ? "" : ",", curve[i].batch, curve[i].wall_ms, curve[i].mips);
    out << buf;
  }
  std::snprintf(buf, sizeof buf, "\n  ],\n  \"speedup_b8\": %.3f,\n  \"cores\": %u,\n",
                mips_b1 > 0.0 ? mips_b8 / mips_b1 : 0.0, cores);
  out << buf << "  \"per_core_curve\": [";
  for (std::size_t i = 0; i < per_core.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"workers\": %zu, \"mips\": %.3f, \"mips_per_core\": %.3f}",
                  i == 0 ? "" : ",", per_core[i].workers, per_core[i].mips,
                  per_core[i].mips / static_cast<double>(per_core[i].workers));
    out << buf;
  }
  out << "\n  ],\n";
  if (cores == 1) {
    out << "  \"caveat\": \"single-CPU environment: per-cycle pipeline work dominates, so "
           "lockstep batching amortizes only loop dispatch on one thread; the recorded "
           "speedup_b8 understates what the batch x worker composition delivers on "
           "multi-core hardware (see per_core_curve there)\"\n";
  } else {
    out << "  \"caveat\": null\n";
  }
  out << "}\n";
  out.close();
  copy_to_results("BENCH_batch.json");
  std::printf("[BENCH_batch.json: %zu jobs, B=1 %.2f MIPS -> B=8 %.2f MIPS (%.2fx), "
              "%u core(s), checksums identical across widths]\n",
              jobs.size(), mips_b1, mips_b8, mips_b1 > 0.0 ? mips_b8 / mips_b1 : 0.0, cores);
}

// ---- adaptive-clocking frontier record ---------------------------------------

/// Writes BENCH_dvfs.json: the throughput-vs-violation-rate frontier of the
/// closed-loop DVFS policies (docs/adaptive.md) against every static supply
/// point, per benchmark and scheme.  "Throughput" is committed instructions
/// per *nominal* cycle of wall time (equals IPC when the period never
/// moves), so static and adaptive points share one axis.  The headline
/// check: at the controller's violation budget, at least one adaptive
/// policy must beat every static supply point on at least one cell --
/// otherwise the subsystem earns its complexity nowhere and the bench
/// fails loudly.  VASIM_DVFSBENCH_INSTR / _WARMUP shrink the grid for CI.
void emit_dvfs_json() {
  if (env_u64("VASIM_JSON", 1) == 0) return;
  core::RunnerConfig rc;
  rc.instructions = env_u64("VASIM_DVFSBENCH_INSTR", 30'000);
  rc.warmup = env_u64("VASIM_DVFSBENCH_WARMUP", 10'000);

  struct Point {
    std::string benchmark, scheme, policy;
    double vdd = 0.0;
    double ipc = 0.0;
    double throughput = 0.0;      ///< instr per nominal cycle
    double violation_pct = 0.0;   ///< committed-faulty %, shared axis
    double avg_period_permille = 1000.0;
    u64 epochs = 0;
  };
  const double vdds[] = {1.10, 1.04, 0.97};
  const char* policies[] = {"static", "reactive", "predictive"};
  std::vector<Point> grid;
  const double budget_pct = core::RunnerConfig{}.dvfs.target_violation_pct;

  for (const auto& bname : {"bzip2", "sjeng"}) {
    const auto prof = workload::spec2006_profile(bname);
    for (const auto& sname : {"abs", "ep"}) {
      const auto scheme = core::scheme_by_name(sname);
      for (const char* pname : policies) {
        core::RunnerConfig prc = rc;
        prc.dvfs.policy = adapt::dvfs_policy_from_string(pname);
        const core::ExperimentRunner runner(prc);
        for (const double vdd : vdds) {
          const core::RunResult r = runner.run(prof, *scheme, vdd);
          Point p;
          p.benchmark = bname;
          p.scheme = sname;
          p.policy = pname;
          p.vdd = vdd;
          p.ipc = r.ipc;
          p.violation_pct = r.fault_rate_pct;
          if (r.dvfs) {
            p.throughput = r.dvfs->throughput;
            p.avg_period_permille = r.dvfs->avg_period_permille;
            p.epochs = r.dvfs->epochs;
          } else {
            p.throughput = r.ipc;  // period pinned at nominal
          }
          grid.push_back(std::move(p));
        }
      }
    }
  }

  // Per (benchmark, scheme) cell: the best in-budget throughput of each
  // policy; "dominated" when an adaptive policy beats every static point.
  struct Cell {
    std::string benchmark, scheme;
    double best[3] = {0.0, 0.0, 0.0};  ///< per policy, in-budget best
    std::string dominated_by;
  };
  std::vector<Cell> cells;
  bool any_dominated = false;
  for (const Point& p : grid) {
    Cell* cell = nullptr;
    for (Cell& c : cells) {
      if (c.benchmark == p.benchmark && c.scheme == p.scheme) cell = &c;
    }
    if (cell == nullptr) {
      cells.push_back({p.benchmark, p.scheme, {0.0, 0.0, 0.0}, ""});
      cell = &cells.back();
    }
    if (p.violation_pct > budget_pct) continue;  // over budget: off the frontier
    for (int i = 0; i < 3; ++i) {
      if (p.policy == policies[i]) cell->best[i] = std::max(cell->best[i], p.throughput);
    }
  }
  for (Cell& c : cells) {
    const int winner = c.best[2] >= c.best[1] ? 2 : 1;
    if (c.best[winner] > c.best[0]) {
      c.dominated_by = policies[winner];
      any_dominated = true;
    }
  }
  if (!any_dominated) {
    std::fprintf(stderr,
                 "BENCH_dvfs: no adaptive policy beat the static frontier on any cell\n");
    std::exit(1);
  }

  std::ofstream out("BENCH_dvfs.json");
  if (!out) return;
  char buf[512];
  out << "{\n"
      << "  \"bench\": \"dvfs\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"instr\": " << rc.instructions << ",\n"
      << "  \"warmup\": " << rc.warmup << ",\n";
  std::snprintf(buf, sizeof buf, "  \"violation_budget_pct\": %.3f,\n", budget_pct);
  out << buf << "  \"grid\": [";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"benchmark\": \"%s\", \"scheme\": \"%s\", \"policy\": \"%s\", "
                  "\"vdd\": %.2f, \"ipc\": %.4f, \"throughput\": %.4f, "
                  "\"violation_pct\": %.4f, \"avg_period_permille\": %.1f, \"epochs\": %llu}",
                  i == 0 ? "" : ",", p.benchmark.c_str(), p.scheme.c_str(), p.policy.c_str(),
                  p.vdd, p.ipc, p.throughput, p.violation_pct, p.avg_period_permille,
                  static_cast<unsigned long long>(p.epochs));
    out << buf;
  }
  out << "\n  ],\n  \"frontier\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"benchmark\": \"%s\", \"scheme\": \"%s\", "
                  "\"best_static\": %.4f, \"best_reactive\": %.4f, "
                  "\"best_predictive\": %.4f, \"dominated_by\": %s%s%s}",
                  i == 0 ? "" : ",", c.benchmark.c_str(), c.scheme.c_str(), c.best[0],
                  c.best[1], c.best[2], c.dominated_by.empty() ? "null" : "\"",
                  c.dominated_by.c_str(), c.dominated_by.empty() ? "" : "\"");
    out << buf;
  }
  out << "\n  ],\n  \"frontier_dominated\": true\n}\n";
  out.close();
  copy_to_results("BENCH_dvfs.json");
  std::size_t dominated = 0;
  for (const Cell& c : cells) dominated += c.dominated_by.empty() ? 0 : 1;
  std::printf("[BENCH_dvfs.json: %zu grid points, adaptive beats the static frontier on "
              "%zu/%zu cells at %.1f%% violation budget]\n",
              grid.size(), dominated, cells.size(), budget_pct);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_stats_overhead_json();
  emit_kernel_json();
  emit_sched_scaling_json();
  emit_timeline_json();
  emit_snapshot_json();
  emit_batch_json();
  emit_dvfs_json();
  return 0;
}
