# Empty compiler generated dependencies file for vasim_workload.
# This may be replaced when dependencies are built.
