// Tests for the pipeline observer hooks and the Kanata trace writer.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "src/cpu/observer.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::cpu {
namespace {

/// Counts lifecycle events and checks per-instruction ordering.
struct CountingObserver final : PipelineObserver {
  u64 fetches = 0, dispatches = 0, issues = 0, completes = 0, commits = 0, squashed = 0;
  std::vector<u8> state;  // per-seq lifecycle stage

  void bump(SeqNum seq, u8 expect, u8 next) {
    if (state.size() <= seq) state.resize(static_cast<std::size_t>(seq) + 1, 0);
    EXPECT_EQ(state[static_cast<std::size_t>(seq)], expect) << "seq " << seq;
    state[static_cast<std::size_t>(seq)] = next;
  }
  void on_fetch(SeqNum seq, const isa::DynInst&) override {
    ++fetches;
    if (state.size() <= seq) state.resize(static_cast<std::size_t>(seq) + 1, 0);
    state[static_cast<std::size_t>(seq)] = 1;  // refetch after squash resets
  }
  void on_dispatch(SeqNum seq) override {
    ++dispatches;
    bump(seq, 1, 2);
  }
  void on_issue(SeqNum seq, bool) override {
    ++issues;
    bump(seq, 2, 3);
  }
  void on_complete(SeqNum seq) override {
    ++completes;
    bump(seq, 3, 4);
  }
  void on_commit(SeqNum seq) override {
    ++commits;
    bump(seq, 4, 5);
  }
  void on_squash(SeqNum first, SeqNum last) override { squashed += last - first + 1; }
};

TEST(Observer, LifecycleOrderingFaultFree) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  CountingObserver obs;
  p.set_observer(&obs);
  const PipelineResult r = p.run(5000);
  EXPECT_EQ(r.committed, 5000u);
  EXPECT_EQ(obs.commits, 5000u);
  EXPECT_GE(obs.fetches, obs.dispatches);
  EXPECT_GE(obs.dispatches, obs.issues);
  EXPECT_GE(obs.issues, obs.completes);
  EXPECT_GE(obs.completes, obs.commits);
}

TEST(Observer, SquashEventsUnderReplay) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};
  const timing::FaultModel fm(pcfg, 0.97);
  SchemeConfig razor = scheme_razor();
  razor.recovery = RecoveryModel::kSquashRefetch;
  CoreConfig cfg;
  Pipeline p(cfg, razor, &g, &fm, nullptr);
  CountingObserver obs;
  p.set_observer(&obs);
  const PipelineResult r = p.run(5000);
  EXPECT_EQ(r.committed, 5000u);
  EXPECT_GT(obs.squashed, 0u);
  EXPECT_EQ(obs.squashed, r.stats.count("ev.squash"));
  EXPECT_EQ(obs.commits, 5000u);
}

TEST(Kanata, WellFormedTrace) {
  const isa::Program prog = isa::assemble(R"(
      addi r1, r0, 0
      addi r2, r0, 1
      addi r3, r0, 40
    loop:
      add  r1, r1, r2
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )");
  isa::FunctionalCore src(&prog);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  std::ostringstream trace;
  KanataTraceWriter writer(&trace, 1000);
  p.set_observer(&writer);
  p.run(1'000'000);

  const std::string t = trace.str();
  EXPECT_EQ(t.rfind("Kanata\t0004\n", 0), 0u) << "header first";
  EXPECT_NE(t.find("\nS\t0\t0\tF\n"), std::string::npos) << "fetch stage for seq 0";
  EXPECT_NE(t.find("\nS\t0\t0\tIs\n"), std::string::npos);
  EXPECT_NE(t.find("\nR\t0\t0\t0\n"), std::string::npos) << "seq 0 retires first";
  EXPECT_NE(t.find(": alu"), std::string::npos) << "disassembly labels";
  EXPECT_GT(writer.instructions_logged(), 100u);
  // Every logged instruction eventually retires (no flushes here).
  std::size_t retires = 0;
  for (std::size_t pos = t.find("\nR\t"); pos != std::string::npos;
       pos = t.find("\nR\t", pos + 1)) {
    ++retires;
  }
  EXPECT_EQ(retires, writer.instructions_logged());
}

TEST(Kanata, SquashEmitsFlushRetirementsAndRefetchRestartsRows) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};
  const timing::FaultModel fm(pcfg, 0.97);
  SchemeConfig razor = scheme_razor();
  razor.recovery = RecoveryModel::kSquashRefetch;
  CoreConfig cfg;
  Pipeline p(cfg, razor, &g, &fm, nullptr);
  std::ostringstream trace;
  KanataTraceWriter writer(&trace, 100'000);
  p.set_observer(&writer);
  const PipelineResult r = p.run(5000);
  ASSERT_GT(r.stats.count("ev.squash"), 0u) << "test needs at least one squash";

  // Split the log into lines and tally per-record-type counts.
  const std::string t = trace.str();
  u64 flushes = 0, retires = 0;
  std::map<std::string, int> fetches_of;  // I-line count per seq id
  std::istringstream lines(t);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("R\t", 0) == 0) {
      // R <id> <retire-id> <type>; type 1 = flushed by a squash.
      (line.size() >= 2 && line.compare(line.size() - 2, 2, "\t1") == 0) ? ++flushes : ++retires;
    } else if (line.rfind("I\t", 0) == 0) {
      ++fetches_of[line.substr(2, line.find('\t', 2) - 2)];
    }
  }
  EXPECT_EQ(flushes, r.stats.count("ev.squash"))
      << "every squashed instruction gets a type-1 retirement";
  EXPECT_EQ(retires, r.committed) << "every committed instruction gets a normal retirement";
  // The refetch after a squash re-assigns the same SeqNums, so at least one
  // id must have been fetched (I-line) more than once.
  int refetched = 0;
  for (const auto& [id, n] : fetches_of) refetched += n > 1 ? 1 : 0;
  EXPECT_GT(refetched, 0) << "squash-refetch re-fetches the flushed ids";
}

TEST(Kanata, MicroReplayHasNoFlushRecords) {
  // Razor's default recovery is the squashless micro-replay: faults replay
  // in place, so the Kanata log must contain normal retirements only.
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};
  const timing::FaultModel fm(pcfg, 0.97);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_razor(), &g, &fm, nullptr);
  std::ostringstream trace;
  KanataTraceWriter writer(&trace, 100'000);
  p.set_observer(&writer);
  const PipelineResult r = p.run(3000);
  ASSERT_GT(r.stats.count("fault.replays"), 0u) << "test needs at least one replay";
  EXPECT_EQ(trace.str().find("\t0\t1\n"), std::string::npos) << "no flushed retirements";
}

TEST(ObserverMux, FansEventsOutToEveryObserver) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  CountingObserver a, b;
  p.add_observer(&a);
  p.add_observer(&b);
  const PipelineResult r = p.run(2000);
  EXPECT_EQ(a.commits, r.committed);
  EXPECT_EQ(b.commits, r.committed);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.issues, b.issues);
}

TEST(ObserverMux, SetObserverReplacesInsteadOfAccumulating) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  CountingObserver old_obs, new_obs;
  p.set_observer(&old_obs);
  p.set_observer(&new_obs);
  const PipelineResult r = p.run(1000);
  EXPECT_EQ(old_obs.commits, 0u) << "replaced observer must see nothing";
  EXPECT_EQ(new_obs.commits, r.committed);
}

TEST(Kanata, CapsLogSize) {
  const auto prof = workload::spec2006_profile("bzip2");
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  std::ostringstream trace;
  KanataTraceWriter writer(&trace, 50);
  p.set_observer(&writer);
  p.run(5000);
  EXPECT_EQ(writer.instructions_logged(), 50u);
}

}  // namespace
}  // namespace vasim::cpu
