#include "src/workload/inputs.hpp"

namespace vasim::workload {

std::vector<u8> ComponentInputGen::vector_for(u64 salt, Pc pc, int idx, bool walking) const {
  std::vector<u8> bits(static_cast<std::size_t>(width_));
  const u64 pc_key = hash_combine(hash_combine(profile_.seed, salt), pc);
  // One byte-wide induction field per PC (when the profile uses counters):
  // the array-walk behaviour of S1.2.2, where successive effective addresses
  // "often differ by a single bit".  The field advances by a stride of 8, so
  // across instances only the middle bits of the field crawl.
  const bool has_counter = walking && profile_.counter_frac > 0 &&
                           hash_to_unit(hash_combine(pc_key, 0xc0deULL)) < profile_.counter_frac;
  int counter_lo = -1;
  if (has_counter && width_ >= 8) {
    counter_lo = static_cast<int>(hash_combine(pc_key, 0xf1e1dULL) % static_cast<u64>(width_ - 7));
  }
  const u64 counter_base = hash_combine(pc_key, 0xba5eULL) & 0xFFu;
  const u64 counter_val = counter_base + (static_cast<u64>(idx) << 3);

  // Instance deviations are rare single-bit events; their rate is what the
  // per-benchmark locality controls (vortex: almost none).
  const double flip_p = (1.0 - profile_.locality) * 0.015;
  for (int j = 0; j < width_; ++j) {
    const u64 bit_key = hash_combine(pc_key, static_cast<u64>(j));
    u8 v = static_cast<u8>(hash_mix(bit_key) & 1u);  // stable base pattern
    if (counter_lo >= 0 && j >= counter_lo && j < counter_lo + 8) {
      v = static_cast<u8>((counter_val >> (j - counter_lo)) & 1u);
    } else if (idx > 0 &&
               hash_to_unit(hash_combine(bit_key, static_cast<u64>(idx))) < flip_p) {
      v ^= 1u;  // instance-specific deviation from the base pattern
    }
    bits[static_cast<std::size_t>(j)] = v;
  }
  return bits;
}

std::pair<std::vector<u8>, std::vector<u8>> ComponentInputGen::instance(Pc pc, int idx) const {
  // Fixed-input PCs repeat the exact same transition on every instance.
  const u64 pc_key = hash_combine(hash_combine(profile_.seed, 0xf17edULL), pc);
  if (hash_to_unit(pc_key) < profile_.fixed_frac) idx = 0;
  // The preceding instruction's inputs are a per-PC context pattern (S1.2:
  // "we also identify the preceding instruction PC that sets the internal
  // logic state"); it deviates like the instruction's own inputs but does
  // not carry the induction walk.
  return {vector_for(0x9cedULL, pc, idx, /*walking=*/false),
          vector_for(0xc022ULL, pc, idx, /*walking=*/true)};
}

std::vector<std::pair<std::vector<u8>, std::vector<u8>>> ComponentInputGen::instances(
    Pc pc, int count) const {
  std::vector<std::pair<std::vector<u8>, std::vector<u8>>> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) v.push_back(instance(pc, i));
  return v;
}

}  // namespace vasim::workload
