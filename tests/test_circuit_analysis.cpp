// Unit tests for gate-level analyses: toggle tracking / commonality, STA,
// power roll-up, and the scheduler blocks behind Table 2.
#include <gtest/gtest.h>

#include "src/circuit/gatesim.hpp"
#include "src/circuit/power.hpp"
#include "src/circuit/scheduler_blocks.hpp"
#include "src/circuit/sta.hpp"
#include "src/common/rng.hpp"

namespace vasim::circuit {
namespace {

TEST(GateSim, ToggleTracking) {
  Netlist n;
  const SigId a = n.add_input();
  const SigId b = n.add_input();
  const SigId x = n.xor2(a, b);
  const SigId y = n.and2(a, b);
  GateSim sim(&n);
  sim.evaluate(std::vector<u8>{0, 0});
  sim.evaluate(std::vector<u8>{1, 0});
  EXPECT_TRUE(sim.toggled()[static_cast<std::size_t>(x)]);   // 0 -> 1
  EXPECT_FALSE(sim.toggled()[static_cast<std::size_t>(y)]);  // 0 -> 0
  sim.evaluate(std::vector<u8>{1, 1});
  EXPECT_TRUE(sim.toggled()[static_cast<std::size_t>(x)]);
  EXPECT_TRUE(sim.toggled()[static_cast<std::size_t>(y)]);
}

TEST(GateSim, InputWidthChecked) {
  Netlist n;
  n.add_input();
  GateSim sim(&n);
  EXPECT_THROW(sim.evaluate(std::vector<u8>{1, 0}), std::invalid_argument);
}

TEST(Commonality, IdenticalInstancesGiveFullRatio) {
  const Component alu = build_simple_alu(8);
  std::vector<u8> pre(static_cast<std::size_t>(input_width(alu)), 0);
  std::vector<u8> cur(pre);
  cur[0] = 1;
  cur[3] = 1;
  std::vector<std::pair<std::vector<u8>, std::vector<u8>>> inst(10, {pre, cur});
  const CommonalityResult r = measure_commonality(alu, inst);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
  EXPECT_EQ(r.phi, r.psi);
  EXPECT_GT(r.psi, 0);
}

TEST(Commonality, RandomInstancesGiveLowerRatio) {
  const Component alu = build_simple_alu(8);
  Pcg32 rng(3);
  std::vector<std::pair<std::vector<u8>, std::vector<u8>>> inst;
  for (int i = 0; i < 20; ++i) {
    std::vector<u8> pre(static_cast<std::size_t>(input_width(alu)));
    std::vector<u8> cur(pre.size());
    for (auto& v : pre) v = rng.next_bool(0.5);
    for (auto& v : cur) v = rng.next_bool(0.5);
    inst.push_back({std::move(pre), std::move(cur)});
  }
  const CommonalityResult r = measure_commonality(alu, inst);
  EXPECT_LT(r.ratio, 0.6);
  EXPECT_GT(r.psi, r.phi);
}

TEST(Commonality, EmptyInstancesDefined) {
  const Component sel = build_issue_select(8, 1);
  const CommonalityResult r = measure_commonality(sel, {});
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(Sta, DepthAndDelayPositiveAndConsistent) {
  const Component alu = build_simple_alu(32);
  const StaResult r = analyze_nominal(alu.netlist);
  EXPECT_GT(r.logic_depth, 10);
  EXPECT_GT(r.critical_delay_ps, 100.0);
  // Larger ALU is deeper than a small one.
  const StaResult small = analyze_nominal(build_simple_alu(8).netlist);
  EXPECT_GT(r.logic_depth, small.logic_depth);
  EXPECT_GT(r.critical_delay_ps, small.critical_delay_ps);
}

TEST(Sta, ForwardCheckIsShallow) {
  // Table 3: Forward Check has by far the smallest logic depth (15 vs 33-46).
  const int fwd = analyze_nominal(build_forward_check(4, 4, 7).netlist).logic_depth;
  const int alu = analyze_nominal(build_simple_alu(32).netlist).logic_depth;
  const int agen = analyze_nominal(build_agen(32, 16).netlist).logic_depth;
  EXPECT_LT(fwd, alu);
  EXPECT_LT(fwd, agen);
}

TEST(Sta, StatisticalSpreadAndMu2Sigma) {
  const Component agen = build_agen(16, 8);
  const timing::ProcessVariation pv;
  const StatisticalStaResult r = analyze_statistical(agen.netlist, pv, 64);
  EXPECT_EQ(r.dies, 64);
  EXPECT_GT(r.sigma_ps, 0.0);
  EXPECT_GT(r.mu_plus_2sigma_ps, r.mu_ps);
  EXPECT_LE(r.min_ps, r.mu_ps);
  EXPECT_GE(r.max_ps, r.mu_ps);
  // The nominal delay should sit near the Monte-Carlo mean.
  const StaResult nom = analyze_nominal(agen.netlist);
  EXPECT_NEAR(nom.critical_delay_ps, r.mu_ps, 0.25 * nom.critical_delay_ps);
}

TEST(Sta, SpatialCorrelationWidensCriticalDelaySpread) {
  // VARIUS's key effect: correlated per-gate delays do not average out along
  // a path, so die-to-die critical delay varies more than with independent
  // variation of the same total sigma.
  const Component alu = build_simple_alu(16);
  timing::SpatialConfig corr;
  corr.systematic_fraction = 0.9;
  corr.grid = 2;  // coarse field = strong die-level correlation
  timing::SpatialConfig uncorr;
  uncorr.systematic_fraction = 0.0;
  const StatisticalStaResult wide =
      analyze_statistical(alu.netlist, timing::SpatialVariation(corr), 96);
  const StatisticalStaResult tight =
      analyze_statistical(alu.netlist, timing::SpatialVariation(uncorr), 96);
  EXPECT_GT(wide.sigma_ps, tight.sigma_ps * 1.5);
  EXPECT_NEAR(wide.mu_ps, tight.mu_ps, 0.1 * tight.mu_ps);
}

TEST(Power, RollUpMonotonicInSize) {
  const PowerReport small = roll_up(build_simple_alu(8));
  const PowerReport big = roll_up(build_simple_alu(32));
  EXPECT_GT(big.area_um2, small.area_um2);
  EXPECT_GT(big.dynamic_power_uw, small.dynamic_power_uw);
  EXPECT_GT(big.leakage_power_uw, small.leakage_power_uw);
  EXPECT_GT(big.gate_count, small.gate_count);
}

TEST(Power, FlopsContribute) {
  Component c;
  c.name = "flops";
  (void)c.netlist.const0();
  c.flop_count = 100;
  const PowerReport r = roll_up(c);
  EXPECT_GT(r.area_um2, 0.0);
  EXPECT_GT(r.leakage_power_uw, 0.0);
  EXPECT_EQ(r.flop_count, 100);
}

TEST(Power, OverheadMath) {
  PowerReport base;
  base.area_um2 = 100;
  base.dynamic_power_uw = 50;
  base.leakage_power_uw = 10;
  PowerReport enh = base;
  enh.area_um2 = 106.35;
  const OverheadReport o = overhead(base, enh);
  EXPECT_NEAR(o.area, 0.0635, 1e-9);
  EXPECT_NEAR(o.dynamic_power, 0.0, 1e-9);
}

// ---- scheduler blocks (Table 2) -----------------------------------------

TEST(WakeupCam, MatchSemantics) {
  SchedulerShape shape;
  shape.entries = 4;
  shape.tag_bits = 5;
  shape.broadcast_ports = 2;
  const Component cam = build_wakeup_cam(shape);
  GateSim sim(&cam.netlist);
  // Broadcast tag 9 on port 0 (valid) and 17 on port 1 (invalid).
  std::vector<u8> in;
  GateSim::pack_bits(9, 5, in);
  GateSim::pack_bits(17, 5, in);
  in.push_back(1);  // port0 valid
  in.push_back(0);  // port1 invalid
  // Entry operand tags: e0s0=9 (waiting), e0s1=17 (waiting), e1s0=9 (not
  // waiting), others zero.
  const u64 op_tags[8] = {9, 17, 9, 0, 0, 0, 0, 0};
  for (const u64 t : op_tags) GateSim::pack_bits(t, 5, in);
  const u8 waiting[8] = {1, 1, 0, 0, 0, 0, 0, 0};
  for (const u8 w : waiting) in.push_back(w);
  sim.evaluate(in);
  EXPECT_TRUE(sim.value(cam.outputs[0]));   // e0s0 matches port0
  EXPECT_FALSE(sim.value(cam.outputs[1]));  // e0s1 matches only invalid port
  EXPECT_FALSE(sim.value(cam.outputs[2]));  // not waiting
  EXPECT_GT(cam.flop_count, 0);
}

TEST(AgeSelect, PicksOldestRequesters) {
  SchedulerShape shape;
  shape.entries = 8;
  shape.grants = 2;
  shape.timestamp_bits = 4;
  const Component sel = build_age_select(shape);
  GateSim sim(&sel.netlist);
  std::vector<u8> in;
  const u8 req[8] = {1, 0, 1, 1, 0, 0, 1, 0};
  for (const u8 r : req) in.push_back(r);
  const u64 ts[8] = {9, 1, 3, 7, 0, 2, 5, 4};
  for (const u64 t : ts) GateSim::pack_bits(t, 4, in);
  sim.evaluate(in);
  // Requesters: {0:9, 2:3, 3:7, 6:5}; two oldest = entries 2 (ts 3) and 6 (ts 5).
  EXPECT_TRUE(sim.value(sel.outputs[2]));
  EXPECT_TRUE(sim.value(sel.outputs[6]));
  EXPECT_FALSE(sim.value(sel.outputs[0]));
  EXPECT_FALSE(sim.value(sel.outputs[3]));
}

TEST(Countdown, DecrementAndFire) {
  SchedulerShape shape;
  shape.broadcast_ports = 1;
  shape.countdown_bits = 3;
  const Component cd = build_countdown(shape);
  GateSim sim(&cd.netlist);
  // count = 5, active: next = 4, no fire.
  std::vector<u8> in;
  GateSim::pack_bits(5, 3, in);
  in.push_back(1);
  sim.evaluate(in);
  const Bus next(cd.outputs.begin(), cd.outputs.begin() + 3);
  EXPECT_EQ(sim.read_bus(next), 4u);
  EXPECT_FALSE(sim.value(cd.outputs[3]));
  // count = 0, active: fire.
  in.clear();
  GateSim::pack_bits(0, 3, in);
  in.push_back(1);
  sim.evaluate(in);
  EXPECT_TRUE(sim.value(cd.outputs[3]));
}

TEST(VteAddon, FusrGoesBusyBehindFaultyInstruction) {
  SchedulerShape shape;
  shape.grants = 2;
  shape.num_fus = 4;
  shape.broadcast_ports = 2;
  shape.countdown_bits = 3;
  const Component vte = build_vte_addon(shape);
  GateSim sim(&vte.netlist);
  std::vector<u8> in;
  // slot0 faulty, slot1 clean.
  in.push_back(1);
  in.push_back(0);
  // slot0 -> FU2 (one-hot), slot1 -> FU0.
  const u8 fu0[4] = {0, 0, 1, 0};
  const u8 fu1[4] = {1, 0, 0, 0};
  for (const u8 v : fu0) in.push_back(v);
  for (const u8 v : fu1) in.push_back(v);
  // FUSR: all ready.
  for (int f = 0; f < 4; ++f) in.push_back(1);
  // countdown counts: 3 and 5.
  GateSim::pack_bits(3, 3, in);
  GateSim::pack_bits(5, 3, in);
  sim.evaluate(in);
  // next FUSR: FU2 busy (bit -> 0) because slot0 is faulty; others stay 1.
  EXPECT_TRUE(sim.value(vte.outputs[0]));
  EXPECT_TRUE(sim.value(vte.outputs[1]));
  EXPECT_FALSE(sim.value(vte.outputs[2]));
  EXPECT_TRUE(sim.value(vte.outputs[3]));
  // Slot freeze flags mirror sel_fault.
  EXPECT_TRUE(sim.value(vte.outputs[4]));
  EXPECT_FALSE(sim.value(vte.outputs[5]));
  // Countdown port0 adjusted +1 (faulty slot0): 3 -> 4; port1 unchanged: 5.
  const Bus adj0(vte.outputs.begin() + 6, vte.outputs.begin() + 9);
  const Bus adj1(vte.outputs.begin() + 9, vte.outputs.begin() + 12);
  EXPECT_EQ(sim.read_bus(adj0), 4u);
  EXPECT_EQ(sim.read_bus(adj1), 5u);
}

TEST(Cdl, PopcountAgainstThreshold) {
  SchedulerShape shape;
  shape.entries = 16;
  shape.criticality_threshold_bits = 4;
  const Component cdl = build_cdl(shape);
  GateSim sim(&cdl.netlist);
  for (const int matches : {0, 3, 7, 8, 9, 16}) {
    std::vector<u8> in;
    for (int e = 0; e < 16; ++e) in.push_back(e < matches ? 1 : 0);
    GateSim::pack_bits(8, 4, in);  // CT = 8 (the paper's best value)
    sim.evaluate(in);
    const Bus count(cdl.outputs.begin(), cdl.outputs.end() - 1);
    EXPECT_EQ(sim.read_bus(count), static_cast<u64>(matches));
    EXPECT_EQ(sim.value(cdl.outputs.back()), matches >= 8) << matches;
  }
}

TEST(SchedulerAssembly, VariantsNest) {
  const SchedulerShape shape;
  const auto base = build_scheduler(SchedulerVariant::kBaseline, shape);
  const auto absffs = build_scheduler(SchedulerVariant::kAbsFfs, shape);
  const auto cds = build_scheduler(SchedulerVariant::kCds, shape);
  EXPECT_EQ(base.blocks.size(), 4u);
  EXPECT_EQ(absffs.blocks.size(), 5u);
  EXPECT_EQ(cds.blocks.size(), 6u);
  const PowerReport pb = roll_up(std::span<const Component>(base.blocks));
  const PowerReport pa = roll_up(std::span<const Component>(absffs.blocks));
  const PowerReport pc = roll_up(std::span<const Component>(cds.blocks));
  EXPECT_GT(pa.area_um2, pb.area_um2);
  EXPECT_GT(pc.area_um2, pa.area_um2);
  // Table 2 shape: ABS/FFS overhead is small (< 5%), CDS larger but < 15%.
  const OverheadReport oa = overhead(pb, pa);
  const OverheadReport oc = overhead(pb, pc);
  EXPECT_LT(oa.area, 0.05);
  EXPECT_GT(oc.area, oa.area);
  EXPECT_LT(oc.area, 0.15);
}

}  // namespace
}  // namespace vasim::circuit
