// Statistical process-variation model (Section 4.3 of the paper).
//
// The paper models transistor length, width and oxide thickness as Gaussian
// distributions with +/-20% deviation around nominal and maps them to gate
// delays with SPICE-characterized sensitivities.  We reproduce the same
// mathematical form with a first-order sensitivity model: a gate's delay
// perturbation is a weighted sum of its parameter deviations, so gate delay
// itself is Gaussian with a derived sigma.
#ifndef VASIM_TIMING_PROCESS_VARIATION_HPP
#define VASIM_TIMING_PROCESS_VARIATION_HPP

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace vasim::timing {

/// Gaussian device-parameter deviations, expressed as fractions of nominal.
struct DeviceParams {
  double dlength = 0.0;     ///< (L - L0) / L0
  double dwidth = 0.0;      ///< (W - W0) / W0
  double dtox = 0.0;        ///< (tox - tox0) / tox0
};

/// Configuration mirroring the paper: +/-20% treated as the 3-sigma point of
/// each parameter's Gaussian.
struct ProcessConfig {
  double three_sigma_fraction = 0.20;  ///< +/-20% at 3 sigma
  /// First-order delay sensitivities (d delay / d param, per unit fractional
  /// deviation).  Longer channel and thicker oxide slow the gate; wider
  /// device speeds it up.  Values are typical 45 nm magnitudes.
  double sens_length = 0.9;
  double sens_width = -0.35;
  double sens_tox = 0.45;
  u64 seed = 0x5eedULL;
};

/// Per-die, per-gate process variation sampler.  Deterministic: parameters
/// for gate `gate_id` on die `die_id` are hash-derived, so repeated queries
/// agree and different modules can sample independently.
class ProcessVariation {
 public:
  explicit ProcessVariation(const ProcessConfig& cfg = {}) : cfg_(cfg) {}

  /// Device parameters of a specific gate instance.
  [[nodiscard]] DeviceParams sample_params(u64 die_id, u64 gate_id) const;

  /// Multiplicative delay factor for a gate: 1 + sum(sensitivity * dparam).
  /// Always positive (clamped at 0.5x nominal).
  [[nodiscard]] double delay_factor(u64 die_id, u64 gate_id) const;

  /// Standard deviation of the delay factor implied by the configuration
  /// (useful for analytic path-delay roll-ups).
  [[nodiscard]] double delay_factor_sigma() const;

  [[nodiscard]] const ProcessConfig& config() const { return cfg_; }

 private:
  ProcessConfig cfg_;
};

/// VARIUS-style spatially correlated variation (Sarangi et al. [1], the
/// paper's cited model): total delay variance splits into a *systematic*
/// component -- a smooth per-die field sampled on a coarse grid and
/// bilinearly interpolated, so nearby gates vary together -- and an
/// independent *random* component.  Gates are pseudo-placed row-major by id
/// (builders emit structurally adjacent gates with adjacent ids, so id
/// locality approximates layout locality).
struct SpatialConfig {
  int grid = 8;                      ///< systematic-field grid resolution
  double systematic_fraction = 0.5;  ///< share of delay variance that is systematic
  ProcessConfig base;                ///< random-component configuration
};

class SpatialVariation {
 public:
  explicit SpatialVariation(const SpatialConfig& cfg = {});

  /// Delay factor of `gate_id` on `die`, given the component's total gate
  /// count (for placement normalization).  Mean 1, same total sigma as the
  /// base ProcessConfig implies, but spatially correlated.
  [[nodiscard]] double delay_factor(u64 die, u64 gate_id, u64 total_gates) const;

  /// The systematic field alone at normalized position (x, y) in [0,1).
  [[nodiscard]] double systematic(u64 die, double x, double y) const;

  [[nodiscard]] const SpatialConfig& config() const { return cfg_; }

 private:
  SpatialConfig cfg_;
  ProcessVariation random_;
  double sigma_total_;
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_PROCESS_VARIATION_HPP
