// Unit tests for the workload substrate: profiles, trace generation,
// gate-level input generation, and SimPoint phase selection.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "src/cpu/pipeline.hpp"

#include "src/isa/program.hpp"
#include "src/workload/inputs.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/simpoint.hpp"
#include "src/workload/trace_file.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::workload {
namespace {

TEST(Profiles, TwelveSpec2006Benchmarks) {
  const auto v = spec2006_profiles();
  ASSERT_EQ(v.size(), 12u);
  std::set<std::string> names;
  std::set<u64> seeds;
  for (const auto& p : v) {
    names.insert(p.name);
    seeds.insert(p.seed);
    EXPECT_GT(p.fr_high_pct, p.fr_low_pct) << p.name;
    EXPECT_GT(p.paper_ipc, 0.0);
    EXPECT_LE(p.f_load + p.f_store + p.f_branch + p.f_mul + p.f_div, 1.0) << p.name;
  }
  EXPECT_EQ(names.size(), 12u) << "names must be unique";
  EXPECT_EQ(seeds.size(), 12u) << "seeds must be unique";
  EXPECT_EQ(spec2006_profile("mcf").name, "mcf");
  EXPECT_THROW(spec2006_profile("nonesuch"), std::out_of_range);
}

TEST(Profiles, IpcOrderingMatchesTable1) {
  // Table 1 extremes: mcf lowest, povray/sjeng highest.
  const auto v = spec2006_profiles();
  double mcf = 0, povray = 0, min_ipc = 99, max_ipc = 0;
  for (const auto& p : v) {
    if (p.name == "mcf") mcf = p.paper_ipc;
    if (p.name == "povray") povray = p.paper_ipc;
    min_ipc = std::min(min_ipc, p.paper_ipc);
    max_ipc = std::max(max_ipc, p.paper_ipc);
  }
  EXPECT_EQ(mcf, min_ipc);
  EXPECT_EQ(povray, max_ipc);
}

TEST(TraceGenerator, DeterministicStreams) {
  const auto prof = spec2006_profile("gcc");
  TraceGenerator a(prof), b(prof);
  isa::DynInst da, db;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.next(da));
    ASSERT_TRUE(b.next(db));
    EXPECT_EQ(da.pc, db.pc);
    EXPECT_EQ(da.mem_addr, db.mem_addr);
    EXPECT_EQ(da.taken, db.taken);
    EXPECT_EQ(da.src1, db.src1);
  }
}

class TraceMix : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceMix, DynamicMixTracksProfile) {
  const auto prof = spec2006_profile(GetParam());
  TraceGenerator g(prof);
  isa::DynInst d;
  const int n = 120000;
  std::map<isa::OpClass, int> mix;
  for (int i = 0; i < n; ++i) {
    g.next(d);
    ++mix[d.op];
  }
  EXPECT_NEAR(mix[isa::OpClass::kLoad] / double(n), prof.f_load, 0.08);
  EXPECT_NEAR(mix[isa::OpClass::kStore] / double(n), prof.f_store, 0.07);
  EXPECT_NEAR(mix[isa::OpClass::kBranch] / double(n), prof.f_branch, 0.06);
}

TEST_P(TraceMix, FullStaticCoverage) {
  const auto prof = spec2006_profile(GetParam());
  TraceGenerator g(prof);
  isa::DynInst d;
  std::set<Pc> pcs;
  for (int i = 0; i < 200000; ++i) {
    g.next(d);
    pcs.insert(d.pc);
  }
  // The forward-sweeping walk must keep a broad static footprint live (the
  // deterministic taken-paths skip some fall-through blocks; a collapse into
  // a tiny attractor cycle is the failure mode guarded against here).
  EXPECT_GT(pcs.size(), g.static_footprint() / 4) << "walk collapsed into a small cycle";
  EXPECT_GT(pcs.size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TraceMix,
                         ::testing::Values("astar", "libquantum", "mcf", "sjeng", "gcc"));

TEST(TraceGenerator, BranchNextPcConsistent) {
  const auto prof = spec2006_profile("gobmk");
  TraceGenerator g(prof);
  isa::DynInst prev{};
  bool have_prev = false;
  for (int i = 0; i < 30000; ++i) {
    isa::DynInst d;
    g.next(d);
    if (have_prev) {
      EXPECT_EQ(d.pc, prev.next_pc) << "stream must follow its own next_pc chain";
    }
    prev = d;
    have_prev = true;
  }
}

TEST(TraceGenerator, BranchesAlwaysHaveTargets) {
  const auto prof = spec2006_profile("perlbench");
  TraceGenerator g(prof);
  isa::DynInst d;
  int taken = 0, total = 0;
  for (int i = 0; i < 50000; ++i) {
    g.next(d);
    if (d.op != isa::OpClass::kBranch) continue;
    ++total;
    taken += d.taken;
  }
  EXPECT_GT(total, 1000);
  EXPECT_GT(taken, 0);
  EXPECT_LT(taken, total);
}

TEST(TraceGenerator, AddressesPartitionIntoRegions) {
  auto prof = spec2006_profile("mcf");
  TraceGenerator g(prof);
  isa::DynInst d;
  u64 hot = 0, warm = 0, cold = 0, mem = 0;
  for (int i = 0; i < 150000; ++i) {
    g.next(d);
    if (!isa::is_mem(d.op)) continue;
    ++mem;
    if (d.mem_addr >= 0x4000'0000ULL) {
      ++cold;
    } else if (d.mem_addr >= 0x0800'0000ULL) {
      ++warm;
    } else {
      ++hot;
    }
    EXPECT_EQ(d.mem_addr & 7u, 0u) << "8-byte aligned accesses";
  }
  EXPECT_NEAR(cold / double(mem), prof.cold_frac, 0.01);
  EXPECT_NEAR(warm / double(mem), prof.warm_frac, 0.02);
  EXPECT_GT(hot, mem / 2);
}

TEST(TraceGenerator, DestsAvoidSlackRegisters) {
  const auto prof = spec2006_profile("sjeng");
  TraceGenerator g(prof);
  isa::DynInst d;
  for (int i = 0; i < 20000; ++i) {
    g.next(d);
    if (d.dst != kNoReg) {
      EXPECT_LT(d.dst, 29) << "r29-r31 are read-only slack registers";
      EXPECT_GE(d.dst, 1);
    }
  }
}

TEST(Spec2000Profiles, SixBenchmarksVortexMostLocal) {
  const auto v = spec2000_profiles();
  ASSERT_EQ(v.size(), 6u);
  double vortex = 0, max_loc = 0;
  for (const auto& p : v) {
    if (p.name == "vortex") vortex = p.locality;
    max_loc = std::max(max_loc, p.locality);
  }
  EXPECT_EQ(vortex, max_loc);
}

TEST(ComponentInputGen, DeterministicAndWidthStable) {
  const auto prof = spec2000_profiles()[0];
  ComponentInputGen gen(prof, 35);
  const auto a = gen.instance(0x1000, 3);
  const auto b = gen.instance(0x1000, 3);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first.size(), 35u);
  EXPECT_EQ(a.second.size(), 35u);
}

TEST(ComponentInputGen, HighLocalityMeansFewFlips) {
  Spec2000Profile hi{"hi", 0.98, 0.0, 0.0, 1};
  Spec2000Profile lo{"lo", 0.50, 0.0, 0.0, 1};
  ComponentInputGen ghi(hi, 64), glo(lo, 64);
  auto count_flips = [](const ComponentInputGen& g) {
    const auto base = g.instance(0x40, 0).second;
    int flips = 0;
    for (int i = 1; i < 20; ++i) {
      const auto inst = g.instance(0x40, i).second;
      for (std::size_t j = 0; j < inst.size(); ++j) flips += inst[j] != base[j];
    }
    return flips;
  };
  EXPECT_LT(count_flips(ghi), count_flips(glo));
}

TEST(ComponentInputGen, InstancesBatchMatchesSingles) {
  const auto prof = spec2000_profiles()[2];
  ComponentInputGen gen(prof, 16);
  const auto batch = gen.instances(0x2000, 5);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[static_cast<std::size_t>(i)], gen.instance(0x2000, i));
  }
}

TEST(TraceFile, RoundTripPreservesEverything) {
  const auto prof = spec2006_profile("gcc");
  TraceGenerator gen(prof);
  const std::vector<isa::DynInst> original = record_trace(gen, 500);
  std::stringstream buf;
  write_trace(buf, original);
  TraceFileSource replay(buf);
  ASSERT_EQ(replay.size(), 500u);
  isa::DynInst d;
  for (const isa::DynInst& expect : original) {
    ASSERT_TRUE(replay.next(d));
    EXPECT_EQ(d.pc, expect.pc);
    EXPECT_EQ(d.op, expect.op);
    EXPECT_EQ(d.src1, expect.src1);
    EXPECT_EQ(d.src2, expect.src2);
    EXPECT_EQ(d.dst, expect.dst);
    EXPECT_EQ(d.mem_addr, expect.mem_addr);
    EXPECT_EQ(d.taken, expect.taken);
    EXPECT_EQ(d.next_pc, expect.next_pc);
  }
  EXPECT_FALSE(replay.next(d)) << "non-looping source must drain";
}

TEST(TraceFile, LoopRestartsAtEnd) {
  std::stringstream buf;
  buf << "vasim-trace 2 be\n";
  buf << "1000 alu 1 -1 2 0 0 1004\n";
  TraceFileSource replay(buf, /*loop=*/true);
  isa::DynInst d;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(replay.next(d));
    EXPECT_EQ(d.pc, 0x1000u);
  }
}

TEST(TraceFile, RejectsMalformedInput) {
  {
    std::stringstream buf("not-a-trace\n");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError);
  }
  {
    std::stringstream buf("vasim-trace 2 be\n1000 alu 1\n");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError);
  }
  {
    std::stringstream buf("vasim-trace 2 be\n1000 teleport 1 -1 2 0 0 1004\n");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError);
  }
  {
    std::stringstream buf("vasim-trace 2 be\n1000 alu 99 -1 2 0 0 1004\n");
    try {
      TraceFileSource src(buf);
      FAIL();
    } catch (const TraceFormatError& e) {
      EXPECT_EQ(e.line(), 2u);
    }
  }
}

TEST(TraceFile, RejectsHeaderMismatches) {
  // A v1 file round-trips to a rejection naming both versions, never a
  // silent misparse.
  {
    std::stringstream buf("vasim-trace 1\n1000 alu 1 -1 2 0 0 1004\n");
    try {
      TraceFileSource src(buf);
      FAIL() << "v1 header must be rejected";
    } catch (const TraceFormatError& e) {
      EXPECT_EQ(e.line(), 1u);
      EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos) << e.what();
    }
  }
  {
    std::stringstream buf("vasim-trace 3 be\n");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError) << "future version must be rejected";
  }
  {
    std::stringstream buf("vasim-trace 2 le\n");
    try {
      TraceFileSource src(buf);
      FAIL() << "wrong byte order must be rejected";
    } catch (const TraceFormatError& e) {
      EXPECT_NE(std::string(e.what()).find("byte order"), std::string::npos) << e.what();
    }
  }
  {
    std::stringstream buf("gem5-trace 2 be\n");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError) << "wrong magic must be rejected";
  }
  {
    std::stringstream buf("");
    EXPECT_THROW(TraceFileSource{buf}, TraceFormatError) << "empty input must be rejected";
  }
  // The writer's own header is what the reader accepts (round trip).
  {
    std::stringstream buf;
    write_trace(buf, {});
    EXPECT_EQ(buf.str(), "vasim-trace 2 be\n");
    TraceFileSource src(buf);
    EXPECT_EQ(src.size(), 0u);
  }
}

TEST(TraceFile, ReplayDrivesPipelineIdentically) {
  const auto prof = spec2006_profile("tonto");
  TraceGenerator gen(prof);
  const std::vector<isa::DynInst> trace = record_trace(gen, 20000);
  std::stringstream buf;
  write_trace(buf, trace);
  TraceFileSource replay(buf);

  struct VectorSource final : isa::InstructionSource {
    const std::vector<isa::DynInst>* v;
    std::size_t pos = 0;
    explicit VectorSource(const std::vector<isa::DynInst>* t) : v(t) {}
    bool next(isa::DynInst& out) override {
      if (pos >= v->size()) return false;
      out = (*v)[pos++];
      return true;
    }
    std::string name() const override { return "vector"; }
  } direct(&trace);

  cpu::CoreConfig cfg;
  cpu::Pipeline pa(cfg, cpu::scheme_fault_free(), &direct, nullptr, nullptr);
  cpu::Pipeline pb(cfg, cpu::scheme_fault_free(), &replay, nullptr, nullptr);
  const cpu::PipelineResult ra = pa.run(15000);
  const cpu::PipelineResult rb = pb.run(15000);
  EXPECT_EQ(ra.cycles, rb.cycles) << "replayed trace must time identically";
}

TEST(SimPoint, FindsPhasesInPhasedStream) {
  // Synthetic two-phase source: alternating PC neighborhoods.
  struct Phased : isa::InstructionSource {
    u64 n = 0;
    bool next(isa::DynInst& d) override {
      d = {};
      const bool phase_b = (n / 5000) % 2 == 1;
      d.pc = (phase_b ? 0x8000 : 0x1000) + (n % 64) * 4;
      d.op = isa::OpClass::kIntAlu;
      d.next_pc = d.pc + 4;
      ++n;
      return true;
    }
    std::string name() const override { return "phased"; }
  } src;

  SimPointConfig cfg;
  cfg.interval_len = 1000;
  cfg.num_intervals = 40;
  cfg.clusters = 2;
  const SimPointResult r = select_phases(src, cfg);
  EXPECT_EQ(r.intervals_analyzed, 40);
  ASSERT_EQ(r.phases.size(), 2u);
  double weight = 0;
  for (const auto& p : r.phases) weight += p.weight;
  EXPECT_NEAR(weight, 1.0, 1e-9);
  // The two phases alternate in blocks of 5 intervals; assignments should
  // split evenly.
  int c0 = 0;
  for (const int a : r.assignment) c0 += a == r.assignment[0];
  EXPECT_NEAR(c0, 20, 3);
}

TEST(SimPoint, HandlesShortStreams) {
  struct Tiny : isa::InstructionSource {
    u64 n = 0;
    bool next(isa::DynInst& d) override {
      d = {};
      d.pc = 0x1000;
      ++n;
      return n < 1500;
    }
    std::string name() const override { return "tiny"; }
  } src;
  SimPointConfig cfg;
  cfg.interval_len = 1000;
  cfg.num_intervals = 10;
  cfg.clusters = 4;
  const SimPointResult r = select_phases(src, cfg);
  EXPECT_EQ(r.intervals_analyzed, 2);
  EXPECT_LE(r.phases.size(), 2u);
}

}  // namespace
}  // namespace vasim::workload
