// Dynamic instruction record and the stream interface the pipeline consumes.
//
// The timing model is trace-driven: both the functional executor (real
// programs in the mini ISA) and the statistical SPEC-like generators produce
// DynInst streams through the same InstructionSource interface.
#ifndef VASIM_ISA_DYNINST_HPP
#define VASIM_ISA_DYNINST_HPP

#include <string>

#include "src/common/types.hpp"

namespace vasim::isa {

/// Broad operation classes; the pipeline schedules by class.
enum class OpClass : u8 {
  kNop = 0,
  kIntAlu,   ///< single-cycle integer op
  kIntMul,   ///< multi-cycle pipelined (complex ALU)
  kIntDiv,   ///< multi-cycle non-pipelined
  kLoad,
  kStore,
  kBranch,
};

constexpr const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::kNop: return "nop";
    case OpClass::kIntAlu: return "alu";
    case OpClass::kIntMul: return "mul";
    case OpClass::kIntDiv: return "div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
  }
  return "?";
}

/// True for operations that touch the LSQ / data cache.
constexpr bool is_mem(OpClass c) { return c == OpClass::kLoad || c == OpClass::kStore; }

/// One dynamic instruction as seen by the timing model.
struct DynInst {
  SeqNum seq = 0;        ///< assigned by the pipeline at fetch
  Pc pc = 0;
  OpClass op = OpClass::kNop;
  int src1 = kNoReg;     ///< architectural source registers
  int src2 = kNoReg;
  int dst = kNoReg;      ///< architectural destination register
  Addr mem_addr = 0;     ///< effective address (loads/stores)
  int mem_size = 8;      ///< access size in bytes
  bool taken = false;    ///< branch outcome
  Pc next_pc = 0;        ///< architecturally correct next PC
};

/// Produces the committed-path dynamic instruction stream.
class InstructionSource {
 public:
  virtual ~InstructionSource() = default;
  /// Fills `out` with the next instruction; false when the stream ends.
  virtual bool next(DynInst& out) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace vasim::isa

#endif  // VASIM_ISA_DYNINST_HPP
