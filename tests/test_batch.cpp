// Lockstep batch engine and sweep sharding: batch-vs-single bitwise
// identity (fuzz-seeded grids, semantics checker attached), mid-batch
// retirement/compaction edges, warm-start composition, shard partition +
// fragment round trip + merge determinism, and VASIM_BATCH validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/batch.hpp"
#include "src/core/shard.hpp"
#include "src/core/sweep.hpp"
#include "src/workload/profiles.hpp"
#include "tests/fuzz_util.hpp"

namespace vasim {
namespace {

core::RunnerConfig batch_config() {
  core::RunnerConfig rc;
  rc.instructions = 2'000;
  rc.warmup = 800;
  return rc;
}

/// Field-by-field bitwise identity, including the pieces that feed
/// sweep_checksum (stats counters) and the ones that do not (trail,
/// checker_checks) -- batching must perturb neither.
void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.fault_rate_pct, b.fault_rate_pct);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.predictor_accuracy, b.predictor_accuracy);
  EXPECT_EQ(a.energy.dynamic_nj, b.energy.dynamic_nj);
  EXPECT_EQ(a.energy.leakage_nj, b.energy.leakage_nj);
  EXPECT_EQ(a.energy.edp, b.energy.edp);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  EXPECT_EQ(a.commit_trail, b.commit_trail);
  EXPECT_EQ(a.checker_checks, b.checker_checks);
}

// ---- lockstep batch engine -------------------------------------------------

TEST(BatchLockstep, ChecksumIdenticalAcrossWidthsOverFuzzSeeds) {
  const char* benches[] = {"bzip2", "gcc", "gobmk", "sjeng", "mcf", "tonto"};
  const char* schemes[] = {"fault-free", "razor", "ep", "abs", "ffs", "cds"};
  const double vdds[] = {0.97, 1.04};

  for (const u64 seed : fuzzutil::seeds("batch", 21'000, 4)) {
    Pcg32 rng(seed, 0xba7cULL);
    core::RunnerConfig rc = batch_config();
    rc.check_semantics = true;  // every member validated cycle by cycle
    std::vector<core::SweepJob> jobs;
    const std::size_t n = 3 + rng.next_below(4);  // 3..6 jobs
    for (std::size_t j = 0; j < n; ++j) {
      const auto prof = workload::spec2006_profile(benches[rng.next_u32() % 6]);
      const std::string scheme_name = schemes[rng.next_u32() % 6];
      const std::optional<cpu::SchemeConfig> scheme =
          scheme_name == "fault-free" ? std::optional<cpu::SchemeConfig>{}
                                      : core::scheme_by_name(scheme_name);
      const double vdd = scheme ? vdds[rng.next_u32() % 2] : 0.97;
      jobs.push_back({prof, scheme, vdd, std::nullopt});
    }

    core::SweepRunner single(rc, 1);
    single.set_batch(1);
    core::SweepRunner batched(rc, 1);
    batched.set_batch(1 + rng.next_below(4));  // widths 1..4, seed-chosen

    const std::vector<core::RunResult> r1 = single.run_results(jobs);
    const std::vector<core::RunResult> rb = batched.run_results(jobs);
    ASSERT_EQ(r1.size(), jobs.size()) << "seed " << seed;
    ASSERT_EQ(rb.size(), jobs.size()) << "seed " << seed;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " job " + std::to_string(i));
      expect_identical(r1[i], rb[i]);
      EXPECT_GT(rb[i].checker_checks, 0u);  // a pass with 0 checks is blind
    }
    EXPECT_EQ(core::sweep_checksum(r1), core::sweep_checksum(rb)) << "seed " << seed;
  }
}

TEST(BatchLockstep, MidBatchRetirementCompactsWithoutPerturbingSurvivors) {
  // Heterogeneous run lengths in one batch: short members retire mid-flight
  // and the survivors compact over them.  Every member must still match its
  // solo ExperimentRunner run exactly.  Lengths straddle slice boundaries
  // and include warmup == 0 (a member that is born measuring).
  const auto bzip2 = workload::spec2006_profile("bzip2");
  const auto gobmk = workload::spec2006_profile("gobmk");
  struct Shape {
    u64 instructions;
    u64 warmup;
  };
  const Shape shapes[] = {{500, 200}, {6'000, 800}, {1'500, 0}, {3'000, 1'200}, {700, 100}};
  std::vector<core::SweepJob> jobs;
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    core::RunnerConfig rc = batch_config();
    rc.instructions = shapes[i].instructions;
    rc.warmup = shapes[i].warmup;
    jobs.push_back({i % 2 == 0 ? bzip2 : gobmk,
                    i % 2 == 0 ? std::optional(core::scheme_by_name("razor").value())
                               : std::nullopt,
                    0.97, rc});
  }

  const core::BatchRunner batch(batch_config(), jobs.size());
  const std::vector<core::RunResult> rb = batch.run(jobs);
  ASSERT_EQ(rb.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const core::ExperimentRunner solo(*jobs[i].config);
    const core::RunResult rs = jobs[i].scheme
                                   ? solo.run(jobs[i].profile, *jobs[i].scheme, jobs[i].vdd)
                                   : solo.run_fault_free(jobs[i].profile, jobs[i].vdd);
    expect_identical(rs, rb[i]);
    EXPECT_EQ(rb[i].committed, shapes[i].instructions);
  }
}

TEST(BatchLockstep, WidthEdgesBatchWiderThanGridAndZeroClamp) {
  const auto bzip2 = workload::spec2006_profile("bzip2");
  std::vector<core::SweepJob> jobs;
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  jobs.push_back({bzip2, core::scheme_by_name("ep"), 0.97, std::nullopt});

  const core::BatchRunner wide(batch_config(), 16);  // batch > jobs
  const core::BatchRunner narrow(batch_config(), 1);
  const std::vector<core::RunResult> rw = wide.run(jobs);
  const std::vector<core::RunResult> rn = narrow.run(jobs);
  ASSERT_EQ(rw.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) expect_identical(rw[i], rn[i]);

  core::SweepRunner sweeper(batch_config(), 1);
  sweeper.set_batch(0);  // clamps to 1, never a zero-width chunk loop
  EXPECT_EQ(sweeper.batch(), 1u);
}

TEST(BatchLockstep, ComposesWithWarmStartSharing) {
  // The warm-fork path: group snapshots restore into batch members that
  // re-derive the measurement base exactly where run_from would.
  std::vector<core::SweepJob> jobs;
  for (const auto& name : {"bzip2", "gobmk"}) {
    const auto prof = workload::spec2006_profile(name);
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    jobs.push_back({prof, std::nullopt, 1.10, std::nullopt});
    jobs.push_back({prof, core::scheme_by_name("razor"), 0.97, std::nullopt});
  }
  core::SweepRunner plain(batch_config(), 1);
  plain.set_batch(1);
  core::SweepRunner warm_batched(batch_config(), 1);
  warm_batched.set_batch(3);
  warm_batched.set_reuse_warmup(true);

  const core::SweepReport a = plain.run(jobs);
  const core::SweepReport b = warm_batched.run(jobs);
  EXPECT_EQ(core::sweep_checksum(a), core::sweep_checksum(b));
  EXPECT_EQ(b.warmup_groups, 2u);  // one fault-free pair per profile
  EXPECT_GT(b.warmup_cycles_simulated, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_identical(a.jobs[i].result, b.jobs[i].result);
  }
}

TEST(BatchLockstep, PooledBatchesMatchSequentialSingles) {
  // workers > 1 x batch > 1: each pool task runs a whole batch; results
  // must still be bitwise those of the sequential unbatched sweep.
  const std::vector<core::SweepJob> jobs = [] {
    std::vector<core::SweepJob> g;
    for (const auto& name : {"bzip2", "gobmk", "mcf"}) {
      const auto prof = workload::spec2006_profile(name);
      g.push_back({prof, std::nullopt, 0.97, std::nullopt});
      g.push_back({prof, core::scheme_by_name("abs"), 0.97, std::nullopt});
    }
    return g;
  }();
  core::SweepRunner sequential(batch_config(), 1);
  sequential.set_batch(1);
  core::SweepRunner pooled(batch_config(), 4);
  pooled.set_batch(2);
  const std::vector<core::RunResult> rs = sequential.run_results(jobs);
  const std::vector<core::RunResult> rp = pooled.run_results(jobs);
  ASSERT_EQ(rp.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    expect_identical(rs[i], rp[i]);
  }
  EXPECT_EQ(core::sweep_checksum(rs), core::sweep_checksum(rp));
}

TEST(BatchLockstep, ThrowingMemberIsContainedAndReported) {
  std::vector<core::SweepJob> jobs;
  const auto bzip2 = workload::spec2006_profile("bzip2");
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  core::RunnerConfig broken = batch_config();
  broken.core.phys_regs = 1;  // Pipeline's constructor rejects this
  jobs.push_back({bzip2, std::nullopt, 0.97, broken});
  jobs.push_back({bzip2, core::scheme_by_name("abs"), 0.97, std::nullopt});

  const core::BatchRunner batch(batch_config(), 3);
  EXPECT_THROW({ (void)batch.run(jobs); }, std::invalid_argument);

  // The healthy members of the same batch still produced correct results:
  // run through SweepRunner, which reports per-job and rethrows the first
  // failure only after the grid drains.
  core::SweepRunner sweeper(batch_config(), 1);
  sweeper.set_batch(3);
  EXPECT_THROW({ (void)sweeper.run(jobs); }, std::invalid_argument);
  jobs[1].config.reset();
  const core::SweepReport healthy = sweeper.run(jobs);
  EXPECT_EQ(healthy.jobs.size(), jobs.size());
}

TEST(BatchEnv, VasimBatchValidation) {
  // Not parallel-safe with other env-reading tests, but the suite runs
  // tests in one process sequentially.
  ASSERT_EQ(setenv("VASIM_BATCH", "8", 1), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 8u);
  ASSERT_EQ(setenv("VASIM_BATCH", "zzz", 1), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 1u);  // garbage -> default, warned
  ASSERT_EQ(setenv("VASIM_BATCH", "4x16", 1), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 1u);  // strict parse, not "4"
  ASSERT_EQ(setenv("VASIM_BATCH", "0", 1), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 1u);  // zero is meaningless
  ASSERT_EQ(setenv("VASIM_BATCH", "99999999", 1), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 64u);  // clamped to the sane max
  ASSERT_EQ(unsetenv("VASIM_BATCH"), 0);
  EXPECT_EQ(core::sweep_batch_from_env(), 1u);  // batching stays opt-in
}

// ---- sweep sharding --------------------------------------------------------

TEST(ShardMerge, ParseShardAcceptsAndRejects) {
  const core::ShardSpec s = core::parse_shard("2/4");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 4u);
  const core::ShardSpec one = core::parse_shard("1/1");
  EXPECT_EQ(one.index, 1u);
  EXPECT_EQ(one.count, 1u);
  for (const char* bad : {"", "2", "2/", "/4", "0/4", "5/4", "a/4", "2/b", "1/0", "-1/4", "1/4/2"}) {
    EXPECT_THROW({ (void)core::parse_shard(bad); }, std::invalid_argument) << "'" << bad << "'";
  }
}

std::vector<core::SweepJob> shard_grid() {
  std::vector<core::SweepJob> jobs;
  for (const auto& name : {"bzip2", "gobmk", "sjeng"}) {
    const auto prof = workload::spec2006_profile(name);
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    jobs.push_back({prof, std::nullopt, 1.10, std::nullopt});
    jobs.push_back({prof, core::scheme_by_name("razor"), 0.97, std::nullopt});
    jobs.push_back({prof, core::scheme_by_name("ep"), 0.97, std::nullopt});
  }
  return jobs;
}

TEST(ShardMerge, PartitionCoversEveryJobExactlyOnce) {
  const std::vector<core::SweepJob> jobs = shard_grid();
  for (const bool reuse : {false, true}) {
    std::set<std::size_t> seen;
    for (std::size_t i = 1; i <= 3; ++i) {
      const auto idx = core::shard_indices(jobs, {i, 3}, reuse, batch_config());
      for (std::size_t k = 1; k < idx.size(); ++k) EXPECT_LT(idx[k - 1], idx[k]);  // ascending
      for (const std::size_t j : idx) {
        EXPECT_TRUE(seen.insert(j).second) << "job " << j << " in two shards (reuse=" << reuse
                                           << ")";
      }
    }
    EXPECT_EQ(seen.size(), jobs.size()) << "reuse=" << reuse;
  }
  // Group-aware mode keeps each fault-free warmup pair on one shard.
  for (std::size_t i = 1; i <= 3; ++i) {
    const auto idx = core::shard_indices(jobs, {i, 3}, true, batch_config());
    for (std::size_t at = 0; at + 3 < jobs.size(); at += 4) {
      const bool first = std::find(idx.begin(), idx.end(), at) != idx.end();
      const bool second = std::find(idx.begin(), idx.end(), at + 1) != idx.end();
      EXPECT_EQ(first, second) << "warmup group split across shards";
    }
  }
}

/// Runs shard i/N of `jobs`, packages it as a fragment, and round-trips it
/// through the JSON codec (what the CLI writes to disk and sweep-merge
/// reads back).
core::SweepFragment run_shard(const std::vector<core::SweepJob>& jobs, std::size_t i,
                              std::size_t n, bool reuse) {
  const core::ShardSpec spec{i, n};
  const auto indices = core::shard_indices(jobs, spec, reuse, batch_config());
  std::vector<core::SweepJob> mine;
  for (const std::size_t j : indices) mine.push_back(jobs[j]);
  core::SweepRunner runner(batch_config(), 1);
  runner.set_reuse_warmup(reuse);
  core::SweepReport report = runner.run(mine);
  const core::SweepFragment f =
      core::make_fragment("unit", spec, jobs.size(), indices, std::move(report));
  std::stringstream ss;
  core::write_fragment_json(ss, f);
  return core::read_fragment_json(ss);
}

TEST(ShardMerge, ThreeWayMergeIsChecksumIdenticalToUnsharded) {
  const std::vector<core::SweepJob> jobs = shard_grid();
  core::SweepRunner whole(batch_config(), 1);
  const core::SweepReport unsharded = whole.run(jobs);

  std::vector<core::SweepFragment> fragments;
  for (std::size_t i = 1; i <= 3; ++i) fragments.push_back(run_shard(jobs, i, 3, false));
  const core::SweepReport merged = core::merge_fragments(std::move(fragments));

  ASSERT_EQ(merged.jobs.size(), jobs.size());
  EXPECT_EQ(core::sweep_checksum(merged), core::sweep_checksum(unsharded));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    expect_identical(merged.jobs[i].result, unsharded.jobs[i].result);
  }
}

TEST(ShardMerge, WarmupAccountingSumsExactlyAcrossShards) {
  const std::vector<core::SweepJob> jobs = shard_grid();
  core::SweepRunner whole(batch_config(), 1);
  whole.set_reuse_warmup(true);
  const core::SweepReport unsharded = whole.run(jobs);

  std::vector<core::SweepFragment> fragments;
  for (std::size_t i = 1; i <= 2; ++i) fragments.push_back(run_shard(jobs, i, 2, true));
  const core::SweepReport merged = core::merge_fragments(std::move(fragments));

  EXPECT_EQ(core::sweep_checksum(merged), core::sweep_checksum(unsharded));
  // Whole groups travel to one shard, so the merged accounting is the plain
  // sum and equals the unsharded run's.
  EXPECT_EQ(merged.warmup_groups, unsharded.warmup_groups);
  EXPECT_EQ(merged.warmup_cycles_simulated, unsharded.warmup_cycles_simulated);
  EXPECT_EQ(merged.warmup_cycles_saved, unsharded.warmup_cycles_saved);
  EXPECT_GT(merged.warmup_groups, 0u);
}

TEST(ShardMerge, MergeValidatesCoverageAndIdentity) {
  const std::vector<core::SweepJob> jobs = shard_grid();
  const core::SweepFragment f1 = run_shard(jobs, 1, 2, false);
  const core::SweepFragment f2 = run_shard(jobs, 2, 2, false);

  // Happy path sanity.
  EXPECT_NO_THROW({ (void)core::merge_fragments({f1, f2}); });
  // Missing shard -> incomplete coverage.
  EXPECT_THROW({ (void)core::merge_fragments({f1}); }, std::runtime_error);
  // Same shard twice -> duplicate index.
  EXPECT_THROW({ (void)core::merge_fragments({f1, f1}); }, std::runtime_error);
  // Disagreeing identity -> rejected.
  core::SweepFragment renamed = f2;
  renamed.name = "other";
  EXPECT_THROW({ (void)core::merge_fragments({f1, renamed}); }, std::runtime_error);
  core::SweepFragment wrong_count = f2;
  wrong_count.shard_count = 3;
  EXPECT_THROW({ (void)core::merge_fragments({f1, wrong_count}); }, std::runtime_error);
}

TEST(ShardMerge, FragmentJsonRoundTripPreservesEverything) {
  const std::vector<core::SweepJob> jobs = shard_grid();
  const core::ShardSpec spec{1, 2};
  const auto indices = core::shard_indices(jobs, spec, false, batch_config());
  std::vector<core::SweepJob> mine;
  for (const std::size_t j : indices) mine.push_back(jobs[j]);
  core::SweepRunner runner(batch_config(), 1);
  core::SweepReport report = runner.run(mine);
  const core::SweepFragment f =
      core::make_fragment("unit", spec, jobs.size(), indices, std::move(report));

  std::stringstream ss;
  core::write_fragment_json(ss, f);
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"kind\": \"sweep_fragment\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_index\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"blob\""), std::string::npos);

  std::stringstream back(json);
  const core::SweepFragment g = core::read_fragment_json(back);
  EXPECT_EQ(g.name, f.name);
  EXPECT_EQ(g.shard_index, f.shard_index);
  EXPECT_EQ(g.shard_count, f.shard_count);
  EXPECT_EQ(g.total_jobs, f.total_jobs);
  EXPECT_EQ(g.warmup_groups, f.warmup_groups);
  EXPECT_EQ(g.warmup_cycles_simulated, f.warmup_cycles_simulated);
  EXPECT_EQ(g.warmup_cycles_saved, f.warmup_cycles_saved);
  ASSERT_EQ(g.entries.size(), f.entries.size());
  for (std::size_t i = 0; i < f.entries.size(); ++i) {
    SCOPED_TRACE("entry " + std::to_string(i));
    EXPECT_EQ(g.entries[i].index, f.entries[i].index);
    expect_identical(g.entries[i].outcome.result, f.entries[i].outcome.result);
  }

  // Garbage in -> loud failure, not a silent half-parse.
  std::stringstream junk("{\"kind\": \"something_else\"}");
  EXPECT_THROW({ (void)core::read_fragment_json(junk); }, std::runtime_error);
}

TEST(ShardMerge, MismatchedFragmentSchemaFailsWithNamedError) {
  // A fragment written by an older build (schema 1): the reader must refuse
  // with the typed error naming the file and both schema numbers, so a
  // partially regenerated shard set fails loudly instead of merging stale
  // per-job layouts.
  std::stringstream old_frag(
      "{\n"
      "  \"bench\": \"x\",\n"
      "  \"kind\": \"sweep_fragment\",\n"
      "  \"schema_version\": 1,\n"
      "  \"shard_index\": 1,\n"
      "  \"shard_count\": 1,\n"
      "  \"total_jobs\": 0,\n"
      "  \"workers\": 1,\n"
      "  \"wall_ms\": 0,\n"
      "  \"warmup_groups\": 0,\n"
      "  \"warmup_cycles_simulated\": 0,\n"
      "  \"warmup_cycles_saved\": 0,\n"
      "  \"jobs\": []\n"
      "}\n");
  try {
    (void)core::read_fragment_json(old_frag, "frag_a.json");
    FAIL() << "schema 1 fragment must be rejected";
  } catch (const core::FragmentSchemaError& e) {
    EXPECT_EQ(e.path(), "frag_a.json");
    EXPECT_EQ(e.found(), 1u);
    EXPECT_EQ(e.expected(), 3u);
    EXPECT_NE(std::string(e.what()).find("frag_a.json"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("schema_version 1"), std::string::npos);
  }
  // FragmentSchemaError stays catchable as the codec's generic error type.
  std::stringstream again(
      "{\"bench\": \"x\", \"kind\": \"sweep_fragment\", \"schema_version\": 7}");
  EXPECT_THROW({ (void)core::read_fragment_json(again); }, std::runtime_error);
}

}  // namespace
}  // namespace vasim
