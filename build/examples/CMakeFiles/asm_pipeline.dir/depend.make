# Empty dependencies file for asm_pipeline.
# This may be replaced when dependencies are built.
