#include "src/timing/sensors.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace vasim::timing {

double Environment::thermal_component(Cycle cycle) const {
  const double phase = 2.0 * std::numbers::pi *
                       static_cast<double>(cycle % cfg_.thermal_period) /
                       static_cast<double>(cfg_.thermal_period);
  return cfg_.thermal_amplitude * std::sin(phase);
}

double Environment::droop_component(Cycle cycle) const {
  const u64 epoch = cycle / cfg_.droop_epoch;
  const double g = hash_to_gaussian(hash_combine(cfg_.seed, epoch));
  return std::clamp(cfg_.droop_amplitude * g, -2.5 * cfg_.droop_amplitude,
                    2.5 * cfg_.droop_amplitude);
}

double Environment::modulation(Cycle cycle) const {
  const double m = thermal_component(cycle) + droop_component(cycle);
  return 1.0 + std::clamp(m, -cfg_.clamp, cfg_.clamp);
}

}  // namespace vasim::timing
