file(REMOVE_RECURSE
  "libvasim_workload.a"
)
