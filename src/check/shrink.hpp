// Greedy per-dimension bisection shrinker for failing randomized cases.
//
// A failing fuzz case is a point in a small integer space (instruction
// count, window sizes, trip counts...).  shrink_spec() walks each dimension
// toward its minimum with a binary search, keeping any candidate that still
// reproduces the failure, and repeats until a whole round changes nothing.
// The predicate re-runs the simulation, so shrinking is only attempted on
// already-failing cases (tools/check_probe).  The search assumes nothing
// about monotonicity -- a non-monotone failure region just shrinks less.
#ifndef VASIM_CHECK_SHRINK_HPP
#define VASIM_CHECK_SHRINK_HPP

#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace vasim::check {

/// One shrinkable dimension: current value and the smallest legal value.
struct ShrinkDim {
  std::string name;
  u64 value = 0;
  u64 min = 0;
};

using ShrinkSpec = std::vector<ShrinkDim>;

/// Statistics from one shrink run.
struct ShrinkStats {
  int probes = 0;  ///< predicate evaluations
  int rounds = 0;
};

/// Minimizes `spec` under `still_fails` (true = the failure reproduces).
/// `spec` itself must fail on entry; the result always fails.
template <typename Pred>
ShrinkSpec shrink_spec(ShrinkSpec spec, Pred&& still_fails, int max_rounds = 4,
                       ShrinkStats* stats = nullptr) {
  ShrinkStats local;
  bool changed = true;
  for (int round = 0; round < max_rounds && changed; ++round) {
    ++local.rounds;
    changed = false;
    for (std::size_t d = 0; d < spec.size(); ++d) {
      u64 lo = spec[d].min;
      u64 hi = spec[d].value;
      // Invariant: `hi` fails; find the smallest failing value in [lo, hi].
      while (lo < hi) {
        ShrinkSpec cand = spec;
        const u64 mid = lo + (hi - lo) / 2;
        cand[d].value = mid;
        ++local.probes;
        if (still_fails(cand)) {
          hi = mid;
          spec = std::move(cand);
          changed = true;
        } else {
          lo = mid + 1;
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return spec;
}

}  // namespace vasim::check

#endif  // VASIM_CHECK_SHRINK_HPP
