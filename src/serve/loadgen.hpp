// Open-loop load generator for the serve daemon (`vasim loadgen`).
//
// N client threads replay a seed-deterministic request mix against a running
// daemon: each client submits jobs on a fixed inter-arrival schedule
// (open-loop: the next submit is NOT gated on the previous job finishing),
// polls its outstanding jobs between submits, optionally cancels a fraction
// of them, and honours queue_full backpressure by sleeping the advisory
// retry_after_ms and retrying.  The run records
//
//   * submit round-trip latency percentiles (p50/p95/p99/max),
//   * job completion latency percentiles (submit -> observed terminal),
//   * queue_full rejection counts and cache hit/warm-start rates,
//   * a checksum-consistency flag: every (bench, scheme, vdd) cell that
//     appears in more than one job must report the identical checksum --
//     the daemon-side determinism oracle, evaluated client-side,
//
// and writes them to BENCH_serve.json in the same shape as the other
// BENCH_*.json artifacts (schema-checked by the CI serve smoke job).
#ifndef VASIM_SERVE_LOADGEN_HPP
#define VASIM_SERVE_LOADGEN_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace vasim::serve {

struct LoadgenConfig {
  std::string endpoint = "unix:/tmp/vasim-serve.sock";
  std::size_t clients = 4;          ///< concurrent client connections
  std::size_t jobs_per_client = 8;  ///< submits per client
  std::size_t cells_per_job = 2;
  double submit_interval_ms = 5.0;  ///< open-loop inter-arrival spacing
  double cancel_fraction = 0.0;     ///< fraction of jobs cancelled after submit
  u64 poll_interval_ms = 2;
  u64 timeout_ms = 120000;  ///< give-up bound for the final drain
  u64 seed = 1;
  /// Grid the mix draws cells from.  Defaults overlap deliberately so
  /// cross-request cache sharing is exercised.
  std::vector<std::string> benches = {"bzip2", "gcc"};
  std::vector<std::string> schemes = {"fault-free", "abs", "razor"};
  std::vector<double> vdds = {1.04, 0.97};
  /// Per-job overrides forwarded in the submit frame; 0 = daemon default.
  u64 instructions = 0;
  u64 warmup = 0;
  std::string out_json = "BENCH_serve.json";  ///< "" = don't write
};

struct LoadgenReport {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_done = 0;
  std::size_t jobs_cancelled = 0;
  std::size_t jobs_failed = 0;
  std::size_t queue_full_rejections = 0;
  std::size_t cells_completed = 0;
  std::size_t warm_hits = 0;
  double submit_p50_ms = 0.0;
  double submit_p95_ms = 0.0;
  double submit_p99_ms = 0.0;
  double submit_max_ms = 0.0;
  double job_p50_ms = 0.0;
  double job_p95_ms = 0.0;
  double job_p99_ms = 0.0;
  double job_max_ms = 0.0;
  double wall_ms = 0.0;
  double cache_hit_rate = 0.0;  ///< from the daemon's final stats reply
  bool checksums_consistent = true;
  std::size_t distinct_cells = 0;  ///< distinct (bench,scheme,vdd) observed
  bool timed_out = false;          ///< drain hit timeout_ms with jobs pending
};

/// Runs the mix; throws SocketError when the daemon is unreachable.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenConfig& cfg);

/// Writes the BENCH_serve.json artifact; returns false on I/O failure.
bool write_loadgen_json(const std::string& path, const LoadgenConfig& cfg,
                        const LoadgenReport& report);

/// Human-readable one-screen summary for the CLI.
[[nodiscard]] std::string loadgen_summary(const LoadgenReport& report);

}  // namespace vasim::serve

#endif  // VASIM_SERVE_LOADGEN_HPP
