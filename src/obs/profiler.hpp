// Simulator self-profiler: where does the simulator's own wall-time go?
//
// Scoped steady-clock timers attribute host nanoseconds to the pipeline's
// work phases (fetch/dispatch/select/execute/commit plus the fault-check and
// event-wheel sub-phases).  The instrumentation follows the check_hooks
// pattern: compiled in by default, removable with -DVASIM_PROF_HOOKS=0, and
// when compiled in it costs one pointer null-check per phase until a
// Profiler is attached -- results are bitwise unchanged either way, since
// the profiler only reads the host clock, never simulator state.
//
// One Profiler per pipeline (single-threaded, like the Registry); sweep
// workers each profile their own jobs and merge into a shared ProfilerHub,
// which keys totals by host thread so a sweep reports per-worker and
// whole-run attribution.
#ifndef VASIM_OBS_PROFILER_HPP
#define VASIM_OBS_PROFILER_HPP

#ifndef VASIM_PROF_HOOKS
#define VASIM_PROF_HOOKS 1
#endif

#include <array>
#include <chrono>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/types.hpp"

namespace vasim::obs {

/// True when the profiler emission sites are compiled in (the default).
inline constexpr bool kProfHooksEnabled = VASIM_PROF_HOOKS != 0;

/// Simulator work phases.  kFaultCheck is a sub-phase of kSelect (the
/// fault-oracle query inside issue) and kEventWheel a sub-phase of kExecute
/// (the wheel pop inside event processing); the five others partition the
/// cycle loop.
enum class ProfPhase : int {
  kFetch = 0,
  kDispatch = 1,
  kSelect = 2,
  kExecute = 3,
  kCommit = 4,
  kFaultCheck = 5,
  kEventWheel = 6,
};

inline constexpr int kNumProfPhases = 7;

/// The five top-level phases come first so [0, kNumTopLevelPhases) sums to
/// the whole instrumented cycle loop without double counting sub-phases.
inline constexpr int kNumTopLevelPhases = 5;

constexpr std::string_view to_string(ProfPhase p) {
  constexpr std::array<std::string_view, kNumProfPhases> names = {
      "fetch", "dispatch", "select", "execute", "commit", "fault-check", "event-wheel"};
  return names[static_cast<int>(p)];
}

/// Per-pipeline wall-time accumulator.  Not thread-safe; merge snapshots
/// into a ProfilerHub for cross-thread aggregation.
class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Snapshot {
    std::array<u64, kNumProfPhases> ns{};
    std::array<u64, kNumProfPhases> calls{};

    /// Sum over the five top-level phases (sub-phases excluded).
    [[nodiscard]] u64 total_ns() const {
      u64 t = 0;
      for (int i = 0; i < kNumTopLevelPhases; ++i) t += ns[static_cast<std::size_t>(i)];
      return t;
    }
    void merge(const Snapshot& o) {
      for (int i = 0; i < kNumProfPhases; ++i) {
        ns[static_cast<std::size_t>(i)] += o.ns[static_cast<std::size_t>(i)];
        calls[static_cast<std::size_t>(i)] += o.calls[static_cast<std::size_t>(i)];
      }
    }
  };

  void add(ProfPhase p, u64 ns) {
    snap_.ns[static_cast<std::size_t>(p)] += ns;
    ++snap_.calls[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] const Snapshot& snapshot() const { return snap_; }
  void reset() { snap_ = Snapshot{}; }

  /// RAII phase timer.  A null profiler makes the scope free of clock reads.
  class Scope {
   public:
    Scope(Profiler* p, ProfPhase phase)
        : p_(p), phase_(phase), t0_(p != nullptr ? Clock::now() : Clock::time_point{}) {}
    ~Scope() {
      if (p_ != nullptr) {
        p_->add(phase_, static_cast<u64>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - t0_)
                                .count()));
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* p_;
    ProfPhase phase_;
    Clock::time_point t0_;
  };

 private:
  Snapshot snap_;
};

/// Thread-safe aggregation point for a sweep: each worker merges its jobs'
/// snapshots; the hub keys them by host thread and reports per-worker and
/// total attribution.
class ProfilerHub {
 public:
  struct WorkerReport {
    std::size_t worker = 0;  ///< dense id in first-merge order
    Profiler::Snapshot snap;
  };

  void merge(const Profiler::Snapshot& s);
  [[nodiscard]] std::vector<WorkerReport> per_worker() const;
  [[nodiscard]] Profiler::Snapshot total() const;

 private:
  mutable std::mutex mu_;
  std::map<std::thread::id, std::size_t> worker_ids_;
  std::vector<Profiler::Snapshot> snaps_;
};

}  // namespace vasim::obs

#endif  // VASIM_OBS_PROFILER_HPP
