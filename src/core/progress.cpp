#include "src/core/progress.hpp"

#include <cstdio>

namespace vasim::core {

ProgressMeter::ProgressMeter(std::string label, u64 total, std::string unit)
    : label_(std::move(label)),
      unit_(std::move(unit)),
      total_(total),
      t0_(std::chrono::steady_clock::now()),
      last_print_(t0_ - std::chrono::hours(1)) {}

void ProgressMeter::update(u64 done) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (now - last_print_ < std::chrono::milliseconds(100)) return;
  last_print_ = now;
  print(done, /*final=*/false);
}

void ProgressMeter::finish(u64 done) {
  const std::lock_guard<std::mutex> lock(mu_);
  print(done, /*final=*/true);
}

void ProgressMeter::print(u64 done, bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta =
      (rate > 0.0 && total_ > done) ? static_cast<double>(total_ - done) / rate : 0.0;
  std::fprintf(stderr, "\r[%s] %llu/%llu %s done, %.3g %s/s, ETA %.1fs ", label_.c_str(),
               static_cast<unsigned long long>(done), static_cast<unsigned long long>(total_),
               unit_.c_str(), rate, unit_.c_str(), eta);
  if (final) std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace vasim::core
