// In-order reference core.
//
// A scalar, stall-on-use pipeline sharing the caches, branch predictor,
// fault model and predictor interfaces with the OoO core.  Its purpose is
// comparative: with no scheduling freedom, a predicted-faulty instruction's
// extra cycle delays everything behind it, so violation-aware scheduling
// degenerates to Error Padding -- quantifying how much of the paper's win
// comes specifically from the out-of-order window's architectural slack
// (see bench_inorder).
#ifndef VASIM_CPU_INORDER_HPP
#define VASIM_CPU_INORDER_HPP

#include "src/cpu/cache.hpp"
#include "src/cpu/branch_pred.hpp"
#include "src/cpu/config.hpp"
#include "src/cpu/hooks.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/dyninst.hpp"
#include "src/isa/program.hpp"
#include "src/timing/fault_model.hpp"

namespace vasim::cpu {

/// Configuration of the in-order core.
struct InOrderConfig {
  int frontend_depth = 5;       ///< fetch-to-execute bubble on redirect
  Cycle mul_latency = 3;
  Cycle div_latency = 12;
  CoreConfig memory;            ///< cache geometry reused from the OoO config
};

/// Scalar in-order timing model.  The issue time of each instruction is the
/// max of (previous issue + 1, operand-ready times, front-end readiness);
/// there is full bypassing, so a producer's result is usable the cycle after
/// its execution completes.
class InOrderPipeline {
 public:
  InOrderPipeline(const InOrderConfig& cfg, const SchemeConfig& scheme,
                  isa::InstructionSource* source, const timing::FaultModel* fault_model,
                  FaultPredictor* predictor);

  /// Runs `max_committed` instructions after `warmup_committed` of warmup.
  PipelineResult run(u64 max_committed, u64 warmup_committed = 0);

  [[nodiscard]] u64 committed() const { return committed_; }
  [[nodiscard]] Cycle now() const { return now_; }

  /// Attaches an interval sampler (null detaches).  The in-order core has
  /// no metrics registry, so the timeline carries only the cycle/commit
  /// columns -- i.e. the IPC series; build it with Timeline(cfg, nullptr).
  void set_timeline(obs::Timeline* timeline, u64 interval) {
    timeline_ = (timeline != nullptr && interval > 0) ? timeline : nullptr;
    timeline_interval_ = interval;
    timeline_next_ =
        timeline_ != nullptr ? (committed_ / interval + 1) * interval : ~0ULL;
  }

  /// Serializes clock, scoreboard, caches, branch predictor and stats.  The
  /// restored instance continues with run(max, 0): run() captures its
  /// measurement base at entry when warmup is zero, so windowing matches the
  /// uninterrupted run exactly.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  /// Executes one instruction; returns false when the source drains.
  bool step_one();

  InOrderConfig cfg_;
  SchemeConfig scheme_;
  isa::InstructionSource* source_;
  const timing::FaultModel* fault_model_;
  FaultPredictor* predictor_;

  MemoryHierarchy memory_;
  BranchPredictor bpred_;

  Cycle now_ = 0;           ///< issue time of the most recent instruction
  Cycle fetch_ready_ = 0;   ///< earliest next issue due to front-end redirects
  Cycle reg_ready_[isa::kNumArchRegs] = {};
  u64 committed_ = 0;
  StatSet stats_;

  obs::Timeline* timeline_ = nullptr;
  u64 timeline_interval_ = 0;
  u64 timeline_next_ = ~0ULL;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_INORDER_HPP
