// SweepRunner / ThreadPool behaviour: determinism across worker counts,
// submission-order preservation, exception containment, and the JSON sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/common/thread_pool.hpp"
#include "src/core/sweep.hpp"
#include "src/workload/profiles.hpp"

namespace vasim {
namespace {

core::RunnerConfig small_config() {
  core::RunnerConfig rc;
  rc.instructions = 3'000;
  rc.warmup = 1'000;
  return rc;
}

std::vector<core::SweepJob> small_grid() {
  std::vector<core::SweepJob> jobs;
  const auto bzip2 = workload::spec2006_profile("bzip2");
  const auto gobmk = workload::spec2006_profile("gobmk");
  for (const auto& prof : {bzip2, gobmk}) {
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    for (const auto& scheme : core::comparative_schemes()) {
      jobs.push_back({prof, scheme, 0.97, std::nullopt});
    }
  }
  return jobs;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.fault_rate_pct, b.fault_rate_pct);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.predictor_accuracy, b.predictor_accuracy);
  EXPECT_EQ(a.energy.dynamic_nj, b.energy.dynamic_nj);
  EXPECT_EQ(a.energy.leakage_nj, b.energy.leakage_nj);
  EXPECT_EQ(a.energy.edp, b.energy.edp);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

TEST(SweepRunner, ResultsIdenticalAcrossWorkerCounts) {
  const std::vector<core::SweepJob> jobs = small_grid();
  const core::SweepRunner one(small_config(), 1);
  const core::SweepRunner four(small_config(), 4);
  const std::vector<core::RunResult> r1 = one.run_results(jobs);
  const std::vector<core::RunResult> r4 = four.run_results(jobs);
  ASSERT_EQ(r1.size(), jobs.size());
  ASSERT_EQ(r4.size(), jobs.size());
  for (std::size_t i = 0; i < r1.size(); ++i) expect_identical(r1[i], r4[i]);
  EXPECT_EQ(core::sweep_checksum(r1), core::sweep_checksum(r4));
}

TEST(SweepRunner, PreservesSubmissionOrder) {
  const std::vector<core::SweepJob> jobs = small_grid();
  const core::SweepRunner four(small_config(), 4);
  const core::SweepReport report = four.run(jobs);
  ASSERT_EQ(report.jobs.size(), jobs.size());
  EXPECT_EQ(report.workers, 4u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const core::RunResult& r = report.jobs[i].result;
    EXPECT_EQ(r.benchmark, jobs[i].profile.name) << "job " << i;
    EXPECT_EQ(r.scheme, jobs[i].scheme ? jobs[i].scheme->name : "fault-free") << "job " << i;
    EXPECT_EQ(r.vdd, jobs[i].vdd) << "job " << i;
    EXPECT_GT(r.committed, 0u) << "job " << i;
    EXPECT_GE(report.jobs[i].wall_ms, 0.0);
  }
}

TEST(SweepRunner, ThrowingJobDoesNotDeadlockAndIsReported) {
  std::vector<core::SweepJob> jobs = small_grid();
  // An impossible machine: Pipeline's constructor rejects a physical
  // register file smaller than the architectural one.
  core::RunnerConfig broken = small_config();
  broken.core.phys_regs = 1;
  jobs[2].config = broken;
  const core::SweepRunner four(small_config(), 4);
  EXPECT_THROW({ (void)four.run(jobs); }, std::invalid_argument);
  // The pool survives a throwing job: the same runner still completes a
  // healthy grid afterwards.
  jobs[2].config.reset();
  const core::SweepReport report = four.run(jobs);
  EXPECT_EQ(report.jobs.size(), jobs.size());
}

TEST(SweepRunner, PerJobConfigOverridesRunLength) {
  const auto bzip2 = workload::spec2006_profile("bzip2");
  core::RunnerConfig longer = small_config();
  longer.instructions = 6'000;
  std::vector<core::SweepJob> jobs;
  jobs.push_back({bzip2, std::nullopt, 0.97, std::nullopt});
  jobs.push_back({bzip2, std::nullopt, 0.97, longer});
  const core::SweepRunner runner(small_config(), 2);
  const std::vector<core::RunResult> r = runner.run_results(jobs);
  EXPECT_EQ(r[0].committed, 3'000u);
  EXPECT_EQ(r[1].committed, 6'000u);
}

TEST(SweepRunner, ChecksumDetectsAnyFieldChange) {
  const core::SweepRunner runner(small_config(), 2);
  std::vector<core::RunResult> r = runner.run_results(small_grid());
  const u64 base = core::sweep_checksum(r);
  r[3].cycles += 1;
  EXPECT_NE(base, core::sweep_checksum(r));
}

TEST(SweepJson, EmitsValidStructure) {
  const core::SweepRunner runner(small_config(), 2);
  core::SweepReport report = runner.run(small_grid());
  std::ostringstream os;
  core::write_sweep_json(os, "unit", report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"warmup_groups\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"workers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"razor\""), std::string::npos);
  EXPECT_NE(json.find("\"checksum\""), std::string::npos);
  EXPECT_NE(json.find("\"cpi\""), std::string::npos);
  EXPECT_NE(json.find("\"squash_refetch\""), std::string::npos);
  // Every job serialized.
  std::size_t count = 0;
  for (std::size_t at = json.find("\"benchmark\""); at != std::string::npos;
       at = json.find("\"benchmark\"", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, report.jobs.size());
  // Balanced braces/brackets (cheap well-formedness check; no JSON parser
  // in the toolchain).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SweepJson, EmitsHistogramPercentilesPerJob) {
  // No pipeline registers a histogram today, so the percentile emission is
  // pinned on a hand-built report: any stats scalar triple <base>.p50/.p95/
  // .p99 must surface as a per-job "percentiles" object.
  const core::SweepRunner runner(small_config(), 1);
  core::SweepReport report = runner.run({{workload::spec2006_profile("bzip2"), std::nullopt,
                                          0.97, std::nullopt}});
  ASSERT_EQ(report.jobs.size(), 1u);
  core::RunResult& r = report.jobs[0].result;
  // Exactly representable doubles so the %.17g serialization is predictable.
  r.stats.set("lat.replay.p50", 0.5);
  r.stats.set("lat.replay.p95", 0.75);
  r.stats.set("lat.replay.p99", 0.875);

  std::ostringstream os;
  core::write_sweep_json(os, "unit", report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"percentiles\": {\"lat.replay\": "), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 0.875"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ThreadPool, RunsAllTasksAndWaitsIdle) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  // The pool is reusable after an idle wait.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorkers) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done, i] {
      if (i % 3 == 0) throw std::runtime_error("boom");
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 13);  // 20 minus the 7 throwers (i = 0,3,...,18)
}

TEST(SweepCancel, PreFiredTokenCancelsEveryJob) {
  const std::vector<core::SweepJob> jobs = small_grid();
  core::CancelToken token;
  token.cancel();  // fired before run(): nothing may start
  core::SweepRunner runner(small_config(), 2);
  runner.set_cancel_token(&token);
  const core::SweepReport report = runner.run(jobs);
  ASSERT_EQ(report.jobs.size(), jobs.size());
  EXPECT_EQ(report.cancelled_jobs, jobs.size());
  for (const core::SweepOutcome& j : report.jobs) {
    EXPECT_TRUE(j.cancelled);
    EXPECT_EQ(j.result.committed, 0u);  // never simulated
  }
}

TEST(SweepCancel, UnfiredTokenChangesNothing) {
  const std::vector<core::SweepJob> jobs = small_grid();
  const core::SweepRunner plain(small_config(), 2);
  const u64 expected = core::sweep_checksum(plain.run_results(jobs));
  core::CancelToken token;  // present but never fired
  core::SweepRunner runner(small_config(), 2);
  runner.set_cancel_token(&token);
  const core::SweepReport report = runner.run(jobs);
  EXPECT_EQ(report.cancelled_jobs, 0u);
  std::vector<core::RunResult> results;
  results.reserve(report.jobs.size());
  for (const core::SweepOutcome& j : report.jobs) results.push_back(j.result);
  EXPECT_EQ(core::sweep_checksum(results), expected);
}

TEST(SweepCancel, MidFlightCancelKeepsSurvivorsBitwiseIdentical) {
  // The cooperative contract: unstarted jobs report cancelled, jobs already
  // running finish normally, and every survivor is bitwise identical to the
  // uncancelled sweep's result at the same index.
  const std::vector<core::SweepJob> jobs = small_grid();
  const core::SweepRunner ref(small_config(), 1);
  const std::vector<core::RunResult> expect = ref.run_results(jobs);

  core::CancelToken token;
  core::SweepRunner runner(small_config(), 2);
  runner.set_cancel_token(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  const core::SweepReport report = runner.run(jobs);
  canceller.join();
  ASSERT_EQ(report.jobs.size(), jobs.size());
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (report.jobs[i].cancelled) {
      ++cancelled;
    } else {
      EXPECT_EQ(core::result_checksum(report.jobs[i].result), core::result_checksum(expect[i]))
          << "survivor " << i << " diverged from the uncancelled sweep";
    }
  }
  EXPECT_EQ(report.cancelled_jobs, cancelled);
}

TEST(SweepCancel, BatchModeCancelsWholeUnstartedChunks) {
  const std::vector<core::SweepJob> jobs = small_grid();
  core::CancelToken token;
  token.cancel();
  core::SweepRunner runner(small_config(), 2);
  runner.set_batch(4);
  runner.set_cancel_token(&token);
  const core::SweepReport report = runner.run(jobs);
  ASSERT_EQ(report.jobs.size(), jobs.size());
  EXPECT_EQ(report.cancelled_jobs, jobs.size());
}

TEST(ThreadPool, DefaultWorkerCountHonorsEnv) {
  // Not parallel-safe with other env-reading tests, but the suite runs
  // tests in one process sequentially.
  ASSERT_EQ(setenv("VASIM_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_worker_count(), 3u);
  ASSERT_EQ(unsetenv("VASIM_JOBS"), 0);
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
}

}  // namespace
}  // namespace vasim
