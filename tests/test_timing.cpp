// Unit tests for src/timing: voltage scaling, process variation, environment
// sensors, the per-PC path model and the fault oracle.
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.hpp"
#include "src/timing/fault_model.hpp"
#include "src/timing/path_model.hpp"
#include "src/timing/process_variation.hpp"
#include "src/timing/sensors.hpp"
#include "src/timing/voltage.hpp"

namespace vasim::timing {
namespace {

TEST(VoltageModel, NominalScaleIsOne) {
  VoltageModel vm;
  EXPECT_NEAR(vm.delay_scale(SupplyPoints::kNominal), 1.0, 1e-12);
}

TEST(VoltageModel, DelayGrowsAsSupplyDrops) {
  VoltageModel vm;
  const double s104 = vm.delay_scale(SupplyPoints::kLowFault);
  const double s097 = vm.delay_scale(SupplyPoints::kHighFault);
  EXPECT_GT(s104, 1.0);
  EXPECT_GT(s097, s104);
  // Alpha-power law magnitudes for Vth=0.3, alpha=1.3.
  EXPECT_NEAR(s104, 1.046, 0.005);
  EXPECT_NEAR(s097, 1.110, 0.005);
}

TEST(VoltageModel, EnergyScales) {
  VoltageModel vm;
  EXPECT_NEAR(vm.dynamic_energy_scale(1.10), 1.0, 1e-12);
  EXPECT_NEAR(vm.dynamic_energy_scale(0.97), (0.97 * 0.97) / (1.1 * 1.1), 1e-12);
  EXPECT_NEAR(vm.leakage_power_scale(0.97), 0.97 / 1.1, 1e-12);
}

TEST(VoltageModel, RejectsSubThresholdSupplies) {
  VoltageModel vm;
  EXPECT_THROW((void)vm.delay_scale(0.2), std::invalid_argument);
  EXPECT_THROW(VoltageModel(1.2, 1.3, 1.1), std::invalid_argument);
}

TEST(ProcessVariation, DeterministicPerGate) {
  ProcessVariation pv;
  EXPECT_DOUBLE_EQ(pv.delay_factor(1, 5), pv.delay_factor(1, 5));
  EXPECT_NE(pv.delay_factor(1, 5), pv.delay_factor(1, 6));
  EXPECT_NE(pv.delay_factor(1, 5), pv.delay_factor(2, 5));
}

TEST(ProcessVariation, ParamsMatchThreeSigmaSpec) {
  ProcessVariation pv;
  RunningStat l;
  for (u64 g = 0; g < 20000; ++g) l.add(pv.sample_params(0, g).dlength);
  // +/-20% at 3 sigma => sigma = 0.0667.
  EXPECT_NEAR(l.stddev(), 0.20 / 3.0, 0.002);
  EXPECT_NEAR(l.mean(), 0.0, 0.002);
}

TEST(ProcessVariation, DelayFactorSigmaMatchesAnalytic) {
  ProcessVariation pv;
  RunningStat s;
  for (u64 g = 0; g < 20000; ++g) s.add(pv.delay_factor(0, g));
  EXPECT_NEAR(s.mean(), 1.0, 0.005);
  EXPECT_NEAR(s.stddev(), pv.delay_factor_sigma(), 0.01);
}

TEST(SpatialVariation, MeanAndSigmaMatchBase) {
  SpatialConfig cfg;
  SpatialVariation sv(cfg);
  const ProcessVariation base(cfg.base);
  RunningStat s;
  const u64 total = 4096;
  for (u64 g = 0; g < total; ++g) s.add(sv.delay_factor(0, g, total));
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  EXPECT_NEAR(s.stddev(), base.delay_factor_sigma(), 0.25 * base.delay_factor_sigma());
}

TEST(SpatialVariation, NeighborsCorrelateMoreThanStrangers) {
  SpatialConfig cfg;
  cfg.systematic_fraction = 0.8;
  SpatialVariation sv(cfg);
  const u64 total = 4096;  // 64x64 pseudo-placement
  double near_diff = 0, far_diff = 0;
  int n = 0;
  for (u64 die = 0; die < 24; ++die) {
    for (u64 g = 100; g < 600; g += 7) {
      near_diff += std::abs(sv.delay_factor(die, g, total) - sv.delay_factor(die, g + 1, total));
      far_diff += std::abs(sv.delay_factor(die, g, total) - sv.delay_factor(die, g + 2048, total));
      ++n;
    }
  }
  EXPECT_LT(near_diff / n, far_diff / n)
      << "systematic field must make neighbors more alike than distant gates";
}

TEST(SpatialVariation, PureRandomHasNoCorrelation) {
  SpatialConfig cfg;
  cfg.systematic_fraction = 0.0;
  SpatialVariation sv(cfg);
  const u64 total = 4096;
  double near_diff = 0, far_diff = 0;
  int n = 0;
  for (u64 die = 0; die < 24; ++die) {
    for (u64 g = 100; g < 600; g += 7) {
      near_diff += std::abs(sv.delay_factor(die, g, total) - sv.delay_factor(die, g + 1, total));
      far_diff += std::abs(sv.delay_factor(die, g, total) - sv.delay_factor(die, g + 2048, total));
      ++n;
    }
  }
  EXPECT_NEAR(near_diff / n, far_diff / n, 0.15 * far_diff / n);
}

TEST(SpatialVariation, RejectsBadConfig) {
  SpatialConfig bad;
  bad.grid = 1;
  EXPECT_THROW(SpatialVariation{bad}, std::invalid_argument);
  bad.grid = 8;
  bad.systematic_fraction = 1.5;
  EXPECT_THROW(SpatialVariation{bad}, std::invalid_argument);
}

TEST(Environment, ModulationBounded) {
  Environment env;
  for (Cycle c = 0; c < 100000; c += 7) {
    const double m = env.modulation(c);
    EXPECT_GE(m, 1.0 - env.config().clamp);
    EXPECT_LE(m, 1.0 + env.config().clamp);
  }
}

TEST(Environment, ThermalWavePeriodic) {
  Environment env;
  const Cycle p = env.config().thermal_period;
  EXPECT_NEAR(env.thermal_component(100), env.thermal_component(100 + p), 1e-12);
  EXPECT_NEAR(env.thermal_component(0), 0.0, 1e-12);
}

TEST(Environment, SensorsThreshold) {
  Environment env;
  ThermalSensor ts(&env);
  VoltageSensor vs(&env);
  int hot = 0, droopy = 0;
  const int n = 20000;
  for (Cycle c = 0; c < static_cast<Cycle>(n); ++c) {
    hot += ts.hot(c);
    droopy += vs.droopy(c);
  }
  // Both components are symmetric around zero: ~half the time unfavorable.
  EXPECT_NEAR(hot / static_cast<double>(n), 0.5, 0.1);
  EXPECT_NEAR(droopy / static_cast<double>(n), 0.5, 0.1);
}

TEST(PathModel, DeterministicPerPc) {
  const VoltageModel vm;
  PathModelConfig cfg{123, 0.08, 0.02};
  const SensitizedPathModel m(cfg, vm);
  EXPECT_DOUBLE_EQ(m.path_factor(0x1000), m.path_factor(0x1000));
  EXPECT_LE(m.path_factor(0x1000), 0.97);
  EXPECT_GT(m.path_factor(0x1000), 0.0);
}

TEST(PathModel, StaticBandMassTracksTargets) {
  const VoltageModel vm;
  PathModelConfig cfg{99, 0.08, 0.02};
  const SensitizedPathModel m(cfg, vm);
  const double s_low = vm.delay_scale(SupplyPoints::kLowFault);
  const double s_high = vm.delay_scale(SupplyPoints::kHighFault);
  int low = 0, high = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Pc pc = 0x1000 + static_cast<Pc>(i) * 4;
    low += m.core_faulty(pc, s_low);
    high += m.core_faulty(pc, s_high);
  }
  // Static mass approximates the configured dynamic targets (band yield
  // correction keeps them the same order).
  EXPECT_NEAR(low / static_cast<double>(n), 0.02, 0.01);
  EXPECT_NEAR(high / static_cast<double>(n), 0.08, 0.02);
}

TEST(PathModel, NoFaultsAtNominal) {
  const VoltageModel vm;
  PathModelConfig cfg{7, 0.10, 0.03};
  const SensitizedPathModel m(cfg, vm);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_FALSE(m.core_faulty(0x1000 + static_cast<Pc>(i) * 4, 1.0));
  }
}

TEST(PathModel, FaultyStageSkewedToWakeupSelect) {
  const VoltageModel vm;
  PathModelConfig cfg{5, 0.08, 0.02};
  const SensitizedPathModel m(cfg, vm);
  int issue = 0, mem = 0, n = 20000;
  for (int i = 0; i < n; ++i) {
    const Pc pc = static_cast<Pc>(i) * 4;
    issue += m.faulty_stage(pc, FaultClass::kAluLike) == OooStage::kIssueSelect;
    mem += m.faulty_stage(pc, FaultClass::kMemLike) == OooStage::kMemory;
  }
  // Sec 3.3.1: wakeup/select dominates ALU-like faults.
  EXPECT_NEAR(issue / static_cast<double>(n), 0.70, 0.03);
  // Sec 3.3.4: LSQ CAM is the second hot spot for memory ops.
  EXPECT_NEAR(mem / static_cast<double>(n), 0.33, 0.03);
}

TEST(PathModel, MemClassNeverFaultsInExecute) {
  const VoltageModel vm;
  const SensitizedPathModel m(PathModelConfig{11, 0.08, 0.02}, vm);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(m.faulty_stage(static_cast<Pc>(i) * 4, FaultClass::kMemLike),
              OooStage::kExecute);
  }
}

TEST(PathModel, CommonalityInS1Range) {
  const VoltageModel vm;
  const SensitizedPathModel m(PathModelConfig{3, 0.08, 0.02}, vm);
  RunningStat s;
  for (int i = 0; i < 10000; ++i) s.add(m.commonality(static_cast<Pc>(i) * 4));
  // S1 reports 87-92% average commonality.
  EXPECT_NEAR(s.mean(), 0.90, 0.01);
  EXPECT_GE(s.min(), 0.75);
  EXPECT_LE(s.max(), 0.98);
}

TEST(PathModel, RejectsBadTargets) {
  const VoltageModel vm;
  EXPECT_THROW(SensitizedPathModel(PathModelConfig{1, 0.01, 0.05}, vm), std::invalid_argument);
}

TEST(FaultModel, DisabledAtNominalSupply) {
  const FaultModel fm(PathModelConfig{1, 0.08, 0.02}, SupplyPoints::kNominal);
  EXPECT_FALSE(fm.enabled());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(fm.query(static_cast<Pc>(i) * 4, FaultClass::kAluLike, i).faulty);
  }
}

class FaultModelRates : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FaultModelRates, RateTracksTarget) {
  const auto [vdd, p_low, p_high] = GetParam();
  const FaultModel fm(PathModelConfig{77, p_high, p_low}, vdd);
  int faults = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    faults += fm.query(0x1000 + static_cast<Pc>(i % 8000) * 4, FaultClass::kAluLike,
                       static_cast<Cycle>(i)).faulty;
  }
  const double target = vdd < 1.0 ? p_high : p_low;
  EXPECT_NEAR(faults / static_cast<double>(n), target, target * 0.5 + 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Supplies, FaultModelRates,
    ::testing::Values(std::make_tuple(1.04, 0.02, 0.08), std::make_tuple(0.97, 0.02, 0.08),
                      std::make_tuple(1.04, 0.015, 0.06), std::make_tuple(0.97, 0.015, 0.10),
                      std::make_tuple(1.04, 0.022, 0.09), std::make_tuple(0.97, 0.013, 0.055)));

TEST(FaultModel, CoreFaultyPCsRecur) {
  const FaultModel fm(PathModelConfig{13, 0.10, 0.03}, 0.97);
  // Find a core-faulty PC, then verify every instance faults except possibly
  // boundary modulation flips (core-faulty deep PCs never flip).
  for (int i = 0; i < 20000; ++i) {
    const Pc pc = 0x1000 + static_cast<Pc>(i) * 4;
    const FaultDecision d0 = fm.query(pc, FaultClass::kAluLike, 0);
    if (!d0.core_faulty || d0.path_factor < 0.93) continue;
    int recur = 0;
    for (Cycle c = 0; c < 1000; ++c) recur += fm.query(pc, FaultClass::kAluLike, c * 37).faulty;
    EXPECT_GT(recur, 800) << "core-faulty PC should fault on most instances";
    return;
  }
  FAIL() << "no core-faulty PC found";
}

TEST(FaultModel, StageStableAcrossInstances) {
  const FaultModel fm(PathModelConfig{17, 0.10, 0.03}, 0.97);
  for (int i = 0; i < 100; ++i) {
    const Pc pc = 0x2000 + static_cast<Pc>(i) * 4;
    const OooStage s = fm.query(pc, FaultClass::kAluLike, 1).stage;
    for (Cycle c = 2; c < 50; ++c) {
      EXPECT_EQ(fm.query(pc, FaultClass::kAluLike, c).stage, s);
    }
  }
}

}  // namespace
}  // namespace vasim::timing
