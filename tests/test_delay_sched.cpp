// Delay-tracking scheduler kernel (SchedKernel::kDelayQueue) test suite.
//
// The kernel contract is *architectural-stream identity*: for any scheme x
// benchmark x supply point, both scheduler kernels must commit exactly the
// same instruction stream (pc, op, effective address, branch outcome and
// target, in the same commit order).  Cycle-level timing legitimately
// differs -- the delay queue visits ready instructions in readiness order,
// not age order -- so the cycle-accurate trajectory is pinned separately by
// its own golden fixture (tests/golden/delay_sched_golden.txt), recorded
// with:
//   VASIM_GOLDEN_RECORD=1 ./build/tests/test_delay_sched
//
// Every identity run carries the semantics checker, so the delay kernel is
// also validated cycle by cycle against the kernel-independent scheduling
// rules (eligibility, pass class, LSQ spacing, store-to-load ordering).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/semantics.hpp"
#include "src/common/rng.hpp"
#include "src/core/job_context.hpp"
#include "src/core/runner.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/snap/io.hpp"
#include "src/timing/voltage.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

// ---- committed architectural stream hash -------------------------------------

/// Hashes the committed architectural stream: for every commit, the fetched
/// instruction's (pc, op, mem_addr, taken, next_pc) folded in commit order
/// (FNV-1a over the fields).  Wrong-path and squashed work never commits, so
/// two runs with equal hashes and counts executed the same program.
class ArchStreamHash final : public cpu::PipelineObserver {
 public:
  void on_fetch(SeqNum seq, const isa::DynInst& di) override { inflight_[seq] = di; }
  void on_commit(SeqNum seq) override {
    const auto it = inflight_.find(seq);
    if (it == inflight_.end()) {
      ++missing_;
      return;
    }
    const isa::DynInst& d = it->second;
    fold(d.pc);
    fold(static_cast<u64>(d.op));
    fold(d.mem_addr);
    fold(d.taken ? 1 : 0);
    fold(d.next_pc);
    ++commits_;
    inflight_.erase(it);
  }
  void on_squash(SeqNum first, SeqNum last) override {
    for (SeqNum s = first; s <= last; ++s) inflight_.erase(s);
  }

  [[nodiscard]] u64 hash() const { return h_; }
  [[nodiscard]] u64 commits() const { return commits_; }
  [[nodiscard]] u64 missing() const { return missing_; }

 private:
  void fold(u64 v) {
    h_ ^= v;
    h_ *= 1099511628211ULL;
  }
  u64 h_ = 1469598103934665603ULL;
  u64 commits_ = 0;
  u64 missing_ = 0;  ///< commits with no recorded fetch (must stay zero)
  std::unordered_map<SeqNum, isa::DynInst> inflight_;
};

struct StreamResult {
  u64 hash = 0;
  u64 commits = 0;
};

/// Runs one (kernel, bench, scheme, vdd) job with the semantics checker and
/// the stream hasher attached and returns the committed-stream digest.
StreamResult run_stream(cpu::SchedKernel kernel, const std::string& bench,
                        const std::optional<cpu::SchemeConfig>& scheme, double vdd,
                        u64 instructions, bool wrong_path = false) {
  core::RunnerConfig rc;
  rc.instructions = instructions;
  rc.warmup = 0;  // hash the stream from the first commit
  rc.check_semantics = true;
  rc.core.sched_kernel = kernel;
  rc.core.model_wrong_path = wrong_path;
  core::detail::JobContext ctx(rc, workload::spec2006_profile(bench), scheme, vdd);
  ArchStreamHash hash;
  ctx.pipe->add_observer(&hash);
  (void)ctx.pipe->run(rc.instructions, rc.warmup);
  EXPECT_TRUE(ctx.checker->ok()) << ctx.checker->report();
  EXPECT_GT(ctx.checker->checks(), 0u);
  EXPECT_EQ(hash.missing(), 0u) << "commit without a recorded fetch";
  return {hash.hash(), hash.commits()};
}

std::string label(const std::string& bench, const std::optional<cpu::SchemeConfig>& scheme,
                  double vdd) {
  return bench + "/" + (scheme ? scheme->name : "fault-free") + "@" + std::to_string(vdd);
}

// ---- cross-kernel architectural identity -------------------------------------

TEST(DelayQueueIdentity, GridCommitsIdenticalArchitecturalStreams) {
  const std::vector<std::string> benches = {"bzip2", "mcf", "sjeng"};
  constexpr u64 kInstr = 8'000;
  for (const std::string& b : benches) {
    // Fault-free baseline at nominal supply.
    {
      SCOPED_TRACE(label(b, std::nullopt, timing::SupplyPoints::kNominal));
      const StreamResult iw = run_stream(cpu::SchedKernel::kIssueWindow, b, std::nullopt,
                                         timing::SupplyPoints::kNominal, kInstr);
      const StreamResult dq = run_stream(cpu::SchedKernel::kDelayQueue, b, std::nullopt,
                                         timing::SupplyPoints::kNominal, kInstr);
      EXPECT_EQ(iw.commits, dq.commits);
      EXPECT_EQ(iw.hash, dq.hash);
    }
    // Every comparative scheme at both faulty supplies.
    for (const double vdd : {timing::SupplyPoints::kHighFault, timing::SupplyPoints::kLowFault}) {
      for (const cpu::SchemeConfig& s : core::comparative_schemes()) {
        SCOPED_TRACE(label(b, s, vdd));
        const StreamResult iw = run_stream(cpu::SchedKernel::kIssueWindow, b, s, vdd, kInstr);
        const StreamResult dq = run_stream(cpu::SchedKernel::kDelayQueue, b, s, vdd, kInstr);
        EXPECT_EQ(iw.commits, dq.commits);
        EXPECT_EQ(iw.hash, dq.hash);
      }
    }
  }
}

TEST(DelayQueueIdentity, WrongPathAndSquashRefetchStreamsMatch) {
  // Wrong-path fetch synthesizes squashed work and squash-refetch recycles
  // sequence numbers -- the paths where a kernel bug would let non-program
  // instructions commit or drop program ones.
  constexpr u64 kInstr = 6'000;
  {
    SCOPED_TRACE("wrong-path razor");
    const auto s = cpu::scheme_razor();
    const StreamResult iw =
        run_stream(cpu::SchedKernel::kIssueWindow, "bzip2", s, 0.97, kInstr, true);
    const StreamResult dq =
        run_stream(cpu::SchedKernel::kDelayQueue, "bzip2", s, 0.97, kInstr, true);
    EXPECT_EQ(iw.commits, dq.commits);
    EXPECT_EQ(iw.hash, dq.hash);
  }
  {
    SCOPED_TRACE("squash-refetch abs");
    cpu::SchemeConfig s = cpu::scheme_abs();
    s.recovery = cpu::RecoveryModel::kSquashRefetch;
    const StreamResult iw = run_stream(cpu::SchedKernel::kIssueWindow, "gcc", s, 0.97, kInstr);
    const StreamResult dq = run_stream(cpu::SchedKernel::kDelayQueue, "gcc", s, 0.97, kInstr);
    EXPECT_EQ(iw.commits, dq.commits);
    EXPECT_EQ(iw.hash, dq.hash);
  }
}

class DelayQueueFuzzIdentity : public ::testing::TestWithParam<u64> {};

TEST_P(DelayQueueFuzzIdentity, RandomMachineShapesCommitIdenticalStreams) {
  Pcg32 rng(GetParam(), 0xde1a0ULL);

  cpu::CoreConfig shape;
  shape.issue_width = 1 + static_cast<int>(rng.next_below(8));
  shape.fetch_width = shape.issue_width;
  shape.dispatch_width = shape.issue_width;
  shape.commit_width = shape.issue_width;
  shape.rob_entries = 16 << rng.next_below(4);  // 16..128
  shape.iq_entries = std::min(shape.rob_entries, 8 << static_cast<int>(rng.next_below(3)));
  shape.lq_entries = 8 + static_cast<int>(rng.next_below(24));
  shape.sq_entries = 8 + static_cast<int>(rng.next_below(24));
  shape.model_wrong_path = rng.next_bool(0.3);

  const auto profiles = workload::spec2006_profiles();
  const auto prof = profiles[rng.next_below(static_cast<u32>(profiles.size()))];
  const auto schemes = core::comparative_schemes();
  cpu::SchemeConfig scheme = schemes[rng.next_below(static_cast<u32>(schemes.size()))];
  if (rng.next_bool(0.3)) scheme.recovery = cpu::RecoveryModel::kSquashRefetch;
  const double vdd = rng.next_bool(0.5) ? 0.97 : 1.04;

  const auto run_one = [&](cpu::SchedKernel kernel) {
    core::RunnerConfig rc;
    rc.instructions = 5'000;
    rc.warmup = 0;
    rc.check_semantics = true;
    rc.core = shape;
    rc.core.sched_kernel = kernel;
    core::detail::JobContext ctx(rc, prof, scheme, vdd);
    ArchStreamHash hash;
    ctx.pipe->add_observer(&hash);
    (void)ctx.pipe->run(rc.instructions, rc.warmup);
    EXPECT_TRUE(ctx.checker->ok()) << ctx.checker->report();
    EXPECT_EQ(hash.missing(), 0u);
    return StreamResult{hash.hash(), hash.commits()};
  };
  const StreamResult iw = run_one(cpu::SchedKernel::kIssueWindow);
  const StreamResult dq = run_one(cpu::SchedKernel::kDelayQueue);
  EXPECT_EQ(iw.commits, dq.commits);
  EXPECT_EQ(iw.hash, dq.hash);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DelayQueueFuzzIdentity, ::testing::Range<u64>(1, 9));

// ---- snapshot round trip -----------------------------------------------------

core::RunnerConfig delay_snap_config() {
  core::RunnerConfig rc;
  rc.instructions = 3'000;
  rc.warmup = 1'500;
  rc.check_semantics = true;
  rc.commit_trail_stride = 250;
  rc.core.sched_kernel = cpu::SchedKernel::kDelayQueue;
  return rc;
}

void expect_bitwise_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.cpi.slots, b.cpi.slots);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  EXPECT_EQ(a.commit_trail, b.commit_trail);
  EXPECT_EQ(a.checker_checks, b.checker_checks);
}

TEST(DelayQueueSnapshot, WarmupCaptureResumesBitIdentically) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  const core::ExperimentRunner runner(delay_snap_config());
  const core::RunResult straight = runner.run(prof, *scheme, 0.97);

  const core::RunSnapshot snap =
      runner.capture(prof, scheme, 0.97, delay_snap_config().warmup);
  EXPECT_EQ(snap.meta().core.sched_kernel, cpu::SchedKernel::kDelayQueue);
  expect_bitwise_identical(runner.run_from(snap), straight);
}

TEST(DelayQueueSnapshot, FaultFreeCaptureResumesBitIdentically) {
  const auto prof = workload::spec2006_profile("sjeng");
  const core::ExperimentRunner runner(delay_snap_config());
  const core::RunResult straight = runner.run_fault_free(prof, 0.97);
  const core::RunSnapshot snap = runner.capture(prof, std::nullopt, 0.97, 800);
  expect_bitwise_identical(runner.run_from(snap), straight);
}

TEST(DelayQueueSnapshot, KernelIsPartOfTheWarmupKey) {
  // A warmup captured under one kernel must never seed a run under the
  // other: the kernels' cycle-level trajectories differ, so sharing would
  // silently mix timing models.  The kernel field folds into the warmup key
  // through put_core_config.
  const core::RunnerConfig dq_cfg = delay_snap_config();
  core::RunnerConfig iw_cfg = dq_cfg;
  iw_cfg.core.sched_kernel = cpu::SchedKernel::kIssueWindow;
  const auto prof = workload::spec2006_profile("gcc");
  const std::optional<cpu::SchemeConfig> none;
  EXPECT_NE(core::warmup_key(dq_cfg, prof, none, 0.97),
            core::warmup_key(iw_cfg, prof, none, 0.97));

  const core::RunSnapshot snap =
      core::ExperimentRunner(dq_cfg).capture(prof, std::nullopt, 0.97, 800);
  EXPECT_THROW((void)core::ExperimentRunner(iw_cfg).run_from(snap), snap::SnapshotError);
}

// ---- config validation (named errors) ----------------------------------------

void expect_invalid(const cpu::CoreConfig& cfg, const std::string& needle) {
  try {
    cpu::validate_core_config(cfg);
    FAIL() << "expected invalid_argument mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(CoreConfigValidation, NamedErrorsForEachConstraint) {
  cpu::CoreConfig ok;
  EXPECT_NO_THROW(cpu::validate_core_config(ok));

  cpu::CoreConfig iq_pow2 = ok;
  iq_pow2.iq_entries = 48;
  expect_invalid(iq_pow2, "power of two");

  // The queue count is a dispatch gate, not the window size: an iq gate
  // larger than the ROB (or a ROB smaller than the default iq) is legal and
  // simply never binds.
  cpu::CoreConfig iq_over_rob = ok;
  iq_over_rob.iq_entries = 256;
  EXPECT_NO_THROW(cpu::validate_core_config(iq_over_rob));
  cpu::CoreConfig small_rob = ok;
  small_rob.rob_entries = 16;
  EXPECT_NO_THROW(cpu::validate_core_config(small_rob));

  cpu::CoreConfig rob_zero = ok;
  rob_zero.rob_entries = 0;
  expect_invalid(rob_zero, "rob_entries out of range");

  cpu::CoreConfig rob_huge = ok;
  rob_huge.rob_entries = 1 << 20;
  expect_invalid(rob_huge, "rob_entries out of range");

  cpu::CoreConfig lq_zero = ok;
  lq_zero.lq_entries = 0;
  expect_invalid(lq_zero, "must be positive");

  cpu::CoreConfig phys_small = ok;
  phys_small.phys_regs = 33;
  expect_invalid(phys_small, "arch regs + dispatch_width");
}

TEST(CoreConfigValidation, PipelineConstructorEnforcesValidation) {
  cpu::CoreConfig bad;
  bad.iq_entries = 48;
  workload::TraceGenerator gen(workload::spec2006_profile("bzip2"));
  EXPECT_THROW(cpu::Pipeline(bad, cpu::scheme_fault_free(), &gen, nullptr, nullptr),
               std::invalid_argument);
}

TEST(CoreConfigValidation, KernelNamesRoundTrip) {
  cpu::SchedKernel k = cpu::SchedKernel::kIssueWindow;
  EXPECT_TRUE(cpu::sched_kernel_from_string("delay-queue", k));
  EXPECT_EQ(k, cpu::SchedKernel::kDelayQueue);
  EXPECT_STREQ(cpu::to_string(k), "delay-queue");
  EXPECT_TRUE(cpu::sched_kernel_from_string("issue-window", k));
  EXPECT_EQ(k, cpu::SchedKernel::kIssueWindow);
  EXPECT_STREQ(cpu::to_string(k), "issue-window");
  EXPECT_FALSE(cpu::sched_kernel_from_string("bogus", k));
}

// ---- cycle-accurate golden fixture -------------------------------------------

std::string fixture_path() {
  std::string dir(__FILE__);
  dir.erase(dir.find_last_of('/'));
  return dir + "/golden/delay_sched_golden.txt";
}

core::RunnerConfig delay_golden_config() {
  core::RunnerConfig cfg;
  cfg.instructions = 6'000;
  cfg.warmup = 3'000;
  cfg.check_semantics = true;
  cfg.commit_trail_stride = 500;
  cfg.core.sched_kernel = cpu::SchedKernel::kDelayQueue;
  return cfg;
}

std::vector<core::SweepJob> delay_golden_jobs() {
  std::vector<core::SweepJob> jobs;
  const std::vector<std::string> benches = {"bzip2", "gcc", "sjeng"};
  for (const std::string& b : benches) {
    const workload::BenchmarkProfile prof = workload::spec2006_profile(b);
    jobs.push_back({prof, std::nullopt, timing::SupplyPoints::kNominal, std::nullopt});
    for (const double vdd : {timing::SupplyPoints::kHighFault, timing::SupplyPoints::kLowFault}) {
      for (const cpu::SchemeConfig& s : core::comparative_schemes()) {
        jobs.push_back({prof, s, vdd, std::nullopt});
      }
    }
  }
  // IQ-512 shape: the delay queue's headline operating point (the bucket pop
  // replaces a 512-entry masked scan), with ROB/registers scaled to keep the
  // larger queue honest.
  {
    core::RunnerConfig big = delay_golden_config();
    big.core.iq_entries = 512;
    big.core.rob_entries = 512;
    big.core.phys_regs = 576;
    big.core.lq_entries = 128;
    big.core.sq_entries = 128;
    jobs.push_back({workload::spec2006_profile("mcf"), cpu::scheme_abs(),
                    timing::SupplyPoints::kHighFault, big});
    jobs.push_back({workload::spec2006_profile("mcf"), std::nullopt,
                    timing::SupplyPoints::kNominal, big});
  }
  return jobs;
}

u64 bits_of(double v) {
  u64 b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

struct GoldenRow {
  std::string bench;
  std::string scheme;
  u64 vdd_bits = 0;
  u64 committed = 0;
  u64 cycles = 0;
  u64 ipc_bits = 0;
  std::vector<u64> cpi;
  std::vector<u64> trail;
};

GoldenRow row_of(const core::RunResult& r) {
  GoldenRow row;
  row.bench = r.benchmark;
  row.scheme = r.scheme;
  row.vdd_bits = bits_of(r.vdd);
  row.committed = r.committed;
  row.cycles = r.cycles;
  row.ipc_bits = bits_of(r.ipc);
  for (int i = 0; i < obs::kNumCpiCauses; ++i) {
    row.cpi.push_back(r.cpi.slots[static_cast<std::size_t>(i)]);
  }
  for (const Cycle c : r.commit_trail) row.trail.push_back(c);
  return row;
}

std::string trail_divergence(const GoldenRow& got, const GoldenRow& want, u64 stride) {
  const std::size_t n = std::min(got.trail.size(), want.trail.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (got.trail[i] != want.trail[i]) {
      return "first divergence at commit ~" + std::to_string((i + 1) * stride) +
             " (trail sample " + std::to_string(i) + "): cycle " +
             std::to_string(got.trail[i]) + " vs golden " + std::to_string(want.trail[i]);
    }
  }
  if (got.trail.size() != want.trail.size()) {
    return "trail length changed: " + std::to_string(got.trail.size()) + " vs golden " +
           std::to_string(want.trail.size());
  }
  return "trails identical (divergence after the last sampled commit)";
}

TEST(DelayQueueGolden, GridMatchesRecordedFixtures) {
  const std::vector<core::SweepJob> jobs = delay_golden_jobs();
  const core::SweepRunner runner(delay_golden_config(), 1);
  const std::vector<core::RunResult> results = runner.run_results(jobs);
  const u64 checksum = core::sweep_checksum(results);

  const char* record = std::getenv("VASIM_GOLDEN_RECORD");
  if (record != nullptr && std::strcmp(record, "0") != 0) {
    std::ofstream out(fixture_path());
    ASSERT_TRUE(out) << "cannot write " << fixture_path();
    out << "# bench scheme vdd_bits committed cycles ipc_bits cpi[" << obs::kNumCpiCauses
        << "] trail <n> <cycle>*\n";
    for (const core::RunResult& r : results) {
      const GoldenRow row = row_of(r);
      out << row.bench << ' ' << row.scheme << ' ' << row.vdd_bits << ' ' << row.committed
          << ' ' << row.cycles << ' ' << row.ipc_bits;
      for (const u64 s : row.cpi) out << ' ' << s;
      out << " trail " << row.trail.size();
      for (const u64 c : row.trail) out << ' ' << c;
      out << '\n';
    }
    out << "checksum " << checksum << '\n';
    GTEST_SKIP() << "recorded " << results.size() << " golden rows to " << fixture_path();
  }

  std::ifstream in(fixture_path());
  ASSERT_TRUE(in) << "missing fixture " << fixture_path()
                  << " (record with VASIM_GOLDEN_RECORD=1)";
  std::vector<GoldenRow> expected;
  u64 expected_checksum = 0;
  bool have_checksum = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "checksum") {
      ls >> expected_checksum;
      have_checksum = true;
      continue;
    }
    GoldenRow row;
    row.bench = first;
    ls >> row.scheme >> row.vdd_bits >> row.committed >> row.cycles >> row.ipc_bits;
    row.cpi.resize(static_cast<std::size_t>(obs::kNumCpiCauses));
    for (u64& s : row.cpi) ls >> s;
    std::string marker;
    std::size_t trail_len = 0;
    ls >> marker >> trail_len;
    ASSERT_EQ(marker, "trail") << "malformed fixture line: " << line;
    row.trail.resize(trail_len);
    for (u64& c : row.trail) ls >> c;
    ASSERT_FALSE(ls.fail()) << "malformed fixture line: " << line;
    expected.push_back(std::move(row));
  }
  ASSERT_TRUE(have_checksum) << "fixture has no checksum line";
  ASSERT_EQ(expected.size(), results.size()) << "grid shape changed; re-record fixtures";

  const u64 stride = delay_golden_config().commit_trail_stride;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GoldenRow got = row_of(results[i]);
    const GoldenRow& want = expected[i];
    SCOPED_TRACE("job " + std::to_string(i) + ": " + want.bench + "/" + want.scheme);
    EXPECT_GT(results[i].checker_checks, 0u);
    EXPECT_EQ(got.bench, want.bench);
    EXPECT_EQ(got.scheme, want.scheme);
    EXPECT_EQ(got.vdd_bits, want.vdd_bits);
    EXPECT_EQ(got.committed, want.committed);
    EXPECT_EQ(got.cycles, want.cycles) << trail_divergence(got, want, stride);
    EXPECT_EQ(got.ipc_bits, want.ipc_bits);
    EXPECT_EQ(got.cpi, want.cpi) << trail_divergence(got, want, stride);
    EXPECT_EQ(got.trail, want.trail) << trail_divergence(got, want, stride);
  }
  EXPECT_EQ(checksum, expected_checksum);
}

}  // namespace
