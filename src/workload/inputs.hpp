// Input-vector generation for the gate-level commonality study (Figure 7).
//
// S1.2 collects, per static PC, the component input vectors of many dynamic
// instances (plus the preceding instruction's inputs, which set the internal
// logic state).  We synthesize those vectors per SPEC2000-like profile: each
// PC has a stable base pattern; across instances, most bits repeat with the
// profile's locality probability while one byte-wide field behaves like a
// loop counter (the array-walk behaviour S1.2.2 describes for AGEN).
#ifndef VASIM_WORKLOAD_INPUTS_HPP
#define VASIM_WORKLOAD_INPUTS_HPP

#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::workload {

/// Generates (preceding, current) input-vector pairs for one component.
class ComponentInputGen {
 public:
  ComponentInputGen(const Spec2000Profile& profile, int input_width)
      : profile_(profile), width_(input_width) {}

  /// Inputs of dynamic instance `idx` of static `pc`: the pair is
  /// (preceding-instruction inputs, this instance's inputs).
  [[nodiscard]] std::pair<std::vector<u8>, std::vector<u8>> instance(Pc pc, int idx) const;

  /// A set of `count` instances of `pc`, ready for measure_commonality().
  [[nodiscard]] std::vector<std::pair<std::vector<u8>, std::vector<u8>>> instances(
      Pc pc, int count) const;

  [[nodiscard]] int width() const { return width_; }

 private:
  [[nodiscard]] std::vector<u8> vector_for(u64 salt, Pc pc, int idx, bool walking) const;

  Spec2000Profile profile_;
  int width_;
};

}  // namespace vasim::workload

#endif  // VASIM_WORKLOAD_INPUTS_HPP
