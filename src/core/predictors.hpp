// The two ancestor predictors the TEP combines (Section 2.1.1):
//
//  * MostRecentEntryPredictor -- Xin & Joseph's MRE [13]: a tagged table
//    remembering whether the most recent dynamic instance of a PC violated
//    timing; predicts a violation whenever the last one faulted.
//  * TimingViolationPredictor -- Roy & Chakraborty's TVP [12]: an untagged
//    PC-indexed table of 2-bit saturating counters, no branch history.
//
// Both implement the same pipeline-facing interface as the TEP, so
// bench_predictors can compare coverage, false positives and the resulting
// ABS overhead across all three designs.
#ifndef VASIM_CORE_PREDICTORS_HPP
#define VASIM_CORE_PREDICTORS_HPP

#include <vector>

#include "src/cpu/hooks.hpp"
#include "src/snap/io.hpp"

namespace vasim::core {

/// MRE: tag + last-outcome bit + faulty-stage field per entry.
class MostRecentEntryPredictor final : public cpu::FaultPredictor {
 public:
  explicit MostRecentEntryPredictor(int entries = 4096);

  cpu::FaultPrediction predict(Pc pc, u64 history, Cycle now) override;
  void train(Pc pc, u64 history, bool faulty, timing::OooStage stage) override;
  void mark_critical(Pc pc, u64 history, bool critical) override;

  [[nodiscard]] u64 storage_bits() const;

  void save_state(snap::Writer& w) const {
    w.put_u64(table_.size());
    for (const Entry& e : table_) {
      w.put_u16(e.tag);
      w.put_bool(e.valid);
      w.put_bool(e.last_faulty);
      w.put_u8(e.stage);
    }
  }
  void restore_state(snap::Reader& r) {
    if (r.get_u64() != table_.size()) throw snap::SnapshotError("mre table size mismatch");
    for (Entry& e : table_) {
      e.tag = r.get_u16();
      e.valid = r.get_bool();
      e.last_faulty = r.get_bool();
      e.stage = r.get_u8();
    }
  }

 private:
  struct Entry {
    u16 tag = 0;
    bool valid = false;
    bool last_faulty = false;
    u8 stage = 0;
  };
  [[nodiscard]] std::size_t index_of(Pc pc) const;
  std::vector<Entry> table_;
};

/// TVP: untagged 2-bit saturating counters + stage field, indexed by PC.
class TimingViolationPredictor final : public cpu::FaultPredictor {
 public:
  explicit TimingViolationPredictor(int entries = 4096);

  cpu::FaultPrediction predict(Pc pc, u64 history, Cycle now) override;
  void train(Pc pc, u64 history, bool faulty, timing::OooStage stage) override;
  void mark_critical(Pc pc, u64 history, bool critical) override;

  [[nodiscard]] u64 storage_bits() const;

  void save_state(snap::Writer& w) const {
    w.put_u64(table_.size());
    for (const Entry& e : table_) {
      w.put_u8(e.counter);
      w.put_u8(e.stage);
    }
  }
  void restore_state(snap::Reader& r) {
    if (r.get_u64() != table_.size()) throw snap::SnapshotError("tvp table size mismatch");
    for (Entry& e : table_) {
      e.counter = r.get_u8();
      e.stage = r.get_u8();
    }
  }

 private:
  struct Entry {
    u8 counter = 0;
    u8 stage = 0;
  };
  [[nodiscard]] std::size_t index_of(Pc pc) const;
  std::vector<Entry> table_;
};

}  // namespace vasim::core

#endif  // VASIM_CORE_PREDICTORS_HPP
