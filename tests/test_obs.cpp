// Tests for the observability layer: the zero-lookup metrics registry, the
// CPI-stack cycle-accounting invariant, and the Chrome-trace JSON writers.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/sweep.hpp"
#include "src/cpu/observer.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/trace.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"
#include "tests/json_util.hpp"

namespace vasim {
namespace {

using testutil::JsonParser;
using testutil::count_substr;

// ---- Registry --------------------------------------------------------------

TEST(Registry, InterningIsIdempotent) {
  obs::Registry reg;
  obs::Counter a = reg.counter("ev.broadcast");
  obs::Counter b = reg.counter("ev.broadcast");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u) << "same name must alias the same storage";
  EXPECT_EQ(reg.counter_value("ev.broadcast"), 7u);
  EXPECT_EQ(reg.num_counters(), 1u);
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  const obs::Counter invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(a.valid());
}

TEST(Registry, ExportSkipsZeroCountersAndAddsIntoExisting) {
  obs::Registry reg;
  obs::Counter hot = reg.counter("ev.commit");
  (void)reg.counter("ev.never_fired");
  hot.inc(42);

  StatSet s;
  s.inc("ev.commit", 8);  // pre-existing count must accumulate, not reset
  reg.export_to(s);
  EXPECT_EQ(s.count("ev.commit"), 50u);
  EXPECT_EQ(s.counters().count("ev.never_fired"), 0u)
      << "zero counters keep create-on-first-increment semantics";
}

TEST(Registry, GaugeAndHistogramExport) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("pred.accuracy");
  g.set(0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);

  Histogram* h = reg.histogram("lat.issue", 0.0, 10.0, 10);
  EXPECT_EQ(h, reg.histogram("lat.issue", 99.0, 100.0, 3))
      << "existing name wins; geometry args ignored";
  (void)reg.histogram("lat.empty", 0.0, 1.0, 2);
  h->add(2.0);
  h->add(4.0);

  StatSet s;
  reg.export_to(s);
  EXPECT_DOUBLE_EQ(s.scalar("pred.accuracy"), 0.75);
  EXPECT_DOUBLE_EQ(s.scalar("lat.issue.mean"), 3.0);
  EXPECT_EQ(s.scalars().count("lat.empty.mean"), 0u) << "empty histograms not exported";
}

TEST(Registry, HistogramQuantileExportPinsKnownDistribution) {
  // 100 samples over [0, 10) in 10 buckets: 30 at 2.0, 50 at 5.0, 20 at 9.0.
  // Linear interpolation inside the holding bucket gives exact pinnable
  // quantiles: p50 -> rank 50 is 20/50 into [5,6) = 5.4; p95 -> rank 95 is
  // 15/20 into [9,10) = 9.75; p99 -> 19/20 into [9,10) = 9.95.
  obs::Registry reg;
  Histogram* h = reg.histogram("lat.replay", 0.0, 10.0, 10);
  for (int i = 0; i < 30; ++i) h->add(2.0);
  for (int i = 0; i < 50; ++i) h->add(5.0);
  for (int i = 0; i < 20; ++i) h->add(9.0);

  StatSet s;
  reg.export_to(s);
  EXPECT_DOUBLE_EQ(s.scalar("lat.replay.p50"), 5.4);
  EXPECT_DOUBLE_EQ(s.scalar("lat.replay.p95"), 9.75);
  EXPECT_DOUBLE_EQ(s.scalar("lat.replay.p99"), 9.95);
  EXPECT_DOUBLE_EQ(s.scalar("lat.replay.mean"), (30 * 2.0 + 50 * 5.0 + 20 * 9.0) / 100.0);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  obs::Registry reg;
  obs::Counter c = reg.counter("ev.x");
  obs::Gauge g = reg.gauge("sc.y");
  c.inc(5);
  g.set(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.inc();
  EXPECT_EQ(reg.counter_value("ev.x"), 1u) << "handle still targets live storage";
}

// ---- CPI stack -------------------------------------------------------------

TEST(CpiStack, CounterNamesRoundTripThroughStats) {
  obs::CpiStack stack;
  stack[obs::CpiCause::kBase] = 100;
  stack[obs::CpiCause::kMemory] = 40;
  stack[obs::CpiCause::kReplay] = 7;
  StatSet s;
  for (int c = 0; c < obs::kNumCpiCauses; ++c) {
    const auto cause = static_cast<obs::CpiCause>(c);
    if (stack[cause] != 0) s.inc(obs::cpi_counter_name(cause), stack[cause]);
  }
  const obs::CpiStack back = obs::CpiStack::from_stats(s);
  EXPECT_EQ(back.slots, stack.slots);
  EXPECT_EQ(back.total(), 147u);
  EXPECT_EQ(back.lost(), 47u);
  EXPECT_DOUBLE_EQ(back.cpi_of(obs::CpiCause::kMemory, 4, 10), 1.0);
}

// The tentpole invariant: every commit slot of every cycle is attributed to
// exactly one cause, for every scheme x benchmark x supply cell.
TEST(CpiStack, InvariantHoldsAcrossSweepGrid) {
  core::RunnerConfig rc;
  rc.instructions = 3'000;
  rc.warmup = 1'000;
  const int width = rc.core.commit_width;

  std::vector<core::SweepJob> jobs;
  for (const char* bench : {"bzip2", "gobmk"}) {
    const auto prof = workload::spec2006_profile(bench);
    for (const double vdd : {timing::SupplyPoints::kLowFault, timing::SupplyPoints::kHighFault}) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      for (const auto& scheme : core::comparative_schemes()) {
        jobs.push_back({prof, scheme, vdd, std::nullopt});
      }
    }
  }
  const core::SweepRunner runner(rc, 2);
  const std::vector<core::RunResult> results = runner.run_results(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  for (const core::RunResult& r : results) {
    const std::string cell = r.benchmark + "/" + r.scheme + "@" + std::to_string(r.vdd);
    EXPECT_EQ(r.cpi.total(), r.cycles * static_cast<u64>(width))
        << "slot accounting leaked in " << cell;
    EXPECT_GE(r.cpi[obs::CpiCause::kBase], r.committed)
        << "every commit is a base slot in " << cell;
    EXPECT_EQ(obs::CpiStack::from_stats(r.stats).slots, r.cpi.slots)
        << "cpi.* counters out of sync with RunResult.cpi in " << cell;
    // Scheme signatures at the high-fault supply: Razor pays in replays,
    // Error Padding in global stall cycles.
    if (r.vdd == timing::SupplyPoints::kHighFault) {
      if (r.scheme == "razor") {
        EXPECT_GT(r.cpi[obs::CpiCause::kReplay], 0u) << cell;
      }
      if (r.scheme == "ep") {
        EXPECT_GT(r.cpi[obs::CpiCause::kEpStall], 0u) << cell;
      }
    }
    if (r.scheme == "fault-free") {
      EXPECT_EQ(r.cpi[obs::CpiCause::kReplay], 0u) << cell;
      EXPECT_EQ(r.cpi[obs::CpiCause::kEpStall], 0u) << cell;
      EXPECT_EQ(r.cpi[obs::CpiCause::kSquashRefetch], 0u) << cell;
    }
  }
}

// ---- Chrome trace JSON -----------------------------------------------------

TEST(ChromeTrace, SweepTraceIsValidJsonWithOneSpanPerJob) {
  core::RunnerConfig rc;
  rc.instructions = 2'000;
  rc.warmup = 500;
  const auto prof = workload::spec2006_profile("bzip2");
  std::vector<core::SweepJob> jobs;
  jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
  for (const auto& scheme : core::comparative_schemes()) {
    jobs.push_back({prof, scheme, 0.97, std::nullopt});
  }
  const core::SweepRunner runner(rc, 2);
  const core::SweepReport report = runner.run(jobs);

  std::ostringstream os;
  core::write_chrome_trace(os, report);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).parse()) << "sweep trace must be valid JSON";
  EXPECT_EQ(count_substr(json, "\"ph\": \"X\""), jobs.size()) << "one complete span per job";
  EXPECT_NE(json.find("\"name\": \"vasim sweep\""), std::string::npos);

  // Every span's tid is a pool worker id.
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    const std::size_t at = line.find("\"tid\": ");
    ASSERT_NE(at, std::string::npos) << line;
    const std::size_t tid = std::strtoull(line.c_str() + at + 7, nullptr, 10);
    EXPECT_LT(tid, report.workers) << line;
  }
}

TEST(ChromeTrace, TraceObserverEmitsValidJsonAndOneCommitPerInstruction) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  cpu::CoreConfig cfg;
  cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &g, nullptr, nullptr);
  std::ostringstream os;
  obs::ChromeTraceWriter writer(&os);
  cpu::TraceObserver observer(&writer, 100'000);
  p.add_observer(&observer);
  const cpu::PipelineResult r = p.run(2'000);
  writer.finish();

  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).parse()) << "instruction trace must be valid JSON";
  EXPECT_EQ(observer.instructions_traced(), r.committed);
  EXPECT_EQ(count_substr(json, "\"name\": \"commit\""), r.committed);
  // Four phase spans per committed instruction.
  EXPECT_EQ(count_substr(json, "\"ph\": \"X\""), 4 * r.committed);
  EXPECT_GT(writer.events_written(), 5 * r.committed);
}

TEST(ChromeTrace, JsonQuoteEscapes) {
  EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(obs::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_TRUE(JsonParser(obs::json_quote("tab\there\nnl")).parse());
}

TEST(ChromeTrace, ConcurrentSpansAndCounterTracksStayValidJson) {
  // N jobs' worth of spans plus counter-track samples racing into one
  // writer: the per-event mutex must keep the stream valid JSON with every
  // event intact.  Run under the TSan preset this also proves data-race
  // freedom of counter_event against complete_event.
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 50;
  std::ostringstream os;
  obs::ChromeTraceWriter writer(&os);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&writer, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        const double ts = static_cast<double>(i) * 10.0;
        writer.complete_event("job", "sweep", 0, static_cast<u64>(t), ts, 5.0,
                              {{"worker", std::to_string(t)}});
        writer.counter_event("ipc", "timeline", 1, static_cast<u64>(t), ts,
                             {{"ipc", "1.5"}, {"cpi_base", "0.66"}});
      }
    });
  }
  for (std::thread& th : pool) th.join();
  writer.finish();

  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).parse()) << "concurrent trace must stay valid JSON";
  EXPECT_EQ(count_substr(json, "\"ph\": \"X\""), kThreads * kEventsPerThread);
  EXPECT_EQ(count_substr(json, "\"ph\": \"C\""), kThreads * kEventsPerThread);
  EXPECT_EQ(writer.events_written(), 2u * kThreads * kEventsPerThread);
}

}  // namespace
}  // namespace vasim
