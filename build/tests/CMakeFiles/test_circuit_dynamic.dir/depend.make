# Empty dependencies file for test_circuit_dynamic.
# This may be replaced when dependencies are built.
