// ASCII table / CSV rendering for the benchmark harness output.
//
// The bench binaries regenerate the paper's tables and figure series; this
// printer keeps their output aligned and machine-parseable.
#ifndef VASIM_COMMON_TABLE_HPP
#define VASIM_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace vasim {

/// Column-aligned text table with optional title and CSV export.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with a rule under the header; columns padded to max width.
  [[nodiscard]] std::string render(const std::string& title = "") const;

  /// Comma-separated rendering (no padding), header first.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `prec` digits after the point.
  static std::string fmt(double v, int prec = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vasim

#endif  // VASIM_COMMON_TABLE_HPP
