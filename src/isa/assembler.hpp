// Two-pass assembler for the mini ISA.
//
// Syntax (one instruction per line, '#' comments, 'label:' definitions):
//   add  r1, r2, r3        # rd, rs1, rs2
//   addi r1, r2, 42        # rd, rs1, imm
//   lui  r1, 0x1000        # rd, imm
//   ld   r1, 8(r2)         # rd, imm(rs1)
//   st   r1, 8(r2)         # rs2(value), imm(rs1)
//   beq  r1, r2, loop      # rs1, rs2, label
//   jmp  loop
//   halt
#ifndef VASIM_ISA_ASSEMBLER_HPP
#define VASIM_ISA_ASSEMBLER_HPP

#include <stdexcept>
#include <string>

#include "src/isa/program.hpp"

namespace vasim::isa {

/// Raised with a line number and message on malformed input.
class AssemblerError : public std::runtime_error {
 public:
  AssemblerError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Assembles source text into a Program.
Program assemble(const std::string& source);

}  // namespace vasim::isa

#endif  // VASIM_ISA_ASSEMBLER_HPP
