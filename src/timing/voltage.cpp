#include "src/timing/voltage.hpp"

#include <cmath>
#include <stdexcept>

namespace vasim::timing {

VoltageModel::VoltageModel(double vth, double alpha, double vnom)
    : vth_(vth), alpha_(alpha), vnom_(vnom) {
  if (vnom <= vth) throw std::invalid_argument("VoltageModel: vnom must exceed vth");
  raw_nominal_ = vnom_ / std::pow(vnom_ - vth_, alpha_);
}

double VoltageModel::raw_delay(double vdd) const {
  if (vdd <= vth_) throw std::invalid_argument("VoltageModel: vdd must exceed vth");
  return vdd / std::pow(vdd - vth_, alpha_);
}

double VoltageModel::delay_scale(double vdd) const { return raw_delay(vdd) / raw_nominal_; }

double VoltageModel::dynamic_energy_scale(double vdd) const {
  return (vdd * vdd) / (vnom_ * vnom_);
}

double VoltageModel::leakage_power_scale(double vdd) const { return vdd / vnom_; }

}  // namespace vasim::timing
