// Shared live progress printer: "\r[label] done/total unit, rate, ETA".
//
// One implementation serves both granularities -- the sweep engine updates
// it per finished job, a single run per slice of committed instructions --
// so the two surfaces stay visually consistent.  Thread-safe (sweep workers
// report concurrently) and rate-limited so per-commit callers cannot flood
// stderr.
#ifndef VASIM_CORE_PROGRESS_HPP
#define VASIM_CORE_PROGRESS_HPP

#include <chrono>
#include <mutex>
#include <string>

#include "src/common/types.hpp"

namespace vasim::core {

/// Stderr progress meter with rate and ETA derived from a known total.
class ProgressMeter {
 public:
  ProgressMeter(std::string label, u64 total, std::string unit);

  /// Reports `done` units complete.  Prints at most every ~100 ms (callers
  /// may invoke it arbitrarily often); ETA extrapolates the mean rate since
  /// construction.
  void update(u64 done);

  /// Final line plus newline, always printed.
  void finish(u64 done);

 private:
  void print(u64 done, bool final);

  std::string label_;
  std::string unit_;
  u64 total_;
  std::chrono::steady_clock::time_point t0_;
  std::chrono::steady_clock::time_point last_print_;
  std::mutex mu_;
};

}  // namespace vasim::core

#endif  // VASIM_CORE_PROGRESS_HPP
