#include "src/timing/process_variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vasim::timing {

DeviceParams ProcessVariation::sample_params(u64 die_id, u64 gate_id) const {
  const double sigma = cfg_.three_sigma_fraction / 3.0;
  const u64 base = hash_combine(hash_combine(cfg_.seed, die_id), gate_id);
  DeviceParams p;
  p.dlength = sigma * hash_to_gaussian(hash_combine(base, 1));
  p.dwidth = sigma * hash_to_gaussian(hash_combine(base, 2));
  p.dtox = sigma * hash_to_gaussian(hash_combine(base, 3));
  return p;
}

double ProcessVariation::delay_factor(u64 die_id, u64 gate_id) const {
  const DeviceParams p = sample_params(die_id, gate_id);
  const double f = 1.0 + cfg_.sens_length * p.dlength + cfg_.sens_width * p.dwidth +
                   cfg_.sens_tox * p.dtox;
  return std::max(0.5, f);
}

double ProcessVariation::delay_factor_sigma() const {
  const double sigma = cfg_.three_sigma_fraction / 3.0;
  const double s2 = cfg_.sens_length * cfg_.sens_length + cfg_.sens_width * cfg_.sens_width +
                    cfg_.sens_tox * cfg_.sens_tox;
  return sigma * std::sqrt(s2);
}

SpatialVariation::SpatialVariation(const SpatialConfig& cfg) : cfg_(cfg), random_(cfg.base) {
  if (cfg.grid < 2) throw std::invalid_argument("SpatialVariation: grid >= 2");
  if (cfg.systematic_fraction < 0.0 || cfg.systematic_fraction > 1.0) {
    throw std::invalid_argument("SpatialVariation: systematic_fraction in [0,1]");
  }
  sigma_total_ = random_.delay_factor_sigma();
}

double SpatialVariation::systematic(u64 die, double x, double y) const {
  // Bilinear interpolation of unit-variance corner noise on the grid.
  const double gx = x * (cfg_.grid - 1);
  const double gy = y * (cfg_.grid - 1);
  const int x0 = static_cast<int>(gx);
  const int y0 = static_cast<int>(gy);
  const double fx = gx - x0;
  const double fy = gy - y0;
  const auto corner = [&](int cx, int cy) {
    const u64 h = hash_combine(hash_combine(hash_combine(cfg_.base.seed ^ 0x5a71a1ULL, die),
                                            static_cast<u64>(cx)),
                               static_cast<u64>(cy));
    return hash_to_gaussian(h);
  };
  const int x1 = std::min(x0 + 1, cfg_.grid - 1);
  const int y1 = std::min(y0 + 1, cfg_.grid - 1);
  return corner(x0, y0) * (1 - fx) * (1 - fy) + corner(x1, y0) * fx * (1 - fy) +
         corner(x0, y1) * (1 - fx) * fy + corner(x1, y1) * fx * fy;
}

double SpatialVariation::delay_factor(u64 die, u64 gate_id, u64 total_gates) const {
  // Pseudo-placement: row-major square layout by gate id.
  const u64 side = std::max<u64>(1, static_cast<u64>(std::ceil(std::sqrt(
                                        static_cast<double>(std::max<u64>(total_gates, 1))))));
  const double x = static_cast<double>(gate_id % side) / static_cast<double>(side);
  const double y = static_cast<double>(gate_id / side) / static_cast<double>(side);
  const double sys_sigma = sigma_total_ * std::sqrt(cfg_.systematic_fraction);
  const double rnd_sigma = sigma_total_ * std::sqrt(1.0 - cfg_.systematic_fraction);
  const double rnd =
      hash_to_gaussian(hash_combine(hash_combine(cfg_.base.seed ^ 0x9a7d0ULL, die), gate_id));
  const double f = 1.0 + sys_sigma * systematic(die, x, y) + rnd_sigma * rnd;
  return std::max(0.5, f);
}

}  // namespace vasim::timing
