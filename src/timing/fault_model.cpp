#include "src/timing/fault_model.hpp"

namespace vasim::timing {

FaultModel::FaultModel(const PathModelConfig& path_cfg, double vdd, const VoltageModel& vm,
                       const EnvironmentConfig& env_cfg)
    : vm_(vm), paths_(path_cfg, vm), env_(env_cfg), vdd_(vdd),
      delay_scale_(vm.delay_scale(vdd)) {}

InOrderFaultDecision FaultModel::query_inorder(Pc pc, Cycle cycle, double inorder_scale) const {
  InOrderFaultDecision d;
  if (!enabled() || inorder_scale <= 0.0) return d;
  // Reuse the OoO per-PC population, thinned to the in-order rate: only PCs
  // in the faulty band whose secondary draw clears the scale fault here.
  const double pf = paths_.path_factor(hash_mix(pc ^ 0x1a0cdeULL));
  if (pf * delay_scale_ * env_.modulation(cycle) <= 1.0) return d;
  const u64 h = hash_combine(hash_combine(paths_.config().seed, 0x10de7ULL), pc);
  if (hash_to_unit(h) >= inorder_scale) return d;
  d.faulty = true;
  // Rename/dispatch/retire dominate; fetch/decode stay rare ([17]).
  const double u = hash_to_unit(hash_mix(h ^ 0x5151ULL));
  if (u < 0.35) {
    d.stage = InOrderStage::kRename;
  } else if (u < 0.70) {
    d.stage = InOrderStage::kDispatch;
  } else if (u < 0.90) {
    d.stage = InOrderStage::kRetire;
  } else if (u < 0.95) {
    d.stage = InOrderStage::kFetch;
  } else {
    d.stage = InOrderStage::kDecode;
  }
  return d;
}

FaultDecision FaultModel::query(Pc pc, FaultClass cls, Cycle cycle) const {
  FaultDecision d;
  d.path_factor = paths_.path_factor(pc);
  d.stage = paths_.faulty_stage(pc, cls);
  const double scaled = d.path_factor * delay_scale_;
  d.core_faulty = scaled > 1.0;
  d.faulty = scaled * env_.modulation(cycle) > 1.0;
  return d;
}

FaultDecision FaultModel::query_adaptive(Pc pc, FaultClass cls, Cycle cycle,
                                         double period_scale, u64 state_sig) const {
  FaultDecision d;
  d.path_factor = paths_.path_factor(pc);
  d.stage = paths_.faulty_stage(pc, cls);
  double scaled = d.path_factor * delay_scale_;
  if (state_model_ != nullptr) scaled *= state_model_->factor(pc, state_sig, cls);
  d.core_faulty = scaled > period_scale;
  d.faulty = scaled * env_.modulation(cycle) > period_scale;
  return d;
}

InOrderFaultDecision FaultModel::query_inorder_adaptive(Pc pc, Cycle cycle,
                                                        double inorder_scale,
                                                        double period_scale) const {
  InOrderFaultDecision d;
  if (inorder_scale <= 0.0) return d;
  const double pf = paths_.path_factor(hash_mix(pc ^ 0x1a0cdeULL));
  if (pf * delay_scale_ * env_.modulation(cycle) <= period_scale) return d;
  const u64 h = hash_combine(hash_combine(paths_.config().seed, 0x10de7ULL), pc);
  if (hash_to_unit(h) >= inorder_scale) return d;
  d.faulty = true;
  const double u = hash_to_unit(hash_mix(h ^ 0x5151ULL));
  if (u < 0.35) {
    d.stage = InOrderStage::kRename;
  } else if (u < 0.70) {
    d.stage = InOrderStage::kDispatch;
  } else if (u < 0.90) {
    d.stage = InOrderStage::kRetire;
  } else if (u < 0.95) {
    d.stage = InOrderStage::kFetch;
  } else {
    d.stage = InOrderStage::kDecode;
  }
  return d;
}

}  // namespace vasim::timing
