// Functional executor for the mini ISA.
//
// Executes a Program architecturally (no timing) and emits the committed
// dynamic instruction stream through the InstructionSource interface, so
// real programs can drive the pipeline model exactly like the statistical
// workloads do.
#ifndef VASIM_ISA_EXECUTOR_HPP
#define VASIM_ISA_EXECUTOR_HPP

#include <array>
#include <unordered_map>

#include "src/isa/program.hpp"

namespace vasim::isa {

/// Architectural state + stepper.
class FunctionalCore final : public InstructionSource {
 public:
  explicit FunctionalCore(const Program* program, u64 max_instructions = 1'000'000);

  /// Executes one instruction; fills `out`; false at halt / text end / cap.
  bool next(DynInst& out) override;

  [[nodiscard]] std::string name() const override { return "functional-core"; }

  [[nodiscard]] u64 reg(int r) const { return regs_[static_cast<std::size_t>(r)]; }
  void set_reg(int r, u64 v) {
    if (r != 0) regs_[static_cast<std::size_t>(r)] = v;
  }
  [[nodiscard]] u64 load(Addr a) const;
  void store(Addr a, u64 v) { memory_[a & ~7ULL] = v; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] Pc pc() const { return pc_; }
  [[nodiscard]] u64 executed() const { return executed_; }

 private:
  const Program* program_;
  std::array<u64, kNumArchRegs> regs_{};
  std::unordered_map<Addr, u64> memory_;  // 8-byte granules
  Pc pc_ = kTextBase;
  bool halted_ = false;
  u64 executed_ = 0;
  u64 max_instructions_;
};

}  // namespace vasim::isa

#endif  // VASIM_ISA_EXECUTOR_HPP
