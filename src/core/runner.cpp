#include "src/core/runner.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "src/check/semantics.hpp"
#include "src/core/snapshot.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::core {
namespace {

/// Samples the cycle counter at every `stride`-th commit (capped so huge
/// runs stay cheap); consumed by test_golden_equiv's divergence printer.
class CommitTrailObserver final : public cpu::PipelineObserver {
 public:
  CommitTrailObserver(u64 stride, std::vector<Cycle>* out) : stride_(stride), out_(out) {}
  void on_cycle(Cycle now) override { now_ = now; }
  void on_commit(SeqNum) override {
    ++commits_;
    if (commits_ % stride_ == 0 && out_->size() < kMaxEntries) out_->push_back(now_);
  }

  [[nodiscard]] u64 commits() const { return commits_; }
  /// Snapshot restore: the trail vector is refilled externally; the commit
  /// count must resume from the captured value for the stride phase to stay
  /// aligned.
  void set_commits(u64 commits) { commits_ = commits; }

 private:
  static constexpr std::size_t kMaxEntries = 256;
  u64 stride_;
  std::vector<Cycle>* out_;
  u64 commits_ = 0;
  Cycle now_ = 0;
};

/// Everything one simulation owns, constructed in place exactly as the
/// historical run()/run_fault_free bodies did.  Never moved: the pipeline
/// holds pointers into gen/fm/predictor.  `scheme_opt == nullopt` selects
/// the fault-free-baseline wiring (no fault model, no predictors).
struct JobContext {
  workload::TraceGenerator gen;
  std::optional<timing::FaultModel> fm;
  std::optional<TimingErrorPredictor> tep;
  std::optional<MostRecentEntryPredictor> mre;
  std::optional<TimingViolationPredictor> tvp;
  cpu::FaultPredictor* predictor = nullptr;
  bool fault_free = false;
  cpu::SchemeConfig scheme;
  std::optional<cpu::Pipeline> pipe;
  std::optional<check::SemanticsChecker> checker;
  std::vector<Cycle> trail;
  std::optional<CommitTrailObserver> trail_obs;

  JobContext(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
             const std::optional<cpu::SchemeConfig>& scheme_opt, double vdd)
      : gen(profile) {
    fault_free = !scheme_opt.has_value();
    scheme = fault_free ? cpu::scheme_fault_free() : *scheme_opt;
    if (!fault_free) {
      timing::PathModelConfig path_cfg;
      path_cfg.seed = profile.seed;
      path_cfg.p_faulty_high = profile.fr_high_pct / 100.0 * profile.fr_calib_high;
      path_cfg.p_faulty_low = profile.fr_low_pct / 100.0 * profile.fr_calib_low;
      fm.emplace(path_cfg, vdd);
      tep.emplace(cfg.tep, &fm->environment());
      mre.emplace(cfg.tep.entries);
      tvp.emplace(cfg.tep.entries);
      if (scheme.use_predictor) {
        switch (cfg.predictor) {
          case PredictorKind::kTep: predictor = &*tep; break;
          case PredictorKind::kMre: predictor = &*mre; break;
          case PredictorKind::kTvp: predictor = &*tvp; break;
        }
      }
    }
    pipe.emplace(cfg.core, scheme, &gen, fault_free ? nullptr : &*fm, predictor);
    if (cfg.check_semantics) {
      checker.emplace(cfg.core, scheme);
      checker->attach(*pipe);
    }
    if (cfg.commit_trail_stride > 0) {
      trail_obs.emplace(cfg.commit_trail_stride, &trail);
      pipe->add_observer(&*trail_obs);
    }
  }

  JobContext(const JobContext&) = delete;
  JobContext& operator=(const JobContext&) = delete;
};

/// Assembles the full snapshot container from a job paused at a cycle
/// boundary.  Refuses to serialize a run whose checker already failed.
RunSnapshot make_snapshot(const RunnerConfig& cfg, const JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          const StatSet& base, u64 base_committed, Cycle base_cycles,
                          bool base_captured) {
  if (ctx.checker && !ctx.checker->ok()) {
    throw std::runtime_error("snapshot capture refused, semantics checker failed:\n" +
                             ctx.checker->report());
  }
  RunSnapshot s;
  RunMeta m;
  m.fault_free = ctx.fault_free;
  m.profile = profile;
  if (!ctx.fault_free) m.scheme = ctx.scheme;
  m.vdd = vdd;
  m.instructions = cfg.instructions;
  m.warmup = cfg.warmup;
  m.core = cfg.core;
  m.tep = cfg.tep;
  m.predictor = cfg.predictor;
  m.check_semantics = cfg.check_semantics;
  m.commit_trail_stride = cfg.commit_trail_stride;
  m.captured_committed = ctx.pipe->committed();
  m.captured_cycle = ctx.pipe->now();
  m.base_captured = base_captured;
  if (base_captured) {
    m.base = base;
    m.base_committed = base_committed;
    m.base_cycles = base_cycles;
  }
  m.warmup_key = warmup_key(
      cfg, profile,
      ctx.fault_free ? std::optional<cpu::SchemeConfig>{} : std::optional(ctx.scheme), vdd);

  snap::Writer meta_w;
  put_run_meta(meta_w, m);
  s.container().add(kChunkMeta, 1, std::move(meta_w));
  snap::Writer pipe_w;
  ctx.pipe->save_state(pipe_w);
  s.container().add(kChunkPipe, 1, std::move(pipe_w));
  snap::Writer gen_w;
  ctx.gen.save_state(gen_w);
  s.container().add(kChunkTgen, 1, std::move(gen_w));
  if (!ctx.fault_free) {
    snap::Writer pred_w;
    ctx.tep->save_state(pred_w);
    ctx.mre->save_state(pred_w);
    ctx.tvp->save_state(pred_w);
    s.container().add(kChunkPred, 1, std::move(pred_w));
  }
  if (ctx.checker) {
    snap::Writer chk_w;
    ctx.checker->save_state(chk_w);
    s.container().add(kChunkChkr, 1, std::move(chk_w));
  }
  if (ctx.trail_obs) {
    snap::Writer trail_w;
    trail_w.put_u64(ctx.trail_obs->commits());
    trail_w.put_u32(static_cast<u32>(ctx.trail.size()));
    for (const Cycle c : ctx.trail) trail_w.put_u64(c);
    s.container().add(kChunkTral, 1, std::move(trail_w));
  }
  // Re-decode through the public path so meta() is populated and the
  // container is known-loadable before anyone relies on it.
  return RunSnapshot::from_container(std::move(s.container()));
}

const snap::Chunk& require_v1(const snap::Snapshot& c, u32 tag) {
  const snap::Chunk& chunk = c.require(tag);
  if (chunk.version != 1) {
    throw snap::SnapshotError(snap::tag_name(tag) + " chunk version " +
                              std::to_string(chunk.version) + " (this build reads 1)");
  }
  return chunk;
}

/// Restores every chunk into a freshly constructed JobContext.  Chunks with
/// unknown tags are ignored (forward compatibility); required chunks with a
/// newer version, or any payload/geometry mismatch, throw.
void restore_into(JobContext& ctx, const RunSnapshot& s) {
  {
    snap::Reader r(require_v1(s.container(), kChunkTgen).payload);
    ctx.gen.restore_state(r);
    r.expect_done("TGEN chunk");
  }
  {
    snap::Reader r(require_v1(s.container(), kChunkPipe).payload);
    ctx.pipe->restore_state(r);
    r.expect_done("PIPE chunk");
  }
  if (!ctx.fault_free) {
    snap::Reader r(require_v1(s.container(), kChunkPred).payload);
    ctx.tep->restore_state(r);
    ctx.mre->restore_state(r);
    ctx.tvp->restore_state(r);
    r.expect_done("PRED chunk");
  }
  if (ctx.checker) {
    snap::Reader r(require_v1(s.container(), kChunkChkr).payload);
    ctx.checker->restore_state(r);
    r.expect_done("CHKR chunk");
  }
  if (ctx.trail_obs) {
    snap::Reader r(require_v1(s.container(), kChunkTral).payload);
    const u64 commits = r.get_u64();
    const u32 n = r.get_u32();
    ctx.trail.clear();
    ctx.trail.reserve(n);
    for (u32 i = 0; i < n; ++i) ctx.trail.push_back(r.get_u64());
    r.expect_done("TRAL chunk");
    ctx.trail_obs->set_commits(commits);
  }
}

/// Optional mid-run snapshot request for drive_run.
struct CaptureSpec {
  u64 at = 0;
  bool stop_after = false;  ///< abandon the run once captured (warmup-only)
  bool done = false;
  RunSnapshot snapshot;
};

/// The run loop, phase-structured exactly like Pipeline::run (same commit
/// limits at the same boundaries), with snapshot checks between cycles.
/// Capture points quantize to the first cycle boundary at or past the
/// requested commit count, which is why continuation is bit-identical.
void drive_run(const RunnerConfig& cfg, JobContext& ctx,
               const workload::BenchmarkProfile& profile, double vdd, CaptureSpec* cap,
               StatSet& base, u64& base_committed, Cycle& base_cycles) {
  cpu::Pipeline& pipe = *ctx.pipe;
  bool base_captured = false;
  u64 next_periodic = cfg.snapshot_interval;

  // Returns false when the driver should stop (warmup-only capture done).
  const auto boundary = [&]() -> bool {
    if (cap != nullptr && !cap->done && pipe.committed() >= cap->at) {
      cap->snapshot = make_snapshot(cfg, ctx, profile, vdd, base, base_committed, base_cycles,
                                    base_captured);
      cap->done = true;
      if (cap->stop_after) return false;
    }
    if (cfg.snapshot_interval > 0) {
      while (pipe.committed() >= next_periodic) {
        make_snapshot(cfg, ctx, profile, vdd, base, base_committed, base_cycles, base_captured)
            .write_file(cfg.snapshot_path + std::to_string(pipe.committed()) + ".vsnap");
        next_periodic += cfg.snapshot_interval;
      }
    }
    return true;
  };

  if (cfg.warmup > 0) {
    pipe.set_commit_limit(cfg.warmup);
    while (pipe.committed() < cfg.warmup) {
      if (!boundary()) return;
      if (!pipe.step()) break;
    }
    // A capture at exactly the warmup boundary lands here, *before* the
    // base is read: the resuming side re-derives the identical base from
    // the restored state, so the snapshot stays measurement-agnostic.
    if (!boundary()) return;
    base = pipe.snapshot_stats();
    base_committed = pipe.committed();
    base_cycles = pipe.now();
    base_captured = true;
  }

  const u64 target = cfg.warmup + cfg.instructions;
  pipe.set_commit_limit(target);
  while (pipe.committed() < target) {
    if (!boundary()) return;
    if (!pipe.step()) break;
  }
  // Capture points at or past the end resolve to the final state: the run
  // cannot commit past `target` (and may fall short if the source drained),
  // so a still-pending request fires here unconditionally.
  if (cap != nullptr && !cap->done) cap->at = pipe.committed();
  boundary();
}

RunResult assemble_result(const RunnerConfig& cfg, JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          cpu::PipelineResult&& pr) {
  if (ctx.checker && !ctx.checker->ok()) throw std::runtime_error(ctx.checker->report());

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = ctx.fault_free ? "fault-free" : ctx.scheme.name;
  r.commit_trail = std::move(ctx.trail);
  r.checker_checks = ctx.checker ? ctx.checker->checks() : 0;
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const double actual = static_cast<double>(pr.stats.count("fault.actual"));
  const double committed_faulty = static_cast<double>(pr.stats.count("fault.committed_faulty"));
  r.fault_rate_pct =
      pr.committed == 0 ? 0.0 : committed_faulty / static_cast<double>(pr.committed) * 100.0;
  r.replays = static_cast<double>(pr.stats.count("fault.replays"));
  r.predictor_accuracy =
      actual > 0.0 ? static_cast<double>(pr.stats.count("fault.handled")) / actual : 0.0;
  const EnergyModel em(cfg.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  return r;
}

RunResult run_job(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
                  const std::optional<cpu::SchemeConfig>& scheme, double vdd, CaptureSpec* cap) {
  JobContext ctx(cfg, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  drive_run(cfg, ctx, profile, vdd, cap, base, base_committed, base_cycles);
  cpu::PipelineResult pr = ctx.pipe->result_window(base, base_committed, base_cycles);
  return assemble_result(cfg, ctx, profile, vdd, std::move(pr));
}

}  // namespace

Overheads overhead_vs(const RunResult& base, const RunResult& x) {
  Overheads o;
  if (base.ipc > 0.0 && x.ipc > 0.0) o.perf_pct = (base.ipc / x.ipc - 1.0) * 100.0;
  if (base.energy.edp > 0.0) o.ed_pct = (x.energy.edp / base.energy.edp - 1.0) * 100.0;
  return o;
}

RunResult ExperimentRunner::run(const workload::BenchmarkProfile& profile,
                                const cpu::SchemeConfig& scheme, double vdd) const {
  return run_job(cfg_, profile, scheme, vdd, nullptr);
}

RunResult ExperimentRunner::run_fault_free(const workload::BenchmarkProfile& profile,
                                           double vdd) const {
  return run_job(cfg_, profile, std::nullopt, vdd, nullptr);
}

RunSnapshot ExperimentRunner::capture(const workload::BenchmarkProfile& profile,
                                      const std::optional<cpu::SchemeConfig>& scheme, double vdd,
                                      u64 at_committed) const {
  JobContext ctx(cfg_, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  CaptureSpec cap;
  cap.at = at_committed;
  cap.stop_after = true;
  drive_run(cfg_, ctx, profile, vdd, &cap, base, base_committed, base_cycles);
  if (!cap.done) {
    throw std::runtime_error("capture point " + std::to_string(at_committed) +
                             " never reached (source drained)");
  }
  return std::move(cap.snapshot);
}

CaptureResult ExperimentRunner::run_and_capture(const workload::BenchmarkProfile& profile,
                                                const std::optional<cpu::SchemeConfig>& scheme,
                                                double vdd, u64 at_committed) const {
  JobContext ctx(cfg_, profile, scheme, vdd);
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  CaptureSpec cap;
  cap.at = at_committed;
  drive_run(cfg_, ctx, profile, vdd, &cap, base, base_committed, base_cycles);
  cpu::PipelineResult pr = ctx.pipe->result_window(base, base_committed, base_cycles);
  CaptureResult out{assemble_result(cfg_, ctx, profile, vdd, std::move(pr)),
                    std::move(cap.snapshot)};
  return out;
}

RunResult ExperimentRunner::run_from(const RunSnapshot& snapshot,
                                     std::optional<double> vdd_override) const {
  const RunMeta& m = snapshot.meta();
  if (vdd_override && !m.fault_free && *vdd_override != m.vdd) {
    throw snap::SnapshotError(
        "vdd override is only valid for fault-free snapshots (supply changes execution)");
  }
  const std::optional<cpu::SchemeConfig> scheme_opt =
      m.fault_free ? std::optional<cpu::SchemeConfig>{} : std::optional(m.scheme);
  const u64 key = warmup_key(cfg_, m.profile, scheme_opt, m.vdd);
  if (key != m.warmup_key) {
    throw snap::SnapshotError(
        "warmup key mismatch: the resuming runner's warmup-relevant configuration differs "
        "from the capturing one");
  }

  JobContext ctx(cfg_, m.profile, scheme_opt, m.vdd);
  restore_into(ctx, snapshot);

  cpu::Pipeline& pipe = *ctx.pipe;
  StatSet base = m.base;
  u64 base_committed = m.base_committed;
  Cycle base_cycles = m.base_cycles;
  if (!m.base_captured && cfg_.warmup > 0) {
    // Pre-boundary capture: finish warmup, then read the measurement base
    // exactly where the uninterrupted run would have.
    pipe.set_commit_limit(cfg_.warmup);
    while (pipe.committed() < cfg_.warmup && pipe.step()) {
    }
    base = pipe.snapshot_stats();
    base_committed = pipe.committed();
    base_cycles = pipe.now();
  }
  const u64 target = cfg_.warmup + cfg_.instructions;
  pipe.set_commit_limit(target);
  while (pipe.committed() < target && pipe.step()) {
  }
  cpu::PipelineResult pr = pipe.result_window(base, base_committed, base_cycles);
  return assemble_result(cfg_, ctx, m.profile, vdd_override.value_or(m.vdd), std::move(pr));
}

const std::vector<cpu::SchemeConfig>& comparative_schemes() {
  static const std::vector<cpu::SchemeConfig> schemes = {
      cpu::scheme_razor(), cpu::scheme_error_padding(), cpu::scheme_abs(),
      cpu::scheme_ffs(), cpu::scheme_cds()};
  return schemes;
}

std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name) {
  if (name == "fault-free") return cpu::scheme_fault_free();
  for (const cpu::SchemeConfig& s : comparative_schemes()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace vasim::core
