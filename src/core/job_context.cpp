#include "src/core/job_context.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace vasim::core::detail {
namespace {

const snap::Chunk& require_v1(const snap::Snapshot& c, u32 tag) {
  const snap::Chunk& chunk = c.require(tag);
  if (chunk.version != 1) {
    throw snap::SnapshotError(snap::tag_name(tag) + " chunk version " +
                              std::to_string(chunk.version) + " (this build reads 1)");
  }
  return chunk;
}

}  // namespace

JobContext::JobContext(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
                       const std::optional<cpu::SchemeConfig>& scheme_opt, double vdd)
    : gen(profile) {
  fault_free = !scheme_opt.has_value();
  scheme = fault_free ? cpu::scheme_fault_free() : *scheme_opt;
  if (!fault_free) {
    timing::PathModelConfig path_cfg;
    path_cfg.seed = profile.seed;
    path_cfg.p_faulty_high = profile.fr_high_pct / 100.0 * profile.fr_calib_high;
    path_cfg.p_faulty_low = profile.fr_low_pct / 100.0 * profile.fr_calib_low;
    fm.emplace(path_cfg, vdd);
    if (cfg.dvfs.adaptive()) {
      timing::StateDelayConfig sd;
      sd.seed = profile.seed;
      timing::ProcessConfig pc;
      pc.seed = hash_combine(profile.seed, 0x9a7eULL);
      state_delay.emplace(sd, timing::ProcessVariation(pc), vdd);
      fm->set_state_model(&*state_delay);
      clock.emplace(cfg.dvfs, vdd);
    }
    tep.emplace(cfg.tep, &fm->environment());
    mre.emplace(cfg.tep.entries);
    tvp.emplace(cfg.tep.entries);
    if (scheme.use_predictor) {
      switch (cfg.predictor) {
        case PredictorKind::kTep: predictor = &*tep; break;
        case PredictorKind::kMre: predictor = &*mre; break;
        case PredictorKind::kTvp: predictor = &*tvp; break;
      }
    }
  }
  pipe.emplace(cfg.core, scheme, &gen, fault_free ? nullptr : &*fm, predictor);
  // Attach before the timeline is built so its ctor freezes a column set
  // that includes the dvfs counters.
  if (clock) pipe->set_clock(&*clock);
  if (cfg.check_semantics) {
    checker.emplace(cfg.core, scheme);
    checker->attach(*pipe);
  }
  if (cfg.commit_trail_stride > 0) {
    trail_obs.emplace(cfg.commit_trail_stride, &trail);
    pipe->add_observer(&*trail_obs);
  }
  if (cfg.timeline_interval > 0) {
    obs::Timeline::Config tc;
    tc.interval = cfg.timeline_interval;
    // Full-run window budget plus slack for the boundary cut and the final
    // partial window: sampling never allocates in steady state.
    tc.capacity_hint =
        static_cast<std::size_t>((cfg.warmup + cfg.instructions) / cfg.timeline_interval) + 8;
    timeline = std::make_shared<obs::Timeline>(tc, &pipe->registry());
    pipe->set_timeline(timeline.get(), cfg.timeline_interval);
  }
  if (cfg.profiler_hub != nullptr) {
    profiler.emplace();
    pipe->set_profiler(&*profiler);
  }
}

RunSnapshot make_snapshot(const RunnerConfig& cfg, const JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          const StatSet& base, u64 base_committed, Cycle base_cycles,
                          bool base_captured) {
  if (ctx.checker && !ctx.checker->ok()) {
    throw std::runtime_error("snapshot capture refused, semantics checker failed:\n" +
                             ctx.checker->report());
  }
  RunSnapshot s;
  RunMeta m;
  m.fault_free = ctx.fault_free;
  m.profile = profile;
  if (!ctx.fault_free) m.scheme = ctx.scheme;
  m.vdd = vdd;
  m.instructions = cfg.instructions;
  m.warmup = cfg.warmup;
  m.core = cfg.core;
  m.tep = cfg.tep;
  m.predictor = cfg.predictor;
  m.check_semantics = cfg.check_semantics;
  m.commit_trail_stride = cfg.commit_trail_stride;
  m.dvfs = cfg.dvfs;
  m.captured_committed = ctx.pipe->committed();
  m.captured_cycle = ctx.pipe->now();
  m.base_captured = base_captured;
  if (base_captured) {
    m.base = base;
    m.base_committed = base_committed;
    m.base_cycles = base_cycles;
  }
  m.warmup_key = warmup_key(
      cfg, profile,
      ctx.fault_free ? std::optional<cpu::SchemeConfig>{} : std::optional(ctx.scheme), vdd);

  snap::Writer meta_w;
  put_run_meta(meta_w, m);
  s.container().add(kChunkMeta, kMetaChunkVersion, std::move(meta_w));
  snap::Writer pipe_w;
  ctx.pipe->save_state(pipe_w);
  s.container().add(kChunkPipe, 1, std::move(pipe_w));
  snap::Writer gen_w;
  ctx.gen.save_state(gen_w);
  s.container().add(kChunkTgen, 1, std::move(gen_w));
  if (!ctx.fault_free) {
    snap::Writer pred_w;
    ctx.tep->save_state(pred_w);
    ctx.mre->save_state(pred_w);
    ctx.tvp->save_state(pred_w);
    s.container().add(kChunkPred, 1, std::move(pred_w));
  }
  if (ctx.checker) {
    snap::Writer chk_w;
    ctx.checker->save_state(chk_w);
    s.container().add(kChunkChkr, 1, std::move(chk_w));
  }
  if (ctx.trail_obs) {
    snap::Writer trail_w;
    trail_w.put_u64(ctx.trail_obs->commits());
    trail_w.put_u32(static_cast<u32>(ctx.trail.size()));
    for (const Cycle c : ctx.trail) trail_w.put_u64(c);
    s.container().add(kChunkTral, 1, std::move(trail_w));
  }
  if (ctx.clock) {
    snap::Writer adpt_w;
    ctx.clock->save_state(adpt_w);
    s.container().add(kChunkAdpt, 1, std::move(adpt_w));
  }
  // Re-decode through the public path so meta() is populated and the
  // container is known-loadable before anyone relies on it.
  return RunSnapshot::from_container(std::move(s.container()));
}

void restore_into(JobContext& ctx, const RunSnapshot& s) {
  {
    snap::Reader r(require_v1(s.container(), kChunkTgen).payload);
    ctx.gen.restore_state(r);
    r.expect_done("TGEN chunk");
  }
  {
    snap::Reader r(require_v1(s.container(), kChunkPipe).payload);
    ctx.pipe->restore_state(r);
    r.expect_done("PIPE chunk");
  }
  if (!ctx.fault_free) {
    snap::Reader r(require_v1(s.container(), kChunkPred).payload);
    ctx.tep->restore_state(r);
    ctx.mre->restore_state(r);
    ctx.tvp->restore_state(r);
    r.expect_done("PRED chunk");
  }
  if (ctx.checker) {
    snap::Reader r(require_v1(s.container(), kChunkChkr).payload);
    ctx.checker->restore_state(r);
    r.expect_done("CHKR chunk");
  }
  if (ctx.trail_obs) {
    snap::Reader r(require_v1(s.container(), kChunkTral).payload);
    const u64 commits = r.get_u64();
    const u32 n = r.get_u32();
    ctx.trail.clear();
    ctx.trail.reserve(n);
    for (u32 i = 0; i < n; ++i) ctx.trail.push_back(r.get_u64());
    r.expect_done("TRAL chunk");
    ctx.trail_obs->set_commits(commits);
  }
  if (ctx.clock) {
    snap::Reader r(require_v1(s.container(), kChunkAdpt).payload);
    ctx.clock->restore_state(r);
    r.expect_done("ADPT chunk");
    // Re-attach: re-arms the epoch threshold from the restored commit count
    // and refreshes the cached period scale from the restored controller.
    ctx.pipe->set_clock(&*ctx.clock);
  }
  if (ctx.timeline) {
    // Warm-start fork: the timeline begins at the restored machine state.
    // Re-attaching re-arms the next K-commit threshold from the restored
    // commit count so the sampling grid continues seamlessly.
    ctx.timeline->rebaseline(ctx.pipe->now(), ctx.pipe->committed());
    ctx.pipe->set_timeline(ctx.timeline.get(), ctx.timeline->interval());
  }
}

RunResult assemble_result(const RunnerConfig& cfg, JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          cpu::PipelineResult&& pr) {
  if (ctx.checker && !ctx.checker->ok()) throw std::runtime_error(ctx.checker->report());

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = ctx.fault_free ? "fault-free" : ctx.scheme.name;
  r.commit_trail = std::move(ctx.trail);
  r.checker_checks = ctx.checker ? ctx.checker->checks() : 0;
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const double actual = static_cast<double>(pr.stats.count("fault.actual"));
  const double committed_faulty = static_cast<double>(pr.stats.count("fault.committed_faulty"));
  r.fault_rate_pct =
      pr.committed == 0 ? 0.0 : committed_faulty / static_cast<double>(pr.committed) * 100.0;
  r.replays = static_cast<double>(pr.stats.count("fault.replays"));
  r.predictor_accuracy =
      actual > 0.0 ? static_cast<double>(pr.stats.count("fault.handled")) / actual : 0.0;
  const EnergyModel em(cfg.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  if (ctx.timeline) {
    ctx.timeline->finalize(ctx.pipe->now(), ctx.pipe->committed());
    r.timeline = ctx.timeline;
  }
  if (ctx.clock) {
    DvfsSummary d;
    d.policy = std::string(adapt::to_string(ctx.clock->config().policy));
    d.epochs = ctx.clock->epochs();
    d.wall_units = r.stats.count("dvfs.wall_units");  // measured window (diffed)
    d.period_final = ctx.clock->period_permille();
    d.period_lo = ctx.clock->period_lo();
    d.period_hi = ctx.clock->period_hi();
    d.avg_period_permille =
        r.cycles > 0 ? static_cast<double>(d.wall_units) / static_cast<double>(r.cycles) : 0.0;
    d.throughput = d.wall_units > 0
                       ? static_cast<double>(r.committed) * 1000.0 / static_cast<double>(d.wall_units)
                       : 0.0;
    d.trajectory = ctx.clock->trajectory();
    r.dvfs = std::move(d);
  }
  if (cfg.profiler_hub != nullptr && ctx.profiler) {
    cfg.profiler_hub->merge(ctx.profiler->snapshot());
    ctx.profiler->reset();  // a context reused after assembly starts clean
  }
  return r;
}

}  // namespace vasim::core::detail
