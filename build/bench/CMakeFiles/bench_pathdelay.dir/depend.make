# Empty dependencies file for bench_pathdelay.
# This may be replaced when dependencies are built.
