// Adaptive clocking subsystem (src/adapt/, docs/adaptive.md): config
// validation, the state-dependent delay model, the static-policy identity
// guarantee (kStatic is bitwise today's behavior), controller behavior at
// both ends of the supply range, cross-path determinism (per-job / lockstep
// batch / shard fragments), snapshot round-trips per policy and the
// cross-policy warm-start rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/adapt/clock.hpp"
#include "src/adapt/controller.hpp"
#include "src/adapt/dvfs.hpp"
#include "src/core/runner.hpp"
#include "src/core/shard.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/obs/timeline.hpp"
#include "src/timing/process_variation.hpp"
#include "src/timing/state_delay.hpp"
#include "src/workload/profiles.hpp"

namespace vasim {
namespace {

core::RunnerConfig adapt_config(adapt::DvfsPolicy policy) {
  core::RunnerConfig rc;
  rc.instructions = 6'000;
  rc.warmup = 2'000;
  rc.dvfs.policy = policy;
  rc.dvfs.epoch = 500;  // many controller steps within the tiny run
  return rc;
}

void expect_bitwise_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.fault_rate_pct, b.fault_rate_pct);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  EXPECT_EQ(core::result_checksum(a), core::result_checksum(b));
  ASSERT_EQ(a.dvfs.has_value(), b.dvfs.has_value());
  if (a.dvfs) {
    EXPECT_EQ(a.dvfs->epochs, b.dvfs->epochs);
    EXPECT_EQ(a.dvfs->wall_units, b.dvfs->wall_units);
    EXPECT_EQ(a.dvfs->period_final, b.dvfs->period_final);
    EXPECT_EQ(a.dvfs->period_lo, b.dvfs->period_lo);
    EXPECT_EQ(a.dvfs->period_hi, b.dvfs->period_hi);
  }
}

// ---- configuration ---------------------------------------------------------

TEST(DvfsConfigV, PolicyNamesRoundTripAndUnknownIsNamed) {
  for (const auto p : {adapt::DvfsPolicy::kStatic, adapt::DvfsPolicy::kReactive,
                       adapt::DvfsPolicy::kPredictive}) {
    EXPECT_EQ(adapt::dvfs_policy_from_string(adapt::to_string(p)), p);
  }
  try {
    (void)adapt::dvfs_policy_from_string("turbo");
    FAIL() << "unknown policy accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("turbo"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dvfs"), std::string::npos);
  }
}

TEST(DvfsConfigV, EveryKnobValidatesByName) {
  const auto expect_named = [](adapt::DvfsConfig cfg, const std::string& knob) {
    try {
      adapt::validate_dvfs_config(cfg);
      FAIL() << "accepted bad " << knob;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(knob), std::string::npos) << e.what();
    }
  };
  adapt::DvfsConfig ok;
  EXPECT_NO_THROW(adapt::validate_dvfs_config(ok));

  adapt::DvfsConfig c = ok;
  c.epoch = 0;
  expect_named(c, "dvfs.epoch");
  c = ok;
  c.period_min_permille = 700;
  expect_named(c, "dvfs.period_min_permille");
  c = ok;
  c.period_max_permille = 2'000;
  expect_named(c, "dvfs.period_max_permille");
  c = ok;
  c.target_violation_pct = -1.0;
  expect_named(c, "dvfs.target_violation_pct");
  c = ok;
  c.quiet_epochs = 0;
  expect_named(c, "dvfs.quiet_epochs");
  c = ok;
  c.step_permille = 0;
  expect_named(c, "dvfs.step_permille");
}

TEST(DvfsConfigV, CodecRoundTripsAndRejectsJunkPolicyByte) {
  adapt::DvfsConfig cfg;
  cfg.policy = adapt::DvfsPolicy::kPredictive;
  cfg.epoch = 777;
  cfg.period_min_permille = 960;
  cfg.period_max_permille = 1'100;
  cfg.target_violation_pct = 1.25;
  cfg.quiet_epochs = 5;
  cfg.step_permille = 10;
  snap::Writer w;
  adapt::put_dvfs_config(w, cfg);
  snap::Reader r(w.data());
  const adapt::DvfsConfig back = adapt::get_dvfs_config(r);
  EXPECT_EQ(back.policy, cfg.policy);
  EXPECT_EQ(back.epoch, cfg.epoch);
  EXPECT_EQ(back.period_min_permille, cfg.period_min_permille);
  EXPECT_EQ(back.period_max_permille, cfg.period_max_permille);
  EXPECT_EQ(back.target_violation_pct, cfg.target_violation_pct);
  EXPECT_EQ(back.quiet_epochs, cfg.quiet_epochs);
  EXPECT_EQ(back.step_permille, cfg.step_permille);

  snap::Writer junk;
  junk.put_u8(99);  // not a policy
  snap::Reader jr(junk.data());
  EXPECT_THROW((void)adapt::get_dvfs_config(jr), snap::SnapshotError);
}

// ---- state-dependent delay model -------------------------------------------

TEST(AdaptStateDelay, DeterministicClampedAndStateSensitive) {
  const timing::StateDelayConfig cfg;
  timing::ProcessConfig pc;
  pc.seed = 7;
  const timing::ProcessVariation pv(pc);
  const timing::StateDelayModel m(cfg, pv, 1.04);
  const timing::StateDelayModel m2(cfg, pv, 1.04);

  bool any_state_effect = false;
  for (u64 sig = 0; sig < 64; ++sig) {
    const double f = m.factor(0x400100, sig, timing::FaultClass::kAluLike);
    EXPECT_EQ(f, m2.factor(0x400100, sig, timing::FaultClass::kAluLike));  // deterministic
    EXPECT_GE(f, 1.0 - cfg.clamp);
    EXPECT_LE(f, 1.0 + cfg.clamp);
    if (f != m.factor(0x400100, sig + 64, timing::FaultClass::kAluLike)) {
      any_state_effect = true;
    }
  }
  EXPECT_TRUE(any_state_effect) << "operand signature never changed the factor";
}

TEST(AdaptStateDelay, SigmaWidensAsSupplyDrops) {
  const timing::StateDelayConfig cfg;
  timing::ProcessConfig pc;
  pc.seed = 7;
  const timing::ProcessVariation pv(pc);
  const timing::StateDelayModel nominal(cfg, pv, cfg.vdd_nominal);
  const timing::StateDelayModel sagging(cfg, pv, 0.90);
  EXPECT_GT(sagging.sigma(), nominal.sigma());
  // Above-nominal supplies never tighten below the base spread.
  const timing::StateDelayModel boosted(cfg, pv, cfg.vdd_nominal + 0.05);
  EXPECT_GE(boosted.sigma(), 0.0);
  EXPECT_LE(boosted.sigma(), nominal.sigma());
}

// ---- static identity -------------------------------------------------------

TEST(AdaptStaticIdentity, StaticPolicyIsBitwiseDefaultBehavior) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");

  core::RunnerConfig plain;
  plain.instructions = 4'000;
  plain.warmup = 1'500;
  core::RunnerConfig statc = plain;
  statc.dvfs.policy = adapt::DvfsPolicy::kStatic;  // explicit, same as default
  statc.dvfs.epoch = 123;                          // inert without a policy

  const core::RunResult a = core::ExperimentRunner(plain).run(prof, *scheme, 0.97);
  const core::RunResult b = core::ExperimentRunner(statc).run(prof, *scheme, 0.97);
  expect_bitwise_identical(a, b);
  EXPECT_FALSE(a.dvfs.has_value());
  EXPECT_FALSE(b.dvfs.has_value());
  // No adaptive counters leak into static stats (registry geometry pinned).
  for (const auto& [name, value] : a.stats.counters()) {
    EXPECT_EQ(name.rfind("dvfs.", 0), std::string::npos) << name << " = " << value;
  }
}

TEST(AdaptStaticIdentity, FaultFreeBaselineIgnoresAdaptivePolicies) {
  const auto prof = workload::spec2006_profile("gcc");
  const core::RunResult statc =
      core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kStatic)).run_fault_free(prof, 1.04);
  const core::RunResult adaptive =
      core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kReactive))
          .run_fault_free(prof, 1.04);
  expect_bitwise_identical(statc, adaptive);
  EXPECT_FALSE(adaptive.dvfs.has_value());
}

// ---- controller behavior ---------------------------------------------------

TEST(DvfsBehavior, ReactiveRaisesThePeriodUnderViolationPressure) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  const core::ExperimentRunner runner(adapt_config(adapt::DvfsPolicy::kReactive));
  const core::RunResult r = runner.run(prof, *scheme, 0.97);  // violation-heavy supply

  ASSERT_TRUE(r.dvfs.has_value());
  EXPECT_EQ(r.dvfs->policy, "reactive");
  EXPECT_GT(r.dvfs->epochs, 4u);
  EXPECT_GT(r.dvfs->wall_units, 0u);
  EXPECT_EQ(r.dvfs->epochs, r.dvfs->trajectory.size());
  EXPECT_GT(r.dvfs->period_hi, 1'000u) << "never slowed down at 0.97 V";
  EXPECT_LE(r.dvfs->period_hi, runner.config().dvfs.period_max_permille);
  EXPECT_GE(r.dvfs->period_lo, runner.config().dvfs.period_min_permille);
  // The scalar inputs ride stats and therefore the checksums.  Stats are
  // measured-window deltas; the trajectory covers the whole run (warmup
  // included), so the stat counts fewer epochs than the trajectory holds.
  EXPECT_EQ(r.stats.count("dvfs.wall_units"), r.dvfs->wall_units);
  EXPECT_GT(r.stats.count("dvfs.epochs"), 0u);
  EXPECT_LT(r.stats.count("dvfs.epochs"), r.dvfs->epochs);
}

TEST(DvfsBehavior, PredictiveOverclocksAtNominalSupply) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  core::RunnerConfig rc = adapt_config(adapt::DvfsPolicy::kPredictive);
  rc.instructions = 10'000;  // enough epochs to explore downward
  const core::ExperimentRunner runner(rc);
  const core::RunResult r = runner.run(prof, *scheme, 1.10);  // headroom supply

  ASSERT_TRUE(r.dvfs.has_value());
  EXPECT_EQ(r.dvfs->policy, "predictive");
  EXPECT_LT(r.dvfs->period_lo, 1'000u) << "never exploited the 1.10 V headroom";
  EXPECT_GT(r.dvfs->throughput, r.ipc)
      << "overclocking must beat IPC in instructions per nominal cycle";
  EXPECT_LE(r.fault_rate_pct, rc.dvfs.target_violation_pct * 4.0)
      << "exploration blew way past the violation budget";
}

TEST(DvfsBehavior, TimelineCarriesThePeriodSeries) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  core::RunnerConfig rc = adapt_config(adapt::DvfsPolicy::kReactive);
  rc.timeline_interval = 500;
  const core::RunResult r = core::ExperimentRunner(rc).run(prof, *scheme, 0.97);
  ASSERT_TRUE(r.timeline != nullptr);
  ASSERT_TRUE(r.timeline->has_period_series());
  bool moved = false;
  for (std::size_t w = 0; w < r.timeline->windows(); ++w) {
    if (r.timeline->period_permille(w) != 1000.0) moved = true;
  }
  EXPECT_TRUE(moved) << "period series flat at 0.97 V under the reactive policy";

  rc.dvfs.policy = adapt::DvfsPolicy::kStatic;
  const core::RunResult s = core::ExperimentRunner(rc).run(prof, *scheme, 0.97);
  ASSERT_TRUE(s.timeline != nullptr);
  EXPECT_FALSE(s.timeline->has_period_series());
}

// ---- cross-path determinism ------------------------------------------------

std::vector<core::SweepJob> adapt_grid() {
  std::vector<core::SweepJob> jobs;
  for (const char* bench : {"bzip2", "gcc"}) {
    for (const double vdd : {0.97, 1.10}) {
      jobs.push_back({workload::spec2006_profile(bench), core::scheme_by_name("abs"), vdd,
                      std::nullopt});
      jobs.push_back({workload::spec2006_profile(bench), std::nullopt, vdd, std::nullopt});
    }
  }
  return jobs;  // 8 jobs: scheme + fault-free at each cell
}

void expect_paths_agree(adapt::DvfsPolicy policy) {
  const std::vector<core::SweepJob> jobs = adapt_grid();
  const core::RunnerConfig rc = adapt_config(policy);

  core::SweepRunner sequential(rc, 1);
  sequential.set_batch(1);
  const core::SweepReport base = sequential.run(jobs);
  const u64 want = core::sweep_checksum(base);

  core::SweepRunner pooled(rc, 3);
  pooled.set_batch(1);
  EXPECT_EQ(core::sweep_checksum(pooled.run(jobs)), want) << "worker count changed results";

  core::SweepRunner batched(rc, 2);
  batched.set_batch(4);
  EXPECT_EQ(core::sweep_checksum(batched.run(jobs)), want) << "lockstep batching changed results";

  // Shard halves through the fragment JSON codec (dvfs block included) and
  // merge back: still the same checksum.
  std::vector<core::SweepFragment> fragments;
  for (std::size_t i = 1; i <= 2; ++i) {
    const core::ShardSpec spec{i, 2};
    const std::vector<std::size_t> indices = core::shard_indices(jobs, spec, false, rc);
    std::vector<core::SweepJob> mine;
    for (const std::size_t j : indices) mine.push_back(jobs[j]);
    core::SweepRunner shard_runner(rc, 2);
    core::SweepFragment f = core::make_fragment("adapt", spec, jobs.size(), indices,
                                                shard_runner.run(mine));
    std::stringstream ss;
    core::write_fragment_json(ss, f);
    fragments.push_back(core::read_fragment_json(ss, "frag"));
  }
  const core::SweepReport merged = core::merge_fragments(std::move(fragments));
  EXPECT_EQ(core::sweep_checksum(merged), want) << "shard merge changed results";

  // Per-job shape: scheme jobs carry the dvfs summary, fault-free jobs not.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const core::RunResult& r = base.jobs[i].result;
    if (jobs[i].scheme) {
      ASSERT_TRUE(r.dvfs.has_value()) << "scheme job " << i;
      EXPECT_EQ(r.dvfs->policy, adapt::to_string(policy));
      EXPECT_EQ(r.dvfs->epochs, r.dvfs->trajectory.size());
      const core::RunResult& m = merged.jobs[i].result;
      ASSERT_TRUE(m.dvfs.has_value()) << "fragment codec dropped the dvfs block";
      EXPECT_EQ(m.dvfs->trajectory.size(), r.dvfs->trajectory.size());
      EXPECT_EQ(m.dvfs->wall_units, r.dvfs->wall_units);
    } else {
      EXPECT_FALSE(r.dvfs.has_value()) << "fault-free job " << i;
    }
  }
}

TEST(DvfsDeterminism, ReactiveAgreesAcrossJobsBatchAndShardPaths) {
  expect_paths_agree(adapt::DvfsPolicy::kReactive);
}

TEST(DvfsDeterminism, PredictiveAgreesAcrossJobsBatchAndShardPaths) {
  expect_paths_agree(adapt::DvfsPolicy::kPredictive);
}

TEST(DvfsDeterminism, PoliciesActuallyDiverge) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  const core::RunResult reactive =
      core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kReactive)).run(prof, *scheme, 0.97);
  const core::RunResult predictive =
      core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kPredictive))
          .run(prof, *scheme, 0.97);
  EXPECT_NE(core::result_checksum(reactive), core::result_checksum(predictive))
      << "both adaptive policies produced identical runs -- controllers inert?";
}

// ---- snapshots -------------------------------------------------------------

TEST(DvfsSnapshot, RestoreThenRunIsBitwiseIdenticalPerPolicy) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  for (const auto policy : {adapt::DvfsPolicy::kReactive, adapt::DvfsPolicy::kPredictive}) {
    const core::RunnerConfig rc = adapt_config(policy);
    const core::ExperimentRunner runner(rc);
    const core::RunResult straight = runner.run(prof, *scheme, 0.97);

    // Capture mid-run, past the warmup boundary: controller state (quiet
    // counters, EWMA tables) must ride the ADPT chunk for the resumed run to
    // take identical decisions.
    const core::RunSnapshot snap =
        runner.capture(prof, scheme, 0.97, rc.warmup + 3 * rc.dvfs.epoch / 2);
    EXPECT_EQ(snap.meta().dvfs.policy, policy);
    expect_bitwise_identical(runner.run_from(snap), straight);
    ASSERT_TRUE(straight.dvfs.has_value());
  }
}

TEST(DvfsSnapshot, CrossPolicyWarmStartIsRejected) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  const core::ExperimentRunner reactive(adapt_config(adapt::DvfsPolicy::kReactive));
  const core::RunSnapshot snap = reactive.capture(prof, scheme, 0.97, 2'500);

  // Same machine, different policy: the warmup key folds the DvfsConfig, so
  // the resume must be rejected instead of silently mixing controllers.
  EXPECT_THROW((void)core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kPredictive))
                   .run_from(snap),
               snap::SnapshotError);
  EXPECT_THROW(
      (void)core::ExperimentRunner(adapt_config(adapt::DvfsPolicy::kStatic)).run_from(snap),
      snap::SnapshotError);
  core::RunnerConfig other_epoch = adapt_config(adapt::DvfsPolicy::kReactive);
  other_epoch.dvfs.epoch += 1;  // any knob change re-keys the warmup
  EXPECT_THROW((void)core::ExperimentRunner(other_epoch).run_from(snap), snap::SnapshotError);
  expect_bitwise_identical(reactive.run_from(snap), reactive.run(prof, *scheme, 0.97));
}

TEST(DvfsSnapshot, ControllerStateCodecRoundTrips) {
  adapt::DvfsConfig cfg;
  cfg.policy = adapt::DvfsPolicy::kPredictive;
  adapt::PredictiveController ctrl(cfg);
  adapt::EpochStats e;
  e.committed = 500;
  e.cycles = 700;
  e.violations = 3;
  e.ipc = 0.71;
  e.violation_pct = 0.6;
  e.mem_fraction = 0.2;
  u32 period = 1'000;
  for (int i = 0; i < 5; ++i) {
    e.epoch_index = static_cast<u64>(i);
    period = ctrl.next_period(e, period);
  }
  snap::Writer w;
  ctrl.save_state(w);

  adapt::PredictiveController back(cfg);
  snap::Reader r(w.data());
  back.restore_state(r);
  // Same state, same inputs: decisions continue identically.
  for (int i = 5; i < 10; ++i) {
    e.epoch_index = static_cast<u64>(i);
    const u32 a = ctrl.next_period(e, period);
    const u32 b = back.next_period(e, period);
    EXPECT_EQ(a, b) << "step " << i;
    period = a;
  }
}

}  // namespace
}  // namespace vasim
