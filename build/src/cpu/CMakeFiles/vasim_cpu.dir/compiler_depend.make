# Empty compiler generated dependencies file for vasim_cpu.
# This may be replaced when dependencies are built.
