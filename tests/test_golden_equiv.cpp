// Golden-equivalence gate for the scheduler kernel.
//
// The data-oriented issue-window rewrite (src/cpu/sched_kernel.hpp) is a
// pure speed change: the paper's model must produce bitwise-identical
// results.  This suite replays a scheme x benchmark x supply grid (plus
// directed jobs for wrong-path fetch, squash-refetch recovery and in-order
// faults, and pressure variants that saturate the unpipelined divider and
// the load/store queues) against fixtures recorded from the pre-rewrite
// implementation: committed counts, cycle counts, IPC bit patterns, every
// CPI-stack slot, a strided commit trail (so a mismatch names the first
// diverging execution window, not just the final totals), and the sweep FNV
// checksum (which folds in every stat counter and energy double of every
// job).  Every job also runs under the semantics checker.
//
// Regenerating fixtures (only when the *model* legitimately changes):
//   VASIM_GOLDEN_RECORD=1 ./build/tests/test_golden_equiv
// writes scheduler_golden.txt into the source tree next to this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/sweep.hpp"
#include "src/timing/voltage.hpp"
#include "src/workload/profiles.hpp"

namespace {

using namespace vasim;

/// Fixture rows live next to this source file so the test is runnable from
/// any build directory.
std::string fixture_path() {
  std::string dir(__FILE__);
  dir.erase(dir.find_last_of('/'));
  return dir + "/golden/scheduler_golden.txt";
}

core::RunnerConfig golden_config() {
  core::RunnerConfig cfg;
  cfg.instructions = 6'000;  // small but past warm-up; ~200 jobs stay fast
  cfg.warmup = 3'000;
  // Every golden job is also a semantics-checker run: a kernel change that
  // kept the end-of-run totals but broke a scheduling rule still fails here.
  cfg.check_semantics = true;
  // 9000 commits / 500 = 18 trail samples per row.
  cfg.commit_trail_stride = 500;
  return cfg;
}

/// Divider-pressure variant: the divider is unpipelined (FUSR holds the unit
/// for the full latency), so a div-heavy mix keeps the reservation logic and
/// VTE's extra-cycle extension under continuous structural pressure.
workload::BenchmarkProfile div_pressure(const std::string& base) {
  workload::BenchmarkProfile p = workload::spec2006_profile(base);
  p.name = base + "-div";
  p.f_div = 0.05;
  p.f_mul = 0.08;
  return p;
}

/// LSQ-pressure variant: a memory-heavy mix against deliberately small
/// load/store queues, so CAM-spacing cycles and queue-full stalls dominate.
workload::BenchmarkProfile lsq_pressure(const std::string& base) {
  workload::BenchmarkProfile p = workload::spec2006_profile(base);
  p.name = base + "-lsq";
  p.f_load = 0.35;
  p.f_store = 0.20;
  return p;
}

/// The grid: every comparative scheme at the paper's three supply points on
/// five profiles with distinct mixes, plus directed jobs covering the
/// recovery paths the plain grid rarely exercises.
std::vector<core::SweepJob> golden_jobs() {
  std::vector<core::SweepJob> jobs;
  const std::vector<std::string> benches = {"bzip2", "gcc", "mcf", "sjeng", "libquantum"};
  const double vdds[] = {timing::SupplyPoints::kNominal, timing::SupplyPoints::kHighFault,
                         timing::SupplyPoints::kLowFault};
  for (const std::string& b : benches) {
    const workload::BenchmarkProfile prof = workload::spec2006_profile(b);
    // Fault-free baseline: null fault model and predictor.
    jobs.push_back({prof, std::nullopt, timing::SupplyPoints::kNominal, std::nullopt});
    for (const double vdd : vdds) {
      for (const cpu::SchemeConfig& s : core::comparative_schemes()) {
        jobs.push_back({prof, s, vdd, std::nullopt});
      }
    }
  }
  // Wrong-path fetch after mispredicts (synthesized work, squashed at
  // resolution).
  {
    core::RunnerConfig cfg = golden_config();
    cfg.core.model_wrong_path = true;
    jobs.push_back({workload::spec2006_profile("bzip2"), cpu::scheme_razor(),
                    timing::SupplyPoints::kHighFault, cfg});
    jobs.push_back({workload::spec2006_profile("gobmk"), cpu::scheme_abs(),
                    timing::SupplyPoints::kHighFault, cfg});
  }
  // Squash-and-refetch replay recovery (bench_ablation's variant).
  {
    cpu::SchemeConfig razor_sq = cpu::scheme_razor();
    razor_sq.name = "razor-squash";
    razor_sq.recovery = cpu::RecoveryModel::kSquashRefetch;
    jobs.push_back({workload::spec2006_profile("gcc"), razor_sq,
                    timing::SupplyPoints::kHighFault, std::nullopt});
    cpu::SchemeConfig abs_sq = cpu::scheme_abs();
    abs_sq.name = "abs-squash";
    abs_sq.recovery = cpu::RecoveryModel::kSquashRefetch;
    jobs.push_back({workload::spec2006_profile("mcf"), abs_sq,
                    timing::SupplyPoints::kHighFault, std::nullopt});
  }
  // In-order engine faults (stall recirculation + fetch/decode replay).
  {
    cpu::SchemeConfig abs_io = cpu::scheme_abs();
    abs_io.name = "abs-inorder";
    abs_io.inorder_fault_scale = 0.10;
    jobs.push_back({workload::spec2006_profile("sjeng"), abs_io,
                    timing::SupplyPoints::kHighFault, std::nullopt});
    cpu::SchemeConfig razor_io = cpu::scheme_razor();
    razor_io.name = "razor-inorder";
    razor_io.inorder_fault_scale = 0.10;
    jobs.push_back({workload::spec2006_profile("libquantum"), razor_io,
                    timing::SupplyPoints::kHighFault, std::nullopt});
  }
  // Pressure grid (appended so the original rows keep their indices): the
  // same scheme x supply sweep over derived profiles that stress the two
  // structures the base mixes rarely saturate -- the unpipelined divider and
  // the load/store queues.
  {
    core::RunnerConfig lsq_cfg = golden_config();
    lsq_cfg.core.lq_entries = 12;
    lsq_cfg.core.sq_entries = 8;
    const double pressure_vdds[] = {timing::SupplyPoints::kHighFault,
                                    timing::SupplyPoints::kLowFault};
    for (const std::string& b : benches) {
      for (const bool lsq : {false, true}) {
        const workload::BenchmarkProfile prof = lsq ? lsq_pressure(b) : div_pressure(b);
        const std::optional<core::RunnerConfig> cfg =
            lsq ? std::optional<core::RunnerConfig>(lsq_cfg) : std::nullopt;
        jobs.push_back({prof, std::nullopt, timing::SupplyPoints::kNominal, cfg});
        for (const double vdd : pressure_vdds) {
          for (const cpu::SchemeConfig& s : core::comparative_schemes()) {
            jobs.push_back({prof, s, vdd, cfg});
          }
        }
      }
    }
  }
  return jobs;
}

struct GoldenRow {
  std::string bench;
  std::string scheme;
  u64 vdd_bits = 0;
  u64 committed = 0;
  u64 cycles = 0;
  u64 ipc_bits = 0;
  std::vector<u64> cpi;
  /// Cycle at every commit_trail_stride-th commit: a divergence diff names
  /// the first execution window that drifted instead of just the totals.
  std::vector<u64> trail;
};

u64 bits_of(double v) {
  u64 b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

GoldenRow row_of(const core::RunResult& r) {
  GoldenRow row;
  row.bench = r.benchmark;
  row.scheme = r.scheme;
  row.vdd_bits = bits_of(r.vdd);
  row.committed = r.committed;
  row.cycles = r.cycles;
  row.ipc_bits = bits_of(r.ipc);
  for (int i = 0; i < obs::kNumCpiCauses; ++i) {
    row.cpi.push_back(r.cpi.slots[static_cast<std::size_t>(i)]);
  }
  for (const Cycle c : r.commit_trail) row.trail.push_back(c);
  return row;
}

/// Formats where two trails first part ways, e.g. "first divergence at
/// commit ~1500 (trail sample 3): cycle 2113 vs golden 2098".
std::string trail_divergence(const GoldenRow& got, const GoldenRow& want, u64 stride) {
  const std::size_t n = std::min(got.trail.size(), want.trail.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (got.trail[i] != want.trail[i]) {
      return "first divergence at commit ~" + std::to_string((i + 1) * stride) +
             " (trail sample " + std::to_string(i) + "): cycle " +
             std::to_string(got.trail[i]) + " vs golden " + std::to_string(want.trail[i]);
    }
  }
  if (got.trail.size() != want.trail.size()) {
    return "trail length changed: " + std::to_string(got.trail.size()) + " vs golden " +
           std::to_string(want.trail.size());
  }
  return "trails identical (divergence after the last sampled commit)";
}

}  // namespace

TEST(GoldenEquivalence, SchedulerGridMatchesRecordedFixtures) {
  const std::vector<core::SweepJob> jobs = golden_jobs();
  const core::SweepRunner runner(golden_config(), 1);
  const std::vector<core::RunResult> results = runner.run_results(jobs);
  const u64 checksum = core::sweep_checksum(results);

  const char* record = std::getenv("VASIM_GOLDEN_RECORD");
  if (record != nullptr && std::strcmp(record, "0") != 0) {
    std::ofstream out(fixture_path());
    ASSERT_TRUE(out) << "cannot write " << fixture_path();
    out << "# bench scheme vdd_bits committed cycles ipc_bits cpi[" << obs::kNumCpiCauses
        << "] trail <n> <cycle>*\n";
    for (const core::RunResult& r : results) {
      const GoldenRow row = row_of(r);
      out << row.bench << ' ' << row.scheme << ' ' << row.vdd_bits << ' ' << row.committed
          << ' ' << row.cycles << ' ' << row.ipc_bits;
      for (const u64 s : row.cpi) out << ' ' << s;
      out << " trail " << row.trail.size();
      for (const u64 c : row.trail) out << ' ' << c;
      out << '\n';
    }
    out << "checksum " << checksum << '\n';
    GTEST_SKIP() << "recorded " << results.size() << " golden rows to " << fixture_path();
  }

  std::ifstream in(fixture_path());
  ASSERT_TRUE(in) << "missing fixture " << fixture_path()
                  << " (record with VASIM_GOLDEN_RECORD=1)";
  std::vector<GoldenRow> expected;
  u64 expected_checksum = 0;
  bool have_checksum = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "checksum") {
      ls >> expected_checksum;
      have_checksum = true;
      continue;
    }
    GoldenRow row;
    row.bench = first;
    ls >> row.scheme >> row.vdd_bits >> row.committed >> row.cycles >> row.ipc_bits;
    row.cpi.resize(static_cast<std::size_t>(obs::kNumCpiCauses));
    for (u64& s : row.cpi) ls >> s;
    std::string marker;
    std::size_t trail_len = 0;
    ls >> marker >> trail_len;
    ASSERT_EQ(marker, "trail") << "malformed fixture line: " << line;
    row.trail.resize(trail_len);
    for (u64& c : row.trail) ls >> c;
    ASSERT_FALSE(ls.fail()) << "malformed fixture line: " << line;
    expected.push_back(std::move(row));
  }
  ASSERT_TRUE(have_checksum) << "fixture has no checksum line";
  ASSERT_EQ(expected.size(), results.size()) << "grid shape changed; re-record fixtures";

  const u64 stride = golden_config().commit_trail_stride;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GoldenRow got = row_of(results[i]);
    const GoldenRow& want = expected[i];
    SCOPED_TRACE("job " + std::to_string(i) + ": " + want.bench + "/" + want.scheme);
    // A run that "passed" without the checker evaluating anything is blind.
    EXPECT_GT(results[i].checker_checks, 0u);
    EXPECT_EQ(got.bench, want.bench);
    EXPECT_EQ(got.scheme, want.scheme);
    EXPECT_EQ(got.vdd_bits, want.vdd_bits);
    EXPECT_EQ(got.committed, want.committed);
    EXPECT_EQ(got.cycles, want.cycles) << trail_divergence(got, want, stride);
    EXPECT_EQ(got.ipc_bits, want.ipc_bits);
    EXPECT_EQ(got.cpi, want.cpi) << trail_divergence(got, want, stride);
    EXPECT_EQ(got.trail, want.trail) << trail_divergence(got, want, stride);
  }
  // The checksum folds in every stat counter, energy double and CPI slot of
  // every job -- the strongest single witness that the rewrite changed
  // nothing observable.
  EXPECT_EQ(checksum, expected_checksum);
}
