// Statistical dynamic-trace generator.
//
// Builds a synthetic static program (basic blocks with per-PC operation
// templates and memory-stream assignments) from a BenchmarkProfile, then
// walks it dynamically, drawing dependencies, addresses and branch outcomes
// from the profile's distributions.  The emitted stream is consumed by the
// pipeline through the same InstructionSource interface as real programs.
#ifndef VASIM_WORKLOAD_TRACE_GENERATOR_HPP
#define VASIM_WORKLOAD_TRACE_GENERATOR_HPP

#include <vector>

#include "src/common/rng.hpp"
#include "src/isa/dyninst.hpp"
#include "src/snap/io.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::workload {

/// Deterministic trace source for one benchmark profile.
class TraceGenerator final : public isa::InstructionSource {
 public:
  explicit TraceGenerator(const BenchmarkProfile& profile);

  bool next(isa::DynInst& out) override;
  [[nodiscard]] std::string name() const override { return profile_.name; }

  [[nodiscard]] const BenchmarkProfile& profile() const { return profile_; }
  /// Number of distinct static PCs in the synthetic program.
  [[nodiscard]] std::size_t static_footprint() const;

  /// Serializes the RNG and dynamic walk cursors.  The static program is
  /// NOT serialized: it is a deterministic function of the profile, so
  /// restore_state targets a generator freshly constructed from the same
  /// profile (build_static_program has already replayed the construction-time
  /// RNG draws; restore then overwrites the RNG with the mid-walk state).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct StaticInstr {
    Pc pc = 0;
    isa::OpClass op = isa::OpClass::kIntAlu;
    u64 stream_base = 0;   ///< per-instruction stride anchor
    bool hub_producer = false;
  };

  /// Branch behaviour of a block terminator.
  enum class BranchKind : u8 {
    kFixed,   ///< same outcome every visit (predictable after warmup)
    kLoop,    ///< self-loop: taken except every loop_trip-th visit
    kRandom,  ///< history-independent outcome (defeats gshare)
  };

  struct Block {
    std::vector<StaticInstr> instrs;  ///< last one is the terminating branch
    int taken_target = 0;             ///< block index when taken
    double taken_bias = 0.5;
    BranchKind branch_kind = BranchKind::kFixed;
    bool fixed_taken = false;         ///< outcome for kFixed
    u32 loop_trip = 0;                ///< trip count for kLoop
  };

  void build_static_program();
  [[nodiscard]] Addr gen_address(const StaticInstr& si);
  [[nodiscard]] int pick_source();

  BenchmarkProfile profile_;
  Pcg32 rng_;
  std::vector<Block> blocks_;

  // Dynamic walk state.
  std::size_t cur_block_ = 0;
  std::size_t cur_idx_ = 0;
  std::vector<u32> block_iter_;        ///< per-block visit counts
  std::vector<int> recent_dst_;        ///< ring of recent destination regs
  std::size_t recent_head_ = 0;
  int hub_reg_ = 25;
  int next_dst_ = 1;
  u64 emitted_ = 0;
};

}  // namespace vasim::workload

#endif  // VASIM_WORKLOAD_TRACE_GENERATOR_HPP
