// Experiment runner: wires a workload profile, a supply point, a scheme and
// the pipeline together, and computes the overhead metrics the paper's
// tables and figures report.
#ifndef VASIM_CORE_RUNNER_HPP
#define VASIM_CORE_RUNNER_HPP

#include <optional>
#include <string>
#include <vector>

#include "src/core/energy.hpp"
#include "src/core/predictors.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::core {

/// One simulation's outcome.
struct RunResult {
  std::string benchmark;
  std::string scheme;
  double vdd = timing::SupplyPoints::kNominal;
  u64 committed = 0;
  Cycle cycles = 0;
  double ipc = 0.0;
  double fault_rate_pct = 0.0;      ///< actual faults / committed * 100
  double replays = 0.0;
  double predictor_accuracy = 0.0;  ///< handled / actual (0 when no faults)
  EnergyReport energy;
  /// Per-cause commit-slot attribution of the measured window; the
  /// invariant cpi.total() == cycles * commit_width always holds.
  obs::CpiStack cpi;
  StatSet stats;
  /// Cycle timestamps sampled at every RunnerConfig::commit_trail_stride-th
  /// commit (whole run, warmup included).  Lets a diff pinpoint the first
  /// diverging execution window instead of just the final totals.  Not
  /// folded into sweep_checksum (diagnostic, not an identity).
  std::vector<Cycle> commit_trail;
  /// Invariant evaluations the semantics checker performed (0 when the
  /// checker was not attached); a run that "passes" with 0 checks is blind.
  u64 checker_checks = 0;
};

/// (performance %, energy-delay %) overhead tuple, the format of Table 1.
struct Overheads {
  double perf_pct = 0.0;
  double ed_pct = 0.0;
};

/// Overhead of `x` relative to `base` (same workload and instruction count).
Overheads overhead_vs(const RunResult& base, const RunResult& x);

/// Which fault predictor drives the prediction-based schemes.
enum class PredictorKind {
  kTep,  ///< the paper's combined design (Section 2.1.1)
  kMre,  ///< Xin & Joseph's Most-Recent-Entry predictor [13]
  kTvp,  ///< Roy & Chakraborty's Timing Violation Predictor [12]
};

/// Runner configuration.
struct RunnerConfig {
  u64 instructions = 200'000;  ///< measured committed instructions per run
  u64 warmup = 150'000;        ///< committed instructions before measurement
  cpu::CoreConfig core;
  TepConfig tep;
  PredictorKind predictor = PredictorKind::kTep;
  EnergyParams energy;
  /// Attach a SemanticsChecker to every run and throw (with the checker's
  /// report) if any paper invariant is violated.  Requires hook-enabled
  /// builds (the default); attach fails loudly when compiled out.
  bool check_semantics = false;
  /// When non-zero, record the cycle at every N-th commit into
  /// RunResult::commit_trail (capped; see runner.cpp).
  u64 commit_trail_stride = 0;
};

/// Executes simulations.  Stateless between runs; deterministic.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const RunnerConfig& cfg = {}) : cfg_(cfg) {}

  /// Runs one (benchmark, scheme, supply) combination.
  [[nodiscard]] RunResult run(const workload::BenchmarkProfile& profile,
                              const cpu::SchemeConfig& scheme, double vdd) const;

  /// Fault-free baseline at the same supply (faults disabled, age policy).
  [[nodiscard]] RunResult run_fault_free(const workload::BenchmarkProfile& profile,
                                         double vdd) const;

  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }

 private:
  RunnerConfig cfg_;
};

/// All comparative schemes of Section 5 in presentation order.  Built once
/// and cached (the schemes are immutable configuration); callers needing a
/// mutated variant copy the element.
const std::vector<cpu::SchemeConfig>& comparative_schemes();

/// Scheme lookup by table name ("fault-free", "razor", "ep", "abs", "ffs",
/// "cds"); nullopt for unknown names.
std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name);

}  // namespace vasim::core

#endif  // VASIM_CORE_RUNNER_HPP
