#include "src/core/predictors.hpp"

#include <stdexcept>

namespace vasim::core {
namespace {

void check_power_of_two(int entries, const char* who) {
  if (entries <= 0 || (entries & (entries - 1)) != 0) {
    throw std::invalid_argument(std::string(who) + ": entries must be a power of two");
  }
}

}  // namespace

// ---- MRE --------------------------------------------------------------------

MostRecentEntryPredictor::MostRecentEntryPredictor(int entries)
    : table_(static_cast<std::size_t>(entries)) {
  check_power_of_two(entries, "MostRecentEntryPredictor");
}

std::size_t MostRecentEntryPredictor::index_of(Pc pc) const {
  return static_cast<std::size_t>((pc >> 2) & (table_.size() - 1));
}

cpu::FaultPrediction MostRecentEntryPredictor::predict(Pc pc, u64, Cycle) {
  cpu::FaultPrediction p;
  const Entry& e = table_[index_of(pc)];
  if (e.valid && e.tag == static_cast<u16>(pc >> 2) && e.last_faulty) {
    p.predicted = true;
    p.stage = static_cast<timing::OooStage>(e.stage);
  }
  return p;
}

void MostRecentEntryPredictor::train(Pc pc, u64, bool faulty, timing::OooStage stage) {
  Entry& e = table_[index_of(pc)];
  const u16 tag = static_cast<u16>(pc >> 2);
  if (e.valid && e.tag == tag) {
    e.last_faulty = faulty;
    if (faulty) e.stage = static_cast<u8>(stage);
  } else if (faulty) {
    e = Entry{tag, true, true, static_cast<u8>(stage)};
  }
}

void MostRecentEntryPredictor::mark_critical(Pc, u64, bool) {}

u64 MostRecentEntryPredictor::storage_bits() const {
  // tag(16) + valid(1) + last(1) + stage(3)
  return table_.size() * 21;
}

// ---- TVP --------------------------------------------------------------------

TimingViolationPredictor::TimingViolationPredictor(int entries)
    : table_(static_cast<std::size_t>(entries)) {
  check_power_of_two(entries, "TimingViolationPredictor");
}

std::size_t TimingViolationPredictor::index_of(Pc pc) const {
  return static_cast<std::size_t>((pc >> 2) & (table_.size() - 1));
}

cpu::FaultPrediction TimingViolationPredictor::predict(Pc pc, u64, Cycle) {
  cpu::FaultPrediction p;
  const Entry& e = table_[index_of(pc)];
  if (e.counter >= 2) {
    p.predicted = true;
    p.stage = static_cast<timing::OooStage>(e.stage);
  }
  return p;
}

void TimingViolationPredictor::train(Pc pc, u64, bool faulty, timing::OooStage stage) {
  Entry& e = table_[index_of(pc)];
  if (faulty) {
    if (e.counter < 3) ++e.counter;
    e.stage = static_cast<u8>(stage);
  } else if (e.counter > 0) {
    --e.counter;
  }
}

void TimingViolationPredictor::mark_critical(Pc, u64, bool) {}

u64 TimingViolationPredictor::storage_bits() const {
  // counter(2) + stage(3); untagged.
  return table_.size() * 5;
}

}  // namespace vasim::core
