// Sweep-as-a-service core: a long-lived job server over ExperimentRunner.
//
// Layering (bottom up):
//   SnapshotCache  cross-request warm-start sharing (src/serve/snap_cache.hpp)
//   Server         THIS FILE -- job table, bounded admission queue with
//                  explicit backpressure, worker threads, cooperative cancel
//   protocol.hpp   line-delimited JSON frames -> Server calls -> reply lines
//   socket.hpp     Unix-domain / loopback-TCP transport + blocking client
//   loadgen.hpp    open-loop load generator recording BENCH_serve.json
//
// A *job* is one client request: an ordered list of (benchmark, scheme, vdd)
// cells sharing one runner configuration.  Workers pull whole jobs FIFO and
// run their cells sequentially; concurrency comes from jobs overlapping
// across workers.  Every cell is executed exactly like a standalone
// ExperimentRunner invocation -- own TraceGenerator/FaultModel/Pipeline,
// no shared mutable state -- except that warmup may be forked from the
// shared snapshot cache, which is bitwise-equivalent by the PR-5 guarantee
// (restore-then-run == straight-through).  The headline contract, enforced
// by tests/test_serve.cpp rather than claimed: any interleaving of
// concurrent clients yields per-cell result_checksum()s identical to the
// same cells run standalone, cache hit or cold.
//
// Backpressure: submit() on a full queue throws QueueFullError carrying an
// advisory retry_after_ms (EWMA of recent job service time scaled by the
// backlog); nothing is ever silently dropped or queued unboundedly.
//
// Shutdown: stops admission, cancels every queued job, fires the cancel
// token of running jobs (they finish their current cell, remaining cells
// report cancelled), and joins the workers.  No job is ever left in a
// non-terminal state -- the soak suite pins this with jobs in flight.
#ifndef VASIM_SERVE_SERVER_HPP
#define VASIM_SERVE_SERVER_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/adapt/dvfs.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/snap_cache.hpp"

namespace vasim::serve {

/// Server-side rejection with a protocol-stable error name ("bad_grid",
/// "unknown_job", "shutting_down", ...).  The protocol layer maps `name()`
/// straight into the reply's "error" field -- never a silent accept.
class ServeError : public std::runtime_error {
 public:
  ServeError(std::string name, const std::string& message)
      : std::runtime_error(message), name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Bounded-queue backpressure: the job was rejected, try again after the
/// advisory delay (derived from the measured service rate and the backlog).
class QueueFullError : public ServeError {
 public:
  QueueFullError(std::size_t limit, u64 retry_after_ms)
      : ServeError("queue_full",
                   "admission queue full (" + std::to_string(limit) +
                       " jobs); retry after " + std::to_string(retry_after_ms) + " ms"),
        retry_after_ms_(retry_after_ms) {}
  [[nodiscard]] u64 retry_after_ms() const { return retry_after_ms_; }

 private:
  u64 retry_after_ms_;
};

/// One grid cell of a job; scheme "fault-free" selects the baseline wiring
/// exactly like the CLI and SweepJob's nullopt.
struct CellSpec {
  std::string bench;
  std::string scheme = "fault-free";
  double vdd = timing::SupplyPoints::kHighFault;
};

/// One client request.  Unset optionals inherit the server's RunnerConfig.
struct JobSpec {
  std::vector<CellSpec> cells;
  std::optional<u64> instructions;
  std::optional<u64> warmup;
  std::optional<u64> timeline_interval;
  /// Adaptive-clock overrides (docs/adaptive.md).  The policy folds into the
  /// warmup key, so cache entries never cross policies.
  std::optional<adapt::DvfsPolicy> dvfs;
  std::optional<u64> epoch;
  std::string tag;  ///< free-form client label, echoed in status replies
};

enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };
[[nodiscard]] const char* to_string(JobState s);

/// One finished (or cancelled) cell, the unit streamed back to clients.
struct CellResult {
  std::size_t index = 0;  ///< cell position within the job
  std::string benchmark;
  std::string scheme;
  double vdd = 0.0;
  u64 committed = 0;
  u64 cycles = 0;
  double ipc = 0.0;
  double fault_rate_pct = 0.0;
  u64 checksum = 0;      ///< core::result_checksum of the full RunResult
  bool cancelled = false;
  bool warm_hit = false;  ///< warmup forked from the cross-request cache
  double wall_ms = 0.0;
  std::string timeline_json;  ///< set when the job requested a timeline
};

struct JobStatus {
  u64 id = 0;
  JobState state = JobState::kQueued;
  std::size_t cells = 0;
  std::size_t done = 0;  ///< terminal cells (completed or cancelled)
  std::string error;     ///< failure reason when state == kFailed
  std::string tag;
};

struct ServeConfig {
  std::size_t workers = 2;
  std::size_t queue_limit = 8;      ///< max *queued* (not running) jobs
  std::size_t cache_capacity = 32;  ///< snapshots; 0 disables warm sharing
  std::size_t max_cells_per_job = 1024;
  core::RunnerConfig runner;        ///< per-cell defaults (instr/warmup/...)
  obs::ProfilerHub* profiler_hub = nullptr;  ///< non-owning; --profile path
};

class Server {
 public:
  explicit Server(const ServeConfig& cfg);
  ~Server();  // implies shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates and enqueues a job; returns its id (monotonic from 1).
  /// Throws ServeError("bad_grid") on an invalid spec, QueueFullError when
  /// the admission queue is full, ServeError("shutting_down") after
  /// shutdown() began.
  u64 submit(const JobSpec& spec);

  /// Throws ServeError("unknown_job") for an id never issued.
  [[nodiscard]] JobStatus status(u64 id) const;

  /// Completed cells from index `since` on (streaming poll cursor).
  [[nodiscard]] std::vector<CellResult> results(u64 id, std::size_t since) const;

  /// Cooperative cancel.  A queued job cancels entirely (every cell reports
  /// cancelled); a running job finishes its current cell and cancels the
  /// rest; a terminal job is left untouched.  Returns the post-cancel state.
  JobState cancel(u64 id);

  /// Blocks until the job reaches a terminal state or `timeout_ms` elapses;
  /// returns true when terminal.
  bool wait(u64 id, u64 timeout_ms) const;

  /// Blocks until every submitted job is terminal (test/CLI convenience).
  void drain() const;

  /// Stops admission, cancels queued + running jobs cooperatively, joins
  /// the workers.  Idempotent.
  void shutdown();

  /// Snapshot of the serve.* metrics (jobs, queue, cache), exported through
  /// the obs::Registry so the names match every other telemetry surface.
  /// Non-const: the export syncs the cache counters into the registry.
  [[nodiscard]] StatSet stats();

  [[nodiscard]] SnapshotCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }

 private:
  struct ResolvedCell {
    workload::BenchmarkProfile profile;
    std::optional<cpu::SchemeConfig> scheme;  ///< nullopt = fault-free wiring
    double vdd = 0.0;
  };

  struct Job {
    u64 id = 0;
    JobSpec spec;
    std::vector<ResolvedCell> cells;
    core::RunnerConfig cfg;
    JobState state = JobState::kQueued;
    std::vector<CellResult> results;
    std::string error;
    core::CancelToken cancel;
  };

  void worker_loop();
  void run_job(Job& job);
  CellResult run_cell(Job& job, std::size_t index);
  void finish_job_locked(Job& job, JobState state);
  void cancel_remaining_cells_locked(Job& job);
  [[nodiscard]] u64 retry_after_ms_locked() const;

  const ServeConfig cfg_;
  SnapshotCache cache_;

  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;   ///< queue became non-empty / stop
  mutable std::condition_variable done_cv_;   ///< a job reached a terminal state
  std::deque<Job*> queue_;
  std::map<u64, std::unique_ptr<Job>> jobs_;
  u64 next_id_ = 1;
  std::size_t running_ = 0;
  bool stopping_ = false;
  double service_ewma_ms_ = 50.0;  ///< per-job service time estimate

  // serve.* metrics; the Registry is not thread-safe, so every touch is
  // under mu_ (cache counters are synced in from SnapshotCache at export).
  obs::Registry reg_;
  obs::Counter jobs_submitted_, jobs_rejected_, jobs_completed_, jobs_cancelled_,
      jobs_failed_, cells_completed_, cells_cancelled_, cache_hits_, cache_misses_,
      cache_insertions_, cache_evictions_;
  obs::Gauge queue_depth_gauge_, queue_peak_gauge_;
  std::size_t queue_peak_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace vasim::serve

#endif  // VASIM_SERVE_SERVER_HPP
