
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/fault_model.cpp" "src/timing/CMakeFiles/vasim_timing.dir/fault_model.cpp.o" "gcc" "src/timing/CMakeFiles/vasim_timing.dir/fault_model.cpp.o.d"
  "/root/repo/src/timing/path_model.cpp" "src/timing/CMakeFiles/vasim_timing.dir/path_model.cpp.o" "gcc" "src/timing/CMakeFiles/vasim_timing.dir/path_model.cpp.o.d"
  "/root/repo/src/timing/process_variation.cpp" "src/timing/CMakeFiles/vasim_timing.dir/process_variation.cpp.o" "gcc" "src/timing/CMakeFiles/vasim_timing.dir/process_variation.cpp.o.d"
  "/root/repo/src/timing/sensors.cpp" "src/timing/CMakeFiles/vasim_timing.dir/sensors.cpp.o" "gcc" "src/timing/CMakeFiles/vasim_timing.dir/sensors.cpp.o.d"
  "/root/repo/src/timing/voltage.cpp" "src/timing/CMakeFiles/vasim_timing.dir/voltage.cpp.o" "gcc" "src/timing/CMakeFiles/vasim_timing.dir/voltage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vasim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
