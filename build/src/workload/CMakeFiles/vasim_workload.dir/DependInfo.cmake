
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/inputs.cpp" "src/workload/CMakeFiles/vasim_workload.dir/inputs.cpp.o" "gcc" "src/workload/CMakeFiles/vasim_workload.dir/inputs.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/vasim_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/vasim_workload.dir/profiles.cpp.o.d"
  "/root/repo/src/workload/simpoint.cpp" "src/workload/CMakeFiles/vasim_workload.dir/simpoint.cpp.o" "gcc" "src/workload/CMakeFiles/vasim_workload.dir/simpoint.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/workload/CMakeFiles/vasim_workload.dir/trace_file.cpp.o" "gcc" "src/workload/CMakeFiles/vasim_workload.dir/trace_file.cpp.o.d"
  "/root/repo/src/workload/trace_generator.cpp" "src/workload/CMakeFiles/vasim_workload.dir/trace_generator.cpp.o" "gcc" "src/workload/CMakeFiles/vasim_workload.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vasim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vasim_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vasim_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
