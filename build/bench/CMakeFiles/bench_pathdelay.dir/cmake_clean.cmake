file(REMOVE_RECURSE
  "CMakeFiles/bench_pathdelay.dir/bench_pathdelay.cpp.o"
  "CMakeFiles/bench_pathdelay.dir/bench_pathdelay.cpp.o.d"
  "bench_pathdelay"
  "bench_pathdelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
