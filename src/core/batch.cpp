#include "src/core/batch.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/common/env.hpp"
#include "src/core/job_context.hpp"
#include "src/core/snapshot.hpp"

namespace vasim::core {
namespace {

/// Cycles each member runs per rotation.  Large enough that the per-member
/// rotation overhead (virtual-free, but still a pointer chase and a cold
/// working set) amortizes; small enough that B working sets interleave
/// through the cache instead of serially evicting each other.
constexpr u32 kSliceCycles = 4096;

/// One batch member mid-flight.  The phase machine mirrors drive_run /
/// run_from exactly: warmup to cfg.warmup (or restore past it), read the
/// measurement base at the boundary, then measure to warmup + instructions.
struct Member {
  std::size_t pos = 0;  ///< index into the caller's cells span
  RunnerConfig cfg;     ///< effective config (job override applied)
  const workload::BenchmarkProfile* profile = nullptr;
  double result_vdd = 0.0;  ///< supply reported in the result (warm override)
  std::unique_ptr<detail::JobContext> ctx;
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  u64 target = 0;
  bool in_warmup = false;
};

/// Builds one member, including warm-start restore.  Throws on any setup
/// failure (bad snapshot, key mismatch, illegal vdd override); the caller
/// converts that into the member's per-cell error.
std::unique_ptr<Member> setup_member(const RunnerConfig& base_cfg, const BatchRunner::Cell& cell,
                                     std::size_t pos) {
  auto m = std::make_unique<Member>();
  m->pos = pos;
  m->cfg = cell.job->config ? *cell.job->config : base_cfg;
  m->result_vdd = cell.job->vdd;
  m->target = m->cfg.warmup + m->cfg.instructions;

  if (cell.warm != nullptr) {
    const RunMeta& meta = cell.warm->meta();
    if (!meta.fault_free && cell.job->vdd != meta.vdd) {
      throw snap::SnapshotError(
          "vdd override is only valid for fault-free snapshots (supply changes execution)");
    }
    const std::optional<cpu::SchemeConfig> scheme_opt =
        meta.fault_free ? std::optional<cpu::SchemeConfig>{} : std::optional(meta.scheme);
    if (warmup_key(m->cfg, meta.profile, scheme_opt, meta.vdd) != meta.warmup_key) {
      throw snap::SnapshotError(
          "warmup key mismatch: the resuming runner's warmup-relevant configuration differs "
          "from the capturing one");
    }
    m->ctx = std::make_unique<detail::JobContext>(m->cfg, meta.profile, scheme_opt, meta.vdd);
    detail::restore_into(*m->ctx, *cell.warm);
    m->profile = &cell.warm->meta().profile;
    m->base = meta.base;
    m->base_committed = meta.base_committed;
    m->base_cycles = meta.base_cycles;
    m->in_warmup = !meta.base_captured && m->cfg.warmup > 0;
  } else {
    m->ctx = std::make_unique<detail::JobContext>(m->cfg, cell.job->profile, cell.job->scheme,
                                                  cell.job->vdd);
    m->profile = &cell.job->profile;
    m->in_warmup = m->cfg.warmup > 0;
  }
  m->ctx->pipe->set_commit_limit(m->in_warmup ? m->cfg.warmup : m->target);
  return m;
}

}  // namespace

std::size_t sweep_batch_from_env() {
  constexpr u64 kMaxBatch = 64;
  return static_cast<std::size_t>(env_count("VASIM_BATCH", 1, kMaxBatch));
}

void BatchRunner::run_cells(const Cell* cells, std::size_t n, RunResult* results,
                            std::exception_ptr* errors,
                            const std::function<void(std::size_t)>& on_done) const {
  for (std::size_t chunk = 0; chunk < n; chunk += batch_) {
    const std::size_t end = std::min(n, chunk + batch_);

    // Batch setup: scheme/predictor wiring, warm restores and commit limits
    // all happen here, once, so the rotation below is pure step_n calls.
    std::vector<std::unique_ptr<Member>> live;
    live.reserve(end - chunk);
    for (std::size_t i = chunk; i < end; ++i) {
      const RunnerConfig& cfg = cells[i].job->config ? *cells[i].job->config : cfg_;
      if (cfg.snapshot_interval > 0) {
        // Periodic-snapshot jobs need drive_run's boundary machinery; they
        // take the per-job path instead of joining the lockstep rotation.
        try {
          const ExperimentRunner runner(cfg);
          const SweepJob& job = *cells[i].job;
          results[i] = cells[i].warm != nullptr ? runner.run_from(*cells[i].warm, job.vdd)
                       : job.scheme ? runner.run(job.profile, *job.scheme, job.vdd)
                                    : runner.run_fault_free(job.profile, job.vdd);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        if (on_done) on_done(i);
        continue;
      }
      try {
        live.push_back(setup_member(cfg_, cells[i], i));
      } catch (...) {
        errors[i] = std::current_exception();
        if (on_done) on_done(i);
      }
    }

    // Lockstep rotation: every live member advances one slice per pass;
    // retirees are compacted out in place (stable order, survivors never
    // move relative to each other).
    while (!live.empty()) {
      std::size_t i = 0;
      while (i < live.size()) {
        if (i + 1 < live.size()) live[i + 1]->ctx->pipe->prefetch_hot_state();
        Member& m = *live[i];
        bool retired = false;
        try {
          cpu::Pipeline& pipe = *m.ctx->pipe;
          pipe.step_n(kSliceCycles);
          if (m.in_warmup && (pipe.committed() >= m.cfg.warmup || pipe.drained())) {
            // The warmup boundary: read the measurement base exactly where
            // drive_run / run_from would have, then open the commit limit
            // for the measured window.
            m.base = pipe.snapshot_stats();
            m.base_committed = pipe.committed();
            m.base_cycles = pipe.now();
            m.in_warmup = false;
            pipe.set_commit_limit(m.target);
            // Same cut drive_run makes: measured timeline windows must sum
            // to the measured StatSet.
            if (m.ctx->timeline) {
              m.ctx->timeline->mark_measurement(pipe.now(), pipe.committed());
            }
          } else if (!m.in_warmup && (pipe.committed() >= m.target || pipe.drained())) {
            cpu::PipelineResult pr =
                pipe.result_window(m.base, m.base_committed, m.base_cycles);
            results[m.pos] =
                detail::assemble_result(m.cfg, *m.ctx, *m.profile, m.result_vdd, std::move(pr));
            retired = true;
          }
        } catch (...) {
          errors[m.pos] = std::current_exception();
          retired = true;
        }
        if (retired) {
          if (on_done) on_done(m.pos);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
  }
}

std::vector<RunResult> BatchRunner::run(const std::vector<SweepJob>& jobs) const {
  std::vector<Cell> cells(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) cells[i].job = &jobs[i];
  std::vector<RunResult> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  run_cells(cells.data(), cells.size(), results.data(), errors.data());
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace vasim::core
