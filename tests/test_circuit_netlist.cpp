// Unit tests for the netlist representation and the component builders,
// verified functionally through the gate simulator.
#include <gtest/gtest.h>

#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/common/rng.hpp"

namespace vasim::circuit {
namespace {

std::vector<u8> bits_of(u64 v, int w) {
  std::vector<u8> out;
  GateSim::pack_bits(v, w, out);
  return out;
}

TEST(Netlist, TopologicalConstructionEnforced) {
  Netlist n;
  const SigId a = n.add_input();
  const SigId b = n.add_input();
  const SigId x = n.and2(a, b);
  EXPECT_EQ(n.num_inputs(), 2);
  EXPECT_THROW(n.add_input(), std::logic_error);           // inputs after logic
  EXPECT_THROW(n.add_gate(GateKind::kAnd2, a, 99), std::invalid_argument);  // forward ref
  EXPECT_THROW(n.add_gate(GateKind::kInv, a, b), std::invalid_argument);    // arity
  EXPECT_THROW(n.add_gate(GateKind::kAnd2, a), std::invalid_argument);      // missing input
  (void)x;
}

TEST(Netlist, GateSemantics) {
  Netlist n;
  const SigId a = n.add_input();
  const SigId b = n.add_input();
  const SigId s = n.add_input();
  struct Case {
    SigId sig;
    int truth[8];  // indexed by a + 2b + 4s
  };
  std::vector<Case> cases = {
      {n.and2(a, b), {0, 0, 0, 1, 0, 0, 0, 1}},
      {n.or2(a, b), {0, 1, 1, 1, 0, 1, 1, 1}},
      {n.nand2(a, b), {1, 1, 1, 0, 1, 1, 1, 0}},
      {n.nor2(a, b), {1, 0, 0, 0, 1, 0, 0, 0}},
      {n.xor2(a, b), {0, 1, 1, 0, 0, 1, 1, 0}},
      {n.xnor2(a, b), {1, 0, 0, 1, 1, 0, 0, 1}},
      {n.inv(a), {1, 0, 1, 0, 1, 0, 1, 0}},
      {n.buf(a), {0, 1, 0, 1, 0, 1, 0, 1}},
      {n.mux2(a, b, s), {0, 1, 0, 1, 0, 0, 1, 1}},
  };
  GateSim sim(&n);
  for (int v = 0; v < 8; ++v) {
    const std::vector<u8> in = {static_cast<u8>(v & 1), static_cast<u8>((v >> 1) & 1),
                                static_cast<u8>((v >> 2) & 1)};
    sim.evaluate(in);
    for (const Case& c : cases) {
      EXPECT_EQ(sim.value(c.sig), c.truth[v] != 0) << "input " << v;
    }
  }
}

TEST(Netlist, RippleAddExhaustive4Bit) {
  Netlist n;
  const Bus a = n.add_input_bus(4);
  const Bus b = n.add_input_bus(4);
  const SigId cin = n.add_input();
  SigId cout = kNoSig;
  const Bus sum = n.ripple_add(a, b, cin, &cout);
  GateSim sim(&n);
  for (u64 x = 0; x < 16; ++x) {
    for (u64 y = 0; y < 16; ++y) {
      for (u64 c = 0; c < 2; ++c) {
        std::vector<u8> in;
        GateSim::pack_bits(x, 4, in);
        GateSim::pack_bits(y, 4, in);
        in.push_back(static_cast<u8>(c));
        sim.evaluate(in);
        const u64 expect = x + y + c;
        EXPECT_EQ(sim.read_bus(sum), expect & 0xF);
        EXPECT_EQ(sim.value(cout), ((expect >> 4) & 1) != 0);
      }
    }
  }
}

TEST(Netlist, WideReductionsAndEquality) {
  Netlist n;
  const Bus a = n.add_input_bus(9);
  const Bus b = n.add_input_bus(9);
  const SigId all = n.reduce_and(a);
  const SigId any = n.reduce_or(a);
  const SigId eq = n.equals(a, b);
  GateSim sim(&n);
  Pcg32 rng(42);
  for (int t = 0; t < 200; ++t) {
    const u64 x = rng.next_u64() & 0x1FF;
    const u64 y = rng.next_bool(0.3) ? x : (rng.next_u64() & 0x1FF);
    std::vector<u8> in;
    GateSim::pack_bits(x, 9, in);
    GateSim::pack_bits(y, 9, in);
    sim.evaluate(in);
    EXPECT_EQ(sim.value(all), x == 0x1FF);
    EXPECT_EQ(sim.value(any), x != 0);
    EXPECT_EQ(sim.value(eq), x == y);
  }
}

// ---- ALU ---------------------------------------------------------------

struct AluCase {
  AluOp op;
  const char* name;
};

class AluOps : public ::testing::TestWithParam<AluCase> {};

u64 alu_reference(AluOp op, u64 a, u64 b, int width) {
  const u64 mask = width == 64 ? ~0ULL : (1ULL << width) - 1;
  int sh_bits = 0;
  while ((1 << sh_bits) < width) ++sh_bits;
  const u64 sh = b & ((1ULL << sh_bits) - 1);
  const u64 sign = 1ULL << (width - 1);
  switch (op) {
    case AluOp::kAdd: return (a + b) & mask;
    case AluOp::kSub: return (a - b) & mask;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kShl: return (a << sh) & mask;
    case AluOp::kShr: return (a & mask) >> sh;
    case AluOp::kSlt: {
      const i64 sa = static_cast<i64>((a ^ sign) - sign);
      const i64 sb = static_cast<i64>((b ^ sign) - sign);
      return sa < sb ? 1 : 0;
    }
  }
  return 0;
}

TEST_P(AluOps, MatchesReferenceOnRandomVectors) {
  const AluCase c = GetParam();
  constexpr int kWidth = 16;
  const Component alu = build_simple_alu(kWidth);
  GateSim sim(&alu.netlist);
  Pcg32 rng(2013);
  for (int t = 0; t < 300; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    std::vector<u8> in;
    GateSim::pack_bits(a, kWidth, in);
    GateSim::pack_bits(b, kWidth, in);
    GateSim::pack_bits(static_cast<u64>(c.op), 3, in);
    sim.evaluate(in);
    const Bus result(alu.outputs.begin(), alu.outputs.begin() + kWidth);
    const u64 expect = alu_reference(c.op, a, b, kWidth);
    EXPECT_EQ(sim.read_bus(result), expect) << c.name << " a=" << a << " b=" << b;
    EXPECT_EQ(sim.value(alu.outputs.back()), expect == 0) << "zero flag";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluOps,
    ::testing::Values(AluCase{AluOp::kAdd, "add"}, AluCase{AluOp::kSub, "sub"},
                      AluCase{AluOp::kAnd, "and"}, AluCase{AluOp::kOr, "or"},
                      AluCase{AluOp::kXor, "xor"}, AluCase{AluOp::kShl, "shl"},
                      AluCase{AluOp::kShr, "shr"}, AluCase{AluOp::kSlt, "slt"}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.name; });

TEST(IssueSelect, GrantsAtMostWidthAndOnlyRequesters) {
  const Component sel = build_issue_select(32, 4);
  GateSim sim(&sel.netlist);
  Pcg32 rng(5);
  for (int t = 0; t < 300; ++t) {
    std::vector<u8> req(32);
    for (auto& r : req) r = rng.next_bool(0.4);
    sim.evaluate(req);
    int grants = 0;
    for (int e = 0; e < 32; ++e) {
      const bool g = sim.value(sel.outputs[static_cast<std::size_t>(e)]);
      if (g) {
        ++grants;
        EXPECT_TRUE(req[static_cast<std::size_t>(e)]) << "granted a non-requester";
      }
    }
    EXPECT_LE(grants, 4);
  }
}

TEST(IssueSelect, SaturatedHalvesGrantFullWidth) {
  const Component sel = build_issue_select(32, 4);
  GateSim sim(&sel.netlist);
  std::vector<u8> req(32, 1);
  sim.evaluate(req);
  int grants = 0;
  for (const SigId s : sel.outputs) grants += sim.value(s);
  EXPECT_EQ(grants, 4);
}

TEST(IssueSelect, SingleGrantIsPriority) {
  const Component sel = build_issue_select(8, 1);
  GateSim sim(&sel.netlist);
  std::vector<u8> req(8, 0);
  req[3] = 1;
  req[6] = 1;
  sim.evaluate(req);
  EXPECT_TRUE(sim.value(sel.outputs[3]));
  EXPECT_FALSE(sim.value(sel.outputs[6]));
}

TEST(Agen, ComputesBasePlusSignExtendedOffset) {
  const Component agen = build_agen(32, 16);
  GateSim sim(&agen.netlist);
  Pcg32 rng(9);
  for (int t = 0; t < 300; ++t) {
    const u64 base = rng.next_u64() & 0xFFFFFFFF;
    const u64 off = rng.next_u64() & 0xFFFF;
    const u64 size = rng.next_below(4);
    std::vector<u8> in;
    GateSim::pack_bits(base, 32, in);
    GateSim::pack_bits(off, 16, in);
    GateSim::pack_bits(size, 2, in);
    sim.evaluate(in);
    const i64 soff = static_cast<i16>(off);
    const u64 expect = (base + static_cast<u64>(soff)) & 0xFFFFFFFF;
    const Bus addr(agen.outputs.begin(), agen.outputs.begin() + 32);
    EXPECT_EQ(sim.read_bus(addr), expect);
    // Misalignment: size 1=half, 2=word, 3=double.
    bool mis = false;
    if (size == 1) mis = expect & 1;
    if (size == 2) mis = expect & 3;
    if (size == 3) mis = expect & 7;
    EXPECT_EQ(sim.value(agen.outputs.back()), mis);
  }
}

TEST(ForwardCheck, MatchesTagsWithValids) {
  const int producers = 4, consumers = 4, tag_bits = 7;
  const Component fwd = build_forward_check(producers, consumers, tag_bits);
  GateSim sim(&fwd.netlist);
  Pcg32 rng(11);
  for (int t = 0; t < 200; ++t) {
    std::vector<u64> ptag(producers), stag(consumers * 2);
    std::vector<u8> pvalid(producers), svalid(consumers * 2);
    std::vector<u8> in;
    for (int p = 0; p < producers; ++p) {
      ptag[static_cast<std::size_t>(p)] = rng.next_below(16);  // small range forces matches
      GateSim::pack_bits(ptag[static_cast<std::size_t>(p)], tag_bits, in);
    }
    for (int p = 0; p < producers; ++p) {
      pvalid[static_cast<std::size_t>(p)] = rng.next_bool(0.7);
      in.push_back(pvalid[static_cast<std::size_t>(p)]);
    }
    for (int s = 0; s < consumers * 2; ++s) {
      stag[static_cast<std::size_t>(s)] = rng.next_below(16);
      GateSim::pack_bits(stag[static_cast<std::size_t>(s)], tag_bits, in);
    }
    for (int s = 0; s < consumers * 2; ++s) {
      svalid[static_cast<std::size_t>(s)] = rng.next_bool(0.8);
      in.push_back(svalid[static_cast<std::size_t>(s)]);
    }
    sim.evaluate(in);
    std::size_t out_idx = 0;
    for (int s = 0; s < consumers * 2; ++s) {
      bool any = false;
      for (int p = 0; p < producers; ++p) {
        const bool expect = svalid[static_cast<std::size_t>(s)] != 0 &&
                            pvalid[static_cast<std::size_t>(p)] != 0 &&
                            stag[static_cast<std::size_t>(s)] == ptag[static_cast<std::size_t>(p)];
        EXPECT_EQ(sim.value(fwd.outputs[out_idx++]), expect);
        any |= expect;
      }
      // The "any" outputs follow the fwd matrix.
      EXPECT_EQ(sim.value(fwd.outputs[static_cast<std::size_t>(consumers * 2 * producers + s)]),
                any);
    }
  }
}

TEST(Builders, ComponentShapesReasonable) {
  // Table 3 sanity: sizes in the right order and non-trivial depth.
  const Component alu = build_simple_alu(32);
  const Component sel = build_issue_select(32, 4);
  const Component agen = build_agen(32, 16);
  const Component fwd = build_forward_check(4, 4, 7);
  EXPECT_GT(alu.netlist.num_logic_gates(), agen.netlist.num_logic_gates());
  EXPECT_GT(agen.netlist.num_logic_gates(), 200);
  EXPECT_GT(fwd.netlist.num_logic_gates(), 200);
  EXPECT_GT(sel.netlist.num_logic_gates(), 100);
}

TEST(Builders, RejectDegenerateShapes) {
  EXPECT_THROW(build_simple_alu(1), std::invalid_argument);
  EXPECT_THROW(build_issue_select(0, 1), std::invalid_argument);
  EXPECT_THROW(build_agen(4, 16), std::invalid_argument);
  EXPECT_THROW(build_forward_check(0, 1, 1), std::invalid_argument);
}

TEST(Builders, ParameterizedWidths) {
  for (const int w : {8, 16, 32}) {
    const Component alu = build_simple_alu(w);
    EXPECT_EQ(static_cast<int>(alu.inputs.size()), 2 * w + 3);
    EXPECT_EQ(static_cast<int>(alu.outputs.size()), w + 1);
  }
  (void)bits_of(0, 1);
}

}  // namespace
}  // namespace vasim::circuit
