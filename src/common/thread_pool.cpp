#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "src/common/env.hpp"

namespace vasim {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      // A throwing task must not take its worker down with it; callers that
      // care about failures capture an exception_ptr inside the task (see
      // SweepRunner).
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

std::size_t ThreadPool::default_worker_count() {
  // Validated read: garbage or zero VASIM_JOBS values warn and fall back to
  // hardware_concurrency instead of silently misbehaving; absurdly large
  // values clamp (spawning thousands of worker threads helps nobody).
  constexpr u64 kMaxWorkers = 256;
  const u64 env = env_count("VASIM_JOBS", 0, kMaxWorkers);
  if (env > 0) return static_cast<std::size_t>(env);
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace vasim
