file(REMOVE_RECURSE
  "CMakeFiles/vasim_common.dir/env.cpp.o"
  "CMakeFiles/vasim_common.dir/env.cpp.o.d"
  "CMakeFiles/vasim_common.dir/rng.cpp.o"
  "CMakeFiles/vasim_common.dir/rng.cpp.o.d"
  "CMakeFiles/vasim_common.dir/stats.cpp.o"
  "CMakeFiles/vasim_common.dir/stats.cpp.o.d"
  "CMakeFiles/vasim_common.dir/table.cpp.o"
  "CMakeFiles/vasim_common.dir/table.cpp.o.d"
  "libvasim_common.a"
  "libvasim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
