// Snapshot subsystem: byte-stream primitives, the chunk container's
// rejection guarantees (a damaged snapshot is never silently loaded), and
// the headline property of the whole feature -- restore-then-run is bitwise
// identical to never having paused, fuzzed over capture points, schemes and
// supplies with the semantics checker attached.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/snap/format.hpp"
#include "src/snap/io.hpp"
#include "src/workload/profiles.hpp"
#include "tests/fuzz_util.hpp"

namespace vasim {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- io primitives ---------------------------------------------------------

TEST(SnapIo, RoundTripsEveryType) {
  snap::Writer w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i32(-42);
  w.put_i64(-1234567890123ll);
  w.put_bool(true);
  w.put_bool(false);
  w.put_f64(-0.15625);
  w.put_str("vasim");
  w.put_str("");
  const unsigned char raw[3] = {1, 2, 3};
  w.put_bytes(raw, sizeof raw);

  snap::Reader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xABu);
  EXPECT_EQ(r.get_u16(), 0xBEEFu);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1234567890123ll);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_f64(), -0.15625);
  EXPECT_EQ(r.get_str(), "vasim");
  EXPECT_EQ(r.get_str(), "");
  unsigned char back[3] = {};
  r.get_bytes(back, sizeof back);
  EXPECT_EQ(back[2], 3);
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done("test"));
}

TEST(SnapIo, ReaderRejectsUnderrunAndJunk) {
  snap::Writer w;
  w.put_u32(7);
  snap::Reader r(w.data());
  EXPECT_THROW((void)r.get_u64(), snap::SnapshotError);  // only 4 bytes present
  snap::Reader r2(w.data());
  (void)r2.get_u16();
  EXPECT_THROW(r2.expect_done("test"), snap::SnapshotError);  // 2 bytes trailing
  snap::Writer wb;
  wb.put_u8(2);  // not a valid bool encoding
  snap::Reader r3(wb.data());
  EXPECT_THROW((void)r3.get_bool(), snap::SnapshotError);
  snap::Writer ws;
  ws.put_u32(1000);  // string length far past the buffer
  snap::Reader r4(ws.data());
  EXPECT_THROW((void)r4.get_str(), snap::SnapshotError);
}

TEST(SnapIo, StatSetCodecRoundTrips) {
  StatSet s;
  s.inc("fetch.count", 123);
  s.inc("commit.count", 456);
  s.set("ipc", 1.75);
  snap::Writer w;
  snap::put_statset(w, s);
  snap::Reader r(w.data());
  const StatSet back = snap::get_statset(r);
  EXPECT_EQ(back.counters(), s.counters());
  EXPECT_EQ(back.scalars(), s.scalars());
  EXPECT_TRUE(r.done());
}

TEST(SnapIo, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(snap::crc32("123456789", 9), 0xCBF43926u);
}

// ---- chunk container -------------------------------------------------------

snap::Snapshot two_chunk_snapshot() {
  snap::Snapshot s;
  snap::Writer a;
  a.put_u64(42);
  s.add(snap::chunk_tag("AAAA"), 1, std::move(a));
  snap::Writer b;
  b.put_str("payload-b");
  s.add(snap::chunk_tag("BBBB"), 3, std::move(b));
  return s;
}

TEST(SnapFormat, EncodeDecodeRoundTrips) {
  const snap::Snapshot s = two_chunk_snapshot();
  const std::vector<unsigned char> bytes = snap::encode_snapshot(s);
  const snap::Snapshot back = snap::decode_snapshot(bytes.data(), bytes.size());
  ASSERT_EQ(back.chunks().size(), 2u);
  EXPECT_EQ(back.chunks()[0].tag, snap::chunk_tag("AAAA"));
  EXPECT_EQ(back.chunks()[0].version, 1u);
  EXPECT_EQ(back.chunks()[0].payload, s.chunks()[0].payload);
  EXPECT_EQ(back.chunks()[1].version, 3u);
  EXPECT_EQ(back.require(snap::chunk_tag("BBBB")).payload, s.chunks()[1].payload);
  EXPECT_EQ(back.find(snap::chunk_tag("ZZZZ")), nullptr);
  EXPECT_THROW((void)back.require(snap::chunk_tag("ZZZZ")), snap::SnapshotError);
}

TEST(SnapFormat, RejectsEveryKindOfDamage) {
  const std::vector<unsigned char> good = snap::encode_snapshot(two_chunk_snapshot());

  {  // bad magic
    std::vector<unsigned char> bytes = good;
    bytes[0] ^= 0xFF;
    EXPECT_THROW((void)snap::decode_snapshot(bytes.data(), bytes.size()), snap::SnapshotError);
  }
  {  // unsupported container version
    std::vector<unsigned char> bytes = good;
    bytes[8] = 99;
    EXPECT_THROW((void)snap::decode_snapshot(bytes.data(), bytes.size()), snap::SnapshotError);
  }
  {  // endianness marker mismatch
    std::vector<unsigned char> bytes = good;
    bytes[12] ^= 0xFF;
    EXPECT_THROW((void)snap::decode_snapshot(bytes.data(), bytes.size()), snap::SnapshotError);
  }
  {  // flipped payload byte breaks that chunk's CRC
    std::vector<unsigned char> bytes = good;
    bytes[bytes.size() - 1] ^= 0x01;
    EXPECT_THROW((void)snap::decode_snapshot(bytes.data(), bytes.size()), snap::SnapshotError);
  }
  // every possible truncation point
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW((void)snap::decode_snapshot(good.data(), n), snap::SnapshotError)
        << "truncation to " << n << " bytes must be rejected";
  }
}

TEST(SnapFormat, FileRoundTripAndInfo) {
  const std::string path = tmp_path("vasim_test_container.vsnap");
  snap::write_snapshot_file(path, two_chunk_snapshot());
  const snap::Snapshot back = snap::read_snapshot_file(path);
  EXPECT_EQ(back.chunks().size(), 2u);

  const snap::SnapshotInfo info = snap::read_snapshot_info(path);
  EXPECT_EQ(info.format_version, snap::kFormatVersion);
  EXPECT_TRUE(info.endian_ok);
  ASSERT_EQ(info.chunks.size(), 2u);
  EXPECT_TRUE(info.chunks[0].crc_ok);
  EXPECT_EQ(snap::tag_name(info.chunks[0].tag), "AAAA");

  // Corrupt the last payload byte on disk: read_snapshot_file throws, the
  // diagnostic reader instead reports the bad CRC.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  EXPECT_THROW((void)snap::read_snapshot_file(path), snap::SnapshotError);
  const snap::SnapshotInfo bad = snap::read_snapshot_info(path);
  EXPECT_FALSE(bad.chunks[1].crc_ok);
  EXPECT_TRUE(bad.chunks[0].crc_ok);
  std::remove(path.c_str());
  EXPECT_THROW((void)snap::read_snapshot_file(path), snap::SnapshotError);  // missing file
}

// ---- Pcg32 state round trip ------------------------------------------------

TEST(SnapRng, Pcg32StateRoundTripsExactly) {
  Pcg32 rng(2013);
  for (int i = 0; i < 17; ++i) (void)rng.next_u32();
  (void)rng.next_gaussian();  // leaves a Box-Muller spare behind

  Pcg32 copy(1);  // different seed, fully overwritten below
  copy.restore_raw(rng.state(), rng.inc(), rng.gaussian_spare(), rng.has_gaussian_spare());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(copy.next_u32(), rng.next_u32()) << "draw " << i;
  }
  EXPECT_EQ(copy.next_gaussian(), rng.next_gaussian());  // consumes the spare
  EXPECT_EQ(copy.next_gaussian(), rng.next_gaussian());  // regenerates
}

// ---- run-level snapshots ---------------------------------------------------

core::RunnerConfig snap_config() {
  core::RunnerConfig rc;
  rc.instructions = 3'000;
  rc.warmup = 1'500;
  rc.check_semantics = true;
  rc.commit_trail_stride = 250;
  return rc;
}

void expect_bitwise_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.fault_rate_pct, b.fault_rate_pct);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.predictor_accuracy, b.predictor_accuracy);
  EXPECT_EQ(a.energy.dynamic_nj, b.energy.dynamic_nj);
  EXPECT_EQ(a.energy.leakage_nj, b.energy.leakage_nj);
  EXPECT_EQ(a.energy.edp, b.energy.edp);
  EXPECT_EQ(a.cpi.slots, b.cpi.slots);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  EXPECT_EQ(a.commit_trail, b.commit_trail);
  EXPECT_EQ(a.checker_checks, b.checker_checks);
}

TEST(RunSnapshot, WarmupCaptureResumesBitIdentically) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("razor");
  const core::ExperimentRunner runner(snap_config());
  const core::RunResult straight = runner.run(prof, *scheme, 0.97);

  const core::RunSnapshot snap = runner.capture(prof, scheme, 0.97, snap_config().warmup);
  EXPECT_EQ(snap.meta().captured_committed, snap_config().warmup);
  EXPECT_FALSE(snap.meta().base_captured);
  expect_bitwise_identical(runner.run_from(snap), straight);
}

TEST(RunSnapshot, FileRoundTripPreservesResumeIdentity) {
  const auto prof = workload::spec2006_profile("gcc");
  const core::ExperimentRunner runner(snap_config());
  const core::RunResult straight = runner.run_fault_free(prof, 0.97);

  const std::string path = tmp_path("vasim_test_run.vsnap");
  runner.capture(prof, std::nullopt, 0.97, 800).write_file(path);
  const core::RunSnapshot back = core::RunSnapshot::read_file(path);
  EXPECT_TRUE(back.meta().fault_free);
  EXPECT_EQ(back.meta().profile.name, "gcc");
  expect_bitwise_identical(runner.run_from(back), straight);
  std::remove(path.c_str());
}

TEST(RunSnapshot, UnknownChunksAreSkippedOnRestore) {
  const auto prof = workload::spec2006_profile("bzip2");
  const core::ExperimentRunner runner(snap_config());
  const core::RunResult straight = runner.run_fault_free(prof, 1.10);

  core::RunSnapshot snap = runner.capture(prof, std::nullopt, 1.10, 1'000);
  snap::Writer future;
  future.put_str("from a newer vasim");
  snap.container().add(snap::chunk_tag("ZZZZ"), 7, std::move(future));
  // Round-trip through the encoder so the unknown chunk also survives the
  // on-disk framing, then restore: the reader must skip what it cannot parse.
  const std::vector<unsigned char> bytes = snap::encode_snapshot(snap.container());
  const core::RunSnapshot reread =
      core::RunSnapshot::from_container(snap::decode_snapshot(bytes.data(), bytes.size()));
  expect_bitwise_identical(runner.run_from(reread), straight);
}

TEST(RunSnapshot, MismatchedResumeConfigIsRejected) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("razor");
  const core::ExperimentRunner runner(snap_config());
  const core::RunSnapshot snap = runner.capture(prof, scheme, 0.97, 500);

  core::RunnerConfig other = snap_config();
  other.warmup += 1;  // warmup-relevant field -> different warmup key
  EXPECT_THROW((void)core::ExperimentRunner(other).run_from(snap), snap::SnapshotError);

  core::RunnerConfig rob = snap_config();
  rob.core.rob_entries += 8;  // machine shape is warmup-relevant too
  EXPECT_THROW((void)core::ExperimentRunner(rob).run_from(snap), snap::SnapshotError);

  // Measurement-only fields are NOT part of the key: a different
  // instruction count resumes fine.
  core::RunnerConfig longer = snap_config();
  longer.instructions = 4'000;
  const core::RunResult r = core::ExperimentRunner(longer).run_from(snap);
  EXPECT_EQ(r.committed, 4'000u);
}

TEST(RunSnapshot, VddOverrideOnlyLegalForFaultFree) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("razor");
  const core::ExperimentRunner runner(snap_config());

  const core::RunSnapshot faulty = runner.capture(prof, scheme, 0.97, 500);
  EXPECT_THROW((void)runner.run_from(faulty, 1.04), snap::SnapshotError);
  expect_bitwise_identical(runner.run_from(faulty, 0.97),  // equal override is a no-op
                           runner.run_from(faulty));

  // Fault-free execution is supply-independent; only energy accounting moves.
  const core::RunSnapshot base = runner.capture(prof, std::nullopt, 0.97, 500);
  const core::RunResult at104 = runner.run_from(base, 1.04);
  const core::RunResult straight104 = runner.run_fault_free(prof, 1.04);
  expect_bitwise_identical(at104, straight104);
}

TEST(RunSnapshot, PeriodicIntervalSnapshotsAreWrittenAndLoadable) {
  const std::string prefix = tmp_path("vasim_test_periodic-");
  core::RunnerConfig rc = snap_config();
  rc.snapshot_interval = 1'000;
  rc.snapshot_path = prefix;
  const auto prof = workload::spec2006_profile("gobmk");
  const core::ExperimentRunner runner(rc);
  const core::RunResult straight = runner.run_fault_free(prof, 0.97);

  std::vector<std::string> files;
  const std::string dir = std::filesystem::temp_directory_path().string();
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("vasim_test_periodic-", 0) == 0) files.push_back(e.path().string());
  }
  // 4500 committed instructions at interval 1000 -> at least 4 snapshots.
  EXPECT_GE(files.size(), 4u);
  for (const std::string& f : files) {
    const core::RunSnapshot s = core::RunSnapshot::read_file(f);
    expect_bitwise_identical(core::ExperimentRunner(snap_config()).run_from(s), straight);
    std::remove(f.c_str());
  }
}

TEST(RunSnapshot, MetaCodecRoundTrips) {
  core::RunMeta m;
  m.fault_free = false;
  m.profile = workload::spec2006_profile("tonto");
  m.scheme = *core::scheme_by_name("cds");
  m.vdd = 1.04;
  m.instructions = 123;
  m.warmup = 456;
  m.predictor = core::PredictorKind::kTvp;
  m.check_semantics = true;
  m.commit_trail_stride = 42;
  m.captured_committed = 789;
  m.captured_cycle = 4321;
  m.base_captured = true;
  m.base.inc("commit.count", 9);
  m.base_committed = 9;
  m.base_cycles = 77;
  m.warmup_key = 0xABCDEF0123456789ull;

  snap::Writer w;
  core::put_run_meta(w, m);
  snap::Reader r(w.data());
  const core::RunMeta back = core::get_run_meta(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.fault_free, m.fault_free);
  EXPECT_EQ(back.profile.name, m.profile.name);
  EXPECT_EQ(back.profile.seed, m.profile.seed);
  EXPECT_EQ(back.scheme.name, m.scheme.name);
  EXPECT_EQ(back.scheme.policy, m.scheme.policy);
  EXPECT_EQ(back.vdd, m.vdd);
  EXPECT_EQ(back.instructions, m.instructions);
  EXPECT_EQ(back.warmup, m.warmup);
  EXPECT_EQ(back.predictor, m.predictor);
  EXPECT_EQ(back.check_semantics, m.check_semantics);
  EXPECT_EQ(back.commit_trail_stride, m.commit_trail_stride);
  EXPECT_EQ(back.captured_committed, m.captured_committed);
  EXPECT_EQ(back.captured_cycle, m.captured_cycle);
  EXPECT_EQ(back.base_captured, m.base_captured);
  EXPECT_EQ(back.base.counters(), m.base.counters());
  EXPECT_EQ(back.base_committed, m.base_committed);
  EXPECT_EQ(back.base_cycles, m.base_cycles);
  EXPECT_EQ(back.warmup_key, m.warmup_key);
}

// ---- warmup keys -----------------------------------------------------------

TEST(WarmupKey, GroupsExactlyTheShareableRuns) {
  const core::RunnerConfig rc = snap_config();
  const auto bzip2 = workload::spec2006_profile("bzip2");
  const auto gcc = workload::spec2006_profile("gcc");
  const auto razor = core::scheme_by_name("razor");
  const auto ep = core::scheme_by_name("ep");

  // Fault-free: vdd excluded (supply cannot affect fault-free execution).
  EXPECT_EQ(core::warmup_key_bytes(rc, bzip2, std::nullopt, 0.97),
            core::warmup_key_bytes(rc, bzip2, std::nullopt, 1.10));
  // Faulty: vdd is part of the key.
  EXPECT_NE(core::warmup_key_bytes(rc, bzip2, razor, 0.97),
            core::warmup_key_bytes(rc, bzip2, razor, 1.04));
  // Scheme, profile and warmup-relevant config all split groups.
  EXPECT_NE(core::warmup_key_bytes(rc, bzip2, razor, 0.97),
            core::warmup_key_bytes(rc, bzip2, ep, 0.97));
  EXPECT_NE(core::warmup_key_bytes(rc, bzip2, razor, 0.97),
            core::warmup_key_bytes(rc, gcc, razor, 0.97));
  core::RunnerConfig longer = rc;
  longer.instructions = 100'000;  // measurement-only -> same key
  EXPECT_EQ(core::warmup_key_bytes(rc, bzip2, razor, 0.97),
            core::warmup_key_bytes(longer, bzip2, razor, 0.97));
  core::RunnerConfig wider = rc;
  wider.core.commit_width += 1;
  EXPECT_NE(core::warmup_key_bytes(rc, bzip2, razor, 0.97),
            core::warmup_key_bytes(wider, bzip2, razor, 0.97));
}

// ---- warm-start sweep sharing ----------------------------------------------

TEST(SweepWarmStart, ReuseWarmupIsChecksumIdenticalAndAccounted) {
  std::vector<core::SweepJob> jobs;
  for (const auto& name : {"bzip2", "gobmk"}) {
    const auto prof = workload::spec2006_profile(name);
    // Fault-free at two supplies (one shared group per profile) plus two
    // faulty schemes at matching supplies (groups of one, dropped).
    jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
    jobs.push_back({prof, std::nullopt, 1.10, std::nullopt});
    jobs.push_back({prof, core::scheme_by_name("razor"), 0.97, std::nullopt});
    jobs.push_back({prof, core::scheme_by_name("ep"), 0.97, std::nullopt});
  }
  core::SweepRunner plain(snap_config(), 4);
  core::SweepRunner shared(snap_config(), 4);
  shared.set_reuse_warmup(true);

  const core::SweepReport a = plain.run(jobs);
  const core::SweepReport b = shared.run(jobs);
  EXPECT_EQ(core::sweep_checksum(a), core::sweep_checksum(b));
  EXPECT_EQ(a.warmup_groups, 0u);
  EXPECT_EQ(b.warmup_groups, 2u);  // one fault-free pair per profile
  EXPECT_GT(b.warmup_cycles_simulated, 0u);
  EXPECT_EQ(b.warmup_cycles_saved, b.warmup_cycles_simulated);  // groups of 2
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_bitwise_identical(a.jobs[i].result, b.jobs[i].result);
  }
}

TEST(SweepWarmStart, SingleWorkerMatchesPool) {
  std::vector<core::SweepJob> jobs;
  const auto prof = workload::spec2006_profile("bzip2");
  jobs.push_back({prof, std::nullopt, 0.97, std::nullopt});
  jobs.push_back({prof, std::nullopt, 1.04, std::nullopt});
  jobs.push_back({prof, std::nullopt, 1.10, std::nullopt});
  core::SweepRunner one(snap_config(), 1);
  core::SweepRunner four(snap_config(), 4);
  one.set_reuse_warmup(true);
  four.set_reuse_warmup(true);
  const core::SweepReport r1 = one.run(jobs);
  const core::SweepReport r4 = four.run(jobs);
  EXPECT_EQ(core::sweep_checksum(r1), core::sweep_checksum(r4));
  EXPECT_EQ(r1.warmup_groups, 1u);
  EXPECT_EQ(r4.warmup_groups, 1u);
  EXPECT_EQ(r1.warmup_cycles_saved, 2 * r1.warmup_cycles_simulated);  // group of 3
}

// ---- fuzz: capture anywhere, resume bit-identically ------------------------

TEST(SnapFuzz, RandomCapturePointsResumeBitIdentically) {
  const std::vector<u64> seeds = fuzzutil::seeds("snap", 9'000, 6);
  const char* benches[] = {"bzip2", "gcc", "gobmk", "tonto"};
  const char* schemes[] = {"fault-free", "razor", "ep", "abs", "ffs", "cds"};
  const double vdds[] = {0.97, 1.04};

  for (const u64 seed : seeds) {
    Pcg32 rng(seed);
    const auto prof = workload::spec2006_profile(benches[rng.next_u32() % 4]);
    const std::string scheme_name = schemes[rng.next_u32() % 6];
    const std::optional<cpu::SchemeConfig> scheme =
        scheme_name == "fault-free" ? std::optional<cpu::SchemeConfig>{}
                                    : core::scheme_by_name(scheme_name);
    const double vdd = scheme ? vdds[rng.next_u32() % 2] : 0.97;
    const core::RunnerConfig rc = snap_config();
    // Anywhere in the run: before, at, and after the warmup boundary, plus
    // past the end (resolves to the final state).
    const u64 span = rc.warmup + rc.instructions;
    const u64 at = rng.next_u32() % (span + span / 10);
    SCOPED_TRACE("seed " + std::to_string(seed) + " " + prof.name + "/" + scheme_name + " @" +
                 std::to_string(vdd) + " capture@" + std::to_string(at));

    const core::ExperimentRunner runner(rc);
    const core::CaptureResult cr = runner.run_and_capture(prof, scheme, vdd, at);
    EXPECT_GE(cr.snapshot.meta().captured_committed, std::min(at, span));
    const core::RunResult resumed = runner.run_from(cr.snapshot);
    expect_bitwise_identical(resumed, cr.result);
  }
}

}  // namespace
}  // namespace vasim
