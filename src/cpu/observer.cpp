#include "src/cpu/observer.hpp"

#include <string>

namespace vasim::cpu {

// ---- ObserverMux -----------------------------------------------------------

void ObserverMux::add(PipelineObserver* obs) {
  if (obs != nullptr) observers_.push_back(obs);
}

PipelineObserver* ObserverMux::as_observer() {
  if (observers_.empty()) return nullptr;
  if (observers_.size() == 1) return observers_.front();
  return this;
}

void ObserverMux::on_cycle(Cycle now) {
  for (PipelineObserver* o : observers_) o->on_cycle(now);
}
void ObserverMux::on_fetch(SeqNum seq, const isa::DynInst& di) {
  for (PipelineObserver* o : observers_) o->on_fetch(seq, di);
}
void ObserverMux::on_dispatch(SeqNum seq) {
  for (PipelineObserver* o : observers_) o->on_dispatch(seq);
}
void ObserverMux::on_issue(SeqNum seq, bool predicted_faulty) {
  for (PipelineObserver* o : observers_) o->on_issue(seq, predicted_faulty);
}
void ObserverMux::on_complete(SeqNum seq) {
  for (PipelineObserver* o : observers_) o->on_complete(seq);
}
void ObserverMux::on_commit(SeqNum seq) {
  for (PipelineObserver* o : observers_) o->on_commit(seq);
}
void ObserverMux::on_squash(SeqNum first, SeqNum last) {
  for (PipelineObserver* o : observers_) o->on_squash(first, last);
}

// ---- KanataTraceWriter -----------------------------------------------------

KanataTraceWriter::KanataTraceWriter(std::ostream* out, u64 max_instructions)
    : out_(out), max_instructions_(max_instructions) {}

bool KanataTraceWriter::tracked(SeqNum seq) const { return seq < max_instructions_; }

void KanataTraceWriter::sync_cycle() {
  if (!header_written_) {
    *out_ << "Kanata\t0004\n";
    *out_ << "C=\t" << now_ << "\n";
    emitted_cycle_ = now_;
    header_written_ = true;
    return;
  }
  if (now_ > emitted_cycle_) {
    *out_ << "C\t" << (now_ - emitted_cycle_) << "\n";
    emitted_cycle_ = now_;
  }
}

void KanataTraceWriter::on_cycle(Cycle now) { now_ = now; }

void KanataTraceWriter::on_fetch(SeqNum seq, const isa::DynInst& di) {
  if (!tracked(seq)) return;
  sync_cycle();
  ++logged_;
  *out_ << "I\t" << seq << "\t" << seq << "\t0\n";
  *out_ << "L\t" << seq << "\t0\t" << std::hex << di.pc << std::dec << ": "
        << isa::to_string(di.op) << "\n";
  *out_ << "S\t" << seq << "\t0\tF\n";
}

void KanataTraceWriter::on_dispatch(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tDs\n";
}

void KanataTraceWriter::on_issue(SeqNum seq, bool predicted_faulty) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tIs\n";
  if (predicted_faulty) *out_ << "L\t" << seq << "\t1\t[predicted faulty]\n";
}

void KanataTraceWriter::on_complete(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tCm\n";
}

void KanataTraceWriter::on_commit(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "R\t" << seq << "\t" << retire_id_++ << "\t0\n";
}

void KanataTraceWriter::on_squash(SeqNum first, SeqNum last) {
  sync_cycle();
  for (SeqNum s = first; s <= last && tracked(s); ++s) {
    *out_ << "R\t" << s << "\t0\t1\n";  // type 1 = flushed
  }
}

// ---- TraceObserver ---------------------------------------------------------

TraceObserver::TraceObserver(obs::ChromeTraceWriter* writer, u64 max_instructions)
    : writer_(writer), max_instructions_(max_instructions) {
  writer_->process_name(1, "pipeline (1 cycle = 1us)");
}

TraceObserver::Rec* TraceObserver::rec(SeqNum seq) {
  if (!tracked(seq)) return nullptr;
  if (recs_.size() <= seq) recs_.resize(static_cast<std::size_t>(seq) + 1);
  return &recs_[static_cast<std::size_t>(seq)];
}

void TraceObserver::on_fetch(SeqNum seq, const isa::DynInst& di) {
  Rec* r = rec(seq);
  if (r == nullptr) return;
  *r = Rec{};  // a refetch re-assigns the seq: restart the row
  r->fetch = now_;
  r->pc = di.pc;
  r->op = di.op;
  r->phase = 1;
}

void TraceObserver::on_dispatch(SeqNum seq) {
  Rec* r = rec(seq);
  if (r == nullptr || r->phase != 1) return;
  r->dispatch = now_;
  r->phase = 2;
}

void TraceObserver::on_issue(SeqNum seq, bool predicted_faulty) {
  Rec* r = rec(seq);
  if (r == nullptr || r->phase != 2) return;
  r->issue = now_;
  r->pred_fault = predicted_faulty;
  r->phase = 3;
}

void TraceObserver::on_complete(SeqNum seq) {
  Rec* r = rec(seq);
  if (r == nullptr || r->phase != 3) return;
  r->complete = now_;
  r->phase = 4;
}

void TraceObserver::on_commit(SeqNum seq) {
  Rec* r = rec(seq);
  if (r == nullptr || r->phase != 4) return;
  const auto us = [](Cycle c) { return static_cast<double>(c); };
  const auto span = [&](std::string_view name, Cycle from, Cycle to) {
    // Zero-cycle phases still get a sliver so the row renders.
    const double dur = to > from ? us(to - from) : 0.1;
    writer_->complete_event(name, "instruction", 1, seq, us(from), dur);
  };
  span("frontend", r->fetch, r->dispatch);
  span("queue", r->dispatch, r->issue);
  span(r->pred_fault ? "execute [pred-faulty]" : "execute", r->issue, r->complete);
  span("retire-wait", r->complete, now_);
  writer_->instant_event("commit", "instruction", 1, seq, us(now_),
                         {{"pc", std::to_string(r->pc)},
                          {"op", obs::json_quote(isa::to_string(r->op))}});
  r->phase = 0;
  ++traced_;
}

void TraceObserver::on_squash(SeqNum first, SeqNum last) {
  for (SeqNum s = first; s <= last && tracked(s); ++s) {
    if (recs_.size() <= s || recs_[static_cast<std::size_t>(s)].phase == 0) continue;
    writer_->instant_event("squash", "instruction", 1, s, static_cast<double>(now_));
    recs_[static_cast<std::size_t>(s)].phase = 0;
  }
}

}  // namespace vasim::cpu
