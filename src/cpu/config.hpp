// Core configuration mirroring Fabscalar Core-1 (Section 4.1/4.2): a 4-wide
// out-of-order pipeline with a 10-stage fetch-to-execute mispredict loop,
// 32-entry issue queue, 96 physical registers, and a two-level cache
// hierarchy (split 32 KB L1 at 1 cycle, 8 MB L2 at 25 cycles, memory at 240).
#ifndef VASIM_CPU_CONFIG_HPP
#define VASIM_CPU_CONFIG_HPP

#include "src/common/types.hpp"

namespace vasim::cpu {

/// Which scheduler kernel drives the select stage.
///
///  - kIssueWindow: the bitmask window (PR 3): candidates are a per-cycle
///    masked scan of waiting & ready slots in ring (age) order.
///  - kDelayQueue: readiness-ordered bucket queue (delay-tracking select,
///    after Diavastos & Carlson's load-delay-tracking scheduler): every
///    dispatched instruction is filed under its *expected* ready cycle
///    (cache-hit assumption for load producers, repaired on resolve), so
///    select pops this cycle's bucket instead of scanning the window.
/// Both kernels produce the same committed architectural stream; cycle
/// timing may differ (selection order within a cycle is readiness order,
/// not strict age order), so each kernel has its own golden fixture.
enum class SchedKernel : u8 { kIssueWindow = 0, kDelayQueue = 1 };

[[nodiscard]] const char* to_string(SchedKernel k);
/// Parses "issue-window" / "delay-queue"; returns false on anything else.
[[nodiscard]] bool sched_kernel_from_string(const char* name, SchedKernel& out);

/// Cache geometry + latency.
struct CacheConfig {
  u64 size_bytes = 32 * 1024;
  int ways = 4;
  int line_bytes = 64;
  Cycle latency = 1;
};

/// Whole-core configuration.
struct CoreConfig {
  // Widths (Core-1 is uniformly 4-wide).
  int fetch_width = 4;
  int dispatch_width = 4;
  int issue_width = 4;
  int commit_width = 4;

  // Window sizes.
  int rob_entries = 128;
  int iq_entries = 32;
  int lq_entries = 24;
  int sq_entries = 24;
  int phys_regs = 96;

  // Front-end depth in cycles from fetch to dispatch-complete.  With issue,
  // register read and execute this yields the paper's 10-stage
  // fetch-to-execute mispredict loop: fetch(2) decode(2) rename(1)
  // dispatch(1) wakeup/select(1+1) regread(1) execute(1).
  int frontend_depth = 7;
  /// Extra cycles to restart fetch after a replay recovery (rename-map
  /// restore + refetch handshake).
  int replay_recovery = 3;

  // Functional units.
  int simple_alus = 2;   ///< 1-cycle, fully pipelined
  int complex_alus = 1;  ///< mul 3-cycle pipelined; div 12-cycle unpipelined
  int branch_units = 1;
  int load_ports = 1;
  int store_ports = 1;
  Cycle mul_latency = 3;
  Cycle div_latency = 12;

  // Branch prediction.
  int gshare_bits = 14;   ///< table = 2^bits 2-bit counters
  int btb_entries = 2048;

  // Caches (paper Section 4.2).
  CacheConfig l1i{32 * 1024, 4, 64, 1};
  CacheConfig l1d{32 * 1024, 4, 64, 1};
  CacheConfig l2{8 * 1024 * 1024, 16, 64, 25};
  Cycle memory_latency = 240;
  /// Next-line prefetch into L2 on every demand L1D miss.  Off by default
  /// (the paper's hierarchy has no prefetcher); used by the ablation bench
  /// to show how shrinking memory slack exposes the VTE's extra cycle.
  bool l2_next_line_prefetch = false;

  /// Model wrong-path execution after branch mispredicts: fetch continues
  /// down the predicted path with synthesized instructions that consume
  /// fetch/issue/execute resources, pollute the caches and burn energy until
  /// the branch resolves and squashes them.  Off by default (the baseline
  /// calibration uses fetch-stall mispredict handling); exercised by tests
  /// and the ablation bench.
  bool model_wrong_path = false;

  /// Abort knob: cycles without a commit before the pipeline declares a
  /// deadlock (correctness invariant, exercised by tests).
  Cycle watchdog_cycles = 100'000;

  /// Scheduler kernel driving the select stage (see SchedKernel).
  SchedKernel sched_kernel = SchedKernel::kIssueWindow;
};

/// Validates the scheduling-structure geometry with named errors (throws
/// std::invalid_argument).  These constraints used to be implicit in
/// next_pow2_u32 and slot masking; an out-of-range config would silently
/// degrade (an issue queue larger than the ROB can never fill) or overflow.
/// Called by the Pipeline constructor; callers building configs from
/// user-supplied knobs (CLI, sweeps) can call it early for a better error.
void validate_core_config(const CoreConfig& cfg);

}  // namespace vasim::cpu

#endif  // VASIM_CPU_CONFIG_HPP
