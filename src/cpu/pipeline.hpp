// Cycle-level 4-wide out-of-order pipeline with timing-fault injection and
// the paper's fault-handling schemes.
//
// Model summary (see DESIGN.md section 5 for the fidelity argument):
//  * Trace-driven: the committed path comes from an InstructionSource; on a
//    branch mispredict, fetch stalls until the branch resolves (wrong-path
//    work is not simulated).
//  * An instruction selected at cycle t broadcasts its result tag at
//    t + exec_latency (back-to-back wakeup for 1-cycle ops) and completes at
//    t + exec_latency + 1.
//  * A timing fault is decided at select time by the FaultModel oracle.  A
//    correctly predicted fault is "handled": under VTE the instruction takes
//    one extra cycle and the resource it occupies is frozen for one cycle;
//    under Error Padding the whole pipeline stalls for one cycle when the
//    instruction transits its faulty stage.  An unpredicted (or
//    mispredicted-stage) fault triggers Razor-style replay.
//
// Storage layer: the scheduler state lives in the data-oriented kernel of
// src/cpu/sched_kernel.hpp (structure-of-arrays issue window with bitmask
// wakeup/select, ring-buffered frontend/refetch queues, a countdown event
// wheel, all carved from one arena) -- see docs/perf.md.  The model itself
// is unchanged; tests/test_golden_equiv.cpp pins bitwise-identical results.
#ifndef VASIM_CPU_PIPELINE_HPP
#define VASIM_CPU_PIPELINE_HPP

#include <array>
#include <optional>
#include <vector>

#include "src/adapt/clock.hpp"
#include "src/common/stats.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/timeline.hpp"
#include "src/cpu/branch_pred.hpp"
#include "src/cpu/cache.hpp"
#include "src/cpu/check_hooks.hpp"
#include "src/cpu/config.hpp"
#include "src/cpu/delay_sched.hpp"
#include "src/cpu/fu_pool.hpp"
#include "src/cpu/hooks.hpp"
#include "src/cpu/observer.hpp"
#include "src/cpu/sched_kernel.hpp"
#include "src/isa/dyninst.hpp"
#include "src/timing/fault_model.hpp"

namespace vasim::cpu {

/// Outcome of a pipeline run.
struct PipelineResult {
  u64 committed = 0;
  Cycle cycles = 0;
  StatSet stats;
  /// Per-cause commit-slot attribution for the measured window; the
  /// invariant cpi.total() == cycles * commit_width always holds.
  obs::CpiStack cpi;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(committed) / static_cast<double>(cycles);
  }
};

/// The simulator.  One instance per (workload, scheme, supply) run.
class Pipeline {
 public:
  /// `fault_model` may be null (fault-free); `predictor` may be null (Razor
  /// or fault-free).  Non-owning pointers; must outlive the pipeline.
  Pipeline(const CoreConfig& cfg, const SchemeConfig& scheme, isa::InstructionSource* source,
           const timing::FaultModel* fault_model, FaultPredictor* predictor);

  /// Runs until `max_committed` instructions commit (or the source drains).
  /// `warmup_committed` instructions are executed first with the same
  /// machinery but excluded from the reported statistics -- caches, branch
  /// predictor and TEP reach steady state, mirroring the paper's SimPoint
  /// phase methodology.
  PipelineResult run(u64 max_committed, u64 warmup_committed = 0);

  /// Advances one cycle; false when everything has drained.
  bool step();

  /// Advances up to `max_cycles` cycles, stopping early when the commit
  /// limit is reached or everything drains.  Returns the cycles actually
  /// executed.  Exactly equivalent to calling step() in a loop with the
  /// same commit-limit guard -- the batched lockstep driver uses this to
  /// amortize the per-job call overhead over a slice of cycles.
  u32 step_n(u32 max_cycles);

  /// True when the source is exhausted and every in-flight structure is
  /// empty: step() would return false.
  [[nodiscard]] bool drained() const {
    return source_done_ && window_.empty() && frontend_.empty() && refetch_.empty();
  }

  /// Batch entry point: prefetches the scheduler's hot mask words ahead of
  /// this pipeline's next step() slice (see IssueWindow::prefetch_hot).
  void prefetch_hot_state() const { window_.prefetch_hot(); }

  // ---- external run driving (snapshot capture / warm-start restore) --------
  // run() is a thin composition of these three primitives; an external
  // driver (core::Runner's snapshot paths) uses them directly so it can
  // pause at arbitrary commit counts *without* perturbing the commit
  // quantization run() would have produced.

  /// Pins the total-commit ceiling the commit stage honours during step().
  /// Must match the phase boundary run() would have used (warmup, then
  /// warmup + instructions) for bit-identical continuation.
  void set_commit_limit(u64 limit) { commit_limit_ = limit; }

  /// Assembles the measured-window result exactly as run() does, given the
  /// base observations captured at the warmup boundary.
  [[nodiscard]] PipelineResult result_window(const StatSet& base, u64 base_committed,
                                             Cycle base_cycles) const;

  /// Serializes the complete deterministic machine state: rename/free-list/
  /// ready/producer maps, the SoA issue window (ROB/LSQ occupancy included),
  /// frontend/refetch rings, the event wheel with its global-stall shift,
  /// caches, branch predictor, FU reservations, all cycle-state scalars, the
  /// cold StatSet and every registry counter.  Scratch arrays (due_/re_/
  /// cand_words_) are dead between step() calls and are not serialized.
  void save_state(snap::Writer& w) const;

  /// Restores into a pipeline freshly constructed with the same CoreConfig,
  /// SchemeConfig and wiring.  Throws snap::SnapshotError on any geometry
  /// mismatch; continuation after a successful restore is bit-identical to
  /// the uninterrupted run (tests/test_snap.cpp, golden grid).
  void restore_state(snap::Reader& r);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] u64 committed() const { return committed_; }
  /// Cold-path StatSet only (registry counters live elsewhere); use
  /// snapshot_stats() for the complete picture.
  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] StatSet& stats() { return stats_; }
  /// Cumulative run-so-far statistics: the cold StatSet merged with every
  /// registry counter, cache/branch-predictor state and the cycle count.
  [[nodiscard]] StatSet snapshot_stats() const;
  /// The zero-lookup metric registry backing the hot-path counters.
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  /// Cumulative CPI stack (commit-slot attribution) since construction.
  [[nodiscard]] obs::CpiStack cpi_stack() const;

  /// Replaces all attached observers with `observer` (null detaches
  /// everything).  Thin wrapper over the ObserverMux; non-owning.
  void set_observer(PipelineObserver* observer) {
    observer_mux_.clear();
    add_observer(observer);
  }
  /// Attaches an additional lifecycle observer (e.g. a KanataTraceWriter
  /// and a TraceObserver at the same time); non-owning, null ignored.
  void add_observer(PipelineObserver* observer) {
    observer_mux_.add(observer);
    observer_ = observer_mux_.as_observer();
  }

  /// Attaches the fine-grained scheduler-kernel event sink (null detaches).
  /// Non-owning; the pipeline never reads back from it.  Builds with
  /// VASIM_CHECK_HOOKS=0 compile every emission site away; use
  /// kCheckHooksEnabled to detect that configuration.
  void set_check_hooks(SchedHooks* hooks) { hooks_ = hooks; }
  [[nodiscard]] SchedHooks* check_hooks() const { return hooks_; }

  /// Attaches an interval sampler: `timeline` records one window at the
  /// first cycle boundary at or past each `interval`-commit threshold
  /// (null detaches).  Non-owning; the timeline must have been built over
  /// this pipeline's registry().  Calling again after a state restore
  /// re-arms the next threshold from the restored commit count.
  void set_timeline(obs::Timeline* timeline, u64 interval);
  [[nodiscard]] obs::Timeline* timeline() const { return timeline_; }

  /// Attaches an adaptive clock domain (null detaches).  Non-owning.  The
  /// first attach registers the dvfs counters in registry() -- static runs
  /// never attach one, so their registry geometry, checksums and snapshots
  /// are bit-identical to builds without the subsystem.  The epoch stepper
  /// follows the timeline discipline: one controller step at the first
  /// cycle boundary at or past each epoch-commit threshold; re-attaching
  /// after a state restore re-arms the threshold from the restored commit
  /// count and refreshes the cached period scale.
  void set_clock(adapt::ClockDomain* clock);
  [[nodiscard]] adapt::ClockDomain* clock() const { return clock_; }

  /// Attaches the wall-time self-profiler (null detaches).  Non-owning; a
  /// no-op in builds with VASIM_PROF_HOOKS=0.
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = obs::kProfHooksEnabled ? profiler : nullptr;
  }
  [[nodiscard]] obs::Profiler* profiler() const { return profiler_; }

  [[nodiscard]] const MemoryHierarchy& memory() const { return memory_; }
  [[nodiscard]] const BranchPredictor& branch_predictor() const { return bpred_; }
  [[nodiscard]] const FuPool& fu_pool() const { return fus_; }

 private:
  struct FetchedInst {
    isa::DynInst di;
    SeqNum seq = 0;
    Cycle arrive = 0;  ///< cycle the instruction becomes dispatchable
    FaultPrediction pred;
    u64 history = 0;
    bool safe_mode = false;
    bool retire_fault = false;
    bool wrong_path = false;
  };

  struct RefetchInst {
    isa::DynInst di;
    bool safe_mode = false;
  };

  // ---- per-cycle stages --------------------------------------------------
  void process_events();
  void commit_stage();
  void select_stage();
  /// select_stage body for SchedKernel::kDelayQueue: pop the bucket due this
  /// cycle into the ready FIFO, then issue from the FIFO in policy order.
  void delay_select_stage();
  void dispatch_stage();
  void fetch_stage();

  // ---- helpers ------------------------------------------------------------
  [[nodiscard]] InstState* find(SeqNum seq) { return window_.find(seq); }
  [[nodiscard]] bool operands_ready(const InstState& is) const;
  [[nodiscard]] bool load_may_issue(const InstState& load, bool* forwarded) const;
  /// Returns true when the instruction actually left the queue this cycle.
  bool issue_one(InstState& is, bool fwd);
  /// Dispatch-time execution-latency estimate for the delay-tracking kernel:
  /// class latency with loads assumed to hit the L1.
  [[nodiscard]] Cycle exec_estimate(isa::OpClass op) const;
  /// Why no instruction can retire this cycle (CPI-stack attribution).
  [[nodiscard]] obs::CpiCause classify_empty_window() const;
  [[nodiscard]] obs::CpiCause classify_unretirable_head(const InstState& head);
  /// Queues `cycles` global-stall cycles attributed to `cause` (EP stall or
  /// replay recirculation).
  void push_global_stall(int cycles, obs::CpiCause cause);
  void do_replay(SeqNum seq);
  /// Squashes every instruction younger than `last_kept`; when
  /// `refetch_true_path` is set, squashed true-path work re-enters the
  /// refetch queue (replay recovery); wrong-path work is always discarded.
  void squash_younger(SeqNum last_kept, bool refetch_true_path);
  [[nodiscard]] isa::DynInst synthesize_wrong_path(Pc pc);
  void apply_global_stall();
  void shift_all_times(Cycle delta);
  void schedule(Cycle cycle, EventKind kind, SeqNum seq);
  void broadcast(InstState& is);
  [[nodiscard]] Cycle stage_offset(timing::OooStage stage, Cycle exec_lat) const;
  [[nodiscard]] bool faults_enabled() const;
  void train_predictor(const InstState& is, bool faulty);

  /// Emits one SchedHooks event; the whole call folds away when the hooks
  /// are compiled out, and costs a single predictable branch when detached.
  template <typename F>
  void fire(F&& f) const {
    if constexpr (kCheckHooksEnabled) {
      if (hooks_ != nullptr) f(*hooks_);
    }
  }

  /// Samples the timeline when the cycle that just ended crossed a K-commit
  /// threshold; one predictable branch per cycle when detached.
  void note_timeline() {
    if (timeline_ != nullptr && committed_ >= timeline_next_) {
      timeline_->sample(now_, committed_);
      timeline_next_ = (committed_ / timeline_interval_ + 1) * timeline_interval_;
    }
  }

  /// Advances the adaptive clock one cycle and steps the DVFS controller at
  /// epoch-commit thresholds (same re-arm discipline as note_timeline, so
  /// every driver -- run, batch, shard, serve -- steps it identically).
  void note_clock() {
    if (clock_ == nullptr) return;
    clock_->tick();
    if (committed_ >= clock_next_) {
      clock_->step_epoch(epoch_sample());
      clock_period_scale_ = clock_->period_scale();
      clock_next_ = (committed_ / clock_interval_ + 1) * clock_interval_;
    }
  }

  /// Cumulative totals for one controller step.
  [[nodiscard]] adapt::EpochSample epoch_sample() const;

  // ---- configuration -------------------------------------------------------
  CoreConfig cfg_;
  SchemeConfig scheme_;
  PipelineObserver* observer_ = nullptr;
  ObserverMux observer_mux_;
  SchedHooks* hooks_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  u64 timeline_interval_ = 0;
  u64 timeline_next_ = ~0ULL;  ///< next commit threshold; ~0 when detached
  adapt::ClockDomain* clock_ = nullptr;
  u64 clock_interval_ = 0;
  u64 clock_next_ = ~0ULL;          ///< next epoch-commit threshold
  double clock_period_scale_ = 1.0; ///< cached period for the fault oracle
  obs::Profiler* profiler_ = nullptr;
  isa::InstructionSource* source_;
  const timing::FaultModel* fault_model_;
  FaultPredictor* predictor_;

  // ---- metrics --------------------------------------------------------------
  // Declared before the components so memory_/fus_ can register their
  // counters during construction.
  obs::Registry registry_;
  // Hot-path counter handles, registered once in the constructor; each
  // increment is a single pointer bump (no string hashing per event).
  obs::Counter c_broadcast_, c_wakeup_match_, c_ep_stalls_, c_replays_,
      c_squash_, c_dcache_write_, c_committed_faulty_, c_commit_,
      c_inorder_stall_, c_inorder_replay_, c_sel_no_ready_, c_sel_blocked_,
      c_sel_issued_, c_sel_iq_occ_, c_sel_window_, c_sel_frontend_, c_select_,
      c_regread_, c_lsq_search_, c_stl_forward_, c_dcache_read_,
      c_fault_actual_, c_fault_handled_, c_fault_predicted_,
      c_fault_false_pos_, c_fault_false_neg_, c_dispatch_, c_iq_write_,
      c_fetch_, c_wrongpath_fetch_, c_branch_mispredict_, c_stall_cycles_;
  std::array<obs::Counter, timing::kNumOooStages> c_fault_stage_{};
  std::array<obs::Counter, obs::kNumCpiCauses> c_cpi_{};

  // ---- components -----------------------------------------------------------
  MemoryHierarchy memory_;
  BranchPredictor bpred_;
  FuPool fus_;

  // ---- rename state ---------------------------------------------------------
  std::vector<int> rename_map_;   // arch -> phys
  std::vector<int> free_list_;    // stack of free phys regs
  std::vector<u8> phys_ready_;
  std::vector<SeqNum> phys_producer_;  // phys reg -> producing seq (CPI attribution)

  // ---- scheduler kernel -----------------------------------------------------
  // One arena holds every per-run scratch structure: the SoA issue window,
  // the frontend/refetch rings, the event wheel's node pool, and the
  // per-cycle scratch arrays.  After construction the cycle loop never
  // touches the heap (tests/test_sched_kernel.cpp asserts this).
  Arena arena_;
  IssueWindow window_;            ///< ROB / issue window, SoA + bitmasks
  SeqNum next_seq_ = 0;
  Ring<FetchedInst> frontend_;    ///< fetched, not yet dispatched
  Ring<RefetchInst> refetch_;     ///< squashed work awaiting refetch
  // Pending events in a countdown wheel keyed by *stored* cycle: effective
  // due cycle = stored + event_shift_, which makes the global stall shift
  // O(1) for events (only the offset moves).
  EventWheel wheel_;
  Cycle event_shift_ = 0;
  Event* due_ = nullptr;          ///< per-cycle event scratch (arena)
  u32 due_n_ = 0;
  u64* cand_words_ = nullptr;     ///< select-stage candidate mask scratch
  RefetchInst* re_ = nullptr;     ///< squash-path refetch collection scratch
  u32 re_n_ = 0;
  // Delay-tracking kernel state (initialized and serialized only when
  // cfg_.sched_kernel == SchedKernel::kDelayQueue; baseline runs carry no
  // extra bytes in their arena or snapshots).
  bool delay_mode_ = false;
  DelayQueue dq_;
  u32* wake_slots_ = nullptr;     ///< newly-ready collection scratch (arena)
  u32* ready_list_ = nullptr;     ///< ready-FIFO drain scratch (arena)

  // ---- cycle state ---------------------------------------------------------
  Cycle now_ = 0;
  u64 committed_ = 0;
  u64 commit_limit_ = ~0ULL;  ///< run() pins this for exact instruction counts
  u64 age_counter_ = 0;
  int iq_count_ = 0;
  int lq_count_ = 0;
  int sq_count_ = 0;
  bool source_done_ = false;
  Cycle fetch_stall_until_ = 0;
  std::optional<SeqNum> fetch_blocked_on_;  ///< unresolved mispredicted branch
  bool wrong_path_active_ = false;          ///< fetching down the wrong path
  Pc wrong_path_pc_ = 0;
  int stall_pending_ = 0;            ///< queued global-stall cycles
  int stall_pending_ep_ = 0;         ///< how many of those are EP padding
  Cycle squash_recover_until_ = 0;   ///< replay squash still refilling the ROB
  int slots_frozen_now_ = 0;         ///< issue slots frozen this cycle (VTE)
  int slots_frozen_next_ = 0;
  bool mem_blocked_now_ = false;     ///< LSQ CAM spacing (VTE memory stage)
  bool mem_blocked_next_ = false;
  Cycle last_commit_cycle_ = 0;

  StatSet stats_;
};

/// Named scheme configurations of Section 5.
SchemeConfig scheme_fault_free();
SchemeConfig scheme_razor();
SchemeConfig scheme_error_padding();
SchemeConfig scheme_abs();
SchemeConfig scheme_ffs();
SchemeConfig scheme_cds();

}  // namespace vasim::cpu

#endif  // VASIM_CPU_PIPELINE_HPP
