// Interval-sampled timeline telemetry: per-window deltas of every registered
// Registry counter, captured every K commits.
//
// The DAC-2013 schemes exploit *phase* behaviour -- timing violations cluster
// in program regions that exercise critical paths -- but end-of-run StatSets
// flatten that structure away.  A Timeline attaches to a pipeline and, at the
// first cycle boundary where each K-commit threshold is crossed, snapshots
// the delta of every registry counter (plus the cycle/commit deltas) into a
// preallocated columnar store.  Derived per-window series (IPC, violation
// rate, predictor accuracy, recovery overhead, the 9-cause CPI stack) are
// computed at export time, never in the sampling hot path.
//
// Sampling is zero-alloc in steady state: the store is reserved up front
// from a capacity hint (windows grow geometrically only if the hint was
// short) and sample() is a fixed number of subtractions and appends into
// reserved storage.  bench_micro records the measured MIPS cost in
// BENCH_timeline.json; with no timeline attached the per-cycle cost is one
// predictable branch, and results are bitwise unchanged.
//
// Window accounting contract (what the reconciliation tests pin): windows
// partition the sampled run exactly -- for every tracked counter, the sum of
// its per-window deltas equals the end-of-run counter minus the baseline at
// attach (or re-baseline) time.  mark_measurement() force-cuts a window at
// the warmup boundary so the measured windows sum exactly to the measured
// StatSet; rebaseline() restarts the accounting at a warm-start fork point.
#ifndef VASIM_OBS_TIMELINE_HPP
#define VASIM_OBS_TIMELINE_HPP

#include <array>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/registry.hpp"
#include "src/snap/io.hpp"

namespace vasim::obs {

class ChromeTraceWriter;

/// One pipeline's interval-sampled counter timeline.
class Timeline {
 public:
  struct Config {
    u64 interval = 10'000;         ///< commits per window (the sampling grain)
    std::size_t capacity_hint = 64;  ///< windows preallocated (zero-alloc budget)
    /// Relative IPC change between consecutive windows that marks a phase
    /// boundary (the delta-threshold phase-change marker).
    double phase_delta = 0.25;
  };

  /// `registry` may be null (e.g. the in-order core, which has no registry):
  /// only the cycle/commit columns -- and therefore the IPC series -- exist.
  /// The registry must outlive the timeline and must have finished
  /// registering counters (the column set is frozen here).
  Timeline(const Config& cfg, const Registry* registry);

  /// Closes the window [last sample, now) and snapshots every counter delta.
  /// The pipeline calls this at the first cycle boundary at or past each
  /// K-commit threshold.  A call with nothing elapsed is a no-op.
  void sample(Cycle now, u64 committed);

  /// Forces a window cut at the measurement (warmup) boundary and marks all
  /// later windows as measured; per-window sums over the measured windows
  /// then reconcile exactly with the measured-window StatSet.
  void mark_measurement(Cycle now, u64 committed);

  /// Warm-start fork: restarts the accounting at the restored machine state
  /// (baseline = current counter values; no window is emitted).  Only legal
  /// while the timeline is still empty.
  void rebaseline(Cycle now, u64 committed);

  /// Flushes the final partial window.  Idempotent; assemble_result calls it
  /// before the timeline is published into the RunResult.
  void finalize(Cycle now, u64 committed);

  // ---- store geometry --------------------------------------------------------
  [[nodiscard]] u64 interval() const { return interval_; }
  [[nodiscard]] std::size_t windows() const { return cycle_end_.size(); }
  /// Index of the first measured (post-warmup) window; 0 when the whole
  /// timeline is measured (warm-started jobs, warmup-free runs).
  [[nodiscard]] std::size_t measurement_start() const { return measurement_start_; }
  [[nodiscard]] std::size_t num_counters() const { return names_.size(); }
  [[nodiscard]] const std::string& counter_name(std::size_t c) const { return names_[c]; }

  // ---- per-window raw columns ------------------------------------------------
  [[nodiscard]] Cycle cycle_end(std::size_t w) const { return cycle_end_[w]; }
  [[nodiscard]] u64 committed_end(std::size_t w) const { return committed_end_[w]; }
  [[nodiscard]] Cycle cycle_delta(std::size_t w) const {
    return cycle_end_[w] - (w == 0 ? base_cycle_ : cycle_end_[w - 1]);
  }
  [[nodiscard]] u64 committed_delta(std::size_t w) const {
    return committed_end_[w] - (w == 0 ? base_committed_ : committed_end_[w - 1]);
  }
  [[nodiscard]] u64 delta(std::size_t w, std::size_t c) const {
    return deltas_[w * names_.size() + c];
  }
  /// Counter delta by name; 0 when the name is not a tracked column.
  [[nodiscard]] u64 delta_of(std::size_t w, std::string_view name) const;
  [[nodiscard]] bool phase_change(std::size_t w) const { return phase_[w] != 0; }

  // ---- derived per-window series ---------------------------------------------
  [[nodiscard]] double ipc(std::size_t w) const;
  /// Actual timing faults per committed instruction.
  [[nodiscard]] double violation_rate(std::size_t w) const;
  /// handled / actual faults (0 when the window saw no faults).
  [[nodiscard]] double predictor_accuracy(std::size_t w) const;
  /// Fraction of the window's commit slots lost to recovery (EP stalls,
  /// replays, squash refetch) -- the recovery-cycle overhead series.
  [[nodiscard]] double recovery_overhead(std::size_t w) const;
  /// The window's 9-cause CPI stack (slot deltas).
  [[nodiscard]] CpiStack cpi_window(std::size_t w) const;
  /// Column indices of the per-stage "fault.stage.*" counters (per-FU
  /// violation-rate series); empty when no registry was attached.
  [[nodiscard]] const std::vector<std::size_t>& stage_columns() const { return stage_cols_; }
  /// True when the run carried an adaptive clock ("dvfs.wall_units" column).
  [[nodiscard]] bool has_period_series() const { return col_wall_units_ >= 0; }
  /// Average clock period over the window in permille of nominal
  /// (Δwall_units / Δcycles); 0 when no adaptive clock was attached.
  [[nodiscard]] double period_permille(std::size_t w) const;

  // ---- export ----------------------------------------------------------------
  /// Schema-versioned binary blob (schema in docs/observability.md).
  void save(snap::Writer& w) const;
  /// Rebuilds a timeline from save()'s blob.  The result is export-only
  /// (no registry attached); sample() on it is illegal.
  [[nodiscard]] static Timeline load(snap::Reader& r);

  /// One JSON object: {"kind": "vasim_timeline", ...} with the raw columns
  /// and every derived series.  `include_counters` drops the raw per-counter
  /// delta matrix (used when embedding per-job timelines in the sweep JSON).
  void write_json(std::ostream& os, bool include_counters = true) const;
  /// One row per window: index, boundaries, phase flag, derived series, then
  /// every counter delta column.
  void write_csv(std::ostream& os) const;

  /// Appends Perfetto counter tracks ("ph":"C") for the derived series so
  /// they render beside existing spans.  Window w lands at
  /// ts0_us + cycle_end(w) * us_per_cycle.
  void append_counter_tracks(ChromeTraceWriter& trace, u64 pid, u64 tid,
                             const std::string& prefix, double ts0_us,
                             double us_per_cycle) const;

 private:
  Timeline() = default;  // load()

  void reserve(std::size_t windows);
  void push_window(Cycle now, u64 committed);

  const Registry* reg_ = nullptr;
  u64 interval_ = 10'000;
  double phase_delta_ = 0.25;
  bool finalized_ = false;

  std::vector<std::string> names_;
  std::vector<u64> prev_;   ///< counter values at the last window boundary
  Cycle last_cycle_ = 0;
  u64 last_committed_ = 0;
  Cycle base_cycle_ = 0;    ///< accounting origin (0, or the rebaseline point)
  u64 base_committed_ = 0;

  // Columnar store: parallel per-window arrays plus one row-major delta
  // matrix (windows x counters), all reserved up front.
  std::vector<Cycle> cycle_end_;
  std::vector<u64> committed_end_;
  std::vector<u8> phase_;
  std::vector<u64> deltas_;
  std::size_t measurement_start_ = 0;

  // Column indices resolved once at construction; -1 when absent.
  int col_fault_actual_ = -1;
  int col_fault_handled_ = -1;
  int col_wall_units_ = -1;
  std::vector<std::size_t> stage_cols_;
  std::array<int, kNumCpiCauses> col_cpi_{};
};

}  // namespace vasim::obs

#endif  // VASIM_OBS_TIMELINE_HPP
