// Dynamic-instruction trace recording and replay.
//
// Lets users capture a committed-path trace (from any InstructionSource,
// including real programs on the functional core) and replay it later --
// the "bring your own trace" path for driving the timing model with
// instruction streams produced outside vasim.
//
// Format (text, line-oriented):
//   vasim-trace 2 be
//   <pc> <op> <src1> <src2> <dst> <mem_addr> <taken> <next_pc>
// with pc/mem_addr/next_pc in hex, op as the OpClass name, registers in
// decimal (-1 = none), taken as 0/1.  The header is `<magic> <version>
// <byte-order>`; readers reject a wrong magic, any other version (including
// the tag-less v1), or a byte order other than "be" with a TraceFormatError
// rather than guessing.
#ifndef VASIM_WORKLOAD_TRACE_FILE_HPP
#define VASIM_WORKLOAD_TRACE_FILE_HPP

#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "src/isa/dyninst.hpp"

namespace vasim::workload {

/// Raised on malformed trace input, with the offending line number.
class TraceFormatError : public std::runtime_error {
 public:
  TraceFormatError(u64 line, const std::string& message)
      : std::runtime_error("trace line " + std::to_string(line) + ": " + message), line_(line) {}
  [[nodiscard]] u64 line() const { return line_; }

 private:
  u64 line_;
};

/// Writes the header and `trace` to `out`.
void write_trace(std::ostream& out, const std::vector<isa::DynInst>& trace);

/// Captures up to `count` instructions from `source`.
std::vector<isa::DynInst> record_trace(isa::InstructionSource& source, u64 count);

/// Replays a trace loaded from a stream.  The whole trace is parsed eagerly
/// (errors surface at construction); `loop` restarts it at the end so long
/// pipeline runs can be driven from short captures.
class TraceFileSource final : public isa::InstructionSource {
 public:
  explicit TraceFileSource(std::istream& in, bool loop = false);

  bool next(isa::DynInst& out) override;
  [[nodiscard]] std::string name() const override { return "trace-file"; }

  [[nodiscard]] std::size_t size() const { return trace_.size(); }

 private:
  std::vector<isa::DynInst> trace_;
  std::size_t pos_ = 0;
  bool loop_;
};

}  // namespace vasim::workload

#endif  // VASIM_WORKLOAD_TRACE_FILE_HPP
