// Architectural energy model (Section 4.1: "Energy results are gathered by
// combining architectural usage information with power characteristics from
// the synthesized hardware").
//
// Per-event energies are 45 nm-scale constants consistent with the circuit
// library roll-up; leakage accrues per cycle.  Dynamic energy scales with
// VDD^2 and leakage with VDD.  The evaluation only uses energy *ratios*
// between schemes at the same supply, so absolute calibration is not
// load-bearing.
#ifndef VASIM_CORE_ENERGY_HPP
#define VASIM_CORE_ENERGY_HPP

#include "src/common/stats.hpp"
#include "src/timing/voltage.hpp"

namespace vasim::core {

/// Per-event energies in picojoules at the nominal supply.
struct EnergyParams {
  double fetch = 14.0;
  double dispatch = 8.0;
  double iq_write = 6.0;
  double select = 4.0;
  double regread = 9.0;
  double broadcast = 11.0;  ///< wakeup CAM sweep
  double fu_alu = 10.0;
  double fu_mul = 34.0;
  double fu_div = 60.0;
  double fu_branch = 6.0;
  double fu_mem = 8.0;      ///< AGEN + port
  double lsq_search = 10.0; ///< LSQ CAM
  double dcache = 22.0;
  double l2 = 120.0;
  double memory = 600.0;
  double commit = 5.0;
  double squash = 4.0;          ///< per squashed instruction
  double stall_recirculate = 9.0;  ///< latch recirculation per stall cycle
  double leakage_per_cycle = 55.0;
};

/// Totals for one run.
struct EnergyReport {
  double dynamic_nj = 0.0;
  double leakage_nj = 0.0;
  [[nodiscard]] double total_nj() const { return dynamic_nj + leakage_nj; }
  /// Energy-delay product in nJ * cycles (Section 5.1 "energy efficiency is
  /// estimated using energy-delay product").
  double edp = 0.0;
};

/// Computes the report from a run's event counters.
class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params = {},
                       const timing::VoltageModel& vm = timing::VoltageModel())
      : params_(params), vm_(vm) {}

  [[nodiscard]] EnergyReport compute(const StatSet& stats, double vdd) const;

  [[nodiscard]] const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
  timing::VoltageModel vm_;
};

}  // namespace vasim::core

#endif  // VASIM_CORE_ENERGY_HPP
