#include "src/circuit/cell_library.hpp"

#include <array>

namespace vasim::circuit {

const CellInfo& cell_info(GateKind kind) {
  // Representative 45 nm values (area in um^2, delay in ps, energy in fJ per
  // toggle, leakage in nW).  Ratios follow typical standard-cell data books:
  // XOR/MUX are ~2x the area/delay of NAND; a flop is ~4-5x a NAND.
  static const std::array<CellInfo, kNumGateKinds> table = {{
      {"input", 0, 0.0, 0.0, 0.0, 0.0},
      {"const0", 0, 0.0, 0.0, 0.0, 0.0},
      {"const1", 0, 0.0, 0.0, 0.0, 0.0},
      {"buf", 1, 0.53, 28.0, 0.45, 9.0},
      {"inv", 1, 0.40, 14.0, 0.35, 8.0},
      {"and2", 2, 0.80, 36.0, 0.70, 15.0},
      {"or2", 2, 0.80, 38.0, 0.72, 15.0},
      {"nand2", 2, 0.53, 22.0, 0.55, 11.0},
      {"nor2", 2, 0.53, 26.0, 0.58, 12.0},
      {"xor2", 2, 1.33, 48.0, 1.30, 26.0},
      {"xnor2", 2, 1.33, 48.0, 1.30, 26.0},
      {"mux2", 3, 1.46, 44.0, 1.20, 24.0},
      {"dff", 1, 2.39, 90.0, 2.10, 48.0},
  }};
  return table[static_cast<int>(kind)];
}

}  // namespace vasim::circuit
