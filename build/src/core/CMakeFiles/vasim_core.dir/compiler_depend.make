# Empty compiler generated dependencies file for vasim_core.
# This may be replaced when dependencies are built.
