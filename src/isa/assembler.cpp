#include "src/isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace vasim::isa {
namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : line) {
    if (ch == '#') break;
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int parse_reg(const std::string& t, int line) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) {
    throw AssemblerError(line, "expected register, got '" + t + "'");
  }
  int n = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      throw AssemblerError(line, "bad register '" + t + "'");
    }
    n = n * 10 + (t[i] - '0');
  }
  if (n >= kNumArchRegs) throw AssemblerError(line, "register out of range '" + t + "'");
  return n;
}

i64 parse_imm(const std::string& t, int line) {
  try {
    std::size_t used = 0;
    const i64 v = std::stoll(t, &used, 0);
    if (used != t.size()) throw AssemblerError(line, "bad immediate '" + t + "'");
    return v;
  } catch (const AssemblerError&) {
    throw;
  } catch (const std::exception&) {
    throw AssemblerError(line, "bad immediate '" + t + "'");
  }
}

/// Parses "imm(rN)" into (imm, reg).
std::pair<i64, int> parse_mem_operand(const std::string& t, int line) {
  const auto open = t.find('(');
  const auto close = t.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open ||
      close + 1 != t.size()) {
    throw AssemblerError(line, "expected imm(reg), got '" + t + "'");
  }
  const std::string imm_s = t.substr(0, open);
  const std::string reg_s = t.substr(open + 1, close - open - 1);
  const i64 imm = imm_s.empty() ? 0 : parse_imm(imm_s, line);
  return {imm, parse_reg(reg_s, line)};
}

std::optional<Opcode> opcode_of(const std::string& mnemonic) {
  static const std::map<std::string, Opcode> table = {
      {"nop", Opcode::kNop},   {"add", Opcode::kAdd}, {"sub", Opcode::kSub},
      {"and", Opcode::kAnd},   {"or", Opcode::kOr},   {"xor", Opcode::kXor},
      {"slt", Opcode::kSlt},   {"shl", Opcode::kShl}, {"shr", Opcode::kShr},
      {"addi", Opcode::kAddi}, {"andi", Opcode::kAndi}, {"ori", Opcode::kOri},
      {"lui", Opcode::kLui},   {"mul", Opcode::kMul}, {"div", Opcode::kDiv},
      {"ld", Opcode::kLd},     {"st", Opcode::kSt},   {"beq", Opcode::kBeq},
      {"bne", Opcode::kBne},   {"blt", Opcode::kBlt}, {"bge", Opcode::kBge},
      {"jmp", Opcode::kJmp},   {"halt", Opcode::kHalt},
  };
  const auto it = table.find(mnemonic);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

bool is_branch(Opcode op) {
  return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt || op == Opcode::kBge ||
         op == Opcode::kJmp;
}

}  // namespace

Program assemble(const std::string& source) {
  struct Pending {
    Instr ins;
    std::string label;  // branch target to resolve in pass 2 (empty = none)
    int line = 0;
  };
  std::vector<Pending> pending;
  std::map<std::string, std::size_t> labels;

  std::istringstream in(source);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto toks = tokenize(line);
    // Leading labels (possibly several on one line).
    while (!toks.empty() && toks[0].back() == ':') {
      const std::string label = toks[0].substr(0, toks[0].size() - 1);
      if (label.empty()) throw AssemblerError(line_no, "empty label");
      if (labels.count(label) != 0) throw AssemblerError(line_no, "duplicate label '" + label + "'");
      labels[label] = pending.size();
      toks.erase(toks.begin());
    }
    if (toks.empty()) continue;

    const auto op = opcode_of(toks[0]);
    if (!op) throw AssemblerError(line_no, "unknown mnemonic '" + toks[0] + "'");
    Pending p;
    p.ins.op = *op;
    p.line = line_no;
    const auto need = [&](std::size_t n) {
      if (toks.size() != n + 1) {
        throw AssemblerError(line_no, std::string(to_string(*op)) + ": wrong operand count");
      }
    };
    switch (*op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        need(0);
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kSlt:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kMul:
      case Opcode::kDiv:
        need(3);
        p.ins.rd = parse_reg(toks[1], line_no);
        p.ins.rs1 = parse_reg(toks[2], line_no);
        p.ins.rs2 = parse_reg(toks[3], line_no);
        break;
      case Opcode::kAddi:
      case Opcode::kAndi:
      case Opcode::kOri:
        need(3);
        p.ins.rd = parse_reg(toks[1], line_no);
        p.ins.rs1 = parse_reg(toks[2], line_no);
        p.ins.imm = parse_imm(toks[3], line_no);
        break;
      case Opcode::kLui:
        need(2);
        p.ins.rd = parse_reg(toks[1], line_no);
        p.ins.imm = parse_imm(toks[2], line_no);
        break;
      case Opcode::kLd: {
        need(2);
        p.ins.rd = parse_reg(toks[1], line_no);
        const auto [imm, base] = parse_mem_operand(toks[2], line_no);
        p.ins.imm = imm;
        p.ins.rs1 = base;
        break;
      }
      case Opcode::kSt: {
        need(2);
        p.ins.rs2 = parse_reg(toks[1], line_no);  // value
        const auto [imm, base] = parse_mem_operand(toks[2], line_no);
        p.ins.imm = imm;
        p.ins.rs1 = base;
        break;
      }
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
        need(3);
        p.ins.rs1 = parse_reg(toks[1], line_no);
        p.ins.rs2 = parse_reg(toks[2], line_no);
        p.label = toks[3];
        break;
      case Opcode::kJmp:
        need(1);
        p.label = toks[1];
        break;
    }
    pending.push_back(std::move(p));
  }

  Program prog;
  for (auto& p : pending) {
    if (is_branch(p.ins.op) && !p.label.empty()) {
      const auto it = labels.find(p.label);
      if (it == labels.end()) throw AssemblerError(p.line, "undefined label '" + p.label + "'");
      p.ins.imm = static_cast<i64>(it->second);
    }
    prog.append(p.ins);
  }
  return prog;
}

}  // namespace vasim::isa
