// Tests for the dynamic gate-level analyses (sensitized-path delay, timed
// simulation, measured power), the Verilog export, and the extra builders
// (array multiplier, LSQ CAM).
#include <gtest/gtest.h>

#include "src/circuit/dynamic.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/circuit/sta.hpp"
#include "src/circuit/verilog.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"

namespace vasim::circuit {
namespace {

std::vector<u8> pack(std::initializer_list<std::pair<u64, int>> fields) {
  std::vector<u8> out;
  for (const auto& [value, width] : fields) GateSim::pack_bits(value, width, out);
  return out;
}

TEST(SensitizedDelay, ZeroWhenNothingToggles) {
  const Component alu = build_simple_alu(8);
  const auto in = pack({{5, 8}, {3, 8}, {0, 3}});
  const SensitizedDelay d = sensitized_delay(alu, in, in);
  EXPECT_EQ(d.toggled_gates, 0);
  EXPECT_DOUBLE_EQ(d.delay_ps, 0.0);
  EXPECT_EQ(d.endpoint, kNoSig);
}

TEST(SensitizedDelay, BoundedByStaticCriticalPath) {
  const Component alu = build_simple_alu(16);
  const double sta = analyze_nominal(alu.netlist).critical_delay_ps;
  Pcg32 rng(3);
  for (int t = 0; t < 50; ++t) {
    const auto pre = pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFFFF, 16},
                           {rng.next_below(8), 3}});
    const auto cur = pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFFFF, 16},
                           {rng.next_below(8), 3}});
    const SensitizedDelay d = sensitized_delay(alu, pre, cur);
    EXPECT_LE(d.delay_ps, sta + 1e-9);
    EXPECT_GE(d.delay_ps, 0.0);
  }
}

TEST(SensitizedDelay, CarryChainLongerThanLocalFlip) {
  // Adding 1 to 0xFF ripples the full carry chain; toggling a high operand
  // bit of an AND disturbs almost nothing.
  const Component alu = build_simple_alu(8);
  const auto pre_add = pack({{0xFF, 8}, {0, 8}, {0, 3}});
  const auto cur_add = pack({{0xFF, 8}, {1, 8}, {0, 3}});
  const SensitizedDelay ripple = sensitized_delay(alu, pre_add, cur_add);

  const auto pre_and = pack({{0x00, 8}, {0x0F, 8}, {2, 3}});
  const auto cur_and = pack({{0x80, 8}, {0x0F, 8}, {2, 3}});  // a7 flips, b7=0
  const SensitizedDelay local = sensitized_delay(alu, pre_and, cur_and);
  EXPECT_GT(ripple.delay_ps, local.delay_ps);
  EXPECT_GT(ripple.toggled_gates, local.toggled_gates);
}

TEST(SensitizedDelay, ProcessVariationPerturbsDelay) {
  const Component agen = build_agen(16, 8);
  const auto pre = pack({{100, 16}, {0, 8}, {0, 2}});
  const auto cur = pack({{100, 16}, {8, 8}, {0, 2}});
  const timing::ProcessVariation pv;
  const double nominal = sensitized_delay(agen, pre, cur).delay_ps;
  RunningStat s;
  for (u64 die = 0; die < 32; ++die) {
    s.add(sensitized_delay(agen, pre, cur, &pv, die).delay_ps);
  }
  EXPECT_GT(s.stddev(), 0.0);
  EXPECT_NEAR(s.mean(), nominal, 0.1 * nominal);
}

TEST(SensitizedDelay, InstanceStatsSummarize) {
  const Component alu = build_simple_alu(8);
  std::vector<std::pair<std::vector<u8>, std::vector<u8>>> inst;
  Pcg32 rng(7);
  for (int i = 0; i < 20; ++i) {
    inst.push_back({pack({{rng.next_u64() & 0xFF, 8}, {rng.next_u64() & 0xFF, 8}, {0, 3}}),
                    pack({{rng.next_u64() & 0xFF, 8}, {rng.next_u64() & 0xFF, 8}, {0, 3}})});
  }
  const InstanceDelayStats s = instance_delay_stats(alu, inst);
  EXPECT_EQ(s.instances, 20);
  EXPECT_GT(s.mu_ps, 0.0);
  EXPECT_GE(s.mu_plus_2sigma_ps, s.mu_ps);
  EXPECT_GE(s.max_ps, s.mu_ps);
}

TEST(TimedGateSim, SettleAndSensitizedDelayAgreeOnBoundsAndCorrelate) {
  // The two timing views differ in both directions: the sensitized delay is
  // a topological bound over the toggled cone (it ignores early-settling
  // controlling values), while the event-driven settle time is exact per
  // the transport model but includes dynamic hazards through gates whose
  // final value is unchanged.  Both stay within the static critical path
  // and must track each other closely on average.
  const Component agen = build_agen(16, 8);
  const double sta = analyze_nominal(agen.netlist).critical_delay_ps;
  TimedGateSim sim(&agen);
  Pcg32 rng(11);
  bool saw_hazard = false;
  bool saw_early_settle = false;
  RunningStat settle_stat, sens_stat;
  for (int t = 0; t < 40; ++t) {
    const auto pre = pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFF, 8},
                           {rng.next_below(4), 2}});
    const auto cur = pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFF, 8},
                           {rng.next_below(4), 2}});
    const TimedGateSim::Result r = sim.evaluate(pre, cur);
    const SensitizedDelay d = sensitized_delay(agen, pre, cur);
    EXPECT_LE(r.settle_ps, sta + 1e-6) << "iteration " << t;
    EXPECT_LE(d.delay_ps, sta + 1e-6) << "iteration " << t;
    settle_stat.add(r.settle_ps);
    sens_stat.add(d.delay_ps);
    saw_hazard |= r.settle_ps > d.delay_ps + 1e-6;
    saw_early_settle |= r.settle_ps < d.delay_ps - 1e-6;
  }
  EXPECT_TRUE(saw_hazard) << "carry-select muxing should produce dynamic hazards";
  EXPECT_TRUE(saw_early_settle) << "controlling values should settle some cones early";
  EXPECT_NEAR(settle_stat.mean(), sens_stat.mean(), 0.5 * sens_stat.mean());
}

TEST(TimedGateSim, CountsTransitionsAndEnergy) {
  const Component alu = build_simple_alu(8);
  TimedGateSim sim(&alu);
  const auto pre = pack({{0x00, 8}, {0x00, 8}, {0, 3}});
  const auto cur = pack({{0xFF, 8}, {0x01, 8}, {0, 3}});
  const TimedGateSim::Result r = sim.evaluate(pre, cur);
  EXPECT_GT(r.transitions, 20u);
  EXPECT_GT(r.dynamic_energy_fj, 10.0);
  const TimedGateSim::Result none = sim.evaluate(pre, pre);
  EXPECT_EQ(none.transitions, 0u);
  EXPECT_DOUBLE_EQ(none.settle_ps, 0.0);
}

TEST(TimedGateSim, GlitchesOnRipplePaths) {
  // A long carry ripple makes intermediate sum bits change more than once.
  const Component mult = build_array_multiplier(6);
  TimedGateSim sim(&mult);
  const auto pre = pack({{0, 6}, {0, 6}});
  const auto cur = pack({{63, 6}, {63, 6}});
  const TimedGateSim::Result r = sim.evaluate(pre, cur);
  EXPECT_GT(r.glitches, 0u) << "array multipliers glitch by construction";
  EXPECT_GT(r.transitions, r.glitches);
}

TEST(TimedGateSim, RejectsBadWidth) {
  const Component sel = build_issue_select(8, 1);
  TimedGateSim sim(&sel);
  EXPECT_THROW(sim.evaluate(std::vector<u8>(3, 0), std::vector<u8>(3, 0)),
               std::invalid_argument);
}

TEST(MeasuredPower, ActivityRaisesDynamicPower) {
  const Component agen = build_agen(16, 8);
  Pcg32 rng(5);
  std::vector<std::pair<std::vector<u8>, std::vector<u8>>> busy, idle;
  for (int i = 0; i < 10; ++i) {
    const auto quiet = pack({{123, 16}, {4, 8}, {0, 2}});
    idle.push_back({quiet, quiet});
    busy.push_back({pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFF, 8}, {0, 2}}),
                    pack({{rng.next_u64() & 0xFFFF, 16}, {rng.next_u64() & 0xFF, 8}, {0, 2}})});
  }
  const PowerReport p_busy = measured_power(agen, busy);
  const PowerReport p_idle = measured_power(agen, idle);
  EXPECT_GT(p_busy.dynamic_power_uw, p_idle.dynamic_power_uw);
  EXPECT_DOUBLE_EQ(p_busy.leakage_power_uw, p_idle.leakage_power_uw);
}

// ---- extra builders --------------------------------------------------------

TEST(ArrayMultiplier, MatchesReference) {
  const Component mult = build_array_multiplier(8);
  GateSim sim(&mult.netlist);
  Pcg32 rng(17);
  for (int t = 0; t < 200; ++t) {
    const u64 a = rng.next_u64() & 0xFF;
    const u64 b = rng.next_u64() & 0xFF;
    sim.evaluate(pack({{a, 8}, {b, 8}}));
    EXPECT_EQ(sim.read_bus(mult.outputs), a * b) << a << "*" << b;
  }
}

TEST(ArrayMultiplier, ShapeChecks) {
  EXPECT_THROW(build_array_multiplier(1), std::invalid_argument);
  EXPECT_THROW(build_array_multiplier(32), std::invalid_argument);
  const Component m4 = build_array_multiplier(4);
  EXPECT_EQ(m4.outputs.size(), 8u);
}

TEST(LsqCam, MatchSemantics) {
  const Component cam = build_lsq_cam(4, 6);
  GateSim sim(&cam.netlist);
  // search = 33; entries: {33 valid older, 33 valid !older, 12 valid older,
  // 33 !valid older}.
  std::vector<u8> in;
  GateSim::pack_bits(33, 6, in);
  for (const u64 tag : {33, 33, 12, 33}) GateSim::pack_bits(tag, 6, in);
  for (const u8 v : {1, 1, 1, 0}) in.push_back(v);
  for (const u8 o : {1, 0, 1, 1}) in.push_back(o);
  sim.evaluate(in);
  EXPECT_TRUE(sim.value(cam.outputs[0]));
  EXPECT_FALSE(sim.value(cam.outputs[1]));  // younger
  EXPECT_FALSE(sim.value(cam.outputs[2]));  // tag mismatch
  EXPECT_FALSE(sim.value(cam.outputs[3]));  // invalid
  EXPECT_TRUE(sim.value(cam.outputs[4]));   // any_match
  EXPECT_GT(cam.flop_count, 0);
}

TEST(LsqCam, NoMatchNoAny) {
  const Component cam = build_lsq_cam(3, 5);
  GateSim sim(&cam.netlist);
  std::vector<u8> in;
  GateSim::pack_bits(7, 5, in);
  for (const u64 tag : {1, 2, 3}) GateSim::pack_bits(tag, 5, in);
  for (int i = 0; i < 6; ++i) in.push_back(1);  // all valid, all older
  sim.evaluate(in);
  EXPECT_FALSE(sim.value(cam.outputs.back()));
}

// ---- Verilog export ----------------------------------------------------------

TEST(Verilog, StructureAndGolden) {
  Netlist n;
  const SigId a = n.add_input();
  const SigId b = n.add_input();
  const SigId x = n.xor2(a, b);
  n.mark_output(x);
  Component c;
  c.name = "toy";
  c.netlist = std::move(n);
  c.outputs = {x};
  const std::string v = to_verilog(c, "toy");
  EXPECT_NE(v.find("module toy ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [1:0] in"), std::string::npos);
  EXPECT_NE(v.find("output wire [0:0] out"), std::string::npos);
  EXPECT_NE(v.find("assign n2 = in[0] ^ in[1];"), std::string::npos);
  EXPECT_NE(v.find("assign out[0] = n2;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, CoversEveryGateKindUsed) {
  const Component alu = build_simple_alu(8);
  const std::string v = to_verilog(alu, "alu8");
  // One assign per non-input signal plus one per output.
  std::size_t assigns = 0;
  for (std::size_t pos = v.find("assign"); pos != std::string::npos;
       pos = v.find("assign", pos + 1)) {
    ++assigns;
  }
  EXPECT_EQ(assigns, static_cast<std::size_t>(alu.netlist.num_signals() -
                                              alu.netlist.num_inputs()) +
                         alu.outputs.size());
}

}  // namespace
}  // namespace vasim::circuit
