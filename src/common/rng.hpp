// Deterministic random number generation.
//
// All stochastic behaviour in vasim is derived either from a seeded PCG32
// stream (sequential draws) or from SplitMix-style hashing of entity
// identifiers (stateless per-entity draws, e.g. "the path factor of PC p in
// stage s").  Hash-derived draws make the fault model reproducible and
// order-independent: querying PCs in a different order yields the same
// per-PC values, which is what gives timing faults their per-PC locality.
#ifndef VASIM_COMMON_RNG_HPP
#define VASIM_COMMON_RNG_HPP

#include <cmath>
#include <numbers>

#include "src/common/types.hpp"

namespace vasim {

/// Mixes a 64-bit value into a well-distributed 64-bit hash (SplitMix64
/// finalizer).
constexpr u64 hash_mix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hash values (order-sensitive).
constexpr u64 hash_combine(u64 a, u64 b) {
  return hash_mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Maps a hash to the unit interval [0, 1).
constexpr double hash_to_unit(u64 h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Maps a hash to a standard normal deviate via the inverse of the
/// Box-Muller angle trick on two derived uniforms.
double hash_to_gaussian(u64 h);

/// PCG32: small, fast, statistically excellent sequential generator.
class Pcg32 {
 public:
  explicit Pcg32(u64 seed = 0x853c49e6748fea9bULL, u64 stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  u32 next_u32() {
    const u64 old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const u32 xorshifted = static_cast<u32>(((old >> 18u) ^ old) >> 27u);
    const u32 rot = static_cast<u32>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  u64 next_u64() { return (static_cast<u64>(next_u32()) << 32) | next_u32(); }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform integer in [0, bound) without modulo bias.
  u32 next_below(u32 bound) {
    if (bound <= 1) return 0;
    const u32 threshold = (-bound) % bound;
    for (;;) {
      const u32 r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal deviate (Box-Muller, one value per call pair amortized).
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Bernoulli draw.
  bool next_bool(double p_true) { return next_double() < p_true; }

  // -- state access (snapshot/repro tooling) ---------------------------------
  // state()/inc() fully determine the uniform stream; the Box-Muller spare
  // (set_gaussian_spare) is additionally needed for bit-exact next_gaussian
  // continuation.  restore_raw/save via these accessors round-trips exactly.

  [[nodiscard]] u64 state() const { return state_; }
  [[nodiscard]] u64 inc() const { return inc_; }
  [[nodiscard]] double gaussian_spare() const { return spare_; }
  [[nodiscard]] bool has_gaussian_spare() const { return have_spare_; }

  /// Restores the exact generator state previously observed through the
  /// accessors above (bypasses the seeding scramble of the constructor).
  void restore_raw(u64 state, u64 inc, double spare = 0.0, bool have_spare = false) {
    state_ = state;
    inc_ = inc;
    spare_ = spare;
    have_spare_ = have_spare;
  }

 private:
  u64 state_ = 0;
  u64 inc_ = 0;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace vasim

#endif  // VASIM_COMMON_RNG_HPP
