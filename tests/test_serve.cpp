// Serve daemon correctness: the strict protocol JSON parser, the LRU
// snapshot cache, cooperative cancellation, bounded-queue backpressure,
// protocol negative paths, the socket transport -- and the headline
// concurrency oracle: any interleaving of concurrent clients yields per-cell
// checksums bitwise identical to standalone SweepRunner runs, with the
// cross-request cache disabled, enabled, and thrashing at capacity 1.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/serve/json.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/serve/snap_cache.hpp"
#include "src/serve/socket.hpp"
#include "src/workload/profiles.hpp"

namespace vasim {
namespace {

core::RunnerConfig tiny_rc() {
  core::RunnerConfig rc;
  rc.instructions = 2'000;
  rc.warmup = 1'000;
  return rc;
}

serve::ServeConfig tiny_serve(std::size_t workers, std::size_t queue_limit,
                              std::size_t cache_capacity) {
  serve::ServeConfig sc;
  sc.workers = workers;
  sc.queue_limit = queue_limit;
  sc.cache_capacity = cache_capacity;
  sc.runner = tiny_rc();
  return sc;
}

// ---- JSON parser -----------------------------------------------------------

TEST(ServeJson, ParsesScalarsArraysAndObjects) {
  const serve::JsonValue v =
      serve::parse_json(R"({"a":1,"b":[true,null,"x\u0041"],"c":{"d":-2.5e2},"e":false})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->as_u64(), 1u);
  const serve::JsonValue* b = v.find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].is_bool() && b->array[0].boolean);
  EXPECT_TRUE(b->array[1].is_null());
  EXPECT_EQ(b->array[2].str, "xA");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("c")->find("d")->number, -250.0);
  EXPECT_FALSE(v.find("e")->boolean);
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(ServeJson, PreservesKeyOrderForClosedFieldChecks) {
  const serve::JsonValue v = serve::parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(ServeJson, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // unterminated object
      "[1,]",                  // trailing comma
      R"({"a":1,"a":2})",      // duplicate key
      "01",                    // leading zero
      "1.",                    // bare decimal point
      "+1",                    // explicit plus
      "nul",                   // truncated keyword
      "tru",                   // truncated keyword
      "{} x",                  // trailing garbage
      "\"\\ud800\"",           // lone surrogate escape
      "\"raw\x01control\"",    // raw control char in string
      R"({"a":})",             // missing value
      "[1 2]",                 // missing comma
  };
  for (const char* doc : bad) {
    EXPECT_THROW((void)serve::parse_json(doc), serve::JsonError) << "accepted: " << doc;
  }
}

TEST(ServeJson, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  for (int i = 0; i < 40; ++i) deep += "]";
  EXPECT_THROW((void)serve::parse_json(deep, 32), serve::JsonError);
  EXPECT_NO_THROW((void)serve::parse_json(deep, 64));
}

TEST(ServeJson, U64AccessorRejectsNonIntegers) {
  EXPECT_THROW((void)serve::parse_json("1.5").as_u64(), serve::JsonError);
  EXPECT_THROW((void)serve::parse_json("-1").as_u64(), serve::JsonError);
  EXPECT_THROW((void)serve::parse_json("\"7\"").as_u64(), serve::JsonError);
  EXPECT_EQ(serve::parse_json("9007199254740992").as_u64(), 9007199254740992ull);
}

// ---- LRU snapshot cache ----------------------------------------------------

std::shared_ptr<const core::RunSnapshot> any_snapshot() {
  // One cheap real capture, shared across cache unit tests: the cache only
  // cares about pointer identity, never the contents.
  static const std::shared_ptr<const core::RunSnapshot> snap = [] {
    const core::ExperimentRunner runner(tiny_rc());
    return std::make_shared<const core::RunSnapshot>(
        runner.capture(workload::spec2006_profile("bzip2"), std::nullopt, 0.97, 500));
  }();
  return snap;
}

TEST(SnapshotCache, CapacityZeroDisablesEverything) {
  serve::SnapshotCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert("k", any_snapshot());
  EXPECT_EQ(cache.lookup("k"), nullptr);
  const serve::SnapshotCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.size, 0u);
}

TEST(SnapshotCache, EvictsLeastRecentlyUsed) {
  serve::SnapshotCache cache(2);
  cache.insert("k1", any_snapshot());
  cache.insert("k2", any_snapshot());
  EXPECT_NE(cache.lookup("k1"), nullptr);  // k1 becomes MRU; k2 is now LRU
  cache.insert("k3", any_snapshot());      // evicts k2
  EXPECT_EQ(cache.lookup("k2"), nullptr);
  EXPECT_NE(cache.lookup("k1"), nullptr);
  EXPECT_NE(cache.lookup("k3"), nullptr);
  const serve::SnapshotCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(SnapshotCache, DuplicateInsertIsDroppedNotReplaced) {
  serve::SnapshotCache cache(4);
  const auto first = any_snapshot();
  cache.insert("k", first);
  const auto second = std::make_shared<const core::RunSnapshot>(*first);
  cache.insert("k", second);  // concurrent double-capture: keep the first
  EXPECT_EQ(cache.lookup("k").get(), first.get());
  const serve::SnapshotCache::Stats s = cache.stats();
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.duplicate_drops, 1u);
  EXPECT_EQ(s.size, 1u);
}

// ---- Server admission / cancellation / shutdown ----------------------------

serve::JobSpec one_cell_job(const std::string& bench, const std::string& scheme, double vdd) {
  serve::JobSpec spec;
  spec.cells.push_back({bench, scheme, vdd});
  return spec;
}

TEST(ServeServer, RejectsBadGridsByName) {
  serve::Server server(tiny_serve(1, 4, 0));
  const auto name_of = [&server](const serve::JobSpec& spec) -> std::string {
    try {
      (void)server.submit(spec);
    } catch (const serve::ServeError& e) {
      return e.name();
    }
    return "accepted";
  };
  EXPECT_EQ(name_of(serve::JobSpec{}), "bad_grid");  // no cells
  EXPECT_EQ(name_of(one_cell_job("no-such-bench", "abs", 0.97)), "bad_grid");
  EXPECT_EQ(name_of(one_cell_job("bzip2", "no-such-scheme", 0.97)), "bad_grid");
  EXPECT_EQ(name_of(one_cell_job("bzip2", "abs", -1.0)), "bad_grid");
  serve::JobSpec zero_instr = one_cell_job("bzip2", "abs", 0.97);
  zero_instr.instructions = 0;
  EXPECT_EQ(name_of(zero_instr), "bad_grid");
  serve::ServeConfig small = tiny_serve(1, 4, 0);
  small.max_cells_per_job = 2;
  serve::Server limited(small);
  serve::JobSpec big;
  for (int i = 0; i < 3; ++i) big.cells.push_back({"bzip2", "fault-free", 0.97});
  try {
    (void)limited.submit(big);
    FAIL() << "oversized job accepted";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.name(), "bad_grid");
  }
}

TEST(ServeServer, UnknownJobIdsThrowByName) {
  serve::Server server(tiny_serve(1, 4, 0));
  EXPECT_THROW((void)server.status(999), serve::ServeError);
  EXPECT_THROW((void)server.results(999, 0), serve::ServeError);
  EXPECT_THROW((void)server.cancel(999), serve::ServeError);
}

TEST(ServeServer, BoundedQueueRejectsWithRetryAfter) {
  // One worker, queue of one: the third concurrent job must be rejected
  // with explicit backpressure, never silently queued.
  serve::Server server(tiny_serve(1, 1, 0));
  serve::JobSpec busy;
  for (int i = 0; i < 4; ++i) busy.cells.push_back({"bzip2", "fault-free", 0.97});
  // The worker may not have popped the previous job yet, so even the setup
  // submits can legitimately bounce; absorb that.
  const auto submit_retry = [&server](const serve::JobSpec& s) {
    for (;;) {
      try {
        return server.submit(s);
      } catch (const serve::QueueFullError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  const u64 running = submit_retry(busy);
  const u64 queued = submit_retry(busy);
  bool rejected = false;
  u64 retry_ms = 0;
  // The worker may drain the queue between our submits; keep refilling
  // until one submission bounces (bounded by the grid being slower than
  // the submit loop).
  for (int i = 0; i < 64 && !rejected; ++i) {
    try {
      (void)server.submit(busy);
    } catch (const serve::QueueFullError& e) {
      rejected = true;
      retry_ms = e.retry_after_ms();
    }
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(retry_ms, 1u);
  server.drain();
  EXPECT_TRUE(server.wait(running, 1));
  EXPECT_TRUE(server.wait(queued, 1));
}

TEST(ServeServer, CancelQueuedJobCancelsEveryCell) {
  serve::Server server(tiny_serve(1, 4, 0));
  serve::JobSpec busy;
  for (int i = 0; i < 4; ++i) busy.cells.push_back({"bzip2", "fault-free", 0.97});
  (void)server.submit(busy);  // occupies the single worker
  serve::JobSpec victim;
  victim.cells.push_back({"gcc", "abs", 0.97});
  victim.cells.push_back({"gcc", "abs", 1.04});
  const u64 id = server.submit(victim);
  const serve::JobState st = server.cancel(id);
  EXPECT_TRUE(st == serve::JobState::kCancelled || st == serve::JobState::kRunning);
  ASSERT_TRUE(server.wait(id, 60'000));
  const serve::JobStatus status = server.status(id);
  EXPECT_EQ(status.done, status.cells);  // every cell reported, none lost
  if (st == serve::JobState::kCancelled) {
    for (const serve::CellResult& c : server.results(id, 0)) {
      EXPECT_TRUE(c.cancelled);
    }
  }
  server.drain();
}

TEST(ServeServer, CancelRunningJobKeepsFinishedCellsBitwiseIntact) {
  serve::Server server(tiny_serve(1, 4, 0));
  serve::JobSpec long_job;
  for (int i = 0; i < 8; ++i) long_job.cells.push_back({"bzip2", "fault-free", 0.97});
  const u64 id = server.submit(long_job);
  // Wait until at least one cell landed, then cancel mid-job.
  while (server.status(id).done == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)server.cancel(id);
  ASSERT_TRUE(server.wait(id, 60'000));
  const serve::JobStatus st = server.status(id);
  EXPECT_EQ(st.done, st.cells);
  // Survivors must be bitwise identical to a standalone run of the same cell.
  const core::ExperimentRunner runner(tiny_rc());
  const core::RunResult expect =
      runner.run_fault_free(workload::spec2006_profile("bzip2"), 0.97);
  const u64 expect_sum = core::result_checksum(expect);
  std::size_t finished = 0;
  for (const serve::CellResult& c : server.results(id, 0)) {
    if (c.cancelled) continue;
    ++finished;
    EXPECT_EQ(c.checksum, expect_sum);
  }
  EXPECT_GE(finished, 1u);
}

TEST(ServeServer, ShutdownWithJobsInFlightLeavesNoNonTerminalJob) {
  auto server = std::make_unique<serve::Server>(tiny_serve(2, 8, 4));
  std::vector<u64> ids;
  serve::JobSpec spec;
  spec.cells.push_back({"bzip2", "fault-free", 0.97});
  spec.cells.push_back({"gcc", "abs", 0.97});
  for (int i = 0; i < 6; ++i) ids.push_back(server->submit(spec));
  server->shutdown();
  for (const u64 id : ids) {
    const serve::JobStatus st = server->status(id);
    EXPECT_TRUE(st.state == serve::JobState::kDone || st.state == serve::JobState::kCancelled ||
                st.state == serve::JobState::kFailed)
        << "job " << id << " left in state " << serve::to_string(st.state);
    EXPECT_EQ(st.done, st.cells);
  }
  EXPECT_THROW((void)server->submit(spec), serve::ServeError);  // shutting_down
}

// ---- The concurrency oracle ------------------------------------------------

struct OracleCell {
  std::string bench;
  std::string scheme;
  double vdd;
};

std::vector<OracleCell> oracle_grid() {
  std::vector<OracleCell> cells;
  for (const char* bench : {"bzip2", "gcc"}) {
    for (const char* scheme : {"fault-free", "abs", "razor"}) {
      for (const double vdd : {0.97, 1.04}) {
        cells.push_back({bench, scheme, vdd});
      }
    }
  }
  return cells;  // 12 overlapping cells shared by every client
}

/// Standalone ground truth: each grid cell through SweepRunner, single
/// worker, no sharing -- the checksum every concurrent interleaving must hit.
std::map<std::string, u64> oracle_expected(const std::vector<OracleCell>& cells) {
  std::vector<core::SweepJob> jobs;
  for (const OracleCell& c : cells) {
    const auto scheme = core::scheme_by_name(c.scheme);
    jobs.push_back({workload::spec2006_profile(c.bench),
                    scheme->name == "fault-free" ? std::nullopt
                                                 : std::optional<cpu::SchemeConfig>(*scheme),
                    c.vdd, std::nullopt});
  }
  const core::SweepRunner runner(tiny_rc(), 1);
  const std::vector<core::RunResult> results = runner.run_results(jobs);
  std::map<std::string, u64> expected;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expected[cells[i].bench + "|" + cells[i].scheme + "|" + std::to_string(cells[i].vdd)] =
        core::result_checksum(results[i]);
  }
  return expected;
}

void run_oracle(std::size_t cache_capacity) {
  const std::vector<OracleCell> grid = oracle_grid();
  const std::map<std::string, u64> expected = oracle_expected(grid);

  serve::Server server(tiny_serve(/*workers=*/4, /*queue_limit=*/64, cache_capacity));
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kJobsPerClient = 3;
  std::mutex mu;
  std::vector<std::string> failures;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([t, &grid, &expected, &server, &mu, &failures] {
      for (std::size_t j = 0; j < kJobsPerClient; ++j) {
        // Overlapping 4-cell windows, offset per client and per job, so the
        // same cells hit the cache from many interleavings.
        serve::JobSpec spec;
        std::vector<std::string> keys;
        for (std::size_t c = 0; c < 4; ++c) {
          const OracleCell& cell = grid[(t * 5 + j * 3 + c) % grid.size()];
          spec.cells.push_back({cell.bench, cell.scheme, cell.vdd});
          keys.push_back(cell.bench + "|" + cell.scheme + "|" + std::to_string(cell.vdd));
        }
        u64 id = 0;
        for (;;) {
          try {
            id = server.submit(spec);
            break;
          } catch (const serve::QueueFullError&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }
        if (!server.wait(id, 120'000)) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("job timed out");
          return;
        }
        const std::vector<serve::CellResult> results = server.results(id, 0);
        std::lock_guard<std::mutex> lock(mu);
        if (results.size() != keys.size()) {
          failures.push_back("short result set");
          continue;
        }
        for (std::size_t c = 0; c < results.size(); ++c) {
          if (results[c].cancelled) {
            failures.push_back("unexpected cancelled cell");
            continue;
          }
          const u64 want = expected.at(keys[c]);
          if (results[c].checksum != want) {
            failures.push_back("checksum mismatch for " + keys[c] + " (cache capacity " +
                               std::to_string(server.config().cache_capacity) + ")");
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  if (cache_capacity >= oracle_grid().size()) {
    // With room for the whole grid, the overlap must actually share: a zero
    // hit count would mean the cache is wired up wrong, not just cold.
    EXPECT_GT(server.cache_stats().hits, 0u);
  }
}

TEST(ServeOracle, ConcurrentClientsMatchStandaloneWithCacheDisabled) { run_oracle(0); }

TEST(ServeOracle, ConcurrentClientsMatchStandaloneWithCacheEnabled) { run_oracle(32); }

TEST(ServeOracle, ConcurrentClientsMatchStandaloneWithCacheCapacityOne) { run_oracle(1); }

// ---- Protocol frames -------------------------------------------------------

std::string frame_error(serve::Server& server, const std::string& line) {
  bool shutdown = false;
  const serve::JsonValue reply = serve::parse_json(serve::handle_frame(server, line, &shutdown));
  EXPECT_FALSE(shutdown);
  const serve::JsonValue* ok = reply.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool());
  if (ok != nullptr && ok->boolean) return "";  // accepted
  const serve::JsonValue* err = reply.find("error");
  return err != nullptr && err->is_string() ? err->str : "<unnamed>";
}

TEST(ServeProtocol, NamedErrorsNeverSilentAccept) {
  serve::Server server(tiny_serve(1, 2, 0));
  EXPECT_EQ(frame_error(server, "this is not json"), "parse_error");
  EXPECT_EQ(frame_error(server, "[1,2,3]"), "not_object");
  EXPECT_EQ(frame_error(server, "{}"), "bad_field");             // missing op
  EXPECT_EQ(frame_error(server, R"({"op":5})"), "bad_field");    // op not a string
  EXPECT_EQ(frame_error(server, R"({"op":"frobnicate"})"), "unknown_op");
  EXPECT_EQ(frame_error(server, R"({"op":"poll","job":42})"), "unknown_job");
  EXPECT_EQ(frame_error(server, R"({"op":"cancel","job":42})"), "unknown_job");
  EXPECT_EQ(frame_error(server, R"({"op":"submit","cells":5})"), "bad_field");
  EXPECT_EQ(frame_error(server, R"({"op":"submit","cells":[]})"), "bad_grid");
  EXPECT_EQ(frame_error(server,
                        R"({"op":"submit","cells":[{"bench":"nope","vdd":0.97}]})"),
            "bad_grid");
}

TEST(ServeProtocol, UnknownFieldsAreRejectedWithTheirName) {
  serve::Server server(tiny_serve(1, 2, 0));
  bool shutdown = false;
  const std::string reply = serve::handle_frame(
      server, R"({"op":"submit","cells":[{"bench":"bzip2"}],"warmpu":5})", &shutdown);
  const serve::JsonValue v = serve::parse_json(reply);
  EXPECT_EQ(v.find("error")->str, "unknown_field");
  EXPECT_NE(v.find("message")->str.find("warmpu"), std::string::npos);
  // Same closed-set rule inside a cell object.
  const std::string reply2 = serve::handle_frame(
      server, R"({"op":"submit","cells":[{"bench":"bzip2","vddd":0.97}]})", &shutdown);
  EXPECT_EQ(serve::parse_json(reply2).find("error")->str, "unknown_field");
}

TEST(ServeProtocol, SubmitPollCancelRoundTrip) {
  serve::Server server(tiny_serve(2, 8, 4));
  bool shutdown = false;
  const serve::JsonValue sub = serve::parse_json(serve::handle_frame(
      server,
      R"({"op":"submit","cells":[{"bench":"bzip2","scheme":"abs","vdd":0.97}],"tag":"t1"})",
      &shutdown));
  ASSERT_TRUE(sub.find("ok")->boolean);
  const u64 id = sub.find("job")->as_u64();
  EXPECT_EQ(sub.find("cells")->as_u64(), 1u);
  server.drain();
  const serve::JsonValue poll = serve::parse_json(serve::handle_frame(
      server, R"({"op":"poll","job":)" + std::to_string(id) + "}", &shutdown));
  ASSERT_TRUE(poll.find("ok")->boolean);
  EXPECT_EQ(poll.find("state")->str, "done");
  EXPECT_EQ(poll.find("tag")->str, "t1");
  ASSERT_EQ(poll.find("results")->array.size(), 1u);
  const serve::JsonValue& cell = poll.find("results")->array[0];
  EXPECT_EQ(cell.find("benchmark")->str, "bzip2");
  EXPECT_EQ(cell.find("scheme")->str, "abs");
  EXPECT_EQ(cell.find("checksum")->str.size(), 16u);  // %016x hex
  EXPECT_GT(cell.find("committed")->as_u64(), 0u);
  // Cancelling a terminal job is a no-op that reports the final state.
  const serve::JsonValue cancel = serve::parse_json(serve::handle_frame(
      server, R"({"op":"cancel","job":)" + std::to_string(id) + "}", &shutdown));
  EXPECT_EQ(cancel.find("state")->str, "done");
  // The streaming cursor: since == done yields an empty result set.
  const serve::JsonValue tail = serve::parse_json(serve::handle_frame(
      server, R"({"op":"poll","job":)" + std::to_string(id) + R"(,"since":1})", &shutdown));
  EXPECT_EQ(tail.find("results")->array.size(), 0u);
}

TEST(ServeProtocol, DvfsFieldsValidateByName) {
  serve::Server server(tiny_serve(1, 2, 0));
  bool shutdown = false;
  // Unknown policy and zero epoch are named rejections, not silent accepts.
  const std::string bad_policy = serve::handle_frame(
      server, R"({"op":"submit","cells":[{"bench":"bzip2"}],"dvfs":"turbo"})", &shutdown);
  const serve::JsonValue v = serve::parse_json(bad_policy);
  EXPECT_EQ(v.find("error")->str, "bad_field");
  EXPECT_NE(v.find("message")->str.find("turbo"), std::string::npos);
  EXPECT_EQ(frame_error(server,
                        R"({"op":"submit","cells":[{"bench":"bzip2"}],"dvfs":5})"),
            "bad_field");
  EXPECT_EQ(frame_error(
                server,
                R"({"op":"submit","cells":[{"bench":"bzip2"}],"dvfs":"reactive","epoch":0})"),
            "bad_field");
}

TEST(ServeServer, DvfsJobsMatchStandaloneChecksums) {
  // An adaptive submit through the daemon produces the same per-cell
  // checksums as a standalone sweep with the same DvfsConfig -- the serve
  // path steps the controller at identical points.
  core::RunnerConfig rc = tiny_rc();
  rc.dvfs.policy = adapt::DvfsPolicy::kReactive;
  rc.dvfs.epoch = 400;
  std::vector<core::SweepJob> jobs;
  jobs.push_back({workload::spec2006_profile("bzip2"), core::scheme_by_name("abs"), 0.97,
                  std::nullopt});
  const std::vector<core::RunResult> expected = core::SweepRunner(rc, 1).run_results(jobs);
  ASSERT_TRUE(expected[0].dvfs.has_value());

  serve::Server server(tiny_serve(2, 8, 4));
  serve::JobSpec spec;
  spec.cells.push_back({"bzip2", "abs", 0.97});
  spec.dvfs = adapt::DvfsPolicy::kReactive;
  spec.epoch = 400;
  const u64 id = server.submit(spec);
  ASSERT_TRUE(server.wait(id, 120'000));
  const std::vector<serve::CellResult> results = server.results(id, 0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].checksum, core::result_checksum(expected[0]));

  // Same cell, different policy: a distinct run (the policy re-keys the
  // warmup, so the cache can never alias these).
  serve::JobSpec other = spec;
  other.dvfs = adapt::DvfsPolicy::kPredictive;
  const u64 id2 = server.submit(other);
  ASSERT_TRUE(server.wait(id2, 120'000));
  EXPECT_NE(server.results(id2, 0)[0].checksum, results[0].checksum);
}

TEST(ServeProtocol, QueueFullReplyCarriesRetryAfter) {
  serve::ServeConfig sc = tiny_serve(1, 0, 0);  // queue of zero: reject all
  serve::Server server(sc);
  bool shutdown = false;
  const serve::JsonValue reply = serve::parse_json(serve::handle_frame(
      server, R"({"op":"submit","cells":[{"bench":"bzip2"}]})", &shutdown));
  EXPECT_FALSE(reply.find("ok")->boolean);
  EXPECT_EQ(reply.find("error")->str, "queue_full");
  ASSERT_NE(reply.find("retry_after_ms"), nullptr);
  EXPECT_GE(reply.find("retry_after_ms")->as_u64(), 1u);
}

TEST(ServeProtocol, StatsReportQueueCacheAndCounters) {
  serve::Server server(tiny_serve(2, 8, 4));
  bool shutdown = false;
  (void)serve::handle_frame(
      server, R"({"op":"submit","cells":[{"bench":"bzip2","vdd":0.97}]})", &shutdown);
  server.drain();
  const serve::JsonValue reply =
      serve::parse_json(serve::handle_frame(server, R"({"op":"stats"})", &shutdown));
  ASSERT_TRUE(reply.find("ok")->boolean);
  EXPECT_EQ(reply.find("stats")->find("serve.jobs.submitted")->as_u64(), 1u);
  EXPECT_EQ(reply.find("stats")->find("serve.jobs.completed")->as_u64(), 1u);
  ASSERT_NE(reply.find("cache"), nullptr);
  EXPECT_EQ(reply.find("cache")->find("capacity")->as_u64(), 4u);
  EXPECT_EQ(reply.find("queue")->find("limit")->as_u64(), 8u);
  EXPECT_EQ(reply.find("workers")->as_u64(), 2u);
}

TEST(ServeProtocol, ShutdownFrameSetsTheFlagAfterReply) {
  serve::Server server(tiny_serve(1, 2, 0));
  bool shutdown = false;
  const serve::JsonValue reply = serve::parse_json(
      serve::handle_frame(server, R"({"op":"shutdown"})", &shutdown));
  EXPECT_TRUE(reply.find("ok")->boolean);
  EXPECT_TRUE(shutdown);
  // Extra fields on shutdown are rejected like everywhere else.
  shutdown = false;
  EXPECT_EQ(frame_error(server, R"({"op":"shutdown","force":true})"), "unknown_field");
  EXPECT_FALSE(shutdown);
}

// ---- Socket transport ------------------------------------------------------

TEST(ServeSocket, ParsesEndpoints) {
  const serve::Endpoint u = serve::parse_endpoint("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, serve::Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const serve::Endpoint t = serve::parse_endpoint("tcp:0");
  EXPECT_EQ(t.kind, serve::Endpoint::Kind::kTcp);
  EXPECT_EQ(t.port, 0);
  EXPECT_THROW((void)serve::parse_endpoint("unix:"), serve::SocketError);
  EXPECT_THROW((void)serve::parse_endpoint("tcp:notaport"), serve::SocketError);
  EXPECT_THROW((void)serve::parse_endpoint("tcp:70000"), serve::SocketError);
  EXPECT_THROW((void)serve::parse_endpoint("http://x"), serve::SocketError);
}

TEST(ServeSocket, TcpRoundTripSubmitPollOverEphemeralPort) {
  serve::Server server(tiny_serve(2, 8, 4));
  serve::Endpoint ep;
  ep.kind = serve::Endpoint::Kind::kTcp;
  ep.port = 0;
  serve::SocketServer transport(server, ep);
  transport.start();
  ASSERT_GT(transport.resolved_port(), 0);
  serve::Endpoint client_ep = ep;
  client_ep.port = transport.resolved_port();
  serve::Client client(client_ep);
  const serve::JsonValue sub = serve::parse_json(client.request(
      R"({"op":"submit","cells":[{"bench":"bzip2","scheme":"abs","vdd":0.97}]})"));
  ASSERT_TRUE(sub.find("ok")->boolean);
  const u64 id = sub.find("job")->as_u64();
  for (;;) {
    const serve::JsonValue poll =
        serve::parse_json(client.request(R"({"op":"poll","job":)" + std::to_string(id) + "}"));
    ASSERT_TRUE(poll.find("ok")->boolean);
    if (poll.find("state")->str == "done") {
      EXPECT_EQ(poll.find("results")->array.size(), 1u);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  transport.stop();
  server.shutdown();
}

TEST(ServeSocket, UnixSocketServesMultipleSequentialClients) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vasim_test_serve.sock").string();
  serve::Server server(tiny_serve(2, 8, 4));
  const serve::Endpoint ep = serve::parse_endpoint("unix:" + path);
  {
    serve::SocketServer transport(server, ep);
    transport.start();
    for (int i = 0; i < 3; ++i) {
      serve::Client client(ep);
      const serve::JsonValue stats = serve::parse_json(client.request(R"({"op":"stats"})"));
      EXPECT_TRUE(stats.find("ok")->boolean);
    }
    transport.stop();
  }
  server.shutdown();
  // The destructor unlinks the socket path (stale files would fail rebinds).
  EXPECT_FALSE(std::filesystem::exists(path)) << "socket file not unlinked";
}

TEST(ServeSocket, OversizedFrameGetsOneNamedErrorThenClose) {
  serve::Server server(tiny_serve(1, 2, 0));
  serve::Endpoint ep;
  ep.kind = serve::Endpoint::Kind::kTcp;
  ep.port = 0;
  serve::FrameLimits limits;
  limits.max_frame_bytes = 256;
  serve::SocketServer transport(server, ep, limits);
  transport.start();
  serve::Endpoint client_ep = ep;
  client_ep.port = transport.resolved_port();
  serve::Client client(client_ep);
  client.send_raw(std::string(512, 'a') + "\n");
  const serve::JsonValue reply = serve::parse_json(client.read_line());
  EXPECT_FALSE(reply.find("ok")->boolean);
  EXPECT_EQ(reply.find("error")->str, "oversized_frame");
  // The connection is closed after the reject: the next read hits EOF.
  EXPECT_THROW((void)client.read_line(), serve::SocketError);
  transport.stop();
  server.shutdown();
}

TEST(ServeSocket, TruncatedTrailingFrameIsDroppedAndServerSurvives) {
  serve::Server server(tiny_serve(1, 2, 0));
  serve::Endpoint ep;
  ep.kind = serve::Endpoint::Kind::kTcp;
  ep.port = 0;
  serve::SocketServer transport(server, ep);
  transport.start();
  serve::Endpoint client_ep = ep;
  client_ep.port = transport.resolved_port();
  {
    serve::Client half(client_ep);
    half.send_raw(R"({"op":"stats")");  // no newline, then EOF on destruct
  }
  serve::Client whole(client_ep);
  const serve::JsonValue stats = serve::parse_json(whole.request(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.find("ok")->boolean);
  transport.stop();
  server.shutdown();
}

}  // namespace
}  // namespace vasim
