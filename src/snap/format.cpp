#include "src/snap/format.hpp"

#include <cctype>
#include <cstring>
#include <fstream>

namespace vasim::snap {

namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4;
constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 8 + 4;

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("cannot open '" + path + "'");
  std::vector<unsigned char> buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return buf;
}

/// Validates magic/version/endianness and returns a reader positioned at the
/// chunk count.
Reader open_header(const std::vector<unsigned char>& buf, bool strict_endian, bool* endian_ok) {
  if (buf.size() < kHeaderBytes) throw SnapshotError("file too small for header (" + std::to_string(buf.size()) + " bytes)");
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0) throw SnapshotError("bad magic (not a vasim snapshot)");
  Reader r(buf);
  r.skip(sizeof kMagic);
  const u32 version = r.get_u32();
  if (version != kFormatVersion)
    throw SnapshotError("container format version " + std::to_string(version) + " unsupported (this build reads " +
                        std::to_string(kFormatVersion) + ")");
  const u32 endian = r.get_u32();
  const bool ok = endian == kEndianMarker;
  if (endian_ok != nullptr) *endian_ok = ok;
  if (strict_endian && !ok) throw SnapshotError("endianness marker mismatch (file written with raw host byte order?)");
  return r;
}

}  // namespace

std::string tag_name(u32 tag) {
  std::string s(4, '.');
  for (int i = 0; i < 4; ++i) {
    const auto c = static_cast<unsigned char>((tag >> (8 * i)) & 0xFF);
    if (std::isprint(c) != 0) s[static_cast<std::size_t>(i)] = static_cast<char>(c);
  }
  return s;
}

const Chunk* Snapshot::find(u32 tag) const {
  for (const Chunk& c : chunks_)
    if (c.tag == tag) return &c;
  return nullptr;
}

const Chunk& Snapshot::require(u32 tag) const {
  const Chunk* c = find(tag);
  if (c == nullptr) throw SnapshotError("required chunk '" + tag_name(tag) + "' missing");
  return *c;
}

std::vector<unsigned char> encode_snapshot(const Snapshot& s) {
  Writer w;
  w.put_bytes(kMagic, sizeof kMagic);
  w.put_u32(kFormatVersion);
  w.put_u32(kEndianMarker);
  w.put_u32(static_cast<u32>(s.chunks().size()));
  for (const Chunk& c : s.chunks()) {
    w.put_u32(c.tag);
    w.put_u32(c.version);
    w.put_u64(c.payload.size());
    w.put_u32(crc32(c.payload.data(), c.payload.size()));
    w.put_bytes(c.payload.data(), c.payload.size());
  }
  return w.take();
}

Snapshot decode_snapshot(const unsigned char* data, std::size_t n) {
  const std::vector<unsigned char> buf(data, data + n);
  Reader r = open_header(buf, /*strict_endian=*/true, nullptr);
  const u32 count = r.get_u32();
  Snapshot s;
  for (u32 i = 0; i < count; ++i) {
    if (r.remaining() < kChunkHeaderBytes)
      throw SnapshotError("truncated chunk table (chunk " + std::to_string(i) + " of " + std::to_string(count) + ")");
    const u32 tag = r.get_u32();
    const u32 version = r.get_u32();
    const u64 size = r.get_u64();
    const u32 crc_stored = r.get_u32();
    if (r.remaining() < size)
      throw SnapshotError("chunk '" + tag_name(tag) + "' truncated (declares " + std::to_string(size) + " bytes, " +
                          std::to_string(r.remaining()) + " remain)");
    std::vector<unsigned char> payload(static_cast<std::size_t>(size));
    r.get_bytes(payload.data(), payload.size());
    const u32 crc_actual = crc32(payload.data(), payload.size());
    if (crc_actual != crc_stored)
      throw SnapshotError("chunk '" + tag_name(tag) + "' CRC mismatch (stored " + std::to_string(crc_stored) +
                          ", computed " + std::to_string(crc_actual) + ")");
    s.add(tag, version, std::move(payload));
  }
  r.expect_done("snapshot container");
  return s;
}

void write_snapshot_file(const std::string& path, const Snapshot& s) {
  const std::vector<unsigned char> bytes = encode_snapshot(s);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SnapshotError("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SnapshotError("write failed for '" + path + "'");
}

Snapshot read_snapshot_file(const std::string& path) {
  const std::vector<unsigned char> buf = slurp(path);
  return decode_snapshot(buf.data(), buf.size());
}

SnapshotInfo read_snapshot_info(const std::string& path) {
  const std::vector<unsigned char> buf = slurp(path);
  SnapshotInfo info;
  info.file_size = buf.size();
  Reader r = open_header(buf, /*strict_endian=*/false, &info.endian_ok);
  info.format_version = kFormatVersion;
  const u32 count = r.get_u32();
  for (u32 i = 0; i < count; ++i) {
    if (r.remaining() < kChunkHeaderBytes)
      throw SnapshotError("truncated chunk table (chunk " + std::to_string(i) + " of " + std::to_string(count) + ")");
    ChunkInfo ci;
    ci.tag = r.get_u32();
    ci.version = r.get_u32();
    ci.size = r.get_u64();
    ci.crc_stored = r.get_u32();
    if (r.remaining() < ci.size)
      throw SnapshotError("chunk '" + tag_name(ci.tag) + "' truncated (declares " + std::to_string(ci.size) +
                          " bytes, " + std::to_string(r.remaining()) + " remain)");
    std::vector<unsigned char> payload(static_cast<std::size_t>(ci.size));
    r.get_bytes(payload.data(), payload.size());
    ci.crc_actual = crc32(payload.data(), payload.size());
    ci.crc_ok = ci.crc_actual == ci.crc_stored;
    info.chunks.push_back(ci);
  }
  return info;
}

}  // namespace vasim::snap
