// A small 45 nm-style standard-cell library.
//
// Stands in for the FreePDK45 library the paper synthesizes against with
// Synopsys Design Compiler.  Per-cell area/delay/energy/leakage values are
// representative 45 nm magnitudes; Table 2/3 and the fault model only
// consume ratios and relative orderings, which this preserves.
#ifndef VASIM_CIRCUIT_CELL_LIBRARY_HPP
#define VASIM_CIRCUIT_CELL_LIBRARY_HPP

#include <string_view>

#include "src/common/types.hpp"

namespace vasim::circuit {

/// Primitive cells.  kInput/kConst are zero-cost pseudo-cells; kDff is used
/// for storage accounting (sequential state is not gate-simulated).
enum class GateKind : u8 {
  kInput = 0,
  kConst0,
  kConst1,
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,
  kDff,
};

inline constexpr int kNumGateKinds = 13;

/// Electrical characteristics of one cell.
struct CellInfo {
  std::string_view name;
  int fanin = 0;          ///< number of logic inputs (mux counts select)
  double area_um2 = 0.0;  ///< layout area
  double delay_ps = 0.0;  ///< nominal propagation delay
  double energy_fj = 0.0; ///< dynamic energy per output toggle
  double leakage_nw = 0.0;///< static leakage power
};

/// Characteristics of `kind` in the default 45 nm library.
const CellInfo& cell_info(GateKind kind);

/// True for cells that participate in combinational evaluation.
constexpr bool is_combinational(GateKind kind) {
  return kind != GateKind::kInput && kind != GateKind::kDff;
}

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_CELL_LIBRARY_HPP
