file(REMOVE_RECURSE
  "libvasim_isa.a"
)
