// Internal per-simulation context shared by ExperimentRunner (one job at a
// time, src/core/runner.cpp) and BatchRunner (B jobs lockstep,
// src/core/batch.cpp).
//
// A JobContext owns everything one simulation needs -- trace generator,
// fault model, predictors, pipeline, optional semantics checker and commit
// trail -- wired exactly as the historical run()/run_fault_free bodies did.
// Keeping construction, snapshot capture/restore and result assembly in one
// place is what makes the batched engine bitwise-identical to the single-job
// path by construction: both executors drive the same object through the
// same phase boundaries, only the interleaving of step() calls differs (and
// contexts share no mutable state, so interleaving is unobservable).
//
// This header is an implementation detail of vasim_core (namespace
// core::detail); it is not part of the public experiment API.
#ifndef VASIM_CORE_JOB_CONTEXT_HPP
#define VASIM_CORE_JOB_CONTEXT_HPP

#include <memory>
#include <optional>
#include <vector>

#include "src/check/semantics.hpp"
#include "src/core/runner.hpp"
#include "src/core/snapshot.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::core::detail {

/// Samples the cycle counter at every `stride`-th commit (capped so huge
/// runs stay cheap); consumed by test_golden_equiv's divergence printer.
class CommitTrailObserver final : public cpu::PipelineObserver {
 public:
  CommitTrailObserver(u64 stride, std::vector<Cycle>* out) : stride_(stride), out_(out) {}
  void on_cycle(Cycle now) override { now_ = now; }
  void on_commit(SeqNum) override {
    ++commits_;
    if (commits_ % stride_ == 0 && out_->size() < kMaxEntries) out_->push_back(now_);
  }

  [[nodiscard]] u64 commits() const { return commits_; }
  /// Snapshot restore: the trail vector is refilled externally; the commit
  /// count must resume from the captured value for the stride phase to stay
  /// aligned.
  void set_commits(u64 commits) { commits_ = commits; }

 private:
  static constexpr std::size_t kMaxEntries = 256;
  u64 stride_;
  std::vector<Cycle>* out_;
  u64 commits_ = 0;
  Cycle now_ = 0;
};

/// Everything one simulation owns, constructed in place exactly as the
/// historical run()/run_fault_free bodies did.  Never moved: the pipeline
/// holds pointers into gen/fm/predictor.  `scheme_opt == nullopt` selects
/// the fault-free-baseline wiring (no fault model, no predictors).
struct JobContext {
  workload::TraceGenerator gen;
  std::optional<timing::FaultModel> fm;
  /// State-dependent delay model + adaptive clock domain; engaged only when
  /// RunnerConfig::dvfs names an adaptive policy and the job has a scheme
  /// (static jobs carry neither, keeping them bitwise-identical to pre-dvfs
  /// builds).
  std::optional<timing::StateDelayModel> state_delay;
  std::optional<adapt::ClockDomain> clock;
  std::optional<TimingErrorPredictor> tep;
  std::optional<MostRecentEntryPredictor> mre;
  std::optional<TimingViolationPredictor> tvp;
  cpu::FaultPredictor* predictor = nullptr;
  bool fault_free = false;
  cpu::SchemeConfig scheme;
  std::optional<cpu::Pipeline> pipe;
  std::optional<check::SemanticsChecker> checker;
  std::vector<Cycle> trail;
  std::optional<CommitTrailObserver> trail_obs;
  /// Interval sampler over pipe->registry(); shared so assemble_result can
  /// publish it into the RunResult without copying the columnar store.
  std::shared_ptr<obs::Timeline> timeline;
  std::optional<obs::Profiler> profiler;

  JobContext(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
             const std::optional<cpu::SchemeConfig>& scheme_opt, double vdd);

  JobContext(const JobContext&) = delete;
  JobContext& operator=(const JobContext&) = delete;
};

/// Assembles the full snapshot container from a job paused at a cycle
/// boundary.  Refuses to serialize a run whose checker already failed.
RunSnapshot make_snapshot(const RunnerConfig& cfg, const JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          const StatSet& base, u64 base_committed, Cycle base_cycles,
                          bool base_captured);

/// Restores every chunk into a freshly constructed JobContext.  Chunks with
/// unknown tags are ignored (forward compatibility); required chunks with a
/// newer version, or any payload/geometry mismatch, throw.
void restore_into(JobContext& ctx, const RunSnapshot& s);

/// Computes the RunResult from a finished pipeline window.  Throws (with the
/// checker's report) when the semantics checker observed a violation.
RunResult assemble_result(const RunnerConfig& cfg, JobContext& ctx,
                          const workload::BenchmarkProfile& profile, double vdd,
                          cpu::PipelineResult&& pr);

}  // namespace vasim::core::detail

#endif  // VASIM_CORE_JOB_CONTEXT_HPP
