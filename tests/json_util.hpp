// Shared JSON test helpers.
//
// The toolchain ships no JSON library, so the tests validate generated JSON
// with a minimal recursive-descent syntax checker -- no DOM, just "is this
// valid JSON" -- plus a substring counter for pinning event counts.  Used by
// test_obs (Chrome traces), test_timeline (timeline exports) and test_sweep
// (the JSON result sink).
#ifndef VASIM_TESTS_JSON_UTIL_HPP
#define VASIM_TESTS_JSON_UTIL_HPP

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace vasim::testutil {

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  [[nodiscard]] bool parse() {
    const bool ok = value();
    ws();
    return ok && i_ == s_.size();
  }

 private:
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  [[nodiscard]] bool eat(char c) {
    ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.compare(i_, word.size(), word) != 0) return false;
    i_ += word.size();
    return true;
  }
  [[nodiscard]] bool string_lit() {
    if (!eat('"')) return false;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    return i_ < s_.size() && s_[i_++] == '"';
  }
  [[nodiscard]] bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '-' || s_[i_] == '+')) {
      ++i_;
    }
    return i_ > start;
  }
  [[nodiscard]] bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      ws();
      if (!string_lit() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  [[nodiscard]] bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  [[nodiscard]] bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

inline std::size_t count_substr(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + 1)) {
    ++n;
  }
  return n;
}

}  // namespace vasim::testutil

#endif  // VASIM_TESTS_JSON_UTIL_HPP
