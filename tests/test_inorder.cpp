// Tests for the in-order reference core.
#include <gtest/gtest.h>

#include "src/core/tep.hpp"
#include "src/cpu/inorder.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::cpu {
namespace {

PipelineResult run_io(const workload::BenchmarkProfile& prof, const SchemeConfig& scheme,
                      const timing::FaultModel* fm, FaultPredictor* pred, u64 n = 15000,
                      u64 warm = 5000) {
  workload::TraceGenerator gen(prof);
  InOrderConfig cfg;
  InOrderPipeline pipe(cfg, scheme, &gen, fm, pred);
  return pipe.run(n, warm);
}

TEST(InOrder, ScalarIpcBelowOne) {
  const auto prof = workload::spec2006_profile("sjeng");
  const PipelineResult r = run_io(prof, scheme_fault_free(), nullptr, nullptr);
  EXPECT_EQ(r.committed, 15000u);
  EXPECT_GT(r.ipc(), 0.15);
  EXPECT_LE(r.ipc(), 1.0) << "a scalar in-order core cannot exceed IPC 1";
}

TEST(InOrder, SlowerThanOoOCore) {
  // Warmed-up comparison: the 4-wide OoO core clearly outruns the scalar
  // in-order core on an ILP-rich workload.
  const auto prof = workload::spec2006_profile("sjeng");
  const PipelineResult io = run_io(prof, scheme_fault_free(), nullptr, nullptr, 20000, 30000);
  workload::TraceGenerator gen(prof);
  CoreConfig cfg;
  Pipeline ooo(cfg, scheme_fault_free(), &gen, nullptr, nullptr);
  const PipelineResult oo = ooo.run(20000, 30000);
  EXPECT_GT(oo.ipc(), io.ipc() * 1.5);
}

TEST(InOrder, MemoryBoundWorkloadsStall) {
  const auto fast = workload::spec2006_profile("sjeng");
  const auto slow = workload::spec2006_profile("mcf");
  EXPECT_GT(run_io(fast, scheme_fault_free(), nullptr, nullptr).ipc(),
            run_io(slow, scheme_fault_free(), nullptr, nullptr).ipc() * 1.5);
}

TEST(InOrder, AbsEqualsErrorPadding) {
  // The headline property: with no scheduling freedom, violation-aware
  // scheduling degenerates exactly to stall-based padding.
  const auto prof = workload::spec2006_profile("bzip2");
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                               prof.fr_low_pct / 100.0 * prof.fr_calib_low};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep_a({}, &fm.environment());
  core::TimingErrorPredictor tep_b({}, &fm.environment());
  const PipelineResult ep = run_io(prof, scheme_error_padding(), &fm, &tep_a);
  const PipelineResult abs = run_io(prof, scheme_abs(), &fm, &tep_b);
  EXPECT_EQ(ep.cycles, abs.cycles);
}

TEST(InOrder, FaultsCostCyclesAndAreAccounted) {
  const auto prof = workload::spec2006_profile("gcc");
  timing::PathModelConfig pcfg{prof.seed, 0.10, 0.03};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  const PipelineResult clean = run_io(prof, scheme_fault_free(), nullptr, nullptr);
  const PipelineResult faulty = run_io(prof, scheme_error_padding(), &fm, &tep);
  EXPECT_GT(faulty.cycles, clean.cycles);
  const u64 actual = faulty.stats.count("fault.actual");
  EXPECT_GT(actual, 100u);
  EXPECT_LE(faulty.stats.count("fault.handled") + faulty.stats.count("fault.replays"), actual);
}

TEST(InOrder, RazorReplaysEverything) {
  const auto prof = workload::spec2006_profile("gcc");
  timing::PathModelConfig pcfg{prof.seed, 0.10, 0.03};
  const timing::FaultModel fm(pcfg, 0.97);
  const PipelineResult r = run_io(prof, scheme_razor(), &fm, nullptr);
  EXPECT_EQ(r.stats.count("fault.handled"), 0u);
  EXPECT_EQ(r.stats.count("fault.replays"), r.stats.count("fault.actual"));
}

TEST(InOrder, WarmupExcluded) {
  const auto prof = workload::spec2006_profile("tonto");
  const PipelineResult r = run_io(prof, scheme_fault_free(), nullptr, nullptr, 8000, 4000);
  EXPECT_EQ(r.committed, 8000u);
  EXPECT_EQ(r.stats.count("ev.commit"), 8000u);
}

}  // namespace
}  // namespace vasim::cpu
