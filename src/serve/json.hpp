// Minimal JSON value model for the serve protocol.
//
// The toolchain ships no JSON library, and the line-delimited protocol needs
// a real parser on the *request* side (replies are formatted directly): a
// frame must be accepted or rejected with a named reason, never guessed at.
// This is a strict recursive-descent parser over the full JSON grammar with
// a depth limit; objects preserve key order and reject duplicate keys so the
// protocol layer can enforce "unknown field" errors deterministically.
//
// Deliberately small: no DOM mutation helpers, no serialization of JsonValue
// (replies are built with the json_* formatting helpers below), doubles only
// for numbers (the protocol's integers all fit in 2^53).
#ifndef VASIM_SERVE_JSON_HPP
#define VASIM_SERVE_JSON_HPP

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/types.hpp"

namespace vasim::serve {

/// Parse failure: `what()` names the reason and the byte offset.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& reason, std::size_t offset)
      : std::runtime_error(reason + " at byte " + std::to_string(offset)), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value.  A tagged aggregate rather than std::variant so
/// accessors can return references without visit noise.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered; parse_json rejects duplicate keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Number as u64; throws JsonError(0) when not a non-negative integer.
  [[nodiscard]] u64 as_u64() const;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  `max_depth` bounds nesting; exceeding it throws.
[[nodiscard]] JsonValue parse_json(std::string_view text, std::size_t max_depth = 32);

// ---- reply formatting helpers ----------------------------------------------
// Replies are append-formatted into a std::string; these keep escaping and
// float formatting consistent with the sweep JSON sink.

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trip double formatting; non-finite values become null.
[[nodiscard]] std::string json_double(double v);

}  // namespace vasim::serve

#endif  // VASIM_SERVE_JSON_HPP
