// Adaptive clock domain: owns the current period, the controller, the
// trajectory record and the registry counters that fold adaptive behavior
// into checksums and the timeline.
//
// The pipeline drives it with one tick() per simulated cycle (accumulating
// `dvfs.wall_units` in permille-cycles, the run's simulated wall time) and
// one step_epoch() per epoch boundary, the same committed-count re-arm
// discipline as the timeline sampler -- so every execution path (per-job,
// lockstep batch, shard, serve) steps the controller at identical points
// and the runs are bit-identical across paths.
#ifndef VASIM_ADAPT_CLOCK_HPP
#define VASIM_ADAPT_CLOCK_HPP

#include <memory>
#include <vector>

#include "src/adapt/controller.hpp"
#include "src/adapt/dvfs.hpp"
#include "src/obs/registry.hpp"
#include "src/snap/io.hpp"

namespace vasim::adapt {

/// Cumulative totals at an epoch boundary; the clock domain differences
/// consecutive samples itself.
struct EpochSample {
  u64 committed = 0;
  u64 cycles = 0;
  u64 violations = 0;
  u64 replays = 0;
  std::array<u64, timing::kNumOooStages> stage_violations{};
  u64 mem_slots = 0;    ///< cumulative memory CPI slots
  u64 total_slots = 0;  ///< cumulative total commit slots (cycles * width)
  bool hot = false;
  bool droopy = false;
};

/// One epoch of the controller trajectory, for reports and the sweep JSON.
struct TrajectoryPoint {
  u64 committed = 0;       ///< cumulative commits at the epoch boundary
  u32 period_permille = 0; ///< period in effect during the finished epoch
  u32 violations = 0;      ///< violations within the epoch
};

class ClockDomain {
 public:
  ClockDomain(const DvfsConfig& cfg, double vdd);

  /// Registers the dvfs counters in the pipeline's registry.  Idempotent;
  /// must run before the timeline sampler freezes its column set and before
  /// any registry save/restore.
  void bind(obs::Registry& reg);

  /// One simulated cycle at the current period.
  void tick() { wall_units_.inc(period_permille_); }

  /// Controller step at an epoch boundary.
  void step_epoch(const EpochSample& s);

  [[nodiscard]] u64 epoch_interval() const { return cfg_.epoch; }
  [[nodiscard]] u32 period_permille() const { return period_permille_; }
  [[nodiscard]] double period_scale() const { return static_cast<double>(period_permille_) * 1e-3; }
  [[nodiscard]] const DvfsConfig& config() const { return cfg_; }
  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] const std::vector<TrajectoryPoint>& trajectory() const { return traj_; }
  [[nodiscard]] u64 epochs() const { return traj_.size(); }
  [[nodiscard]] u32 period_lo() const { return period_lo_; }
  [[nodiscard]] u32 period_hi() const { return period_hi_; }
  [[nodiscard]] u64 wall_units() const { return wall_units_.valid() ? wall_units_.value() : 0; }

  /// Full controller + domain state for the snapshot ADPT chunk.  Counter
  /// values live in the pipeline registry and ride the PIPE chunk.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  DvfsConfig cfg_;
  double vdd_;
  std::unique_ptr<DvfsController> ctrl_;
  u32 period_permille_ = 1000;
  u32 period_lo_ = 1000;
  u32 period_hi_ = 1000;
  EpochSample last_{};
  std::vector<TrajectoryPoint> traj_;
  bool bound_ = false;
  obs::Counter wall_units_;
  obs::Counter epochs_c_;
  obs::Counter raises_;
  obs::Counter drops_;
};

}  // namespace vasim::adapt

#endif  // VASIM_ADAPT_CLOCK_HPP
