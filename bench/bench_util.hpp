// Shared helpers for the table/figure reproduction benches.
//
// Run length is controlled by environment variables so CI can shrink and
// archival runs can grow the experiments:
//   VASIM_INSTR   measured committed instructions per run (default 150000)
//   VASIM_WARMUP  warmup instructions per run              (default 150000)
#ifndef VASIM_BENCH_BENCH_UTIL_HPP
#define VASIM_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <map>
#include <string>

#include "src/common/env.hpp"
#include "src/common/table.hpp"
#include "src/core/runner.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::bench {

inline core::RunnerConfig runner_config_from_env() {
  core::RunnerConfig rc;
  rc.instructions = env_u64("VASIM_INSTR", 150'000);
  rc.warmup = env_u64("VASIM_WARMUP", 150'000);
  return rc;
}

/// All scheme results for one benchmark at one supply.
struct SupplyResults {
  core::RunResult fault_free;
  std::map<std::string, core::RunResult> schemes;  // razor/ep/abs/ffs/cds
};

inline SupplyResults run_all_schemes(const core::ExperimentRunner& runner,
                                     const workload::BenchmarkProfile& prof, double vdd) {
  SupplyResults out;
  out.fault_free = runner.run_fault_free(prof, vdd);
  for (const auto& scheme : core::comparative_schemes()) {
    out.schemes.emplace(scheme.name, runner.run(prof, scheme, vdd));
  }
  return out;
}

/// Overhead of one scheme relative to fault-free execution.
inline core::Overheads scheme_overhead(const SupplyResults& r, const std::string& scheme) {
  return core::overhead_vs(r.fault_free, r.schemes.at(scheme));
}

/// Ratio of a scheme's overhead to EP's overhead (the normalization of
/// Figures 4/5/8/9); clamped at zero when the scheme beats fault-free
/// execution outright (scheduling-slack artifact, see EXPERIMENTS.md).
inline double normalized_to_ep(double scheme_pct, double ep_pct) {
  if (ep_pct <= 0.0) return 0.0;
  return std::max(0.0, scheme_pct) / ep_pct;
}

inline void print_run_header(const std::string& what, const core::RunnerConfig& rc) {
  std::cout << "=== " << what << " ===\n"
            << "(vasim reproduction; " << rc.instructions << " measured instructions after "
            << rc.warmup << " warmup per run; override with VASIM_INSTR / VASIM_WARMUP)\n\n";
}

}  // namespace vasim::bench

#endif  // VASIM_BENCH_BENCH_UTIL_HPP
