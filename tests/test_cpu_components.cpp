// Unit tests for CPU components: caches, branch predictor, FU pool.
#include <gtest/gtest.h>

#include "src/cpu/branch_pred.hpp"
#include "src/cpu/cache.hpp"
#include "src/cpu/fu_pool.hpp"

namespace vasim::cpu {
namespace {

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache(CacheConfig{100, 4, 64, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{32 * 1024, 0, 64, 1}), std::invalid_argument);
  const Cache c(CacheConfig{32 * 1024, 4, 64, 1});
  EXPECT_EQ(c.num_sets(), 128);
}

TEST(Cache, HitAfterFill) {
  Cache c(CacheConfig{1024, 2, 64, 1});
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1008));  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction) {
  // 1024B, 2-way, 64B lines -> 8 sets.  Three lines mapping to set 0:
  Cache c(CacheConfig{1024, 2, 64, 1});
  const Addr a = 0 * 512, b = 1 * 512, d = 2 * 512;
  c.access(a);
  c.access(b);
  c.access(a);     // a most recent
  c.access(d);     // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, ContainsDoesNotFill) {
  Cache c(CacheConfig{1024, 2, 64, 1});
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.misses(), 0u);
}

TEST(MemoryHierarchy, LatenciesCompose) {
  CoreConfig cfg;
  MemoryHierarchy mh(cfg);
  // Cold: L1 miss + L2 miss -> 1 + 25 + 240.
  EXPECT_EQ(mh.load_latency(0x100000), 1u + 25u + 240u);
  // Now L1-resident.
  EXPECT_EQ(mh.load_latency(0x100000), 1u);
  // Evict from L1 only (touch many lines in the same set), then L2 hit.
  for (int i = 1; i <= 8; ++i) {
    mh.load_latency(0x100000 + static_cast<Addr>(i) * 32 * 1024 / 4);
  }
  const Cycle lat = mh.load_latency(0x100000);
  EXPECT_TRUE(lat == 1 || lat == 26) << lat;
}

TEST(MemoryHierarchy, IfetchSeparateFromData) {
  CoreConfig cfg;
  MemoryHierarchy mh(cfg);
  mh.load_latency(0x5000);
  // Same address on the I-side still misses L1I (but hits the shared L2).
  EXPECT_EQ(mh.ifetch_latency(0x5000), 1u + 25u);
}

TEST(MemoryHierarchy, StoreCommitWarmsCaches) {
  CoreConfig cfg;
  MemoryHierarchy mh(cfg);
  mh.store_commit(0x9000);
  EXPECT_EQ(mh.load_latency(0x9000), 1u);
}

TEST(MemoryHierarchy, NextLinePrefetchWarmsL2) {
  CoreConfig cfg;
  cfg.l2_next_line_prefetch = true;
  MemoryHierarchy mh(cfg);
  // Demand miss at addr fills L2 with addr AND addr+64.
  EXPECT_EQ(mh.load_latency(0x100000), 1u + 25u + 240u);
  EXPECT_EQ(mh.load_latency(0x100040), 1u + 25u) << "next line prefetched into L2";
  EXPECT_EQ(mh.prefetches(), 2u);  // each miss prefetched one line
}

TEST(MemoryHierarchy, PrefetchOffByDefault) {
  CoreConfig cfg;
  MemoryHierarchy mh(cfg);
  mh.load_latency(0x100000);
  EXPECT_EQ(mh.load_latency(0x100040), 1u + 25u + 240u);
  EXPECT_EQ(mh.prefetches(), 0u);
}

TEST(MemoryHierarchy, ExportStats) {
  CoreConfig cfg;
  MemoryHierarchy mh(cfg);
  mh.load_latency(0x100);
  StatSet s;
  mh.export_stats(s);
  EXPECT_EQ(s.count("cache.l1d.misses"), 1u);
  EXPECT_EQ(s.count("cache.l2.misses"), 1u);
}

TEST(BranchPredictor, LearnsFixedDirection) {
  CoreConfig cfg;
  BranchPredictor bp(cfg);
  const Pc pc = 0x4000;
  // Enough updates to saturate the history register so the predict-time
  // index has been trained.
  for (int i = 0; i < 40; ++i) bp.update(pc, true, 0x5000);
  const BranchPrediction p = bp.predict(pc);
  EXPECT_TRUE(p.taken);
  EXPECT_TRUE(p.target_known);
  EXPECT_EQ(p.target, 0x5000u);
}

TEST(BranchPredictor, LearnsNotTaken) {
  CoreConfig cfg;
  BranchPredictor bp(cfg);
  for (int i = 0; i < 40; ++i) bp.update(0x4000, false, 0);
  EXPECT_FALSE(bp.predict(0x4000).taken);
}

TEST(BranchPredictor, HistoryShiftsOnlyOnUpdates) {
  CoreConfig cfg;
  BranchPredictor bp(cfg);
  const u64 h0 = bp.history();
  (void)bp.predict(0x100);
  EXPECT_EQ(bp.history(), h0);
  bp.update(0x100, true, 0x200);
  EXPECT_NE(bp.history(), h0);
}

TEST(BranchPredictor, BtbMissForUnseenTarget) {
  CoreConfig cfg;
  BranchPredictor bp(cfg);
  EXPECT_FALSE(bp.predict(0xdead0).target_known);
}

TEST(FuPool, KindsMatchConfig) {
  CoreConfig cfg;
  FuPool pool(cfg);
  EXPECT_EQ(pool.unit_count(),
            cfg.simple_alus + cfg.complex_alus + cfg.branch_units + cfg.load_ports +
                cfg.store_ports);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kIntAlu), FuKind::kSimpleAlu);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kIntMul), FuKind::kComplexAlu);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kIntDiv), FuKind::kComplexAlu);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kLoad), FuKind::kLoadPort);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kStore), FuKind::kStorePort);
  EXPECT_EQ(fu_kind_for(isa::OpClass::kBranch), FuKind::kBranch);
}

TEST(FuPool, PipelinedUnitsAcceptEveryCycle) {
  CoreConfig cfg;
  cfg.simple_alus = 1;
  FuPool pool(cfg);
  EXPECT_GE(pool.allocate(isa::OpClass::kIntAlu, 10, 1, false), 0);
  EXPECT_LT(pool.allocate(isa::OpClass::kIntAlu, 10, 1, false), 0);  // same cycle: busy
  EXPECT_GE(pool.allocate(isa::OpClass::kIntAlu, 11, 1, false), 0);  // next cycle: free
}

TEST(FuPool, UnpipelinedDivideOccupiesFully) {
  CoreConfig cfg;
  cfg.complex_alus = 1;
  FuPool pool(cfg);
  EXPECT_GE(pool.allocate(isa::OpClass::kIntDiv, 0, 12, false), 0);
  EXPECT_FALSE(pool.can_accept(isa::OpClass::kIntMul, 5));
  EXPECT_FALSE(pool.can_accept(isa::OpClass::kIntDiv, 11));
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kIntDiv, 12));
}

TEST(FuPool, VteExtraOccupyBlocksOneMoreCycle) {
  CoreConfig cfg;
  cfg.simple_alus = 1;
  FuPool pool(cfg);
  EXPECT_GE(pool.allocate(isa::OpClass::kIntAlu, 0, 1, true), 0);  // FUSR off 1 cycle
  EXPECT_FALSE(pool.can_accept(isa::OpClass::kIntAlu, 1));
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kIntAlu, 2));
}

TEST(FuPool, ShiftTimeMovesReservations) {
  CoreConfig cfg;
  cfg.simple_alus = 1;
  FuPool pool(cfg);
  (void)pool.allocate(isa::OpClass::kIntAlu, 0, 1, false);
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kIntAlu, 1));
  pool.shift_time(5);
  EXPECT_FALSE(pool.can_accept(isa::OpClass::kIntAlu, 1));
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kIntAlu, 6));
}

TEST(FuPool, DistinctKindsDoNotInterfere) {
  CoreConfig cfg;
  FuPool pool(cfg);
  (void)pool.allocate(isa::OpClass::kLoad, 0, 200, false);
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kStore, 0));
  EXPECT_TRUE(pool.can_accept(isa::OpClass::kIntAlu, 0));
}

}  // namespace
}  // namespace vasim::cpu
