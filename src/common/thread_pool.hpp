// Minimal fixed-size thread pool for fanning out independent jobs.
//
// Work items are plain std::function<void()>.  A task that throws does not
// take its worker down -- the pool swallows the exception -- so callers that
// need failures reported capture an exception_ptr inside the task (see
// SweepRunner).  Destruction drains the queue:
// already-submitted tasks run to completion before the workers join.
#ifndef VASIM_COMMON_THREAD_POOL_HPP
#define VASIM_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vasim {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains outstanding work, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; never blocks on task execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Worker count from `VASIM_JOBS`; falls back to hardware_concurrency()
  /// (itself clamped to >= 1).  `VASIM_JOBS=1` reproduces a sequential run.
  [[nodiscard]] static std::size_t default_worker_count();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or shutdown
  std::condition_variable idle_cv_;   ///< signals wait_idle(): all drained
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vasim

#endif  // VASIM_COMMON_THREAD_POOL_HPP
