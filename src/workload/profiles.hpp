// Per-benchmark workload profiles.
//
// The paper evaluates SPEC CPU2006 SimPoint phases on Simics (Section 4.2)
// and SPEC2000 integer inputs for the gate-level study (S1.2).  Neither
// suite is available offline, so each benchmark becomes a statistical
// profile capturing the properties the evaluation actually depends on:
// instruction mix, dependence structure (ILP), branch predictability, cache
// behaviour, static footprint, and the Table 1 fault-rate targets.
#ifndef VASIM_WORKLOAD_PROFILES_HPP
#define VASIM_WORKLOAD_PROFILES_HPP

#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace vasim::workload {

/// Statistical description of one SPEC2006-like benchmark.
struct BenchmarkProfile {
  std::string name;

  // Dynamic instruction mix (fractions; remainder is single-cycle ALU).
  double f_load = 0.22;
  double f_store = 0.10;
  double f_branch = 0.15;
  double f_mul = 0.02;
  double f_div = 0.002;

  // Branch behaviour: probability a conditional branch is taken, and the
  // fraction of branches whose outcome is history-independent (these defeat
  // the gshare predictor and set the mispredict rate).
  double branch_taken_bias = 0.60;
  double branch_random_frac = 0.10;

  // Dependence structure.  With probability `serial_frac` an instruction
  // reads the immediately preceding result (serial chains, low ILP);
  // otherwise its source distance is 1 + Geometric(dep_geo_p).  A fraction
  // `hub_frac` of reads source a designated long-lived "hub" register,
  // giving some producers many dependents (what CDS exploits).
  double serial_frac = 0.15;
  double dep_geo_p = 0.35;
  double hub_frac = 0.05;
  /// Probability a source read hits an always-ready base register
  /// (constants, stack/frame pointers): the architectural slack [18] that
  /// lets the violation-aware scheduler hide a faulty instruction's extra
  /// cycle.
  double slack_frac = 0.25;

  // Memory behaviour, three streams:
  //  * hot  -- L1-resident region (ws_hot_bytes), the default;
  //  * warm -- randomly reused mid-size region (ws_warm_bytes): L1 misses
  //            that hit in L2 once warmed;
  //  * cold -- fresh data: either unit-stride streaming (one memory miss per
  //            line) or random within ws_cold_bytes (memory misses).
  u64 ws_hot_bytes = 16 * 1024;
  u64 ws_warm_bytes = 128 * 1024;
  u64 ws_cold_bytes = 4 * 1024 * 1024;
  double warm_frac = 0.15;
  double cold_frac = 0.15;
  double cold_random_frac = 0.3;

  // Static code footprint.
  int num_blocks = 256;
  int block_len_min = 4;
  int block_len_max = 12;

  // Table 1 fault-rate targets (%), used to calibrate the path population.
  double fr_high_pct = 8.0;  ///< at VDD = 0.97 V
  double fr_low_pct = 2.0;   ///< at VDD = 1.04 V
  // Correction factors mapping configured path-population mass to the
  // *dynamic* fault rate actually measured on this workload's hot PCs
  // (dynamic visit weights over- or under-sample the fault bands).
  double fr_calib_high = 1.0;
  double fr_calib_low = 1.0;

  // Table 1 fault-free IPC (reference only; EXPERIMENTS.md compares).
  double paper_ipc = 1.0;

  u64 seed = 2013;
};

/// The 12 SPEC CPU2006 benchmarks of Table 1, parameters tuned so the
/// fault-free IPC ordering tracks the paper.
std::vector<BenchmarkProfile> spec2006_profiles();

/// Look up one profile by name; throws std::out_of_range when unknown.
BenchmarkProfile spec2006_profile(const std::string& name);

/// SPEC2000-integer-like input profile for the gate-level commonality study
/// (Figure 7).  `locality` is the probability an input bit repeats across
/// dynamic instances of one PC (vortex ~ highest).
struct Spec2000Profile {
  std::string name;
  double locality = 0.9;
  /// Fraction of value inputs that behave like loop counters (low bits
  /// increment across instances -- the AGEN array-walk behaviour of S1.2.2).
  double counter_frac = 0.5;
  /// Fraction of static PCs whose dynamic instances carry *identical*
  /// inputs (constant operands, repeated control patterns); these contribute
  /// commonality 1.0 and dominate the frequency-weighted average of S1.3.
  double fixed_frac = 0.5;
  u64 seed = 2000;
};

/// The six SPEC2000 integer benchmarks of Figure 7.
std::vector<Spec2000Profile> spec2000_profiles();

}  // namespace vasim::workload

#endif  // VASIM_WORKLOAD_PROFILES_HPP
