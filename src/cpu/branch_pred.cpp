#include "src/cpu/branch_pred.hpp"

namespace vasim::cpu {

BranchPredictor::BranchPredictor(const CoreConfig& cfg)
    : counters_(static_cast<std::size_t>(1) << cfg.gshare_bits, 1),
      btb_(static_cast<std::size_t>(cfg.btb_entries)),
      history_mask_((1ULL << cfg.gshare_bits) - 1) {}

std::size_t BranchPredictor::dir_index(Pc pc) const {
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & history_mask_);
}

BranchPrediction BranchPredictor::predict(Pc pc) const {
  ++lookups_;
  BranchPrediction p;
  p.taken = counters_[dir_index(pc)] >= 2;
  const BtbEntry& e = btb_[(pc >> 2) % btb_.size()];
  if (e.valid && e.pc == pc) {
    p.target_known = true;
    p.target = e.target;
  }
  return p;
}

void BranchPredictor::update(Pc pc, bool taken, Pc target) {
  u8& c = counters_[dir_index(pc)];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
  if (taken) btb_[(pc >> 2) % btb_.size()] = BtbEntry{pc, target, true};
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

void BranchPredictor::save_state(snap::Writer& w) const {
  w.put_u64(counters_.size());
  w.put_bytes(counters_.data(), counters_.size());
  w.put_u64(btb_.size());
  for (const BtbEntry& e : btb_) {
    w.put_u64(e.pc);
    w.put_u64(e.target);
    w.put_bool(e.valid);
  }
  w.put_u64(history_);
  w.put_u64(lookups_);
  w.put_u64(mispredicts_);
}

void BranchPredictor::restore_state(snap::Reader& r) {
  if (r.get_u64() != counters_.size()) throw snap::SnapshotError("gshare table size mismatch");
  r.get_bytes(counters_.data(), counters_.size());
  if (r.get_u64() != btb_.size()) throw snap::SnapshotError("btb size mismatch");
  for (BtbEntry& e : btb_) {
    e.pc = r.get_u64();
    e.target = r.get_u64();
    e.valid = r.get_bool();
  }
  history_ = r.get_u64();
  lookups_ = r.get_u64();
  mispredicts_ = r.get_u64();
}

}  // namespace vasim::cpu
