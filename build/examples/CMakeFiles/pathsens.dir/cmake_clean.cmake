file(REMOVE_RECURSE
  "CMakeFiles/pathsens.dir/pathsens.cpp.o"
  "CMakeFiles/pathsens.dir/pathsens.cpp.o.d"
  "pathsens"
  "pathsens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
