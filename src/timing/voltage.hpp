// Supply-voltage-dependent delay scaling (alpha-power law).
//
// The paper evaluates three operating points: 1.10 V (zero-fault baseline),
// 1.04 V (low fault rate) and 0.97 V (high fault rate).  Gate delay follows
// the alpha-power law  d(V) ~ V / (V - Vth)^alpha, so lowering VDD stretches
// every sensitized path and pushes near-critical paths past the cycle time.
#ifndef VASIM_TIMING_VOLTAGE_HPP
#define VASIM_TIMING_VOLTAGE_HPP

namespace vasim::timing {

/// The paper's three supply operating points.
struct SupplyPoints {
  static constexpr double kNominal = 1.10;   ///< zero-fault baseline
  static constexpr double kLowFault = 1.04;  ///< "low fault rate" environment
  static constexpr double kHighFault = 0.97; ///< "high fault rate" environment
};

/// Alpha-power-law delay model.
class VoltageModel {
 public:
  VoltageModel(double vth = 0.30, double alpha = 1.30, double vnom = SupplyPoints::kNominal);

  /// Absolute delay factor d(V) (arbitrary units).
  [[nodiscard]] double raw_delay(double vdd) const;

  /// Delay at `vdd` relative to delay at the nominal supply; 1.0 at Vnom,
  /// > 1.0 below it.
  [[nodiscard]] double delay_scale(double vdd) const;

  /// Dynamic energy scale ~ V^2 relative to nominal.
  [[nodiscard]] double dynamic_energy_scale(double vdd) const;

  /// Leakage power scale, first-order ~ V relative to nominal.
  [[nodiscard]] double leakage_power_scale(double vdd) const;

  [[nodiscard]] double vth() const { return vth_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double vnom() const { return vnom_; }

 private:
  double vth_;
  double alpha_;
  double vnom_;
  double raw_nominal_;
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_VOLTAGE_HPP
