// Serve daemon soak: a seed-deterministic randomized client mix hammering
// the full socket stack -- submit, poll, cancel, stats, and malformed frames
// interleaved from several threads -- for a configurable duration.
//
//   VASIM_SOAK_MS    mix duration per soak case (default 1500 ms: a smoke
//                    pass for the default CI job; nightly runs minutes)
//   VASIM_SOAK_SEED  base RNG seed (default 1; nightly rotates it)
//
// What must hold at the end, no matter the interleaving:
//   * no stuck jobs -- every submitted job reaches a terminal state,
//   * no queue-accounting drift -- submitted == done + cancelled + failed
//     and the queue is empty,
//   * per-cell checksums are consistent across the entire run (same grid
//     cell, same checksum, every client, cached or cold),
//   * malformed frames always get a named error reply,
//   * shutdown with jobs still in flight leaves nothing non-terminal.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/common/env.hpp"
#include "src/serve/json.hpp"
#include "src/serve/server.hpp"
#include "src/serve/socket.hpp"

namespace vasim {
namespace {

using Clock = std::chrono::steady_clock;

struct SharedLedger {
  std::mutex mu;
  std::map<std::string, std::string> checksums;  // cell key -> hex checksum
  std::vector<std::string> failures;
  std::size_t malformed_sent = 0;
  std::size_t malformed_named = 0;

  void fail(const std::string& why) {
    std::lock_guard<std::mutex> lock(mu);
    if (failures.size() < 32) failures.push_back(why);
  }
};

const char* const kBenches[] = {"bzip2", "gcc", "mcf"};
const char* const kSchemes[] = {"fault-free", "abs", "razor"};
const double kVdds[] = {0.97, 1.04};

const char* const kMalformed[] = {
    "garbage",
    "{\"op\":\"submit\"}",
    "{\"op\":\"submit\",\"cells\":[]}",
    "{\"op\":\"submit\",\"cells\":[{\"bench\":\"nope\"}]}",
    "{\"op\":\"poll\"}",
    "{\"op\":\"poll\",\"job\":99999999}",
    "{\"op\":\"nothing\"}",
    "{\"op\":\"stats\",\"extra\":1}",
    "[]",
    "{\"op\":\"submit\",\"cells\":[{\"bench\":\"bzip2\",\"surprise\":1}]}",
};

void soak_client(const serve::Endpoint& ep, u64 seed, std::size_t index, u64 duration_ms,
                 SharedLedger& ledger) {
  std::mt19937_64 rng(seed * 7919 + index);
  serve::Client client(ep);
  const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(duration_ms);
  struct Outstanding {
    u64 id;
    std::size_t seen;
  };
  std::vector<Outstanding> outstanding;

  const auto poll_once = [&](Outstanding& o) -> bool {
    const serve::JsonValue reply = serve::parse_json(
        client.request("{\"op\":\"poll\",\"job\":" + std::to_string(o.id) +
                       ",\"since\":" + std::to_string(o.seen) + "}"));
    const serve::JsonValue* ok = reply.find("ok");
    if (ok == nullptr || !ok->boolean) {
      ledger.fail("poll rejected for a known job");
      return true;
    }
    if (const serve::JsonValue* results = reply.find("results");
        results != nullptr && results->is_array()) {
      for (const serve::JsonValue& cell : results->array) {
        ++o.seen;
        const serve::JsonValue* cancelled = cell.find("cancelled");
        if (cancelled != nullptr && cancelled->boolean) continue;
        const std::string key = cell.find("benchmark")->str + "|" + cell.find("scheme")->str +
                                "|" + serve::json_double(cell.find("vdd")->number);
        const std::string sum = cell.find("checksum")->str;
        std::lock_guard<std::mutex> lock(ledger.mu);
        const auto [it, inserted] = ledger.checksums.emplace(key, sum);
        if (!inserted && it->second != sum) {
          ledger.failures.push_back("checksum drift for " + key);
        }
      }
    }
    const std::string state = reply.find("state")->str;
    return state == "done" || state == "cancelled" || state == "failed";
  };

  while (Clock::now() < deadline) {
    const u64 dice = rng() % 100;
    if (dice < 40) {
      // Submit a small random grid.
      const std::size_t cells = 1 + rng() % 3;
      std::string frame = "{\"op\":\"submit\",\"cells\":[";
      for (std::size_t c = 0; c < cells; ++c) {
        if (c != 0) frame += ",";
        frame += "{\"bench\":\"" + std::string(kBenches[rng() % 3]) + "\",\"scheme\":\"" +
                 kSchemes[rng() % 3] + "\",\"vdd\":" + serve::json_double(kVdds[rng() % 2]) +
                 "}";
      }
      frame += "]}";
      const serve::JsonValue reply = serve::parse_json(client.request(frame));
      const serve::JsonValue* ok = reply.find("ok");
      if (ok != nullptr && ok->boolean) {
        outstanding.push_back({reply.find("job")->as_u64(), 0});
      } else if (const serve::JsonValue* err = reply.find("error");
                 err == nullptr || err->str != "queue_full") {
        ledger.fail("well-formed submit rejected with " +
                    (err != nullptr ? err->str : std::string("<no name>")));
      }
    } else if (dice < 60 && !outstanding.empty()) {
      // Poll a random outstanding job.
      const std::size_t i = rng() % outstanding.size();
      if (poll_once(outstanding[i])) {
        outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(i));
      }
    } else if (dice < 70 && !outstanding.empty()) {
      // Cancel a random outstanding job (it still has to reach terminal).
      const std::size_t i = rng() % outstanding.size();
      const serve::JsonValue reply = serve::parse_json(client.request(
          "{\"op\":\"cancel\",\"job\":" + std::to_string(outstanding[i].id) + "}"));
      if (reply.find("ok") == nullptr || !reply.find("ok")->boolean) {
        ledger.fail("cancel rejected for a known job");
      }
    } else if (dice < 80) {
      // Fire a malformed frame; the reply must be a named error, never an
      // accept, and the connection must survive.
      const std::string reply_text = client.request(kMalformed[rng() % 10]);
      const serve::JsonValue reply = serve::parse_json(reply_text);
      std::lock_guard<std::mutex> lock(ledger.mu);
      ++ledger.malformed_sent;
      const serve::JsonValue* ok = reply.find("ok");
      const serve::JsonValue* err = reply.find("error");
      if (ok != nullptr && !ok->boolean && err != nullptr && err->is_string() &&
          !err->str.empty()) {
        ++ledger.malformed_named;
      }
    } else if (dice < 85) {
      const serve::JsonValue reply = serve::parse_json(client.request("{\"op\":\"stats\"}"));
      if (reply.find("ok") == nullptr || !reply.find("ok")->boolean) {
        ledger.fail("stats rejected");
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Drain everything this client still has in flight: "no stuck jobs".
  const Clock::time_point drain_deadline = Clock::now() + std::chrono::minutes(3);
  while (!outstanding.empty()) {
    if (Clock::now() > drain_deadline) {
      ledger.fail(std::to_string(outstanding.size()) + " jobs stuck after drain window");
      return;
    }
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      it = poll_once(*it) ? outstanding.erase(it) : it + 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(ServeSoak, RandomizedClientMixLeavesNoDriftNoStuckJobs) {
  const u64 duration_ms = env_u64("VASIM_SOAK_MS", 1500);
  const u64 seed = env_u64("VASIM_SOAK_SEED", 1);

  serve::ServeConfig sc;
  sc.workers = 3;
  sc.queue_limit = 4;       // small on purpose: backpressure fires constantly
  sc.cache_capacity = 4;    // smaller than the 18-cell grid: eviction churn
  sc.runner.instructions = 2'000;
  sc.runner.warmup = 1'000;
  serve::Server server(sc);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("vasim_soak_" + std::to_string(seed) + ".sock"))
          .string();
  const serve::Endpoint ep = serve::parse_endpoint("unix:" + path);
  serve::SocketServer transport(server, ep);
  transport.start();

  SharedLedger ledger;
  std::vector<std::thread> clients;
  constexpr std::size_t kClients = 4;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&ep, seed, i, duration_ms, &ledger] { soak_client(ep, seed, i, duration_ms, ledger); });
  }
  for (std::thread& t : clients) t.join();

  for (const std::string& f : ledger.failures) ADD_FAILURE() << f;
  EXPECT_GT(ledger.malformed_sent, 0u);
  EXPECT_EQ(ledger.malformed_named, ledger.malformed_sent)
      << "a malformed frame was accepted or answered without a named error";

  // Queue accounting must balance exactly: everything submitted is terminal
  // and nothing is left queued or running.
  StatSet stats = server.stats();
  const u64 submitted = stats.count("serve.jobs.submitted");
  const u64 terminal = stats.count("serve.jobs.completed") +
                       stats.count("serve.jobs.cancelled") + stats.count("serve.jobs.failed");
  EXPECT_GT(submitted, 0u);
  EXPECT_EQ(submitted, terminal) << "queue accounting drift";
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(stats.count("serve.jobs.failed"), 0u);
  // The overlapping mix over a 4-entry cache must share at least once.
  EXPECT_GT(server.cache_stats().hits, 0u);

  transport.stop();
  server.shutdown();
}

TEST(ServeSoak, ShutdownWithJobsInFlightIsCleanUnderLoad) {
  // Repeatedly bring a server up, flood it, and tear it down mid-flight;
  // every pass must leave all jobs terminal with full per-cell accounting.
  const u64 seed = env_u64("VASIM_SOAK_SEED", 1);
  const u64 passes = std::max<u64>(2, env_u64("VASIM_SOAK_MS", 1500) / 750);
  std::mt19937_64 rng(seed * 31 + 7);
  for (u64 pass = 0; pass < passes; ++pass) {
    serve::ServeConfig sc;
    sc.workers = 2;
    sc.queue_limit = 16;
    sc.cache_capacity = 4;
    sc.runner.instructions = 2'000;
    sc.runner.warmup = 1'000;
    serve::Server server(sc);
    std::vector<u64> ids;
    for (int j = 0; j < 10; ++j) {
      serve::JobSpec spec;
      const std::size_t cells = 1 + rng() % 3;
      for (std::size_t c = 0; c < cells; ++c) {
        spec.cells.push_back({kBenches[rng() % 3], kSchemes[rng() % 3], kVdds[rng() % 2]});
      }
      ids.push_back(server.submit(spec));
    }
    // Let a random amount of work land before pulling the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(rng() % 40));
    server.shutdown();
    for (const u64 id : ids) {
      const serve::JobStatus st = server.status(id);
      EXPECT_TRUE(st.state == serve::JobState::kDone ||
                  st.state == serve::JobState::kCancelled ||
                  st.state == serve::JobState::kFailed)
          << "pass " << pass << ": job " << id << " stuck in " << serve::to_string(st.state);
      EXPECT_EQ(st.done, st.cells) << "pass " << pass << ": cell accounting hole in job " << id;
    }
  }
}

}  // namespace
}  // namespace vasim
