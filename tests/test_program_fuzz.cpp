// Program-level fuzzing: random (but guaranteed-terminating) mini-ISA
// programs are executed architecturally and then replayed through the
// timing pipeline under randomly chosen schemes with fault injection.  The
// pipeline must commit exactly the architectural dynamic instruction count
// -- the strongest end-to-end statement that fault handling never loses,
// duplicates or deadlocks work.
#include <gtest/gtest.h>

#include <sstream>

#include "src/check/semantics.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/core/runner.hpp"
#include "src/timing/fault_model.hpp"
#include "tests/fuzz_util.hpp"

namespace vasim::cpu {
namespace {

/// Emits a random program: a chain of counted loops whose bodies mix ALU,
/// memory and occasional mul/div work.  Always terminates.
std::string random_program(Pcg32& rng) {
  std::ostringstream os;
  os << "lui r10, 0x10\n";  // memory base
  const int loops = 1 + static_cast<int>(rng.next_below(4));
  for (int l = 0; l < loops; ++l) {
    const int trip = 3 + static_cast<int>(rng.next_below(30));
    os << "addi r1, r0, 0\n";
    os << "addi r2, r0, " << trip << "\n";
    os << "L" << l << ":\n";
    const int body = 1 + static_cast<int>(rng.next_below(8));
    for (int b = 0; b < body; ++b) {
      const int dst = 3 + static_cast<int>(rng.next_below(6));
      const int src = 1 + static_cast<int>(rng.next_below(8));
      switch (rng.next_below(6)) {
        case 0: os << "add r" << dst << ", r" << src << ", r1\n"; break;
        case 1: os << "addi r" << dst << ", r" << src << ", " << rng.next_below(100) << "\n"; break;
        case 2: os << "ld r" << dst << ", " << 8 * rng.next_below(16) << "(r10)\n"; break;
        case 3: os << "st r" << src << ", " << 8 * rng.next_below(16) << "(r10)\n"; break;
        case 4: os << "mul r" << dst << ", r" << src << ", r2\n"; break;
        default: os << "xor r" << dst << ", r" << src << ", r2\n"; break;
      }
    }
    os << "addi r1, r1, 1\n";
    os << "blt r1, r2, L" << l << "\n";
  }
  os << "halt\n";
  return os.str();
}

class ProgramFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ProgramFuzz, PipelineCommitsExactlyTheArchitecturalStream) {
  Pcg32 rng(GetParam(), 0x9f09ULL);
  const isa::Program prog = isa::assemble(random_program(rng));

  // Architectural reference.
  isa::FunctionalCore ref(&prog);
  isa::DynInst d;
  u64 dynamic_count = 0;
  while (ref.next(d)) ++dynamic_count;
  ASSERT_GT(dynamic_count, 10u);

  // Random scheme under fault injection at 0.97 V.
  const auto schemes = core::comparative_schemes();
  SchemeConfig scheme = schemes[rng.next_below(static_cast<u32>(schemes.size()))];
  if (rng.next_bool(0.4)) scheme.recovery = RecoveryModel::kSquashRefetch;
  timing::PathModelConfig pcfg{GetParam(), 0.10, 0.03};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());

  isa::FunctionalCore src(&prog);
  CoreConfig cfg;
  cfg.model_wrong_path = rng.next_bool(0.4);
  Pipeline pipe(cfg, scheme, &src, &fm, scheme.use_predictor ? &tep : nullptr);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(pipe);
  const PipelineResult r = pipe.run(10 * dynamic_count);

  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks(), 0u);
  EXPECT_EQ(r.committed, dynamic_count) << "scheme " << scheme.name;
  EXPECT_GE(r.cycles, dynamic_count / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::ValuesIn(vasim::fuzzutil::seeds("program", 101, 15)));

}  // namespace
}  // namespace vasim::cpu
