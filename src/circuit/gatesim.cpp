#include "src/circuit/gatesim.hpp"

#include <stdexcept>

namespace vasim::circuit {

GateSim::GateSim(const Netlist* netlist) : netlist_(netlist) {
  const auto n = static_cast<std::size_t>(netlist_->num_signals());
  values_.assign(n, 0);
  prev_values_.assign(n, 0);
  toggled_.assign(n, 0);
}

const std::vector<u8>& GateSim::evaluate(std::span<const u8> inputs) {
  if (static_cast<int>(inputs.size()) != netlist_->num_inputs()) {
    throw std::invalid_argument("GateSim: input width mismatch");
  }
  if (has_prev_) prev_values_ = values_;
  const auto& gates = netlist_->gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    u8 v = 0;
    switch (g.kind) {
      case GateKind::kInput: v = inputs[i]; break;
      case GateKind::kConst0: v = 0; break;
      case GateKind::kConst1: v = 1; break;
      case GateKind::kBuf: v = values_[static_cast<std::size_t>(g.in[0])]; break;
      case GateKind::kInv: v = values_[static_cast<std::size_t>(g.in[0])] ^ 1u; break;
      case GateKind::kAnd2:
        v = values_[static_cast<std::size_t>(g.in[0])] & values_[static_cast<std::size_t>(g.in[1])];
        break;
      case GateKind::kOr2:
        v = values_[static_cast<std::size_t>(g.in[0])] | values_[static_cast<std::size_t>(g.in[1])];
        break;
      case GateKind::kNand2:
        v = (values_[static_cast<std::size_t>(g.in[0])] & values_[static_cast<std::size_t>(g.in[1])]) ^ 1u;
        break;
      case GateKind::kNor2:
        v = (values_[static_cast<std::size_t>(g.in[0])] | values_[static_cast<std::size_t>(g.in[1])]) ^ 1u;
        break;
      case GateKind::kXor2:
        v = values_[static_cast<std::size_t>(g.in[0])] ^ values_[static_cast<std::size_t>(g.in[1])];
        break;
      case GateKind::kXnor2:
        v = (values_[static_cast<std::size_t>(g.in[0])] ^ values_[static_cast<std::size_t>(g.in[1])]) ^ 1u;
        break;
      case GateKind::kMux2:
        v = values_[static_cast<std::size_t>(g.in[2])] != 0
                ? values_[static_cast<std::size_t>(g.in[1])]
                : values_[static_cast<std::size_t>(g.in[0])];
        break;
      case GateKind::kDff:
        throw std::logic_error("GateSim: kDff is accounting-only, not simulatable");
    }
    values_[i] = v;
  }
  if (has_prev_) {
    for (std::size_t i = 0; i < values_.size(); ++i) toggled_[i] = values_[i] != prev_values_[i];
  }
  has_prev_ = true;
  return values_;
}

u64 GateSim::read_bus(const Bus& bus) const {
  u64 v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (value(bus[i])) v |= (1ULL << i);
  }
  return v;
}

void GateSim::pack_bits(u64 value, int width, std::vector<u8>& out) {
  for (int i = 0; i < width; ++i) out.push_back(static_cast<u8>((value >> i) & 1u));
}

CommonalityResult measure_commonality(
    const Component& component,
    std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances) {
  CommonalityResult r;
  if (instances.empty()) {
    r.ratio = 1.0;
    return r;
  }
  const auto n = static_cast<std::size_t>(component.netlist.num_signals());
  std::vector<u8> phi(n, 1);  // toggled in every instance so far
  std::vector<u8> psi(n, 0);  // toggled in any instance so far
  GateSim sim(&component.netlist);
  for (const auto& [pre, cur] : instances) {
    sim.evaluate(pre);
    sim.evaluate(cur);
    const auto& t = sim.toggled();
    for (std::size_t i = 0; i < n; ++i) {
      phi[i] = static_cast<u8>(phi[i] & t[i]);
      psi[i] = static_cast<u8>(psi[i] | t[i]);
    }
  }
  // Only count real logic gates (primary inputs toggle by construction).
  const auto& gates = component.netlist.gates();
  for (std::size_t i = 0; i < n; ++i) {
    if (gates[i].kind == GateKind::kInput || gates[i].kind == GateKind::kConst0 ||
        gates[i].kind == GateKind::kConst1) {
      continue;
    }
    r.phi += phi[i];
    r.psi += psi[i];
  }
  r.ratio = r.psi == 0 ? 1.0 : static_cast<double>(r.phi) / static_cast<double>(r.psi);
  return r;
}

}  // namespace vasim::circuit
