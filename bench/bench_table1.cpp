// Reproduces Table 1: per-benchmark fault-free IPC, OoO-engine fault rates
// at VDD = 0.97 V and 1.04 V, and the (performance %, ED %) overhead tuples
// of the Razor and Error Padding baselines.
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  const core::RunnerConfig rc = bench::runner_config_from_env();
  const core::SweepRunner sweeper(rc);
  bench::print_run_header("Table 1: Benchmark Fault Rates and Razor/EP overheads", rc,
                          sweeper.workers());

  // Per profile: fault-free @ nominal, then (fault-free, razor, ep) at the
  // high- and low-fault supplies -- 7 jobs, fanned out as one grid.
  const auto profiles = workload::spec2006_profiles();
  std::vector<core::SweepJob> jobs;
  jobs.reserve(profiles.size() * 7);
  for (const auto& prof : profiles) {
    jobs.push_back({prof, std::nullopt, timing::SupplyPoints::kNominal, std::nullopt});
    for (const double vdd : {timing::SupplyPoints::kHighFault, timing::SupplyPoints::kLowFault}) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      jobs.push_back({prof, cpu::scheme_razor(), vdd, std::nullopt});
      jobs.push_back({prof, cpu::scheme_error_padding(), vdd, std::nullopt});
    }
  }
  const core::SweepReport report = sweeper.run(jobs);

  TextTable t({"benchmark", "FF-IPC", "(paper)", "FR%@0.97", "Razor(perf,ED)%", "EP(perf,ED)%",
               "FR%@1.04", "Razor(perf,ED)%", "EP(perf,ED)%"});

  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::size_t at = p * 7;
    const core::RunResult& ff = report.jobs[at].result;
    std::vector<std::string> row = {profiles[p].name, TextTable::fmt(ff.ipc, 2),
                                    "(" + TextTable::fmt(profiles[p].paper_ipc, 2) + ")"};
    for (int v = 0; v < 2; ++v) {
      const core::RunResult& base = report.jobs[at + 1 + 3 * static_cast<std::size_t>(v)].result;
      const core::RunResult& razor = report.jobs[at + 2 + 3 * static_cast<std::size_t>(v)].result;
      const core::RunResult& ep = report.jobs[at + 3 + 3 * static_cast<std::size_t>(v)].result;
      const core::Overheads orz = core::overhead_vs(base, razor);
      const core::Overheads oep = core::overhead_vs(base, ep);
      row.push_back(TextTable::fmt(razor.fault_rate_pct, 2));
      row.push_back("(" + TextTable::fmt(orz.perf_pct, 1) + "," + TextTable::fmt(orz.ed_pct, 1) +
                    ")");
      row.push_back("(" + TextTable::fmt(oep.perf_pct, 2) + "," + TextTable::fmt(oep.ed_pct, 2) +
                    ")");
    }
    t.add_row(row);
  }
  std::cout << t.render() << "\n";
  std::cout << "Paper reference (Table 1): FR 5.6-10.5% @0.97V and 1.4-2.3% @1.04V;\n"
               "Razor overhead 25-59% @0.97V, 7-25% @1.04V; EP overhead 2-15% @0.97V,\n"
               "0.5-3.8% @1.04V.  Expected shape: Razor >> EP at both supplies.\n";
  bench::emit_json("table1", report);
  return 0;
}
