# Empty compiler generated dependencies file for asm_pipeline.
# This may be replaced when dependencies are built.
