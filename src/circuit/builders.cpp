#include "src/circuit/builders.hpp"

#include <algorithm>
#include <stdexcept>

namespace vasim::circuit {
namespace {

/// Kogge-Stone carry computation.  Returns per-bit carry-in signals given
/// propagate/generate vectors and an explicit carry-in.
std::vector<SigId> kogge_stone_carries(Netlist& n, const Bus& p, const Bus& g, SigId cin) {
  const int w = static_cast<int>(p.size());
  // (G, P) prefix pairs; level 0 = per-bit (g, p).
  std::vector<SigId> gk(g.begin(), g.end());
  std::vector<SigId> pk(p.begin(), p.end());
  for (int dist = 1; dist < w; dist *= 2) {
    std::vector<SigId> gn = gk;
    std::vector<SigId> pn = pk;
    for (int i = dist; i < w; ++i) {
      // (G,P) = (G_i | P_i & G_{i-dist}, P_i & P_{i-dist})
      gn[static_cast<std::size_t>(i)] =
          n.or2(gk[static_cast<std::size_t>(i)],
                n.and2(pk[static_cast<std::size_t>(i)], gk[static_cast<std::size_t>(i - dist)]));
      pn[static_cast<std::size_t>(i)] =
          n.and2(pk[static_cast<std::size_t>(i)], pk[static_cast<std::size_t>(i - dist)]);
    }
    gk = std::move(gn);
    pk = std::move(pn);
  }
  // carry into bit i = G[0..i-1] | P[0..i-1] & cin ; carry into bit 0 = cin.
  std::vector<SigId> carries(static_cast<std::size_t>(w) + 1);
  carries[0] = cin;
  for (int i = 0; i < w; ++i) {
    carries[static_cast<std::size_t>(i) + 1] =
        n.or2(gk[static_cast<std::size_t>(i)], n.and2(pk[static_cast<std::size_t>(i)], cin));
  }
  return carries;
}

/// Fixed-distance logical shift of `v` (towards MSB when left), filling with 0.
Bus shifted_wires(Netlist& n, const Bus& v, int dist, bool left) {
  const int w = static_cast<int>(v.size());
  Bus out(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    const int src = left ? i - dist : i + dist;
    out[static_cast<std::size_t>(i)] =
        (src >= 0 && src < w) ? v[static_cast<std::size_t>(src)] : n.const0();
  }
  return out;
}

/// Barrel shifter over log2 stages controlled by `shamt`.
Bus barrel_shift(Netlist& n, const Bus& v, const Bus& shamt, bool left) {
  Bus cur = v;
  for (std::size_t k = 0; k < shamt.size(); ++k) {
    const Bus moved = shifted_wires(n, cur, 1 << k, left);
    cur = n.bus_mux(cur, moved, shamt[k]);
  }
  return cur;
}

/// One-hot priority grant over `req`: grants the lowest-index requester.
Bus priority_grant(Netlist& n, const Bus& req) {
  Bus grant(req.size());
  SigId before = kNoSig;  // OR of all earlier requests
  for (std::size_t i = 0; i < req.size(); ++i) {
    if (i == 0) {
      grant[i] = n.buf(req[i]);
      before = req[i];
    } else {
      grant[i] = n.and2(req[i], n.inv(before));
      before = n.or2(before, req[i]);
    }
  }
  return grant;
}

}  // namespace

Component build_simple_alu(int width) {
  if (width < 2) throw std::invalid_argument("build_simple_alu: width >= 2");
  Component c;
  c.name = "SimpleALU";
  Netlist& n = c.netlist;
  const Bus a = n.add_input_bus(width);
  const Bus b = n.add_input_bus(width);
  const Bus op = n.add_input_bus(3);
  c.inputs = a;
  c.inputs.insert(c.inputs.end(), b.begin(), b.end());
  c.inputs.insert(c.inputs.end(), op.begin(), op.end());

  // Subtract (and SLT) invert b and set carry-in.
  const SigId sub = n.and2(op[0], n.xnor2(op[2], op[1]));
  Bus b_eff(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) b_eff[i] = n.xor2(b[i], sub);

  // Adder (Kogge-Stone).
  const Bus p = n.bus_xor(a, b_eff);
  const Bus g = n.bus_and(a, b_eff);
  const std::vector<SigId> carries = kogge_stone_carries(n, p, g, sub);
  Bus sum(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) sum[i] = n.xor2(p[i], carries[i]);

  // Logic unit.
  const Bus r_and = n.bus_and(a, b);
  const Bus r_or = n.bus_or(a, b);
  const Bus r_xor = n.bus_xor(a, b);

  // Shifters (shift amount = low log2(width) bits of b).
  int sh_bits = 0;
  while ((1 << sh_bits) < width) ++sh_bits;
  const Bus shamt(b.begin(), b.begin() + sh_bits);
  const Bus r_shl = barrel_shift(n, a, shamt, /*left=*/true);
  const Bus r_shr = barrel_shift(n, a, shamt, /*left=*/false);

  // Signed set-less-than from the subtraction result.
  const SigId a_msb = a.back();
  const SigId b_msb = b.back();
  const SigId diff_msb = sum.back();
  const SigId sign_differs = n.xor2(a_msb, b_msb);
  // a<b  =  (a<0 & b>=0)  |  (signs equal & diff<0)
  const SigId lt = n.or2(n.and2(a_msb, n.inv(b_msb)), n.and2(n.inv(sign_differs), diff_msb));
  Bus r_slt(static_cast<std::size_t>(width));
  r_slt[0] = n.buf(lt);
  for (int i = 1; i < width; ++i) r_slt[static_cast<std::size_t>(i)] = n.const0();

  // Result mux tree keyed on op (see AluOp encoding).
  const Bus r01 = sum;                            // add / sub
  const Bus r23 = n.bus_mux(r_and, r_or, op[0]);  // and / or
  const Bus r45 = n.bus_mux(r_xor, r_shl, op[0]); // xor / shl
  const Bus r67 = n.bus_mux(r_shr, r_slt, op[0]); // shr / slt
  const Bus lo = n.bus_mux(r01, r23, op[1]);
  const Bus hi = n.bus_mux(r45, r67, op[1]);
  const Bus result = n.bus_mux(lo, hi, op[2]);

  // Zero flag.
  const SigId zero = n.inv(n.reduce_or(result));

  for (const SigId s : result) n.mark_output(s);
  n.mark_output(zero);
  c.outputs = result;
  c.outputs.push_back(zero);
  return c;
}

Component build_issue_select(int entries, int grants) {
  if (entries < 1 || grants < 1) throw std::invalid_argument("build_issue_select: bad shape");
  Component c;
  c.name = "IssueQSelect";
  Netlist& n = c.netlist;
  const Bus req = n.add_input_bus(entries);
  c.inputs = req;

  Bus grant_acc;
  if (grants == 1 || entries == 1) {
    grant_acc = priority_grant(n, req);
  } else {
    // Banked select: two halves, each granting up to grants/2 requesters via
    // chained priority arbiters (the low-gate-count structure real select
    // trees use; a half can starve only when the other half is saturated).
    const int half = entries / 2;
    const int per_half = grants / 2;
    grant_acc.assign(static_cast<std::size_t>(entries), kNoSig);
    for (int h = 0; h < 2; ++h) {
      const auto begin = req.begin() + (h == 0 ? 0 : half);
      const auto end = h == 0 ? req.begin() + half : req.end();
      Bus live(begin, end);
      Bus granted(live.size(), kNoSig);
      for (std::size_t i = 0; i < live.size(); ++i) granted[i] = n.const0();
      for (int round = 0; round < per_half; ++round) {
        const Bus g = priority_grant(n, live);
        for (std::size_t i = 0; i < live.size(); ++i) {
          granted[i] = n.or2(granted[i], g[i]);
          live[i] = n.and2(live[i], n.inv(g[i]));
        }
      }
      for (std::size_t i = 0; i < granted.size(); ++i) {
        grant_acc[static_cast<std::size_t>(h == 0 ? 0 : half) + i] = granted[i];
      }
    }
  }
  for (const SigId s : grant_acc) n.mark_output(s);
  c.outputs = grant_acc;
  return c;
}

Component build_agen(int width, int off_bits) {
  if (width < 8 || off_bits < 1 || off_bits > width) {
    throw std::invalid_argument("build_agen: bad shape");
  }
  Component c;
  c.name = "AGEN";
  Netlist& n = c.netlist;
  const Bus base = n.add_input_bus(width);
  const Bus offset = n.add_input_bus(off_bits);
  const Bus size = n.add_input_bus(2);
  c.inputs = base;
  c.inputs.insert(c.inputs.end(), offset.begin(), offset.end());
  c.inputs.insert(c.inputs.end(), size.begin(), size.end());

  // Sign-extend the offset.
  Bus off_ext = offset;
  const SigId sign = offset.back();
  for (int i = off_bits; i < width; ++i) off_ext.push_back(n.buf(sign));

  // Carry-select adder in 8-bit blocks: block 0 ripples from cin=0, later
  // blocks compute both carry assumptions and mux on the resolved carry.
  constexpr int kBlock = 8;
  Bus addr;
  SigId carry = n.const0();
  for (int lo = 0; lo < width; lo += kBlock) {
    const int hi = std::min(lo + kBlock, width);
    const Bus ab(base.begin() + lo, base.begin() + hi);
    const Bus bb(off_ext.begin() + lo, off_ext.begin() + hi);
    if (lo == 0) {
      SigId cout = kNoSig;
      const Bus s = n.ripple_add(ab, bb, carry, &cout);
      addr.insert(addr.end(), s.begin(), s.end());
      carry = cout;
    } else {
      SigId cout0 = kNoSig;
      SigId cout1 = kNoSig;
      const Bus s0 = n.ripple_add(ab, bb, n.const0(), &cout0);
      const Bus s1 = n.ripple_add(ab, bb, n.const1(), &cout1);
      const Bus s = n.bus_mux(s0, s1, carry);
      addr.insert(addr.end(), s.begin(), s.end());
      carry = n.mux2(cout0, cout1, carry);
    }
  }

  // Misalignment detect: size 01 = half, 10 = word, 11 = double.
  const SigId a0 = addr[0];
  const SigId a01 = n.or2(addr[0], addr[1]);
  const SigId a012 = n.or2(a01, addr[2]);
  const SigId sz_half = n.and2(n.inv(size[1]), size[0]);
  const SigId sz_word = n.and2(size[1], n.inv(size[0]));
  const SigId sz_dbl = n.and2(size[1], size[0]);
  const SigId mis =
      n.or2(n.or2(n.and2(sz_half, a0), n.and2(sz_word, a01)), n.and2(sz_dbl, a012));

  for (const SigId s : addr) n.mark_output(s);
  n.mark_output(mis);
  c.outputs = addr;
  c.outputs.push_back(mis);
  return c;
}

Component build_forward_check(int producers, int consumers, int tag_bits) {
  if (producers < 1 || consumers < 1 || tag_bits < 1) {
    throw std::invalid_argument("build_forward_check: bad shape");
  }
  Component c;
  c.name = "ForwardCheck";
  Netlist& n = c.netlist;
  std::vector<Bus> prod_tag;
  prod_tag.reserve(static_cast<std::size_t>(producers));
  for (int i = 0; i < producers; ++i) prod_tag.push_back(n.add_input_bus(tag_bits));
  const Bus prod_valid = n.add_input_bus(producers);
  std::vector<std::vector<Bus>> src_tag(static_cast<std::size_t>(consumers));
  for (int i = 0; i < consumers; ++i) {
    for (int s = 0; s < 2; ++s) src_tag[static_cast<std::size_t>(i)].push_back(n.add_input_bus(tag_bits));
  }
  const Bus src_valid = n.add_input_bus(consumers * 2);
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  Bus fwd;
  Bus any;
  for (int i = 0; i < consumers; ++i) {
    for (int s = 0; s < 2; ++s) {
      const Bus& tag = src_tag[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      const SigId sv = src_valid[static_cast<std::size_t>(i * 2 + s)];
      Bus matches;
      for (int p = 0; p < producers; ++p) {
        const SigId eq = n.equals(tag, prod_tag[static_cast<std::size_t>(p)]);
        const SigId en = n.and2(n.and2(eq, prod_valid[static_cast<std::size_t>(p)]), sv);
        fwd.push_back(en);
        matches.push_back(en);
      }
      any.push_back(n.reduce_or(matches));
    }
  }
  for (const SigId s : fwd) n.mark_output(s);
  for (const SigId s : any) n.mark_output(s);
  c.outputs = fwd;
  c.outputs.insert(c.outputs.end(), any.begin(), any.end());
  return c;
}

Component build_array_multiplier(int width) {
  if (width < 2 || width > 16) throw std::invalid_argument("build_array_multiplier: width 2..16");
  Component c;
  c.name = "ArrayMultiplier";
  Netlist& n = c.netlist;
  const Bus a = n.add_input_bus(width);
  const Bus b = n.add_input_bus(width);
  c.inputs = a;
  c.inputs.insert(c.inputs.end(), b.begin(), b.end());

  // Accumulate shifted partial-product rows: acc += (a & b[i]) << i.
  Bus acc(static_cast<std::size_t>(2 * width));
  for (auto& s : acc) s = n.const0();
  for (int i = 0; i < width; ++i) {
    Bus row(static_cast<std::size_t>(2 * width));
    for (int j = 0; j < 2 * width; ++j) {
      const int src = j - i;
      row[static_cast<std::size_t>(j)] =
          (src >= 0 && src < width) ? n.and2(a[static_cast<std::size_t>(src)],
                                             b[static_cast<std::size_t>(i)])
                                    : n.const0();
    }
    acc = n.ripple_add(acc, row, n.const0());
  }
  for (const SigId s : acc) n.mark_output(s);
  c.outputs = acc;
  return c;
}

Component build_lsq_cam(int entries, int tag_bits) {
  if (entries < 1 || tag_bits < 1) throw std::invalid_argument("build_lsq_cam: bad shape");
  Component c;
  c.name = "LsqCam";
  Netlist& n = c.netlist;
  const Bus search = n.add_input_bus(tag_bits);
  std::vector<Bus> tags;
  for (int e = 0; e < entries; ++e) tags.push_back(n.add_input_bus(tag_bits));
  const Bus valid = n.add_input_bus(entries);
  const Bus older = n.add_input_bus(entries);
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  Bus matches;
  for (int e = 0; e < entries; ++e) {
    const std::size_t i = static_cast<std::size_t>(e);
    const SigId eq = n.equals(tags[i], search);
    const SigId m = n.and2(n.and2(eq, valid[i]), older[i]);
    matches.push_back(m);
  }
  const SigId any = n.reduce_or(matches);
  for (const SigId s : matches) n.mark_output(s);
  n.mark_output(any);
  c.outputs = matches;
  c.outputs.push_back(any);
  // Stored state: tag + valid bit per entry.
  c.flop_count = entries * (tag_bits + 1);
  return c;
}

}  // namespace vasim::circuit
