# Empty compiler generated dependencies file for test_circuit_analysis.
# This may be replaced when dependencies are built.
