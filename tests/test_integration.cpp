// Cross-module integration tests: full experiment slices exercising the
// trace generators, fault model, TEP, pipeline and energy model together.
#include <gtest/gtest.h>

#include "src/core/runner.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::core {
namespace {

RunnerConfig small_runner() {
  RunnerConfig rc;
  rc.instructions = 15000;
  rc.warmup = 10000;
  return rc;
}

TEST(Integration, SchemeOrderingHoldsAtHighFaultRate) {
  const ExperimentRunner runner(small_runner());
  const auto prof = workload::spec2006_profile("bzip2");
  const RunResult ff = runner.run_fault_free(prof, 0.97);
  const RunResult razor = runner.run(prof, cpu::scheme_razor(), 0.97);
  const RunResult ep = runner.run(prof, cpu::scheme_error_padding(), 0.97);
  const RunResult abs = runner.run(prof, cpu::scheme_abs(), 0.97);

  const double o_razor = overhead_vs(ff, razor).perf_pct;
  const double o_ep = overhead_vs(ff, ep).perf_pct;
  const double o_abs = overhead_vs(ff, abs).perf_pct;

  EXPECT_GT(o_razor, o_ep) << "replay-everything must cost more than padding";
  EXPECT_GT(o_ep, o_abs) << "padding must cost more than violation-aware scheduling";
  EXPECT_GT(o_razor, 5.0);
  EXPECT_LT(o_abs, o_ep);
}

TEST(Integration, EdOverheadTracksPerfOverhead) {
  const ExperimentRunner runner(small_runner());
  const auto prof = workload::spec2006_profile("gobmk");
  const RunResult ff = runner.run_fault_free(prof, 0.97);
  const RunResult ep = runner.run(prof, cpu::scheme_error_padding(), 0.97);
  const Overheads o = overhead_vs(ff, ep);
  // Table 1 rows show ED% >= perf% (energy also rises with fault handling).
  EXPECT_GT(o.ed_pct, 0.0);
  EXPECT_GE(o.ed_pct, o.perf_pct * 0.8);
}

TEST(Integration, FaultRatesScaleWithSupply) {
  const ExperimentRunner runner(small_runner());
  const auto prof = workload::spec2006_profile("xalancbmk");
  const RunResult low = runner.run(prof, cpu::scheme_razor(), 1.04);
  const RunResult high = runner.run(prof, cpu::scheme_razor(), 0.97);
  EXPECT_GT(low.fault_rate_pct, 0.3);
  EXPECT_GT(high.fault_rate_pct, low.fault_rate_pct * 2.0)
      << "0.97 V must fault much more than 1.04 V (Table 1)";
}

TEST(Integration, TepReachesHighCoverageQuickly) {
  const ExperimentRunner runner(small_runner());
  const auto prof = workload::spec2006_profile("libquantum");
  const RunResult abs = runner.run(prof, cpu::scheme_abs(), 0.97);
  // After warmup, nearly all recurring faults should be predicted+handled.
  EXPECT_GT(abs.predictor_accuracy, 0.85);
}

TEST(Integration, RazorNeverUsesPredictor) {
  const ExperimentRunner runner(small_runner());
  const auto prof = workload::spec2006_profile("astar");
  const RunResult razor = runner.run(prof, cpu::scheme_razor(), 0.97);
  EXPECT_EQ(razor.stats.count("fault.predicted"), 0u);
  EXPECT_EQ(razor.stats.count("fault.handled"), 0u);
}

TEST(Integration, AllBenchmarksCompleteUnderAbs) {
  RunnerConfig rc;
  rc.instructions = 4000;
  rc.warmup = 3000;
  const ExperimentRunner runner(rc);
  for (const auto& prof : workload::spec2006_profiles()) {
    const RunResult r = runner.run(prof, cpu::scheme_abs(), 0.97);
    EXPECT_EQ(r.committed, rc.instructions) << prof.name;
    EXPECT_GT(r.ipc, 0.02) << prof.name;
  }
}

TEST(Integration, FaultFreeIpcOrderingSpotChecks) {
  RunnerConfig rc;
  rc.instructions = 30000;
  rc.warmup = 30000;
  const ExperimentRunner runner(rc);
  const double mcf = runner.run_fault_free(workload::spec2006_profile("mcf"), 1.1).ipc;
  const double astar = runner.run_fault_free(workload::spec2006_profile("astar"), 1.1).ipc;
  const double sjeng = runner.run_fault_free(workload::spec2006_profile("sjeng"), 1.1).ipc;
  EXPECT_LT(mcf, astar);
  EXPECT_LT(astar, sjeng);
  EXPECT_LT(mcf, 0.7);
  EXPECT_GT(sjeng, 1.3);
}

}  // namespace
}  // namespace vasim::core
