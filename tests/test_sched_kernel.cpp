// Unit tests for the data-oriented scheduler kernel (sched_kernel.hpp):
// arena/ring bounds, event-wheel schedule/pop/squash semantics, the
// issue window's bitmask select order across slot wraparound, the ABS
// 6-bit timestamp wrap, and the zero-steady-state-allocation guarantee of
// the whole pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/check/semantics.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/cpu/sched_kernel.hpp"
#include "src/isa/program.hpp"
#include "src/obs/cpi.hpp"

// ---- global allocation counter ---------------------------------------------
// Counts every heap allocation in this binary; the steady-state test asserts
// the pipeline's cycle loop performs none.

namespace {
std::atomic<vasim::u64> g_allocs{0};
}  // namespace

// The replaced operators pair malloc with free; GCC cannot see that the
// replacement is global and warns at inlined call sites.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace vasim;
using cpu::Arena;
using cpu::Event;
using cpu::EventKind;
using cpu::EventWheel;
using cpu::InstState;
using cpu::IssueWindow;
using cpu::Ring;

// ---- arena ------------------------------------------------------------------

TEST(SchedArena, CarvesAlignedArraysAndThrowsOnOverrun) {
  Arena a;
  a.reserve(Arena::need<u64>(4) + Arena::need<u8>(3));
  u8* bytes = a.alloc<u8>(3);
  u64* words = a.alloc<u64>(4);
  ASSERT_NE(bytes, nullptr);
  ASSERT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(u64), 0u);
  words[3] = 42;  // in-bounds write
  EXPECT_THROW((void)a.alloc<u64>(1), std::logic_error);
}

// ---- ring -------------------------------------------------------------------

TEST(SchedRing, WrapsBothEndsAndEnforcesCapacity) {
  Arena a;
  a.reserve(Arena::need<int>(4));
  Ring<int> r;
  r.init(a.alloc<int>(4), 4);
  ASSERT_TRUE(r.empty());
  r.push_back(1);
  r.push_back(2);
  r.push_front(0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.back(), 2);
  EXPECT_EQ(r.at(1), 1);
  r.pop_front();
  r.push_back(3);
  r.push_back(4);  // head has moved; storage wraps; ring is now full
  EXPECT_EQ(r.front(), 1);
  EXPECT_EQ(r.back(), 4);
  EXPECT_THROW(r.push_back(5), std::logic_error);
  r.pop_back();
  EXPECT_EQ(r.back(), 3);
}

// ---- event wheel ------------------------------------------------------------

struct WheelFixture {
  Arena a;
  EventWheel w;
  explicit WheelFixture(u32 buckets = 64, u32 pool = 32) {
    a.reserve(EventWheel::bytes_needed(buckets, pool));
    w.init(a, buckets, pool);
  }
};

TEST(SchedEventWheel, PopsExactlyTheDueBucket) {
  WheelFixture f;
  f.w.schedule(0, EventKind::kBroadcast, 1);
  f.w.schedule(2, EventKind::kComplete, 2);
  f.w.schedule(2, EventKind::kReplay, 3);
  Event out[8];
  ASSERT_EQ(f.w.pop_due(0, out), 1u);
  EXPECT_EQ(out[0].seq, 1u);
  ASSERT_EQ(f.w.pop_due(1, out), 0u);
  ASSERT_EQ(f.w.pop_due(2, out), 2u);  // both cycle-2 events, any order
  EXPECT_EQ(out[0].seq + out[1].seq, 5u);
}

TEST(SchedEventWheel, PastDueScheduleSnapsToNextPop) {
  WheelFixture f;
  Event out[8];
  ASSERT_EQ(f.w.pop_due(0, out), 0u);
  // Error Padding schedules at stage offset 0, i.e. for the cycle whose
  // bucket was already drained; it must land in the next pop.
  f.w.schedule(0, EventKind::kEpStall, 7);
  ASSERT_EQ(f.w.pop_due(1, out), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kEpStall);
  EXPECT_EQ(out[0].seq, 7u);
}

TEST(SchedEventWheel, RejectsBeyondHorizonAndRecyclesPool) {
  WheelFixture f(/*buckets=*/64, /*pool=*/8);
  EXPECT_THROW(f.w.schedule(64, EventKind::kComplete, 1), std::logic_error);
  // Pool nodes recycle: far more schedules than pool capacity, never more
  // than `pool` outstanding.
  Event out[8];
  for (Cycle c = 0; c < 1000; ++c) {
    f.w.schedule(c, EventKind::kBroadcast, static_cast<SeqNum>(c));
    ASSERT_EQ(f.w.pop_due(c, out), 1u);
    EXPECT_EQ(out[0].seq, static_cast<SeqNum>(c));
  }
}

TEST(SchedEventWheel, SquashDuringGlobalStallKeepsStoredTimeBase) {
  // The pipeline keys the wheel by *stored* cycles (absolute minus the
  // accumulated global-stall shift), so a stall freezes stored time while
  // absolute time advances.  A squash landing mid-stall must drop exactly
  // the squashed seqs and leave the survivors poppable at their unchanged
  // stored cycles once the stall drains.
  WheelFixture f;
  f.w.schedule(2, EventKind::kBroadcast, 5);
  f.w.schedule(2, EventKind::kComplete, 12);
  f.w.schedule(4, EventKind::kReplay, 20);
  Event out[8];
  ASSERT_EQ(f.w.pop_due(0, out), 0u);
  ASSERT_EQ(f.w.pop_due(1, out), 0u);
  // Global stall: the pipeline stops popping (stored time holds at 2) and a
  // replay-triggered squash cuts everything younger than seq 10.
  f.w.filter_squashed(/*last_kept=*/10);
  // Refetch reuses the squashed seq numbers; the recycled seq 12 schedules a
  // fresh event at a later stored cycle and must not collide with the stale
  // one that was just dropped.
  f.w.schedule(3, EventKind::kBroadcast, 12);
  ASSERT_EQ(f.w.pop_due(2, out), 1u);  // only the survivor remains at stored 2
  EXPECT_EQ(out[0].seq, 5u);
  EXPECT_EQ(out[0].kind, EventKind::kBroadcast);
  ASSERT_EQ(f.w.pop_due(3, out), 1u);  // the recycled seq's fresh event
  EXPECT_EQ(out[0].seq, 12u);
  ASSERT_EQ(f.w.pop_due(4, out), 0u);  // squashed seq 20 never reappears
}

TEST(SchedEventWheel, ClearEventsEmptiesWheelAndRecyclesWholePool) {
  WheelFixture f(/*buckets=*/64, /*pool=*/8);
  for (u32 i = 0; i < 8; ++i) {
    f.w.schedule(1 + (i % 4), EventKind::kBroadcast, i);
  }
  // The pool is exhausted: one more pending event cannot be represented.
  EXPECT_THROW(f.w.schedule(5, EventKind::kComplete, 99), std::logic_error);
  f.w.clear_events();
  // Nothing survives the full squash...
  Event out[8];
  for (Cycle c = 0; c < 8; ++c) {
    EXPECT_EQ(f.w.pop_due(c, out), 0u) << "stale event at stored cycle " << c;
  }
  // ...and every pool node is free again: a full pool's worth of fresh
  // events schedules without throwing and pops at the right cycles.
  for (u32 i = 0; i < 8; ++i) {
    f.w.schedule(10 + i, EventKind::kComplete, 100 + i);
  }
  for (u32 i = 0; i < 8; ++i) {
    ASSERT_EQ(f.w.pop_due(10 + i, out), 1u);
    EXPECT_EQ(out[0].seq, 100u + i);
  }
  // The time base persisted across the clear: a past-due schedule still
  // snaps to the next pop instead of vanishing into a drained bucket.
  f.w.schedule(0, EventKind::kEpStall, 7);
  ASSERT_EQ(f.w.pop_due(18, out), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kEpStall);
}

TEST(SchedEventWheel, FilterSquashedDropsRecycledSeqsOnly) {
  WheelFixture f;
  f.w.schedule(1, EventKind::kBroadcast, 5);
  f.w.schedule(1, EventKind::kComplete, 12);
  f.w.schedule(3, EventKind::kComplete, 3);   // bucket max_seq below cut: skipped
  f.w.schedule(5, EventKind::kReplay, 20);    // entire bucket squashed
  f.w.filter_squashed(/*last_kept=*/10);
  Event out[8];
  ASSERT_EQ(f.w.pop_due(0, out), 0u);
  ASSERT_EQ(f.w.pop_due(1, out), 1u);  // seq 12 dropped, seq 5 survives
  EXPECT_EQ(out[0].seq, 5u);
  ASSERT_EQ(f.w.pop_due(2, out), 0u);
  ASSERT_EQ(f.w.pop_due(3, out), 1u);
  EXPECT_EQ(out[0].seq, 3u);
  ASSERT_EQ(f.w.pop_due(4, out), 0u);
  ASSERT_EQ(f.w.pop_due(5, out), 0u);  // fully squashed bucket is empty
}

// ---- issue window -----------------------------------------------------------

InstState make_inst(SeqNum seq, u64 age, isa::OpClass op = isa::OpClass::kIntAlu,
                    bool pred_fault = false, bool pred_critical = false) {
  InstState is;
  is.di.seq = seq;
  is.di.op = op;
  is.age = age;
  is.in_iq = true;
  is.pred_fault = pred_fault;
  is.pred_critical = pred_critical;
  return is;
}

constexpr u32 kTestPhys = 64;  // physical-register count for waiter masks

struct WindowFixture {
  Arena a;
  IssueWindow w;
  explicit WindowFixture(u32 cap = 64) {
    a.reserve(IssueWindow::bytes_needed(cap, kTestPhys));
    w.init(a, cap, kTestPhys);
  }
};

TEST(SchedIssueWindow, SelectOrderIsSeqOrderAcrossSlotWrap) {
  WindowFixture f(64);
  // Seqs 100..163 wrap the 64-slot ring (slot = seq & 63 starts at 36).
  for (SeqNum s = 100; s < 164; ++s) f.w.push_back(make_inst(s, s), false, false);
  ASSERT_EQ(f.w.size(), 64u);
  std::vector<u64> cand(f.w.mask_words());
  ASSERT_TRUE(f.w.collect_candidates(false, cand.data()));
  std::vector<SeqNum> visited;
  f.w.for_each_in_order(cand.data(), nullptr, false, [&](u32 slot) {
    visited.push_back(f.w.slot_state(slot).di.seq);
    return true;
  });
  ASSERT_EQ(visited.size(), 64u);
  for (std::size_t i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], 100u + i);
}

TEST(SchedIssueWindow, FilteredPassesSplitPolicyClassesInAgeOrder) {
  WindowFixture f(64);
  // FFS-style: predicted-faulty first, then the rest, each oldest-first.
  for (SeqNum s = 0; s < 8; ++s) {
    f.w.push_back(make_inst(s, s, isa::OpClass::kIntAlu, /*pred_fault=*/(s % 3) == 1),
                  false, false);
  }
  std::vector<u64> cand(f.w.mask_words());
  ASSERT_TRUE(f.w.collect_candidates(false, cand.data()));
  std::vector<SeqNum> order;
  const auto visit = [&](u32 slot) {
    order.push_back(f.w.slot_state(slot).di.seq);
    return true;
  };
  f.w.for_each_in_order(cand.data(), f.w.predf_mask(), false, visit);
  f.w.for_each_in_order(cand.data(), f.w.predf_mask(), true, visit);
  const std::vector<SeqNum> expect = {1, 4, 7, 0, 2, 3, 5, 6};
  EXPECT_EQ(order, expect);
}

TEST(SchedIssueWindow, WakeCountsOnlyMatchingWaiters) {
  WindowFixture f(64);
  InstState a = make_inst(0, 0);
  a.phys_src1 = 40;
  InstState b = make_inst(1, 1);
  b.phys_src1 = 40;
  b.phys_src2 = 40;  // both sources on the same tag: one dep, pending 2 -> 0
  InstState c = make_inst(2, 2);
  c.phys_src1 = 41;
  f.w.push_back(a, true, false);
  f.w.push_back(b, true, true);
  f.w.push_back(c, true, false);
  EXPECT_EQ(f.w.wake(40), 2);
  std::vector<u64> cand(f.w.mask_words());
  ASSERT_TRUE(f.w.collect_candidates(false, cand.data()));
  EXPECT_EQ(cand[0], 0b011u);  // a and b ready; c still waits on 41
  EXPECT_EQ(f.w.wake(41), 1);
  f.w.collect_candidates(false, cand.data());
  EXPECT_EQ(cand[0], 0b111u);
}

TEST(SchedIssueWindow, StoreToLoadGateYoungestStoreDecides) {
  WindowFixture f(64);
  InstState st1 = make_inst(0, 0, isa::OpClass::kStore);
  st1.di.mem_addr = 0x1000;
  InstState st2 = make_inst(1, 1, isa::OpClass::kStore);
  st2.di.mem_addr = 0x1000;
  f.w.push_back(st1, false, false);
  f.w.push_back(st2, false, false);
  f.w.push_back(make_inst(2, 2, isa::OpClass::kLoad), false, false);
  bool fwd = false;
  // Youngest matching store (seq 1) has not issued: the load is blocked.
  EXPECT_FALSE(f.w.load_may_issue(2, 0x1000, &fwd));
  EXPECT_FALSE(fwd);
  // Once it issues the load forwards from it -- even though the older store
  // (seq 0) never issued.
  f.w.slot_state(f.w.slot_of(1)).issued = true;
  f.w.on_issued(1);
  EXPECT_TRUE(f.w.load_may_issue(2, 0x1000, &fwd));
  EXPECT_TRUE(fwd);
  // A different line never matches.
  EXPECT_TRUE(f.w.load_may_issue(2, 0x2000, &fwd));
  EXPECT_FALSE(fwd);
}

// ---- ABS 6-bit timestamp wraparound -----------------------------------------

TEST(SchedAbsTimestamp, WrappedDistanceRecoversOldestFirstOrder) {
  // The hardware ABS key is a mod-64 dispatch timestamp.  Push a window
  // whose ages cross the 6-bit wrap (ages 40..103: timestamps 40..63 then
  // 0..39) and check the wrapped distance from the head's timestamp is
  // strictly increasing in true age -- i.e. oldest-first selection (ABS, and
  // the age tie-break inside each CDS class) survives the wrap.
  WindowFixture f(64);
  for (SeqNum s = 0; s < 64; ++s) {
    f.w.push_back(make_inst(s, /*age=*/40 + s, isa::OpClass::kIntAlu,
                            /*pred_fault=*/(s & 1) != 0, /*pred_critical=*/(s & 3) == 1),
                  false, false);
  }
  const u8 head_ts = f.w.abs_timestamp(f.w.slot_of(f.w.head_seq()));
  EXPECT_EQ(head_ts, 40u);
  u8 prev = 0;
  for (SeqNum s = 0; s < 64; ++s) {
    const u8 ts = f.w.abs_timestamp(f.w.slot_of(s));
    EXPECT_EQ(ts, (40 + s) & 63) << "s=" << s;
    const u8 d = IssueWindow::abs_distance(ts, head_ts);
    EXPECT_EQ(d, static_cast<u8>(s)) << "s=" << s;
    if (s > 0) {
      EXPECT_GT(d, prev) << "wrap broke oldest-first order at s=" << s;
    }
    prev = d;
  }
  // The CDS preferred class (predicted-faulty and critical) also visits
  // oldest-first across the wrap.
  std::vector<u64> cand(f.w.mask_words());
  ASSERT_TRUE(f.w.collect_candidates(false, cand.data()));
  u64 prev_age = 0;
  bool first = true;
  f.w.for_each_in_order(cand.data(), f.w.crit_mask(), false, [&](u32 slot) {
    const InstState& is = f.w.slot_state(slot);
    EXPECT_TRUE(is.pred_fault && is.pred_critical);
    if (!first) {
      EXPECT_GT(is.age, prev_age);
    }
    prev_age = is.age;
    first = false;
    return true;
  });
  EXPECT_FALSE(first) << "no critical candidates visited";
}

// ---- zero steady-state allocations ------------------------------------------

/// Deterministic synthetic workload that never touches the heap in next():
/// a mix of ALU, loads, stores, mul/div and a loop branch.
class FlatSource final : public isa::InstructionSource {
 public:
  bool next(isa::DynInst& out) override {
    const u64 i = n_++;
    out = isa::DynInst{};
    out.pc = 0x1000 + (i % 97) * isa::kInstrBytes;
    out.next_pc = out.pc + isa::kInstrBytes;
    out.src1 = 1 + static_cast<int>(i % 7);
    out.dst = 1 + static_cast<int>((i * 5) % 11);
    switch (i % 11) {
      case 0:
        out.op = isa::OpClass::kLoad;
        out.mem_addr = 0x2000 + (i % 512) * 8;
        break;
      case 3:
        out.op = isa::OpClass::kStore;
        out.mem_addr = 0x2000 + ((i + 4) % 512) * 8;
        break;
      case 5:
        out.op = isa::OpClass::kIntMul;
        break;
      case 7:
        out.op = isa::OpClass::kBranch;
        out.dst = kNoReg;
        out.taken = (i % 3) == 0;
        out.next_pc = out.taken ? 0x1000 : out.next_pc;
        break;
      case 9:
        out.op = isa::OpClass::kIntDiv;
        break;
      default:
        out.op = isa::OpClass::kIntAlu;
        out.src2 = 1 + static_cast<int>((i * 3) % 7);
        break;
    }
    return true;
  }
  [[nodiscard]] std::string name() const override { return "flat"; }

 private:
  u64 n_ = 0;
};

// ---- ABS wrap under continuous slot freezing --------------------------------

/// Predicts a writeback-stage fault for every instruction: under a VTE
/// scheme each issue pads its broadcast and freezes one issue slot the next
/// cycle -- the densest slot-freeze pattern the model can produce.
class AlwaysWritebackPredictor final : public cpu::FaultPredictor {
 public:
  cpu::FaultPrediction predict(Pc, u64, Cycle) override {
    return {/*predicted=*/true, timing::OooStage::kWriteback, /*critical=*/false};
  }
  void train(Pc, u64, bool, timing::OooStage) override {}
  void mark_critical(Pc, u64, bool) override {}
};

TEST(SchedAbsTimestamp, WrapUnderContinuousSlotFreezingStaysSound) {
  // A 128-entry window drained at one issue per cycle (half of them lost to
  // freezes) backs up far past 64 in-flight ages, so the ABS 6-bit
  // timestamps wrap continuously *while* slots are frozen.  The semantics
  // checker validates every select pass, freeze rotation and pad against
  // the shadow model for the whole run.
  FlatSource src;
  cpu::CoreConfig cfg;
  cfg.rob_entries = 128;
  cfg.iq_entries = 128;
  cfg.issue_width = 1;
  AlwaysWritebackPredictor pred;
  const cpu::SchemeConfig scheme = cpu::scheme_abs();
  // Predictions are only consulted when faults are enabled at all, so run
  // at the high-fault supply point; the mispredicted stages (any actual
  // fault not at writeback) exercise the replay path under freezing too.
  const timing::PathModelConfig pcfg{7, 0.10, 0.03};
  const timing::FaultModel fm(pcfg, timing::SupplyPoints::kHighFault);
  cpu::Pipeline p(cfg, scheme, &src, &fm, &pred);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(p);
  const cpu::PipelineResult r = p.run(3'000, 1'000);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks(), 0u);
  EXPECT_EQ(r.committed, 3'000u);
  // The freeze pattern actually bit: a large share of issue slots was lost
  // to frozen slots, and the run is far slower than unconstrained issue.
  EXPECT_GT(r.cpi.slots[static_cast<std::size_t>(obs::CpiCause::kSlotFreeze)], 1'000u);
  EXPECT_GT(r.cycles, r.committed);
}

// ---- ABS wrap and wheel squash-skip across issue-queue sizes -----------------
// The delay-queue work raised the practical iq_entries ceiling to 512; the
// 6-bit ABS timestamp and the wheel's per-bucket max_seq squash skip must
// stay sound when the in-flight window is 1x, 4x and 8x the 64-value
// timestamp space.

class SchedAbsWrapAtSize : public ::testing::TestWithParam<int> {};

TEST_P(SchedAbsWrapAtSize, ContinuousFreezingWrapStaysSound) {
  const int iq = GetParam();
  FlatSource src;
  cpu::CoreConfig cfg;
  cfg.rob_entries = iq;
  cfg.iq_entries = iq;
  cfg.phys_regs = 96 + iq / 2;  // keep renaming ahead of the larger window
  cfg.issue_width = 1;          // drain slowly so the window backs up past 64 ages
  AlwaysWritebackPredictor pred;
  const cpu::SchemeConfig scheme = cpu::scheme_abs();
  const timing::PathModelConfig pcfg{7, 0.10, 0.03};
  const timing::FaultModel fm(pcfg, timing::SupplyPoints::kHighFault);
  cpu::Pipeline p(cfg, scheme, &src, &fm, &pred);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(p);
  const cpu::PipelineResult r = p.run(3'000, 1'000);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks(), 0u);
  EXPECT_EQ(r.committed, 3'000u);
  EXPECT_GT(r.cpi.slots[static_cast<std::size_t>(obs::CpiCause::kSlotFreeze)], 1'000u);
}

INSTANTIATE_TEST_SUITE_P(IqSizes, SchedAbsWrapAtSize, ::testing::Values(64, 256, 512));

class SchedWheelSquashSkipAtSize : public ::testing::TestWithParam<u32> {};

TEST_P(SchedWheelSquashSkipAtSize, FilterSquashedSkipsAndDropsCorrectBuckets) {
  // Spread events across the whole wheel (buckets scale with iq_entries in
  // the pipeline): an old-seq bucket near the horizon edge must be *skipped*
  // by the max_seq fast path, mixed buckets filtered node by node, and
  // all-young buckets emptied -- at every wheel size.
  const u32 buckets = GetParam();
  WheelFixture f(buckets, /*pool=*/64);
  const Cycle edge = buckets - 1;  // horizon edge: farthest schedulable cycle
  f.w.schedule(1, EventKind::kBroadcast, 5);    // survivor
  f.w.schedule(1, EventKind::kComplete, 500);   // squashed (mixed bucket)
  f.w.schedule(edge / 2, EventKind::kComplete, 3);   // max_seq below cut: skipped
  f.w.schedule(edge / 2, EventKind::kBroadcast, 9);  // same bucket, also old
  f.w.schedule(edge, EventKind::kReplay, 600);       // entire bucket squashed
  f.w.filter_squashed(/*last_kept=*/10);
  // Refetch recycles a squashed seq into a fresh event; it must survive the
  // earlier filter untouched.
  f.w.schedule(2, EventKind::kBroadcast, 500);
  Event out[8];
  ASSERT_EQ(f.w.pop_due(0, out), 0u);
  ASSERT_EQ(f.w.pop_due(1, out), 1u);
  EXPECT_EQ(out[0].seq, 5u);
  ASSERT_EQ(f.w.pop_due(2, out), 1u);
  EXPECT_EQ(out[0].seq, 500u);
  for (Cycle c = 3; c <= edge; ++c) {
    const u32 n = f.w.pop_due(c, out);
    if (c == edge / 2) {
      ASSERT_EQ(n, 2u) << "skipped bucket lost events at size " << buckets;
      EXPECT_EQ(out[0].seq + out[1].seq, 12u);  // seqs 3 and 9, either order
    } else {
      ASSERT_EQ(n, 0u) << "stale event at stored cycle " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WheelSizes, SchedWheelSquashSkipAtSize,
                         ::testing::Values(64u, 256u, 512u));

TEST(SchedKernelAllocations, SteadyStateCycleLoopIsAllocationFree) {
  FlatSource src;
  cpu::CoreConfig cfg;
  cpu::SchemeConfig scheme = cpu::scheme_razor();
  cpu::Pipeline p(cfg, scheme, &src, nullptr, nullptr);
  // Warm up past cold-start (cache fills, branch predictor training, the
  // deepest load-miss events in flight).
  for (int i = 0; i < 5'000; ++i) {
    ASSERT_TRUE(p.step());
  }
  const u64 before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(p.step());
  }
  const u64 after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "cycle loop allocated " << (after - before) << " times in 20k cycles";
  EXPECT_GT(p.committed(), 10'000u);  // the loop did real work
}

}  // namespace
