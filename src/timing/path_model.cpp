#include "src/timing/path_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace vasim::timing {
namespace {

// Fraction of each fault band drawn in its "deep" (always-faulty) region as
// opposed to its modulation-sensitive boundary region.
constexpr double kDeepFraction = 0.70;
// Empirical mean fault probability of a boundary-region instance under the
// default environment modulation.
constexpr double kBoundaryHitRate = 0.60;

}  // namespace

SensitizedPathModel::SensitizedPathModel(const PathModelConfig& cfg, const VoltageModel& vm)
    : cfg_(cfg) {
  if (cfg.p_faulty_low < 0 || cfg.p_faulty_high < cfg.p_faulty_low) {
    throw std::invalid_argument("SensitizedPathModel: need 0 <= p_low <= p_high");
  }
  theta_low_ = 1.0 / vm.delay_scale(SupplyPoints::kLowFault);
  theta_high_ = 1.0 / vm.delay_scale(SupplyPoints::kHighFault);
  // Expected dynamic hit rate of a band = deep mass + boundary mass * hit rate.
  const double band_yield = kDeepFraction + (1.0 - kDeepFraction) * kBoundaryHitRate;
  band_both_ = std::min(0.5, cfg.p_faulty_low / band_yield);
  const double residual_high = std::max(0.0, cfg.p_faulty_high - band_both_);
  band_high_only_ = std::min(0.5, residual_high / band_yield);
}

double SensitizedPathModel::path_factor(Pc pc) const {
  const u64 h = hash_combine(hash_combine(cfg_.seed, 0xfac7ULL), pc);
  // Band membership uses a golden-ratio low-discrepancy sequence over the
  // static instruction index (plus a per-workload phase), so the faulty
  // fraction of any contiguous-code hot set tracks the configured
  // probability tightly; the within-band position stays hash-derived.
  constexpr double kGolden = 0.6180339887498949;
  const double phase = hash_to_unit(hash_mix(cfg_.seed ^ 0x9fadeULL));
  // Mask the index so the product stays within double precision (a full
  // 64-bit value would lose its fractional part entirely).
  double u = static_cast<double>((pc >> 2) & 0xFFFFFFFFULL) * kGolden + phase;
  u -= static_cast<double>(static_cast<u64>(u));
  const double v = hash_to_unit(hash_mix(h ^ 0x1234abcdULL));
  // Band geometry relative to the supply thresholds:
  //   deep-both:        always faulty at 1.04 V (and 0.97 V)
  //   boundary-both:    faulty at 1.04 V only under adverse modulation
  //   deep-high:        always faulty at 0.97 V, never at 1.04 V
  //   boundary-high:    faulty at 0.97 V only under adverse modulation
  //   safe:             never faulty at any studied supply
  if (u < band_both_) {
    if (v < kDeepFraction) return theta_low_ * 1.011 + v * 0.003;  // ~[0.966, 0.968]
    return theta_low_ * 1.0015 + v * 0.006;                        // ~[0.957, 0.963]
  }
  if (u < band_both_ + band_high_only_) {
    if (v < kDeepFraction) return theta_high_ * 1.017 + v * 0.028;  // ~[0.916, 0.936]
    return theta_high_ * 1.0015 + v * 0.012;                        // ~[0.902, 0.913]
  }
  // Safe population: broad spread well under the 0.97 V threshold.
  return 0.30 + 0.585 * v;  // [0.30, 0.885]
}

OooStage SensitizedPathModel::faulty_stage(Pc pc, FaultClass cls) const {
  const u64 h = hash_combine(hash_combine(cfg_.seed, 0x57a9eULL), pc);
  const double u = hash_to_unit(h);
  if (cls == FaultClass::kMemLike) {
    // LSQ CAM search is the second hot spot after wakeup/select (Sec. 3.3.4).
    if (u < 0.55) return OooStage::kIssueSelect;
    if (u < 0.88) return OooStage::kMemory;
    if (u < 0.94) return OooStage::kRegRead;
    return OooStage::kWriteback;
  }
  // "Almost all timing errors happen in the wakeup/select stage" (Sec 3.3.1).
  if (u < 0.70) return OooStage::kIssueSelect;
  if (u < 0.88) return OooStage::kExecute;
  if (u < 0.95) return OooStage::kRegRead;
  return OooStage::kWriteback;
}

double SensitizedPathModel::commonality(Pc pc) const {
  const u64 h = hash_combine(hash_combine(cfg_.seed, 0xc0117ULL), pc);
  const double g = hash_to_gaussian(h);
  return std::clamp(0.90 + 0.03 * g, 0.75, 0.98);
}

}  // namespace vasim::timing
