// Dynamic (vector-pair driven) gate-level analyses.
//
// These close the loop of the paper's S1 methodology: instead of assuming a
// per-PC path delay, they *measure* it from the gates an instruction's
// input transition actually sensitizes.
//
//  * sensitized_delay -- longest transition-propagation path through the
//    toggled-gate set of one (previous, current) input pair, optionally
//    under per-die process variation.  This is the per-instance "sensitized
//    path delay" of [12]'s instruction-level path sensitization analysis.
//  * TimedGateSim -- event-driven timing simulation of the same transition:
//    per-gate delays, transition counts, glitch detection and settle time.
//  * measured_power -- dynamic power from *measured* toggle activity over an
//    instance set, replacing the constant-activity assumption of roll_up().
#ifndef VASIM_CIRCUIT_DYNAMIC_HPP
#define VASIM_CIRCUIT_DYNAMIC_HPP

#include <span>
#include <utility>
#include <vector>

#include "src/circuit/builders.hpp"
#include "src/circuit/power.hpp"
#include "src/timing/process_variation.hpp"

namespace vasim::circuit {

/// Result of one sensitized-path extraction.
struct SensitizedDelay {
  double delay_ps = 0.0;   ///< arrival of the latest toggled gate
  int toggled_gates = 0;   ///< size of the sensitized set
  SigId endpoint = kNoSig; ///< the gate completing last
};

/// Longest transition path of the (pre -> cur) input change: a topological
/// bound over the toggled-gate cone (every toggled gate is assumed to wait
/// for its slowest toggled fanin, i.e. controlling-value early settling is
/// ignored).  When `pv` is non-null, per-gate delays carry die `die`'s
/// process variation.  TimedGateSim reports the event-exact settle time,
/// which can be below this bound (early-settling cones) or above it
/// (dynamic hazards).
SensitizedDelay sensitized_delay(const Component& component, std::span<const u8> pre,
                                 std::span<const u8> cur,
                                 const timing::ProcessVariation* pv = nullptr, u64 die = 0);

/// Per-PC statistical summary over many instances: the mu + 2 sigma quantity
/// the fault criterion compares against the cycle time (Section 4.3).
struct InstanceDelayStats {
  double mu_ps = 0.0;
  double sigma_ps = 0.0;
  double mu_plus_2sigma_ps = 0.0;
  double max_ps = 0.0;
  int instances = 0;
};
InstanceDelayStats instance_delay_stats(
    const Component& component,
    std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances,
    const timing::ProcessVariation* pv = nullptr, u64 die = 0);

/// Event-driven timed simulation of one input transition.
class TimedGateSim {
 public:
  explicit TimedGateSim(const Component* component,
                        const timing::ProcessVariation* pv = nullptr, u64 die = 0);

  struct Result {
    double settle_ps = 0.0;  ///< time of the last output change
    u64 transitions = 0;     ///< total gate-output changes
    u64 glitches = 0;        ///< gates changing more than once
    double dynamic_energy_fj = 0.0;  ///< energy of the measured transitions
  };

  /// Applies `pre`, lets the circuit settle, then switches to `cur` at t=0
  /// and simulates the propagation.
  Result evaluate(std::span<const u8> pre, std::span<const u8> cur);

 private:
  const Component* component_;
  std::vector<double> gate_delay_ps_;
  std::vector<std::vector<SigId>> fanout_;
};

/// Dynamic power from measured activity over an instance set (one transition
/// per instance), at the given clock frequency.
PowerReport measured_power(const Component& component,
                           std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances,
                           double frequency_ghz = 2.0);

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_DYNAMIC_HPP
