// Pipeline tests: correctness of the OoO model itself, plus the fault
// handling schemes under injection.
#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::cpu {
namespace {

/// Straight-line ALU stream with configurable dependence.
struct SyntheticSource final : isa::InstructionSource {
  u64 n = 0;
  u64 limit;
  bool serial;
  explicit SyntheticSource(u64 count, bool serial_chain = false)
      : limit(count), serial(serial_chain) {}
  bool next(isa::DynInst& d) override {
    if (n >= limit) return false;
    d = {};
    d.pc = 0x1000 + (n % 64) * 4;
    d.op = isa::OpClass::kIntAlu;
    d.src1 = serial ? 2 : 1;  // serial: read own previous result
    d.dst = serial ? 2 : 2 + static_cast<int>(n % 8);
    d.next_pc = d.pc + 4;
    ++n;
    return true;
  }
  std::string name() const override { return "synthetic"; }
};

/// Oracle predictor: predicts exactly the fault model's deterministic
/// component (perfect TEP).
struct OraclePredictor final : FaultPredictor {
  const timing::FaultModel* fm;
  explicit OraclePredictor(const timing::FaultModel* model) : fm(model) {}
  FaultPrediction predict(Pc pc, u64, Cycle now) override {
    FaultPrediction p;
    const auto d = fm->query(pc, timing::FaultClass::kAluLike, now);
    p.predicted = d.core_faulty;
    p.stage = d.stage;
    return p;
  }
  void train(Pc, u64, bool, timing::OooStage) override {}
  void mark_critical(Pc, u64, bool) override {}
};

TEST(Pipeline, CommitsEveryInstructionOfAProgram) {
  const isa::Program prog = isa::assemble(R"(
      addi r1, r0, 0
      addi r2, r0, 1
      addi r3, r0, 201
    loop:
      add  r1, r1, r2
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )");
  isa::FunctionalCore ref(&prog);
  isa::DynInst d;
  u64 dynamic_count = 0;
  while (ref.next(d)) ++dynamic_count;

  isa::FunctionalCore src(&prog);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  const PipelineResult r = p.run(1'000'000);
  EXPECT_EQ(r.committed, dynamic_count);
  EXPECT_GT(r.cycles, dynamic_count / 4);  // cannot beat issue width
}

TEST(Pipeline, IndependentAluStreamNearsAluThroughput) {
  SyntheticSource src(30000);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  const PipelineResult r = p.run(29000);
  EXPECT_GT(r.ipc(), 1.8);  // 2 simple ALUs
  EXPECT_LE(r.ipc(), 2.05);
}

TEST(Pipeline, SerialChainLimitsIpcToOne) {
  SyntheticSource src(20000, /*serial=*/true);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  const PipelineResult r = p.run(19000);
  EXPECT_LT(r.ipc(), 1.05);
  EXPECT_GT(r.ipc(), 0.90);
}

TEST(Pipeline, WiderAluPoolRaisesThroughput) {
  SyntheticSource a(30000), b(30000);
  CoreConfig narrow, wide;
  wide.simple_alus = 4;
  Pipeline pn(narrow, scheme_fault_free(), &a, nullptr, nullptr);
  Pipeline pw(wide, scheme_fault_free(), &b, nullptr, nullptr);
  EXPECT_GT(pw.run(29000).ipc(), pn.run(29000).ipc() * 1.5);
}

TEST(Pipeline, StoreLoadForwardingPreservesProgress) {
  const isa::Program prog = isa::assemble(R"(
      lui  r1, 0x100
      addi r2, r0, 7
      addi r5, r0, 0
      addi r6, r0, 50
    loop:
      st   r2, 0(r1)
      ld   r3, 0(r1)
      add  r2, r3, r2
      addi r5, r5, 1
      blt  r5, r6, loop
      halt
  )");
  isa::FunctionalCore src(&prog);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  const PipelineResult r = p.run(1'000'000);
  EXPECT_GT(r.committed, 200u);
  EXPECT_GT(r.stats.count("ev.stl_forward"), 10u);
}

TEST(Pipeline, MispredictsCostCycles) {
  auto easy = workload::spec2006_profile("sjeng");
  auto hard = easy;
  easy.branch_random_frac = 0.0;
  hard.branch_random_frac = 0.5;
  workload::TraceGenerator ge(easy), gh(hard);
  CoreConfig cfg;
  Pipeline pe(cfg, scheme_fault_free(), &ge, nullptr, nullptr);
  Pipeline ph(cfg, scheme_fault_free(), &gh, nullptr, nullptr);
  const PipelineResult re = pe.run(30000, 10000);
  const PipelineResult rh = ph.run(30000, 10000);
  EXPECT_GT(rh.stats.count("branch.mispredict"), re.stats.count("branch.mispredict") * 3);
  EXPECT_GT(re.ipc(), rh.ipc());
}

TEST(Pipeline, ColdMissesCostCycles) {
  auto light = workload::spec2006_profile("sjeng");
  auto heavy = light;
  light.cold_frac = 0.0;
  heavy.cold_frac = 0.15;
  workload::TraceGenerator gl(light), gh(heavy);
  CoreConfig cfg;
  Pipeline pl(cfg, scheme_fault_free(), &gl, nullptr, nullptr);
  Pipeline ph(cfg, scheme_fault_free(), &gh, nullptr, nullptr);
  EXPECT_GT(pl.run(20000, 10000).ipc(), ph.run(20000, 10000).ipc() * 1.3);
}

TEST(Pipeline, WarmupExcludedFromMeasurement) {
  SyntheticSource src(50000);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_fault_free(), &src, nullptr, nullptr);
  const PipelineResult r = p.run(20000, 10000);
  EXPECT_EQ(r.committed, 20000u);
  EXPECT_EQ(r.stats.count("ev.commit"), 20000u);
  EXPECT_LT(r.cycles, 15000u);  // ~2 IPC, not counting warmup cycles
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto prof = workload::spec2006_profile("gcc");
  Cycle cycles[2];
  for (int i = 0; i < 2; ++i) {
    workload::TraceGenerator g(prof);
    CoreConfig cfg;
    Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
    cycles[i] = p.run(20000).cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Pipeline, NoFaultsAtNominalSupply) {
  const auto prof = workload::spec2006_profile("astar");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.08, 0.02};
  const timing::FaultModel fm(pcfg, timing::SupplyPoints::kNominal);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_razor(), &g, &fm, nullptr);
  const PipelineResult r = p.run(20000);
  EXPECT_EQ(r.stats.count("fault.actual"), 0u);
  EXPECT_EQ(r.stats.count("fault.replays"), 0u);
}

// ---- scheme sweep under fault injection ----------------------------------

struct SchemeCase {
  const char* scheme;
  double vdd;
};

class SchemeSweep : public ::testing::TestWithParam<SchemeCase> {
 protected:
  static SchemeConfig config_for(const std::string& name) {
    if (name == "razor") return scheme_razor();
    if (name == "ep") return scheme_error_padding();
    if (name == "abs") return scheme_abs();
    if (name == "ffs") return scheme_ffs();
    if (name == "cds") return scheme_cds();
    return scheme_fault_free();
  }
};

TEST_P(SchemeSweep, RunsToCompletionWithConsistentFaultAccounting) {
  const auto [scheme_name, vdd] = GetParam();
  const auto prof = workload::spec2006_profile("bzip2");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, vdd);
  OraclePredictor oracle(&fm);
  const SchemeConfig scheme = config_for(scheme_name);
  CoreConfig cfg;
  Pipeline p(cfg, scheme, &g, &fm, scheme.use_predictor ? &oracle : nullptr);
  const PipelineResult r = p.run(25000, 5000);

  EXPECT_EQ(r.committed, 25000u);
  const u64 actual = r.stats.count("fault.actual");
  const u64 handled = r.stats.count("fault.handled");
  const u64 replays = r.stats.count("fault.replays");
  EXPECT_GT(actual, 50u) << "fault injection must be active";
  // Every actual fault is either handled in place or replayed; replays can
  // exceed the unhandled count only via re-faulting squashed work.
  EXPECT_LE(handled, actual);
  if (scheme.use_predictor) {
    EXPECT_GT(handled, actual / 2) << "oracle predictor should cover most faults";
  } else {
    EXPECT_EQ(handled, 0u);
    EXPECT_GE(replays, actual / 2);
  }
  if (scheme.error_padding) {
    EXPECT_GT(r.stats.count("ep.stalls"), 0u);
    EXPECT_GT(r.stats.count("ev.stall_cycles"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeSweep,
    ::testing::Values(SchemeCase{"razor", 1.04}, SchemeCase{"razor", 0.97},
                      SchemeCase{"ep", 1.04}, SchemeCase{"ep", 0.97},
                      SchemeCase{"abs", 1.04}, SchemeCase{"abs", 0.97},
                      SchemeCase{"ffs", 1.04}, SchemeCase{"ffs", 0.97},
                      SchemeCase{"cds", 1.04}, SchemeCase{"cds", 0.97}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return std::string(info.param.scheme) + (info.param.vdd > 1.0 ? "_low" : "_high");
    });

TEST(Schemes, VteBeatsErrorPaddingBeatsRazor) {
  const auto prof = workload::spec2006_profile("sjeng");
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                               prof.fr_low_pct / 100.0 * prof.fr_calib_low};
  const timing::FaultModel fm(pcfg, 0.97);

  auto run_scheme = [&](const SchemeConfig& s) {
    workload::TraceGenerator g(prof);
    OraclePredictor oracle(&fm);
    CoreConfig cfg;
    Pipeline p(cfg, s, &g, &fm, s.use_predictor ? &oracle : nullptr);
    return p.run(30000, 10000).ipc();
  };

  const double ff = [&] {
    workload::TraceGenerator g(prof);
    CoreConfig cfg;
    Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
    return p.run(30000, 10000).ipc();
  }();
  const double razor = run_scheme(scheme_razor());
  const double ep = run_scheme(scheme_error_padding());
  const double abs = run_scheme(scheme_abs());

  EXPECT_GT(ff, ep);
  EXPECT_GT(ep, razor);
  EXPECT_GT(abs, ep) << "violation-aware scheduling must beat stall-based padding";
}

TEST(Schemes, ReplayedInstructionsStillCommitExactly) {
  // Replay machinery must never lose or duplicate instructions.
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};  // aggressive fault rate
  const timing::FaultModel fm(pcfg, 0.97);
  SchemeConfig razor = scheme_razor();
  razor.recovery = RecoveryModel::kSquashRefetch;
  CoreConfig cfg;
  Pipeline p(cfg, razor, &g, &fm, nullptr);
  const PipelineResult r = p.run(20000);
  EXPECT_EQ(r.committed, 20000u);
  EXPECT_GT(r.stats.count("fault.replays"), 100u);
  EXPECT_GT(r.stats.count("ev.squash"), r.stats.count("fault.replays"));
}

TEST(Schemes, MicroStallRecoveryAlsoCompletes) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};
  const timing::FaultModel fm(pcfg, 0.97);
  SchemeConfig scheme = scheme_razor();
  scheme.recovery = RecoveryModel::kMicroStall;
  CoreConfig cfg;
  Pipeline p(cfg, scheme, &g, &fm, nullptr);
  const PipelineResult r = p.run(20000);
  EXPECT_EQ(r.committed, 20000u);
  EXPECT_GT(r.stats.count("ev.stall_cycles"), 0u);
  EXPECT_EQ(r.stats.count("ev.squash"), 0u);
}

TEST(Schemes, EpStallsTrackPredictedFaults) {
  const auto prof = workload::spec2006_profile("bzip2");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.08, 0.03};
  const timing::FaultModel fm(pcfg, 0.97);
  OraclePredictor oracle(&fm);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_error_padding(), &g, &fm, &oracle);
  const PipelineResult r = p.run(20000);
  const u64 predicted = r.stats.count("fault.predicted");
  const u64 stalls = r.stats.count("ep.stalls");
  EXPECT_GT(predicted, 0u);
  // Every surviving predicted-faulty instruction schedules one stall.
  EXPECT_NEAR(static_cast<double>(stalls), static_cast<double>(predicted),
              0.15 * static_cast<double>(predicted));
}

}  // namespace
}  // namespace vasim::cpu
