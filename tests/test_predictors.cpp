// Tests for the ancestor predictors (MRE [13], TVP [12]) and their
// integration through the experiment runner.
#include <gtest/gtest.h>

#include "src/core/predictors.hpp"
#include "src/core/runner.hpp"

namespace vasim::core {
namespace {

using timing::OooStage;

TEST(Mre, PredictsExactlyLastOutcome) {
  MostRecentEntryPredictor mre(1024);
  EXPECT_FALSE(mre.predict(0x100, 0, 0).predicted);
  mre.train(0x100, 0, true, OooStage::kExecute);
  EXPECT_TRUE(mre.predict(0x100, 0, 0).predicted);
  EXPECT_EQ(mre.predict(0x100, 0, 0).stage, OooStage::kExecute);
  mre.train(0x100, 0, false, OooStage::kExecute);
  EXPECT_FALSE(mre.predict(0x100, 0, 0).predicted) << "MRE forgets on one clean instance";
  mre.train(0x100, 0, true, OooStage::kMemory);
  EXPECT_EQ(mre.predict(0x100, 0, 0).stage, OooStage::kMemory);
}

TEST(Mre, TagsPreventAliasing) {
  MostRecentEntryPredictor mre(256);
  mre.train(0x100, 0, true, OooStage::kIssueSelect);
  const Pc alias = 0x100 + 256 * 4;  // same index, different tag
  EXPECT_FALSE(mre.predict(alias, 0, 0).predicted);
  // Clean instances of an unrelated PC do not evict the owner.
  mre.train(alias, 0, false, OooStage::kIssueSelect);
  EXPECT_TRUE(mre.predict(0x100, 0, 0).predicted);
}

TEST(Mre, HistoryIgnored) {
  MostRecentEntryPredictor mre(1024);
  mre.train(0x200, 0xAA, true, OooStage::kIssueSelect);
  EXPECT_TRUE(mre.predict(0x200, 0x55, 0).predicted);
}

TEST(Tvp, HysteresisNeedsTwoFaults) {
  TimingViolationPredictor tvp(1024);
  tvp.train(0x100, 0, true, OooStage::kRegRead);
  EXPECT_FALSE(tvp.predict(0x100, 0, 0).predicted) << "one fault is not enough (counter=1)";
  tvp.train(0x100, 0, true, OooStage::kRegRead);
  EXPECT_TRUE(tvp.predict(0x100, 0, 0).predicted);
  tvp.train(0x100, 0, false, OooStage::kRegRead);
  EXPECT_FALSE(tvp.predict(0x100, 0, 0).predicted);
}

TEST(Tvp, UntaggedTablesAlias) {
  TimingViolationPredictor tvp(256);
  tvp.train(0x100, 0, true, OooStage::kExecute);
  tvp.train(0x100, 0, true, OooStage::kExecute);
  const Pc alias = 0x100 + 256 * 4;
  EXPECT_TRUE(tvp.predict(alias, 0, 0).predicted) << "TVP has no tags: aliases predict too";
}

TEST(Predictors, StorageOrdering) {
  MostRecentEntryPredictor mre(4096);
  TimingViolationPredictor tvp(4096);
  TimingErrorPredictor tep;
  EXPECT_LT(tvp.storage_bits(), mre.storage_bits());
  EXPECT_LT(mre.storage_bits(), tep.storage_bits());
}

TEST(Predictors, PowerOfTwoEnforced) {
  EXPECT_THROW(MostRecentEntryPredictor(300), std::invalid_argument);
  EXPECT_THROW(TimingViolationPredictor(0), std::invalid_argument);
}

class PredictorKindSweep : public ::testing::TestWithParam<PredictorKind> {};

TEST_P(PredictorKindSweep, RunnerReachesUsefulCoverage) {
  RunnerConfig rc;
  rc.instructions = 10000;
  rc.warmup = 10000;
  rc.predictor = GetParam();
  const ExperimentRunner runner(rc);
  const auto prof = workload::spec2006_profile("bzip2");
  const RunResult r = runner.run(prof, cpu::scheme_abs(), 0.97);
  EXPECT_EQ(r.committed, 10000u);
  EXPECT_GT(r.predictor_accuracy, 0.6) << "every predictor must catch recurring faults";
}

INSTANTIATE_TEST_SUITE_P(Kinds, PredictorKindSweep,
                         ::testing::Values(PredictorKind::kTep, PredictorKind::kMre,
                                           PredictorKind::kTvp),
                         [](const ::testing::TestParamInfo<PredictorKind>& info) {
                           switch (info.param) {
                             case PredictorKind::kTep: return "tep";
                             case PredictorKind::kMre: return "mre";
                             case PredictorKind::kTvp: return "tvp";
                           }
                           return "?";
                         });

TEST(Predictors, TepCutsFalsePositivesVsTvp) {
  RunnerConfig rc;
  rc.instructions = 20000;
  rc.warmup = 15000;
  const auto prof = workload::spec2006_profile("gcc");
  rc.predictor = PredictorKind::kTep;
  const RunResult tep = ExperimentRunner(rc).run(prof, cpu::scheme_error_padding(), 0.97);
  rc.predictor = PredictorKind::kTvp;
  const RunResult tvp = ExperimentRunner(rc).run(prof, cpu::scheme_error_padding(), 0.97);
  // The TVP's untagged counters alias and over-predict relative to the
  // tagged, sensor-gated TEP.
  EXPECT_LE(tep.stats.count("fault.false_positive"),
            tvp.stats.count("fault.false_positive") + 5);
}

}  // namespace
}  // namespace vasim::core
