#include "src/obs/trace.hpp"

#include <cmath>
#include <cstdio>

namespace vasim::obs {
namespace {

std::string json_f64(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream* out) : out_(out) {
  *out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::finish() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

void ChromeTraceWriter::event_prefix(std::string& buf, std::string_view name,
                                     std::string_view category, char phase, u64 pid, u64 tid,
                                     double ts_us) {
  buf += "{\"name\": ";
  buf += json_quote(name);
  buf += ", \"cat\": ";
  buf += json_quote(category);
  buf += ", \"ph\": \"";
  buf += phase;
  buf += "\", \"pid\": ";
  buf += std::to_string(pid);
  buf += ", \"tid\": ";
  buf += std::to_string(tid);
  buf += ", \"ts\": ";
  buf += json_f64(ts_us);
}

void ChromeTraceWriter::append_args(std::string& buf, std::initializer_list<Arg> args) {
  if (args.size() == 0) return;
  buf += ", \"args\": {";
  bool first = true;
  for (const Arg& a : args) {
    if (!first) buf += ", ";
    first = false;
    buf += json_quote(a.first);
    buf += ": ";
    buf += a.second;
  }
  buf += '}';
}

void ChromeTraceWriter::emit(const std::string& buf) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  *out_ << (first_ ? "\n" : ",\n") << buf;
  first_ = false;
  ++events_;
}

void ChromeTraceWriter::complete_event(std::string_view name, std::string_view category,
                                       u64 pid, u64 tid, double ts_us, double dur_us,
                                       std::initializer_list<Arg> args) {
  std::string buf;
  event_prefix(buf, name, category, 'X', pid, tid, ts_us);
  buf += ", \"dur\": ";
  buf += json_f64(dur_us);
  append_args(buf, args);
  buf += '}';
  emit(buf);
}

void ChromeTraceWriter::counter_event(std::string_view name, std::string_view category,
                                      u64 pid, u64 tid, double ts_us,
                                      std::initializer_list<Arg> args) {
  std::string buf;
  event_prefix(buf, name, category, 'C', pid, tid, ts_us);
  append_args(buf, args);
  buf += '}';
  emit(buf);
}

void ChromeTraceWriter::instant_event(std::string_view name, std::string_view category,
                                      u64 pid, u64 tid, double ts_us,
                                      std::initializer_list<Arg> args) {
  std::string buf;
  event_prefix(buf, name, category, 'i', pid, tid, ts_us);
  buf += ", \"s\": \"t\"";
  append_args(buf, args);
  buf += '}';
  emit(buf);
}

void ChromeTraceWriter::process_name(u64 pid, std::string_view name) {
  std::string buf;
  buf += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
  buf += std::to_string(pid);
  buf += ", \"args\": {\"name\": ";
  buf += json_quote(name);
  buf += "}}";
  emit(buf);
}

void ChromeTraceWriter::thread_name(u64 pid, u64 tid, std::string_view name) {
  std::string buf;
  buf += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
  buf += std::to_string(pid);
  buf += ", \"tid\": ";
  buf += std::to_string(tid);
  buf += ", \"args\": {\"name\": ";
  buf += json_quote(name);
  buf += "}}";
  emit(buf);
}

}  // namespace vasim::obs
