file(REMOVE_RECURSE
  "libvasim_timing.a"
)
