// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: TEP lookup/train, gate simulation, statistical STA, cache
// access, trace generation, and whole-pipeline throughput.
#include <benchmark/benchmark.h>

#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/circuit/sta.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/cache.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

void BM_TepPredict(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  for (Pc pc = 0; pc < 1024; ++pc) tep.train(0x1000 + pc * 4, 0, true, timing::OooStage::kIssueSelect);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tep.predict(0x1000 + (i % 4096) * 4, i, i));
    ++i;
  }
}
BENCHMARK(BM_TepPredict);

void BM_TepTrain(benchmark::State& state) {
  core::TimingErrorPredictor tep;
  u64 i = 0;
  for (auto _ : state) {
    tep.train(0x1000 + (i % 4096) * 4, i, (i & 3) == 0, timing::OooStage::kExecute);
    ++i;
  }
  benchmark::DoNotOptimize(tep.predictions());
}
BENCHMARK(BM_TepTrain);

void BM_GateSimAlu(benchmark::State& state) {
  const circuit::Component alu = circuit::build_simple_alu(32);
  circuit::GateSim sim(&alu.netlist);
  std::vector<u8> in(static_cast<std::size_t>(circuit::input_width(alu)), 0);
  u64 i = 0;
  for (auto _ : state) {
    in[i % in.size()] ^= 1;
    ++i;
    benchmark::DoNotOptimize(sim.evaluate(in));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<u64>(alu.netlist.num_signals()));
}
BENCHMARK(BM_GateSimAlu);

void BM_StatisticalSta(benchmark::State& state) {
  const circuit::Component agen = circuit::build_agen(32, 16);
  const timing::ProcessVariation pv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_statistical(agen.netlist, pv, 8));
  }
}
BENCHMARK(BM_StatisticalSta);

void BM_CacheAccess(benchmark::State& state) {
  cpu::Cache cache(cpu::CacheConfig{32 * 1024, 4, 64, 1});
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_u64() & 0xFFFFF));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_TraceGeneration(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("gcc");
  workload::TraceGenerator gen(prof);
  isa::DynInst d;
  for (auto _ : state) {
    gen.next(d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_PipelineThroughput(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineThroughput)->Unit(benchmark::kMillisecond);

void BM_PipelineWithFaultsAbs(benchmark::State& state) {
  const auto prof = workload::spec2006_profile("sjeng");
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  for (auto _ : state) {
    workload::TraceGenerator gen(prof);
    core::TimingErrorPredictor tep({}, &fm.environment());
    cpu::CoreConfig cfg;
    cpu::Pipeline p(cfg, cpu::scheme_abs(), &gen, &fm, &tep);
    benchmark::DoNotOptimize(p.run(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PipelineWithFaultsAbs)->Unit(benchmark::kMillisecond);

}  // namespace
