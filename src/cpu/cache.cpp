#include "src/cpu/cache.hpp"

#include <stdexcept>

namespace vasim::cpu {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  const u64 lines = cfg.size_bytes / static_cast<u64>(cfg.line_bytes);
  if (lines == 0 || cfg.ways <= 0 || lines % static_cast<u64>(cfg.ways) != 0) {
    throw std::invalid_argument("Cache: size/ways/line mismatch");
  }
  num_sets_ = static_cast<int>(lines / static_cast<u64>(cfg.ways));
  if ((num_sets_ & (num_sets_ - 1)) != 0) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  lines_.resize(static_cast<std::size_t>(num_sets_) * static_cast<std::size_t>(cfg.ways));
}

Cache::Cache(const CacheConfig& cfg, obs::Registry* reg, std::string_view name) : Cache(cfg) {
  if (reg != nullptr) {
    const std::string prefix = "cache." + std::string(name);
    hits_c_ = reg->counter(prefix + ".hits");
    misses_c_ = reg->counter(prefix + ".misses");
  }
}

std::size_t Cache::set_index(Addr addr) const {
  return static_cast<std::size_t>((addr / static_cast<u64>(cfg_.line_bytes)) &
                                  static_cast<u64>(num_sets_ - 1));
}

Addr Cache::tag_of(Addr addr) const {
  return addr / static_cast<u64>(cfg_.line_bytes) / static_cast<u64>(num_sets_);
}

bool Cache::access(Addr addr) {
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(cfg_.ways);
  const Addr tag = tag_of(addr);
  ++use_counter_;
  for (int w = 0; w < cfg_.ways; ++w) {
    Line& line = lines_[base + static_cast<std::size_t>(w)];
    if (line.valid && line.tag == tag) {
      line.lru = use_counter_;
      if (hits_c_.valid()) hits_c_.inc(); else ++hits_;
      return true;
    }
  }
  // Miss: fill LRU way.
  std::size_t victim = base;
  for (int w = 1; w < cfg_.ways; ++w) {
    const std::size_t i = base + static_cast<std::size_t>(w);
    if (!lines_[i].valid) {
      victim = i;
      break;
    }
    if (lines_[i].lru < lines_[victim].lru) victim = i;
  }
  lines_[victim] = Line{tag, true, use_counter_};
  if (misses_c_.valid()) misses_c_.inc(); else ++misses_;
  return false;
}

bool Cache::contains(Addr addr) const {
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(cfg_.ways);
  const Addr tag = tag_of(addr);
  for (int w = 0; w < cfg_.ways; ++w) {
    const Line& line = lines_[base + static_cast<std::size_t>(w)];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void Cache::save_state(snap::Writer& w) const {
  w.put_u64(lines_.size());
  for (const Line& line : lines_) {
    w.put_u64(line.tag);
    w.put_bool(line.valid);
    w.put_u64(line.lru);
  }
  w.put_u64(use_counter_);
  w.put_u64(hits_);
  w.put_u64(misses_);
}

void Cache::restore_state(snap::Reader& r) {
  const u64 n = r.get_u64();
  if (n != lines_.size()) throw snap::SnapshotError("cache geometry mismatch");
  for (Line& line : lines_) {
    line.tag = r.get_u64();
    line.valid = r.get_bool();
    line.lru = r.get_u64();
  }
  use_counter_ = r.get_u64();
  hits_ = r.get_u64();
  misses_ = r.get_u64();
}

MemoryHierarchy::MemoryHierarchy(const CoreConfig& cfg, obs::Registry* reg)
    : l1i_(cfg.l1i, reg, "l1i"), l1d_(cfg.l1d, reg, "l1d"), l2_(cfg.l2, reg, "l2"),
      mem_latency_(cfg.memory_latency), next_line_prefetch_(cfg.l2_next_line_prefetch) {
  if (reg != nullptr) prefetches_c_ = reg->counter("cache.l2.prefetches");
}

void MemoryHierarchy::count_prefetch() {
  if (prefetches_c_.valid()) prefetches_c_.inc(); else ++prefetches_;
}

Cycle MemoryHierarchy::miss_path(Addr addr, Cache& l1) {
  Cycle lat = l1.config().latency;
  if (l1.access(addr)) return lat;
  lat += l2_.config().latency;
  if (l2_.access(addr)) return lat;
  return lat + mem_latency_;
}

Cycle MemoryHierarchy::load_latency(Addr addr) {
  const Cycle lat = miss_path(addr, l1d_);
  if (next_line_prefetch_ && lat > l1d_.config().latency) {
    // Demand miss: pull the next line into L2 (no latency modeled for the
    // prefetch itself; its benefit is the later L2 hit).
    const Addr next = addr + static_cast<Addr>(l1d_.config().line_bytes);
    if (!l2_.contains(next)) {
      l2_.access(next);
      count_prefetch();
    }
  }
  return lat;
}

Cycle MemoryHierarchy::ifetch_latency(Addr pc) { return miss_path(pc, l1i_); }

void MemoryHierarchy::store_commit(Addr addr) {
  // Write-allocate, write-back approximation: touch L1D (and L2 on miss).
  if (!l1d_.access(addr)) l2_.access(addr);
}

void MemoryHierarchy::export_stats(StatSet& stats) const {
  stats.inc("cache.l1i.hits", l1i_.hits());
  stats.inc("cache.l1i.misses", l1i_.misses());
  stats.inc("cache.l1d.hits", l1d_.hits());
  stats.inc("cache.l1d.misses", l1d_.misses());
  stats.inc("cache.l2.hits", l2_.hits());
  stats.inc("cache.l2.misses", l2_.misses());
  stats.inc("cache.l2.prefetches", prefetches_);
}

void MemoryHierarchy::save_state(snap::Writer& w) const {
  l1i_.save_state(w);
  l1d_.save_state(w);
  l2_.save_state(w);
  w.put_u64(prefetches_);
}

void MemoryHierarchy::restore_state(snap::Reader& r) {
  l1i_.restore_state(r);
  l1d_.restore_state(r);
  l2_.restore_state(r);
  prefetches_ = r.get_u64();
}

}  // namespace vasim::cpu
