// Per-PC sensitized-path model.
//
// Supplement S1 of the paper shows that the many dynamic instances of one
// static instruction sensitize strikingly similar logic paths (87-92%
// commonality), so each static PC has a characteristic critical-path delay
// per pipe stage.  We capture that with a deterministic, hash-derived "path
// factor" per PC: the ratio of the PC's mu+2sigma sensitized-path delay to
// the clock period at the nominal (zero-fault) supply.  A PC whose scaled
// factor exceeds 1.0 at a reduced supply suffers a timing violation -- and
// because the factor is a per-PC constant, violations recur and are
// predictable, which is the property the whole paper builds on.
#ifndef VASIM_TIMING_PATH_MODEL_HPP
#define VASIM_TIMING_PATH_MODEL_HPP

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/timing/stage.hpp"
#include "src/timing/voltage.hpp"

namespace vasim::timing {

/// Broad instruction classes that determine which OoO stages a PC's critical
/// path can live in (loads/stores exercise the LSQ CAM, ALU-like ops the
/// functional units).
enum class FaultClass { kAluLike = 0, kMemLike = 1 };

/// Calibration knobs for one workload's path-factor population.
struct PathModelConfig {
  u64 seed = 1;
  /// Target dynamic fraction of OoO-engine instructions violating timing at
  /// the high-fault supply (0.97 V); Table 1 reports 5.6-10.5% per benchmark.
  double p_faulty_high = 0.08;
  /// Target at the low-fault supply (1.04 V); Table 1 reports 1.4-2.3%.
  double p_faulty_low = 0.02;
};

/// Deterministic per-PC path population.
class SensitizedPathModel {
 public:
  SensitizedPathModel(const PathModelConfig& cfg, const VoltageModel& vm);

  /// mu+2sigma path delay of `pc`, as a fraction of the nominal-supply clock
  /// period.  In (0, 0.97]; values above ~0.956 violate at 1.04 V, values
  /// above ~0.90 violate at 0.97 V.
  [[nodiscard]] double path_factor(Pc pc) const;

  /// The OoO stage hosting this PC's critical path (per-PC constant;
  /// distribution skewed towards wakeup/select per Section 3.3.1).
  [[nodiscard]] OooStage faulty_stage(Pc pc, FaultClass cls) const;

  /// Sensitized-path commonality of this PC (S1): fraction of gates toggled
  /// by every dynamic instance among gates toggled by any instance.
  [[nodiscard]] double commonality(Pc pc) const;

  /// True when the deterministic part of the model marks `pc` faulty at
  /// supply scale `delay_scale` (no environmental modulation).
  [[nodiscard]] bool core_faulty(Pc pc, double delay_scale) const {
    return path_factor(pc) * delay_scale > 1.0;
  }

  [[nodiscard]] const PathModelConfig& config() const { return cfg_; }

 private:
  PathModelConfig cfg_;
  // Derived band geometry (see .cpp): fractions of the PC population landing
  // in the always-faulty / modulation-sensitive bands at each supply.
  double band_both_;        // population mass faulting at both reduced supplies
  double band_high_only_;   // mass faulting only at the 0.97 V supply
  double theta_low_;        // 1 / delay_scale(1.04 V)
  double theta_high_;       // 1 / delay_scale(0.97 V)
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_PATH_MODEL_HPP
