#include "src/isa/executor.hpp"

#include <stdexcept>

namespace vasim::isa {

FunctionalCore::FunctionalCore(const Program* program, u64 max_instructions)
    : program_(program), max_instructions_(max_instructions) {}

u64 FunctionalCore::load(Addr a) const {
  const auto it = memory_.find(a & ~7ULL);
  return it == memory_.end() ? 0 : it->second;
}

bool FunctionalCore::next(DynInst& out) {
  if (halted_ || executed_ >= max_instructions_) return false;
  std::size_t idx = 0;
  try {
    idx = program_->index_of(pc_);
  } catch (const std::out_of_range&) {
    halted_ = true;  // fell off the end of text
    return false;
  }
  const Instr& ins = program_->at(idx);

  out = DynInst{};
  out.pc = pc_;
  out.op = op_class(ins.op);
  out.src1 = ins.rs1;
  out.src2 = ins.rs2;
  out.dst = ins.rd;

  const auto r = [&](int reg) { return reg == kNoReg ? 0 : regs_[static_cast<std::size_t>(reg)]; };
  Pc next_pc = pc_ + kInstrBytes;
  u64 result = 0;
  bool writes = ins.rd != kNoReg;

  switch (ins.op) {
    case Opcode::kNop: break;
    case Opcode::kHalt:
      halted_ = true;
      writes = false;
      break;
    case Opcode::kAdd: result = r(ins.rs1) + r(ins.rs2); break;
    case Opcode::kSub: result = r(ins.rs1) - r(ins.rs2); break;
    case Opcode::kAnd: result = r(ins.rs1) & r(ins.rs2); break;
    case Opcode::kOr: result = r(ins.rs1) | r(ins.rs2); break;
    case Opcode::kXor: result = r(ins.rs1) ^ r(ins.rs2); break;
    case Opcode::kSlt:
      result = static_cast<i64>(r(ins.rs1)) < static_cast<i64>(r(ins.rs2)) ? 1 : 0;
      break;
    case Opcode::kShl: result = r(ins.rs1) << (r(ins.rs2) & 63); break;
    case Opcode::kShr: result = r(ins.rs1) >> (r(ins.rs2) & 63); break;
    case Opcode::kAddi: result = r(ins.rs1) + static_cast<u64>(ins.imm); break;
    case Opcode::kAndi: result = r(ins.rs1) & static_cast<u64>(ins.imm); break;
    case Opcode::kOri: result = r(ins.rs1) | static_cast<u64>(ins.imm); break;
    case Opcode::kLui: result = static_cast<u64>(ins.imm) << 16; break;
    case Opcode::kMul: result = r(ins.rs1) * r(ins.rs2); break;
    case Opcode::kDiv: {
      const u64 d = r(ins.rs2);
      result = d == 0 ? ~0ULL : r(ins.rs1) / d;
      break;
    }
    case Opcode::kLd: {
      out.mem_addr = r(ins.rs1) + static_cast<u64>(ins.imm);
      result = load(out.mem_addr);
      break;
    }
    case Opcode::kSt: {
      out.mem_addr = r(ins.rs1) + static_cast<u64>(ins.imm);
      store(out.mem_addr, r(ins.rs2));
      writes = false;
      break;
    }
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: {
      bool take = false;
      const i64 a = static_cast<i64>(r(ins.rs1));
      const i64 b = static_cast<i64>(r(ins.rs2));
      switch (ins.op) {
        case Opcode::kBeq: take = a == b; break;
        case Opcode::kBne: take = a != b; break;
        case Opcode::kBlt: take = a < b; break;
        default: take = a >= b; break;
      }
      out.taken = take;
      if (take) next_pc = Program::pc_of(static_cast<std::size_t>(ins.imm));
      writes = false;
      break;
    }
    case Opcode::kJmp:
      out.taken = true;
      next_pc = Program::pc_of(static_cast<std::size_t>(ins.imm));
      writes = false;
      break;
  }

  if (writes && ins.rd != 0) regs_[static_cast<std::size_t>(ins.rd)] = result;
  if (ins.rd == 0) out.dst = kNoReg;  // r0 writes are architectural no-ops
  out.next_pc = next_pc;
  pc_ = next_pc;
  ++executed_;
  return true;
}

}  // namespace vasim::isa
