// Lightweight statistics registry used by the pipeline and schemes.
//
// A StatSet owns named counters and scalar gauges; Histogram provides
// bucketed distributions (e.g. dependence distances, replay penalties).
#ifndef VASIM_COMMON_STATS_HPP
#define VASIM_COMMON_STATS_HPP

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace vasim {

/// Named monotonic counters plus named floating-point scalars.
class StatSet {
 public:
  /// Adds `delta` to counter `name` (creates it at zero on first use).
  void inc(const std::string& name, u64 delta = 1) { counters_[name] += delta; }

  /// Sets scalar `name` to `value`.
  void set(const std::string& name, double value) { scalars_[name] = value; }

  /// Counter value; zero when never incremented.
  [[nodiscard]] u64 count(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Scalar value; zero when never set.
  [[nodiscard]] double scalar(const std::string& name) const {
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, u64>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, double>& scalars() const { return scalars_; }

  void clear() {
    counters_.clear();
    scalars_.clear();
  }

  /// Counter-wise difference (this - base); scalars keep this object's
  /// values.  Used to exclude a warmup window from measurements.
  [[nodiscard]] StatSet diff(const StatSet& base) const;

  /// Multi-line "name = value" dump, sorted by name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, double> scalars_;
};

/// Fixed-width-bucket histogram over [lo, hi) with under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value, u64 weight = 1);

  [[nodiscard]] u64 total() const { return total_; }
  [[nodiscard]] double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return total_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return total_ ? max_ : 0.0; }
  /// Approximate quantile from bucket interpolation, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<u64>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<u64> counts_;
  u64 underflow_ = 0;
  u64 overflow_ = 0;
  u64 total_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Running mean/stddev accumulator (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }
  [[nodiscard]] u64 n() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vasim

#endif  // VASIM_COMMON_STATS_HPP
