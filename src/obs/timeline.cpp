#include "src/obs/timeline.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "src/obs/trace.hpp"

namespace vasim::obs {
namespace {

constexpr u32 kTimelineSchema = 1;

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

Timeline::Timeline(const Config& cfg, const Registry* registry)
    : reg_(registry),
      interval_(cfg.interval == 0 ? 1 : cfg.interval),
      phase_delta_(cfg.phase_delta) {
  if (reg_ != nullptr) {
    names_.reserve(reg_->num_counters());
    prev_.reserve(reg_->num_counters());
    for (std::size_t i = 0; i < reg_->num_counters(); ++i) {
      names_.push_back(reg_->counter_name(i));
      prev_.push_back(reg_->counter_at(i));
    }
  }
  col_cpi_.fill(-1);
  for (std::size_t c = 0; c < names_.size(); ++c) {
    const std::string& n = names_[c];
    if (n == "fault.actual") col_fault_actual_ = static_cast<int>(c);
    if (n == "fault.handled") col_fault_handled_ = static_cast<int>(c);
    if (n == "dvfs.wall_units") col_wall_units_ = static_cast<int>(c);
    if (n.rfind("fault.stage.", 0) == 0) stage_cols_.push_back(c);
    for (int i = 0; i < kNumCpiCauses; ++i) {
      if (n == "cpi." + std::string(to_string(static_cast<CpiCause>(i)))) {
        col_cpi_[static_cast<std::size_t>(i)] = static_cast<int>(c);
      }
    }
  }
  reserve(cfg.capacity_hint == 0 ? 1 : cfg.capacity_hint);
}

void Timeline::reserve(std::size_t windows) {
  cycle_end_.reserve(windows);
  committed_end_.reserve(windows);
  phase_.reserve(windows);
  deltas_.reserve(windows * names_.size());
}

void Timeline::push_window(Cycle now, u64 committed) {
  const Cycle dc = now - last_cycle_;
  const u64 di = committed - last_committed_;
  if (dc == 0 && di == 0) return;  // nothing elapsed: no window
  cycle_end_.push_back(now);
  committed_end_.push_back(committed);
  for (std::size_t c = 0; c < names_.size(); ++c) {
    const u64 cur = reg_->counter_at(c);
    deltas_.push_back(cur - prev_[c]);
    prev_[c] = cur;
  }
  const double ipc_w = dc == 0 ? 0.0 : static_cast<double>(di) / static_cast<double>(dc);
  bool changed = false;
  const std::size_t w = cycle_end_.size() - 1;
  if (w > 0) {
    const double prev_ipc = ipc(w - 1);
    changed = std::fabs(ipc_w - prev_ipc) > phase_delta_ * std::max(prev_ipc, 1e-9);
  }
  phase_.push_back(changed ? 1 : 0);
  last_cycle_ = now;
  last_committed_ = committed;
}

void Timeline::sample(Cycle now, u64 committed) { push_window(now, committed); }

void Timeline::mark_measurement(Cycle now, u64 committed) {
  push_window(now, committed);
  measurement_start_ = cycle_end_.size();
}

void Timeline::rebaseline(Cycle now, u64 committed) {
  if (!cycle_end_.empty()) {
    throw std::logic_error("Timeline::rebaseline on a non-empty timeline");
  }
  for (std::size_t c = 0; c < names_.size(); ++c) prev_[c] = reg_->counter_at(c);
  last_cycle_ = now;
  last_committed_ = committed;
  base_cycle_ = now;
  base_committed_ = committed;
}

void Timeline::finalize(Cycle now, u64 committed) {
  if (finalized_) return;
  push_window(now, committed);
  finalized_ = true;
}

u64 Timeline::delta_of(std::size_t w, std::string_view name) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return delta(w, c);
  }
  return 0;
}

double Timeline::ipc(std::size_t w) const {
  const Cycle dc = cycle_delta(w);
  return dc == 0 ? 0.0
                 : static_cast<double>(committed_delta(w)) / static_cast<double>(dc);
}

double Timeline::violation_rate(std::size_t w) const {
  const u64 di = committed_delta(w);
  if (col_fault_actual_ < 0 || di == 0) return 0.0;
  return static_cast<double>(delta(w, static_cast<std::size_t>(col_fault_actual_))) /
         static_cast<double>(di);
}

double Timeline::predictor_accuracy(std::size_t w) const {
  if (col_fault_actual_ < 0 || col_fault_handled_ < 0) return 0.0;
  const u64 actual = delta(w, static_cast<std::size_t>(col_fault_actual_));
  if (actual == 0) return 0.0;
  return static_cast<double>(delta(w, static_cast<std::size_t>(col_fault_handled_))) /
         static_cast<double>(actual);
}

double Timeline::period_permille(std::size_t w) const {
  const Cycle dc = cycle_delta(w);
  if (col_wall_units_ < 0 || dc == 0) return 0.0;
  return static_cast<double>(delta(w, static_cast<std::size_t>(col_wall_units_))) /
         static_cast<double>(dc);
}

double Timeline::recovery_overhead(std::size_t w) const {
  const CpiStack st = cpi_window(w);
  const u64 total = st.total();
  if (total == 0) return 0.0;
  const u64 lost = st[CpiCause::kEpStall] + st[CpiCause::kReplay] + st[CpiCause::kSquashRefetch];
  return static_cast<double>(lost) / static_cast<double>(total);
}

CpiStack Timeline::cpi_window(std::size_t w) const {
  CpiStack st;
  for (int i = 0; i < kNumCpiCauses; ++i) {
    const int c = col_cpi_[static_cast<std::size_t>(i)];
    if (c >= 0) st.slots[static_cast<std::size_t>(i)] = delta(w, static_cast<std::size_t>(c));
  }
  return st;
}

void Timeline::save(snap::Writer& w) const {
  w.put_u32(kTimelineSchema);
  w.put_u64(interval_);
  w.put_f64(phase_delta_);
  w.put_u64(base_cycle_);
  w.put_u64(base_committed_);
  w.put_u64(static_cast<u64>(measurement_start_));
  w.put_u32(static_cast<u32>(names_.size()));
  for (const std::string& n : names_) w.put_str(n);
  w.put_u32(static_cast<u32>(windows()));
  for (std::size_t i = 0; i < windows(); ++i) {
    w.put_u64(cycle_end_[i]);
    w.put_u64(committed_end_[i]);
    w.put_u8(phase_[i]);
  }
  for (const u64 d : deltas_) w.put_u64(d);
}

Timeline Timeline::load(snap::Reader& r) {
  const u32 schema = r.get_u32();
  if (schema != kTimelineSchema) {
    throw std::runtime_error("timeline blob schema " + std::to_string(schema) +
                             " (this build reads " + std::to_string(kTimelineSchema) + ")");
  }
  Timeline t;
  t.interval_ = r.get_u64();
  t.phase_delta_ = r.get_f64();
  t.base_cycle_ = r.get_u64();
  t.base_committed_ = r.get_u64();
  t.measurement_start_ = static_cast<std::size_t>(r.get_u64());
  const u32 nc = r.get_u32();
  t.names_.reserve(nc);
  for (u32 i = 0; i < nc; ++i) t.names_.push_back(r.get_str());
  const u32 nw = r.get_u32();
  t.reserve(nw);
  for (u32 i = 0; i < nw; ++i) {
    t.cycle_end_.push_back(r.get_u64());
    t.committed_end_.push_back(r.get_u64());
    t.phase_.push_back(r.get_u8());
  }
  t.deltas_.resize(static_cast<std::size_t>(nw) * nc);
  for (u64& d : t.deltas_) d = r.get_u64();
  if (nw > 0) {
    t.last_cycle_ = t.cycle_end_.back();
    t.last_committed_ = t.committed_end_.back();
  }
  // Re-resolve the derived-series columns against the loaded names.
  t.col_cpi_.fill(-1);
  for (std::size_t c = 0; c < t.names_.size(); ++c) {
    const std::string& n = t.names_[c];
    if (n == "fault.actual") t.col_fault_actual_ = static_cast<int>(c);
    if (n == "fault.handled") t.col_fault_handled_ = static_cast<int>(c);
    if (n == "dvfs.wall_units") t.col_wall_units_ = static_cast<int>(c);
    if (n.rfind("fault.stage.", 0) == 0) t.stage_cols_.push_back(c);
    for (int i = 0; i < kNumCpiCauses; ++i) {
      if (n == "cpi." + std::string(to_string(static_cast<CpiCause>(i)))) {
        t.col_cpi_[static_cast<std::size_t>(i)] = static_cast<int>(c);
      }
    }
  }
  t.finalized_ = true;
  return t;
}

void Timeline::write_json(std::ostream& os, bool include_counters) const {
  const std::size_t n = windows();
  os << "{\"kind\": \"vasim_timeline\", \"schema_version\": " << kTimelineSchema
     << ", \"interval\": " << interval_ << ", \"windows\": " << n
     << ", \"measurement_start\": " << measurement_start_;
  const auto u64_array = [&](const char* key, auto&& get) {
    os << ", \"" << key << "\": [";
    for (std::size_t w = 0; w < n; ++w) os << (w ? ", " : "") << get(w);
    os << ']';
  };
  const auto series = [&](const char* key, auto&& get) {
    os << '"' << key << "\": [";
    for (std::size_t w = 0; w < n; ++w) os << (w ? ", " : "") << json_num(get(w));
    os << ']';
  };
  u64_array("cycle_end", [&](std::size_t w) { return cycle_end_[w]; });
  u64_array("committed_end", [&](std::size_t w) { return committed_end_[w]; });
  u64_array("phase_change", [&](std::size_t w) { return static_cast<int>(phase_[w]); });
  os << ", \"series\": {";
  series("ipc", [&](std::size_t w) { return ipc(w); });
  os << ", ";
  series("violation_rate", [&](std::size_t w) { return violation_rate(w); });
  os << ", ";
  series("predictor_accuracy", [&](std::size_t w) { return predictor_accuracy(w); });
  os << ", ";
  series("recovery_overhead", [&](std::size_t w) { return recovery_overhead(w); });
  // Adaptive-clock runs only: the window-averaged period in permille of
  // nominal.  Absent on static runs so their JSON stays byte-identical.
  if (has_period_series()) {
    os << ", ";
    series("period_permille", [&](std::size_t w) { return period_permille(w); });
  }
  os << ", \"cpi\": {";
  for (int i = 0; i < kNumCpiCauses; ++i) {
    if (i) os << ", ";
    const auto cause = static_cast<CpiCause>(i);
    // Width-free attribution: cause CPI = (slot share) * (window CPI).
    series(std::string(to_string(cause)).c_str(), [&](std::size_t w) {
      const u64 di = committed_delta(w);
      const CpiStack st = cpi_window(w);
      const u64 total = st.total();
      if (di == 0 || total == 0) return 0.0;
      const double window_cpi =
          static_cast<double>(cycle_delta(w)) / static_cast<double>(di);
      return static_cast<double>(st[cause]) / static_cast<double>(total) * window_cpi;
    });
  }
  os << "}}";
  if (!stage_cols_.empty()) {
    os << ", \"stage_violation_rate\": {";
    bool first = true;
    for (const std::size_t c : stage_cols_) {
      if (!first) os << ", ";
      first = false;
      series(names_[c].substr(std::string("fault.stage.").size()).c_str(), [&](std::size_t w) {
        const u64 di = committed_delta(w);
        return di == 0 ? 0.0
                       : static_cast<double>(delta(w, c)) / static_cast<double>(di);
      });
    }
    os << '}';
  }
  if (include_counters) {
    os << ", \"counters\": {";
    bool first = true;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (!first) os << ", ";
      first = false;
      os << json_quote(names_[c]) << ": [";
      for (std::size_t w = 0; w < n; ++w) os << (w ? ", " : "") << delta(w, c);
      os << ']';
    }
    os << '}';
  }
  os << '}';
}

void Timeline::write_csv(std::ostream& os) const {
  os << "window,cycle_end,committed_end,phase_change,ipc,violation_rate,"
        "predictor_accuracy,recovery_overhead";
  for (const std::string& nm : names_) os << ',' << nm;
  os << '\n';
  for (std::size_t w = 0; w < windows(); ++w) {
    os << w << ',' << cycle_end_[w] << ',' << committed_end_[w] << ','
       << static_cast<int>(phase_[w]) << ',' << json_num(ipc(w)) << ','
       << json_num(violation_rate(w)) << ',' << json_num(predictor_accuracy(w)) << ','
       << json_num(recovery_overhead(w));
    for (std::size_t c = 0; c < names_.size(); ++c) os << ',' << delta(w, c);
    os << '\n';
  }
}

void Timeline::append_counter_tracks(ChromeTraceWriter& trace, u64 pid, u64 tid,
                                     const std::string& prefix, double ts0_us,
                                     double us_per_cycle) const {
  for (std::size_t w = 0; w < windows(); ++w) {
    const double ts = ts0_us + static_cast<double>(cycle_end_[w]) * us_per_cycle;
    trace.counter_event(prefix + "ipc", "timeline", pid, tid, ts,
                        {{"ipc", json_num(ipc(w))}});
    trace.counter_event(prefix + "violation_rate", "timeline", pid, tid, ts,
                        {{"rate", json_num(violation_rate(w))}});
    trace.counter_event(prefix + "predictor_accuracy", "timeline", pid, tid, ts,
                        {{"accuracy", json_num(predictor_accuracy(w))}});
    trace.counter_event(prefix + "recovery_overhead", "timeline", pid, tid, ts,
                        {{"fraction", json_num(recovery_overhead(w))}});
    if (has_period_series()) {
      trace.counter_event(prefix + "period_permille", "timeline", pid, tid, ts,
                          {{"permille", json_num(period_permille(w))}});
    }
    const CpiStack st = cpi_window(w);
    const u64 di = committed_delta(w);
    const u64 total = st.total();
    if (di != 0 && total != 0) {
      const double window_cpi =
          static_cast<double>(cycle_delta(w)) / static_cast<double>(di);
      const auto cpi_of = [&](CpiCause c) {
        return json_num(static_cast<double>(st[c]) / static_cast<double>(total) * window_cpi);
      };
      trace.counter_event(prefix + "cpi_stack", "timeline", pid, tid, ts,
                          {{"base", cpi_of(CpiCause::kBase)},
                           {"frontend", cpi_of(CpiCause::kFrontend)},
                           {"data_dep", cpi_of(CpiCause::kDataDep)},
                           {"memory", cpi_of(CpiCause::kMemory)},
                           {"slot_freeze", cpi_of(CpiCause::kSlotFreeze)},
                           {"delayed_bcast", cpi_of(CpiCause::kDelayedBroadcast)},
                           {"ep_stall", cpi_of(CpiCause::kEpStall)},
                           {"replay", cpi_of(CpiCause::kReplay)},
                           {"squash_refetch", cpi_of(CpiCause::kSquashRefetch)}});
    }
  }
}

}  // namespace vasim::obs
