// vasim command-line driver.
//
// Usage:
//   vasim list
//       List the available benchmark profiles and schemes.
//   vasim run --bench <name> --scheme <name> [--vdd V] [--instr N]
//             [--warmup N] [--predictor tep|mre|tvp] [--kanata FILE]
//             [--trace FILE] [--stats] [--csv] [--cpi]
//       Run one simulation and print a summary (or CSV row / full stats).
//       --cpi adds the per-cause commit-slot (CPI stack) table; --trace
//       writes per-instruction Chrome-trace JSON for Perfetto.
//   vasim sweep --bench <name>|all [--instr N] [--warmup N] [--jobs N]
//               [--json FILE] [--trace FILE] [--cpi] [--progress]
//       Run every scheme at both faulty supplies for one benchmark (or the
//       whole suite), fanned out over a thread pool (VASIM_JOBS or --jobs;
//       results are deterministic at any worker count), optionally dumping
//       the machine-readable JSON result sink to FILE, a Chrome-trace span
//       per job to --trace, per-scheme CPI stacks with --cpi, and a live
//       done/total + ETA line on stderr with --progress.
//   vasim record --bench <name> --out FILE [--instr N]
//       Capture a committed-path trace to a vasim-trace file.
//   vasim replay --trace FILE --scheme <name> [--vdd V] [--instr N]
//       Drive the pipeline from a recorded (or external) trace file.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/table.hpp"
#include "src/core/runner.hpp"
#include "src/core/sweep.hpp"
#include "src/cpu/observer.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/trace.hpp"
#include "src/workload/trace_file.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return options.count(key) != 0; }
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return std::nullopt;
    key = key.substr(2);
    if (key == "stats" || key == "csv" || key == "cpi" || key == "progress") {
      a.options[key] = "1";
    } else {
      if (i + 1 >= argc) return std::nullopt;
      a.options[key] = argv[++i];
    }
  }
  return a;
}

int usage() {
  std::cerr << "usage:\n"
            << "  vasim list\n"
            << "  vasim run --bench <name> --scheme "
               "fault-free|razor|ep|abs|ffs|cds [--vdd V]\n"
            << "            [--instr N] [--warmup N] [--predictor tep|mre|tvp]\n"
            << "            [--kanata FILE] [--trace FILE] [--stats] [--csv] [--cpi]\n"
            << "  vasim sweep --bench <name>|all [--instr N] [--warmup N] [--jobs N]\n"
            << "              [--json FILE] [--trace FILE] [--cpi] [--progress]\n";
  return 2;
}

int cmd_list() {
  TextTable t({"benchmark", "paper-IPC", "FR%@0.97", "FR%@1.04"});
  for (const auto& p : workload::spec2006_profiles()) {
    t.add_row({p.name, TextTable::fmt(p.paper_ipc, 2), TextTable::fmt(p.fr_high_pct, 2),
               TextTable::fmt(p.fr_low_pct, 2)});
  }
  std::cout << t.render("SPEC2006-like benchmark profiles") << "\n";
  std::cout << "schemes: fault-free razor ep abs ffs cds\n"
            << "supplies: 1.10 (fault-free) 1.04 (low FR) 0.97 (high FR)\n";
  return 0;
}

core::RunnerConfig runner_config(const Args& args) {
  core::RunnerConfig rc;
  rc.instructions = std::strtoull(args.get("instr", "150000").c_str(), nullptr, 10);
  rc.warmup = std::strtoull(args.get("warmup", "150000").c_str(), nullptr, 10);
  const std::string pred = args.get("predictor", "tep");
  if (pred == "mre") {
    rc.predictor = core::PredictorKind::kMre;
  } else if (pred == "tvp") {
    rc.predictor = core::PredictorKind::kTvp;
  }
  return rc;
}

void print_result(const core::RunResult& r, const core::RunResult* baseline, bool csv) {
  if (csv) {
    // Columns mirror the sweep JSON schema (docs/sweep.md) field for field.
    std::cout << r.benchmark << "," << r.scheme << "," << r.vdd << "," << r.committed << ","
              << r.cycles << "," << TextTable::fmt(r.ipc, 4) << ","
              << TextTable::fmt(r.fault_rate_pct, 3) << "," << r.replays << ","
              << TextTable::fmt(r.predictor_accuracy, 4) << ","
              << TextTable::fmt(r.energy.total_nj(), 1) << ","
              << TextTable::fmt(r.energy.edp, 0) << "\n";
    return;
  }
  std::cout << r.benchmark << " / " << r.scheme << " @ " << TextTable::fmt(r.vdd, 2)
            << " V: IPC " << TextTable::fmt(r.ipc) << ", FR " << TextTable::fmt(r.fault_rate_pct, 2)
            << "%, replays " << TextTable::fmt(r.replays, 0) << ", energy "
            << TextTable::fmt(r.energy.total_nj(), 1) << " nJ\n";
  if (baseline != nullptr) {
    const core::Overheads o = core::overhead_vs(*baseline, r);
    std::cout << "  vs fault-free: perf overhead " << TextTable::fmt(o.perf_pct, 2)
              << "%, ED overhead " << TextTable::fmt(o.ed_pct, 2) << "%\n";
  }
}

void print_cpi_table(const std::string& title, const obs::CpiStack& cpi, int commit_width,
                     u64 committed) {
  TextTable t({"cause", "slots", "cpi", "share%"});
  const u64 total = cpi.total();
  for (int c = 0; c < obs::kNumCpiCauses; ++c) {
    const auto cause = static_cast<obs::CpiCause>(c);
    const u64 slots = cpi[cause];
    if (slots == 0 && cause != obs::CpiCause::kBase) continue;
    t.add_row({std::string(obs::to_string(cause)), std::to_string(slots),
               TextTable::fmt(cpi.cpi_of(cause, commit_width, committed), 4),
               TextTable::fmt(total == 0 ? 0.0
                                         : static_cast<double>(slots) /
                                               static_cast<double>(total) * 100.0,
                              1)});
  }
  std::cout << t.render("CPI stack: " + title) << "\n";
}

int cmd_run(const Args& args) {
  if (!args.has("bench") || !args.has("scheme")) return usage();
  const auto scheme = core::scheme_by_name(args.get("scheme", ""));
  if (!scheme) {
    std::cerr << "unknown scheme '" << args.get("scheme", "") << "'\n";
    return 2;
  }
  workload::BenchmarkProfile prof;
  try {
    prof = workload::spec2006_profile(args.get("bench", ""));
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double vdd = std::strtod(args.get("vdd", "0.97").c_str(), nullptr);
  const core::RunnerConfig rc = runner_config(args);
  const core::ExperimentRunner runner(rc);

  if (args.has("kanata") || args.has("trace")) {
    // Trace dumps need a hand-built pipeline to attach observers; both
    // writers can ride the same run through the ObserverMux.
    workload::TraceGenerator gen(prof);
    timing::PathModelConfig pcfg;
    pcfg.seed = prof.seed;
    pcfg.p_faulty_high = prof.fr_high_pct / 100.0 * prof.fr_calib_high;
    pcfg.p_faulty_low = prof.fr_low_pct / 100.0 * prof.fr_calib_low;
    const timing::FaultModel fm(pcfg, vdd);
    core::TimingErrorPredictor tep(rc.tep, &fm.environment());
    cpu::Pipeline pipe(rc.core, *scheme, &gen, &fm,
                       scheme->use_predictor ? &tep : nullptr);
    std::unique_ptr<std::ofstream> kanata_out;
    std::unique_ptr<cpu::KanataTraceWriter> kanata;
    if (args.has("kanata")) {
      kanata_out = std::make_unique<std::ofstream>(args.get("kanata", "trace.kanata"));
      kanata = std::make_unique<cpu::KanataTraceWriter>(kanata_out.get(), 20'000);
      pipe.add_observer(kanata.get());
    }
    std::unique_ptr<std::ofstream> trace_out;
    std::unique_ptr<obs::ChromeTraceWriter> trace;
    std::unique_ptr<cpu::TraceObserver> trace_obs;
    if (args.has("trace")) {
      trace_out = std::make_unique<std::ofstream>(args.get("trace", "trace.json"));
      trace = std::make_unique<obs::ChromeTraceWriter>(trace_out.get());
      trace_obs = std::make_unique<cpu::TraceObserver>(trace.get(), 20'000);
      pipe.add_observer(trace_obs.get());
    }
    const cpu::PipelineResult pr = pipe.run(rc.instructions, rc.warmup);
    std::cout << "committed " << pr.committed << " in " << pr.cycles << " cycles (IPC "
              << TextTable::fmt(pr.ipc()) << ")\n";
    if (kanata) {
      std::cout << "Kanata trace with " << kanata->instructions_logged()
                << " instructions written to " << args.get("kanata", "") << "\n";
    }
    if (trace) {
      trace->finish();
      std::cout << "Chrome trace with " << trace_obs->instructions_traced()
                << " instructions written to " << args.get("trace", "")
                << " (open in ui.perfetto.dev)\n";
    }
    if (args.has("cpi")) {
      print_cpi_table(prof.name + "/" + scheme->name, pr.cpi, rc.core.commit_width,
                      pr.committed);
    }
    return 0;
  }

  const core::RunResult r = scheme->name == "fault-free"
                                ? runner.run_fault_free(prof, vdd)
                                : runner.run(prof, *scheme, vdd);
  std::optional<core::RunResult> baseline;
  if (scheme->name != "fault-free") baseline = runner.run_fault_free(prof, vdd);
  if (args.has("csv")) {
    std::cout << "benchmark,scheme,vdd,committed,cycles,ipc,fault_rate_pct,replays,"
                 "predictor_accuracy,energy_nj,edp\n";
  }
  print_result(r, baseline ? &*baseline : nullptr, args.has("csv"));
  if (args.has("stats")) std::cout << "\n" << r.stats.to_string();
  if (args.has("cpi")) {
    print_cpi_table(prof.name + "/" + scheme->name, r.cpi, rc.core.commit_width, r.committed);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  if (!args.has("bench")) return usage();
  std::vector<workload::BenchmarkProfile> profiles;
  const std::string which = args.get("bench", "");
  if (which == "all") {
    profiles = workload::spec2006_profiles();
  } else {
    try {
      profiles.push_back(workload::spec2006_profile(which));
    } catch (const std::out_of_range& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  const std::size_t workers =
      args.has("jobs") ? std::strtoull(args.get("jobs", "1").c_str(), nullptr, 10)
                       : core::sweep_workers_from_env();
  core::SweepRunner sweeper(runner_config(args), workers);
  if (args.has("progress")) sweeper.set_progress(true);

  // (fault-free + every scheme) x both faulty supplies per profile, one
  // thread-pooled grid; results come back in submission order.
  const double vdds[] = {timing::SupplyPoints::kLowFault, timing::SupplyPoints::kHighFault};
  std::vector<core::SweepJob> jobs;
  for (const auto& prof : profiles) {
    for (const double vdd : vdds) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      for (const auto& scheme : core::comparative_schemes()) {
        jobs.push_back({prof, scheme, vdd, std::nullopt});
      }
    }
  }
  const core::SweepReport report = sweeper.run(jobs);

  const int commit_width = sweeper.config().core.commit_width;
  std::size_t at = 0;
  for (const auto& prof : profiles) {
    for (const double vdd : vdds) {
      const std::size_t base_at = at;
      const core::RunResult& base = report.jobs[at++].result;
      TextTable t({"scheme", "IPC", "FR%", "replays", "perf-ovh%", "ED-ovh%"});
      t.add_row({"fault-free", TextTable::fmt(base.ipc), "-", "-", "0.00", "0.00"});
      for (std::size_t s = 0; s < core::comparative_schemes().size(); ++s) {
        const core::RunResult& r = report.jobs[at++].result;
        const core::Overheads o = core::overhead_vs(base, r);
        t.add_row({r.scheme, TextTable::fmt(r.ipc), TextTable::fmt(r.fault_rate_pct, 2),
                   TextTable::fmt(r.replays, 0), TextTable::fmt(o.perf_pct, 2),
                   TextTable::fmt(o.ed_pct, 2)});
      }
      std::cout << t.render(prof.name + " @ " + TextTable::fmt(vdd, 2) + " V") << "\n";
      if (args.has("cpi")) {
        // One row per scheme, one column per cause: where every lost commit
        // slot went, in cycles-per-instruction units.
        std::vector<std::string> header = {"scheme"};
        for (int c = 0; c < obs::kNumCpiCauses; ++c) {
          header.emplace_back(obs::to_string(static_cast<obs::CpiCause>(c)));
        }
        header.emplace_back("cpi");
        TextTable ct(header);
        for (std::size_t j = base_at; j < at; ++j) {
          const core::RunResult& r = report.jobs[j].result;
          std::vector<std::string> row = {r.scheme};
          for (int c = 0; c < obs::kNumCpiCauses; ++c) {
            row.push_back(TextTable::fmt(
                r.cpi.cpi_of(static_cast<obs::CpiCause>(c), commit_width, r.committed), 3));
          }
          row.push_back(TextTable::fmt(
              r.committed == 0 ? 0.0
                               : static_cast<double>(r.cycles) / static_cast<double>(r.committed),
              3));
          ct.add_row(row);
        }
        std::cout << ct.render("CPI stacks: " + prof.name + " @ " + TextTable::fmt(vdd, 2) + " V")
                  << "\n";
      }
    }
  }
  std::cout << report.jobs.size() << " runs in " << TextTable::fmt(report.wall_ms, 0)
            << " ms on " << report.workers << " worker(s)\n";

  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::cerr << "cannot open " << args.get("json", "") << "\n";
      return 2;
    }
    core::write_sweep_json(out, "cli_sweep", report);
    std::cout << "JSON results written to " << args.get("json", "") << "\n";
  }
  if (args.has("trace")) {
    std::ofstream out(args.get("trace", ""));
    if (!out) {
      std::cerr << "cannot open " << args.get("trace", "") << "\n";
      return 2;
    }
    core::write_chrome_trace(out, report);
    std::cout << "Chrome trace written to " << args.get("trace", "")
              << " (open in ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace

namespace {

int cmd_record(const Args& args) {
  if (!args.has("bench") || !args.has("out")) return usage();
  workload::BenchmarkProfile prof;
  try {
    prof = workload::spec2006_profile(args.get("bench", ""));
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const u64 n = std::strtoull(args.get("instr", "100000").c_str(), nullptr, 10);
  workload::TraceGenerator gen(prof);
  const auto trace = workload::record_trace(gen, n);
  std::ofstream out(args.get("out", ""));
  if (!out) {
    std::cerr << "cannot open " << args.get("out", "") << "\n";
    return 2;
  }
  workload::write_trace(out, trace);
  std::cout << "wrote " << trace.size() << " instructions to " << args.get("out", "") << "\n";
  return 0;
}

int cmd_replay(const Args& args) {
  if (!args.has("trace") || !args.has("scheme")) return usage();
  const auto scheme = core::scheme_by_name(args.get("scheme", ""));
  if (!scheme) {
    std::cerr << "unknown scheme '" << args.get("scheme", "") << "'\n";
    return 2;
  }
  std::ifstream in(args.get("trace", ""));
  if (!in) {
    std::cerr << "cannot open " << args.get("trace", "") << "\n";
    return 2;
  }
  std::unique_ptr<workload::TraceFileSource> src;
  try {
    src = std::make_unique<workload::TraceFileSource>(in, /*loop=*/true);
  } catch (const workload::TraceFormatError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double vdd = std::strtod(args.get("vdd", "0.97").c_str(), nullptr);
  const core::RunnerConfig rc = runner_config(args);
  timing::PathModelConfig pcfg;
  pcfg.seed = std::strtoull(args.get("seed", "2013").c_str(), nullptr, 10);
  const timing::FaultModel fm(pcfg, vdd);
  core::TimingErrorPredictor tep(rc.tep, &fm.environment());
  cpu::Pipeline pipe(rc.core, *scheme, src.get(), &fm,
                     scheme->use_predictor ? &tep : nullptr);
  const cpu::PipelineResult pr = pipe.run(rc.instructions, rc.warmup);
  std::cout << "trace of " << src->size() << " instructions (looped): committed "
            << pr.committed << " in " << pr.cycles << " cycles (IPC "
            << TextTable::fmt(pr.ipc()) << "), " << pr.stats.count("fault.actual")
            << " faults, " << pr.stats.count("fault.replays") << " replays\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  if (args->command == "list") return cmd_list();
  if (args->command == "run") return cmd_run(*args);
  if (args->command == "sweep") return cmd_sweep(*args);
  if (args->command == "record") return cmd_record(*args);
  if (args->command == "replay") return cmd_replay(*args);
  return usage();
}
