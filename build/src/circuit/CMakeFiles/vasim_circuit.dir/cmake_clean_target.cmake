file(REMOVE_RECURSE
  "libvasim_circuit.a"
)
