file(REMOVE_RECURSE
  "libvasim_common.a"
)
