#include "src/cpu/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/isa/program.hpp"

namespace vasim::cpu {
namespace {

constexpr u32 kFrontendCap = 64;

}  // namespace

Pipeline::Pipeline(const CoreConfig& cfg, const SchemeConfig& scheme,
                   isa::InstructionSource* source, const timing::FaultModel* fault_model,
                   FaultPredictor* predictor)
    : cfg_(cfg), scheme_(scheme), source_(source), fault_model_(fault_model),
      predictor_(predictor), memory_(cfg, &registry_), bpred_(cfg), fus_(cfg, &registry_) {
  validate_core_config(cfg_);
  delay_mode_ = cfg_.sched_kernel == SchedKernel::kDelayQueue;
  rename_map_.resize(isa::kNumArchRegs);
  for (int a = 0; a < isa::kNumArchRegs; ++a) rename_map_[static_cast<std::size_t>(a)] = a;
  free_list_.reserve(static_cast<std::size_t>(cfg_.phys_regs));
  for (int p = cfg_.phys_regs - 1; p >= isa::kNumArchRegs; --p) free_list_.push_back(p);
  phys_ready_.assign(static_cast<std::size_t>(cfg_.phys_regs), 1);
  phys_producer_.assign(static_cast<std::size_t>(cfg_.phys_regs), 0);

  // ---- scheduler-kernel storage (one arena reservation, then zero heap
  // traffic for the rest of the pipeline's life) -----------------------------
  // Window slots are addressed seq & (cap-1); the ROB bound keeps the live
  // seq range contiguous and shorter than the capacity.
  const u32 win_cap = next_pow2_u32(static_cast<u32>(cfg_.rob_entries));
  // Refetch holds at most the squashed true path: ROB + frontend, with slack
  // for the refetch of a refetch before the queue drains.
  const u32 rf_cap = next_pow2_u32(static_cast<u32>(cfg_.rob_entries) + kFrontendCap + 8);
  // Wheel horizon: the farthest event is complete/replay at
  // exec_lat + lat_delta + 1 ahead; exec_lat tops out at the full miss path.
  Cycle max_lat = 1 + cfg_.l1d.latency + cfg_.l2.latency + cfg_.memory_latency;
  max_lat = std::max({max_lat, cfg_.mul_latency, cfg_.div_latency});
  const u32 wheel_buckets = next_pow2_u32(static_cast<u32>(max_lat) + 8);
  // At most broadcast+complete+EP+replay pending per in-flight instruction.
  const u32 event_pool = 4 * win_cap + 16;
  const u32 cand_words = IssueWindow::words_for(win_cap);
  const u32 num_phys = static_cast<u32>(cfg_.phys_regs);

  std::size_t bytes = IssueWindow::bytes_needed(win_cap, num_phys);
  bytes += Arena::need<FetchedInst>(kFrontendCap);
  bytes += Arena::need<RefetchInst>(rf_cap);
  bytes += EventWheel::bytes_needed(wheel_buckets, event_pool);
  bytes += Arena::need<Event>(event_pool);                   // due_ scratch
  bytes += Arena::need<u64>(cand_words);                     // cand_words_
  bytes += Arena::need<RefetchInst>(win_cap + kFrontendCap); // re_ scratch
  // Each window entry holds at most one live node plus a bounded number of
  // stale ones (a re-file stales the previous node, and at most one stale
  // node per entry survives per wheel lap), so 4x entries + slack is ample.
  const u32 dq_pool = 4 * win_cap + 16;
  if (delay_mode_) {
    bytes += DelayQueue::bytes_needed(win_cap, wheel_buckets, dq_pool, num_phys);
    bytes += Arena::need<u32>(win_cap);  // wake_slots_ scratch
    bytes += Arena::need<u32>(win_cap);  // ready_list_ scratch
  }
  arena_.reserve(bytes);

  window_.init(arena_, win_cap, num_phys);
  frontend_.init(arena_.alloc<FetchedInst>(kFrontendCap), kFrontendCap);
  refetch_.init(arena_.alloc<RefetchInst>(rf_cap), rf_cap);
  wheel_.init(arena_, wheel_buckets, event_pool);
  due_ = arena_.alloc<Event>(event_pool);
  cand_words_ = arena_.alloc<u64>(cand_words);
  re_ = arena_.alloc<RefetchInst>(win_cap + kFrontendCap);
  if (delay_mode_) {
    dq_.init(arena_, win_cap, wheel_buckets, dq_pool, num_phys);
    wake_slots_ = arena_.alloc<u32>(win_cap);
    ready_list_ = arena_.alloc<u32>(win_cap);
  }

  // Register every hot-path counter once; the per-event cost from here on is
  // a pointer bump (the StatSet map is only touched again at snapshot time).
  c_broadcast_ = registry_.counter("ev.broadcast");
  c_wakeup_match_ = registry_.counter("ev.wakeup_match");
  c_ep_stalls_ = registry_.counter("ep.stalls");
  c_replays_ = registry_.counter("fault.replays");
  c_squash_ = registry_.counter("ev.squash");
  c_dcache_write_ = registry_.counter("ev.dcache_write");
  c_committed_faulty_ = registry_.counter("fault.committed_faulty");
  c_commit_ = registry_.counter("ev.commit");
  c_inorder_stall_ = registry_.counter("fault.inorder.stall");
  c_inorder_replay_ = registry_.counter("fault.inorder.replay");
  c_sel_no_ready_ = registry_.counter("sel.cycles_no_ready");
  c_sel_blocked_ = registry_.counter("sel.cycles_blocked");
  c_sel_issued_ = registry_.counter("sel.issued_total");
  c_sel_iq_occ_ = registry_.counter("sel.iq_occupancy_sum");
  c_sel_window_ = registry_.counter("sel.window_sum");
  c_sel_frontend_ = registry_.counter("sel.frontend_sum");
  c_select_ = registry_.counter("ev.select");
  c_regread_ = registry_.counter("ev.regread");
  c_lsq_search_ = registry_.counter("ev.lsq_search");
  c_stl_forward_ = registry_.counter("ev.stl_forward");
  c_dcache_read_ = registry_.counter("ev.dcache_read");
  c_fault_actual_ = registry_.counter("fault.actual");
  c_fault_handled_ = registry_.counter("fault.handled");
  c_fault_predicted_ = registry_.counter("fault.predicted");
  c_fault_false_pos_ = registry_.counter("fault.false_positive");
  c_fault_false_neg_ = registry_.counter("fault.false_negative");
  c_dispatch_ = registry_.counter("ev.dispatch");
  c_iq_write_ = registry_.counter("ev.iq_write");
  c_fetch_ = registry_.counter("ev.fetch");
  c_wrongpath_fetch_ = registry_.counter("ev.wrongpath_fetch");
  c_branch_mispredict_ = registry_.counter("branch.mispredict");
  c_stall_cycles_ = registry_.counter("ev.stall_cycles");
  for (int i = 0; i < timing::kNumOooStages; ++i) {
    c_fault_stage_[static_cast<std::size_t>(i)] = registry_.counter(
        std::string("fault.stage.") +
        std::string(timing::to_string(static_cast<timing::OooStage>(i))));
  }
  for (int i = 0; i < obs::kNumCpiCauses; ++i) {
    c_cpi_[static_cast<std::size_t>(i)] =
        registry_.counter(obs::cpi_counter_name(static_cast<obs::CpiCause>(i)));
  }
}

bool Pipeline::faults_enabled() const {
  // An attached adaptive clock can shorten the period below the safe point
  // even at the nominal supply, so the oracle stays live whenever one is on.
  return fault_model_ != nullptr && (fault_model_->enabled() || clock_ != nullptr);
}

namespace {
/// Operand-toggle proxy for the state-dependent delay model: a hash of the
/// register operands and effective address standing in for the toggled
/// input vector of the sensitized cone.
u64 operand_signature(const isa::DynInst& di) {
  u64 h = hash_combine(static_cast<u64>(di.src1 + 1), static_cast<u64>(di.src2 + 1));
  h = hash_combine(h, static_cast<u64>(di.dst + 1));
  return hash_combine(h, di.mem_addr);
}
}  // namespace

void Pipeline::schedule(Cycle cycle, EventKind kind, SeqNum seq) {
  // `cycle >= now_ >= event_shift_` always holds (the shift only grows by
  // one per stall cycle, and every stall cycle also advances now_), so the
  // stored key never underflows.
  wheel_.schedule(cycle - event_shift_, kind, seq);
}

Cycle Pipeline::stage_offset(timing::OooStage stage, Cycle exec_lat) const {
  switch (stage) {
    case timing::OooStage::kIssueSelect: return 0;
    case timing::OooStage::kRegRead: return 1;
    case timing::OooStage::kExecute: return 2;
    case timing::OooStage::kMemory: return 3;
    case timing::OooStage::kWriteback: return exec_lat + 1;
  }
  return 0;
}

void Pipeline::shift_all_times(Cycle delta) {
  event_shift_ += delta;  // all pending events move as one (stored keys fixed)
  for (u32 i = 0; i < frontend_.size(); ++i) frontend_.at(i).arrive += delta;
  fus_.shift_time(delta);
  fetch_stall_until_ += delta;
}

void Pipeline::train_predictor(const InstState& is, bool faulty) {
  if (predictor_ == nullptr || !scheme_.use_predictor) return;
  predictor_->train(is.di.pc, is.tep_history, faulty, is.actual_stage);
}

// ---- events ---------------------------------------------------------------

void Pipeline::broadcast(InstState& is) {
  c_broadcast_.inc();
  if (is.phys_dst == kNoReg) return;
  phys_ready_[static_cast<std::size_t>(is.phys_dst)] = 1;
  // CDL (Section 3.5.2): count waiting dependents that match this tag.  The
  // wakeup is a masked scan of the not-ready waiters; a ready waiter cannot
  // match because its sources all broadcast earlier.
  int deps;
  if (delay_mode_) {
    // Collect the waiters this tag completed so the delay kernel can repair
    // early-issued producers: a consumer filed under a too-late estimate is
    // re-filed under the current cycle, making it selectable exactly when
    // the masked-scan kernel would first see it.
    u32 n_ready = 0;
    deps = window_.wake(is.phys_dst, wake_slots_, &n_ready);
    const Cycle stored_now = now_ - event_shift_;
    for (u32 i = 0; i < n_ready; ++i) {
      const u32 slot = wake_slots_[i];
      dq_.on_newly_ready(slot, window_.slot_state(slot).di.seq, stored_now);
    }
  } else {
    deps = window_.wake(is.phys_dst);
  }
  if (deps > 0) c_wakeup_match_.inc(static_cast<u64>(deps));
  fire([&](SchedHooks& h) { h.on_tag_broadcast(now_, is, deps); });
  if (predictor_ != nullptr && scheme_.use_predictor) {
    const bool critical = deps >= scheme_.criticality_threshold;
    predictor_->mark_critical(is.di.pc, is.tep_history, critical);
    fire([&](SchedHooks& h) { h.on_mark_critical(now_, is, deps, critical); });
  }
}

void Pipeline::process_events() {
  // Drain the one bucket due this cycle (the stored key advances by exactly
  // one per scheduling step; stall cycles move the shift instead).
  if (obs::kProfHooksEnabled && profiler_ != nullptr) {
    // Sub-phase of kExecute (the enclosing scope): how much of event
    // processing is the wheel pop itself.
    const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kEventWheel);
    due_n_ = wheel_.pop_due(now_ - event_shift_, due_);
  } else {
    due_n_ = wheel_.pop_due(now_ - event_shift_, due_);
  }
  // Deterministic order: broadcasts, completes, EP stalls, replays; then age.
  // A bucket holds a handful of events, so an insertion sort beats the
  // introsort machinery on every cycle of the hot loop.
  const auto before = [](const Event& a, const Event& b) {
    if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.seq < b.seq;
  };
  for (u32 i = 1; i < due_n_; ++i) {
    const Event e = due_[i];
    u32 j = i;
    for (; j > 0 && before(e, due_[j - 1]); --j) due_[j] = due_[j - 1];
    due_[j] = e;
  }

  for (u32 i = 0; i < due_n_; ++i) {
    const Event& e = due_[i];
    switch (e.kind) {
      case EventKind::kBroadcast: {
        InstState* is = find(e.seq);
        if (is != nullptr) broadcast(*is);
        break;
      }
      case EventKind::kComplete: {
        InstState* is = find(e.seq);
        if (is == nullptr) break;
        is->completed = true;
        fire([&](SchedHooks& h) { h.on_completed(now_, *is); });
        if (observer_ != nullptr) observer_->on_complete(e.seq);
        if (fetch_blocked_on_ && *fetch_blocked_on_ == e.seq) {
          fetch_blocked_on_.reset();
          if (cfg_.model_wrong_path) squash_younger(e.seq, /*refetch_true_path=*/false);
        }
        // Detection-based training (Razor latches observe every transit).
        if (is->actual_fault && is->fault_handled) {
          train_predictor(*is, true);
        } else if (is->pred_fault && !is->actual_fault) {
          train_predictor(*is, false);  // decay stale predictions
        }
        break;
      }
      case EventKind::kEpStall: {
        InstState* is = find(e.seq);
        if (is != nullptr) {
          fire([&](SchedHooks& h) { h.on_ep_stall(now_, *is); });
          push_global_stall(1, obs::CpiCause::kEpStall);
          c_ep_stalls_.inc();
        }
        break;
      }
      case EventKind::kReplay:
        do_replay(e.seq);
        break;
    }
  }
}

void Pipeline::do_replay(SeqNum seq) {
  InstState* is = find(seq);
  if (is == nullptr || !is->replay_scheduled) return;
  fire([&](SchedHooks& h) { h.on_replay(now_, *is); });
  c_replays_.inc();
  train_predictor(*is, true);

  if (scheme_.recovery == RecoveryModel::kMicroStall) {
    // RazorII-style in-place replay: the stage recomputes while the pipeline
    // holds; the instruction's own events shift with the stall.
    push_global_stall(static_cast<int>(scheme_.micro_stall_cycles), obs::CpiCause::kReplay);
    is->replay_scheduled = false;
    is->safe_mode = true;
    return;
  }

  // Squash-and-refetch: flush [seq, tail] plus the front end, restore the
  // rename map youngest-first, and refetch with the faulty instance marked
  // safe (the recovery executes it with a guaranteed-sufficient period).
  const Pc faulty_pc = is->di.pc;
  squash_younger(seq - 1, /*refetch_true_path=*/true);
  if (!refetch_.empty() && refetch_.front().di.pc == faulty_pc) {
    refetch_.front().safe_mode = true;
  }
  fetch_stall_until_ = std::max(fetch_stall_until_, now_ + static_cast<Cycle>(cfg_.replay_recovery));
  // Until the refetched work can reach dispatch again, an empty ROB is the
  // squash's fault, not the frontend's.
  squash_recover_until_ = fetch_stall_until_ + static_cast<Cycle>(cfg_.frontend_depth);
}

void Pipeline::squash_younger(SeqNum last_kept, bool refetch_true_path) {
  // A replay of seq 0 passes last_kept = SeqNum(0) - 1 (wrapped around):
  // nothing survives the squash, not even the window head.  Without this
  // the wrapped value would read as "keep everything" below while next_seq_
  // still reset to 0, recycling seq numbers that are live in the window.
  const bool keep_none = last_kept + 1 == 0;

  // Collect true-path work for refetch (arena scratch); wrong-path work is
  // discarded.
  re_n_ = 0;
  u64 squashed = 0;
  SeqNum youngest = last_kept;
  for (u32 off = 0; off < window_.size(); ++off) {
    const SeqNum wseq = window_.head_seq() + off;
    if (!keep_none && wseq <= last_kept) continue;
    const InstState& w = window_.slot_state(window_.slot_of(wseq));
    ++squashed;
    youngest = wseq;
    if (refetch_true_path && !w.wrong_path) re_[re_n_++] = RefetchInst{w.di, false};
  }
  for (u32 i = 0; i < frontend_.size(); ++i) {
    const FetchedInst& fi = frontend_.at(i);
    ++squashed;
    youngest = fi.seq;
    if (refetch_true_path && !fi.wrong_path) re_[re_n_++] = RefetchInst{fi.di, false};
  }
  frontend_.clear();

  while (!window_.empty()) {
    InstState& w = window_.back();
    const SeqNum wseq = window_.head_seq() + window_.size() - 1;
    if (!keep_none && wseq <= last_kept) break;
    if (w.phys_dst != kNoReg) {
      rename_map_[static_cast<std::size_t>(w.di.dst)] = w.old_phys;
      free_list_.push_back(w.phys_dst);
    }
    if (w.in_iq) --iq_count_;
    if (w.di.op == isa::OpClass::kLoad) --lq_count_;
    if (w.di.op == isa::OpClass::kStore) --sq_count_;
    window_.pop_back();
  }
  c_squash_.inc(squashed);
  if (observer_ != nullptr && squashed > 0) observer_->on_squash(last_kept + 1, youngest);
  if (squashed > 0) {
    fire([&](SchedHooks& h) { h.on_squashed(now_, last_kept + 1, youngest); });
  }

  // Seq numbers above `last_kept` are recycled, so stale events for squashed
  // instructions must not fire on their successors.
  if (keep_none) {
    wheel_.clear_events();
    if (delay_mode_) dq_.clear_entries();
  } else {
    wheel_.filter_squashed(last_kept);
    if (delay_mode_) dq_.filter_squashed(last_kept, window_);
  }
  next_seq_ = last_kept + 1;

  for (u32 i = re_n_; i > 0; --i) refetch_.push_front(re_[i - 1]);
  wrong_path_active_ = false;
  if (fetch_blocked_on_ && (keep_none || *fetch_blocked_on_ > last_kept)) {
    fetch_blocked_on_.reset();
  }
}

isa::DynInst Pipeline::synthesize_wrong_path(Pc pc) {
  // Plausible wrong-path filler: mostly ALU with some loads into the warm
  // region; consumes rename/issue/execute resources and pollutes the D-cache
  // but never the architectural state (squashed at branch resolution).
  isa::DynInst d;
  const u64 h = hash_mix(pc ^ 0x3b0a6ULL);
  d.pc = pc;
  d.next_pc = pc + isa::kInstrBytes;
  d.src1 = 1 + static_cast<int>(h % 24);
  d.dst = 1 + static_cast<int>((h >> 8) % 24);
  if ((h & 0xFF) < 77) {  // ~30% loads
    d.op = isa::OpClass::kLoad;
    d.mem_addr = (0x0800'0000ULL + (h % (128 * 1024))) & ~7ULL;
  } else {
    d.op = isa::OpClass::kIntAlu;
    d.src2 = 1 + static_cast<int>((h >> 16) % 24);
  }
  return d;
}

// ---- commit ----------------------------------------------------------------

void Pipeline::commit_stage() {
  // Every commit slot of this cycle is attributed to exactly one CPI-stack
  // cause: kBase per committed instruction, and when retire stops early the
  // remaining slots all share the cause of whatever blocks the ROB head
  // (apply_global_stall covers the global-stall cycles, so the invariant
  // sum(cpi.*) == cycles * commit_width holds for every step()).
  int budget = cfg_.commit_width;
  obs::CpiCause lost = obs::CpiCause::kBase;  // commit_limit_ windowing artifact
  while (budget > 0) {
    if (committed_ >= commit_limit_) break;  // run() boundary, not a real stall
    if (window_.empty()) {
      lost = classify_empty_window();
      break;
    }
    InstState& is = window_.head();
    if (!is.completed) {
      lost = classify_unretirable_head(is);
      break;
    }
    if (is.retire_fault && !is.retire_padded) {
      // Retire-stage violation: the stage takes two cycles for this
      // instruction; with a predictor this is a planned stall, without one a
      // Razor replay of the retire transit.
      is.retire_padded = true;
      if (scheme_.use_predictor) {
        c_inorder_stall_.inc();
      } else {
        c_inorder_replay_.inc();
        push_global_stall(static_cast<int>(scheme_.micro_stall_cycles) - 1,
                          obs::CpiCause::kReplay);
      }
      lost = obs::CpiCause::kReplay;
      break;  // retire loses the rest of this cycle
    }
    if (is.di.op == isa::OpClass::kStore) {
      memory_.store_commit(is.di.mem_addr);
      --sq_count_;
      c_dcache_write_.inc();
    }
    if (is.di.op == isa::OpClass::kLoad) --lq_count_;
    if (is.phys_dst != kNoReg && is.old_phys != kNoReg) free_list_.push_back(is.old_phys);
    // Committed-path fault rate (Table 1's FR): an instruction counts when
    // its committed instance faulted or it is the safe re-execution of one.
    if (is.actual_fault || is.safe_mode) c_committed_faulty_.inc();
    fire([&](SchedHooks& h) { h.on_committed(now_, is); });
    ++committed_;
    if (observer_ != nullptr) observer_->on_commit(window_.head_seq());
    c_commit_.inc();
    c_cpi_[static_cast<std::size_t>(obs::CpiCause::kBase)].inc();
    window_.pop_front();
    --budget;
    last_commit_cycle_ = now_;
  }
  if (budget > 0) c_cpi_[static_cast<std::size_t>(lost)].inc(static_cast<u64>(budget));
}

obs::CpiCause Pipeline::classify_empty_window() const {
  // An empty ROB right after a replay squash is charged to the squash while
  // the refetched work refills the pipe; any other empty window is frontend
  // supply (icache misses, redirects, fetch depth, source drain).
  if (!refetch_.empty() || now_ < squash_recover_until_) {
    return obs::CpiCause::kSquashRefetch;
  }
  return obs::CpiCause::kFrontend;
}

obs::CpiCause Pipeline::classify_unretirable_head(const InstState& head) {
  using obs::CpiCause;
  if (head.issued) {
    // In flight: memory ops are a memory stall; a predicted-faulty VTE
    // instruction still in execute is paying its own padded cycle.
    if (isa::is_mem(head.di.op)) return CpiCause::kMemory;
    if (scheme_.vte && head.pred_fault) return CpiCause::kSlotFreeze;
    return CpiCause::kDataDep;
  }
  if (!operands_ready(head)) {
    // Blame the producer of the first not-ready operand.
    int waiting = kNoReg;
    if (head.phys_src1 != kNoReg && phys_ready_[static_cast<std::size_t>(head.phys_src1)] == 0) {
      waiting = head.phys_src1;
    } else if (head.phys_src2 != kNoReg &&
               phys_ready_[static_cast<std::size_t>(head.phys_src2)] == 0) {
      waiting = head.phys_src2;
    }
    if (waiting != kNoReg) {
      const InstState* prod = find(phys_producer_[static_cast<std::size_t>(waiting)]);
      if (prod != nullptr && prod->phys_dst == waiting) {
        if (isa::is_mem(prod->di.op)) return CpiCause::kMemory;
        // The producer's broadcast arrives a cycle late because VTE padded it.
        if (prod->issued && scheme_.vte && prod->pred_fault) {
          return CpiCause::kDelayedBroadcast;
        }
      }
    }
    return CpiCause::kDataDep;
  }
  // Ready but not selected: a frozen issue slot or the LSQ CAM spacing rule
  // is a VTE freeze; otherwise a structural port/select conflict.
  if (slots_frozen_now_ > 0) return CpiCause::kSlotFreeze;
  if (mem_blocked_now_ && isa::is_mem(head.di.op)) return CpiCause::kSlotFreeze;
  if (isa::is_mem(head.di.op)) return CpiCause::kMemory;
  return CpiCause::kDataDep;
}

void Pipeline::push_global_stall(int cycles, obs::CpiCause cause) {
  if (cycles <= 0) return;
  stall_pending_ += cycles;
  if (cause == obs::CpiCause::kEpStall) stall_pending_ep_ += cycles;
}

// ---- issue -----------------------------------------------------------------

bool Pipeline::operands_ready(const InstState& is) const {
  const bool r1 = is.phys_src1 == kNoReg || phys_ready_[static_cast<std::size_t>(is.phys_src1)] != 0;
  const bool r2 = is.phys_src2 == kNoReg || phys_ready_[static_cast<std::size_t>(is.phys_src2)] != 0;
  return r1 && r2;
}

bool Pipeline::load_may_issue(const InstState& load, bool* forwarded) const {
  // Idealized disambiguation: store addresses are known from the trace, so
  // only a genuinely conflicting older store gates the load.  The youngest
  // matching store decides: once it has issued (data available in the store
  // queue), the load forwards from it; before that the load waits.  The
  // window scans only its store mask, youngest first.
  return window_.load_may_issue(load.di.seq, load.di.mem_addr & ~7ULL, forwarded);
}

void Pipeline::select_stage() {
  if (delay_mode_) {
    delay_select_stage();
    return;
  }
  int width = cfg_.issue_width - slots_frozen_now_;
  if (width <= 0) return;

  // Candidates = waiting & ready (& ~memop under the LSQ CAM spacing rule),
  // snapshotted so instructions woken by this cycle's issues don't join.
  const bool any = window_.collect_candidates(mem_blocked_now_, cand_words_);

  int issued = 0;
  const auto try_issue = [&](u32 slot) -> bool {
    if (width == 0) return false;  // stop the scan; selection is out of slots
    InstState& is = window_.slot_state(slot);
    bool fwd = false;
    if (is.di.op == isa::OpClass::kLoad) {
      if (!load_may_issue(is, &fwd)) {  // blocked by an older store
        fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kLoadBlocked); });
        return true;
      }
    }
    if (issue_one(is, fwd)) {
      window_.on_issued(is.di.seq);
      --width;
      ++issued;
      fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kIssued); });
    } else {
      fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kFuBusy); });
    }
    return true;
  };
  const auto note_pass = [&](int pass) {
    fire([&](SchedHooks& h) { h.on_select_pass(now_, pass); });
  };

  // Ring order is age order (ages are assigned at dispatch and squash pops
  // the tail), so each policy is one or two in-order masked passes: the
  // preferred class first, then the rest -- exactly the old sorted order.
  if (any) {
    switch (scheme_.policy) {
      case SelectPolicy::kAge:
        note_pass(1);
        window_.for_each_in_order(cand_words_, nullptr, false, try_issue);
        break;
      case SelectPolicy::kFaultyFirst:
        note_pass(0);
        if (window_.for_each_in_order(cand_words_, window_.predf_mask(), false, try_issue)) {
          note_pass(1);
          window_.for_each_in_order(cand_words_, window_.predf_mask(), true, try_issue);
        }
        break;
      case SelectPolicy::kCriticalityDriven:
        note_pass(0);
        if (window_.for_each_in_order(cand_words_, window_.crit_mask(), false, try_issue)) {
          note_pass(1);
          window_.for_each_in_order(cand_words_, window_.crit_mask(), true, try_issue);
        }
        break;
    }
  }

  // Utilization diagnostics (consumed by tests and the ablation bench).
  if (!any) {
    c_sel_no_ready_.inc();
  } else if (issued == 0) {
    c_sel_blocked_.inc();
  }
  c_sel_issued_.inc(static_cast<u64>(issued));
  c_sel_iq_occ_.inc(static_cast<u64>(iq_count_));
  c_sel_window_.inc(window_.size());
  c_sel_frontend_.inc(frontend_.size());
}

Cycle Pipeline::exec_estimate(isa::OpClass op) const {
  switch (op) {
    case isa::OpClass::kIntMul: return cfg_.mul_latency;
    case isa::OpClass::kIntDiv: return cfg_.div_latency;
    case isa::OpClass::kLoad: return 1 + cfg_.l1d.latency;  // hit assumed
    default: return 1;
  }
}

void Pipeline::delay_select_stage() {
  // The pop must run every scheduling cycle, selectable width or not: the
  // wheel's time base advances in lockstep with the cycle count (stall
  // cycles grow the shift instead, exactly like EventWheel).
  const Cycle stored_now = now_ - event_shift_;
  dq_.pop_due(stored_now, window_);

  int width = cfg_.issue_width - slots_frozen_now_;
  if (width <= 0) return;

  const u32 n = dq_.take_ready(ready_list_);
  constexpr u32 kIssuedMark = 0xFFFF'FFFFu;
  bool any = false;
  int issued = 0;

  const auto try_issue = [&](u32 i) -> bool {
    if (width == 0) return false;  // stop the walk; selection is out of slots
    const u32 slot = ready_list_[i];
    InstState& is = window_.slot_state(slot);
    // LSQ CAM spacing: memops sit out the cycle behind a predicted-faulty
    // memory-stage issue (the masked-scan kernel filters them out of the
    // candidate set the same way).
    if (mem_blocked_now_ && isa::is_mem(is.di.op)) return true;
    any = true;
    bool fwd = false;
    if (is.di.op == isa::OpClass::kLoad) {
      if (!load_may_issue(is, &fwd)) {  // blocked by an older store
        fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kLoadBlocked); });
        return true;
      }
    }
    if (issue_one(is, fwd)) {
      window_.on_issued(is.di.seq);
      dq_.on_issued(slot);
      ready_list_[i] = kIssuedMark;
      --width;
      ++issued;
      fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kIssued); });
    } else {
      fire([&](SchedHooks& h) { h.on_select_visit(now_, is, SelectOutcome::kFuBusy); });
    }
    return true;
  };
  const auto note_pass = [&](int pass) {
    fire([&](SchedHooks& h) { h.on_select_pass(now_, pass); });
  };
  // Passes walk the ready FIFO in readiness order -- the delay kernel's
  // ordering key -- with FFS/CDS still applied as a preferred-class pass
  // followed by the rest, mirroring the baseline's two-pass masked scans.
  // `which`: 0 = preferred class only, 1 = the rest, 2 = everyone (age).
  const auto run_pass = [&](int which) -> bool {
    for (u32 i = 0; i < n; ++i) {
      if (ready_list_[i] == kIssuedMark) continue;
      if (which != 2) {
        const InstState& is = window_.slot_state(ready_list_[i]);
        const bool pref = scheme_.policy == SelectPolicy::kFaultyFirst ? is.pred_fault
                                                                       : is.pred_critical;
        if ((which == 0) != pref) continue;
      }
      if (!try_issue(i)) return false;
    }
    return true;
  };
  if (n > 0) {
    switch (scheme_.policy) {
      case SelectPolicy::kAge:
        note_pass(1);
        run_pass(2);
        break;
      case SelectPolicy::kFaultyFirst:
      case SelectPolicy::kCriticalityDriven:
        note_pass(0);
        if (run_pass(0)) {
          note_pass(1);
          run_pass(1);
        }
        break;
    }
  }

  // Survivors (blocked loads, FU conflicts, out-of-width) keep their
  // readiness order for next cycle.
  u32 kept = 0;
  for (u32 i = 0; i < n; ++i) {
    if (ready_list_[i] != kIssuedMark) ready_list_[kept++] = ready_list_[i];
  }
  dq_.put_back_ready(ready_list_, kept);

  if (!any) {
    c_sel_no_ready_.inc();
  } else if (issued == 0) {
    c_sel_blocked_.inc();
  }
  c_sel_issued_.inc(static_cast<u64>(issued));
  c_sel_iq_occ_.inc(static_cast<u64>(iq_count_));
  c_sel_window_.inc(window_.size());
  c_sel_frontend_.inc(frontend_.size());
}

bool Pipeline::issue_one(InstState& is, bool fwd) {
  // Execution latency by class.  `fwd` is the store-to-load forwarding
  // verdict from the caller's load_may_issue gate (still valid here: nothing
  // issues between the gate and this attempt).
  Cycle exec_lat = 1;
  switch (is.di.op) {
    case isa::OpClass::kIntMul: exec_lat = cfg_.mul_latency; break;
    case isa::OpClass::kIntDiv: exec_lat = cfg_.div_latency; break;
    case isa::OpClass::kLoad: {
      c_lsq_search_.inc();
      fire([&](SchedHooks& h) { h.on_lsq_search(now_, is); });
      if (fwd) {
        exec_lat = 2;  // store-to-load forward
        c_stl_forward_.inc();
      } else {
        exec_lat = 1 + memory_.load_latency(is.di.mem_addr);
        c_dcache_read_.inc();
      }
      break;
    }
    case isa::OpClass::kStore:
      c_lsq_search_.inc();
      fire([&](SchedHooks& h) { h.on_lsq_search(now_, is); });
      break;
    default:
      break;
  }

  // Fault oracle (Section 4.3) -- decided as the instruction engages the
  // OoO stages.
  if (faults_enabled() && !is.safe_mode && !is.wrong_path) {
    // Profiled as a sub-phase of kSelect (this runs inside the select
    // stage): how much wall-time the fault oracle costs.
    const obs::Profiler::Scope prof(
        obs::kProfHooksEnabled ? profiler_ : nullptr, obs::ProfPhase::kFaultCheck);
    const timing::FaultClass cls = isa::is_mem(is.di.op) ? timing::FaultClass::kMemLike
                                                         : timing::FaultClass::kAluLike;
    const timing::FaultDecision d =
        clock_ == nullptr
            ? fault_model_->query(is.di.pc, cls, now_)
            : fault_model_->query_adaptive(is.di.pc, cls, now_, clock_period_scale_,
                                           operand_signature(is.di));
    is.actual_fault = d.faulty;
    is.actual_stage = d.stage;
  }

  // VTE: predicted-faulty instructions take one extra cycle in their faulty
  // stage and freeze the resource they occupy (Sections 3.2-3.3).  The
  // freeze is per functional unit / port ("freeze the corresponding issue
  // slot for the functional unit or memory port", Sec 3.3.1): the unit the
  // instruction uses cannot accept a new instruction the following cycle.
  // Only a writeback-stage fault freezes an issue-queue input slot
  // (Sec 3.3.5), costing one slot of global width.
  Cycle lat_delta = 0;
  bool fu_extra = false;
  bool wb_slot_freeze = false;
  if (scheme_.vte && is.pred_fault) {
    lat_delta = 1;
    if (is.pred_stage == timing::OooStage::kWriteback) {
      wb_slot_freeze = true;
    } else {
      fu_extra = true;
    }
  }
  if (is.safe_mode) lat_delta += 1;  // replayed instance runs padded

  const int fu = fus_.allocate(is.di.op, now_, exec_lat + lat_delta, fu_extra);
  if (fu < 0) return false;  // structural hazard; retry next cycle
  fire([&](SchedHooks& h) { h.on_fu_allocated(now_, is, fu, fus_.next_free(fu)); });
  if (wb_slot_freeze) ++slots_frozen_next_;
  // LSQ CAM spacing (Sec 3.3.4): no load/store may perform a CAM search in
  // the cycle right behind a predicted-faulty memory-stage instruction.
  if (scheme_.vte && is.pred_fault && is.pred_stage == timing::OooStage::kMemory) {
    mem_blocked_next_ = true;
  }

  is.issued = true;
  is.in_iq = false;
  --iq_count_;
  if (observer_ != nullptr) observer_->on_issue(is.di.seq, is.pred_fault);
  c_select_.inc();
  c_regread_.inc();
  // (ev.fu.* accounting happens inside FuPool::allocate.)

  const Cycle wakeup = now_ + exec_lat + lat_delta;
  // The broadcast cycle is exact from here on; consumers filed under the
  // dispatch-time estimate repair themselves against this at pop time.
  if (delay_mode_) dq_.note_producer_actual(is.phys_dst, wakeup - event_shift_);
  schedule(wakeup, EventKind::kBroadcast, is.di.seq);
  schedule(wakeup + 1, EventKind::kComplete, is.di.seq);

  // Error Padding: one global stall cycle as the instruction transits its
  // predicted-faulty stage.
  if (scheme_.error_padding && is.pred_fault) {
    schedule(now_ + stage_offset(is.pred_stage, exec_lat), EventKind::kEpStall, is.di.seq);
  }

  if (is.actual_fault) {
    c_fault_actual_.inc();
    c_fault_stage_[static_cast<std::size_t>(is.actual_stage)].inc();
    const bool covered = is.pred_fault && is.pred_stage == is.actual_stage &&
                         (scheme_.vte || scheme_.error_padding);
    if (covered) {
      is.fault_handled = true;
      c_fault_handled_.inc();
    } else {
      is.replay_scheduled = true;
      schedule(wakeup + 1, EventKind::kReplay, is.di.seq);
    }
  }
  if (is.pred_fault) c_fault_predicted_.inc();
  if (is.pred_fault && !is.actual_fault) c_fault_false_pos_.inc();
  if (scheme_.use_predictor && !is.pred_fault && is.actual_fault) {
    c_fault_false_neg_.inc();
  }
  fire([&](SchedHooks& h) { h.on_issued(now_, is, exec_lat, lat_delta); });
  return true;
}

// ---- dispatch ----------------------------------------------------------------

void Pipeline::dispatch_stage() {
  int budget = cfg_.dispatch_width;
  while (budget > 0 && !frontend_.empty() && frontend_.front().arrive <= now_) {
    FetchedInst& fi = frontend_.front();
    if (static_cast<int>(window_.size()) >= cfg_.rob_entries) break;
    if (iq_count_ >= cfg_.iq_entries) break;
    const bool is_load = fi.di.op == isa::OpClass::kLoad;
    const bool is_store = fi.di.op == isa::OpClass::kStore;
    if (is_load && lq_count_ >= cfg_.lq_entries) break;
    if (is_store && sq_count_ >= cfg_.sq_entries) break;
    if (fi.di.dst != kNoReg && free_list_.empty()) break;

    InstState is;
    is.di = fi.di;
    is.di.seq = fi.seq;
    is.age = age_counter_++;
    is.tep_history = fi.history;
    is.safe_mode = fi.safe_mode;
    is.retire_fault = fi.retire_fault;
    is.wrong_path = fi.wrong_path;
    is.pred_fault = fi.pred.predicted;
    is.pred_stage = fi.pred.stage;
    is.pred_critical = fi.pred.critical;
    if (is.di.src1 != kNoReg) is.phys_src1 = rename_map_[static_cast<std::size_t>(is.di.src1)];
    if (is.di.src2 != kNoReg) is.phys_src2 = rename_map_[static_cast<std::size_t>(is.di.src2)];
    if (is.di.dst != kNoReg) {
      is.old_phys = rename_map_[static_cast<std::size_t>(is.di.dst)];
      is.phys_dst = free_list_.back();
      free_list_.pop_back();
      rename_map_[static_cast<std::size_t>(is.di.dst)] = is.phys_dst;
      phys_ready_[static_cast<std::size_t>(is.phys_dst)] = 0;
      phys_producer_[static_cast<std::size_t>(is.phys_dst)] = fi.seq;
    }
    is.in_iq = true;
    ++iq_count_;
    if (is_load) ++lq_count_;
    if (is_store) ++sq_count_;

    // Pending-operand flags seed the window's ready mask and the waiter
    // masks; from here on they only move on broadcasts (a source register
    // cannot be reallocated while this instruction is in the window).
    const bool p1 =
        is.phys_src1 != kNoReg && phys_ready_[static_cast<std::size_t>(is.phys_src1)] == 0;
    const bool p2 =
        is.phys_src2 != kNoReg && phys_ready_[static_cast<std::size_t>(is.phys_src2)] == 0;

    if (observer_ != nullptr) observer_->on_dispatch(fi.seq);
    fire([&](SchedHooks& h) { h.on_dispatched(now_, is); });
    window_.push_back(is, p1, p2);
    if (delay_mode_) {
      // File under the estimated ready cycle; publish this instruction's own
      // completion estimate (earliest select + class latency, loads assumed
      // to hit) for consumers dispatched before it issues.
      const Cycle due = dq_.enqueue(window_.slot_of(fi.seq), fi.seq, now_ - event_shift_,
                                    p1 ? is.phys_src1 : kNoReg, p2 ? is.phys_src2 : kNoReg);
      dq_.note_producer_estimate(is.phys_dst, due + exec_estimate(is.di.op));
    }
    frontend_.pop_front();
    --budget;
    c_dispatch_.inc();
    c_iq_write_.inc();
  }
}

// ---- fetch ---------------------------------------------------------------------

void Pipeline::fetch_stage() {
  if (now_ < fetch_stall_until_) return;
  if (fetch_blocked_on_.has_value()) {
    if (!cfg_.model_wrong_path || !wrong_path_active_) return;
    // Keep fetching down the predicted (wrong) path until the branch
    // resolves; this work is squashed, never committed.
    int wp_budget = cfg_.fetch_width;
    while (wp_budget > 0 && frontend_.size() < kFrontendCap) {
      FetchedInst fi;
      fi.di = synthesize_wrong_path(wrong_path_pc_);
      wrong_path_pc_ += isa::kInstrBytes;
      fi.seq = next_seq_++;
      fi.wrong_path = true;
      fi.arrive = now_ + static_cast<Cycle>(cfg_.frontend_depth);
      fi.history = bpred_.history();
      c_fetch_.inc();
      c_wrongpath_fetch_.inc();
      if (observer_ != nullptr) observer_->on_fetch(fi.seq, fi.di);
      frontend_.push_back(fi);
      --wp_budget;
    }
    return;
  }
  int budget = cfg_.fetch_width;
  while (budget > 0 && frontend_.size() < kFrontendCap) {
    RefetchInst ri;
    if (!refetch_.empty()) {
      ri = refetch_.front();
      refetch_.pop_front();
    } else {
      if (source_done_) break;
      if (!source_->next(ri.di)) {
        source_done_ = true;
        break;
      }
    }

    FetchedInst fi;
    fi.di = ri.di;
    fi.safe_mode = ri.safe_mode;
    fi.seq = next_seq_++;
    c_fetch_.inc();

    const Cycle il = memory_.ifetch_latency(fi.di.pc);
    const Cycle extra = il > cfg_.l1i.latency ? il - cfg_.l1i.latency : 0;
    fi.arrive = now_ + extra + static_cast<Cycle>(cfg_.frontend_depth);

    // TEP lookup in parallel with decode (Section 2.1.1).
    fi.history = bpred_.history();
    if (scheme_.use_predictor && predictor_ != nullptr && faults_enabled()) {
      fi.pred = predictor_->predict(fi.di.pc, fi.history, now_);
    }

    // In-order engine faults (Section 2.2): rename/dispatch/retire use the
    // TEP-driven stall signal (the faulty stage completes in two cycles
    // while its inputs recirculate); fetch/decode faults always replay.
    if (scheme_.inorder_fault_scale > 0.0 && faults_enabled()) {
      const timing::InOrderFaultDecision iod =
          clock_ == nullptr
              ? fault_model_->query_inorder(fi.di.pc, now_, scheme_.inorder_fault_scale)
              : fault_model_->query_inorder_adaptive(fi.di.pc, now_,
                                                     scheme_.inorder_fault_scale,
                                                     clock_period_scale_);
      if (iod.faulty) {
        switch (iod.stage) {
          case timing::InOrderStage::kFetch:
          case timing::InOrderStage::kDecode: {
            c_inorder_replay_.inc();
            const Cycle recovery = static_cast<Cycle>(cfg_.replay_recovery);
            fetch_stall_until_ = std::max(fetch_stall_until_, now_ + recovery);
            fi.arrive += recovery;
            break;
          }
          case timing::InOrderStage::kRename:
          case timing::InOrderStage::kDispatch:
            if (scheme_.use_predictor) {
              c_inorder_stall_.inc();
              fi.arrive += 1;  // stage completes in two cycles, inputs recirculate
            } else {
              c_inorder_replay_.inc();
              push_global_stall(static_cast<int>(scheme_.micro_stall_cycles),
                                obs::CpiCause::kReplay);
            }
            break;
          case timing::InOrderStage::kRetire:
            fi.retire_fault = true;
            break;
        }
      }
    }

    bool blocked = false;
    if (fi.di.op == isa::OpClass::kBranch) {
      const BranchPrediction bp = bpred_.predict(fi.di.pc);
      const bool mispred = bp.taken != fi.di.taken ||
                           (fi.di.taken && (!bp.target_known || bp.target != fi.di.next_pc));
      bpred_.update(fi.di.pc, fi.di.taken, fi.di.next_pc);
      if (mispred) {
        bpred_.note_mispredict();
        c_branch_mispredict_.inc();
        fetch_blocked_on_ = fi.seq;
        blocked = true;
        if (cfg_.model_wrong_path) {
          wrong_path_active_ = true;
          wrong_path_pc_ = bp.taken && bp.target_known ? bp.target : fi.di.pc + isa::kInstrBytes;
        }
      }
    }
    if (observer_ != nullptr) observer_->on_fetch(fi.seq, fi.di);
    frontend_.push_back(fi);
    --budget;
    if (blocked) break;
    if (extra > 0) {
      fetch_stall_until_ = now_ + extra;
      break;
    }
  }
}

// ---- main loop -------------------------------------------------------------------

void Pipeline::apply_global_stall() {
  // A global-stall cycle loses the full commit width; EP padding drains
  // first (deterministically) so mixed EP+replay queues attribute exactly.
  --stall_pending_;
  obs::CpiCause cause = obs::CpiCause::kReplay;
  if (stall_pending_ep_ > 0) {
    --stall_pending_ep_;
    cause = obs::CpiCause::kEpStall;
  }
  fire([&](SchedHooks& h) { h.on_global_stall(now_, cause == obs::CpiCause::kEpStall); });
  c_cpi_[static_cast<std::size_t>(cause)].inc(static_cast<u64>(cfg_.commit_width));
  shift_all_times(1);
  c_stall_cycles_.inc();
}

bool Pipeline::step() {
  if (source_done_ && window_.empty() && frontend_.empty() && refetch_.empty()) return false;

  if (stall_pending_ > 0) {
    apply_global_stall();
    ++now_;
    note_clock();  // a stalled cycle still spends wall time at the current period
    return true;
  }

  slots_frozen_now_ = slots_frozen_next_;
  slots_frozen_next_ = 0;
  mem_blocked_now_ = mem_blocked_next_;
  mem_blocked_next_ = false;

  fire([&](SchedHooks& h) { h.on_cycle_start(now_, slots_frozen_now_, mem_blocked_now_); });
  if (observer_ != nullptr) observer_->on_cycle(now_);
  if (obs::kProfHooksEnabled && profiler_ != nullptr) {
    // The profiled stage sequence is a duplicate so the unprofiled path
    // stays exactly as it was (zero-cost-when-off, like the check hooks).
    {
      const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kExecute);
      process_events();
    }
    {
      const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kCommit);
      commit_stage();
    }
    {
      const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kSelect);
      select_stage();
    }
    {
      const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kDispatch);
      dispatch_stage();
    }
    {
      const obs::Profiler::Scope s(profiler_, obs::ProfPhase::kFetch);
      fetch_stage();
    }
  } else {
    process_events();
    commit_stage();
    select_stage();
    dispatch_stage();
    fetch_stage();
  }

  ++now_;
  note_timeline();
  note_clock();
  if (!window_.empty() && now_ - last_commit_cycle_ > cfg_.watchdog_cycles) {
    throw std::runtime_error("Pipeline deadlock: no commit in watchdog window");
  }
  return true;
}

void Pipeline::set_timeline(obs::Timeline* timeline, u64 interval) {
  timeline_ = (timeline != nullptr && interval > 0) ? timeline : nullptr;
  timeline_interval_ = interval;
  // Arm the next threshold from the current commit count so a re-attach
  // after a warm-start restore continues the K-commit grid seamlessly.
  timeline_next_ =
      timeline_ != nullptr ? (committed_ / interval + 1) * interval : ~0ULL;
}

void Pipeline::set_clock(adapt::ClockDomain* clock) {
  clock_ = clock;
  if (clock_ == nullptr) {
    clock_interval_ = 0;
    clock_next_ = ~0ULL;
    clock_period_scale_ = 1.0;
    return;
  }
  clock_->bind(registry_);
  clock_interval_ = clock_->epoch_interval();
  clock_next_ = (committed_ / clock_interval_ + 1) * clock_interval_;
  clock_period_scale_ = clock_->period_scale();
}

adapt::EpochSample Pipeline::epoch_sample() const {
  adapt::EpochSample s;
  s.committed = committed_;
  s.cycles = now_;
  s.violations = c_fault_actual_.value();
  s.replays = c_replays_.value();
  for (int i = 0; i < timing::kNumOooStages; ++i) {
    s.stage_violations[static_cast<std::size_t>(i)] =
        c_fault_stage_[static_cast<std::size_t>(i)].value();
  }
  s.mem_slots = c_cpi_[static_cast<std::size_t>(obs::CpiCause::kMemory)].value();
  u64 total = 0;
  for (const auto& c : c_cpi_) total += c.value();
  s.total_slots = total;
  if (fault_model_ != nullptr) {
    const timing::Environment& env = fault_model_->environment();
    s.hot = env.thermal_component(now_) > 0.0;
    s.droopy = env.droop_component(now_) > 0.0;
  }
  return s;
}

u32 Pipeline::step_n(u32 max_cycles) {
  u32 executed = 0;
  while (executed < max_cycles && committed_ < commit_limit_) {
    if (!step()) break;
    ++executed;
  }
  return executed;
}

StatSet Pipeline::snapshot_stats() const {
  // The cold StatSet merged with every registry counter (which now includes
  // the cache hierarchy and FU pool) plus branch-predictor state and the
  // cycle count.  Cold path: string lookups are fine here.
  StatSet s = stats_;
  registry_.export_to(s);
  s.inc("branch.lookups", bpred_.lookups());
  s.inc("branch.mispredicts_total", bpred_.mispredicts());
  s.inc("cycles", now_);
  return s;
}

obs::CpiStack Pipeline::cpi_stack() const {
  obs::CpiStack st;
  for (int i = 0; i < obs::kNumCpiCauses; ++i) {
    st.slots[static_cast<std::size_t>(i)] = c_cpi_[static_cast<std::size_t>(i)].value();
  }
  return st;
}

PipelineResult Pipeline::run(u64 max_committed, u64 warmup_committed) {
  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  if (warmup_committed > 0) {
    commit_limit_ = warmup_committed;
    while (committed_ < warmup_committed && step()) {
    }
    base = snapshot_stats();
    base_committed = committed_;
    base_cycles = now_;
  }

  const u64 target = warmup_committed + max_committed;
  commit_limit_ = target;
  while (committed_ < target && step()) {
  }

  return result_window(base, base_committed, base_cycles);
}

PipelineResult Pipeline::result_window(const StatSet& base, u64 base_committed,
                                       Cycle base_cycles) const {
  PipelineResult r;
  r.committed = committed_ - base_committed;
  r.cycles = now_ - base_cycles;
  r.stats = snapshot_stats().diff(base);
  r.stats.set("ipc", r.committed == 0 || r.cycles == 0
                         ? 0.0
                         : static_cast<double>(r.committed) / static_cast<double>(r.cycles));
  // The measured window's CPI stack; cpi.* counters are monotonic, so the
  // warmup diff above already windowed them.
  r.cpi = obs::CpiStack::from_stats(r.stats);
  return r;
}

// ---- snapshot ---------------------------------------------------------------

void Pipeline::save_state(snap::Writer& w) const {
  // Rename state.
  w.put_u32(static_cast<u32>(rename_map_.size()));
  for (const int v : rename_map_) w.put_i32(v);
  w.put_u32(static_cast<u32>(free_list_.size()));
  for (const int v : free_list_) w.put_i32(v);
  w.put_u32(static_cast<u32>(phys_ready_.size()));
  for (const u8 v : phys_ready_) w.put_u8(v);
  for (const SeqNum v : phys_producer_) w.put_u64(v);

  // Scheduler kernel.
  window_.save_state(w);
  w.put_u64(next_seq_);
  w.put_u32(frontend_.size());
  for (u32 i = 0; i < frontend_.size(); ++i) {
    const FetchedInst& f = frontend_.at(i);
    put_dyninst(w, f.di);
    w.put_u64(f.seq);
    w.put_u64(f.arrive);
    w.put_bool(f.pred.predicted);
    w.put_u8(static_cast<u8>(f.pred.stage));
    w.put_bool(f.pred.critical);
    w.put_u64(f.history);
    w.put_bool(f.safe_mode);
    w.put_bool(f.retire_fault);
    w.put_bool(f.wrong_path);
  }
  w.put_u32(refetch_.size());
  for (u32 i = 0; i < refetch_.size(); ++i) {
    const RefetchInst& re = refetch_.at(i);
    put_dyninst(w, re.di);
    w.put_bool(re.safe_mode);
  }
  wheel_.save_state(w);
  w.put_u64(event_shift_);
  // Delay-kernel state rides config-gated so baseline byte streams are
  // unchanged (the kernel choice is part of the warmup key, so a snapshot
  // can never be restored into the other mode).
  if (delay_mode_) dq_.save_state(w);

  // Cycle state.
  w.put_u64(now_);
  w.put_u64(committed_);
  w.put_u64(age_counter_);
  w.put_i32(iq_count_);
  w.put_i32(lq_count_);
  w.put_i32(sq_count_);
  w.put_bool(source_done_);
  w.put_u64(fetch_stall_until_);
  w.put_bool(fetch_blocked_on_.has_value());
  w.put_u64(fetch_blocked_on_.value_or(0));
  w.put_bool(wrong_path_active_);
  w.put_u64(wrong_path_pc_);
  w.put_i32(stall_pending_);
  w.put_i32(stall_pending_ep_);
  w.put_u64(squash_recover_until_);
  w.put_i32(slots_frozen_now_);
  w.put_i32(slots_frozen_next_);
  w.put_bool(mem_blocked_now_);
  w.put_bool(mem_blocked_next_);
  w.put_u64(last_commit_cycle_);

  // Metrics and components.
  snap::put_statset(w, stats_);
  registry_.save_state(w);
  memory_.save_state(w);
  bpred_.save_state(w);
  fus_.save_state(w);
}

void Pipeline::restore_state(snap::Reader& r) {
  if (r.get_u32() != rename_map_.size()) throw snap::SnapshotError("rename map size mismatch");
  for (int& v : rename_map_) v = r.get_i32();
  const u32 fl = r.get_u32();
  if (fl > static_cast<u32>(cfg_.phys_regs)) throw snap::SnapshotError("free list over capacity");
  free_list_.resize(fl);
  for (int& v : free_list_) v = r.get_i32();
  if (r.get_u32() != phys_ready_.size()) throw snap::SnapshotError("phys reg count mismatch");
  for (u8& v : phys_ready_) v = r.get_u8();
  for (SeqNum& v : phys_producer_) v = r.get_u64();

  window_.restore_state(r);
  next_seq_ = r.get_u64();
  const u32 fn = r.get_u32();
  if (fn > frontend_.capacity()) throw snap::SnapshotError("frontend queue over capacity");
  frontend_.clear();
  for (u32 i = 0; i < fn; ++i) {
    FetchedInst f;
    f.di = get_dyninst(r);
    f.seq = r.get_u64();
    f.arrive = r.get_u64();
    f.pred.predicted = r.get_bool();
    f.pred.stage = static_cast<timing::OooStage>(r.get_u8());
    f.pred.critical = r.get_bool();
    f.history = r.get_u64();
    f.safe_mode = r.get_bool();
    f.retire_fault = r.get_bool();
    f.wrong_path = r.get_bool();
    frontend_.push_back(f);
  }
  const u32 rn = r.get_u32();
  if (rn > refetch_.capacity()) throw snap::SnapshotError("refetch queue over capacity");
  refetch_.clear();
  for (u32 i = 0; i < rn; ++i) {
    RefetchInst re;
    re.di = get_dyninst(r);
    re.safe_mode = r.get_bool();
    refetch_.push_back(re);
  }
  wheel_.restore_state(r);
  event_shift_ = r.get_u64();
  if (delay_mode_) dq_.restore_state(r);

  now_ = r.get_u64();
  committed_ = r.get_u64();
  age_counter_ = r.get_u64();
  iq_count_ = r.get_i32();
  lq_count_ = r.get_i32();
  sq_count_ = r.get_i32();
  source_done_ = r.get_bool();
  fetch_stall_until_ = r.get_u64();
  const bool have_blocked = r.get_bool();
  const SeqNum blocked_seq = r.get_u64();
  fetch_blocked_on_ = have_blocked ? std::optional<SeqNum>(blocked_seq) : std::nullopt;
  wrong_path_active_ = r.get_bool();
  wrong_path_pc_ = r.get_u64();
  stall_pending_ = r.get_i32();
  stall_pending_ep_ = r.get_i32();
  squash_recover_until_ = r.get_u64();
  slots_frozen_now_ = r.get_i32();
  slots_frozen_next_ = r.get_i32();
  mem_blocked_now_ = r.get_bool();
  mem_blocked_next_ = r.get_bool();
  last_commit_cycle_ = r.get_u64();

  stats_ = snap::get_statset(r);
  registry_.restore_state(r);
  memory_.restore_state(r);
  bpred_.restore_state(r);
  fus_.restore_state(r);
}

// ---- scheme factories ---------------------------------------------------------

SchemeConfig scheme_fault_free() {
  SchemeConfig s;
  s.name = "fault-free";
  return s;
}

SchemeConfig scheme_razor() {
  SchemeConfig s;
  s.name = "razor";
  s.use_predictor = false;
  return s;
}

// All factory schemes recover unpredicted faults with the RazorII-style
// in-place replay (Section 2.1.2); squash-refetch remains available through
// SchemeConfig::recovery and is compared in bench_ablation.

SchemeConfig scheme_error_padding() {
  SchemeConfig s;
  s.name = "ep";
  s.use_predictor = true;
  s.error_padding = true;
  return s;
}

SchemeConfig scheme_abs() {
  SchemeConfig s;
  s.name = "abs";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kAge;
  return s;
}

SchemeConfig scheme_ffs() {
  SchemeConfig s;
  s.name = "ffs";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kFaultyFirst;
  return s;
}

SchemeConfig scheme_cds() {
  SchemeConfig s;
  s.name = "cds";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kCriticalityDriven;
  return s;
}

}  // namespace vasim::cpu
