// Adaptive-clocking (DVFS) configuration shared by the controllers, the
// runner plumbing, the CLI and the serve protocol.
//
// The clock period is tracked in integer permille of the nominal period
// (1000 = today's fixed clock), so controller arithmetic, snapshots and
// checksums never depend on accumulated floating-point state.  A run's
// simulated wall time is the sum of the per-cycle period
// (`dvfs.wall_units`, in permille-cycles); throughput is then
// committed * 1000 / wall_units instructions per nominal cycle.
#ifndef VASIM_ADAPT_DVFS_HPP
#define VASIM_ADAPT_DVFS_HPP

#include <stdexcept>
#include <string>
#include <string_view>

#include "src/common/types.hpp"
#include "src/snap/io.hpp"

namespace vasim::adapt {

/// Closed-loop clock policy.  kStatic is bit-for-bit today's behavior: no
/// controller, no state-dependent delay model, period pinned at 1000.
enum class DvfsPolicy : u8 { kStatic = 0, kReactive = 1, kPredictive = 2 };

std::string_view to_string(DvfsPolicy p);

/// Parses a policy name; throws std::invalid_argument naming the knob.
DvfsPolicy dvfs_policy_from_string(std::string_view s);

struct DvfsConfig {
  DvfsPolicy policy = DvfsPolicy::kStatic;
  u64 epoch = 2000;                  ///< committed instructions per controller step
  u32 period_min_permille = 950;     ///< overclock floor
  u32 period_max_permille = 1120;    ///< underclock ceiling
  double target_violation_pct = 0.5; ///< epoch violation budget (% of commits)
  u32 quiet_epochs = 3;              ///< reactive: lower after this many quiet epochs
  u32 step_permille = 5;             ///< reactive step / predictive bucket width

  [[nodiscard]] bool adaptive() const { return policy != DvfsPolicy::kStatic; }
};

/// validate_core_config-style named errors for every controller knob.
void validate_dvfs_config(const DvfsConfig& cfg);

/// Stable codec, used by the snapshot META chunk and the warmup key.
void put_dvfs_config(snap::Writer& w, const DvfsConfig& cfg);
DvfsConfig get_dvfs_config(snap::Reader& r);

}  // namespace vasim::adapt

#endif  // VASIM_ADAPT_DVFS_HPP
