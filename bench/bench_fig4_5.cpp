// Reproduces Figures 4 and 5: performance and energy-delay overhead of the
// violation-aware schemes (ABS/FFS/CDS), normalized to the Error Padding
// baseline, during faulty execution at the low fault rate (VDD = 1.04 V).
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  const core::RunnerConfig rc = bench::runner_config_from_env();
  const core::SweepRunner sweeper(rc);
  bench::print_run_header(
      "Figures 4 & 5: ABS/FFS/CDS overheads normalized to EP at VDD = 1.04 V", rc,
      sweeper.workers());

  TextTable perf({"benchmark", "ABS", "FFS", "CDS"});
  TextTable ed({"benchmark", "ABS", "FFS", "CDS"});
  double sum_perf[3] = {0, 0, 0};
  double sum_ed[3] = {0, 0, 0};
  int n = 0;

  core::SweepReport report;
  const std::vector<bench::SupplyResults> grid = bench::run_grid(
      sweeper, workload::spec2006_profiles(), timing::SupplyPoints::kLowFault, &report);
  for (const bench::SupplyResults& r : grid) {
    const std::string& bench_name = r.fault_free.benchmark;
    const core::Overheads ep = bench::scheme_overhead(r, "ep");
    const char* names[3] = {"abs", "ffs", "cds"};
    std::vector<std::string> prow = {bench_name};
    std::vector<std::string> erow = {bench_name};
    for (int i = 0; i < 3; ++i) {
      const core::Overheads o = bench::scheme_overhead(r, names[i]);
      const double np = bench::normalized_to_ep(o.perf_pct, ep.perf_pct);
      const double ne = bench::normalized_to_ep(o.ed_pct, ep.ed_pct);
      prow.push_back(TextTable::fmt(np));
      erow.push_back(TextTable::fmt(ne));
      sum_perf[i] += np;
      sum_ed[i] += ne;
    }
    perf.add_row(prow);
    ed.add_row(erow);
    ++n;
  }
  std::vector<std::string> pavg = {"AVERAGE"};
  std::vector<std::string> eavg = {"AVERAGE"};
  double best_perf = 1.0;
  for (int i = 0; i < 3; ++i) {
    pavg.push_back(TextTable::fmt(sum_perf[i] / n));
    eavg.push_back(TextTable::fmt(sum_ed[i] / n));
    best_perf = std::min(best_perf, sum_perf[i] / n);
  }
  perf.add_row(pavg);
  ed.add_row(eavg);

  std::cout << perf.render("Figure 4: relative performance overhead vs EP (lower is better)")
            << "\n";
  std::cout << ed.render("Figure 5: relative ED overhead vs EP (lower is better)") << "\n";
  std::cout << "Headline: our schemes remove "
            << TextTable::fmt((1.0 - best_perf) * 100.0, 0)
            << "% of EP's performance overhead on average at 1.04 V\n"
            << "(paper: 87% average reduction; per-benchmark 64-97%).\n";
  bench::emit_json("fig4_5", report);
  return 0;
}
