#include "src/adapt/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vasim::adapt {

// ---- reactive ---------------------------------------------------------------

u32 ReactiveController::next_period(const EpochStats& e, u32 current) {
  if (e.violation_pct > cfg_.target_violation_pct) {
    quiet_ = 0;
    // Proportional raise: the further over budget, the bigger the step.
    const double over = e.violation_pct / std::max(cfg_.target_violation_pct, 1e-9);
    const u32 mult = over > 8.0 ? 4u : over > 4.0 ? 3u : over > 2.0 ? 2u : 1u;
    return current + cfg_.step_permille * mult;
  }
  if (e.hot || e.droopy) return current;  // sensor gate: adverse conditions
  if (++quiet_ >= cfg_.quiet_epochs) {
    quiet_ = 0;
    return current >= cfg_.step_permille ? current - cfg_.step_permille : current;
  }
  return current;
}

void ReactiveController::save_state(snap::Writer& w) const { w.put_u32(quiet_); }

void ReactiveController::restore_state(snap::Reader& r) { quiet_ = r.get_u32(); }

// ---- predictive -------------------------------------------------------------

PredictiveController::PredictiveController(const DvfsConfig& cfg) : cfg_(cfg) {
  const std::size_t n =
      static_cast<std::size_t>(cfg.period_max_permille - cfg.period_min_permille) /
          cfg.step_permille +
      1;
  viol_.assign(n, 0.0);
  cpi_.assign(n, 0.0);
  visits_.assign(n, 0);
  w_ = {1.0, 0.0, 0.0, 0.0};
}

std::size_t PredictiveController::bucket_of(u32 period) const {
  const u32 p = std::clamp(period, cfg_.period_min_permille, cfg_.period_max_permille);
  return static_cast<std::size_t>(p - cfg_.period_min_permille) / cfg_.step_permille;
}

u32 PredictiveController::period_of(std::size_t b) const {
  return cfg_.period_min_permille + static_cast<u32>(b) * cfg_.step_permille;
}

double PredictiveController::predicted_viol(std::size_t b) const {
  if (visits_[b] > 0) return viol_[b];
  // Nearest visited bucket on each side; violation rate falls with period,
  // so extrapolate upward optimistically and downward pessimistically --
  // except that the immediate neighbor of a visited bucket inherits its
  // value, which is the optimism that drives stepwise exploration.
  constexpr double kSlope = 0.4;  // pct per bucket of distance
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < visits_.size(); ++v) {
    if (visits_[v] == 0) continue;
    const double dist =
        static_cast<double>(v > b ? v - b : b - v);
    double est;
    if (v > b) {
      // b is below a visited bucket: expect more violations than there.
      est = viol_[v] + kSlope * (dist - 1.0);
    } else {
      // b is above: expect fewer.
      est = std::max(0.0, viol_[v] - kSlope * dist);
    }
    best = std::min(best, std::max(0.0, est));
  }
  return std::isfinite(best) ? best : 0.0;
}

u32 PredictiveController::next_period(const EpochStats& e, u32 current) {
  const std::size_t b = bucket_of(current);
  const double cpi_obs =
      e.committed > 0 ? static_cast<double>(e.cycles) / static_cast<double>(e.committed) : 1.0;

  // Table update for the bucket just measured.
  constexpr double kAlpha = 0.3;
  if (visits_[b] == 0) {
    viol_[b] = e.violation_pct;
    cpi_[b] = cpi_obs;
  } else {
    viol_[b] = (1.0 - kAlpha) * viol_[b] + kAlpha * e.violation_pct;
    cpi_[b] = (1.0 - kAlpha) * cpi_[b] + kAlpha * cpi_obs;
  }
  ++visits_[b];
  ++steps_;

  // Online linear CPI model over epoch features (SGD, small fixed rate).
  const std::array<double, 4> f = {1.0, e.ipc, e.mem_fraction, e.violation_pct / 100.0};
  double cpi_hat = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) cpi_hat += w_[i] * f[i];
  const double err = cpi_obs - cpi_hat;
  constexpr double kLr = 0.02;
  for (std::size_t i = 0; i < f.size(); ++i) {
    w_[i] = std::clamp(w_[i] + kLr * err * f[i], -50.0, 50.0);
  }

  // Pick the bucket minimizing predicted wall per instruction within the
  // violation budget; if nothing fits the budget, flee to the quietest
  // prediction (ties break toward the longer period).
  double best_cost = std::numeric_limits<double>::infinity();
  double best_viol = std::numeric_limits<double>::infinity();
  std::size_t best = b;
  std::size_t calmest = b;
  bool any_feasible = false;
  for (std::size_t c = 0; c < visits_.size(); ++c) {
    const double v = predicted_viol(c);
    double cpi_pred;
    if (visits_[c] > 0) {
      cpi_pred = cpi_[c];
    } else {
      cpi_pred = w_[0] + w_[1] * e.ipc + w_[2] * e.mem_fraction + w_[3] * (v / 100.0);
      cpi_pred = std::max(cpi_pred, 0.2);
    }
    const double cost = static_cast<double>(period_of(c)) * cpi_pred;
    if (v < best_viol || (v == best_viol && c > calmest)) {
      best_viol = v;
      calmest = c;
    }
    if (v > cfg_.target_violation_pct) continue;
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
      any_feasible = true;
    }
  }
  return period_of(any_feasible ? best : calmest);
}

void PredictiveController::save_state(snap::Writer& w) const {
  w.put_u32(static_cast<u32>(viol_.size()));
  for (const double v : viol_) w.put_f64(v);
  for (const double v : cpi_) w.put_f64(v);
  for (const u64 v : visits_) w.put_u64(v);
  for (const double v : w_) w.put_f64(v);
  w.put_u64(steps_);
}

void PredictiveController::restore_state(snap::Reader& r) {
  const u32 n = r.get_u32();
  if (n != viol_.size()) {
    throw snap::SnapshotError("predictive controller bucket count " + std::to_string(n) +
                              " != configured " + std::to_string(viol_.size()));
  }
  for (double& v : viol_) v = r.get_f64();
  for (double& v : cpi_) v = r.get_f64();
  for (u64& v : visits_) v = r.get_u64();
  for (double& v : w_) v = r.get_f64();
  steps_ = r.get_u64();
}

std::unique_ptr<DvfsController> make_controller(const DvfsConfig& cfg) {
  switch (cfg.policy) {
    case DvfsPolicy::kStatic: return nullptr;
    case DvfsPolicy::kReactive: return std::make_unique<ReactiveController>(cfg);
    case DvfsPolicy::kPredictive: return std::make_unique<PredictiveController>(cfg);
  }
  return nullptr;
}

}  // namespace vasim::adapt
