// Unit tests for the core contribution layer: TEP, energy model, runner.
#include <gtest/gtest.h>

#include "src/core/energy.hpp"
#include "src/core/runner.hpp"
#include "src/core/tep.hpp"

namespace vasim::core {
namespace {

using timing::OooStage;

TEST(Tep, ColdTableDoesNotPredict) {
  TimingErrorPredictor tep;
  EXPECT_FALSE(tep.predict(0x1000, 0, 0).predicted);
}

TEST(Tep, LearnsAfterOneFaultAndDecays) {
  TepConfig cfg;
  cfg.sensor_gating = false;
  TimingErrorPredictor tep(cfg);
  tep.train(0x1000, 0, true, OooStage::kExecute);
  const cpu::FaultPrediction p = tep.predict(0x1000, 0, 0);
  EXPECT_TRUE(p.predicted);
  EXPECT_EQ(p.stage, OooStage::kExecute);
  // counter_on_alloc = 2: two clean observations clear the prediction.
  tep.train(0x1000, 0, false, OooStage::kExecute);
  EXPECT_TRUE(tep.predict(0x1000, 0, 0).predicted);
  tep.train(0x1000, 0, false, OooStage::kExecute);
  EXPECT_FALSE(tep.predict(0x1000, 0, 0).predicted);
}

TEST(Tep, TagMismatchDoesNotPredict) {
  TepConfig cfg;
  cfg.sensor_gating = false;
  TimingErrorPredictor tep(cfg);
  tep.train(0x1000, 0, true, OooStage::kIssueSelect);
  // Same table index (pc + entries*4 keeps the low index bits), new tag.
  const Pc alias = 0x1000 + static_cast<Pc>(cfg.entries) * 4;
  EXPECT_FALSE(tep.predict(alias, 0, 0).predicted);
}

TEST(Tep, HistoryIndexSeparatesContexts) {
  TepConfig cfg;
  cfg.sensor_gating = false;
  TimingErrorPredictor tep(cfg);
  tep.train(0x1000, /*history=*/0b1010, true, OooStage::kIssueSelect);
  EXPECT_TRUE(tep.predict(0x1000, 0b1010, 0).predicted);
  EXPECT_FALSE(tep.predict(0x1000, 0b0101, 0).predicted);
}

TEST(Tep, MostRecentEntryEviction) {
  TepConfig cfg;
  cfg.sensor_gating = false;
  TimingErrorPredictor tep(cfg);
  const Pc a = 0x1000;
  const Pc b = a + static_cast<Pc>(cfg.entries) * 4;  // same index, distinct tag
  tep.train(a, 0, true, OooStage::kExecute);
  EXPECT_TRUE(tep.predict(a, 0, 0).predicted);
  tep.train(b, 0, true, OooStage::kMemory);
  EXPECT_TRUE(tep.predict(b, 0, 0).predicted);
  EXPECT_FALSE(tep.predict(a, 0, 0).predicted) << "MRE allocation evicts the old owner";
  EXPECT_EQ(tep.allocations(), 2u);
}

TEST(Tep, CriticalityConfidenceCounter) {
  TepConfig cfg;
  cfg.sensor_gating = false;
  TimingErrorPredictor tep(cfg);
  tep.train(0x2000, 0, true, OooStage::kIssueSelect);
  EXPECT_FALSE(tep.predict(0x2000, 0, 0).critical);
  tep.mark_critical(0x2000, 0, true);
  tep.mark_critical(0x2000, 0, true);
  EXPECT_TRUE(tep.predict(0x2000, 0, 0).critical);
  tep.mark_critical(0x2000, 0, false);
  EXPECT_FALSE(tep.predict(0x2000, 0, 0).critical);
}

TEST(Tep, SensorGatingHoldsBackWeakEntries) {
  const timing::Environment env;
  TepConfig cfg;
  cfg.sensor_gating = true;
  TimingErrorPredictor tep(cfg, &env);
  tep.train(0x3000, 0, true, OooStage::kIssueSelect);  // counter = 2 (weak)
  // Find cool/quiet and hot/droopy cycles.
  int predicted = 0, total = 0;
  for (Cycle c = 0; c < 40000; c += 13) {
    predicted += tep.predict(0x3000, 0, c).predicted;
    ++total;
  }
  EXPECT_GT(predicted, 0);
  EXPECT_LT(predicted, total) << "weak entries must be gated in favourable conditions";
  // Saturated entries always predict.
  tep.train(0x3000, 0, true, OooStage::kIssueSelect);  // counter -> 3
  for (Cycle c = 0; c < 1000; c += 13) {
    EXPECT_TRUE(tep.predict(0x3000, 0, c).predicted);
  }
}

TEST(Tep, RejectsNonPowerOfTwo) {
  TepConfig cfg;
  cfg.entries = 1000;
  EXPECT_THROW(TimingErrorPredictor{cfg}, std::invalid_argument);
}

TEST(Tep, StorageBitsMatchFieldLayout) {
  TepConfig cfg;
  cfg.entries = 4096;
  TimingErrorPredictor tep(cfg);
  EXPECT_EQ(tep.storage_bits(), 4096u * 24u);
}

TEST(Energy, ScalesWithVoltage) {
  StatSet s;
  s.inc("ev.fetch", 1000);
  s.inc("cycles", 1000);
  const EnergyModel em;
  const EnergyReport nominal = em.compute(s, 1.10);
  const EnergyReport low = em.compute(s, 0.97);
  EXPECT_GT(nominal.dynamic_nj, low.dynamic_nj);
  EXPECT_GT(nominal.leakage_nj, low.leakage_nj);
  EXPECT_NEAR(low.dynamic_nj / nominal.dynamic_nj, (0.97 * 0.97) / (1.1 * 1.1), 1e-9);
}

TEST(Energy, EdpIsEnergyTimesCycles) {
  StatSet s;
  s.inc("ev.commit", 500);
  s.inc("cycles", 2000);
  const EnergyModel em;
  const EnergyReport r = em.compute(s, 1.10);
  EXPECT_NEAR(r.edp, r.total_nj() * 2000.0, 1e-6);
}

TEST(Energy, MoreEventsMoreEnergy) {
  StatSet a, b;
  a.inc("ev.fu.alu", 100);
  a.inc("cycles", 100);
  b.inc("ev.fu.alu", 200);
  b.inc("cycles", 100);
  const EnergyModel em;
  EXPECT_GT(em.compute(b, 1.1).total_nj(), em.compute(a, 1.1).total_nj());
}

TEST(Energy, MemoryHierarchyEventsCount) {
  StatSet s;
  s.inc("cache.l2.misses", 10);
  s.inc("cycles", 1);
  const EnergyModel em;
  EXPECT_GT(em.compute(s, 1.1).dynamic_nj, 10 * 0.5);  // >= 10 memory events
}

TEST(Runner, OverheadMath) {
  RunResult base, x;
  base.ipc = 2.0;
  x.ipc = 1.6;
  base.energy.edp = 100.0;
  x.energy.edp = 125.0;
  const Overheads o = overhead_vs(base, x);
  EXPECT_NEAR(o.perf_pct, 25.0, 1e-9);
  EXPECT_NEAR(o.ed_pct, 25.0, 1e-9);
}

TEST(Runner, ComparativeSchemesOrder) {
  const auto schemes = comparative_schemes();
  ASSERT_EQ(schemes.size(), 5u);
  EXPECT_EQ(schemes[0].name, "razor");
  EXPECT_EQ(schemes[1].name, "ep");
  EXPECT_EQ(schemes[2].name, "abs");
  EXPECT_EQ(schemes[3].name, "ffs");
  EXPECT_EQ(schemes[4].name, "cds");
}

TEST(Runner, EndToEndSmallRun) {
  RunnerConfig rc;
  rc.instructions = 5000;
  rc.warmup = 2000;
  const ExperimentRunner runner(rc);
  const auto prof = workload::spec2006_profile("tonto");
  const RunResult ff = runner.run_fault_free(prof, 1.04);
  EXPECT_EQ(ff.committed, 5000u);
  EXPECT_GT(ff.ipc, 0.05);
  EXPECT_GT(ff.energy.total_nj(), 0.0);

  const RunResult ep = runner.run(prof, cpu::scheme_error_padding(), 0.97);
  EXPECT_EQ(ep.committed, 5000u);
  EXPECT_GT(ep.fault_rate_pct, 0.5);
  EXPECT_LT(ep.ipc, ff.ipc * 1.05);
}

TEST(Runner, DeterministicResults) {
  RunnerConfig rc;
  rc.instructions = 4000;
  rc.warmup = 1000;
  const ExperimentRunner runner(rc);
  const auto prof = workload::spec2006_profile("bzip2");
  const RunResult a = runner.run(prof, cpu::scheme_abs(), 0.97);
  const RunResult b = runner.run(prof, cpu::scheme_abs(), 0.97);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_DOUBLE_EQ(a.energy.edp, b.energy.edp);
}

}  // namespace
}  // namespace vasim::core
