// Semantics-checker suite: proves the runtime invariant observer actually
// observes.
//
// Three layers:
//   1. Directed mutation tests drive the checker's hook surface with
//      synthetic event streams -- one conforming stream per mechanism (must
//      be clean) and one deliberately broken stream per paper invariant
//      (the checker must fire).  A checker that never fires is
//      indistinguishable from no checker; these tests pin every rule.
//   2. Metamorphic differential tests: with a null fault environment every
//      scheme must degenerate to bit-identical execution; with faults, the
//      stall-only schemes (Razor micro-stall, Error Padding) may never beat
//      the fault-free machine, and every scheme commits exactly the
//      architectural instruction stream.
//   3. Unit tests for the bisection shrinker behind tools/check_probe.
//
// Reproduce any parameterized failure with VASIM_FUZZ_SEEDS=<seed> (see
// tests/fuzz_util.hpp and docs/testing.md).
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>

#include "src/check/semantics.hpp"
#include "src/check/shrink.hpp"
#include "src/core/runner.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"
#include "tests/fuzz_util.hpp"

namespace vasim {
namespace {

using check::SemanticsChecker;
using cpu::InstState;
using cpu::SelectOutcome;

// CI builds grep for this test by name: it fails when the scheduler hooks
// were compiled out of a test build (VASIM_CHECK_HOOKS=0), which would turn
// every "checker is clean" assertion in the tree into a silent no-op.
TEST(CheckHooks, HooksCompiledIn) { EXPECT_TRUE(cpu::kCheckHooksEnabled); }

bool fired(const SemanticsChecker& chk, const std::string& invariant) {
  for (const check::Violation& v : chk.violations()) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

u64 bits_of(double v) {
  u64 b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// ---- synthetic event-stream driver ----------------------------------------
//
// Emits hook sequences in exactly the order pipeline.cpp does (lsq search,
// then FU allocation, then issue, then the kIssued select visit), so a
// conforming stream here is indistinguishable from a real run's.
struct Stream {
  cpu::CoreConfig cfg;
  cpu::SchemeConfig scheme;
  SemanticsChecker chk;
  Cycle now = 0;

  explicit Stream(cpu::SchemeConfig s, cpu::CoreConfig c = {})
      : cfg(c), scheme(std::move(s)), chk(cfg, scheme) {}

  /// Advances to the next scheduling cycle.
  void begin_cycle(int frozen = 0, bool mem_blocked = false) {
    ++now;
    chk.on_cycle_start(now, frozen, mem_blocked);
  }

  /// One global stall cycle (the wheel does not pop; no cycle start).
  void stall(bool ep_padding = false) {
    ++now;
    chk.on_global_stall(now, ep_padding);
  }

  InstState make(SeqNum seq, isa::OpClass op = isa::OpClass::kIntAlu, int dst = kNoReg,
                 int s1 = kNoReg, int s2 = kNoReg, Addr addr = 0) {
    InstState is;
    is.di.seq = seq;
    is.di.op = op;
    is.di.pc = 0x4000 + seq * 8;
    is.di.mem_addr = addr;
    is.age = seq;
    is.phys_dst = dst;
    is.phys_src1 = s1;
    is.phys_src2 = s2;
    return is;
  }

  InstState dispatch(SeqNum seq, isa::OpClass op = isa::OpClass::kIntAlu, int dst = kNoReg,
                     int s1 = kNoReg, int s2 = kNoReg, Addr addr = 0) {
    InstState is = make(seq, op, dst, s1, s2, addr);
    chk.on_dispatched(now, is);
    return is;
  }

  /// First unit of the kind serving `op` (FuPool's kind-grouped layout).
  int unit_for(isa::OpClass op) const {
    switch (op) {
      case isa::OpClass::kIntMul:
      case isa::OpClass::kIntDiv: return cfg.simple_alus;
      case isa::OpClass::kBranch: return cfg.simple_alus + cfg.complex_alus;
      case isa::OpClass::kLoad: return cfg.simple_alus + cfg.complex_alus + cfg.branch_units;
      case isa::OpClass::kStore:
        return cfg.simple_alus + cfg.complex_alus + cfg.branch_units + cfg.load_ports;
      default: return 0;
    }
  }

  /// Conforming issue: the exact hook burst issue_one() emits, with the
  /// occupancy the paper's FUSR rule demands.
  void issue(const InstState& is, Cycle exec_lat = 1, Cycle lat_delta = 0) {
    const bool fu_extra = scheme.vte && is.pred_fault &&
                          is.pred_stage != timing::OooStage::kWriteback;
    const Cycle occupy =
        (is.di.op == isa::OpClass::kIntDiv ? exec_lat + lat_delta : 1) + (fu_extra ? 1 : 0);
    issue_with(is, exec_lat, lat_delta, unit_for(is.di.op), now + occupy);
  }

  void issue_with(const InstState& is, Cycle exec_lat, Cycle lat_delta, int unit,
                  Cycle next_free) {
    if (isa::is_mem(is.di.op)) chk.on_lsq_search(now, is);
    chk.on_fu_allocated(now, is, unit, next_free);
    chk.on_issued(now, is, exec_lat, lat_delta);
    chk.on_select_visit(now, is, SelectOutcome::kIssued);
  }
};

// ---- conforming streams (the checker must stay silent) --------------------

TEST(SemanticsStream, ConformingScalarLifecycleIsClean) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, /*dst=*/5);
  s.begin_cycle();
  s.chk.on_select_pass(s.now, 1);
  s.issue(i0);  // broadcast due at issue + 1
  s.begin_cycle();
  s.chk.on_tag_broadcast(s.now, i0, 0);
  s.begin_cycle();
  s.chk.on_completed(s.now, i0);
  s.begin_cycle();
  s.chk.on_committed(s.now, i0);
  EXPECT_TRUE(s.chk.ok()) << s.chk.report();
  EXPECT_GT(s.chk.checks(), 0u);
}

TEST(SemanticsStream, ConformingVtePadFreezeAndStallShiftIsClean) {
  // Predicted-faulty writeback-stage instruction under VTE: one pad cycle,
  // one frozen slot next cycle, and a global stall that shifts every due
  // time by one.
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, /*dst=*/7);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kWriteback;
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  s.issue(i0, /*exec_lat=*/1, /*lat_delta=*/1);  // broadcast due two cycles out
  s.begin_cycle(/*frozen=*/1);                   // the paper's frozen issue slot
  s.stall();                                     // unrelated global stall
  s.begin_cycle();                               // stored time catches the due cycle
  s.chk.on_tag_broadcast(s.now, i0, 0);
  s.begin_cycle();
  s.chk.on_completed(s.now, i0);
  s.begin_cycle();
  s.chk.on_committed(s.now, i0);
  EXPECT_TRUE(s.chk.ok()) << s.chk.report();
}

// ---- directed mutations (the checker must fire) ---------------------------

TEST(SemanticsStream, MutatedBroadcastTimeFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  s.begin_cycle();
  s.issue(i0);
  s.begin_cycle();
  s.begin_cycle();  // one cycle LATE: violates issue + exec_lat + pad
  s.chk.on_tag_broadcast(s.now, i0, 0);
  EXPECT_TRUE(fired(s.chk, "delayed-broadcast")) << s.chk.report();
}

TEST(SemanticsStream, MutatedVtePadCountFires) {
  // Predicted-faulty under VTE issued with zero pad cycles.
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kExecute;
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  s.issue_with(i0, /*exec_lat=*/1, /*lat_delta=*/0, s.unit_for(i0.di.op), s.now + 2);
  EXPECT_TRUE(fired(s.chk, "delayed-broadcast")) << s.chk.report();
}

TEST(SemanticsStream, MutatedCompletionTimeFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  s.begin_cycle();
  s.issue(i0);
  s.begin_cycle();
  s.chk.on_tag_broadcast(s.now, i0, 0);
  s.chk.on_completed(s.now, i0);  // same cycle as the broadcast: one early
  EXPECT_TRUE(fired(s.chk, "completion-time")) << s.chk.report();
}

TEST(SemanticsStream, IssueIntoFrozenSlotFires) {
  cpu::CoreConfig cfg;
  cfg.issue_width = 1;
  Stream s(cpu::scheme_abs(), cfg);
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kWriteback;
  s.chk.on_dispatched(s.now, i0);
  const InstState i1 = s.dispatch(1, isa::OpClass::kIntAlu, 6);
  s.begin_cycle();
  s.issue(i0, 1, 1);
  s.begin_cycle(/*frozen=*/1);  // correctly reported freeze...
  s.issue(i1);                  // ...but something issued into it anyway
  EXPECT_TRUE(fired(s.chk, "slot-freeze")) << s.chk.report();
}

TEST(SemanticsStream, UnreportedFreezeFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kWriteback;
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  s.issue(i0, 1, 1);
  s.begin_cycle(/*frozen=*/0);  // freeze owed but not reported
  EXPECT_TRUE(fired(s.chk, "slot-freeze")) << s.chk.report();
}

TEST(SemanticsStream, BusyFunctionalUnitFires) {
  // The unpipelined divider occupies its unit for the full latency; a
  // second divide entering the same unit the next cycle violates the FUSR.
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntDiv, 5);
  const InstState i1 = s.dispatch(1, isa::OpClass::kIntDiv, 6);
  s.begin_cycle();
  s.issue(i0, s.cfg.div_latency);
  s.begin_cycle();
  s.issue(i1, s.cfg.div_latency);  // same (only) complex unit, still busy
  EXPECT_TRUE(fired(s.chk, "fusr-occupancy")) << s.chk.report();
}

TEST(SemanticsStream, WrongReservationLengthFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  s.begin_cycle();
  // A pipelined ALU op must reserve exactly one cycle; claim two.
  s.issue_with(i0, 1, 0, s.unit_for(i0.di.op), s.now + 2);
  EXPECT_TRUE(fired(s.chk, "fusr-occupancy")) << s.chk.report();
}

TEST(SemanticsStream, YoungerBeforeOlderSelectFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  const InstState i1 = s.dispatch(1, isa::OpClass::kIntAlu, 6);
  s.begin_cycle();
  s.chk.on_select_pass(s.now, 1);
  s.chk.on_select_visit(s.now, i1, SelectOutcome::kFuBusy);
  s.chk.on_select_visit(s.now, i0, SelectOutcome::kFuBusy);  // ABS skipped the elder
  EXPECT_TRUE(fired(s.chk, "select-order")) << s.chk.report();
}

TEST(SemanticsStream, NotReadyCandidateFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  s.dispatch(0, isa::OpClass::kIntAlu, /*dst=*/5);
  const InstState i1 = s.dispatch(1, isa::OpClass::kIntAlu, 6, /*s1=*/5);  // waits on 5
  s.begin_cycle();
  s.chk.on_select_pass(s.now, 1);
  s.chk.on_select_visit(s.now, i1, SelectOutcome::kFuBusy);  // operand outstanding
  EXPECT_TRUE(fired(s.chk, "select-candidate")) << s.chk.report();
}

TEST(SemanticsStream, WrongCdlCountFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  s.dispatch(1, isa::OpClass::kIntAlu, 6, /*s1=*/5);  // one true dependent
  s.begin_cycle();
  s.issue(i0);
  s.begin_cycle();
  s.chk.on_tag_broadcast(s.now, i0, /*deps=*/3);  // CDL miscount
  EXPECT_TRUE(fired(s.chk, "cdl-count")) << s.chk.report();
}

TEST(SemanticsStream, CriticalBelowThresholdFires) {
  Stream s(cpu::scheme_cds());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  // CT is 8: three dependents must NOT mark the producer critical.
  s.chk.on_mark_critical(s.now, i0, /*deps=*/3, /*critical=*/true);
  EXPECT_TRUE(fired(s.chk, "cds-threshold")) << s.chk.report();
}

TEST(SemanticsStream, WrongPolicyClassInPreferredPassFires) {
  // FFS pass 0 is predicted-faulty only; a clean instruction there is a
  // selection-policy break.
  Stream s(cpu::scheme_ffs());
  s.begin_cycle();
  const InstState i0 = s.dispatch(0, isa::OpClass::kIntAlu, 5);
  s.begin_cycle();
  s.chk.on_select_pass(s.now, 0);
  s.chk.on_select_visit(s.now, i0, SelectOutcome::kFuBusy);
  EXPECT_TRUE(fired(s.chk, "select-candidate")) << s.chk.report();
}

TEST(SemanticsStream, CamSearchInSpacingCycleFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kLoad, 5, kNoReg, kNoReg, 0x100);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kMemory;
  s.chk.on_dispatched(s.now, i0);
  const InstState i1 = s.dispatch(1, isa::OpClass::kStore, kNoReg, kNoReg, kNoReg, 0x200);
  s.begin_cycle();
  s.issue(i0, /*exec_lat=*/3, /*lat_delta=*/1);
  s.begin_cycle(/*frozen=*/0, /*mem_blocked=*/true);  // correctly reported block
  s.chk.on_lsq_search(s.now, i1);                     // CAM searched anyway
  EXPECT_TRUE(fired(s.chk, "lsq-spacing")) << s.chk.report();
}

TEST(SemanticsStream, LoadPassingOlderStoreFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  s.dispatch(0, isa::OpClass::kStore, kNoReg, kNoReg, kNoReg, 0x100);  // un-issued
  const InstState i1 = s.dispatch(1, isa::OpClass::kLoad, 5, kNoReg, kNoReg, 0x100);
  s.begin_cycle();
  s.issue(i1, /*exec_lat=*/3);  // load issued past the matching older store
  EXPECT_TRUE(fired(s.chk, "stl-order")) << s.chk.report();
}

TEST(SemanticsStream, UnbackedEpStallFires) {
  Stream s(cpu::scheme_error_padding());
  s.begin_cycle();
  s.stall(/*ep_padding=*/true);  // EP-attributed stall with no EP event owed
  EXPECT_TRUE(fired(s.chk, "ep-padding")) << s.chk.report();
}

TEST(SemanticsStream, EpStallAtWrongCycleFires) {
  Stream s(cpu::scheme_error_padding());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kExecute;  // pad due at issue + 2
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  s.issue(i0);  // EP does not pad the latency (vte off)
  s.begin_cycle();
  s.chk.on_ep_stall(s.now, i0);  // one cycle before the execute-stage transit
  EXPECT_TRUE(fired(s.chk, "ep-padding")) << s.chk.report();
}

TEST(SemanticsStream, UnpredictedFaultWithoutReplayFires) {
  Stream s(cpu::scheme_razor());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  i0.actual_fault = true;
  i0.actual_stage = timing::OooStage::kExecute;
  i0.replay_scheduled = false;  // Razor must replay every detected fault
  s.issue(i0);
  EXPECT_TRUE(fired(s.chk, "razor-replay")) << s.chk.report();
}

TEST(SemanticsStream, CoveredFaultReplayFires) {
  // A VTE-covered predicted fault (right stage) must never replay.
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  InstState i0 = s.make(0, isa::OpClass::kIntAlu, 5);
  i0.pred_fault = true;
  i0.pred_stage = timing::OooStage::kExecute;
  s.chk.on_dispatched(s.now, i0);
  s.begin_cycle();
  i0.actual_fault = true;
  i0.actual_stage = timing::OooStage::kExecute;
  i0.fault_handled = true;
  s.issue(i0, 1, 1);
  s.begin_cycle();
  s.chk.on_tag_broadcast(s.now, i0, 0);
  s.begin_cycle();
  s.chk.on_replay(s.now, i0);  // covered -> must not happen
  EXPECT_TRUE(fired(s.chk, "razor-replay")) << s.chk.report();
}

TEST(SemanticsStream, OutOfOrderCommitFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  s.dispatch(0, isa::OpClass::kIntAlu, 5);
  const InstState i1 = s.dispatch(1, isa::OpClass::kIntAlu, 6);
  s.begin_cycle();
  s.chk.on_committed(s.now, i1);  // seq 1 before seq 0
  EXPECT_TRUE(fired(s.chk, "commit-order")) << s.chk.report();
}

TEST(SemanticsStream, NonContiguousDispatchFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  s.dispatch(0);
  s.dispatch(2);  // lost seq 1
  EXPECT_TRUE(fired(s.chk, "dispatch-order")) << s.chk.report();
}

TEST(SemanticsStream, ObserverHookCycleMismatchFires) {
  Stream s(cpu::scheme_abs());
  s.begin_cycle();
  s.chk.on_cycle(s.now + 1);  // observer fan-out disagrees with the kernel
  EXPECT_TRUE(fired(s.chk, "hook-observer")) << s.chk.report();
}

// ---- metamorphic differential harness -------------------------------------

class ZeroFaultIdentity : public ::testing::TestWithParam<u64> {};

// With a null fault environment every scheme must degenerate to the same
// machine: no predictions, no pads, no stalls, identical selection -- the
// runs must be bit-identical, not just statistically close.
TEST_P(ZeroFaultIdentity, AllSchemesBitIdenticalWithoutFaults) {
  Pcg32 rng(GetParam(), 0x1de27ULL);
  cpu::CoreConfig cfg;
  cfg.issue_width = 1 + static_cast<int>(rng.next_below(8));
  cfg.fetch_width = cfg.issue_width;
  cfg.dispatch_width = cfg.issue_width;
  cfg.commit_width = cfg.issue_width;
  cfg.rob_entries = 16 << rng.next_below(4);
  cfg.iq_entries = std::min(cfg.rob_entries, 8 << static_cast<int>(rng.next_below(3)));
  cfg.simple_alus = 1 + static_cast<int>(rng.next_below(4));
  cfg.model_wrong_path = rng.next_bool(0.3);
  const auto profiles = workload::spec2006_profiles();
  const auto prof = profiles[rng.next_below(static_cast<u32>(profiles.size()))];

  std::vector<cpu::SchemeConfig> schemes = {cpu::scheme_fault_free(), cpu::scheme_razor(),
                                            cpu::scheme_error_padding(), cpu::scheme_abs(),
                                            cpu::scheme_ffs(), cpu::scheme_cds()};
  std::optional<cpu::PipelineResult> base;
  std::string base_name;
  for (const cpu::SchemeConfig& scheme : schemes) {
    workload::TraceGenerator gen(prof);
    cpu::Pipeline p(cfg, scheme, &gen, /*fault_model=*/nullptr, /*predictor=*/nullptr);
    SemanticsChecker chk(cfg, scheme);
    chk.attach(p);
    const cpu::PipelineResult r = p.run(4000, 2000);
    EXPECT_TRUE(chk.ok()) << scheme.name << "\n" << chk.report();
    EXPECT_GT(chk.checks(), 0u);
    if (!base) {
      base = r;
      base_name = scheme.name;
      continue;
    }
    SCOPED_TRACE(base_name + " vs " + scheme.name + " on " + prof.name);
    EXPECT_EQ(r.committed, base->committed);
    EXPECT_EQ(r.cycles, base->cycles);
    EXPECT_EQ(bits_of(r.ipc()), bits_of(base->ipc()));
    for (int i = 0; i < obs::kNumCpiCauses; ++i) {
      EXPECT_EQ(r.cpi.slots[static_cast<std::size_t>(i)],
                base->cpi.slots[static_cast<std::size_t>(i)])
          << "CPI slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroFaultIdentity,
                         ::testing::ValuesIn(vasim::fuzzutil::seeds("identity", 1, 8)));

// Every scheme must commit exactly the architectural dynamic instruction
// stream of a real program, faults and all -- the schemes may differ only
// in *when*, never in *what*.
TEST(Metamorphic, EverySchemeCommitsTheArchitecturalStream) {
  const isa::Program prog = isa::assemble(
      "lui r10, 0x10\n"
      "addi r1, r0, 0\n"
      "addi r2, r0, 40\n"
      "L0:\n"
      "ld r3, 0(r10)\n"
      "add r4, r3, r1\n"
      "mul r5, r4, r2\n"
      "st r4, 8(r10)\n"
      "xor r6, r5, r2\n"
      "addi r1, r1, 1\n"
      "blt r1, r2, L0\n"
      "halt\n");
  isa::FunctionalCore ref(&prog);
  isa::DynInst d;
  u64 dynamic_count = 0;
  while (ref.next(d)) ++dynamic_count;
  ASSERT_GT(dynamic_count, 100u);

  for (const cpu::SchemeConfig& scheme :
       {cpu::scheme_fault_free(), cpu::scheme_razor(), cpu::scheme_error_padding(),
        cpu::scheme_abs(), cpu::scheme_ffs(), cpu::scheme_cds()}) {
    timing::PathModelConfig pcfg{7, 0.10, 0.03};
    const timing::FaultModel fm(pcfg, timing::SupplyPoints::kHighFault);
    core::TimingErrorPredictor tep({}, &fm.environment());
    isa::FunctionalCore src(&prog);
    cpu::CoreConfig cfg;
    cpu::Pipeline pipe(cfg, scheme, &src, &fm, scheme.use_predictor ? &tep : nullptr);
    SemanticsChecker chk(cfg, scheme);
    chk.attach(pipe);
    const cpu::PipelineResult r = pipe.run(10 * dynamic_count);
    EXPECT_TRUE(chk.ok()) << scheme.name << "\n" << chk.report();
    EXPECT_EQ(r.committed, dynamic_count) << scheme.name;
  }
}

// Razor micro-stall and Error Padding only ever insert whole-pipeline stall
// cycles into the fault-free schedule (age policy, no VTE reordering), so
// they can never finish a fixed instruction stream in fewer cycles than the
// fault-free machine.  (The VTE schemes CAN legally reorder, so no such
// bound is asserted for them.)
TEST(Metamorphic, StallOnlySchemesNeverBeatFaultFree) {
  for (const char* bench : {"gcc", "mcf"}) {
    const workload::BenchmarkProfile prof = workload::spec2006_profile(bench);
    u64 ff_cycles = 0;
    u64 ff_committed = 0;
    {
      workload::TraceGenerator gen(prof);
      cpu::CoreConfig cfg;
      cpu::Pipeline p(cfg, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
      const cpu::PipelineResult r = p.run(5000, 2000);
      ff_cycles = r.cycles;
      ff_committed = r.committed;
    }
    for (const cpu::SchemeConfig& scheme : {cpu::scheme_razor(), cpu::scheme_error_padding()}) {
      timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                                   prof.fr_low_pct / 100.0 * prof.fr_calib_low};
      const timing::FaultModel fm(pcfg, timing::SupplyPoints::kHighFault);
      core::TimingErrorPredictor tep({}, &fm.environment());
      workload::TraceGenerator gen(prof);
      cpu::CoreConfig cfg;
      cpu::Pipeline p(cfg, scheme, &gen, &fm, scheme.use_predictor ? &tep : nullptr);
      SemanticsChecker chk(cfg, scheme);
      chk.attach(p);
      const cpu::PipelineResult r = p.run(5000, 2000);
      EXPECT_TRUE(chk.ok()) << scheme.name << "\n" << chk.report();
      EXPECT_EQ(r.committed, ff_committed) << scheme.name << " on " << bench;
      EXPECT_GE(r.cycles, ff_cycles) << scheme.name << " on " << bench;
    }
  }
}

// The runner-level integration: check_semantics=true attaches the checker
// to every run and surfaces its evaluation count.
TEST(Metamorphic, RunnerAttachesCheckerOnDemand) {
  core::RunnerConfig rc;
  rc.instructions = 2000;
  rc.warmup = 1000;
  rc.check_semantics = true;
  rc.commit_trail_stride = 256;
  const core::ExperimentRunner runner(rc);
  const workload::BenchmarkProfile prof = workload::spec2006_profile("bzip2");
  const core::RunResult r =
      runner.run(prof, cpu::scheme_abs(), timing::SupplyPoints::kHighFault);
  EXPECT_GT(r.checker_checks, 0u);
  EXPECT_FALSE(r.commit_trail.empty());
  const core::RunResult ff = runner.run_fault_free(prof, timing::SupplyPoints::kNominal);
  EXPECT_GT(ff.checker_checks, 0u);
}

// ---- shrinker -------------------------------------------------------------

TEST(Shrink, BisectsToTheMinimalFailingPoint) {
  check::ShrinkSpec spec = {{"a", 100, 1}, {"b", 50, 0}};
  check::ShrinkStats st;
  const auto out = check::shrink_spec(
      spec, [](const check::ShrinkSpec& s) { return s[0].value >= 7 && s[1].value >= 3; },
      /*max_rounds=*/6, &st);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, 7u);
  EXPECT_EQ(out[1].value, 3u);
  EXPECT_GT(st.probes, 0);
  EXPECT_GE(st.rounds, 1);
}

TEST(Shrink, NeverGoesBelowTheDimensionMinimum) {
  check::ShrinkSpec spec = {{"iters", 64, 8}};
  const auto out =
      check::shrink_spec(spec, [](const check::ShrinkSpec&) { return true; });  // always fails
  EXPECT_EQ(out[0].value, 8u);
}

TEST(Shrink, KeepsTheOriginalWhenNothingSmallerFails) {
  check::ShrinkSpec spec = {{"n", 13, 1}};
  const auto out =
      check::shrink_spec(spec, [](const check::ShrinkSpec& s) { return s[0].value == 13; });
  EXPECT_EQ(out[0].value, 13u);
}

}  // namespace
}  // namespace vasim
