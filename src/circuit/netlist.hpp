// Structural gate-level netlist.
//
// Signals and gates share one id space (each gate drives exactly one
// signal).  Construction enforces topological order: a gate may only
// reference strictly smaller ids, so the netlist is a DAG evaluable in a
// single forward pass -- the property gatesim and sta rely on.
#ifndef VASIM_CIRCUIT_NETLIST_HPP
#define VASIM_CIRCUIT_NETLIST_HPP

#include <span>
#include <string>
#include <vector>

#include "src/circuit/cell_library.hpp"
#include "src/common/types.hpp"

namespace vasim::circuit {

/// Signal/gate identifier.
using SigId = i32;
inline constexpr SigId kNoSig = -1;

/// One gate instance; `in` slots beyond the cell's fanin are kNoSig.
/// For kMux2: in[0] = value when select=0, in[1] = value when select=1,
/// in[2] = select.
struct Gate {
  GateKind kind = GateKind::kConst0;
  SigId in[3] = {kNoSig, kNoSig, kNoSig};
};

/// A multi-bit signal, least-significant bit first.
using Bus = std::vector<SigId>;

/// Append-only netlist.  Ids [0, num_inputs) are primary inputs.
class Netlist {
 public:
  /// Adds a primary input; only legal before any logic gate exists.
  SigId add_input();

  /// Adds a gate of `kind` reading `a`, `b`, `c` (unused slots kNoSig).
  /// Throws std::invalid_argument on arity mismatch or forward references.
  SigId add_gate(GateKind kind, SigId a = kNoSig, SigId b = kNoSig, SigId c = kNoSig);

  /// Marks `s` as a primary output.
  void mark_output(SigId s);

  [[nodiscard]] int num_inputs() const { return num_inputs_; }
  [[nodiscard]] int num_signals() const { return static_cast<int>(gates_.size()); }
  /// Count of real logic gates (excludes inputs/constants/buffers? no --
  /// excludes only inputs and constants; buffers count).
  [[nodiscard]] int num_logic_gates() const { return num_logic_; }
  [[nodiscard]] const Gate& gate(SigId s) const { return gates_[static_cast<std::size_t>(s)]; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<SigId>& outputs() const { return outputs_; }

  // -- convenience constructors ------------------------------------------
  SigId const0();
  SigId const1();
  SigId inv(SigId a) { return add_gate(GateKind::kInv, a); }
  SigId buf(SigId a) { return add_gate(GateKind::kBuf, a); }
  SigId and2(SigId a, SigId b) { return add_gate(GateKind::kAnd2, a, b); }
  SigId or2(SigId a, SigId b) { return add_gate(GateKind::kOr2, a, b); }
  SigId nand2(SigId a, SigId b) { return add_gate(GateKind::kNand2, a, b); }
  SigId nor2(SigId a, SigId b) { return add_gate(GateKind::kNor2, a, b); }
  SigId xor2(SigId a, SigId b) { return add_gate(GateKind::kXor2, a, b); }
  SigId xnor2(SigId a, SigId b) { return add_gate(GateKind::kXnor2, a, b); }
  /// out = sel ? hi : lo
  SigId mux2(SigId lo, SigId hi, SigId sel) { return add_gate(GateKind::kMux2, lo, hi, sel); }

  // -- multi-bit helpers ---------------------------------------------------
  Bus add_input_bus(int width);
  /// Wide AND/OR reduction trees (balanced, log depth).
  SigId reduce_and(std::span<const SigId> bits);
  SigId reduce_or(std::span<const SigId> bits);
  /// Bitwise ops over equal-width buses.
  Bus bus_and(const Bus& a, const Bus& b);
  Bus bus_or(const Bus& a, const Bus& b);
  Bus bus_xor(const Bus& a, const Bus& b);
  Bus bus_inv(const Bus& a);
  Bus bus_mux(const Bus& lo, const Bus& hi, SigId sel);
  /// Ripple-carry add; returns sum bus, carry-out in *cout when non-null.
  Bus ripple_add(const Bus& a, const Bus& b, SigId carry_in, SigId* cout = nullptr);
  /// a == b (wide equality).
  SigId equals(const Bus& a, const Bus& b);

 private:
  std::vector<Gate> gates_;
  std::vector<SigId> outputs_;
  int num_inputs_ = 0;
  int num_logic_ = 0;
  SigId const0_ = kNoSig;
  SigId const1_ = kNoSig;
};

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_NETLIST_HPP
