#include "src/cpu/observer.hpp"

namespace vasim::cpu {

KanataTraceWriter::KanataTraceWriter(std::ostream* out, u64 max_instructions)
    : out_(out), max_instructions_(max_instructions) {}

bool KanataTraceWriter::tracked(SeqNum seq) const { return seq < max_instructions_; }

void KanataTraceWriter::sync_cycle() {
  if (!header_written_) {
    *out_ << "Kanata\t0004\n";
    *out_ << "C=\t" << now_ << "\n";
    emitted_cycle_ = now_;
    header_written_ = true;
    return;
  }
  if (now_ > emitted_cycle_) {
    *out_ << "C\t" << (now_ - emitted_cycle_) << "\n";
    emitted_cycle_ = now_;
  }
}

void KanataTraceWriter::on_cycle(Cycle now) { now_ = now; }

void KanataTraceWriter::on_fetch(SeqNum seq, const isa::DynInst& di) {
  if (!tracked(seq)) return;
  sync_cycle();
  ++logged_;
  *out_ << "I\t" << seq << "\t" << seq << "\t0\n";
  *out_ << "L\t" << seq << "\t0\t" << std::hex << di.pc << std::dec << ": "
        << isa::to_string(di.op) << "\n";
  *out_ << "S\t" << seq << "\t0\tF\n";
}

void KanataTraceWriter::on_dispatch(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tDs\n";
}

void KanataTraceWriter::on_issue(SeqNum seq, bool predicted_faulty) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tIs\n";
  if (predicted_faulty) *out_ << "L\t" << seq << "\t1\t[predicted faulty]\n";
}

void KanataTraceWriter::on_complete(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "S\t" << seq << "\t0\tCm\n";
}

void KanataTraceWriter::on_commit(SeqNum seq) {
  if (!tracked(seq)) return;
  sync_cycle();
  *out_ << "R\t" << seq << "\t" << retire_id_++ << "\t0\n";
}

void KanataTraceWriter::on_squash(SeqNum first, SeqNum last) {
  sync_cycle();
  for (SeqNum s = first; s <= last && tracked(s); ++s) {
    *out_ << "R\t" << s << "\t0\t1\n";  // type 1 = flushed
  }
}

}  // namespace vasim::cpu
