#include "src/isa/program.hpp"

#include <stdexcept>

namespace vasim::isa {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSlt: return "slt";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kLui: return "lui";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJmp: return "jmp";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return OpClass::kNop;
    case Opcode::kMul:
      return OpClass::kIntMul;
    case Opcode::kDiv:
      return OpClass::kIntDiv;
    case Opcode::kLd:
      return OpClass::kLoad;
    case Opcode::kSt:
      return OpClass::kStore;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kJmp:
      return OpClass::kBranch;
    default:
      return OpClass::kIntAlu;
  }
}

std::size_t Program::index_of(Pc pc) const {
  if (pc < kTextBase || (pc - kTextBase) % kInstrBytes != 0) {
    throw std::out_of_range("Program: misaligned or out-of-text pc");
  }
  const auto idx = static_cast<std::size_t>((pc - kTextBase) / kInstrBytes);
  if (idx >= text_.size()) throw std::out_of_range("Program: pc beyond text");
  return idx;
}

}  // namespace vasim::isa
