#include "src/common/env.hpp"

#include <cstdlib>

namespace vasim {

u64 env_u64(const std::string& name, u64 fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<u64>(v);
}

std::string env_str(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace vasim
