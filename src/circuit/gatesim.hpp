// Two-value combinational gate simulation with toggle tracking, and the
// sensitized-path commonality analysis of Supplement S1.
//
// Commonality is defined in the paper as |phi| / |psi| where phi is the set
// of gates that change state in *every* dynamic instance of a static PC and
// psi is the set that changes in *at least one* instance.  A "dynamic
// instance" is a transition: the component evaluates the preceding
// instruction's inputs (which set internal logic state), then the instance's
// inputs; a gate is toggled when its output differs between the two
// evaluations.
#ifndef VASIM_CIRCUIT_GATESIM_HPP
#define VASIM_CIRCUIT_GATESIM_HPP

#include <span>
#include <vector>

#include "src/circuit/builders.hpp"

namespace vasim::circuit {

/// Forward-pass evaluator over a (topologically ordered) netlist.
class GateSim {
 public:
  explicit GateSim(const Netlist* netlist);

  /// Evaluates all gates for the given primary-input values (size must equal
  /// num_inputs()).  Returns the full signal-value vector.
  const std::vector<u8>& evaluate(std::span<const u8> inputs);

  /// Values from the most recent evaluate().
  [[nodiscard]] const std::vector<u8>& values() const { return values_; }

  /// Value of one signal from the most recent evaluate().
  [[nodiscard]] bool value(SigId s) const { return values_[static_cast<std::size_t>(s)] != 0; }

  /// Per-signal flags: did the signal change between the last two
  /// evaluations?  All false until two evaluations have run.
  [[nodiscard]] const std::vector<u8>& toggled() const { return toggled_; }

  /// Reads a bus as an unsigned integer (LSB first).
  [[nodiscard]] u64 read_bus(const Bus& bus) const;

  /// Helper: packs an unsigned integer into `width` input bits (LSB first).
  static void pack_bits(u64 value, int width, std::vector<u8>& out);

 private:
  const Netlist* netlist_;
  std::vector<u8> values_;
  std::vector<u8> prev_values_;
  std::vector<u8> toggled_;
  bool has_prev_ = false;
};

/// Result of the S1 commonality measurement for one static PC.
struct CommonalityResult {
  int phi = 0;      ///< gates toggled in every instance
  int psi = 0;      ///< gates toggled in at least one instance
  double ratio = 0; ///< phi / psi (1.0 when psi == 0)
};

/// Measures commonality over a set of dynamic instances.  Each instance is a
/// (preceding-input, instance-input) pair of full input vectors.
CommonalityResult measure_commonality(
    const Component& component,
    std::span<const std::pair<std::vector<u8>, std::vector<u8>>> instances);

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_GATESIM_HPP
