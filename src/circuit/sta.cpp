#include "src/circuit/sta.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/stats.hpp"

namespace vasim::circuit {
namespace {

/// Arrival-time forward pass with a per-gate delay callback.
template <typename DelayFn>
double max_arrival(const Netlist& netlist, DelayFn&& delay_of, SigId* argmax) {
  const auto& gates = netlist.gates();
  std::vector<double> arrival(gates.size(), 0.0);
  double best = 0.0;
  SigId best_sig = kNoSig;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (!is_combinational(g.kind)) continue;
    double in_max = 0.0;
    const int fanin = cell_info(g.kind).fanin;
    for (int k = 0; k < fanin; ++k) {
      in_max = std::max(in_max, arrival[static_cast<std::size_t>(g.in[k])]);
    }
    arrival[i] = in_max + delay_of(static_cast<u64>(i), g.kind);
    if (arrival[i] > best) {
      best = arrival[i];
      best_sig = static_cast<SigId>(i);
    }
  }
  if (argmax != nullptr) *argmax = best_sig;
  return best;
}

}  // namespace

StaResult analyze_nominal(const Netlist& netlist) {
  StaResult r;
  r.critical_delay_ps =
      max_arrival(netlist, [](u64, GateKind k) { return cell_info(k).delay_ps; }, &r.critical_signal);

  // Logic depth: longest path counted in gates (buffers and constants count
  // zero, matching how synthesis reports levels of logic).
  const auto& gates = netlist.gates();
  std::vector<int> depth(gates.size(), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (!is_combinational(g.kind)) continue;
    int in_max = 0;
    const int fanin = cell_info(g.kind).fanin;
    for (int k = 0; k < fanin; ++k) {
      in_max = std::max(in_max, depth[static_cast<std::size_t>(g.in[k])]);
    }
    const bool counts = g.kind != GateKind::kBuf && g.kind != GateKind::kConst0 &&
                        g.kind != GateKind::kConst1;
    depth[i] = in_max + (counts ? 1 : 0);
    r.logic_depth = std::max(r.logic_depth, depth[i]);
  }
  return r;
}

namespace {

template <typename DelayFn>
StatisticalStaResult monte_carlo_sta(const Netlist& netlist, int dies, DelayFn&& delay_of) {
  StatisticalStaResult r;
  r.dies = dies;
  RunningStat acc;
  for (int die = 0; die < dies; ++die) {
    const double d = max_arrival(
        netlist,
        [&](u64 gate_id, GateKind k) { return delay_of(die, gate_id, k); }, nullptr);
    acc.add(d);
  }
  r.mu_ps = acc.mean();
  r.sigma_ps = acc.stddev();
  r.mu_plus_2sigma_ps = r.mu_ps + 2.0 * r.sigma_ps;
  r.min_ps = acc.min();
  r.max_ps = acc.max();
  return r;
}

}  // namespace

StatisticalStaResult analyze_statistical(const Netlist& netlist,
                                         const timing::ProcessVariation& pv, int dies) {
  return monte_carlo_sta(netlist, dies, [&](int die, u64 gate_id, GateKind k) {
    return cell_info(k).delay_ps * pv.delay_factor(static_cast<u64>(die), gate_id);
  });
}

StatisticalStaResult analyze_statistical(const Netlist& netlist,
                                         const timing::SpatialVariation& sv, int dies) {
  const u64 total = static_cast<u64>(netlist.num_signals());
  return monte_carlo_sta(netlist, dies, [&](int die, u64 gate_id, GateKind k) {
    return cell_info(k).delay_ps * sv.delay_factor(static_cast<u64>(die), gate_id, total);
  });
}

}  // namespace vasim::circuit
