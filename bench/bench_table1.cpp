// Reproduces Table 1: per-benchmark fault-free IPC, OoO-engine fault rates
// at VDD = 0.97 V and 1.04 V, and the (performance %, ED %) overhead tuples
// of the Razor and Error Padding baselines.
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  const core::RunnerConfig rc = bench::runner_config_from_env();
  const core::ExperimentRunner runner(rc);
  bench::print_run_header("Table 1: Benchmark Fault Rates and Razor/EP overheads", rc);

  TextTable t({"benchmark", "FF-IPC", "(paper)", "FR%@0.97", "Razor(perf,ED)%", "EP(perf,ED)%",
               "FR%@1.04", "Razor(perf,ED)%", "EP(perf,ED)%"});

  for (const auto& prof : workload::spec2006_profiles()) {
    const core::RunResult ff = runner.run_fault_free(prof, timing::SupplyPoints::kNominal);
    std::vector<std::string> row = {prof.name, TextTable::fmt(ff.ipc, 2),
                                    "(" + TextTable::fmt(prof.paper_ipc, 2) + ")"};
    for (const double vdd : {timing::SupplyPoints::kHighFault, timing::SupplyPoints::kLowFault}) {
      const core::RunResult base = runner.run_fault_free(prof, vdd);
      const core::RunResult razor = runner.run(prof, cpu::scheme_razor(), vdd);
      const core::RunResult ep = runner.run(prof, cpu::scheme_error_padding(), vdd);
      const core::Overheads orz = core::overhead_vs(base, razor);
      const core::Overheads oep = core::overhead_vs(base, ep);
      row.push_back(TextTable::fmt(razor.fault_rate_pct, 2));
      row.push_back("(" + TextTable::fmt(orz.perf_pct, 1) + "," + TextTable::fmt(orz.ed_pct, 1) +
                    ")");
      row.push_back("(" + TextTable::fmt(oep.perf_pct, 2) + "," + TextTable::fmt(oep.ed_pct, 2) +
                    ")");
    }
    t.add_row(row);
  }
  std::cout << t.render() << "\n";
  std::cout << "Paper reference (Table 1): FR 5.6-10.5% @0.97V and 1.4-2.3% @1.04V;\n"
               "Razor overhead 25-59% @0.97V, 7-25% @1.04V; EP overhead 2-15% @0.97V,\n"
               "0.5-3.8% @1.04V.  Expected shape: Razor >> EP at both supplies.\n";
  return 0;
}
