#include "src/core/runner.hpp"

#include <optional>
#include <stdexcept>

#include "src/check/semantics.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::core {
namespace {

/// Samples the cycle counter at every `stride`-th commit (capped so huge
/// runs stay cheap); consumed by test_golden_equiv's divergence printer.
class CommitTrailObserver final : public cpu::PipelineObserver {
 public:
  CommitTrailObserver(u64 stride, std::vector<Cycle>* out) : stride_(stride), out_(out) {}
  void on_cycle(Cycle now) override { now_ = now; }
  void on_commit(SeqNum) override {
    ++commits_;
    if (commits_ % stride_ == 0 && out_->size() < kMaxEntries) out_->push_back(now_);
  }

 private:
  static constexpr std::size_t kMaxEntries = 256;
  u64 stride_;
  std::vector<Cycle>* out_;
  u64 commits_ = 0;
  Cycle now_ = 0;
};

}  // namespace

Overheads overhead_vs(const RunResult& base, const RunResult& x) {
  Overheads o;
  if (base.ipc > 0.0 && x.ipc > 0.0) o.perf_pct = (base.ipc / x.ipc - 1.0) * 100.0;
  if (base.energy.edp > 0.0) o.ed_pct = (x.energy.edp / base.energy.edp - 1.0) * 100.0;
  return o;
}

RunResult ExperimentRunner::run(const workload::BenchmarkProfile& profile,
                                const cpu::SchemeConfig& scheme, double vdd) const {
  workload::TraceGenerator gen(profile);

  timing::PathModelConfig path_cfg;
  path_cfg.seed = profile.seed;
  path_cfg.p_faulty_high = profile.fr_high_pct / 100.0 * profile.fr_calib_high;
  path_cfg.p_faulty_low = profile.fr_low_pct / 100.0 * profile.fr_calib_low;
  const timing::FaultModel fault_model(path_cfg, vdd);

  TimingErrorPredictor tep(cfg_.tep, &fault_model.environment());
  MostRecentEntryPredictor mre(cfg_.tep.entries);
  TimingViolationPredictor tvp(cfg_.tep.entries);
  cpu::FaultPredictor* predictor = nullptr;
  if (scheme.use_predictor) {
    switch (cfg_.predictor) {
      case PredictorKind::kTep: predictor = &tep; break;
      case PredictorKind::kMre: predictor = &mre; break;
      case PredictorKind::kTvp: predictor = &tvp; break;
    }
  }

  cpu::Pipeline pipe(cfg_.core, scheme, &gen, &fault_model, predictor);
  std::optional<check::SemanticsChecker> checker;
  if (cfg_.check_semantics) {
    checker.emplace(cfg_.core, scheme);
    checker->attach(pipe);
  }
  std::vector<Cycle> trail;
  std::optional<CommitTrailObserver> trail_obs;
  if (cfg_.commit_trail_stride > 0) {
    trail_obs.emplace(cfg_.commit_trail_stride, &trail);
    pipe.add_observer(&*trail_obs);
  }
  cpu::PipelineResult pr = pipe.run(cfg_.instructions, cfg_.warmup);
  if (checker && !checker->ok()) throw std::runtime_error(checker->report());

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = scheme.name;
  r.commit_trail = std::move(trail);
  r.checker_checks = checker ? checker->checks() : 0;
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const double actual = static_cast<double>(pr.stats.count("fault.actual"));
  const double committed_faulty = static_cast<double>(pr.stats.count("fault.committed_faulty"));
  r.fault_rate_pct =
      pr.committed == 0 ? 0.0 : committed_faulty / static_cast<double>(pr.committed) * 100.0;
  r.replays = static_cast<double>(pr.stats.count("fault.replays"));
  r.predictor_accuracy =
      actual > 0.0 ? static_cast<double>(pr.stats.count("fault.handled")) / actual : 0.0;
  const EnergyModel em(cfg_.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  return r;
}

RunResult ExperimentRunner::run_fault_free(const workload::BenchmarkProfile& profile,
                                           double vdd) const {
  workload::TraceGenerator gen(profile);
  cpu::Pipeline pipe(cfg_.core, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
  std::optional<check::SemanticsChecker> checker;
  if (cfg_.check_semantics) {
    checker.emplace(cfg_.core, cpu::scheme_fault_free());
    checker->attach(pipe);
  }
  std::vector<Cycle> trail;
  std::optional<CommitTrailObserver> trail_obs;
  if (cfg_.commit_trail_stride > 0) {
    trail_obs.emplace(cfg_.commit_trail_stride, &trail);
    pipe.add_observer(&*trail_obs);
  }
  cpu::PipelineResult pr = pipe.run(cfg_.instructions, cfg_.warmup);
  if (checker && !checker->ok()) throw std::runtime_error(checker->report());

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = "fault-free";
  r.commit_trail = std::move(trail);
  r.checker_checks = checker ? checker->checks() : 0;
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const EnergyModel em(cfg_.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  return r;
}

const std::vector<cpu::SchemeConfig>& comparative_schemes() {
  static const std::vector<cpu::SchemeConfig> schemes = {
      cpu::scheme_razor(), cpu::scheme_error_padding(), cpu::scheme_abs(),
      cpu::scheme_ffs(), cpu::scheme_cds()};
  return schemes;
}

std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name) {
  if (name == "fault-free") return cpu::scheme_fault_free();
  for (const cpu::SchemeConfig& s : comparative_schemes()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace vasim::core
