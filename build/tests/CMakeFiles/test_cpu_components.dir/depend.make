# Empty dependencies file for test_cpu_components.
# This may be replaced when dependencies are built.
