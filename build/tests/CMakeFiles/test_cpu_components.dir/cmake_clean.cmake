file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_components.dir/test_cpu_components.cpp.o"
  "CMakeFiles/test_cpu_components.dir/test_cpu_components.cpp.o.d"
  "test_cpu_components"
  "test_cpu_components.pdb"
  "test_cpu_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
