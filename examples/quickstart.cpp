// Quickstart: run one benchmark under every scheme at both faulty supplies
// and print the overhead picture the paper's evaluation is built on.
//
// Usage: quickstart [benchmark] [instructions]
//   benchmark     one of the SPEC2006 profile names (default: astar)
//   instructions  committed instructions per run (default: 50000)
#include <cstdlib>
#include <iostream>

#include "src/common/table.hpp"
#include "src/core/runner.hpp"

int main(int argc, char** argv) {
  using namespace vasim;

  const std::string bench = argc > 1 ? argv[1] : "astar";
  core::RunnerConfig rcfg;
  if (argc > 2) rcfg.instructions = std::strtoull(argv[2], nullptr, 10);

  const workload::BenchmarkProfile profile = workload::spec2006_profile(bench);
  const core::ExperimentRunner runner(rcfg);

  std::cout << "vasim quickstart: benchmark=" << profile.name
            << " instructions=" << rcfg.instructions << "\n\n";

  for (const double vdd :
       {timing::SupplyPoints::kLowFault, timing::SupplyPoints::kHighFault}) {
    const core::RunResult base = runner.run_fault_free(profile, vdd);
    TextTable t({"scheme", "IPC", "FR%", "replays", "TEP-acc", "perf-ovh%", "ED-ovh%"});
    t.add_row({"fault-free", TextTable::fmt(base.ipc), "-", "-", "-", "0.000", "0.000"});
    for (const auto& scheme : core::comparative_schemes()) {
      const core::RunResult r = runner.run(profile, scheme, vdd);
      const core::Overheads o = core::overhead_vs(base, r);
      t.add_row({r.scheme, TextTable::fmt(r.ipc), TextTable::fmt(r.fault_rate_pct, 2),
                 TextTable::fmt(r.replays, 0), TextTable::fmt(r.predictor_accuracy, 3),
                 TextTable::fmt(o.perf_pct), TextTable::fmt(o.ed_pct)});
    }
    std::cout << t.render("VDD = " + TextTable::fmt(vdd, 2) + " V") << "\n";
  }
  return 0;
}
