// Unit tests for the mini ISA: program representation, assembler and
// functional executor.
#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"

namespace vasim::isa {
namespace {

TEST(Program, PcIndexRoundTrip) {
  Program p;
  p.append(Instr{});
  p.append(Instr{});
  EXPECT_EQ(Program::pc_of(0), kTextBase);
  EXPECT_EQ(Program::pc_of(1), kTextBase + 4);
  EXPECT_EQ(p.index_of(kTextBase + 4), 1u);
  EXPECT_THROW((void)p.index_of(kTextBase + 8), std::out_of_range);
  EXPECT_THROW((void)p.index_of(kTextBase + 2), std::out_of_range);
  EXPECT_THROW((void)p.index_of(0), std::out_of_range);
}

TEST(Program, OpClassMapping) {
  EXPECT_EQ(op_class(Opcode::kAdd), OpClass::kIntAlu);
  EXPECT_EQ(op_class(Opcode::kMul), OpClass::kIntMul);
  EXPECT_EQ(op_class(Opcode::kDiv), OpClass::kIntDiv);
  EXPECT_EQ(op_class(Opcode::kLd), OpClass::kLoad);
  EXPECT_EQ(op_class(Opcode::kSt), OpClass::kStore);
  EXPECT_EQ(op_class(Opcode::kBeq), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kJmp), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kHalt), OpClass::kNop);
}

TEST(Assembler, ParsesAllForms) {
  const Program p = assemble(R"(
    # comment line
    start: addi r1, r0, 10
    lui  r2, 0x2
    add  r3, r1, r2       # trailing comment
    ld   r4, 8(r3)
    st   r4, 16(r3)
    beq  r1, r2, start
    jmp  start
    halt
  )");
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(p.at(0).op, Opcode::kAddi);
  EXPECT_EQ(p.at(0).imm, 10);
  EXPECT_EQ(p.at(1).imm, 2);
  EXPECT_EQ(p.at(3).rs1, 3);
  EXPECT_EQ(p.at(3).imm, 8);
  EXPECT_EQ(p.at(4).rs2, 4);  // store value register
  EXPECT_EQ(p.at(5).imm, 0);  // label resolved to index 0
  EXPECT_EQ(p.at(6).imm, 0);
}

struct BadSource {
  const char* name;
  const char* text;
};

class AssemblerErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(AssemblerErrors, Raises) {
  EXPECT_THROW(assemble(GetParam().text), AssemblerError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(BadSource{"unknown_mnemonic", "frob r1, r2, r3"},
                      BadSource{"bad_register", "add rx, r1, r2"},
                      BadSource{"register_range", "add r32, r1, r2"},
                      BadSource{"operand_count", "add r1, r2"},
                      BadSource{"bad_imm", "addi r1, r2, zz"},
                      BadSource{"bad_mem_operand", "ld r1, r2"},
                      BadSource{"undefined_label", "jmp nowhere"},
                      BadSource{"duplicate_label", "a: nop\na: nop"},
                      BadSource{"empty_label", ": nop"}),
    [](const ::testing::TestParamInfo<BadSource>& info) { return info.param.name; });

TEST(AssemblerErrors, ReportsLineNumber) {
  try {
    assemble("nop\nfrob r1\n");
    FAIL();
  } catch (const AssemblerError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Executor, ArithmeticAndImmediates) {
  const Program p = assemble(R"(
    addi r1, r0, 6
    addi r2, r0, 7
    mul  r3, r1, r2
    sub  r4, r3, r1
    div  r5, r3, r2
    slt  r6, r1, r2
    shl  r7, r1, r6
    halt
  )");
  FunctionalCore core(&p);
  DynInst d;
  while (core.next(d)) {
  }
  EXPECT_EQ(core.reg(3), 42u);
  EXPECT_EQ(core.reg(4), 36u);
  EXPECT_EQ(core.reg(5), 6u);
  EXPECT_EQ(core.reg(6), 1u);
  EXPECT_EQ(core.reg(7), 12u);
  EXPECT_TRUE(core.halted());
}

TEST(Executor, R0IsHardwiredZero) {
  const Program p = assemble("addi r0, r0, 99\nhalt\n");
  FunctionalCore core(&p);
  DynInst d;
  while (core.next(d)) {
  }
  EXPECT_EQ(core.reg(0), 0u);
}

TEST(Executor, LoadStoreRoundTrip) {
  const Program p = assemble(R"(
    lui  r1, 0x10
    addi r2, r0, 1234
    st   r2, 8(r1)
    ld   r3, 8(r1)
    halt
  )");
  FunctionalCore core(&p);
  DynInst d;
  std::vector<DynInst> trace;
  while (core.next(d)) trace.push_back(d);
  EXPECT_EQ(core.reg(3), 1234u);
  // The store and load share the effective address.
  EXPECT_EQ(trace[2].mem_addr, trace[3].mem_addr);
  EXPECT_EQ(trace[2].op, OpClass::kStore);
  EXPECT_EQ(trace[3].op, OpClass::kLoad);
}

TEST(Executor, LoopSumsAndBranchMetadata) {
  // sum = 1 + 2 + ... + 10
  const Program p = assemble(R"(
      addi r1, r0, 0      # sum
      addi r2, r0, 1      # i
      addi r3, r0, 11     # bound
    loop:
      add  r1, r1, r2
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )");
  FunctionalCore core(&p);
  DynInst d;
  int taken = 0, not_taken = 0;
  while (core.next(d)) {
    if (d.op == OpClass::kBranch) {
      if (d.taken) {
        ++taken;
        EXPECT_EQ(d.next_pc, Program::pc_of(3));
      } else {
        ++not_taken;
        EXPECT_EQ(d.next_pc, d.pc + 4);
      }
    }
  }
  EXPECT_EQ(core.reg(1), 55u);
  EXPECT_EQ(taken, 9);
  EXPECT_EQ(not_taken, 1);
}

TEST(Executor, EmitsArchRegistersAndSeqMetadata) {
  const Program p = assemble("addi r1, r0, 5\nadd r2, r1, r1\nhalt\n");
  FunctionalCore core(&p);
  DynInst d;
  ASSERT_TRUE(core.next(d));
  EXPECT_EQ(d.dst, 1);
  EXPECT_EQ(d.src1, 0);
  EXPECT_EQ(d.pc, kTextBase);
  ASSERT_TRUE(core.next(d));
  EXPECT_EQ(d.src1, 1);
  EXPECT_EQ(d.src2, 1);
  EXPECT_EQ(d.op, OpClass::kIntAlu);
}

TEST(Executor, InstructionCapStopsStream) {
  const Program p = assemble("top: jmp top\n");
  FunctionalCore core(&p, 100);
  DynInst d;
  u64 n = 0;
  while (core.next(d)) ++n;
  EXPECT_EQ(n, 100u);
  EXPECT_FALSE(core.halted());
}

TEST(Executor, DivByZeroSaturates) {
  const Program p = assemble("addi r1, r0, 5\ndiv r2, r1, r0\nhalt\n");
  FunctionalCore core(&p);
  DynInst d;
  while (core.next(d)) {
  }
  EXPECT_EQ(core.reg(2), ~0ULL);
}

TEST(Executor, FallsOffTextEndsStream) {
  const Program p = assemble("nop\n");
  FunctionalCore core(&p);
  DynInst d;
  EXPECT_TRUE(core.next(d));
  EXPECT_FALSE(core.next(d));
  EXPECT_TRUE(core.halted());
}

}  // namespace
}  // namespace vasim::isa
