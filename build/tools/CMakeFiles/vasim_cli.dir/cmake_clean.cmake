file(REMOVE_RECURSE
  "CMakeFiles/vasim_cli.dir/vasim_cli.cpp.o"
  "CMakeFiles/vasim_cli.dir/vasim_cli.cpp.o.d"
  "vasim"
  "vasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
