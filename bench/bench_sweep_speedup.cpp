// Sweep-engine micro-bench: runs the same (benchmark, scheme, VDD) grid
// sequentially (1 worker) and thread-pooled (VASIM_JOBS workers, default =
// hardware threads) and reports the wall-clock speedup plus a determinism
// checksum over every RunResult.  Matching checksums are the witness that
// the parallel sweep is bitwise identical to the sequential one.
//
//   VASIM_INSTR / VASIM_WARMUP  run length  (default 25000 / 25000 here)
//   VASIM_JOBS                  parallel worker count under test
//   VASIM_SWEEP_BENCHES         how many profiles to sweep (default all 12)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 25'000);
  rc.warmup = env_u64("VASIM_WARMUP", 25'000);

  auto profiles = workload::spec2006_profiles();
  const std::size_t nbench =
      static_cast<std::size_t>(env_u64("VASIM_SWEEP_BENCHES", profiles.size()));
  if (nbench < profiles.size()) profiles.resize(nbench);

  const std::size_t parallel_workers = core::sweep_workers_from_env();
  bench::print_run_header("Sweep engine: sequential vs thread-pooled wall clock", rc,
                          parallel_workers);

  std::vector<core::SweepJob> jobs;
  for (const auto& prof : profiles) {
    bench::push_all_scheme_jobs(jobs, prof, timing::SupplyPoints::kHighFault);
  }
  std::cout << jobs.size() << " jobs (" << profiles.size()
            << " benchmarks x (fault-free + 5 schemes) @ 0.97 V)\n\n";

  const core::SweepRunner sequential(rc, 1);
  const core::SweepReport seq = sequential.run(jobs);
  const u64 seq_sum = core::sweep_checksum(seq);

  const core::SweepRunner pooled(rc, parallel_workers);
  const core::SweepReport par = pooled.run(jobs);
  const u64 par_sum = core::sweep_checksum(par);

  TextTable t({"configuration", "workers", "wall ms", "speedup", "checksum"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(seq_sum));
  t.add_row({"sequential", "1", TextTable::fmt(seq.wall_ms, 0), "1.000", buf});
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(par_sum));
  t.add_row({"thread-pooled", std::to_string(par.workers), TextTable::fmt(par.wall_ms, 0),
             TextTable::fmt(par.wall_ms > 0 ? seq.wall_ms / par.wall_ms : 0.0, 3), buf});
  std::cout << t.render() << "\n";

  if (seq_sum != par_sum) {
    std::cout << "DETERMINISM VIOLATION: checksums differ between 1 and " << par.workers
              << " workers\n";
    return 1;
  }
  std::cout << "determinism: OK (results bitwise identical at 1 and " << par.workers
            << " workers)\n";
  if (parallel_workers == 1) {
    std::cout << "note: only one worker available/configured; speedup degenerates to ~1.\n";
  }
  bench::emit_json("sweep", par);
  return 0;
}
