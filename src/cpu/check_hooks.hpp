// Fine-grained scheduler-kernel hooks for runtime semantics checking.
//
// The coarse PipelineObserver reports instruction lifecycles; a SchedHooks
// sink additionally sees the cycle-level scheduling decisions the paper's
// rules constrain: select-pass visit order and outcomes, FU reservations
// (the FUSR of Section 3.3.3), tag broadcasts with their CDL dependent
// counts (Section 3.5.2), Error-Padding stall and Razor replay events, and
// the per-cycle freeze / LSQ CAM-block state.  The semantics checker
// (src/check/semantics.hpp) mirrors the scheduling rules over this event
// stream; the pipeline never reads anything back from a sink, so attaching
// one cannot perturb simulation results.
//
// Compile-time gate: building with -DVASIM_CHECK_HOOKS=0 folds
// kCheckHooksEnabled to false and every call site compiles away (the
// zero-cost configuration).  Test builds must keep the hooks on --
// test_semantics asserts kCheckHooksEnabled so CI fails if the checker is
// accidentally compiled out.
#ifndef VASIM_CPU_CHECK_HOOKS_HPP
#define VASIM_CPU_CHECK_HOOKS_HPP

#include "src/common/types.hpp"
#include "src/cpu/sched_kernel.hpp"

#ifndef VASIM_CHECK_HOOKS
#define VASIM_CHECK_HOOKS 1
#endif

namespace vasim::cpu {

inline constexpr bool kCheckHooksEnabled = VASIM_CHECK_HOOKS != 0;

/// What happened to one candidate the select stage visited.
enum class SelectOutcome : u8 {
  kIssued,       ///< selected and left the issue queue
  kFuBusy,       ///< structural hazard: no functional unit free (FUSR)
  kLoadBlocked,  ///< load gated by an un-issued older matching store
};

/// Scheduler-kernel event sink.  All callbacks default to no-ops; every
/// InstState reference is only valid for the duration of the call.
class SchedHooks {
 public:
  virtual ~SchedHooks() = default;

  /// Start of a scheduling step (never fired for global-stall cycles) with
  /// the freeze state that constrains this cycle's selection.
  virtual void on_cycle_start(Cycle now, int slots_frozen, bool mem_blocked) {
    (void)now, (void)slots_frozen, (void)mem_blocked;
  }
  /// One global-stall cycle applied (EP padding or replay recirculation).
  /// All pending event/FU reservations shift by one with it.
  virtual void on_global_stall(Cycle now, bool ep_padding) { (void)now, (void)ep_padding; }
  /// Instruction entered the issue window (rename complete, fault
  /// prediction attached).
  virtual void on_dispatched(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// A selection pass begins: pass 0 visits the policy's preferred class
  /// (FFS predicted-faulty, CDS predicted-faulty-and-critical), pass 1 the
  /// remainder (everything, for plain age order).
  virtual void on_select_pass(Cycle now, int pass) { (void)now, (void)pass; }
  /// The select stage considered one candidate (in scan order).
  virtual void on_select_visit(Cycle now, const InstState& is, SelectOutcome outcome) {
    (void)now, (void)is, (void)outcome;
  }
  /// A functional unit was reserved; `next_free` is the first cycle the
  /// unit accepts again (includes the VTE freeze cycle when applicable).
  virtual void on_fu_allocated(Cycle now, const InstState& is, int unit, Cycle next_free) {
    (void)now, (void)is, (void)unit, (void)next_free;
  }
  /// Issue succeeded; `exec_lat` is the operation latency, `lat_delta` the
  /// extra cycles added by the VTE pad and/or safe-mode re-execution.
  virtual void on_issued(Cycle now, const InstState& is, Cycle exec_lat, Cycle lat_delta) {
    (void)now, (void)is, (void)exec_lat, (void)lat_delta;
  }
  /// A load/store performed its LSQ CAM search this cycle.
  virtual void on_lsq_search(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// Result-tag broadcast; `deps` is the CDL count of waiting dependents
  /// woken by this tag.
  virtual void on_tag_broadcast(Cycle now, const InstState& is, int deps) {
    (void)now, (void)is, (void)deps;
  }
  /// CDL criticality feedback sent to the predictor.
  virtual void on_mark_critical(Cycle now, const InstState& is, int deps, bool critical) {
    (void)now, (void)is, (void)deps, (void)critical;
  }
  /// Execution finished (writeback complete, retire-eligible next).
  virtual void on_completed(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// An Error-Padding stall event fired for this instruction's transit.
  virtual void on_ep_stall(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// A Razor replay fired for an unpredicted (or mispredicted-stage) fault.
  virtual void on_replay(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// Head-of-ROB retirement (program order).
  virtual void on_committed(Cycle now, const InstState& is) { (void)now, (void)is; }
  /// Sequence numbers [first, last] were squashed and will be recycled.
  virtual void on_squashed(Cycle now, SeqNum first, SeqNum last) {
    (void)now, (void)first, (void)last;
  }
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_CHECK_HOOKS_HPP
