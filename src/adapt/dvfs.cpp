#include "src/adapt/dvfs.hpp"

namespace vasim::adapt {

std::string_view to_string(DvfsPolicy p) {
  switch (p) {
    case DvfsPolicy::kStatic: return "static";
    case DvfsPolicy::kReactive: return "reactive";
    case DvfsPolicy::kPredictive: return "predictive";
  }
  return "static";
}

DvfsPolicy dvfs_policy_from_string(std::string_view s) {
  if (s == "static") return DvfsPolicy::kStatic;
  if (s == "reactive") return DvfsPolicy::kReactive;
  if (s == "predictive") return DvfsPolicy::kPredictive;
  throw std::invalid_argument("dvfs: unknown policy '" + std::string(s) +
                              "' (want static, reactive or predictive)");
}

void validate_dvfs_config(const DvfsConfig& cfg) {
  if (cfg.epoch == 0) {
    throw std::invalid_argument("dvfs.epoch: must be positive");
  }
  if (cfg.period_min_permille < 800 || cfg.period_min_permille > 1000) {
    throw std::invalid_argument("dvfs.period_min_permille: " +
                                std::to_string(cfg.period_min_permille) +
                                " outside [800, 1000]");
  }
  if (cfg.period_max_permille < 1000 || cfg.period_max_permille > 1500) {
    throw std::invalid_argument("dvfs.period_max_permille: " +
                                std::to_string(cfg.period_max_permille) +
                                " outside [1000, 1500]");
  }
  if (cfg.period_min_permille > cfg.period_max_permille) {
    throw std::invalid_argument("dvfs.period_min_permille: exceeds period_max_permille");
  }
  if (cfg.target_violation_pct < 0.0 || cfg.target_violation_pct > 100.0) {
    throw std::invalid_argument("dvfs.target_violation_pct: outside [0, 100]");
  }
  if (cfg.quiet_epochs == 0) {
    throw std::invalid_argument("dvfs.quiet_epochs: must be positive");
  }
  if (cfg.step_permille == 0 || cfg.step_permille > 100) {
    throw std::invalid_argument("dvfs.step_permille: outside [1, 100]");
  }
}

void put_dvfs_config(snap::Writer& w, const DvfsConfig& cfg) {
  w.put_u8(static_cast<u8>(cfg.policy));
  w.put_u64(cfg.epoch);
  w.put_u32(cfg.period_min_permille);
  w.put_u32(cfg.period_max_permille);
  w.put_f64(cfg.target_violation_pct);
  w.put_u32(cfg.quiet_epochs);
  w.put_u32(cfg.step_permille);
}

DvfsConfig get_dvfs_config(snap::Reader& r) {
  DvfsConfig cfg;
  const u8 p = r.get_u8();
  if (p > static_cast<u8>(DvfsPolicy::kPredictive)) {
    throw snap::SnapshotError("dvfs policy byte " + std::to_string(p));
  }
  cfg.policy = static_cast<DvfsPolicy>(p);
  cfg.epoch = r.get_u64();
  cfg.period_min_permille = r.get_u32();
  cfg.period_max_permille = r.get_u32();
  cfg.target_violation_pct = r.get_f64();
  cfg.quiet_epochs = r.get_u32();
  cfg.step_permille = r.get_u32();
  return cfg;
}

}  // namespace vasim::adapt
