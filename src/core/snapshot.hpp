// Run-level snapshot container: the experiment-facing view of src/snap.
//
// A RunSnapshot is a chunked, CRC-protected snap::Snapshot plus the decoded
// META header describing what was captured: the full workload profile, the
// scheme, the supply point, the warmup-relevant runner configuration, and
// the capture progress (committed count, cycle, and -- for mid-measurement
// captures -- the measurement-base statistics).  ExperimentRunner::capture
// produces them; ExperimentRunner::run_from resumes them bit-identically
// (tests/test_snap.cpp pins this against uninterrupted runs).
//
// Chunk map (all payloads little-endian, see docs/snapshot.md):
//   META  capture identity + configs + progress (this header)
//   PIPE  cpu::Pipeline::save_state (whole machine state)
//   TGEN  workload::TraceGenerator cursors + RNG
//   PRED  TEP/MRE/TVP predictor tables (absent on fault-free captures)
//   CHKR  check::SemanticsChecker shadow model (when check_semantics)
//   TRAL  commit-trail samples recorded so far (when commit_trail_stride)
//   ADPT  adapt::ClockDomain controller state (adaptive-dvfs captures only)
//
// Unknown chunks are skipped on restore (forward compatibility); missing
// required chunks and any header/CRC/geometry mismatch throw
// snap::SnapshotError -- a damaged snapshot is never silently loaded.
#ifndef VASIM_CORE_SNAPSHOT_HPP
#define VASIM_CORE_SNAPSHOT_HPP

#include <optional>
#include <string>

#include "src/core/runner.hpp"
#include "src/snap/format.hpp"
#include "src/snap/io.hpp"

namespace vasim::core {

// Chunk tags.
inline constexpr u32 kChunkMeta = snap::chunk_tag("META");
inline constexpr u32 kChunkPipe = snap::chunk_tag("PIPE");
inline constexpr u32 kChunkTgen = snap::chunk_tag("TGEN");
inline constexpr u32 kChunkPred = snap::chunk_tag("PRED");
inline constexpr u32 kChunkChkr = snap::chunk_tag("CHKR");
inline constexpr u32 kChunkTral = snap::chunk_tag("TRAL");
inline constexpr u32 kChunkAdpt = snap::chunk_tag("ADPT");

/// META chunk version this build writes and reads.  v2 appended the
/// DvfsConfig; v1 snapshots predate adaptive clocking and are rejected
/// rather than guessed at.
inline constexpr u32 kMetaChunkVersion = 2;

/// Decoded META chunk.
struct RunMeta {
  /// Fault-free-baseline capture (run_fault_free path: no fault model, no
  /// predictors; `scheme` is ignored and PRED is absent).
  bool fault_free = false;
  workload::BenchmarkProfile profile;
  cpu::SchemeConfig scheme;  ///< valid when !fault_free
  double vdd = timing::SupplyPoints::kNominal;

  // Runner configuration at capture.  The warmup-relevant fields feed the
  // warmup key; `instructions` is informational (run_from measures with the
  // *resuming* runner's count).
  u64 instructions = 0;
  u64 warmup = 0;
  cpu::CoreConfig core;
  TepConfig tep;
  PredictorKind predictor = PredictorKind::kTep;
  bool check_semantics = false;
  u64 commit_trail_stride = 0;
  /// Adaptive-clock configuration at capture (META v2+).  Warmup-relevant:
  /// an adaptive controller steers the machine through warmup, so the key
  /// folds the whole struct and cross-policy warm starts are rejected.
  adapt::DvfsConfig dvfs;

  // Capture progress.
  u64 captured_committed = 0;  ///< committed instructions at the capture point
  u64 captured_cycle = 0;      ///< pipeline cycle at the capture point
  /// True when the capture happened after the warmup boundary: the
  /// measurement base below must be used verbatim (recomputing it from the
  /// restored state would measure from the capture point, not the boundary).
  bool base_captured = false;
  StatSet base;
  u64 base_committed = 0;
  u64 base_cycles = 0;

  /// Conservative warmup-compatibility key (see warmup_key below), stored so
  /// run_from and `vasim snap info` can validate without re-deriving configs.
  u64 warmup_key = 0;
};

/// A decoded run snapshot: the raw chunk container plus its META header.
class RunSnapshot {
 public:
  RunSnapshot() = default;
  /// Decodes META (and verifies PIPE/TGEN presence) from a validated
  /// container; throws snap::SnapshotError on a missing/short chunk.
  static RunSnapshot from_container(snap::Snapshot&& container);

  /// File round trip (delegates to snap::read/write_snapshot_file, so all
  /// magic/version/CRC validation applies before META is even parsed).
  static RunSnapshot read_file(const std::string& path);
  void write_file(const std::string& path) const;

  [[nodiscard]] const RunMeta& meta() const { return meta_; }
  [[nodiscard]] const snap::Snapshot& container() const { return container_; }
  [[nodiscard]] snap::Snapshot& container() { return container_; }

 private:
  friend class ExperimentRunner;
  snap::Snapshot container_;
  RunMeta meta_;
};

/// run_and_capture outcome: the uninterrupted run's result plus the mid-run
/// snapshot taken along the way.
struct CaptureResult {
  RunResult result;
  RunSnapshot snapshot;
};

// META codec (exposed for tests and `vasim snap info`).
void put_run_meta(snap::Writer& w, const RunMeta& m);
RunMeta get_run_meta(snap::Reader& r);

// Config sub-codecs (shared by META and the warmup key).
void put_profile(snap::Writer& w, const workload::BenchmarkProfile& p);
workload::BenchmarkProfile get_profile(snap::Reader& r);
void put_core_config(snap::Writer& w, const cpu::CoreConfig& c);
cpu::CoreConfig get_core_config(snap::Reader& r);
void put_scheme(snap::Writer& w, const cpu::SchemeConfig& s);
cpu::SchemeConfig get_scheme(snap::Reader& r);
void put_tep_config(snap::Writer& w, const TepConfig& t);
TepConfig get_tep_config(snap::Reader& r);

/// Serialized warmup-identity: every knob that can influence machine state
/// at the warmup boundary.  Conservative by construction -- it includes the
/// full profile, core config, predictor configuration, warmup length,
/// checker and trail settings, and (for faulty runs) the scheme and supply.
/// Fault-free captures deliberately exclude vdd: with no fault model the
/// supply only affects post-run energy accounting, so baselines at different
/// supplies share one warmup.  `instructions` and EnergyParams are excluded
/// (measurement-only).
[[nodiscard]] std::string warmup_key_bytes(const RunnerConfig& cfg,
                                           const workload::BenchmarkProfile& profile,
                                           const std::optional<cpu::SchemeConfig>& scheme,
                                           double vdd);

/// FNV-1a hash of warmup_key_bytes (the value stored in META).
[[nodiscard]] u64 warmup_key(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
                             const std::optional<cpu::SchemeConfig>& scheme, double vdd);

}  // namespace vasim::core

#endif  // VASIM_CORE_SNAPSHOT_HPP
