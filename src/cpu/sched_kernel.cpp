// Cold paths of the scheduler kernel (construction and squash filtering);
// the per-cycle hot paths stay inline in sched_kernel.hpp.
#include "src/cpu/sched_kernel.hpp"

namespace vasim::cpu {

void EventWheel::init(Arena& a, u32 buckets_pow2, u32 pool_cap) {
  mask_ = buckets_pow2 - 1;
  pool_cap_ = pool_cap;
  pool_ = a.alloc<Node>(pool_cap);
  heads_ = a.alloc<i32>(buckets_pow2);
  max_seq_ = a.alloc<SeqNum>(buckets_pow2);
  occ_ = a.alloc<u64>(buckets_pow2 / 64 + 1);
  for (u32 b = 0; b < buckets_pow2; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 w = 0; w <= mask_ / 64; ++w) occ_[w] = 0;
  for (u32 i = 0; i < pool_cap; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap - 1].next = -1;
  free_ = 0;
  next_pop_ = 0;
}

void EventWheel::clear_events() {
  for (u32 b = 0; b <= mask_; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 w = 0; w <= mask_ / 64; ++w) occ_[w] = 0;
  for (u32 i = 0; i < pool_cap_; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap_ - 1].next = -1;
  free_ = 0;
}

void EventWheel::filter_squashed(SeqNum last_kept) {
  for (u32 w = 0; w <= mask_ / 64; ++w) {
    u64 bits = occ_[w];
    while (bits != 0) {
      const u32 b = w * 64 + static_cast<u32>(std::countr_zero(bits));
      bits &= bits - 1;
      if (max_seq_[b] <= last_kept) continue;  // no squashed events here
      SeqNum maxs = 0;
      i32* link = &heads_[b];
      while (*link >= 0) {
        Node& node = pool_[*link];
        if (node.seq > last_kept) {
          const i32 dead = *link;
          *link = node.next;
          pool_[dead].next = free_;
          free_ = dead;
        } else {
          if (node.seq > maxs) maxs = node.seq;
          link = &node.next;
        }
      }
      max_seq_[b] = maxs;
      if (heads_[b] < 0) occ_[b >> 6] &= ~(u64{1} << (b & 63));
    }
  }
}

void EventWheel::save_state(snap::Writer& w) const {
  w.put_u64(next_pop_);
  u32 count = 0;
  for (u32 b = 0; b <= mask_; ++b) {
    for (i32 idx = heads_[b]; idx >= 0; idx = pool_[idx].next) ++count;
  }
  w.put_u32(count);
  for (u32 b = 0; b <= mask_; ++b) {
    if (heads_[b] < 0) continue;
    // Absolute stored cycle of bucket b: the wheel spans [next_pop_,
    // next_pop_ + mask_], so b identifies exactly one cycle in that range.
    const Cycle stored = next_pop_ + ((b - static_cast<u32>(next_pop_)) & mask_);
    for (i32 idx = heads_[b]; idx >= 0; idx = pool_[idx].next) {
      w.put_u64(stored);
      w.put_u8(static_cast<u8>(pool_[idx].kind));
      w.put_u64(pool_[idx].seq);
    }
  }
}

void EventWheel::restore_state(snap::Reader& r) {
  clear_events();
  next_pop_ = r.get_u64();
  const u32 count = r.get_u32();
  if (count > pool_cap_) throw snap::SnapshotError("event wheel pool overflow on restore");
  for (u32 i = 0; i < count; ++i) {
    const Cycle stored = r.get_u64();
    const u8 kind = r.get_u8();
    const SeqNum seq = r.get_u64();
    if (kind > static_cast<u8>(EventKind::kReplay)) throw snap::SnapshotError("bad event kind");
    if (stored < next_pop_ || stored - next_pop_ > mask_) throw snap::SnapshotError("event outside wheel horizon");
    schedule(stored, static_cast<EventKind>(kind), seq);
  }
}

void put_dyninst(snap::Writer& w, const isa::DynInst& d) {
  w.put_u64(d.seq);
  w.put_u64(d.pc);
  w.put_u8(static_cast<u8>(d.op));
  w.put_i32(d.src1);
  w.put_i32(d.src2);
  w.put_i32(d.dst);
  w.put_u64(d.mem_addr);
  w.put_i32(d.mem_size);
  w.put_bool(d.taken);
  w.put_u64(d.next_pc);
}

isa::DynInst get_dyninst(snap::Reader& r) {
  isa::DynInst d;
  d.seq = r.get_u64();
  d.pc = r.get_u64();
  const u8 op = r.get_u8();
  if (op > static_cast<u8>(isa::OpClass::kBranch)) throw snap::SnapshotError("bad op class");
  d.op = static_cast<isa::OpClass>(op);
  d.src1 = r.get_i32();
  d.src2 = r.get_i32();
  d.dst = r.get_i32();
  d.mem_addr = r.get_u64();
  d.mem_size = r.get_i32();
  d.taken = r.get_bool();
  d.next_pc = r.get_u64();
  return d;
}

void put_inst_state(snap::Writer& w, const InstState& is) {
  put_dyninst(w, is.di);
  w.put_u64(is.age);
  w.put_u64(is.tep_history);
  w.put_i32(is.phys_dst);
  w.put_i32(is.old_phys);
  w.put_i32(is.phys_src1);
  w.put_i32(is.phys_src2);
  w.put_bool(is.in_iq);
  w.put_bool(is.issued);
  w.put_bool(is.completed);
  w.put_bool(is.safe_mode);
  w.put_bool(is.pred_fault);
  w.put_u8(static_cast<u8>(is.pred_stage));
  w.put_bool(is.pred_critical);
  w.put_bool(is.actual_fault);
  w.put_u8(static_cast<u8>(is.actual_stage));
  w.put_bool(is.fault_handled);
  w.put_bool(is.replay_scheduled);
  w.put_bool(is.retire_fault);
  w.put_bool(is.retire_padded);
  w.put_bool(is.wrong_path);
}

InstState get_inst_state(snap::Reader& r) {
  InstState is;
  is.di = get_dyninst(r);
  is.age = r.get_u64();
  is.tep_history = r.get_u64();
  is.phys_dst = r.get_i32();
  is.old_phys = r.get_i32();
  is.phys_src1 = r.get_i32();
  is.phys_src2 = r.get_i32();
  is.in_iq = r.get_bool();
  is.issued = r.get_bool();
  is.completed = r.get_bool();
  is.safe_mode = r.get_bool();
  is.pred_fault = r.get_bool();
  is.pred_stage = static_cast<timing::OooStage>(r.get_u8());
  is.pred_critical = r.get_bool();
  is.actual_fault = r.get_bool();
  is.actual_stage = static_cast<timing::OooStage>(r.get_u8());
  is.fault_handled = r.get_bool();
  is.replay_scheduled = r.get_bool();
  is.retire_fault = r.get_bool();
  is.retire_padded = r.get_bool();
  is.wrong_path = r.get_bool();
  return is;
}

void IssueWindow::save_state(snap::Writer& w) const {
  w.put_u64(head_seq_);
  w.put_u32(size_);
  for (u32 i = 0; i < size_; ++i) {
    const u32 slot = slot_of(head_seq_ + i);
    put_inst_state(w, cold_[slot]);
    w.put_i32(src1_[slot]);
    w.put_i32(src2_[slot]);
    w.put_u64(addrq_[slot]);
    w.put_u8(pending_[slot]);
    w.put_u8(abs6_[slot]);
  }
  w.put_u32(words_);
  for (u32 i = 0; i < words_; ++i) w.put_u64(waiting_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(ready_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(issued_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(predf_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(crit_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(memop_[i]);
  for (u32 i = 0; i < words_; ++i) w.put_u64(store_[i]);
  w.put_u32(num_phys_);
  for (u32 i = 0; i < num_phys_ * words_; ++i) w.put_u64(waiters1_[i]);
  for (u32 i = 0; i < num_phys_ * words_; ++i) w.put_u64(waiters2_[i]);
}

void IssueWindow::restore_state(snap::Reader& r) {
  head_seq_ = r.get_u64();
  size_ = r.get_u32();
  if (size_ > cap_mask_ + 1) throw snap::SnapshotError("issue window over capacity on restore");
  for (u32 i = 0; i < size_; ++i) {
    const u32 slot = slot_of(head_seq_ + i);
    cold_[slot] = get_inst_state(r);
    src1_[slot] = r.get_i32();
    src2_[slot] = r.get_i32();
    addrq_[slot] = r.get_u64();
    pending_[slot] = r.get_u8();
    abs6_[slot] = r.get_u8();
  }
  if (r.get_u32() != words_) throw snap::SnapshotError("issue window mask geometry mismatch");
  for (u32 i = 0; i < words_; ++i) waiting_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) ready_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) issued_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) predf_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) crit_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) memop_[i] = r.get_u64();
  for (u32 i = 0; i < words_; ++i) store_[i] = r.get_u64();
  if (r.get_u32() != num_phys_) throw snap::SnapshotError("issue window phys-reg count mismatch");
  for (u32 i = 0; i < num_phys_ * words_; ++i) waiters1_[i] = r.get_u64();
  for (u32 i = 0; i < num_phys_ * words_; ++i) waiters2_[i] = r.get_u64();
}

}  // namespace vasim::cpu
