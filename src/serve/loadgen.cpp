#include "src/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "src/serve/json.hpp"
#include "src/serve/socket.hpp"

namespace vasim::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Exact percentile over a sorted sample (nearest-rank).
double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

std::string reply_summary(const JsonValue& reply);

struct PendingJob {
  u64 id = 0;
  double submitted_at_ms = 0.0;  ///< offset from the client's t0
  std::size_t results_seen = 0;
  bool cancelled_by_us = false;
};

/// Everything one client thread learns; merged by run_loadgen afterwards.
struct ClientOutcome {
  std::vector<double> submit_lat_ms;
  std::vector<double> job_lat_ms;
  std::size_t submitted = 0;
  std::size_t done = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejections = 0;
  std::size_t cells = 0;
  std::size_t warm_hits = 0;
  bool timed_out = false;
  /// (bench|scheme|vdd) -> checksum hex; cross-job disagreement is the bug
  /// the daemon promises can never happen.
  std::map<std::string, std::string> checksums;
  bool mismatch = false;
  std::string error;  ///< first fatal transport/protocol failure, if any
};

std::string cell_key(const std::string& bench, const std::string& scheme, double vdd) {
  return bench + "|" + scheme + "|" + json_double(vdd);
}

void record_results(ClientOutcome& out, PendingJob& job, const JsonValue& reply) {
  const JsonValue* results = reply.find("results");
  if (results == nullptr || !results->is_array()) return;
  for (const JsonValue& r : results->array) {
    if (!r.is_object()) continue;
    ++job.results_seen;
    const JsonValue* cancelled = r.find("cancelled");
    if (cancelled != nullptr && cancelled->is_bool() && cancelled->boolean) continue;
    ++out.cells;
    const JsonValue* warm = r.find("warm_hit");
    if (warm != nullptr && warm->is_bool() && warm->boolean) ++out.warm_hits;
    const JsonValue* bench = r.find("benchmark");
    const JsonValue* scheme = r.find("scheme");
    const JsonValue* vdd = r.find("vdd");
    const JsonValue* checksum = r.find("checksum");
    if (bench == nullptr || scheme == nullptr || vdd == nullptr || checksum == nullptr) continue;
    const std::string key = cell_key(bench->str, scheme->str, vdd->number);
    const auto [it, inserted] = out.checksums.emplace(key, checksum->str);
    if (!inserted && it->second != checksum->str) out.mismatch = true;
  }
}

/// Polls one job once; returns true when it reached a terminal state.
bool poll_job(Client& client, ClientOutcome& out, PendingJob& job, Clock::time_point t0) {
  const std::string reply_text =
      client.request("{\"op\":\"poll\",\"job\":" + std::to_string(job.id) +
                     ",\"since\":" + std::to_string(job.results_seen) + "}");
  const JsonValue reply = parse_json(reply_text);
  record_results(out, job, reply);
  const JsonValue* state = reply.find("state");
  if (state == nullptr || !state->is_string()) return false;
  if (state->str == "done") {
    ++out.done;
    out.job_lat_ms.push_back(ms_since(t0) - job.submitted_at_ms);
    return true;
  }
  if (state->str == "cancelled") {
    ++out.cancelled;
    return true;
  }
  if (state->str == "failed") {
    ++out.failed;
    return true;
  }
  return false;
}

void client_mix(const LoadgenConfig& cfg, std::size_t client_index, ClientOutcome& out) {
  std::mt19937_64 rng(cfg.seed * 1000003ULL + client_index);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Client client(parse_endpoint(cfg.endpoint));
  const Clock::time_point t0 = Clock::now();
  std::vector<PendingJob> pending;

  for (std::size_t j = 0; j < cfg.jobs_per_client; ++j) {
    // Open-loop: submit number j at its scheduled offset regardless of how
    // many earlier jobs are still in flight.
    const double due_ms = static_cast<double>(j) * cfg.submit_interval_ms;
    while (ms_since(t0) < due_ms) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }

    std::string frame = "{\"op\":\"submit\",\"cells\":[";
    for (std::size_t c = 0; c < cfg.cells_per_job; ++c) {
      const std::string& bench = cfg.benches[rng() % cfg.benches.size()];
      const std::string& scheme = cfg.schemes[rng() % cfg.schemes.size()];
      const double vdd = cfg.vdds[rng() % cfg.vdds.size()];
      if (c != 0) frame += ",";
      frame += "{\"bench\":\"" + json_escape(bench) + "\",\"scheme\":\"" +
               json_escape(scheme) + "\",\"vdd\":" + json_double(vdd) + "}";
    }
    frame += "]";
    if (cfg.instructions > 0) frame += ",\"instr\":" + std::to_string(cfg.instructions);
    if (cfg.warmup > 0) frame += ",\"warmup\":" + std::to_string(cfg.warmup);
    frame += ",\"tag\":\"loadgen-" + std::to_string(client_index) + "\"}";

    // Submit with backpressure: a queue_full reply names its own retry
    // delay; the client owns the wait.
    bool accepted = false;
    while (!accepted) {
      const Clock::time_point s0 = Clock::now();
      const JsonValue reply = parse_json(client.request(frame));
      const double rtt = ms_since(s0);
      const JsonValue* ok = reply.find("ok");
      if (ok != nullptr && ok->is_bool() && ok->boolean) {
        out.submit_lat_ms.push_back(rtt);
        ++out.submitted;
        PendingJob pj;
        pj.id = reply.find("job")->as_u64();
        pj.submitted_at_ms = ms_since(t0);
        if (coin(rng) < cfg.cancel_fraction) {
          (void)client.request("{\"op\":\"cancel\",\"job\":" + std::to_string(pj.id) + "}");
          pj.cancelled_by_us = true;
        }
        pending.push_back(pj);
        accepted = true;
      } else {
        const JsonValue* err = reply.find("error");
        if (err != nullptr && err->is_string() && err->str == "queue_full") {
          ++out.rejections;
          u64 delay = 1;
          if (const JsonValue* retry = reply.find("retry_after_ms"); retry != nullptr) {
            delay = std::min<u64>(retry->as_u64(), 250);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        } else {
          out.error = "submit rejected: " + reply_summary(reply);
          return;
        }
      }
    }

    // One poll round between submits keeps the streaming cursor exercised
    // while the mix is still arriving.
    for (auto it = pending.begin(); it != pending.end();) {
      it = poll_job(client, out, *it, t0) ? pending.erase(it) : it + 1;
    }
  }

  // Drain: poll the leftovers until terminal or the give-up bound.
  while (!pending.empty()) {
    if (ms_since(t0) > static_cast<double>(cfg.timeout_ms)) {
      out.timed_out = true;
      return;
    }
    for (auto it = pending.begin(); it != pending.end();) {
      it = poll_job(client, out, *it, t0) ? pending.erase(it) : it + 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.poll_interval_ms));
  }
}

std::string reply_summary(const JsonValue& reply) {
  const JsonValue* err = reply.find("error");
  const JsonValue* msg = reply.find("message");
  std::string s = err != nullptr && err->is_string() ? err->str : "?";
  if (msg != nullptr && msg->is_string()) s += " (" + msg->str + ")";
  return s;
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& cfg) {
  const Clock::time_point t0 = Clock::now();
  std::vector<ClientOutcome> outcomes(std::max<std::size_t>(cfg.clients, 1));
  std::vector<std::thread> threads;
  threads.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    threads.emplace_back([&cfg, i, &outcomes] { client_mix(cfg, i, outcomes[i]); });
  }
  for (std::thread& t : threads) t.join();

  LoadgenReport rep;
  std::vector<double> submit_lat;
  std::vector<double> job_lat;
  std::map<std::string, std::string> checksums;
  std::string first_error;
  for (const ClientOutcome& o : outcomes) {
    rep.jobs_submitted += o.submitted;
    rep.jobs_done += o.done;
    rep.jobs_cancelled += o.cancelled;
    rep.jobs_failed += o.failed;
    rep.queue_full_rejections += o.rejections;
    rep.cells_completed += o.cells;
    rep.warm_hits += o.warm_hits;
    rep.timed_out = rep.timed_out || o.timed_out;
    if (o.mismatch) rep.checksums_consistent = false;
    if (first_error.empty() && !o.error.empty()) first_error = o.error;
    submit_lat.insert(submit_lat.end(), o.submit_lat_ms.begin(), o.submit_lat_ms.end());
    job_lat.insert(job_lat.end(), o.job_lat_ms.begin(), o.job_lat_ms.end());
    // Cross-CLIENT consistency too: any client seeing a different checksum
    // for the same cell than any other client is the same bug.
    for (const auto& [key, sum] : o.checksums) {
      const auto [it, inserted] = checksums.emplace(key, sum);
      if (!inserted && it->second != sum) rep.checksums_consistent = false;
    }
  }
  rep.distinct_cells = checksums.size();
  std::sort(submit_lat.begin(), submit_lat.end());
  std::sort(job_lat.begin(), job_lat.end());
  rep.submit_p50_ms = pct(submit_lat, 0.50);
  rep.submit_p95_ms = pct(submit_lat, 0.95);
  rep.submit_p99_ms = pct(submit_lat, 0.99);
  rep.submit_max_ms = submit_lat.empty() ? 0.0 : submit_lat.back();
  rep.job_p50_ms = pct(job_lat, 0.50);
  rep.job_p95_ms = pct(job_lat, 0.95);
  rep.job_p99_ms = pct(job_lat, 0.99);
  rep.job_max_ms = job_lat.empty() ? 0.0 : job_lat.back();
  rep.wall_ms = ms_since(t0);

  if (!first_error.empty()) throw SocketError(first_error);

  // One last connection pulls the daemon-side cache hit rate for the report.
  try {
    Client stats_client(parse_endpoint(cfg.endpoint));
    const JsonValue reply = parse_json(stats_client.request("{\"op\":\"stats\"}"));
    if (const JsonValue* cache = reply.find("cache"); cache != nullptr && cache->is_object()) {
      if (const JsonValue* rate = cache->find("hit_rate"); rate != nullptr) {
        rep.cache_hit_rate = rate->number;
      }
    }
  } catch (const std::exception&) {
    // Daemon may have been shut down between the drain and the stats pull;
    // the latency numbers above are still valid.
  }
  return rep;
}

bool write_loadgen_json(const std::string& path, const LoadgenConfig& cfg,
                        const LoadgenReport& report) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"serve\",\n";
  out << "  \"config\": {\"endpoint\": \"" << json_escape(cfg.endpoint)
      << "\", \"clients\": " << cfg.clients << ", \"jobs_per_client\": " << cfg.jobs_per_client
      << ", \"cells_per_job\": " << cfg.cells_per_job
      << ", \"submit_interval_ms\": " << json_double(cfg.submit_interval_ms)
      << ", \"cancel_fraction\": " << json_double(cfg.cancel_fraction)
      << ", \"seed\": " << cfg.seed << ", \"instructions\": " << cfg.instructions
      << ", \"warmup\": " << cfg.warmup << "},\n";
  out << "  \"jobs\": {\"submitted\": " << report.jobs_submitted
      << ", \"done\": " << report.jobs_done << ", \"cancelled\": " << report.jobs_cancelled
      << ", \"failed\": " << report.jobs_failed
      << ", \"queue_full_rejections\": " << report.queue_full_rejections << "},\n";
  out << "  \"cells\": {\"completed\": " << report.cells_completed
      << ", \"warm_hits\": " << report.warm_hits << ", \"distinct\": " << report.distinct_cells
      << "},\n";
  out << "  \"submit_latency_ms\": {\"p50\": " << json_double(report.submit_p50_ms)
      << ", \"p95\": " << json_double(report.submit_p95_ms)
      << ", \"p99\": " << json_double(report.submit_p99_ms)
      << ", \"max\": " << json_double(report.submit_max_ms) << "},\n";
  out << "  \"job_latency_ms\": {\"p50\": " << json_double(report.job_p50_ms)
      << ", \"p95\": " << json_double(report.job_p95_ms)
      << ", \"p99\": " << json_double(report.job_p99_ms)
      << ", \"max\": " << json_double(report.job_max_ms) << "},\n";
  out << "  \"cache_hit_rate\": " << json_double(report.cache_hit_rate) << ",\n";
  out << "  \"checksums_consistent\": " << (report.checksums_consistent ? "true" : "false")
      << ",\n";
  out << "  \"timed_out\": " << (report.timed_out ? "true" : "false") << ",\n";
  out << "  \"wall_ms\": " << json_double(report.wall_ms) << "\n}\n";
  return static_cast<bool>(out);
}

std::string loadgen_summary(const LoadgenReport& r) {
  std::ostringstream os;
  os << "loadgen: " << r.jobs_submitted << " jobs submitted, " << r.jobs_done << " done, "
     << r.jobs_cancelled << " cancelled, " << r.jobs_failed << " failed, "
     << r.queue_full_rejections << " queue-full rejections\n";
  os << "  cells: " << r.cells_completed << " completed, " << r.warm_hits << " warm hits, "
     << r.distinct_cells << " distinct grid points\n";
  os << "  submit latency ms: p50 " << r.submit_p50_ms << "  p95 " << r.submit_p95_ms
     << "  p99 " << r.submit_p99_ms << "  max " << r.submit_max_ms << "\n";
  os << "  job latency ms:    p50 " << r.job_p50_ms << "  p95 " << r.job_p95_ms << "  p99 "
     << r.job_p99_ms << "  max " << r.job_max_ms << "\n";
  os << "  cache hit rate: " << r.cache_hit_rate
     << "  checksums consistent: " << (r.checksums_consistent ? "yes" : "NO") << "  wall ms: "
     << r.wall_ms << (r.timed_out ? "  [TIMED OUT]" : "") << "\n";
  return os.str();
}

}  // namespace vasim::serve
