// Socket transport for the serve protocol: a Unix-domain or loopback-TCP
// listener that frames the line protocol onto a Server, plus the blocking
// client used by `vasim loadgen`, the CLI and the tests.
//
// Endpoint syntax (shared by `vasim serve --listen` and `loadgen --connect`):
//   unix:/path/to.sock   Unix-domain stream socket (path unlinked on bind)
//   tcp:PORT             TCP on 127.0.0.1 only; PORT 0 picks an ephemeral
//                        port (resolved_port() reports the real one)
//
// One thread per connection, blocking reads; stop() shuts every open fd
// down so connection threads unblock and join deterministically.  Frames
// beyond FrameLimits::max_frame_bytes get one named "oversized_frame" error
// reply and the connection is closed (a client that overflows the framing
// cannot be resynchronized safely).  Bytes at EOF without a newline are
// dropped -- a truncated trailing frame is unanswerable by construction.
#ifndef VASIM_SERVE_SOCKET_HPP
#define VASIM_SERVE_SOCKET_HPP

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/serve/protocol.hpp"

namespace vasim::serve {

/// Transport-level failure (bind/connect/short write/...); `what()` names
/// the operation and errno text.
class SocketError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path
  int port = 0;      ///< kTcp: port (0 = ephemeral)
};

/// Parses "unix:PATH" / "tcp:PORT"; throws SocketError on anything else.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Accept loop + per-connection protocol pumps over one Server.
class SocketServer {
 public:
  /// Binds and listens immediately (throws SocketError on failure); call
  /// start() to begin accepting.
  SocketServer(Server& server, const Endpoint& endpoint, FrameLimits limits = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Spawns the accept thread.
  void start();

  /// Blocks until a client's shutdown op is granted, then stops the
  /// transport and shuts the Server down (the `vasim serve` main loop).
  void serve_until_shutdown();

  /// Stops accepting, unblocks and joins every connection thread.  Does NOT
  /// shut the Server down (tests drive that separately).  Idempotent.
  void stop();

  /// The bound TCP port (resolves tcp:0), or 0 for Unix endpoints.
  [[nodiscard]] int resolved_port() const;

  /// True once a shutdown frame has been granted.
  [[nodiscard]] bool shutdown_requested() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking line-protocol client: one request line out, one reply line in.
class Client {
 public:
  /// Connects (throws SocketError on refusal/timeout at the OS's default).
  explicit Client(const Endpoint& endpoint);
  ~Client();

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `line` (newline appended) and returns the reply line (newline
  /// stripped).  Throws SocketError on EOF / transport failure.
  [[nodiscard]] std::string request(const std::string& line);

  /// Sends raw bytes without framing (negative-path tests: oversized and
  /// truncated frames).
  void send_raw(const std::string& bytes);

  /// Reads one reply line; throws SocketError on EOF.
  [[nodiscard]] std::string read_line();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace vasim::serve

#endif  // VASIM_SERVE_SOCKET_HPP
