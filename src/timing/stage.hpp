// Pipe-stage taxonomy shared by the timing model and the CPU model.
#ifndef VASIM_TIMING_STAGE_HPP
#define VASIM_TIMING_STAGE_HPP

#include <array>
#include <string_view>

namespace vasim::timing {

/// Stages of the out-of-order engine where the paper tolerates predictable
/// timing violations (Section 3.3).  IssueSelect is the wakeup/select CAM
/// logic; Memory is the load-store-queue CAM search.
enum class OooStage : int {
  kIssueSelect = 0,
  kRegRead = 1,
  kExecute = 2,
  kMemory = 3,
  kWriteback = 4,
};

inline constexpr int kNumOooStages = 5;

/// Stages of the in-order engine (Section 2.2): rename/dispatch/retire are
/// handled with stall-recirculation; fetch/decode with instruction replay.
enum class InOrderStage : int {
  kFetch = 0,
  kDecode = 1,
  kRename = 2,
  kDispatch = 3,
  kRetire = 4,
};

inline constexpr int kNumInOrderStages = 5;

constexpr std::string_view to_string(OooStage s) {
  constexpr std::array<std::string_view, kNumOooStages> names = {
      "issue-select", "reg-read", "execute", "memory", "writeback"};
  return names[static_cast<int>(s)];
}

constexpr std::string_view to_string(InOrderStage s) {
  constexpr std::array<std::string_view, kNumInOrderStages> names = {
      "fetch", "decode", "rename", "dispatch", "retire"};
  return names[static_cast<int>(s)];
}

}  // namespace vasim::timing

#endif  // VASIM_TIMING_STAGE_HPP
