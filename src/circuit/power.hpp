// Area / power roll-up over components, replacing the Synopsys DC reports
// the paper gathers (Section 4.1, Table 2).
#ifndef VASIM_CIRCUIT_POWER_HPP
#define VASIM_CIRCUIT_POWER_HPP

#include <span>

#include "src/circuit/builders.hpp"

namespace vasim::circuit {

/// Operating conditions for dynamic power estimation.
struct PowerConditions {
  double frequency_ghz = 2.0;
  double activity = 0.10;       ///< average toggle probability per gate per cycle
  double flop_activity = 0.15;  ///< average write probability per flop per cycle
};

/// Synthesis-style report for one block (or a union of blocks).
struct PowerReport {
  double area_um2 = 0.0;
  double dynamic_power_uw = 0.0;
  double leakage_power_uw = 0.0;
  int gate_count = 0;
  int flop_count = 0;

  PowerReport& operator+=(const PowerReport& o);
};

/// Rolls up one component.
PowerReport roll_up(const Component& component, const PowerConditions& cond = {});

/// Rolls up a set of components (e.g. a SchedulerAssembly's blocks).
PowerReport roll_up(std::span<const Component> components, const PowerConditions& cond = {});

/// Relative overhead of `enhanced` over `baseline` as fractions (area,
/// dynamic, leakage), the quantity Table 2 reports.
struct OverheadReport {
  double area = 0.0;
  double dynamic_power = 0.0;
  double leakage_power = 0.0;
};
OverheadReport overhead(const PowerReport& baseline, const PowerReport& enhanced);

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_POWER_HPP
