#include "src/common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace vasim {

u64 env_u64(const std::string& name, u64 fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<u64>(v);
}

u64 env_count(const std::string& name, u64 fallback, u64 max_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  // Strict parse: the whole value must be decimal digits (strtoull alone
  // would silently accept "4x16" as 4 and "abc" as 0).
  bool all_digits = true;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) {
      all_digits = false;
      break;
    }
  }
  if (!all_digits) {
    std::fprintf(stderr, "[env] ignoring %s='%s' (not a plain decimal count); using the default\n",
                 name.c_str(), raw);
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno == ERANGE || v > max_value) {
    std::fprintf(stderr, "[env] %s=%s exceeds the sane maximum %llu; clamping\n", name.c_str(),
                 raw, static_cast<unsigned long long>(max_value));
    return max_value;
  }
  if (v == 0) {
    std::fprintf(stderr, "[env] ignoring %s=0 (a zero count is meaningless); using the default\n",
                 name.c_str());
    return fallback;
  }
  return static_cast<u64>(v);
}

std::string env_str(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace vasim
