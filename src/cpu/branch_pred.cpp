#include "src/cpu/branch_pred.hpp"

namespace vasim::cpu {

BranchPredictor::BranchPredictor(const CoreConfig& cfg)
    : counters_(static_cast<std::size_t>(1) << cfg.gshare_bits, 1),
      btb_(static_cast<std::size_t>(cfg.btb_entries)),
      history_mask_((1ULL << cfg.gshare_bits) - 1) {}

std::size_t BranchPredictor::dir_index(Pc pc) const {
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & history_mask_);
}

BranchPrediction BranchPredictor::predict(Pc pc) const {
  ++lookups_;
  BranchPrediction p;
  p.taken = counters_[dir_index(pc)] >= 2;
  const BtbEntry& e = btb_[(pc >> 2) % btb_.size()];
  if (e.valid && e.pc == pc) {
    p.target_known = true;
    p.target = e.target;
  }
  return p;
}

void BranchPredictor::update(Pc pc, bool taken, Pc target) {
  u8& c = counters_[dir_index(pc)];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
  if (taken) btb_[(pc >> 2) % btb_.size()] = BtbEntry{pc, target, true};
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

}  // namespace vasim::cpu
