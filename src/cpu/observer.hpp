// Pipeline observation hooks and a Kanata trace writer.
//
// A PipelineObserver receives per-instruction lifecycle events; the
// KanataTraceWriter turns them into a Kanata-format pipeline visualization
// log (https://github.com/shioyadan/Konata), which is invaluable when
// debugging scheduling interactions like slot freezes and replays.
#ifndef VASIM_CPU_OBSERVER_HPP
#define VASIM_CPU_OBSERVER_HPP

#include <ostream>
#include <string>

#include "src/common/types.hpp"
#include "src/isa/dyninst.hpp"

namespace vasim::cpu {

/// Lifecycle callbacks.  All default to no-ops so observers override only
/// what they need.  `seq` is the dynamic sequence number (re-assigned after
/// a squash).
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  virtual void on_cycle(Cycle) {}
  virtual void on_fetch(SeqNum, const isa::DynInst&) {}
  virtual void on_dispatch(SeqNum) {}
  virtual void on_issue(SeqNum, bool predicted_faulty) { (void)predicted_faulty; }
  virtual void on_complete(SeqNum) {}
  virtual void on_commit(SeqNum) {}
  virtual void on_squash(SeqNum first_squashed, SeqNum last_squashed) {
    (void)first_squashed;
    (void)last_squashed;
  }
};

/// Writes a Kanata 0004 log.  Stages emitted: F (fetch/front end),
/// Ds (dispatch/queue), Is (issue/execute), Cm (completed, waiting for
/// retire).  Predicted-faulty instructions are annotated.
class KanataTraceWriter final : public PipelineObserver {
 public:
  /// `out` must outlive the writer.  `max_instructions` caps the log size.
  explicit KanataTraceWriter(std::ostream* out, u64 max_instructions = 10'000);

  void on_cycle(Cycle now) override;
  void on_fetch(SeqNum seq, const isa::DynInst& di) override;
  void on_dispatch(SeqNum seq) override;
  void on_issue(SeqNum seq, bool predicted_faulty) override;
  void on_complete(SeqNum seq) override;
  void on_commit(SeqNum seq) override;
  void on_squash(SeqNum first_squashed, SeqNum last_squashed) override;

  [[nodiscard]] u64 instructions_logged() const { return logged_; }

 private:
  [[nodiscard]] bool tracked(SeqNum seq) const;
  void sync_cycle();

  std::ostream* out_;
  u64 max_instructions_;
  u64 logged_ = 0;
  Cycle now_ = 0;
  Cycle emitted_cycle_ = 0;
  bool header_written_ = false;
  u64 retire_id_ = 0;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_OBSERVER_HPP
