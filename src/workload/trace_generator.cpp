#include "src/workload/trace_generator.hpp"

#include <algorithm>

#include "src/isa/program.hpp"

namespace vasim::workload {
namespace {

constexpr Addr kHotBase = 0x0010'0000;
constexpr Addr kWarmBase = 0x0800'0000;
constexpr Addr kColdBase = 0x4000'0000;
constexpr int kRecentRing = 32;
constexpr int kFirstHubReg = 25;
constexpr int kNumHubRegs = 4;
constexpr int kLastPlainDst = 24;
constexpr int kFirstSlackReg = 29;  // r29-r31: never written, always ready
constexpr int kNumSlackRegs = 3;

}  // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile& profile)
    : profile_(profile), rng_(profile.seed, 0x7ace5ULL) {
  build_static_program();
  block_iter_.assign(blocks_.size(), 0);
  recent_dst_.assign(kRecentRing, 1);
}

void TraceGenerator::build_static_program() {
  Pc pc = isa::kTextBase;
  const double non_branch = 1.0 - profile_.f_branch;
  // Probabilities of body (non-branch) instruction classes.
  const double p_load = profile_.f_load / non_branch;
  const double p_store = profile_.f_store / non_branch;
  const double p_mul = profile_.f_mul / non_branch;
  const double p_div = profile_.f_div / non_branch;

  // Target body length so that terminator branches make up f_branch of the
  // dynamic mix: mean body length = (1 - f_branch) / f_branch.
  const double mean_body = std::max(1.0, non_branch / std::max(0.02, profile_.f_branch));
  const int lo = std::max(1, static_cast<int>(mean_body) - 3);
  const int hi = static_cast<int>(mean_body) + 3;

  blocks_.resize(static_cast<std::size_t>(profile_.num_blocks));
  for (int b = 0; b < profile_.num_blocks; ++b) {
    Block& blk = blocks_[static_cast<std::size_t>(b)];
    const int body = lo + static_cast<int>(rng_.next_below(static_cast<u32>(hi - lo + 1)));
    for (int i = 0; i < body; ++i) {
      StaticInstr si;
      si.pc = pc;
      pc += isa::kInstrBytes;
      const double u = rng_.next_double();
      if (u < p_load) {
        si.op = isa::OpClass::kLoad;
      } else if (u < p_load + p_store) {
        si.op = isa::OpClass::kStore;
      } else if (u < p_load + p_store + p_mul) {
        si.op = isa::OpClass::kIntMul;
      } else if (u < p_load + p_store + p_mul + p_div) {
        si.op = isa::OpClass::kIntDiv;
      } else {
        si.op = isa::OpClass::kIntAlu;
        si.hub_producer = rng_.next_bool(0.04);
      }
      if (isa::is_mem(si.op)) {
        // The stream *kind* is chosen per dynamic access (data-dependent
        // misses keep the hot/warm/cold fractions exact regardless of which
        // blocks run hot); the per-instruction base anchors its stride.
        si.stream_base = rng_.next_u64();
      }
      blk.instrs.push_back(si);
    }
    // Terminating branch.
    StaticInstr br;
    br.pc = pc;
    pc += isa::kInstrBytes;
    br.op = isa::OpClass::kBranch;
    blk.instrs.push_back(br);

    blk.taken_bias = profile_.branch_taken_bias;
    blk.loop_trip = 32 + rng_.next_below(17);  // 32..48
    // Control structure: some blocks are inner loops (taken =>
    // repeat self, exit forward); all other branches skip forward by a small
    // fixed amount, so whatever the outcomes, the walk keeps sweeping the
    // whole program ring -- full static coverage with per-branch targets
    // that stay fixed (and therefore BTB-predictable).  Outcomes are fixed
    // (learnable) except for the profile's fraction of history-independent
    // branches, the controlled mispredict source.
    if (rng_.next_bool(0.15)) {
      blk.taken_target = b;
      blk.branch_kind = BranchKind::kLoop;
    } else {
      blk.taken_target =
          static_cast<int>((static_cast<u32>(b) + 1 + rng_.next_below(7)) %
                           static_cast<u32>(profile_.num_blocks));
      if (rng_.next_bool(profile_.branch_random_frac)) {
        blk.branch_kind = BranchKind::kRandom;
      } else {
        blk.branch_kind = BranchKind::kFixed;
        blk.fixed_taken = rng_.next_bool(profile_.branch_taken_bias);
      }
    }
  }
}

std::size_t TraceGenerator::static_footprint() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.instrs.size();
  return n;
}

int TraceGenerator::pick_source() {
  const double u = rng_.next_double();
  if (u < profile_.serial_frac) {
    return recent_dst_[(recent_head_ + kRecentRing - 1) % kRecentRing];
  }
  if (u < profile_.serial_frac + profile_.hub_frac) return hub_reg_;
  if (u < profile_.serial_frac + profile_.hub_frac + profile_.slack_frac) {
    return kFirstSlackReg + static_cast<int>(rng_.next_below(kNumSlackRegs));
  }
  // Geometric dependence distance >= 2 (distance 1 is the serial_frac case).
  int dist = 2;
  while (dist < kRecentRing - 1 && !rng_.next_bool(profile_.dep_geo_p)) ++dist;
  return recent_dst_[(recent_head_ + kRecentRing - static_cast<std::size_t>(dist)) % kRecentRing];
}

Addr TraceGenerator::gen_address(const StaticInstr& si) {
  // Per-block iteration works as the loop induction variable.
  const u64 iter = block_iter_[cur_block_];
  const double m = rng_.next_double();
  if (m < profile_.cold_frac) {
    if (rng_.next_bool(profile_.cold_random_frac)) {
      const u64 h = hash_combine(hash_combine(profile_.seed, si.pc), iter);
      return kColdBase + (h % profile_.ws_cold_bytes);
    }
    return kColdBase + (si.stream_base + iter * 8) % profile_.ws_cold_bytes;
  }
  if (m < profile_.cold_frac + profile_.warm_frac) {
    const u64 h = hash_combine(hash_combine(profile_.seed ^ 0x3a31ULL, si.pc), iter);
    return kWarmBase + (h % profile_.ws_warm_bytes);
  }
  return kHotBase + (si.stream_base + iter * 8) % profile_.ws_hot_bytes;
}

bool TraceGenerator::next(isa::DynInst& out) {
  const Block& blk = blocks_[cur_block_];
  const StaticInstr& si = blk.instrs[cur_idx_];
  const bool is_terminator = cur_idx_ + 1 == blk.instrs.size();

  out = isa::DynInst{};
  out.pc = si.pc;
  out.op = si.op;
  out.next_pc = si.pc + isa::kInstrBytes;

  switch (si.op) {
    case isa::OpClass::kIntAlu:
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv: {
      out.src1 = pick_source();
      if (rng_.next_bool(0.4)) out.src2 = pick_source();
      if (si.hub_producer) {
        hub_reg_ = kFirstHubReg + static_cast<int>(rng_.next_below(kNumHubRegs));
        out.dst = hub_reg_;
      } else {
        out.dst = next_dst_;
        next_dst_ = next_dst_ % kLastPlainDst + 1;
      }
      recent_dst_[recent_head_] = out.dst;
      recent_head_ = (recent_head_ + 1) % kRecentRing;
      break;
    }
    case isa::OpClass::kLoad: {
      out.src1 = pick_source();  // address base
      out.mem_addr = (gen_address(si) & ~7ULL);
      out.dst = next_dst_;
      next_dst_ = next_dst_ % kLastPlainDst + 1;
      recent_dst_[recent_head_] = out.dst;
      recent_head_ = (recent_head_ + 1) % kRecentRing;
      break;
    }
    case isa::OpClass::kStore: {
      out.src1 = pick_source();  // address base
      out.src2 = pick_source();  // value
      out.mem_addr = (gen_address(si) & ~7ULL);
      break;
    }
    case isa::OpClass::kBranch: {
      out.src1 = pick_source();
      bool taken = false;
      const u32 iter = block_iter_[cur_block_];
      switch (blk.branch_kind) {
        case BranchKind::kFixed:
          taken = blk.fixed_taken;
          break;
        case BranchKind::kLoop:
          taken = (iter % blk.loop_trip) != blk.loop_trip - 1;
          break;
        case BranchKind::kRandom:
          taken = rng_.next_bool(blk.taken_bias);
          break;
      }
      out.taken = taken;
      const std::size_t fall_through = (cur_block_ + 1) % blocks_.size();
      const std::size_t target =
          taken ? static_cast<std::size_t>(blk.taken_target) : fall_through;
      out.next_pc = blocks_[target].instrs.front().pc;

      ++block_iter_[cur_block_];
      cur_block_ = target;
      cur_idx_ = 0;
      ++emitted_;
      return true;
    }
    case isa::OpClass::kNop:
      break;
  }

  if (is_terminator) {
    // Non-branch terminator cannot happen (blocks end in branches), but keep
    // the walk safe.
    cur_block_ = (cur_block_ + 1) % blocks_.size();
    cur_idx_ = 0;
  } else {
    ++cur_idx_;
  }
  ++emitted_;
  return true;
}

void TraceGenerator::save_state(snap::Writer& w) const {
  w.put_u64(rng_.state());
  w.put_u64(rng_.inc());
  w.put_f64(rng_.gaussian_spare());
  w.put_bool(rng_.has_gaussian_spare());
  w.put_u64(cur_block_);
  w.put_u64(cur_idx_);
  w.put_u64(block_iter_.size());
  for (const u32 v : block_iter_) w.put_u32(v);
  w.put_u64(recent_dst_.size());
  for (const int v : recent_dst_) w.put_i32(v);
  w.put_u64(recent_head_);
  w.put_i32(hub_reg_);
  w.put_i32(next_dst_);
  w.put_u64(emitted_);
}

void TraceGenerator::restore_state(snap::Reader& r) {
  const u64 state = r.get_u64();
  const u64 inc = r.get_u64();
  const double spare = r.get_f64();
  const bool have_spare = r.get_bool();
  rng_.restore_raw(state, inc, spare, have_spare);
  cur_block_ = static_cast<std::size_t>(r.get_u64());
  cur_idx_ = static_cast<std::size_t>(r.get_u64());
  if (r.get_u64() != block_iter_.size()) throw snap::SnapshotError("trace generator block count mismatch");
  for (u32& v : block_iter_) v = r.get_u32();
  if (r.get_u64() != recent_dst_.size()) throw snap::SnapshotError("trace generator recent-dst ring mismatch");
  for (int& v : recent_dst_) v = r.get_i32();
  recent_head_ = static_cast<std::size_t>(r.get_u64());
  hub_reg_ = r.get_i32();
  next_dst_ = r.get_i32();
  emitted_ = r.get_u64();
  if (cur_block_ >= blocks_.size()) throw snap::SnapshotError("trace generator cursor out of range");
}

}  // namespace vasim::workload
