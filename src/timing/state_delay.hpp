// State/input-dependent statistical delay model (ROADMAP item 4).
//
// The static path model assigns each PC one mu+2sigma path factor; real
// sensitized-path delay also depends on *which* inputs toggle (Pirbadian et
// al., arXiv 1403.2785, model delay distributions conditioned on input
// state).  This layer upgrades the per-PC constant to a per-(PC, operand
// state) distribution: each FaultClass carries a delay distribution whose
// mean shifts with an operand-toggle proxy and whose sigma widens as the
// supply drops below nominal (lower vdd amplifies the state-dependent
// spread).  The per-class base parameters are drawn once per run from a
// Pcg32 stream seeded from the workload seed and perturbed by the existing
// ProcessVariation draws; per-instance deviates are stateless hash draws,
// so the model is deterministic and query-order independent like the rest
// of the timing stack.
//
// The model is only attached for adaptive-clock runs (src/adapt/); static
// runs keep the legacy per-PC constant bit-for-bit.
#ifndef VASIM_TIMING_STATE_DELAY_HPP
#define VASIM_TIMING_STATE_DELAY_HPP

#include <array>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/timing/path_model.hpp"
#include "src/timing/process_variation.hpp"

namespace vasim::timing {

inline constexpr int kNumFaultClasses = 2;  // kAluLike, kMemLike

/// Calibration of the state-dependent spread.  Magnitudes are a few permille
/// so the state term perturbs the band geometry rather than replacing it.
struct StateDelayConfig {
  u64 seed = 1;
  double mu_spread = 0.004;       ///< sigma of the per-class mean draw
  double sigma_base = 0.003;      ///< per-instance sigma at nominal supply
  double sigma_vdd_slope = 0.03;  ///< extra sigma per volt below nominal
  double toggle_weight = 0.005;   ///< mean shift span across toggle activity
  double clamp = 0.02;            ///< factor clamped to 1 +/- clamp
  double vdd_nominal = 1.10;
};

/// Multiplicative delay factor ~N(mu(cls, toggle), sigma(vdd)) around 1.0,
/// applied on top of the per-PC path factor.
class StateDelayModel {
 public:
  StateDelayModel(const StateDelayConfig& cfg, const ProcessVariation& pv, double vdd);

  /// Delay factor for one dynamic instance.  `state_sig` is the operand
  /// signature (hash of source registers / memory address) standing in for
  /// the toggled-input vector.
  [[nodiscard]] double factor(Pc pc, u64 state_sig, FaultClass cls) const;

  [[nodiscard]] double mu(FaultClass cls) const { return mu_[static_cast<int>(cls)]; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] const StateDelayConfig& config() const { return cfg_; }

 private:
  StateDelayConfig cfg_;
  std::array<double, kNumFaultClasses> mu_{};
  double sigma_ = 0.0;
};

}  // namespace vasim::timing

#endif  // VASIM_TIMING_STATE_DELAY_HPP
