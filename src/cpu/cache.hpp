// Set-associative caches and the two-level hierarchy of Section 4.2.
#ifndef VASIM_CPU_CACHE_HPP
#define VASIM_CPU_CACHE_HPP

#include <string_view>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/cpu/config.hpp"
#include "src/obs/registry.hpp"
#include "src/snap/io.hpp"

namespace vasim::cpu {

/// One level of tag-only set-associative cache with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);
  /// Registry-backed construction: hit/miss live in `reg` under
  /// cache.<name>.hits / cache.<name>.misses, so a pipeline snapshot exports
  /// them with every other counter.
  Cache(const CacheConfig& cfg, obs::Registry* reg, std::string_view name);

  /// Looks up `addr`; on miss, fills the line (evicting LRU).  Returns hit.
  bool access(Addr addr);

  /// Lookup without fill (used by tests and warmup probes).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Serializes line array + LRU clock (+ the standalone hit/miss fallbacks;
  /// registry-backed counters are snapshotted with the registry).
  void save_state(snap::Writer& w) const;
  /// Restores into a cache built from the same CacheConfig; throws on a
  /// geometry mismatch.
  void restore_state(snap::Reader& r);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] u64 hits() const { return hits_c_.valid() ? hits_c_.value() : hits_; }
  [[nodiscard]] u64 misses() const { return misses_c_.valid() ? misses_c_.value() : misses_; }
  [[nodiscard]] int num_sets() const { return num_sets_; }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    u64 lru = 0;  ///< higher = more recently used
  };

  [[nodiscard]] std::size_t set_index(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;

  CacheConfig cfg_;
  int num_sets_;
  std::vector<Line> lines_;  // num_sets x ways
  u64 use_counter_ = 0;
  u64 hits_ = 0;    ///< standalone fallback storage
  u64 misses_ = 0;
  obs::Counter hits_c_, misses_c_;  ///< registry-backed when constructed with one
};

/// Split L1 + unified L2 + flat memory latency.
class MemoryHierarchy {
 public:
  /// With a registry the cache.* counters live in it (the pipeline snapshot
  /// exports them -- do NOT also call export_stats on the same StatSet, it
  /// would double-count); without one they are plain members and
  /// export_stats is the way out.
  explicit MemoryHierarchy(const CoreConfig& cfg, obs::Registry* reg = nullptr);

  /// Latency of a demand load at `addr` (includes the L1 access cycle).
  Cycle load_latency(Addr addr);
  /// Latency of an instruction fetch at `pc`.
  Cycle ifetch_latency(Addr pc);
  /// Commits a store (write-allocate, no pipeline latency modeled).
  void store_commit(Addr addr);

  [[nodiscard]] const Cache& l1i() const { return l1i_; }
  [[nodiscard]] const Cache& l1d() const { return l1d_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }

  /// Export hit/miss counters into `stats` under the given prefix.
  /// Standalone (registry-less) hierarchies only; registry-backed ones
  /// already export these names through the registry.
  void export_stats(StatSet& stats) const;

  /// Serializes all three cache levels and the prefetch fallback counter.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

  [[nodiscard]] u64 prefetches() const {
    return prefetches_c_.valid() ? prefetches_c_.value() : prefetches_;
  }

 private:
  Cycle miss_path(Addr addr, Cache& l1);
  void count_prefetch();

  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cycle mem_latency_;
  bool next_line_prefetch_;
  u64 prefetches_ = 0;  ///< standalone fallback storage
  obs::Counter prefetches_c_;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_CACHE_HPP
