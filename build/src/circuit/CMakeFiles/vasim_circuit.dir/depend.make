# Empty dependencies file for vasim_circuit.
# This may be replaced when dependencies are built.
