#include "src/workload/trace_file.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/isa/program.hpp"

namespace vasim::workload {
namespace {

// Header: `<magic> <format-version> <byte-order>`.  The magic identifies the
// file type, the version gates parsing (older/newer versions are rejected,
// never misread), and the byte-order tag records how multi-byte values in
// the records are rendered -- hex digits most-significant-first, i.e. "be".
// v1 files ("vasim-trace 1", no byte-order tag) predate the tag and are
// rejected with an explicit upgrade hint.
constexpr const char* kMagic = "vasim-trace";
constexpr int kTraceVersion = 2;
constexpr const char* kByteOrder = "be";

isa::OpClass parse_op(const std::string& token, u64 line) {
  static const std::map<std::string, isa::OpClass> table = {
      {"nop", isa::OpClass::kNop},     {"alu", isa::OpClass::kIntAlu},
      {"mul", isa::OpClass::kIntMul},  {"div", isa::OpClass::kIntDiv},
      {"load", isa::OpClass::kLoad},   {"store", isa::OpClass::kStore},
      {"branch", isa::OpClass::kBranch}};
  const auto it = table.find(token);
  if (it == table.end()) throw TraceFormatError(line, "unknown op '" + token + "'");
  return it->second;
}

}  // namespace

void write_trace(std::ostream& out, const std::vector<isa::DynInst>& trace) {
  out << kMagic << " " << kTraceVersion << " " << kByteOrder << "\n";
  for (const isa::DynInst& d : trace) {
    out << std::hex << d.pc << std::dec << " " << isa::to_string(d.op) << " " << d.src1 << " "
        << d.src2 << " " << d.dst << " " << std::hex << d.mem_addr << std::dec << " "
        << (d.taken ? 1 : 0) << " " << std::hex << d.next_pc << std::dec << "\n";
  }
}

std::vector<isa::DynInst> record_trace(isa::InstructionSource& source, u64 count) {
  std::vector<isa::DynInst> trace;
  trace.reserve(count);
  isa::DynInst d;
  for (u64 i = 0; i < count && source.next(d); ++i) trace.push_back(d);
  return trace;
}

TraceFileSource::TraceFileSource(std::istream& in, bool loop) : loop_(loop) {
  std::string line;
  u64 line_no = 1;
  if (!std::getline(in, line)) throw TraceFormatError(1, "empty input, expected trace header");
  {
    std::istringstream header(line);
    std::string magic, order;
    int version = 0;
    header >> magic >> version >> order;
    if (magic != kMagic) {
      throw TraceFormatError(1, "not a vasim trace (missing '" + std::string(kMagic) +
                                    "' magic)");
    }
    if (header.fail() || version != kTraceVersion) {
      throw TraceFormatError(
          1, "unsupported trace format version " +
                 (version > 0 ? std::to_string(version) : std::string("(unreadable)")) +
                 ", this build reads version " + std::to_string(kTraceVersion) +
                 "; re-record the trace with `vasim record`");
    }
    if (order != kByteOrder) {
      throw TraceFormatError(1, "unsupported byte order '" + order + "', expected '" +
                                    std::string(kByteOrder) + "'");
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    isa::DynInst d;
    std::string op;
    int taken = 0;
    fields >> std::hex >> d.pc >> std::dec >> op >> d.src1 >> d.src2 >> d.dst >> std::hex >>
        d.mem_addr >> std::dec >> taken >> std::hex >> d.next_pc;
    if (fields.fail()) throw TraceFormatError(line_no, "malformed record");
    d.op = parse_op(op, line_no);
    d.taken = taken != 0;
    if (d.src1 < -1 || d.src1 >= isa::kNumArchRegs || d.src2 < -1 ||
        d.src2 >= isa::kNumArchRegs || d.dst < -1 || d.dst >= isa::kNumArchRegs) {
      throw TraceFormatError(line_no, "register out of range");
    }
    trace_.push_back(d);
  }
}

bool TraceFileSource::next(isa::DynInst& out) {
  if (pos_ >= trace_.size()) {
    if (!loop_ || trace_.empty()) return false;
    pos_ = 0;
  }
  out = trace_[pos_++];
  return true;
}

}  // namespace vasim::workload
