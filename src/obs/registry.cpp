#include "src/obs/registry.hpp"

namespace vasim::obs {

Counter Registry::counter(std::string_view name) {
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return Counter(it->second);
  }
  counter_values_.push_back(0);
  u64* slot = &counter_values_.back();
  counter_names_.emplace_back(name);
  counter_index_.emplace(std::string(name), slot);
  return Counter(slot);
}

Gauge Registry::gauge(std::string_view name) {
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge(it->second);
  }
  gauge_values_.push_back(0.0);
  double* slot = &gauge_values_.back();
  gauge_names_.emplace_back(name);
  gauge_index_.emplace(std::string(name), slot);
  return Gauge(slot);
}

Histogram* Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t buckets) {
  if (const auto it = histogram_index_.find(name); it != histogram_index_.end()) {
    return it->second;
  }
  histograms_.emplace_back(lo, hi, buckets);
  Histogram* slot = &histograms_.back();
  histogram_names_.emplace_back(name);
  histogram_index_.emplace(std::string(name), slot);
  return slot;
}

u64 Registry::counter_value(std::string_view name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : *it->second;
}

void Registry::export_to(StatSet& s) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    const u64 v = counter_values_[i];
    if (v != 0) s.inc(counter_names_[i], v);
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    s.set(gauge_names_[i], gauge_values_[i]);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const Histogram& h = histograms_[i];
    if (h.total() == 0) continue;
    s.set(histogram_names_[i] + ".mean", h.mean());
    s.set(histogram_names_[i] + ".p50", h.quantile(0.5));
    s.set(histogram_names_[i] + ".p95", h.quantile(0.95));
    s.set(histogram_names_[i] + ".p99", h.quantile(0.99));
  }
}

void Registry::save_state(snap::Writer& w) const {
  for (const auto& h : histograms_) {
    if (h.total() != 0) throw snap::SnapshotError("registry histogram holds samples; not snapshotable");
  }
  w.put_u32(static_cast<u32>(counter_names_.size()));
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    w.put_str(counter_names_[i]);
    w.put_u64(counter_values_[i]);
  }
  w.put_u32(static_cast<u32>(gauge_names_.size()));
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    w.put_str(gauge_names_[i]);
    w.put_f64(gauge_values_[i]);
  }
}

void Registry::restore_state(snap::Reader& r) {
  const u32 nc = r.get_u32();
  for (u32 i = 0; i < nc; ++i) {
    const std::string name = r.get_str();
    const u64 v = r.get_u64();
    const auto it = counter_index_.find(name);
    if (it == counter_index_.end()) throw snap::SnapshotError("registry counter '" + name + "' not registered on restore side");
    *it->second = v;
  }
  const u32 ng = r.get_u32();
  for (u32 i = 0; i < ng; ++i) {
    const std::string name = r.get_str();
    const double v = r.get_f64();
    const auto it = gauge_index_.find(name);
    if (it == gauge_index_.end()) throw snap::SnapshotError("registry gauge '" + name + "' not registered on restore side");
    *it->second = v;
  }
}

void Registry::reset() {
  for (u64& v : counter_values_) v = 0;
  for (double& v : gauge_values_) v = 0.0;
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    // Histogram has no clear(); rebuild in place with the same geometry.
    const double lo = histograms_[i].bucket_lo(0);
    const double width =
        histograms_[i].buckets().size() > 1
            ? histograms_[i].bucket_lo(1) - histograms_[i].bucket_lo(0)
            : 1.0;
    const std::size_t n = histograms_[i].buckets().size();
    histograms_[i] = Histogram(lo, lo + width * static_cast<double>(n), n);
  }
}

}  // namespace vasim::obs
