// Sweep sharding with a deterministic, checksum-witnessed merge.
//
// `vasim sweep --shard i/N` partitions the grid, runs only shard i's jobs
// and writes a JSON *fragment*; `vasim sweep-merge` joins N fragments back
// into a submission-ordered schema-4 report whose FNV checksum is bitwise
// identical to the unsharded run.
//
// Two things make the round trip exact:
//  * The partition is group-aware: when warm-start sharing is on, whole
//    warmup groups travel to one shard (a group split across shards would
//    degenerate into singletons and change the warmup_* accounting), so the
//    merged accounting fields are the plain sum of the fragments'.
//  * Each fragment entry carries the complete RunResult as a hex-encoded
//    snap::Writer blob.  The human-readable metric fields in the fragment
//    are advisory; the merge decodes the blobs, so every stat counter and
//    double bit pattern that feeds sweep_checksum survives byte-for-byte.
#ifndef VASIM_CORE_SHARD_HPP
#define VASIM_CORE_SHARD_HPP

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sweep.hpp"

namespace vasim::core {

/// A fragment written by a different (newer or older) build: the merge
/// refuses to guess at the layout and names the offending file instead.
/// Carries the fragment path plus the found/expected schema numbers so
/// callers (and the CLI error message) can say exactly which shard to
/// regenerate.
class FragmentSchemaError : public std::runtime_error {
 public:
  FragmentSchemaError(std::string path, u64 found, u64 expected)
      : std::runtime_error("fragment " + (path.empty() ? std::string("<stream>") : path) +
                           ": schema_version " + std::to_string(found) + " (this build reads " +
                           std::to_string(expected) + ")"),
        path_(std::move(path)),
        found_(found),
        expected_(expected) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] u64 found() const { return found_; }
  [[nodiscard]] u64 expected() const { return expected_; }

 private:
  std::string path_;
  u64 found_;
  u64 expected_;
};

/// One shard of an N-way split.  `index` is 1-based ("--shard 2/4" is the
/// second of four).
struct ShardSpec {
  std::size_t index = 1;
  std::size_t count = 1;
};

/// Parses "i/N"; throws std::invalid_argument on malformed input or an
/// index outside [1, N].
[[nodiscard]] ShardSpec parse_shard(const std::string& spec);

/// Deterministic partition of `jobs`: returns shard `spec.index`'s global
/// job indices in ascending order.  Partition units are whole warmup groups
/// when `reuse_warmup` (keyed exactly as SweepRunner groups them, using
/// `base_cfg` for jobs without a config override), single jobs otherwise;
/// units round-robin over shards in first-appearance order.  Every job
/// lands in exactly one shard; shards may be empty when N exceeds the unit
/// count.
[[nodiscard]] std::vector<std::size_t> shard_indices(const std::vector<SweepJob>& jobs,
                                                     const ShardSpec& spec, bool reuse_warmup,
                                                     const RunnerConfig& base_cfg);

/// One finished job inside a fragment, tagged with its position in the
/// *unsharded* grid so the merge can restore submission order.
struct FragmentEntry {
  std::size_t index = 0;
  SweepOutcome outcome;
};

/// A per-shard sweep result: shard identity, this shard's share of the
/// timing/warmup accounting, and its entries.
struct SweepFragment {
  std::string name;
  std::size_t shard_index = 1;
  std::size_t shard_count = 1;
  std::size_t total_jobs = 0;
  std::size_t workers = 1;
  double wall_ms = 0.0;
  std::size_t warmup_groups = 0;
  u64 warmup_cycles_simulated = 0;
  u64 warmup_cycles_saved = 0;
  std::vector<FragmentEntry> entries;
};

/// Packages a shard's SweepReport (whose jobs are in `indices` order) as a
/// fragment.  `total_jobs` is the unsharded grid size.
[[nodiscard]] SweepFragment make_fragment(const std::string& name, const ShardSpec& spec,
                                          std::size_t total_jobs,
                                          const std::vector<std::size_t>& indices,
                                          SweepReport&& report);

/// Fragment JSON codec (schema in docs/sweep.md).  The reader is a targeted
/// scanner over this writer's machine-generated layout, not a general JSON
/// parser; it throws std::runtime_error on anything it cannot account for,
/// and FragmentSchemaError specifically on a schema_version mismatch.
/// `path` is diagnostic only -- it names the fragment in error messages.
void write_fragment_json(std::ostream& os, const SweepFragment& f);
[[nodiscard]] SweepFragment read_fragment_json(std::istream& is, const std::string& path = "");

/// Joins fragments back into one submission-ordered report.  Validates that
/// the fragments agree on name/shard_count/total_jobs, carry distinct shard
/// indices and cover every job exactly once; throws std::runtime_error
/// otherwise.  workers is the max over fragments; wall_ms and the warmup_*
/// fields are sums (total compute, not elapsed time).
[[nodiscard]] SweepReport merge_fragments(std::vector<SweepFragment> fragments);

}  // namespace vasim::core

#endif  // VASIM_CORE_SHARD_HPP
