// Environment-variable helpers for scaling benchmark runs.
#ifndef VASIM_COMMON_ENV_HPP
#define VASIM_COMMON_ENV_HPP

#include <string>

#include "src/common/types.hpp"

namespace vasim {

/// Reads an unsigned integer from the environment; `fallback` when unset or
/// unparsable.
u64 env_u64(const std::string& name, u64 fallback);

/// Reads a *count* knob (worker/batch sizes: VASIM_JOBS, VASIM_BATCH, ...)
/// with loud validation instead of env_u64's silent fallback: a value that
/// is not a plain decimal number (including trailing junk like "4x"), or is
/// explicitly 0, warns on stderr and returns `fallback`; a value above
/// `max_value` warns and clamps.  Unset/empty stays silent and returns
/// `fallback`.
u64 env_count(const std::string& name, u64 fallback, u64 max_value);

/// Reads a string from the environment; `fallback` when unset.
std::string env_str(const std::string& name, const std::string& fallback);

}  // namespace vasim

#endif  // VASIM_COMMON_ENV_HPP
