file(REMOVE_RECURSE
  "libvasim_cpu.a"
)
