// Gshare direction predictor + BTB.
#ifndef VASIM_CPU_BRANCH_PRED_HPP
#define VASIM_CPU_BRANCH_PRED_HPP

#include <vector>

#include "src/common/types.hpp"
#include "src/cpu/config.hpp"
#include "src/snap/io.hpp"

namespace vasim::cpu {

/// Prediction for one branch.
struct BranchPrediction {
  bool taken = false;
  bool target_known = false;  ///< BTB hit
  Pc target = 0;
};

/// Gshare (global history XOR pc) 2-bit counters, plus a direct-mapped BTB.
class BranchPredictor {
 public:
  explicit BranchPredictor(const CoreConfig& cfg);

  [[nodiscard]] BranchPrediction predict(Pc pc) const;

  /// Trains direction + BTB and shifts the global history.
  void update(Pc pc, bool taken, Pc target);

  /// Global history register (also used to index the TEP, Section 2.1.1).
  [[nodiscard]] u64 history() const { return history_; }

  [[nodiscard]] u64 lookups() const { return lookups_; }
  [[nodiscard]] u64 mispredicts() const { return mispredicts_; }
  /// Records a mispredict observed by the pipeline (outcome or target).
  void note_mispredict() { ++mispredicts_; }

  /// Serializes counters, BTB, history, and the lookup/mispredict tallies.
  void save_state(snap::Writer& w) const;
  /// Restores into a predictor built from the same CoreConfig; throws on a
  /// table-size mismatch.
  void restore_state(snap::Reader& r);

 private:
  [[nodiscard]] std::size_t dir_index(Pc pc) const;

  std::vector<u8> counters_;  ///< 2-bit saturating
  struct BtbEntry {
    Pc pc = 0;
    Pc target = 0;
    bool valid = false;
  };
  std::vector<BtbEntry> btb_;
  u64 history_ = 0;
  u64 history_mask_;
  mutable u64 lookups_ = 0;
  u64 mispredicts_ = 0;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_BRANCH_PRED_HPP
