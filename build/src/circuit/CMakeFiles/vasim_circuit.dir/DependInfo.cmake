
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/builders.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/builders.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/builders.cpp.o.d"
  "/root/repo/src/circuit/cell_library.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/cell_library.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/cell_library.cpp.o.d"
  "/root/repo/src/circuit/dynamic.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/dynamic.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/dynamic.cpp.o.d"
  "/root/repo/src/circuit/gatesim.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/gatesim.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/gatesim.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/power.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/power.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/power.cpp.o.d"
  "/root/repo/src/circuit/scheduler_blocks.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/scheduler_blocks.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/scheduler_blocks.cpp.o.d"
  "/root/repo/src/circuit/sta.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/sta.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/sta.cpp.o.d"
  "/root/repo/src/circuit/verilog.cpp" "src/circuit/CMakeFiles/vasim_circuit.dir/verilog.cpp.o" "gcc" "src/circuit/CMakeFiles/vasim_circuit.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vasim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vasim_timing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
