#include "src/adapt/clock.hpp"

#include <algorithm>

namespace vasim::adapt {

ClockDomain::ClockDomain(const DvfsConfig& cfg, double vdd)
    : cfg_(cfg), vdd_(vdd), ctrl_(make_controller(cfg)) {
  period_permille_ = std::clamp<u32>(1000, cfg_.period_min_permille, cfg_.period_max_permille);
  period_lo_ = period_hi_ = period_permille_;
}

void ClockDomain::bind(obs::Registry& reg) {
  if (bound_) return;
  wall_units_ = reg.counter("dvfs.wall_units");
  epochs_c_ = reg.counter("dvfs.epochs");
  raises_ = reg.counter("dvfs.period_raises");
  drops_ = reg.counter("dvfs.period_drops");
  bound_ = true;
}

void ClockDomain::step_epoch(const EpochSample& s) {
  EpochStats e;
  e.epoch_index = traj_.size();
  e.committed = s.committed - last_.committed;
  e.cycles = s.cycles - last_.cycles;
  e.violations = s.violations - last_.violations;
  e.replays = s.replays - last_.replays;
  for (std::size_t i = 0; i < e.stage_violations.size(); ++i) {
    e.stage_violations[i] = s.stage_violations[i] - last_.stage_violations[i];
  }
  e.ipc = e.cycles > 0 ? static_cast<double>(e.committed) / static_cast<double>(e.cycles) : 0.0;
  e.violation_pct = e.committed > 0
                        ? 100.0 * static_cast<double>(e.violations) / static_cast<double>(e.committed)
                        : 0.0;
  const u64 slot_delta = s.total_slots - last_.total_slots;
  e.mem_fraction = slot_delta > 0 ? static_cast<double>(s.mem_slots - last_.mem_slots) /
                                        static_cast<double>(slot_delta)
                                  : 0.0;
  e.hot = s.hot;
  e.droopy = s.droopy;

  traj_.push_back(TrajectoryPoint{s.committed, period_permille_,
                                  static_cast<u32>(std::min<u64>(e.violations, 0xFFFFFFFFull))});
  epochs_c_.inc();

  if (ctrl_ != nullptr) {
    const u32 wish = ctrl_->next_period(e, period_permille_);
    const u32 next = std::clamp(wish, cfg_.period_min_permille, cfg_.period_max_permille);
    if (next > period_permille_) raises_.inc();
    if (next < period_permille_) drops_.inc();
    period_permille_ = next;
    period_lo_ = std::min(period_lo_, next);
    period_hi_ = std::max(period_hi_, next);
  }
  last_ = s;
}

void ClockDomain::save_state(snap::Writer& w) const {
  put_dvfs_config(w, cfg_);
  w.put_f64(vdd_);
  w.put_u32(period_permille_);
  w.put_u32(period_lo_);
  w.put_u32(period_hi_);
  w.put_u64(last_.committed);
  w.put_u64(last_.cycles);
  w.put_u64(last_.violations);
  w.put_u64(last_.replays);
  for (const u64 v : last_.stage_violations) w.put_u64(v);
  w.put_u64(last_.mem_slots);
  w.put_u64(last_.total_slots);
  w.put_u32(static_cast<u32>(traj_.size()));
  for (const TrajectoryPoint& p : traj_) {
    w.put_u64(p.committed);
    w.put_u32(p.period_permille);
    w.put_u32(p.violations);
  }
  if (ctrl_ != nullptr) ctrl_->save_state(w);
}

void ClockDomain::restore_state(snap::Reader& r) {
  const DvfsConfig saved = get_dvfs_config(r);
  if (saved.policy != cfg_.policy || saved.epoch != cfg_.epoch ||
      saved.period_min_permille != cfg_.period_min_permille ||
      saved.period_max_permille != cfg_.period_max_permille ||
      saved.step_permille != cfg_.step_permille) {
    throw snap::SnapshotError("dvfs config mismatch (snapshot policy " +
                              std::string(to_string(saved.policy)) + ", running " +
                              std::string(to_string(cfg_.policy)) + ")");
  }
  vdd_ = r.get_f64();
  period_permille_ = r.get_u32();
  period_lo_ = r.get_u32();
  period_hi_ = r.get_u32();
  last_.committed = r.get_u64();
  last_.cycles = r.get_u64();
  last_.violations = r.get_u64();
  last_.replays = r.get_u64();
  for (u64& v : last_.stage_violations) v = r.get_u64();
  last_.mem_slots = r.get_u64();
  last_.total_slots = r.get_u64();
  const u32 n = r.get_u32();
  traj_.clear();
  traj_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    TrajectoryPoint p;
    p.committed = r.get_u64();
    p.period_permille = r.get_u32();
    p.violations = r.get_u32();
    traj_.push_back(p);
  }
  if (ctrl_ != nullptr) ctrl_->restore_state(r);
}

}  // namespace vasim::adapt
