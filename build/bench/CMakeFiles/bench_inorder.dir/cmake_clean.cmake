file(REMOVE_RECURSE
  "CMakeFiles/bench_inorder.dir/bench_inorder.cpp.o"
  "CMakeFiles/bench_inorder.dir/bench_inorder.cpp.o.d"
  "bench_inorder"
  "bench_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
