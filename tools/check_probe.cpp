// check_probe: seeded randomized semantics probe with automatic shrinking.
//
// Draws (machine shape, workload, scheme, supply) cases from the same seed
// derivations as the fuzz test suites, runs each with the SemanticsChecker
// attached, and on the first violation shrinks the case with the bisection
// shrinker (src/check/shrink.hpp) before printing a minimal reproduction:
// an exact self-repro command line plus the nearest `vasim`-replayable one.
//
//   check_probe --mode config            # fuzz machine shapes (default)
//   check_probe --mode program           # fuzz mini-ISA programs
//   check_probe --seed 90210             # probe one specific seed
//   check_probe --iters 50               # widen the seed range
//   check_probe --seed 3 --set instr=800,warmup=0,rob=16   # replay a repro
//
// Exit status: 0 when every probe is clean, 1 when a violation survived
// shrinking (the repro has been printed), 2 on usage errors.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/check/semantics.hpp"
#include "src/check/shrink.hpp"
#include "src/core/runner.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"
#include "tests/fuzz_util.hpp"

using namespace vasim;

namespace {

using Overrides = std::map<std::string, u64>;

u64 get_or(const Overrides& ov, const char* key, u64 dflt) {
  const auto it = ov.find(key);
  return it == ov.end() ? dflt : it->second;
}

/// Identity of one probe run, for the repro printout.  `dims` holds the
/// final value of every shrinkable dimension -- the shrinker must start
/// from the shape that actually failed, not from fixed maxima.
struct RunIdentity {
  std::string bench;
  std::string scheme;
  double vdd = 0.0;
  bool squash_refetch = false;
  Overrides dims;
};

/// Config-mode probe: the same derivation as tests/test_fuzz.cpp (seed salt
/// 0xf022), so corpus seeds are shared between the suite and this tool.
/// Returns the failure description, or nullopt when the run is clean.
std::optional<std::string> config_failure(u64 seed, const Overrides& ov, RunIdentity* id) {
  Pcg32 rng(seed, 0xf022ULL);

  cpu::CoreConfig cfg;
  cfg.issue_width = 1 + static_cast<int>(rng.next_below(8));
  cfg.rob_entries = 16 << rng.next_below(4);
  cfg.iq_entries = std::min(cfg.rob_entries, 8 << static_cast<int>(rng.next_below(3)));
  cfg.lq_entries = 8 + static_cast<int>(rng.next_below(24));
  cfg.sq_entries = 8 + static_cast<int>(rng.next_below(24));
  cfg.simple_alus = 1 + static_cast<int>(rng.next_below(4));
  cfg.load_ports = 1 + static_cast<int>(rng.next_below(2));
  cfg.model_wrong_path = rng.next_bool(0.3);
  cfg.l2_next_line_prefetch = rng.next_bool(0.3);

  const auto profiles = workload::spec2006_profiles();
  const auto prof = profiles[rng.next_below(static_cast<u32>(profiles.size()))];
  const auto schemes = core::comparative_schemes();
  cpu::SchemeConfig scheme = schemes[rng.next_below(static_cast<u32>(schemes.size()))];
  if (rng.next_bool(0.3)) scheme.recovery = cpu::RecoveryModel::kSquashRefetch;
  if (rng.next_bool(0.25)) scheme.inorder_fault_scale = 0.3;
  const double vdd = rng.next_bool(0.5) ? 0.97 : 1.04;

  // Shrinkable dimensions override the drawn shape (widths stay tied).
  cfg.issue_width = static_cast<int>(get_or(ov, "width", static_cast<u64>(cfg.issue_width)));
  cfg.fetch_width = cfg.issue_width;
  cfg.dispatch_width = cfg.issue_width;
  cfg.commit_width = cfg.issue_width;
  cfg.rob_entries = static_cast<int>(get_or(ov, "rob", static_cast<u64>(cfg.rob_entries)));
  cfg.iq_entries = std::min(
      cfg.rob_entries, static_cast<int>(get_or(ov, "iq", static_cast<u64>(cfg.iq_entries))));
  const u64 instr = get_or(ov, "instr", 6000);
  const u64 warmup = get_or(ov, "warmup", 3000);

  if (id != nullptr) {
    id->bench = prof.name;
    id->scheme = scheme.name;
    id->vdd = vdd;
    id->squash_refetch = scheme.recovery == cpu::RecoveryModel::kSquashRefetch;
    id->dims = {{"instr", instr},
                {"warmup", warmup},
                {"rob", static_cast<u64>(cfg.rob_entries)},
                {"iq", static_cast<u64>(cfg.iq_entries)},
                {"width", static_cast<u64>(cfg.issue_width)}};
  }

  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                               prof.fr_low_pct / 100.0 * prof.fr_calib_low};
  const timing::FaultModel fm(pcfg, vdd);
  core::TimingErrorPredictor tep({}, &fm.environment());
  workload::TraceGenerator gen(prof);
  cpu::Pipeline p(cfg, scheme, &gen, &fm, scheme.use_predictor ? &tep : nullptr);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(p);
  const cpu::PipelineResult r = p.run(instr, warmup);
  if (!checker.ok()) return checker.report();
  if (r.committed != instr) {
    return "committed " + std::to_string(r.committed) + " != target " + std::to_string(instr);
  }
  return std::nullopt;
}

/// Program-mode probe: parameterized variant of the generator in
/// tests/test_program_fuzz.cpp (seed salt 0x9f09).  The caps are the
/// shrinkable dimensions -- smaller caps mean smaller programs.
std::string gen_program(Pcg32& rng, u64 loop_cap, u64 trip_cap, u64 body_cap) {
  std::ostringstream os;
  os << "lui r10, 0x10\n";
  const u64 loops = 1 + rng.next_below(static_cast<u32>(loop_cap));
  for (u64 l = 0; l < loops; ++l) {
    const u64 trip = 3 + rng.next_below(static_cast<u32>(trip_cap));
    os << "addi r1, r0, 0\n";
    os << "addi r2, r0, " << trip << "\n";
    os << "L" << l << ":\n";
    const u64 body = 1 + rng.next_below(static_cast<u32>(body_cap));
    for (u64 b = 0; b < body; ++b) {
      const int dst = 3 + static_cast<int>(rng.next_below(6));
      const int src = 1 + static_cast<int>(rng.next_below(8));
      switch (rng.next_below(6)) {
        case 0: os << "add r" << dst << ", r" << src << ", r1\n"; break;
        case 1: os << "addi r" << dst << ", r" << src << ", " << rng.next_below(100) << "\n"; break;
        case 2: os << "ld r" << dst << ", " << 8 * rng.next_below(16) << "(r10)\n"; break;
        case 3: os << "st r" << src << ", " << 8 * rng.next_below(16) << "(r10)\n"; break;
        case 4: os << "mul r" << dst << ", r" << src << ", r2\n"; break;
        default: os << "xor r" << dst << ", r" << src << ", r2\n"; break;
      }
    }
    os << "addi r1, r1, 1\n";
    os << "blt r1, r2, L" << l << "\n";
  }
  os << "halt\n";
  return os.str();
}

std::optional<std::string> program_failure(u64 seed, const Overrides& ov, RunIdentity* id) {
  Pcg32 rng(seed, 0x9f09ULL);
  const u64 loop_cap = get_or(ov, "loops", 4);
  const u64 trip_cap = get_or(ov, "trip", 30);
  const u64 body_cap = get_or(ov, "body", 8);
  const isa::Program prog = isa::assemble(gen_program(rng, loop_cap, trip_cap, body_cap));
  isa::FunctionalCore ref(&prog);
  isa::DynInst d;
  u64 dynamic_count = 0;
  while (ref.next(d)) ++dynamic_count;

  const auto schemes = core::comparative_schemes();
  cpu::SchemeConfig scheme = schemes[rng.next_below(static_cast<u32>(schemes.size()))];
  if (rng.next_bool(0.4)) scheme.recovery = cpu::RecoveryModel::kSquashRefetch;
  if (id != nullptr) {
    id->bench = "<program>";
    id->scheme = scheme.name;
    id->vdd = 0.97;
    id->squash_refetch = scheme.recovery == cpu::RecoveryModel::kSquashRefetch;
    id->dims = {{"loops", loop_cap}, {"trip", trip_cap}, {"body", body_cap}};
  }

  timing::PathModelConfig pcfg{seed, 0.10, 0.03};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  isa::FunctionalCore src(&prog);
  cpu::CoreConfig cfg;
  cfg.model_wrong_path = rng.next_bool(0.4);
  cpu::Pipeline pipe(cfg, scheme, &src, &fm, scheme.use_predictor ? &tep : nullptr);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(pipe);
  const cpu::PipelineResult r = pipe.run(10 * dynamic_count);
  if (!checker.ok()) return checker.report();
  if (r.committed != dynamic_count) {
    return "committed " + std::to_string(r.committed) + " != architectural " +
           std::to_string(dynamic_count);
  }
  return std::nullopt;
}

check::ShrinkSpec initial_spec(const std::string& mode, const Overrides& dims) {
  if (mode == "program") {
    return {{"loops", get_or(dims, "loops", 4), 1},
            {"trip", get_or(dims, "trip", 30), 1},
            {"body", get_or(dims, "body", 8), 1}};
  }
  return {{"instr", get_or(dims, "instr", 6000), 50},
          {"warmup", get_or(dims, "warmup", 3000), 0},
          {"rob", get_or(dims, "rob", 128), 16},
          {"iq", get_or(dims, "iq", 32), 8},
          {"width", get_or(dims, "width", 8), 1}};
}

Overrides to_overrides(const check::ShrinkSpec& spec) {
  Overrides ov;
  for (const check::ShrinkDim& d : spec) ov[d.name] = d.value;
  return ov;
}

/// Runs one probe, folding exceptions (deadlock watchdog, assembler errors
/// on shrunk programs...) into an ordinary failure description so the
/// shrinker can keep probing.
template <typename Probe>
std::optional<std::string> run_probe(Probe probe, u64 seed, const Overrides& ov,
                                     RunIdentity* id) {
  try {
    return probe(seed, ov, id);
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: check_probe [--mode config|program] [--seed K[,K...]] [--iters N]\n"
               "                   [--set k=v[,k=v...]] [--no-shrink]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "config";
  std::vector<u64> seeds;
  Overrides sets;
  u64 iters = 10;
  bool shrink = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage();
      mode = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) seeds.push_back(std::stoull(item));
    } else if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return usage();
      iters = std::stoull(v);
    } else if (arg == "--set") {
      const char* v = next();
      if (v == nullptr) return usage();
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) return usage();
        sets[item.substr(0, eq)] = std::stoull(item.substr(eq + 1));
      }
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else {
      return usage();
    }
  }
  if (mode != "config" && mode != "program") return usage();
  const auto probe = mode == "program" ? program_failure : config_failure;
  if (seeds.empty()) {
    seeds = fuzzutil::seeds("probe", mode == "program" ? 101 : 1, iters);
  }

  for (const u64 seed : seeds) {
    RunIdentity id;
    const auto failure = run_probe(probe, seed, sets, &id);
    if (!failure) {
      std::printf("ok   mode=%s seed=%" PRIu64 " (%s/%s vdd=%.2f)\n", mode.c_str(), seed,
                  id.bench.c_str(), id.scheme.c_str(), id.vdd);
      continue;
    }
    std::printf("FAIL mode=%s seed=%" PRIu64 " (%s/%s vdd=%.2f)\n%s\n", mode.c_str(), seed,
                id.bench.c_str(), id.scheme.c_str(), id.vdd, failure->c_str());

    check::ShrinkSpec spec = initial_spec(mode, id.dims);
    check::ShrinkStats stats;
    if (shrink) {
      spec = check::shrink_spec(
          spec,
          [&](const check::ShrinkSpec& cand) {
            return run_probe(probe, seed, to_overrides(cand), nullptr).has_value();
          },
          /*max_rounds=*/4, &stats);
    }

    // Minimal reproduction: exact (this tool) and nearest vasim replay.
    std::string set_arg;
    for (const check::ShrinkDim& d : spec) {
      if (!set_arg.empty()) set_arg += ',';
      set_arg += d.name + "=" + std::to_string(d.value);
    }
    std::printf("shrunk to: %s (%d probes, %d rounds)\n", set_arg.c_str(), stats.probes,
                stats.rounds);
    std::printf("repro (exact):  check_probe --mode %s --seed %" PRIu64 " --set %s\n",
                mode.c_str(), seed, set_arg.c_str());
    if (mode == "config") {
      std::printf("replay (vasim): vasim run --bench %s --scheme %s --vdd %.2f --instr %" PRIu64
                  " --warmup %" PRIu64 "%s\n",
                  id.bench.c_str(), id.scheme.c_str(), id.vdd,
                  get_or(to_overrides(spec), "instr", 6000),
                  get_or(to_overrides(spec), "warmup", 3000),
                  id.squash_refetch ? "   # recovery: squash-refetch (fuzz-only variant)" : "");
    }
    return 1;
  }
  std::printf("all %zu probe(s) clean (mode=%s)\n", seeds.size(), mode.c_str());
  return 0;
}
